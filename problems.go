package camelot

import (
	"context"
	"math/big"

	"camelot/internal/chromatic"
	"camelot/internal/cliques"
	"camelot/internal/cnfsat"
	"camelot/internal/conv3sum"
	"camelot/internal/core"
	"camelot/internal/csp"
	"camelot/internal/hamilton"
	"camelot/internal/orthvec"
	"camelot/internal/permanent"
	"camelot/internal/setcover"
	"camelot/internal/triangles"
	"camelot/internal/tutte"
)

// RunProblem executes the full Camelot protocol — distributed proof
// preparation, per-node Gao decoding with failed-node identification,
// and randomized verification — for any Problem. Most callers use the
// problem-specific functions below instead; all of them run on the
// shared default cluster (see NewCluster for the session API).
func RunProblem(ctx context.Context, p Problem, opts ...Option) (*Proof, *Report, error) {
	c := newConfig(opts)
	return runOneShot(ctx, p, c)
}

// VerifyProof spot-checks a proof against the input with the given
// number of trials — the Merlin–Arthur mode (paper §1.1): Arthur accepts
// a correct proof always and a forged one with probability at most
// (d/q)^trials, spending one node's work per trial.
func VerifyProof(p Problem, proof *Proof, trials int, seed int64) (bool, error) {
	return core.VerifyProof(p, proof, trials, seed)
}

// VerifyProofContext is VerifyProof with cancellation: the check aborts
// between trial/modulus pairs once ctx is done, making multi-trial
// verification of large proofs as cancellable as every other stage.
func VerifyProofContext(ctx context.Context, p Problem, proof *Proof, trials int, seed int64) (bool, error) {
	return core.VerifyProofContext(ctx, p, proof, trials, seed)
}

// VerifyProofBatch is the batched ingest check: one random-linear-
// combination fold plus a single Horner evaluation per prime verifies
// that the proof's stored codeword evaluations are exactly the
// evaluations of its coefficient vectors — without touching the problem
// instance at all. It is the cheap structural gate for accepting proofs
// wholesale (a proof service's ingest path); VerifyProof remains the
// audit-grade check tying the proof to the input. One call wrongly
// accepts an inconsistent proof with probability at most
// (Width-1 + max(d, e-1))/q per prime; see core.VerifyProofBatch for
// the argument.
func VerifyProofBatch(proof *Proof, seed int64) (bool, error) {
	return core.VerifyProofBatch(proof, seed)
}

// VerifyProofBatchContext is VerifyProofBatch with cancellation,
// observed between primes.
func VerifyProofBatchContext(ctx context.Context, proof *Proof, seed int64) (bool, error) {
	return core.VerifyProofBatchContext(ctx, proof, seed)
}

// CountCliques counts the k-cliques of g (k divisible by 6) with the
// Theorem 1 Camelot algorithm: proof size and per-node time O(n^{ωk/6}),
// matching the best sequential total.
func CountCliques(ctx context.Context, g *Graph, k int, opts ...Option) (*big.Int, *Report, error) {
	c := newConfig(opts)
	p, err := cliques.NewProblem(g.g, k, c.run.base)
	if err != nil {
		return nil, nil, err
	}
	proof, rep, err := runOneShot(ctx, p, c)
	if err != nil {
		return nil, rep, err
	}
	count, err := p.Recover(proof)
	return count, rep, err
}

// CountCliquesSequential counts k-cliques with the Nešetřil–Poljak
// baseline (no proof, no distribution) for comparison.
func CountCliquesSequential(g *Graph, k int) (*big.Int, error) {
	return cliques.CountNesetrilPoljak(g.g, k)
}

// CountTriangles counts the triangles of g with the Theorem 3 Camelot
// algorithm: proof size O(n^ω/m), per-node time Õ(m).
func CountTriangles(ctx context.Context, g *Graph, opts ...Option) (*big.Int, *Report, error) {
	c := newConfig(opts)
	p, err := triangles.NewProblem(g.g, c.run.base)
	if err != nil {
		return nil, nil, err
	}
	proof, rep, err := runOneShot(ctx, p, c)
	if err != nil {
		return nil, rep, err
	}
	count, err := p.Recover(proof)
	return count, rep, err
}

// ChromaticPolynomial computes the chromatic polynomial of g with the
// Theorem 6 Camelot algorithm (proof size and time O*(2^{n/2})),
// returning the integer coefficients c_0..c_n of χ_G(t) = Σ c_k t^k.
func ChromaticPolynomial(ctx context.Context, g *Graph, opts ...Option) ([]*big.Int, *Report, error) {
	c := newConfig(opts)
	p, err := chromatic.NewProblem(g.g)
	if err != nil {
		return nil, nil, err
	}
	proof, rep, err := runOneShot(ctx, p, c)
	if err != nil {
		return nil, rep, err
	}
	coeffs, err := p.Coefficients(proof)
	return coeffs, rep, err
}

// TutteResult carries the recovered Tutte and random-cluster polynomials.
type TutteResult = tutte.Result

// TuttePolynomial computes the Tutte polynomial of a multigraph with the
// Theorem 7 Camelot algorithm: proof size O*(2^{n/3}), per-node time
// O*(2^{ωn/3}), one run per Fortuin–Kasteleyn line r = 1..m+1. The m+1
// lines are submitted as concurrent jobs on the shared default cluster
// (the sequential driver survives as tutte.Compute); results are
// bit-identical either way because lines are independent runs.
func TuttePolynomial(ctx context.Context, mg *Multigraph, opts ...Option) (*TutteResult, error) {
	c := newConfig(opts)
	cl := DefaultCluster()
	copts := c.coreOptions()
	if copts.MaxParallelism > 0 {
		// An explicit parallelism bound must hold across the whole
		// computation, not per line: the default cluster's pool has its
		// own width and the per-run scheduler fallback would multiply
		// the bound by m+1 concurrent lines. A transient cluster sized
		// to the bound keeps every line on one pool of exactly that
		// width.
		cl = NewCluster(WithNodes(copts.Nodes), WithMaxParallelism(copts.MaxParallelism))
		defer cl.Close()
	}
	line := func(ctx context.Context, p *tutte.Problem) (*core.Proof, *core.Report, error) {
		return cl.submitCore(ctx, p, copts).Wait(ctx)
	}
	// In-flight lines are capped at the executing pool's width, not
	// m+1: a line allocates its full share buffers the moment its run
	// starts — before any task reaches the pool — so admitting every
	// line at once makes peak memory scale with the edge count while
	// the pool can only progress width lines' work anyway.
	return tutte.ComputeLines(ctx, mg.mg, line, cl.pool.Width())
}

// EvalTutte evaluates a recovered Tutte coefficient matrix at (x, y).
func EvalTutte(coeffs [][]*big.Int, x, y int64) *big.Int { return tutte.Eval(coeffs, x, y) }

// CNFFormula is a CNF formula: literal +v is variable v, -v its negation.
type CNFFormula = cnfsat.Formula

// CountCNFSolutions counts satisfying assignments with the Theorem 8(1)
// Camelot algorithm: proof size and time O*(2^{v/2}).
func CountCNFSolutions(ctx context.Context, f *CNFFormula, opts ...Option) (*big.Int, *Report, error) {
	c := newConfig(opts)
	p, err := cnfsat.NewProblem(f)
	if err != nil {
		return nil, nil, err
	}
	proof, rep, err := runOneShot(ctx, p, c)
	if err != nil {
		return nil, rep, err
	}
	count, err := p.CountSolutions(proof)
	return count, rep, err
}

// Permanent computes the permanent of an integer matrix with the
// Theorem 8(2) Camelot algorithm: proof size and time O*(2^{n/2})
// against Ryser's O*(2^n).
func Permanent(ctx context.Context, a [][]int64, opts ...Option) (*big.Int, *Report, error) {
	c := newConfig(opts)
	p, err := permanent.NewProblem(a)
	if err != nil {
		return nil, nil, err
	}
	proof, rep, err := runOneShot(ctx, p, c)
	if err != nil {
		return nil, rep, err
	}
	per, err := p.Recover(proof)
	return per, rep, err
}

// CountHamiltonianCycles counts the (undirected) Hamiltonian cycles of g
// with the Theorem 8(3) Camelot algorithm: proof size and time
// O*(2^{n/2}).
func CountHamiltonianCycles(ctx context.Context, g *Graph, opts ...Option) (*big.Int, *Report, error) {
	c := newConfig(opts)
	p, err := hamilton.NewProblem(g.g)
	if err != nil {
		return nil, nil, err
	}
	proof, rep, err := runOneShot(ctx, p, c)
	if err != nil {
		return nil, rep, err
	}
	count, err := p.RecoverUndirected(proof)
	return count, rep, err
}

// CountHamiltonianPaths counts the (undirected) Hamiltonian paths of g —
// the Appendix A.5 closing remark — with proof size and time O*(2^{n/2}).
func CountHamiltonianPaths(ctx context.Context, g *Graph, opts ...Option) (*big.Int, *Report, error) {
	c := newConfig(opts)
	p, err := hamilton.NewPathProblem(g.g)
	if err != nil {
		return nil, nil, err
	}
	proof, rep, err := runOneShot(ctx, p, c)
	if err != nil {
		return nil, rep, err
	}
	count, err := p.RecoverUndirected(proof)
	return count, rep, err
}

// CountSetCovers counts ordered t-tuples from the family (sets given as
// bit masks over an n-element universe) whose union is the universe,
// with the Theorem 9 Camelot algorithm: proof size and time O*(2^{n/2}).
func CountSetCovers(ctx context.Context, family []uint64, n, t int, opts ...Option) (*big.Int, *Report, error) {
	c := newConfig(opts)
	p, err := setcover.NewCoverProblem(family, n, t)
	if err != nil {
		return nil, nil, err
	}
	proof, rep, err := runOneShot(ctx, p, c)
	if err != nil {
		return nil, rep, err
	}
	count, err := p.RecoverCovers(proof)
	return count, rep, err
}

// CountSetPartitions counts the unordered partitions of the universe
// into t sets from the family, with the Theorem 10 Camelot algorithm.
func CountSetPartitions(ctx context.Context, family []uint64, n, t int, opts ...Option) (*big.Int, *Report, error) {
	c := newConfig(opts)
	p, err := setcover.NewExactCoverProblem(family, n, t)
	if err != nil {
		return nil, nil, err
	}
	proof, rep, err := runOneShot(ctx, p, c)
	if err != nil {
		return nil, rep, err
	}
	count, err := p.RecoverPartitions(proof)
	return count, rep, err
}

// CountOrthogonalPairs returns, for each row of a, how many rows of b
// are orthogonal to it (Theorem 11(1): proof size and time Õ(nt)).
// Matrices are n×t row-major 0/1.
func CountOrthogonalPairs(ctx context.Context, n, t int, a, b []uint8, opts ...Option) ([]int64, *Report, error) {
	c := newConfig(opts)
	am, err := orthvec.NewBoolMatrix(n, t, a)
	if err != nil {
		return nil, nil, err
	}
	bm, err := orthvec.NewBoolMatrix(n, t, b)
	if err != nil {
		return nil, nil, err
	}
	p, err := orthvec.NewOVProblem(am, bm)
	if err != nil {
		return nil, nil, err
	}
	proof, rep, err := runOneShot(ctx, p, c)
	if err != nil {
		return nil, rep, err
	}
	counts, err := p.Counts(proof)
	return counts, rep, err
}

// HammingDistribution returns counts[i][h] = number of rows of b at
// Hamming distance h from row i of a (Theorem 11(2): Õ(nt²)).
func HammingDistribution(ctx context.Context, n, t int, a, b []uint8, opts ...Option) ([][]int64, *Report, error) {
	c := newConfig(opts)
	am, err := orthvec.NewBoolMatrix(n, t, a)
	if err != nil {
		return nil, nil, err
	}
	bm, err := orthvec.NewBoolMatrix(n, t, b)
	if err != nil {
		return nil, nil, err
	}
	p, err := orthvec.NewHammingProblem(am, bm)
	if err != nil {
		return nil, nil, err
	}
	proof, rep, err := runOneShot(ctx, p, c)
	if err != nil {
		return nil, rep, err
	}
	dist, err := p.Distribution(proof)
	return dist, rep, err
}

// Convolution3SUM counts the witnesses of A[i]+A[ℓ] = A[i+ℓ] per index
// i in [1, n/2] (Theorem 11(3): Õ(nt²)). The array is 1-based
// conceptually; a[0] is A[1].
func Convolution3SUM(ctx context.Context, a []uint64, bits int, opts ...Option) ([]int64, *Report, error) {
	c := newConfig(opts)
	p, err := conv3sum.NewProblem(a, bits)
	if err != nil {
		return nil, nil, err
	}
	proof, rep, err := runOneShot(ctx, p, c)
	if err != nil {
		return nil, rep, err
	}
	counts, err := p.Counts(proof)
	return counts, rep, err
}

// CSPConstraint is a binary constraint with a σ×σ satisfaction table.
type CSPConstraint = csp.Constraint

// CSPSystem is a 2-CSP over n variables (n divisible by 6), alphabet σ.
type CSPSystem = csp.System

// CSPDistribution returns N_k, the number of assignments satisfying
// exactly k constraints, for k = 0..m (Theorem 12: proof size and time
// O*(σ^{ωn/6})).
func CSPDistribution(ctx context.Context, sys *CSPSystem, opts ...Option) ([]*big.Int, *Report, error) {
	c := newConfig(opts)
	p, err := csp.NewProblem(sys, c.run.base)
	if err != nil {
		return nil, nil, err
	}
	proof, rep, err := runOneShot(ctx, p, c)
	if err != nil {
		return nil, rep, err
	}
	dist, err := p.Distribution(proof)
	return dist, rep, err
}

// RandomBoolMatrix returns an n×t 0/1 matrix with the given density —
// a convenience for experiments with the vector problems.
func RandomBoolMatrix(n, t int, density float64, seed int64) []uint8 {
	return randomBits(n, t, density, seed)
}

// --- Counting problems for the session API ------------------------------------

// CountingProblem pairs a Problem with its integer-count recovery, so
// counting workloads can be submitted to a Cluster asynchronously and
// their answers recovered from the job's proof:
//
//	job := cluster.Submit(ctx, p)
//	proof, _, err := job.Wait(ctx)
//	count, err := p.Count(proof)
type CountingProblem interface {
	Problem
	// Count recovers the integer answer from a decoded proof.
	Count(proof *Proof) (*big.Int, error)
}

// countingProblem adapts an internal problem + recovery closure.
type countingProblem struct {
	core.Problem
	count func(*core.Proof) (*big.Int, error)
}

func (p countingProblem) Count(proof *Proof) (*big.Int, error) { return p.count(proof) }

// countingCompiledProblem preserves the compiled-plan fast path through
// the adapter: embedding the bare Problem interface would hide Compile
// from the planner's type assertion, silently downgrading every spec
// workload to per-point evaluation.
type countingCompiledProblem struct {
	core.CompiledProblem
	count func(*core.Proof) (*big.Int, error)
}

func (p countingCompiledProblem) Count(proof *Proof) (*big.Int, error) { return p.count(proof) }

// countingBatchProblem preserves the legacy BatchProblem seam for
// problems that block-evaluate without a compile phase.
type countingBatchProblem struct {
	core.BatchProblem
	count func(*core.Proof) (*big.Int, error)
}

func (p countingBatchProblem) Count(proof *Proof) (*big.Int, error) { return p.count(proof) }

func newCountingProblem(p core.Problem, count func(*core.Proof) (*big.Int, error)) CountingProblem {
	if cp, ok := p.(core.CompiledProblem); ok {
		return countingCompiledProblem{CompiledProblem: cp, count: count}
	}
	if bp, ok := p.(core.BatchProblem); ok {
		return countingBatchProblem{BatchProblem: bp, count: count}
	}
	return countingProblem{Problem: p, count: count}
}

// NewTriangleProblem builds the Theorem 3 triangle-counting problem for
// cluster submission. Run-scoped options select the tensor
// decomposition; everything else is ignored.
func NewTriangleProblem(g *Graph, opts ...RunOption) (CountingProblem, error) {
	rs := applyRunOptions(opts)
	p, err := triangles.NewProblem(g.g, rs.base)
	if err != nil {
		return nil, err
	}
	return newCountingProblem(p, p.Recover), nil
}

// NewCliqueProblem builds the Theorem 1 k-clique problem (k divisible
// by 6) for cluster submission.
func NewCliqueProblem(g *Graph, k int, opts ...RunOption) (CountingProblem, error) {
	rs := applyRunOptions(opts)
	p, err := cliques.NewProblem(g.g, k, rs.base)
	if err != nil {
		return nil, err
	}
	return newCountingProblem(p, p.Recover), nil
}

// NewPermanentProblem builds the Theorem 8(2) permanent problem for
// cluster submission.
func NewPermanentProblem(a [][]int64) (CountingProblem, error) {
	p, err := permanent.NewProblem(a)
	if err != nil {
		return nil, err
	}
	return newCountingProblem(p, p.Recover), nil
}

// NewCNFProblem builds the Theorem 8(1) #CNFSAT problem for cluster
// submission.
func NewCNFProblem(f *CNFFormula) (CountingProblem, error) {
	p, err := cnfsat.NewProblem(f)
	if err != nil {
		return nil, err
	}
	return newCountingProblem(p, p.CountSolutions), nil
}

// NewHamiltonianCycleProblem builds the Theorem 8(3) Hamiltonian cycle
// problem for cluster submission.
func NewHamiltonianCycleProblem(g *Graph) (CountingProblem, error) {
	p, err := hamilton.NewProblem(g.g)
	if err != nil {
		return nil, err
	}
	return newCountingProblem(p, p.RecoverUndirected), nil
}

func applyRunOptions(opts []RunOption) runSettings {
	rs := defaultRunSettings()
	for _, o := range opts {
		o.applyRun(&rs)
	}
	return rs
}
