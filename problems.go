package camelot

import (
	"context"
	"math/big"

	"camelot/internal/chromatic"
	"camelot/internal/cliques"
	"camelot/internal/cnfsat"
	"camelot/internal/conv3sum"
	"camelot/internal/core"
	"camelot/internal/csp"
	"camelot/internal/hamilton"
	"camelot/internal/orthvec"
	"camelot/internal/permanent"
	"camelot/internal/setcover"
	"camelot/internal/triangles"
	"camelot/internal/tutte"
)

// RunProblem executes the full Camelot protocol — distributed proof
// preparation, per-node Gao decoding with failed-node identification,
// and randomized verification — for any Problem. Most callers use the
// problem-specific functions below instead.
func RunProblem(ctx context.Context, p Problem, opts ...Option) (*Proof, *Report, error) {
	c := newConfig(opts)
	return core.Run(ctx, p, c.opts)
}

// VerifyProof spot-checks a proof against the input with the given
// number of trials — the Merlin–Arthur mode (paper §1.1): Arthur accepts
// a correct proof always and a forged one with probability at most
// (d/q)^trials, spending one node's work per trial.
func VerifyProof(p Problem, proof *Proof, trials int, seed int64) (bool, error) {
	return core.VerifyProof(p, proof, trials, seed)
}

// CountCliques counts the k-cliques of g (k divisible by 6) with the
// Theorem 1 Camelot algorithm: proof size and per-node time O(n^{ωk/6}),
// matching the best sequential total.
func CountCliques(ctx context.Context, g *Graph, k int, opts ...Option) (*big.Int, *Report, error) {
	c := newConfig(opts)
	p, err := cliques.NewProblem(g.g, k, c.base)
	if err != nil {
		return nil, nil, err
	}
	proof, rep, err := core.Run(ctx, p, c.opts)
	if err != nil {
		return nil, rep, err
	}
	count, err := p.Recover(proof)
	return count, rep, err
}

// CountCliquesSequential counts k-cliques with the Nešetřil–Poljak
// baseline (no proof, no distribution) for comparison.
func CountCliquesSequential(g *Graph, k int) (*big.Int, error) {
	return cliques.CountNesetrilPoljak(g.g, k)
}

// CountTriangles counts the triangles of g with the Theorem 3 Camelot
// algorithm: proof size O(n^ω/m), per-node time Õ(m).
func CountTriangles(ctx context.Context, g *Graph, opts ...Option) (*big.Int, *Report, error) {
	c := newConfig(opts)
	p, err := triangles.NewProblem(g.g, c.base)
	if err != nil {
		return nil, nil, err
	}
	proof, rep, err := core.Run(ctx, p, c.opts)
	if err != nil {
		return nil, rep, err
	}
	count, err := p.Recover(proof)
	return count, rep, err
}

// ChromaticPolynomial computes the chromatic polynomial of g with the
// Theorem 6 Camelot algorithm (proof size and time O*(2^{n/2})),
// returning the integer coefficients c_0..c_n of χ_G(t) = Σ c_k t^k.
func ChromaticPolynomial(ctx context.Context, g *Graph, opts ...Option) ([]*big.Int, *Report, error) {
	c := newConfig(opts)
	p, err := chromatic.NewProblem(g.g)
	if err != nil {
		return nil, nil, err
	}
	proof, rep, err := core.Run(ctx, p, c.opts)
	if err != nil {
		return nil, rep, err
	}
	coeffs, err := p.Coefficients(proof)
	return coeffs, rep, err
}

// TutteResult carries the recovered Tutte and random-cluster polynomials.
type TutteResult = tutte.Result

// TuttePolynomial computes the Tutte polynomial of a multigraph with the
// Theorem 7 Camelot algorithm: proof size O*(2^{n/3}), per-node time
// O*(2^{ωn/3}), one run per Fortuin–Kasteleyn line r = 1..m+1.
func TuttePolynomial(ctx context.Context, mg *Multigraph, opts ...Option) (*TutteResult, error) {
	c := newConfig(opts)
	return tutte.Compute(ctx, mg.mg, c.opts)
}

// EvalTutte evaluates a recovered Tutte coefficient matrix at (x, y).
func EvalTutte(coeffs [][]*big.Int, x, y int64) *big.Int { return tutte.Eval(coeffs, x, y) }

// CNFFormula is a CNF formula: literal +v is variable v, -v its negation.
type CNFFormula = cnfsat.Formula

// CountCNFSolutions counts satisfying assignments with the Theorem 8(1)
// Camelot algorithm: proof size and time O*(2^{v/2}).
func CountCNFSolutions(ctx context.Context, f *CNFFormula, opts ...Option) (*big.Int, *Report, error) {
	c := newConfig(opts)
	p, err := cnfsat.NewProblem(f)
	if err != nil {
		return nil, nil, err
	}
	proof, rep, err := core.Run(ctx, p, c.opts)
	if err != nil {
		return nil, rep, err
	}
	count, err := p.CountSolutions(proof)
	return count, rep, err
}

// Permanent computes the permanent of an integer matrix with the
// Theorem 8(2) Camelot algorithm: proof size and time O*(2^{n/2})
// against Ryser's O*(2^n).
func Permanent(ctx context.Context, a [][]int64, opts ...Option) (*big.Int, *Report, error) {
	c := newConfig(opts)
	p, err := permanent.NewProblem(a)
	if err != nil {
		return nil, nil, err
	}
	proof, rep, err := core.Run(ctx, p, c.opts)
	if err != nil {
		return nil, rep, err
	}
	per, err := p.Recover(proof)
	return per, rep, err
}

// CountHamiltonianCycles counts the (undirected) Hamiltonian cycles of g
// with the Theorem 8(3) Camelot algorithm: proof size and time
// O*(2^{n/2}).
func CountHamiltonianCycles(ctx context.Context, g *Graph, opts ...Option) (*big.Int, *Report, error) {
	c := newConfig(opts)
	p, err := hamilton.NewProblem(g.g)
	if err != nil {
		return nil, nil, err
	}
	proof, rep, err := core.Run(ctx, p, c.opts)
	if err != nil {
		return nil, rep, err
	}
	count, err := p.RecoverUndirected(proof)
	return count, rep, err
}

// CountHamiltonianPaths counts the (undirected) Hamiltonian paths of g —
// the Appendix A.5 closing remark — with proof size and time O*(2^{n/2}).
func CountHamiltonianPaths(ctx context.Context, g *Graph, opts ...Option) (*big.Int, *Report, error) {
	c := newConfig(opts)
	p, err := hamilton.NewPathProblem(g.g)
	if err != nil {
		return nil, nil, err
	}
	proof, rep, err := core.Run(ctx, p, c.opts)
	if err != nil {
		return nil, rep, err
	}
	count, err := p.RecoverUndirected(proof)
	return count, rep, err
}

// CountSetCovers counts ordered t-tuples from the family (sets given as
// bit masks over an n-element universe) whose union is the universe,
// with the Theorem 9 Camelot algorithm: proof size and time O*(2^{n/2}).
func CountSetCovers(ctx context.Context, family []uint64, n, t int, opts ...Option) (*big.Int, *Report, error) {
	c := newConfig(opts)
	p, err := setcover.NewCoverProblem(family, n, t)
	if err != nil {
		return nil, nil, err
	}
	proof, rep, err := core.Run(ctx, p, c.opts)
	if err != nil {
		return nil, rep, err
	}
	count, err := p.RecoverCovers(proof)
	return count, rep, err
}

// CountSetPartitions counts the unordered partitions of the universe
// into t sets from the family, with the Theorem 10 Camelot algorithm.
func CountSetPartitions(ctx context.Context, family []uint64, n, t int, opts ...Option) (*big.Int, *Report, error) {
	c := newConfig(opts)
	p, err := setcover.NewExactCoverProblem(family, n, t)
	if err != nil {
		return nil, nil, err
	}
	proof, rep, err := core.Run(ctx, p, c.opts)
	if err != nil {
		return nil, rep, err
	}
	count, err := p.RecoverPartitions(proof)
	return count, rep, err
}

// CountOrthogonalPairs returns, for each row of a, how many rows of b
// are orthogonal to it (Theorem 11(1): proof size and time Õ(nt)).
// Matrices are n×t row-major 0/1.
func CountOrthogonalPairs(ctx context.Context, n, t int, a, b []uint8, opts ...Option) ([]int64, *Report, error) {
	c := newConfig(opts)
	am, err := orthvec.NewBoolMatrix(n, t, a)
	if err != nil {
		return nil, nil, err
	}
	bm, err := orthvec.NewBoolMatrix(n, t, b)
	if err != nil {
		return nil, nil, err
	}
	p, err := orthvec.NewOVProblem(am, bm)
	if err != nil {
		return nil, nil, err
	}
	proof, rep, err := core.Run(ctx, p, c.opts)
	if err != nil {
		return nil, rep, err
	}
	counts, err := p.Counts(proof)
	return counts, rep, err
}

// HammingDistribution returns counts[i][h] = number of rows of b at
// Hamming distance h from row i of a (Theorem 11(2): Õ(nt²)).
func HammingDistribution(ctx context.Context, n, t int, a, b []uint8, opts ...Option) ([][]int64, *Report, error) {
	c := newConfig(opts)
	am, err := orthvec.NewBoolMatrix(n, t, a)
	if err != nil {
		return nil, nil, err
	}
	bm, err := orthvec.NewBoolMatrix(n, t, b)
	if err != nil {
		return nil, nil, err
	}
	p, err := orthvec.NewHammingProblem(am, bm)
	if err != nil {
		return nil, nil, err
	}
	proof, rep, err := core.Run(ctx, p, c.opts)
	if err != nil {
		return nil, rep, err
	}
	dist, err := p.Distribution(proof)
	return dist, rep, err
}

// Convolution3SUM counts the witnesses of A[i]+A[ℓ] = A[i+ℓ] per index
// i in [1, n/2] (Theorem 11(3): Õ(nt²)). The array is 1-based
// conceptually; a[0] is A[1].
func Convolution3SUM(ctx context.Context, a []uint64, bits int, opts ...Option) ([]int64, *Report, error) {
	c := newConfig(opts)
	p, err := conv3sum.NewProblem(a, bits)
	if err != nil {
		return nil, nil, err
	}
	proof, rep, err := core.Run(ctx, p, c.opts)
	if err != nil {
		return nil, rep, err
	}
	counts, err := p.Counts(proof)
	return counts, rep, err
}

// CSPConstraint is a binary constraint with a σ×σ satisfaction table.
type CSPConstraint = csp.Constraint

// CSPSystem is a 2-CSP over n variables (n divisible by 6), alphabet σ.
type CSPSystem = csp.System

// CSPDistribution returns N_k, the number of assignments satisfying
// exactly k constraints, for k = 0..m (Theorem 12: proof size and time
// O*(σ^{ωn/6})).
func CSPDistribution(ctx context.Context, sys *CSPSystem, opts ...Option) ([]*big.Int, *Report, error) {
	c := newConfig(opts)
	p, err := csp.NewProblem(sys, c.base)
	if err != nil {
		return nil, nil, err
	}
	proof, rep, err := core.Run(ctx, p, c.opts)
	if err != nil {
		return nil, rep, err
	}
	dist, err := p.Distribution(proof)
	return dist, rep, err
}

// RandomBoolMatrix returns an n×t 0/1 matrix with the given density —
// a convenience for experiments with the vector problems.
func RandomBoolMatrix(n, t int, density float64, seed int64) []uint8 {
	return randomBits(n, t, density, seed)
}
