package camelot

// Textual workload specs: the one-line `kind key=value ...` encoding
// shared by the jobs manifest, the coordinate subcommand, and — most
// importantly — the control protocol's Assign manifests. A multi-process
// run is bit-identical to an in-process one only if the coordinator and
// every worker daemon construct the *same* Problem, so the spec string
// is the canonical instance encoding: the coordinator parses it once
// for its own geometry, ships the raw field string to workers, and each
// worker rebuilds through the same constructor registered here. Random
// workloads stay deterministic because every generator is seeded and
// every omitted field has one default, applied identically on both
// sides.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"camelot/internal/core"
	"camelot/internal/ctrl"
)

// Workload is one parsed spec: the problem ready to run locally, plus
// the (Kind, Instance) pair a coordinator ships to worker daemons.
type Workload struct {
	// Kind is the workload family: triangles, cliques, permanent,
	// cnfsat, or hamilton.
	Kind string
	// Instance is the field encoding ("n=24 p=0.3 seed=7") carried
	// verbatim in Assign manifests.
	Instance []byte
	// Canonical is the fully resolved spec line: every field present
	// with its default applied and its value re-formatted, in the fixed
	// order the constructor reads them. Two spec strings that build the
	// same problem canonicalize identically ("triangles" and
	// "triangles p=0.3 n=32" both yield "triangles seed=1 n=32 p=0.3"),
	// so this — not the verbatim Instance — is cache-key material.
	Canonical string
	// Problem is the constructed counting problem.
	Problem CountingProblem
}

// Digest returns the content address of the proof this workload produces
// under fault tolerance f: a hex SHA-256 over the canonical spec and the
// geometry knobs that shape the proof bytes. The codeword length is
// e = d+1+2f, so f changes Points/Evals and is part of the key; node
// count, erasure budget, repair rounds, and verification seed/trials all
// leave the decoded proof bit-identical and are deliberately excluded.
// The CLI, jobs manifests, and the serve layer must all key caches with
// this digest so a proof prepared through any front end is a hit for the
// others.
func (w *Workload) Digest(faults int) string {
	if faults < 0 {
		faults = 0
	}
	h := sha256.Sum256([]byte(fmt.Sprintf("camelot/proof/v1 %s f=%d", w.Canonical, faults)))
	return hex.EncodeToString(h[:])
}

// PlanDigest returns the cache key for compiled evaluation plans of
// this workload: a hex SHA-256 over the canonical spec alone. Unlike
// Digest it deliberately excludes the fault-tolerance knob — f changes
// the codeword length, not the proof polynomial, so two tenants
// submitting the same instance with different fault budgets share one
// compiled plan per prime.
func (w *Workload) PlanDigest() string {
	h := sha256.Sum256([]byte("camelot/plan/v1 " + w.Canonical))
	return hex.EncodeToString(h[:])
}

// ParseWorkload parses a `kind key=value ...` spec line. Unknown kinds
// and malformed fields error; unknown keys are ignored (forward
// compatibility with newer spec writers). Defaults per kind:
//
//	triangles n=32 p=0.3
//	cliques   n=8 k=6 p=0.7
//	permanent n=10
//	cnfsat    vars=12 clauses=20 width=3
//	hamilton  n=9 p=0.5
//
// and seed=1 everywhere.
func ParseWorkload(spec string) (*Workload, error) {
	parts := strings.Fields(spec)
	if len(parts) == 0 {
		return nil, fmt.Errorf("empty workload spec")
	}
	kind := parts[0]
	instance := strings.Join(parts[1:], " ")
	fields, err := parseSpecFields(parts[1:])
	if err != nil {
		return nil, fmt.Errorf("%s: %w", kind, err)
	}
	s := &specFields{kind: kind, fields: fields}
	p, err := buildProblem(s)
	if err != nil {
		return nil, err
	}
	return &Workload{Kind: kind, Instance: []byte(instance), Canonical: s.canonical(), Problem: p}, nil
}

func parseSpecFields(kvs []string) (map[string]string, error) {
	fields := make(map[string]string, len(kvs))
	for _, kv := range kvs {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("field %q is not key=value", kv)
		}
		fields[k] = v
	}
	return fields, nil
}

// specFields wraps a field map with typed, defaulting accessors whose
// first parse error sticks. Every access also records the resolved
// `key=value` pair (default applied, value re-formatted), so the access
// order of the constructor doubles as the canonical field order — the
// canonical encoding cannot drift from what buildProblem actually built.
type specFields struct {
	kind     string
	fields   map[string]string
	resolved []string
	err      error
}

func (s *specFields) intField(key string, def int) int {
	n := def
	if v, ok := s.fields[key]; ok {
		var err error
		n, err = strconv.Atoi(v)
		if err != nil && s.err == nil {
			s.err = fmt.Errorf("%s: bad %s=%q", s.kind, key, v)
		}
	}
	s.resolved = append(s.resolved, key+"="+strconv.Itoa(n))
	return n
}

func (s *specFields) floatField(key string, def float64) float64 {
	f := def
	if v, ok := s.fields[key]; ok {
		var err error
		f, err = strconv.ParseFloat(v, 64)
		if err != nil && s.err == nil {
			s.err = fmt.Errorf("%s: bad %s=%q", s.kind, key, v)
		}
	}
	s.resolved = append(s.resolved, key+"="+strconv.FormatFloat(f, 'g', -1, 64))
	return f
}

// canonical joins the resolved fields into the normalized spec line.
func (s *specFields) canonical() string {
	if len(s.resolved) == 0 {
		return s.kind
	}
	return s.kind + " " + strings.Join(s.resolved, " ")
}

// buildWorkload constructs the problem a spec names. This single
// function is the coordinator/worker agreement point: both ends route
// through it (the workers via the control-protocol registry below).
func buildWorkload(kind string, fields map[string]string) (CountingProblem, error) {
	return buildProblem(&specFields{kind: kind, fields: fields})
}

// buildProblem constructs the problem from pre-wrapped fields, leaving
// the resolved canonical encoding behind on s for callers that need it.
func buildProblem(s *specFields) (CountingProblem, error) {
	kind := s.kind
	seed := int64(s.intField("seed", 1))
	var p CountingProblem
	var err error
	switch kind {
	case "triangles":
		n, pr := s.intField("n", 32), s.floatField("p", 0.3)
		if s.err != nil {
			return nil, s.err
		}
		p, err = NewTriangleProblem(RandomGraph(n, pr, seed))
	case "cliques":
		n, k, pr := s.intField("n", 8), s.intField("k", 6), s.floatField("p", 0.7)
		if s.err != nil {
			return nil, s.err
		}
		p, err = NewCliqueProblem(RandomGraph(n, pr, seed), k)
	case "permanent":
		n := s.intField("n", 10)
		if s.err != nil {
			return nil, s.err
		}
		p, err = NewPermanentProblem(RandomIntMatrix(n, seed))
	case "cnfsat":
		vars, clauses, width := s.intField("vars", 12), s.intField("clauses", 20), s.intField("width", 3)
		if s.err != nil {
			return nil, s.err
		}
		p, err = NewCNFProblem(RandomCNF(vars, clauses, width, seed))
	case "hamilton":
		n, pr := s.intField("n", 9), s.floatField("p", 0.5)
		if s.err != nil {
			return nil, s.err
		}
		p, err = NewHamiltonianCycleProblem(RandomGraph(n, pr, seed))
	default:
		return nil, fmt.Errorf("%s: unknown workload kind (want triangles|cliques|permanent|cnfsat|hamilton)", kind)
	}
	return p, err
}

// init registers every spec kind with the control-protocol problem
// registry, so any process importing the facade — the camelot binary's
// node subcommand in particular — can rebuild a coordinator's workload
// from its Assign manifest.
func init() {
	for _, kind := range []string{"triangles", "cliques", "permanent", "cnfsat", "hamilton"} {
		kind := kind
		ctrl.RegisterProblem(kind, func(instance []byte) (core.Problem, error) {
			fields, err := parseSpecFields(strings.Fields(string(instance)))
			if err != nil {
				return nil, fmt.Errorf("%s: %w", kind, err)
			}
			return buildWorkload(kind, fields)
		})
	}
}

// RandomCNF draws a uniform width-w CNF over vars variables,
// deterministically in the seed.
func RandomCNF(vars, clauses, width int, seed int64) *CNFFormula {
	rng := rand.New(rand.NewSource(seed))
	f := &CNFFormula{V: vars, Clauses: make([][]int, clauses)}
	for j := range f.Clauses {
		cl := make([]int, width)
		for i := range cl {
			lit := rng.Intn(vars) + 1
			if rng.Intn(2) == 1 {
				lit = -lit
			}
			cl[i] = lit
		}
		f.Clauses[j] = cl
	}
	return f
}

// RandomIntMatrix draws an n×n matrix with entries in [0, 3],
// deterministically in the seed.
func RandomIntMatrix(n int, seed int64) [][]int64 {
	rng := rand.New(rand.NewSource(seed))
	a := make([][]int64, n)
	for i := range a {
		a[i] = make([]int64, n)
		for j := range a[i] {
			a[i][j] = rng.Int63n(4)
		}
	}
	return a
}
