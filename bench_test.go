package camelot

// Benchmarks E01..E13 regenerate the per-theorem experiment measurements
// recorded in EXPERIMENTS.md (the paper is an extended abstract with no
// numbered tables; DESIGN.md §3 maps theorems to experiment ids). Run
//
//	go test -bench=. -benchmem .
//
// Absolute numbers are host-dependent; the claims under test are the
// *shapes*: proof sizes, total-work ratios against sequential baselines,
// 1/K per-node scaling, and verification costing one node's share.

import (
	"context"
	"fmt"
	"testing"

	"camelot/internal/chromatic"
	"camelot/internal/cliques"
	"camelot/internal/cnfsat"
	"camelot/internal/conv3sum"
	"camelot/internal/core"
	"camelot/internal/csp"
	"camelot/internal/ff"
	"camelot/internal/graph"
	"camelot/internal/hamilton"
	"camelot/internal/matrix"
	"camelot/internal/orthvec"
	"camelot/internal/permanent"
	"camelot/internal/poly"
	"camelot/internal/rs"
	"camelot/internal/setcover"
	"camelot/internal/tensor"
	"camelot/internal/triangles"
	"camelot/internal/tutte"
)

// runFull executes a complete Camelot protocol round for benchmarking.
func runFull(b *testing.B, p core.Problem, opts core.Options) *core.Report {
	b.Helper()
	var rep *core.Report
	for i := 0; i < b.N; i++ {
		var err error
		_, rep, err = core.Run(context.Background(), p, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	return rep
}

// --- E1: Theorem 1, k-clique Camelot vs sequential ---------------------------

func BenchmarkE01KCliqueCamelot(b *testing.B) {
	g := graph.Gnp(8, 0.7, 1)
	p, err := cliques.NewProblem(g, 6, tensor.Strassen())
	if err != nil {
		b.Fatal(err)
	}
	rep := runFull(b, p, core.Options{Nodes: 8, Seed: 1, DecodingNodes: 1})
	b.ReportMetric(float64(rep.ProofSymbols), "proof-symbols")
}

func BenchmarkE01KCliqueSequentialNP(b *testing.B) {
	g := graph.Gnp(8, 0.7, 1)
	for i := 0; i < b.N; i++ {
		if _, err := cliques.CountNesetrilPoljak(g, 6); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E2: Theorem 2/13, (6,2)-form circuits -----------------------------------

func benchForm(b *testing.B, n int) *cliques.Form {
	b.Helper()
	g := graph.Gnp(n, 0.7, 2)
	sm, err := cliques.BuildSubsetMatrix(g, 1)
	if err != nil {
		b.Fatal(err)
	}
	f := ff.Must(1048583)
	chi, err := matrix.FromSlice(f, sm.N, sm.N, sm.Entries)
	if err != nil {
		b.Fatal(err)
	}
	form, err := cliques.NewUniformForm(f, chi)
	if err != nil {
		b.Fatal(err)
	}
	return form
}

func BenchmarkE02SixTwoForm(b *testing.B) {
	form := benchForm(b, 8)
	dc, _ := tensor.Strassen().ForSize(8)
	b.Run("nesetril-poljak-N4space", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = form.EvalNesetrilPoljak()
		}
	})
	b.Run("theorem13-parts-N2space", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := form.EvalParts(dc, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E3: Theorem 3, Camelot triangles ----------------------------------------

func BenchmarkE03TrianglesCamelot(b *testing.B) {
	for _, sz := range []struct {
		n int
		p float64
	}{{32, 0.15}, {32, 0.45}} {
		b.Run(fmt.Sprintf("n=%d/m~%.0f", sz.n, sz.p*float64(sz.n*(sz.n-1))/2), func(b *testing.B) {
			g := graph.Gnp(sz.n, sz.p, 7)
			p, err := triangles.NewProblem(g, tensor.Strassen())
			if err != nil {
				b.Fatal(err)
			}
			rep := runFull(b, p, core.Options{Nodes: 4, Seed: 2, DecodingNodes: 1})
			b.ReportMetric(float64(p.NumParts()), "proof-parts")
			b.ReportMetric(float64(rep.Degree), "degree")
		})
	}
}

// --- E4: Theorem 4, split/sparse counting ------------------------------------

func BenchmarkE04TrianglesSplitSparse(b *testing.B) {
	g := graph.Gnp(96, 8.0/96, 3)
	b.Run("split-sparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := triangles.CountSplitSparse(g, tensor.Strassen(), 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("itai-rodeh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := triangles.CountItaiRodeh(g); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E5: Theorem 5, AYZ bound --------------------------------------------------

func BenchmarkE05TrianglesAYZ(b *testing.B) {
	g := graph.Gnp(256, 6.0/256, 5)
	b.Run("ayz", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := triangles.CountAYZ(g, tensor.Strassen(), 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("itai-rodeh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := triangles.CountItaiRodeh(g); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E6: Theorem 6, chromatic polynomial --------------------------------------

func BenchmarkE06Chromatic(b *testing.B) {
	g := graph.Gnp(10, 0.4, 10)
	b.Run("camelot-2^{n/2}", func(b *testing.B) {
		p, err := chromatic.NewProblem(g)
		if err != nil {
			b.Fatal(err)
		}
		rep := runFull(b, p, core.Options{Nodes: 4, Seed: 1, DecodingNodes: 1})
		b.ReportMetric(float64(rep.ProofSymbols), "proof-symbols")
	})
	b.Run("deletion-contraction", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = chromatic.DeletionContraction(g)
		}
	})
}

// --- E7: Theorem 7, Tutte polynomial -------------------------------------------

func BenchmarkE07Tutte(b *testing.B) {
	mg := graph.RandomMultigraph(6, 8, 6)
	b.Run("camelot-full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tutte.Compute(context.Background(), mg, core.Options{Nodes: 2, Seed: 2, DecodingNodes: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("deletion-contraction", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = tutte.DeletionContraction(mg)
		}
	})
}

// --- E8: Theorem 8, #CNFSAT / permanent / Hamilton -----------------------------

func BenchmarkE08CNFSAT(b *testing.B) {
	f := cnfsat.RandomFormula(14, 21, 3, 14)
	b.Run("camelot-2^{v/2}", func(b *testing.B) {
		p, err := cnfsat.NewProblem(f)
		if err != nil {
			b.Fatal(err)
		}
		runFull(b, p, core.Options{Nodes: 4, Seed: 3, DecodingNodes: 1})
	})
	b.Run("brute-2^v", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = cnfsat.CountBrute(f)
		}
	})
}

func BenchmarkE08Permanent(b *testing.B) {
	a := make([][]int64, 12)
	for i := range a {
		a[i] = make([]int64, 12)
		for j := range a[i] {
			a[i][j] = int64((i*j + i + j) % 3)
		}
	}
	b.Run("camelot-2^{n/2}", func(b *testing.B) {
		p, err := permanent.NewProblem(a)
		if err != nil {
			b.Fatal(err)
		}
		runFull(b, p, core.Options{Nodes: 4, Seed: 4, DecodingNodes: 1})
	})
	b.Run("ryser-2^n", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = permanent.Ryser(a)
		}
	})
}

func BenchmarkE08Hamilton(b *testing.B) {
	g := graph.Gnp(9, 0.6, 9)
	b.Run("camelot-2^{n/2}", func(b *testing.B) {
		p, err := hamilton.NewProblem(g)
		if err != nil {
			b.Fatal(err)
		}
		runFull(b, p, core.Options{Nodes: 4, Seed: 5, DecodingNodes: 1})
	})
	b.Run("held-karp-2^n", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = hamilton.CountDP(g)
		}
	})
}

// --- E9: Theorems 9/10, set covers ----------------------------------------------

func BenchmarkE09SetCover(b *testing.B) {
	fam := []uint64{}
	full := uint64(1)<<10 - 1
	for i := uint64(1); len(fam) < 20; i += 37 {
		x := (i * i * 2654435761) & full
		if x != 0 {
			fam = append(fam, x)
		}
	}
	b.Run("camelot-covers", func(b *testing.B) {
		p, err := setcover.NewCoverProblem(fam, 10, 3)
		if err != nil {
			b.Fatal(err)
		}
		runFull(b, p, core.Options{Nodes: 4, Seed: 6, DecodingNodes: 1})
	})
	b.Run("sequential-IE-2^n", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = setcover.CountCoversIE(fam, 10, 3)
		}
	})
}

// --- E10: Theorem 11, near-linear problems ---------------------------------------

func BenchmarkE10OV(b *testing.B) {
	const n, t = 128, 12
	am, _ := orthvec.NewBoolMatrix(n, t, RandomBoolMatrix(n, t, 0.3, 1))
	bm, _ := orthvec.NewBoolMatrix(n, t, RandomBoolMatrix(n, t, 0.3, 2))
	b.Run("camelot", func(b *testing.B) {
		p, err := orthvec.NewOVProblem(am, bm)
		if err != nil {
			b.Fatal(err)
		}
		runFull(b, p, core.Options{Nodes: 4, Seed: 7, DecodingNodes: 1})
	})
	b.Run("naive-n^2t", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = orthvec.CountOrthogonalNaive(am, bm)
		}
	})
}

func BenchmarkE10Hamming(b *testing.B) {
	const n, t = 24, 6
	am, _ := orthvec.NewBoolMatrix(n, t, RandomBoolMatrix(n, t, 0.5, 3))
	bm, _ := orthvec.NewBoolMatrix(n, t, RandomBoolMatrix(n, t, 0.5, 4))
	p, err := orthvec.NewHammingProblem(am, bm)
	if err != nil {
		b.Fatal(err)
	}
	runFull(b, p, core.Options{Nodes: 4, Seed: 8, DecodingNodes: 1})
}

func BenchmarkE10Conv3SUM(b *testing.B) {
	arr := make([]uint64, 32)
	for i := range arr {
		arr[i] = uint64(i + 1)
	}
	p, err := conv3sum.NewProblem(arr, 7)
	if err != nil {
		b.Fatal(err)
	}
	runFull(b, p, core.Options{Nodes: 4, Seed: 9, DecodingNodes: 1})
}

// --- E11: Theorem 12, 2-CSP --------------------------------------------------------

func BenchmarkE11CSP(b *testing.B) {
	sys := csp.RandomSystem(12, 2, 8, 0.5, 11)
	p, err := csp.NewProblem(sys, tensor.Strassen())
	if err != nil {
		b.Fatal(err)
	}
	rep := runFull(b, p, core.Options{Nodes: 4, Seed: 10, DecodingNodes: 1})
	b.ReportMetric(float64(rep.ProofSymbols), "proof-symbols")
}

// --- E12: framework robustness and verification -----------------------------------

func BenchmarkE12Robustness(b *testing.B) {
	g := graph.Gnp(24, 0.3, 9)
	p, err := triangles.NewProblem(g, tensor.Strassen())
	if err != nil {
		b.Fatal(err)
	}
	d := p.Degree()
	const k = 8
	f := 0
	for {
		e := d + 1 + 2*f
		if f >= (e+k-1)/k {
			break
		}
		f++
	}
	runFull(b, p, core.Options{
		Nodes: k, FaultTolerance: f, Adversary: core.NewEquivocatingNodes(1, 3),
		Seed: 1, DecodingNodes: 1,
	})
}

func BenchmarkE12Verify(b *testing.B) {
	// Verification must cost about one node's single evaluation.
	g := graph.Gnp(24, 0.3, 9)
	p, err := triangles.NewProblem(g, tensor.Strassen())
	if err != nil {
		b.Fatal(err)
	}
	proof, _, err := core.Run(context.Background(), p, core.Options{Seed: 2, DecodingNodes: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := core.VerifyProof(p, proof, 1, int64(i))
		if err != nil || !ok {
			b.Fatalf("verify: ok=%v err=%v", ok, err)
		}
	}
}

func BenchmarkE12GaoDecode(b *testing.B) {
	// The per-node decode cost: e=2048 codeword with 200 corruptions.
	q, _, err := ff.NTTPrime(1<<20, 1<<12)
	if err != nil {
		b.Fatal(err)
	}
	ring := poly.NewRing(ff.Must(q))
	code, err := rs.New(ring, rs.ConsecutivePoints(2048), 1500)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]uint64, 1501)
	for i := range msg {
		msg[i] = uint64(i) * 31 % q
	}
	cw, err := code.Encode(msg)
	if err != nil {
		b.Fatal(err)
	}
	rx := make([]uint64, len(cw))
	copy(rx, cw)
	for i := 0; i < 200; i++ {
		rx[i*10] = (rx[i*10] + 7) % q
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := code.Decode(rx); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E14: compiled-plan block evaluation vs per-point fallback ------------------------

// benchBatchVsPerPoint times one node's steady-state workload —
// evaluating a block of consecutive code points for one prime — through
// a compiled plan (compiled once, as the scheduler's planner does per
// task group) and the generic per-point fallback, which pays the full
// per-prime setup on every point.
func benchBatchVsPerPoint(b *testing.B, p core.CompiledProblem, q uint64, points int) {
	xs := make([]uint64, points)
	for i := range xs {
		xs[i] = uint64(i)
	}
	f, err := ff.New(q)
	if err != nil {
		b.Fatal(err)
	}
	pl, err := p.Compile(f)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pl.EvaluateBlock(xs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("perpoint", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, x := range xs {
				if _, err := p.Evaluate(q, x); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

func BenchmarkE14BatchPermanent(b *testing.B) {
	a := make([][]int64, 12)
	for i := range a {
		a[i] = make([]int64, 12)
		for j := range a[i] {
			a[i][j] = int64((i*j + i + j) % 3)
		}
	}
	p, err := permanent.NewProblem(a)
	if err != nil {
		b.Fatal(err)
	}
	q, _, err := ff.NTTPrime(p.MinModulus(), 4)
	if err != nil {
		b.Fatal(err)
	}
	benchBatchVsPerPoint(b, p, q, 128)
}

func BenchmarkE14BatchKClique(b *testing.B) {
	g := graph.Gnp(8, 0.7, 1)
	p, err := cliques.NewProblem(g, 6, tensor.Strassen())
	if err != nil {
		b.Fatal(err)
	}
	q, _, err := ff.NTTPrime(p.MinModulus(), 4)
	if err != nil {
		b.Fatal(err)
	}
	benchBatchVsPerPoint(b, p, q, 128)
}

func BenchmarkE14BatchTriangles(b *testing.B) {
	g := graph.Gnp(48, 0.25, 7)
	p, err := triangles.NewProblem(g, tensor.Strassen())
	if err != nil {
		b.Fatal(err)
	}
	q, _, err := ff.NTTPrime(p.MinModulus(), 4)
	if err != nil {
		b.Fatal(err)
	}
	benchBatchVsPerPoint(b, p, q, 128)
}

func BenchmarkE14BatchCNFSAT(b *testing.B) {
	f := cnfsat.RandomFormula(14, 21, 3, 14)
	p, err := cnfsat.NewProblem(f)
	if err != nil {
		b.Fatal(err)
	}
	q, _, err := ff.NTTPrime(p.MinModulus(), 4)
	if err != nil {
		b.Fatal(err)
	}
	benchBatchVsPerPoint(b, p, q, 128)
}

func BenchmarkE14BatchChromatic(b *testing.B) {
	g := graph.Gnp(10, 0.4, 10)
	p, err := chromatic.NewProblem(g)
	if err != nil {
		b.Fatal(err)
	}
	q, _, err := ff.NTTPrime(p.MinModulus(), 4)
	if err != nil {
		b.Fatal(err)
	}
	benchBatchVsPerPoint(b, p, q, 128)
}

func BenchmarkE14BatchSetCover(b *testing.B) {
	fam := []uint64{}
	full := uint64(1)<<10 - 1
	for i := uint64(1); len(fam) < 40; i += 37 {
		x := (i * i * 2654435761) & full
		if x != 0 {
			fam = append(fam, x)
		}
	}
	p, err := setcover.NewCoverProblem(fam, 10, 3)
	if err != nil {
		b.Fatal(err)
	}
	q, _, err := ff.NTTPrime(p.MinModulus(), 4)
	if err != nil {
		b.Fatal(err)
	}
	benchBatchVsPerPoint(b, p, q, 128)
}

func BenchmarkE14BatchTutte(b *testing.B) {
	mg := graph.RandomMultigraph(7, 10, 6)
	p, err := tutte.NewProblem(mg, 2)
	if err != nil {
		b.Fatal(err)
	}
	q, _, err := ff.NTTPrime(p.MinModulus(), 4)
	if err != nil {
		b.Fatal(err)
	}
	benchBatchVsPerPoint(b, p, q, 64)
}

func BenchmarkE14BatchHamilton(b *testing.B) {
	g := graph.Gnp(12, 0.5, 9)
	p, err := hamilton.NewProblem(g)
	if err != nil {
		b.Fatal(err)
	}
	q, _, err := ff.NTTPrime(p.MinModulus(), 4)
	if err != nil {
		b.Fatal(err)
	}
	benchBatchVsPerPoint(b, p, q, 64)
}

func BenchmarkE14BatchConv3SUM(b *testing.B) {
	arr := make([]uint64, 32)
	for i := range arr {
		arr[i] = uint64(i + 1)
	}
	p, err := conv3sum.NewProblem(arr, 7)
	if err != nil {
		b.Fatal(err)
	}
	q, _, err := ff.NTTPrime(p.MinModulus(), 4)
	if err != nil {
		b.Fatal(err)
	}
	benchBatchVsPerPoint(b, p, q, 128)
}

func BenchmarkE14BatchCSP(b *testing.B) {
	sys := csp.RandomSystem(12, 2, 8, 0.5, 11)
	p, err := csp.NewProblem(sys, tensor.Strassen())
	if err != nil {
		b.Fatal(err)
	}
	q, _, err := ff.NTTPrime(p.MinModulus(), 4)
	if err != nil {
		b.Fatal(err)
	}
	benchBatchVsPerPoint(b, p, q, 64)
}

// --- E16: batched proof verification --------------------------------------------------

// BenchmarkE16VerifyProofBatch compares the RLC batch verifier against the
// per-point spot-check audit path on a 64-point proof whose Evaluate is
// deliberately expensive (set cover over a 512-set family): the per-point
// verifier must re-evaluate the problem at every sampled point, while the
// batch check only touches the proof's own coefficient and evaluation
// tables. ISSUE 6 requires the batch path to win by >= 3x here.
func BenchmarkE16VerifyProofBatch(b *testing.B) {
	fam := make([]uint64, 512)
	for i := range fam {
		fam[i] = uint64(i % 64) // duplicates and the empty set are legal for covers
	}
	p, err := setcover.NewCoverProblem(fam, 6, 2)
	if err != nil {
		b.Fatal(err)
	}
	proof, rep, err := core.Run(context.Background(), p, core.Options{Nodes: 4, Seed: 21})
	if err != nil {
		b.Fatal(err)
	}
	if !rep.Verified {
		b.Fatal("seed proof not verified")
	}
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ok, err := core.VerifyProofBatch(proof, int64(i))
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				b.Fatal("batch verifier rejected a valid proof")
			}
		}
	})
	b.Run("perpoint", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ok, err := core.VerifyProof(p, proof, 1, int64(i))
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				b.Fatal("per-point verifier rejected a valid proof")
			}
		}
	})
}

// --- E15: session-layer job throughput -----------------------------------------------

// mixedJobProblems builds a mixed E14-style service workload: several
// fresh counting problems per batch, the way a cluster sees a stream of
// inputs. Construction cost is part of the job on both sides of the
// comparison.
func mixedJobProblems(b *testing.B) []core.Problem {
	b.Helper()
	var problems []core.Problem
	for seed := int64(1); seed <= 3; seed++ {
		tp, err := triangles.NewProblem(graph.Gnp(24, 0.3, seed), tensor.Strassen())
		if err != nil {
			b.Fatal(err)
		}
		problems = append(problems, tp)
		a := make([][]int64, 8)
		for i := range a {
			a[i] = make([]int64, 8)
			for j := range a[i] {
				a[i][j] = int64((i*j + i + int(seed)) % 3)
			}
		}
		pp, err := permanent.NewProblem(a)
		if err != nil {
			b.Fatal(err)
		}
		problems = append(problems, pp)
		cp, err := cnfsat.NewProblem(cnfsat.RandomFormula(10, 15, 3, seed))
		if err != nil {
			b.Fatal(err)
		}
		problems = append(problems, cp)
		hp, err := hamilton.NewProblem(graph.Gnp(9, 0.5, seed))
		if err != nil {
			b.Fatal(err)
		}
		problems = append(problems, hp)
	}
	return problems
}

// BenchmarkJobsClusterThroughput runs the mixed workload as concurrent
// jobs on one warm cluster — the session serving pattern. Compare
// against BenchmarkJobsSequentialRun for the jobs/sec ratio recorded in
// BENCH_3.json.
func BenchmarkJobsClusterThroughput(b *testing.B) {
	cluster := NewCluster(WithNodes(2))
	defer cluster.Close()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		problems := mixedJobProblems(b)
		jobs := make([]*Job, len(problems))
		for j, p := range problems {
			jobs[j] = cluster.Submit(ctx, p, WithSeed(1), WithDecodingNodes(1))
		}
		for _, job := range jobs {
			if _, _, err := job.Wait(ctx); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkJobsSequentialRun is the baseline the facade used to be: the
// same mixed workload through one-shot core.Run calls, rebuilding
// geometry per call, one job at a time.
func BenchmarkJobsSequentialRun(b *testing.B) {
	opts := core.Options{Nodes: 2, Seed: 1, DecodingNodes: 1}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range mixedJobProblems(b) {
			if _, _, err := core.Run(ctx, p, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkJobsTutteConcurrentLines runs the facade's Tutte driver —
// m+1 Fortuin–Kasteleyn lines as concurrent jobs on the default
// cluster — against the sequential line loop below.
func BenchmarkJobsTutteConcurrentLines(b *testing.B) {
	mg := RandomMultigraph(6, 8, 6)
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		if _, err := TuttePolynomial(ctx, mg, WithNodes(2), WithSeed(2), WithDecodingNodes(1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJobsTutteSequentialLines(b *testing.B) {
	mg := graph.RandomMultigraph(6, 8, 6)
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		if _, err := tutte.Compute(ctx, mg, core.Options{Nodes: 2, Seed: 2, DecodingNodes: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E13: K-node tradeoff ------------------------------------------------------------

func BenchmarkE13Tradeoff(b *testing.B) {
	g := graph.Gnp(8, 0.7, 11)
	for _, k := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			p, err := cliques.NewProblem(g, 6, tensor.Strassen())
			if err != nil {
				b.Fatal(err)
			}
			rep := runFull(b, p, core.Options{Nodes: k, Seed: 6, DecodingNodes: 1})
			b.ReportMetric(float64(rep.MaxNodeCompute.Microseconds())/1000, "pernode-ms")
			b.ReportMetric(float64(rep.CodeLength)/float64(k), "points-per-node")
		})
	}
}
