package camelot

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// serveGatedTransport blocks every Send until the gate closes, holding
// runs deterministically in flight so admission-control tests see a
// full queue instead of racing run completion.
type serveGatedTransport struct {
	inner Transport
	gate  chan struct{}
}

func (t *serveGatedTransport) Send(ctx context.Context, m NodeShares) error {
	select {
	case <-t.gate:
	case <-ctx.Done():
		return ctx.Err()
	}
	return t.inner.Send(ctx, m)
}

func (t *serveGatedTransport) Gather(ctx context.Context, k int) ([]NodeShares, error) {
	return t.inner.Gather(ctx, k)
}

// TestServeCacheHitsAreBitIdentical storms one server from two tenants
// with a shared (cache-hitting) workload and per-goroutine distinct
// (cache-missing) workloads, and asserts every cached serve is
// bit-identical to an independently prepared fresh proof.
func TestServeCacheHitsAreBitIdentical(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cl := NewCluster(WithNodes(3))
	defer cl.Close()
	srv := NewServer(cl, ServerConfig{
		FaultTolerance: 1,
		MaxQueueDepth:  64,
		Tenants: map[string]TenantConfig{
			"alice": {MaxInFlight: 16, Priority: 3},
			"bob":   {MaxInFlight: 16, Priority: 1},
		},
	})
	defer srv.Close()

	const shared = "triangles n=16 p=0.3 seed=42"
	// A fresh proof of the shared workload prepared entirely outside the
	// server (different cluster, different node count): the cache must
	// reproduce it bit for bit — proofs are deterministic in (canonical
	// spec, fault tolerance), not in who prepared them.
	w, err := ParseWorkload(shared)
	if err != nil {
		t.Fatal(err)
	}
	proof, _, err := RunProblem(ctx, w.Problem, WithFaultTolerance(1))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := proof.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	out, err := srv.Submit("alice", shared)
	if err != nil {
		t.Fatal(err)
	}
	if out.State != "running" {
		t.Fatalf("first submission state = %q, want running", out.State)
	}
	ref, err := srv.Result(ctx, out.Digest)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref, fresh) {
		t.Fatal("server-prepared proof differs from an independently prepared fresh proof")
	}

	const workers = 8
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for g := 0; g < workers; g++ {
		tenant := "alice"
		if g%2 == 1 {
			tenant = "bob"
		}
		distinct := fmt.Sprintf("triangles n=12 p=0.3 seed=%d", 100+g)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				hit, err := srv.Submit(tenant, shared)
				if err != nil {
					errc <- fmt.Errorf("%s shared submit: %w", tenant, err)
					return
				}
				got, err := srv.Result(ctx, hit.Digest)
				if err != nil {
					errc <- fmt.Errorf("%s shared result: %w", tenant, err)
					return
				}
				if !bytes.Equal(got, fresh) {
					errc <- fmt.Errorf("%s: cached proof not bit-identical to fresh", tenant)
					return
				}
				miss, err := srv.Submit(tenant, distinct)
				if err != nil {
					errc <- fmt.Errorf("%s distinct submit: %w", tenant, err)
					return
				}
				if miss.Digest == hit.Digest {
					errc <- fmt.Errorf("distinct workload %q collided with shared digest", distinct)
					return
				}
				db, err := srv.Result(ctx, miss.Digest)
				if err != nil {
					errc <- fmt.Errorf("%s distinct result: %w", tenant, err)
					return
				}
				var dp Proof
				if err := dp.UnmarshalBinary(db); err != nil {
					errc <- fmt.Errorf("%s distinct proof bytes: %w", tenant, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if hits := srv.cacheHits.Load() + srv.coalesced.Load(); hits == 0 {
		t.Error("repeated identical submissions produced no cache hits")
	}
	if ok, err := srv.VerifyStored(ctx, out.Digest); err != nil || !ok {
		t.Fatalf("VerifyStored on cached proof = (%v, %v), want (true, nil)", ok, err)
	}
	// Every digest-keyed run compiles each (workload, prime) plan once
	// (misses) and reuses it across that run's chunks and any later
	// identical submission (hits); the storm must have produced both.
	planHits, planMisses := cl.PlanCacheStats()
	if planHits == 0 || planMisses == 0 {
		t.Errorf("plan cache stats = (%d hits, %d misses), want both > 0", planHits, planMisses)
	}
	var metrics strings.Builder
	srv.WriteMetrics(&metrics)
	if !strings.Contains(metrics.String(), fmt.Sprintf("camelot_plan_cache_hits %d\n", planHits)) ||
		!strings.Contains(metrics.String(), fmt.Sprintf("camelot_plan_cache_misses %d\n", planMisses)) {
		t.Errorf("metrics missing plan cache counters:\n%s", metrics.String())
	}
}

// TestServeQuotaRefusalsTyped pins the admission-control contract: a
// tenant at its in-flight cap is refused with ErrTenantQuota, a full
// server with ErrQueueFull, and attaching to an identical in-flight
// preparation is never refused (single-flight does not consume quota).
func TestServeQuotaRefusalsTyped(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	gate := make(chan struct{})
	cl := NewCluster(WithNodes(2), WithTransport(func(k int) Transport {
		return &serveGatedTransport{inner: NewBroadcastBus(k), gate: gate}
	}))
	defer cl.Close()
	srv := NewServer(cl, ServerConfig{MaxQueueDepth: 2, DefaultMaxInFlight: 1})
	defer srv.Close()

	first, err := srv.Submit("alice", "triangles n=12 p=0.3 seed=1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit("alice", "triangles n=12 p=0.3 seed=2"); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("tenant over cap: err = %v, want ErrTenantQuota", err)
	}
	again, err := srv.Submit("alice", "triangles n=12 p=0.3 seed=1")
	if err != nil {
		t.Fatalf("coalescing with own in-flight run should not consume quota: %v", err)
	}
	if again.State != "coalesced" {
		t.Fatalf("identical in-flight resubmission state = %q, want coalesced", again.State)
	}
	second, err := srv.Submit("bob", "triangles n=12 p=0.3 seed=2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit("carol", "triangles n=12 p=0.3 seed=3"); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("server at queue depth: err = %v, want ErrQueueFull", err)
	}

	close(gate)
	for _, digest := range []string{first.Digest, second.Digest} {
		if _, err := srv.Result(ctx, digest); err != nil {
			t.Fatalf("result after release: %v", err)
		}
	}
	// With the queue drained, the refused tenants are admitted.
	if _, err := srv.Submit("carol", "triangles n=12 p=0.3 seed=3"); err != nil {
		t.Fatalf("submission after drain: %v", err)
	}
}

// TestServeHTTPRoundTrip drives the wire interface end to end: submit,
// long-poll the result, verify the cached artifact, re-submit for a
// cache hit, and read the metrics — plus the 400/404/429 edges.
func TestServeHTTPRoundTrip(t *testing.T) {
	cl := NewCluster(WithNodes(2))
	defer cl.Close()
	srv := NewServer(cl, ServerConfig{FaultTolerance: 1, RetryAfter: 3 * time.Second})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(path, body string) (*http.Response, []byte) {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, b
	}
	get := func(path string) (*http.Response, []byte) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, b
	}

	resp, body := post("/v1/submit", `{"tenant":"alice","spec":"triangles n=12 p=0.3 seed=7"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, body %s", resp.StatusCode, body)
	}
	var sub struct{ Digest, State string }
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}

	resp, proofBytes := get("/v1/result?digest=" + sub.Digest)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status = %d, body %s", resp.StatusCode, proofBytes)
	}
	var proof Proof
	if err := proof.UnmarshalBinary(proofBytes); err != nil {
		t.Fatalf("result bytes do not unmarshal: %v", err)
	}
	if ok, err := VerifyProofBatch(&proof, 99); err != nil || !ok {
		t.Fatalf("served proof fails batch verification: (%v, %v)", ok, err)
	}

	resp, body = post("/v1/submit", `{"tenant":"bob","spec":"triangles seed=7 n=12 p=0.3"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-submit (reordered fields) status = %d, want 200 cached; body %s", resp.StatusCode, body)
	}
	var hit struct{ Digest, State string }
	if err := json.Unmarshal(body, &hit); err != nil {
		t.Fatal(err)
	}
	if hit.State != "cached" || hit.Digest != sub.Digest {
		t.Fatalf("re-submit = %+v, want cached with digest %s", hit, sub.Digest)
	}

	resp, body = get("/v1/status?digest=" + sub.Digest)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"state":"succeeded"`) {
		t.Fatalf("status = %d %s", resp.StatusCode, body)
	}
	resp, body = post("/v1/verify?digest="+sub.Digest, "")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok":true`) {
		t.Fatalf("verify = %d %s", resp.StatusCode, body)
	}
	resp, body = get("/metrics")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "camelot_cache_hits_total 1") {
		t.Fatalf("metrics = %d %s", resp.StatusCode, body)
	}

	if resp, _ = get("/v1/result?digest=deadbeef"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown digest status = %d, want 404", resp.StatusCode)
	}
	if resp, _ = post("/v1/submit", `{"tenant":"a","spec":"nonsense n=1"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed spec status = %d, want 400", resp.StatusCode)
	}
}

// TestServeBackpressureOnTheWire asserts a saturated server answers 429
// with a Retry-After hint and a typed JSON error code.
func TestServeBackpressureOnTheWire(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	gate := make(chan struct{})
	cl := NewCluster(WithNodes(2), WithTransport(func(k int) Transport {
		return &serveGatedTransport{inner: NewBroadcastBus(k), gate: gate}
	}))
	defer cl.Close()
	srv := NewServer(cl, ServerConfig{MaxQueueDepth: 1, RetryAfter: 2 * time.Second})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/submit", "application/json",
		strings.NewReader(`{"tenant":"alice","spec":"triangles n=12 p=0.3 seed=1"}`))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct{ Digest string }
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Post(ts.URL+"/v1/submit", "application/json",
		strings.NewReader(`{"tenant":"bob","spec":"triangles n=12 p=0.3 seed=2"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit status = %d, want 429; body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") != "2" {
		t.Fatalf("Retry-After = %q, want %q", resp.Header.Get("Retry-After"), "2")
	}
	if !strings.Contains(string(body), `"error":"queue_full"`) {
		t.Fatalf("429 body %s lacks queue_full code", body)
	}

	close(gate)
	if _, err := srv.Result(ctx, sub.Digest); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkServeFirstRun measures a cold submission (unique seed per
// iteration, so every run is a cache miss) end to end.
func BenchmarkServeFirstRun(b *testing.B) {
	cl := NewCluster(WithNodes(2))
	defer cl.Close()
	srv := NewServer(cl, ServerConfig{FaultTolerance: 1, MaxQueueDepth: 1 << 20, DefaultMaxInFlight: 1 << 20})
	defer srv.Close()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := srv.Submit("bench", fmt.Sprintf("triangles n=48 p=0.2 seed=%d", i+1))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := srv.Result(ctx, out.Digest); err != nil {
			b.Fatal(err)
		}
	}
}

// planBenchSpec is the workload the plan-reuse benchmarks submit.
const planBenchSpec = "cliques n=14 p=0.5 k=6 seed=7"

// BenchmarkServePlanCold rebuilds the whole service per iteration: a
// fresh cluster means a fresh plan cache, so every submission compiles
// its per-prime plans from scratch.
func BenchmarkServePlanCold(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		cl := NewCluster(WithNodes(2))
		srv := NewServer(cl, ServerConfig{FaultTolerance: 1})
		out, err := srv.Submit("bench", planBenchSpec)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := srv.Result(ctx, out.Digest); err != nil {
			b.Fatal(err)
		}
		srv.Close()
		cl.Close()
	}
}

// BenchmarkServePlanWarm reuses one cluster — and with it the shared
// compiled-plan cache — while rebuilding the Server per iteration so
// the proof cache never short-circuits the run: each iteration is the
// "second identical submit" regime with only the plan layer warm. The
// ratio against BenchmarkServePlanCold is the plan_cache_reuse entry
// bench.sh records. Measured honestly it hovers ≈1.0: every in-tree
// Compile is µs-scale against a multi-second run (heavy per-prime
// state stays per-block where it allocates mutable scratch), so the
// cache's value is single-flight sharing and the /metrics counters,
// not wall-clock — the serve storm test pins that functional claim.
func BenchmarkServePlanWarm(b *testing.B) {
	ctx := context.Background()
	cl := NewCluster(WithNodes(2))
	defer cl.Close()
	// Prime the plan cache outside the timed loop.
	{
		srv := NewServer(cl, ServerConfig{FaultTolerance: 1})
		out, err := srv.Submit("bench", planBenchSpec)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := srv.Result(ctx, out.Digest); err != nil {
			b.Fatal(err)
		}
		srv.Close()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv := NewServer(cl, ServerConfig{FaultTolerance: 1})
		out, err := srv.Submit("bench", planBenchSpec)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := srv.Result(ctx, out.Digest); err != nil {
			b.Fatal(err)
		}
		srv.Close()
	}
}

// BenchmarkServeCacheHit measures serving a proof the cache already
// holds — the spot-checked fast path the service exists for.
func BenchmarkServeCacheHit(b *testing.B) {
	cl := NewCluster(WithNodes(2))
	defer cl.Close()
	srv := NewServer(cl, ServerConfig{FaultTolerance: 1})
	defer srv.Close()
	ctx := context.Background()
	const spec = "triangles n=48 p=0.2 seed=42"
	out, err := srv.Submit("bench", spec)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := srv.Result(ctx, out.Digest); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hit, err := srv.Submit("bench", spec)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := srv.Result(ctx, hit.Digest); err != nil {
			b.Fatal(err)
		}
	}
}
