package camelot

// Ablation benchmarks for the design choices DESIGN.md calls out:
// the matrix-multiplication tensor decomposition (Strassen ω≈2.807 vs
// classical ω=3), the number of decoding nodes, and the NTT-vs-Karatsuba
// polynomial multiplication path.

import (
	"fmt"
	"math/rand"
	"testing"

	"camelot/internal/cliques"
	"camelot/internal/core"
	"camelot/internal/ff"
	"camelot/internal/graph"
	"camelot/internal/poly"
	"camelot/internal/tensor"
	"camelot/internal/triangles"
)

// BenchmarkAblationTensorCliques isolates the ω choice on the clique
// proof: Strassen shrinks R (and hence the proof/codeword) at the cost
// of padding N to a power of 2.
func BenchmarkAblationTensorCliques(b *testing.B) {
	g := graph.Gnp(8, 0.7, 1)
	for _, tc := range []struct {
		name string
		base tensor.Decomposition
	}{
		{"strassen-w2.807", tensor.Strassen()},
		{"trivial2-w3", tensor.Trivial(2)},
		{"trivial8-w3-nopad", tensor.Trivial(8)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			p, err := cliques.NewProblem(g, 6, tc.base)
			if err != nil {
				b.Fatal(err)
			}
			rep := runFull(b, p, core.Options{Nodes: 2, Seed: 1, DecodingNodes: 1})
			b.ReportMetric(float64(rep.ProofSymbols), "proof-symbols")
		})
	}
}

// BenchmarkAblationTensorTriangles does the same for the sparse triangle
// proof, where the rank also determines the part structure.
func BenchmarkAblationTensorTriangles(b *testing.B) {
	g := graph.Gnp(32, 0.2, 2)
	for _, tc := range []struct {
		name string
		base tensor.Decomposition
	}{
		{"strassen-w2.807", tensor.Strassen()},
		{"trivial2-w3", tensor.Trivial(2)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			p, err := triangles.NewProblem(g, tc.base)
			if err != nil {
				b.Fatal(err)
			}
			rep := runFull(b, p, core.Options{Nodes: 2, Seed: 2, DecodingNodes: 1})
			b.ReportMetric(float64(rep.ProofSymbols), "proof-symbols")
		})
	}
}

// BenchmarkAblationDecodingNodes measures the cost of the paper's
// "every node decodes" model against a single-verifier deployment
// (paper footnote 6: with one verifier no broadcast is needed).
func BenchmarkAblationDecodingNodes(b *testing.B) {
	g := graph.Gnp(24, 0.3, 3)
	p, err := triangles.NewProblem(g, tensor.Strassen())
	if err != nil {
		b.Fatal(err)
	}
	for _, dn := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("decoders=%d", dn), func(b *testing.B) {
			runFull(b, p, core.Options{Nodes: 8, FaultTolerance: 40, Seed: 3, DecodingNodes: dn})
		})
	}
}

// BenchmarkAblationPolyMul compares the NTT path (available because the
// framework picks NTT-friendly primes) against forced Karatsuba, at the
// codeword sizes the decoders actually see.
func BenchmarkAblationPolyMul(b *testing.B) {
	const deg = 2047
	rng := rand.New(rand.NewSource(4))
	// NTT-friendly prime vs a prime with two-adicity 1.
	qNTT, _, err := ff.NTTPrime(1<<20, 1<<13)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		q    uint64
	}{
		{"ntt-prime", qNTT},
		{"generic-prime-karatsuba", 1000003},
	} {
		b.Run(tc.name, func(b *testing.B) {
			ring := poly.NewRing(ff.Must(tc.q))
			f := ff.Must(tc.q)
			x := make([]uint64, deg+1)
			y := make([]uint64, deg+1)
			for i := range x {
				x[i] = rng.Uint64() % f.Q
				y[i] = rng.Uint64() % f.Q
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = ring.Mul(x, y)
			}
		})
	}
}
