package camelot

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"sync"
	"testing"
	"time"

	"camelot/internal/core"
	"camelot/internal/tutte"
)

// mixedWorkload builds a small mixed problem set with known solo
// answers, for the concurrent-submission determinism tests.
func mixedWorkload(t *testing.T) []CountingProblem {
	t.Helper()
	var problems []CountingProblem
	for seed := int64(1); seed <= 2; seed++ {
		p, err := NewTriangleProblem(RandomGraph(20, 0.3, seed))
		if err != nil {
			t.Fatal(err)
		}
		problems = append(problems, p)
	}
	a := make([][]int64, 7)
	for i := range a {
		a[i] = make([]int64, 7)
		for j := range a[i] {
			a[i][j] = int64((i*j + i + 1) % 4)
		}
	}
	perm, err := NewPermanentProblem(a)
	if err != nil {
		t.Fatal(err)
	}
	problems = append(problems, perm)
	ham, err := NewHamiltonianCycleProblem(RandomGraph(8, 0.6, 5))
	if err != nil {
		t.Fatal(err)
	}
	problems = append(problems, ham)
	return problems
}

// soloProof runs one problem through the plain one-shot engine (no
// shared pool, no warm geometry) — the golden reference the cluster
// results must match bit for bit.
func soloProof(t *testing.T, p CountingProblem, opts core.Options) *Proof {
	t.Helper()
	proof, _, err := core.Run(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	return proof
}

func sameProof(a, b *Proof) error {
	if len(a.Primes) != len(b.Primes) {
		return fmt.Errorf("prime counts differ: %d vs %d", len(a.Primes), len(b.Primes))
	}
	for i := range a.Primes {
		if a.Primes[i] != b.Primes[i] {
			return fmt.Errorf("prime %d differs: %d vs %d", i, a.Primes[i], b.Primes[i])
		}
	}
	for _, q := range a.Primes {
		for w := range a.Coeffs[q] {
			for j := range a.Coeffs[q][w] {
				if a.Coeffs[q][w][j] != b.Coeffs[q][w][j] {
					return fmt.Errorf("coeff mod %d coord %d idx %d differs", q, w, j)
				}
			}
		}
	}
	return nil
}

func TestClusterConcurrentSubmissionDeterministic(t *testing.T) {
	// Satellite acceptance: N goroutines submitting mixed problems to
	// one cluster (run under -race in CI) must each get exactly the
	// proof a solo run produces, despite the shared pool interleaving
	// their chunks and the geometry cache being hammered concurrently.
	problems := mixedWorkload(t)
	opts := core.Options{Nodes: 3, Seed: 9, VerifyTrials: 1}
	golden := make([]*Proof, len(problems))
	for i, p := range problems {
		golden[i] = soloProof(t, p, opts)
	}

	cluster := NewCluster(WithNodes(3), WithMaxParallelism(4))
	defer cluster.Close()
	const goroutines, rounds = 6, 2
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines*rounds*len(problems))
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Stagger the mix per goroutine.
				for off := 0; off < len(problems); off++ {
					i := (g + r + off) % len(problems)
					job := cluster.Submit(context.Background(), problems[i],
						WithSeed(9), WithVerifyTrials(1))
					proof, rep, err := job.Wait(context.Background())
					if err != nil {
						errCh <- fmt.Errorf("goroutine %d problem %d: %w", g, i, err)
						return
					}
					if !rep.Verified {
						errCh <- fmt.Errorf("goroutine %d problem %d: not verified", g, i)
						return
					}
					if err := sameProof(golden[i], proof); err != nil {
						errCh <- fmt.Errorf("goroutine %d problem %d: cluster proof diverges from solo run: %w", g, i, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

func TestClusterCountsMatchFacade(t *testing.T) {
	g := RandomGraph(24, 0.3, 11)
	want, _, err := CountTriangles(context.Background(), g, WithNodes(2), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	cluster := NewCluster(WithNodes(2))
	defer cluster.Close()
	p, err := NewTriangleProblem(g)
	if err != nil {
		t.Fatal(err)
	}
	proof, _, err := cluster.Submit(context.Background(), p, WithSeed(3)).Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Count(proof)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(want) != 0 {
		t.Fatalf("cluster count %v, facade count %v", got, want)
	}
}

func TestClusterCloseDrainsInFlightJobs(t *testing.T) {
	cluster := NewCluster(WithNodes(2))
	problems := mixedWorkload(t)
	jobs := make([]*Job, len(problems))
	for i, p := range problems {
		jobs[i] = cluster.Submit(context.Background(), p, WithSeed(1))
	}
	// Close with jobs in flight: it must block until they finish, not
	// abort them.
	cluster.Close()
	for i, j := range jobs {
		select {
		case <-j.Done():
		default:
			t.Fatalf("job %d still running after Close returned", i)
		}
		if err := j.Err(); err != nil {
			t.Fatalf("job %d failed during drain: %v", i, err)
		}
		st := j.Status()
		if st.State != JobSucceeded || st.Stage != StageDone {
			t.Fatalf("job %d status after drain: %+v", i, st)
		}
	}
	// Submissions after Close fail fast with ErrClusterClosed.
	p := problems[0]
	j := cluster.Submit(context.Background(), p)
	if _, _, err := j.Wait(context.Background()); !errors.Is(err, ErrClusterClosed) {
		t.Fatalf("post-close submit returned %v, want ErrClusterClosed", err)
	}
	if st := j.Status(); st.State != JobFailed {
		t.Fatalf("post-close job state %v, want failed", st.State)
	}
	// Close is idempotent.
	cluster.Close()
}

func TestJobStatusProgressesAndReportsGeometry(t *testing.T) {
	cluster := NewCluster(WithNodes(2))
	defer cluster.Close()
	p, err := NewTriangleProblem(RandomGraph(28, 0.3, 2))
	if err != nil {
		t.Fatal(err)
	}
	job := cluster.Submit(context.Background(), p, WithVerifyTrials(2))
	proof, rep, err := job.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	st := job.Status()
	if st.State != JobSucceeded {
		t.Fatalf("state %v, want succeeded", st.State)
	}
	if want := rep.CodeLength * len(rep.Primes); st.PointsDone != want || st.PointsTotal != want {
		t.Fatalf("points %d/%d, want %d/%d", st.PointsDone, st.PointsTotal, want, want)
	}
	if st.Problem != rep.Problem {
		t.Fatalf("status problem %q, report problem %q", st.Problem, rep.Problem)
	}
	if proof.Size() != rep.ProofSymbols {
		t.Fatal("proof size disagrees with report")
	}
}

func TestJobWaitHonorsWaiterContext(t *testing.T) {
	cluster := NewCluster(WithNodes(1))
	defer cluster.Close()
	p, err := NewTriangleProblem(RandomGraph(30, 0.3, 4))
	if err != nil {
		t.Fatal(err)
	}
	job := cluster.Submit(context.Background(), p)
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := job.Wait(expired); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait with expired ctx returned %v, want context.Canceled", err)
	}
	// The job itself keeps running under its submission context.
	if proof, _, err := job.Wait(context.Background()); err != nil || proof == nil {
		t.Fatalf("re-attached Wait: proof=%v err=%v", proof, err)
	}
}

func TestClusterSubmissionContextCancelsJob(t *testing.T) {
	cluster := NewCluster(WithNodes(2))
	defer cluster.Close()
	p, err := NewTriangleProblem(RandomGraph(40, 0.4, 6))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	job := cluster.Submit(ctx, p)
	start := time.Now()
	if _, _, err := job.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled submission returned %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled job took %v to settle", elapsed)
	}
	if st := job.Status(); st.State != JobFailed {
		t.Fatalf("state %v, want failed", st.State)
	}
}

func TestTutteConcurrentLinesMatchSequentialDriver(t *testing.T) {
	// The flagship consumer: the facade's concurrent FK-line driver must
	// reproduce the sequential tutte.Compute coefficients exactly.
	mg := RandomMultigraph(5, 6, 3)
	res, err := TuttePolynomial(context.Background(), mg, WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	dc := tutte.DeletionContraction(mg.mg)
	for a := range res.T {
		for b := range res.T[a] {
			var want *big.Int
			if a < len(dc) && b < len(dc[a]) {
				want = dc[a][b]
			} else {
				want = big.NewInt(0)
			}
			if res.T[a][b].Cmp(want) != 0 {
				t.Fatalf("T[%d][%d] = %v, want %v", a, b, res.T[a][b], want)
			}
		}
	}
	if len(res.Reports) != mg.M()+1 {
		t.Fatalf("%d reports, want %d", len(res.Reports), mg.M()+1)
	}
	for ri, rep := range res.Reports {
		if rep == nil {
			t.Fatalf("report %d missing", ri)
		}
	}
}

func TestTuttePolynomialHonorsExplicitParallelism(t *testing.T) {
	mg := RandomMultigraph(5, 6, 3)
	a, err := TuttePolynomial(context.Background(), mg, WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := TuttePolynomial(context.Background(), mg, WithSeed(2), WithMaxParallelism(1), WithNodes(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.T {
		for j := range a.T[i] {
			if a.T[i][j].Cmp(b.T[i][j]) != 0 {
				t.Fatalf("T[%d][%d] differs under explicit parallelism bound", i, j)
			}
		}
	}
}

func TestClusterShardedLossyTransportRecoversDroppedNode(t *testing.T) {
	// End-to-end through the public session API: a cluster whose
	// transport is sharded *and* lossy (node 1's broadcast always lost)
	// must — given enough fault tolerance and an erasure allowance —
	// produce the exact proof and count of a solo run on a perfect bus,
	// and report the loss as a delivery fault rather than a suspect.
	p, err := NewTriangleProblem(RandomGraph(18, 0.35, 7))
	if err != nil {
		t.Fatal(err)
	}
	const k = 8
	// Probe the proof degree, then grow f until one whole node block
	// fits the erasure budget 2f.
	probe := soloProof(t, p, core.Options{Nodes: 1, VerifyTrials: 1})
	faults := 0
	for {
		e := probe.Degree + 1 + 2*faults
		if 2*faults >= (e+k-1)/k {
			break
		}
		faults++
	}
	golden := soloProof(t, p, core.Options{Nodes: k, FaultTolerance: faults, Seed: 4, VerifyTrials: 1})

	cluster := NewCluster(
		WithNodes(k),
		WithShardedTransport(3),
		WithLossyTransport(LossyConfig{Seed: 21, DropNodes: []int{1}, DupRate: 0.5}),
	)
	defer cluster.Close()
	job := cluster.Submit(context.Background(), p,
		WithSeed(4),
		WithVerifyTrials(1),
		WithFaultTolerance(faults),
		WithMaxErasures(1),
		WithGatherGrace(5*time.Second),
	)
	proof, rep, err := job.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := sameProof(golden, proof); err != nil {
		t.Fatalf("lossy sharded cluster proof diverges from solo run: %v", err)
	}
	if len(rep.MissingNodes) != 1 || rep.MissingNodes[0] != 1 {
		t.Fatalf("MissingNodes = %v, want [1]", rep.MissingNodes)
	}
	for _, s := range rep.SuspectNodes {
		if s == 1 {
			t.Fatal("delivery fault reported as content suspect")
		}
	}
	if st := job.Status(); st.DeliveryFaults != 1 {
		t.Fatalf("job status DeliveryFaults = %d, want 1", st.DeliveryFaults)
	}
	wantCount, err := p.Count(golden)
	if err != nil {
		t.Fatal(err)
	}
	gotCount, err := p.Count(proof)
	if err != nil {
		t.Fatal(err)
	}
	if wantCount.Cmp(gotCount) != 0 {
		t.Fatalf("count %v != solo count %v", gotCount, wantCount)
	}
}
