#!/usr/bin/env bash
# bench.sh — run the arithmetic-layer microbenchmarks plus the headline
# end-to-end benchmarks (E12 Gao decode, E14 batch evaluation) and emit
# the results as BENCH_<n>.json at the repository root, seeding the
# perf-trajectory record that PR descriptions quote.
#
# Usage: scripts/bench.sh [N]
#   N        suffix for BENCH_N.json (default 2)
#   BENCHTIME  overrides the go benchtime (default 2s for micro, 10x for e2e)
set -euo pipefail
cd "$(dirname "$0")/.."

N="${1:-2}"
MICRO_TIME="${BENCHTIME:-2s}"
E2E_TIME="${BENCHTIME:-10x}"
OUT="BENCH_${N}.json"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

echo "== field/NTT microbenchmarks (${MICRO_TIME})" >&2
go test -run xxx \
    -bench 'BenchmarkFieldMul|BenchmarkFieldExp|BenchmarkBatchInv|BenchmarkLagrangeEvaluatorAt|BenchmarkNTT/' \
    -benchtime "$MICRO_TIME" ./internal/ff ./internal/poly | tee -a "$TMP" >&2

echo "== end-to-end benchmarks (${E2E_TIME})" >&2
go test -run xxx -bench 'BenchmarkE12GaoDecode|BenchmarkE14' \
    -benchtime "$E2E_TIME" . | tee -a "$TMP" >&2

# Fold "Benchmark<name> <iters> <ns> ns/op ..." lines into JSON.
awk -v host="$(uname -sm)" '
BEGIN { n = 0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip -GOMAXPROCS suffix
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op") { ns[n] = $i; nm[n] = name; n++; break }
    }
}
END {
    printf "{\n  \"host\": \"%s\",\n  \"benchmarks\": [\n", host
    for (i = 0; i < n; i++) {
        printf "    {\"name\": \"%s\", \"ns_per_op\": %s}%s\n", nm[i], ns[i], (i < n-1 ? "," : "")
    }
    printf "  ]\n}\n"
}' "$TMP" > "$OUT"

echo "wrote $OUT" >&2
