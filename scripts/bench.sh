#!/usr/bin/env bash
# bench.sh — run the arithmetic-layer microbenchmarks and the headline
# end-to-end benchmarks (E12 Gao decode, E14 batch evaluation, E16
# batched verification) at GOMAXPROCS=1 and GOMAXPROCS=NumCPU, plus the
# session-layer job-throughput comparison, and emit the results as
# BENCH_<n>.json at the repository root — the perf-trajectory record
# that PR descriptions quote. Each entry records the gomaxprocs it ran
# under; the ratios block derives the parallel speedups (multi-core vs
# this run's own serial numbers, and vs the BENCH_2 serial baselines)
# and the batch-vs-perpoint wins. On a 1-CPU host the two passes
# coincide and the parallel speedups come out ~1.0 by construction.
#
# Usage: scripts/bench.sh [N]
#   N        suffix for BENCH_N.json (default 6)
#   BENCHTIME  overrides the go benchtime (default 2s for micro, 10x for e2e)
set -euo pipefail
cd "$(dirname "$0")/.."

N="${1:-6}"
MICRO_TIME="${BENCHTIME:-2s}"
E2E_TIME="${BENCHTIME:-10x}"
OUT="BENCH_${N}.json"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

NCPU="$(nproc)"
GMP_LIST="1"
if [ "$NCPU" -gt 1 ]; then
    GMP_LIST="1 $NCPU"
fi

for GMP in $GMP_LIST; do
    echo "== GOMAXPROCS $GMP" >> "$TMP"
    echo "== field/NTT microbenchmarks (${MICRO_TIME}, GOMAXPROCS=${GMP})" >&2
    GOMAXPROCS="$GMP" go test -run xxx \
        -bench 'BenchmarkFieldMul|BenchmarkFieldExp|BenchmarkBatchInv|BenchmarkLagrangeEvaluatorAt|BenchmarkNTT/' \
        -benchtime "$MICRO_TIME" ./internal/ff ./internal/poly | tee -a "$TMP" >&2

    echo "== end-to-end benchmarks (${E2E_TIME}, GOMAXPROCS=${GMP})" >&2
    GOMAXPROCS="$GMP" go test -run xxx \
        -bench 'BenchmarkE12GaoDecode|BenchmarkE14|BenchmarkE16' \
        -benchtime "$E2E_TIME" . | tee -a "$TMP" >&2
done

echo "== GOMAXPROCS $NCPU" >> "$TMP"
echo "== session-layer job throughput (${E2E_TIME})" >&2
go test -run xxx -bench 'BenchmarkJobs' \
    -benchtime "$E2E_TIME" . | tee -a "$TMP" >&2

echo "== proof service: first run vs cache hit (${E2E_TIME})" >&2
go test -run xxx -bench 'BenchmarkServe' \
    -benchtime "$E2E_TIME" . | tee -a "$TMP" >&2

# Fold "Benchmark<name> <iters> <ns> ns/op ..." lines into JSON. Entries
# are keyed (name, gomaxprocs); the ratios block reports parallel
# speedups (serial-this-run and BENCH_2-serial baselines over the
# multi-core numbers — above 1 means the parallel path wins), the
# batch-evaluation and batched-verification wins, and the session-layer
# throughput ratios. BENCH_2 baselines (same host class, serial):
# E12GaoDecode 34342827 ns, NTT/plan(n=4096) 361585 ns.
awk -v host="$(uname -sm)" -v ncpu="$NCPU" '
BEGIN { n = 0; g = 1 }
/^== GOMAXPROCS / { g = $3 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip -GOMAXPROCS suffix
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op") { ns[n] = $i; nm[n] = name; gp[n] = g; n++; break }
    }
}
END {
    printf "{\n  \"host\": \"%s\",\n  \"num_cpu\": %d,\n  \"benchmarks\": [\n", host, ncpu
    for (i = 0; i < n; i++) {
        printf "    {\"name\": \"%s\", \"gomaxprocs\": %d, \"ns_per_op\": %s}%s\n", nm[i], gp[i], ns[i], (i < n-1 ? "," : "")
        v[nm[i] "@" gp[i]] = ns[i]
    }
    printf "  ],\n  \"ratios\": {\n"
    sep = ""
    gao1 = v["BenchmarkE12GaoDecode@1"]; gaoN = v["BenchmarkE12GaoDecode@" ncpu]
    ntt1 = v["BenchmarkNTT/plan@1"];     nttN = v["BenchmarkNTT/plan@" ncpu]
    if (gao1 > 0 && gaoN > 0) { printf "%s    \"e12_gao_decode_parallel_speedup\": %.3f", sep, gao1 / gaoN; sep = ",\n" }
    if (gaoN > 0)             { printf "%s    \"e12_gao_decode_speedup_vs_bench2\": %.3f", sep, 34342827 / gaoN; sep = ",\n" }
    if (ntt1 > 0 && nttN > 0) { printf "%s    \"ntt_parallel_speedup\": %.3f", sep, ntt1 / nttN; sep = ",\n" }
    if (nttN > 0)             { printf "%s    \"ntt_speedup_vs_bench2\": %.3f", sep, 361585 / nttN; sep = ",\n" }
    vb = v["BenchmarkE16VerifyProofBatch/batch@" ncpu]; vp = v["BenchmarkE16VerifyProofBatch/perpoint@" ncpu]
    if (vb > 0 && vp > 0) { printf "%s    \"verify_batch_vs_perpoint\": %.3f", sep, vp / vb; sep = ",\n" }
    cb = v["BenchmarkE14BatchChromatic/batch@" ncpu]; cp = v["BenchmarkE14BatchChromatic/perpoint@" ncpu]
    if (cb > 0 && cp > 0) { printf "%s    \"chromatic_block_vs_perpoint\": %.3f", sep, cp / cb; sep = ",\n" }
    sb = v["BenchmarkE14BatchSetCover/batch@" ncpu]; sp = v["BenchmarkE14BatchSetCover/perpoint@" ncpu]
    if (sb > 0 && sp > 0) { printf "%s    \"setcover_block_vs_perpoint\": %.3f", sep, sp / sb; sep = ",\n" }
    tb = v["BenchmarkE14BatchTutte/batch@" ncpu]; tp = v["BenchmarkE14BatchTutte/perpoint@" ncpu]
    if (tb > 0 && tp > 0) { printf "%s    \"tutte_block_vs_perpoint\": %.3f", sep, tp / tb; sep = ",\n" }
    hb = v["BenchmarkE14BatchHamilton/batch@" ncpu]; hp = v["BenchmarkE14BatchHamilton/perpoint@" ncpu]
    if (hb > 0 && hp > 0) { printf "%s    \"hamilton_block_vs_perpoint\": %.3f", sep, hp / hb; sep = ",\n" }
    ob = v["BenchmarkE14BatchConv3SUM/batch@" ncpu]; op = v["BenchmarkE14BatchConv3SUM/perpoint@" ncpu]
    if (ob > 0 && op > 0) { printf "%s    \"conv3sum_block_vs_perpoint\": %.3f", sep, op / ob; sep = ",\n" }
    xb = v["BenchmarkE14BatchCSP/batch@" ncpu]; xp = v["BenchmarkE14BatchCSP/perpoint@" ncpu]
    if (xb > 0 && xp > 0) { printf "%s    \"csp_block_vs_perpoint\": %.3f", sep, xp / xb; sep = ",\n" }
    cl = v["BenchmarkJobsClusterThroughput@" ncpu]; sq = v["BenchmarkJobsSequentialRun@" ncpu]
    tc = v["BenchmarkJobsTutteConcurrentLines@" ncpu]; ts = v["BenchmarkJobsTutteSequentialLines@" ncpu]
    if (cl > 0 && sq > 0) { printf "%s    \"cluster_jobs_per_sec_vs_sequential\": %.3f", sep, sq / cl; sep = ",\n" }
    if (tc > 0 && ts > 0) { printf "%s    \"tutte_concurrent_vs_sequential\": %.3f", sep, ts / tc; sep = ",\n" }
    sf = v["BenchmarkServeFirstRun@" ncpu]; sh = v["BenchmarkServeCacheHit@" ncpu]
    if (sf > 0 && sh > 0) { printf "%s    \"serve_cache_hit_speedup\": %.3f", sep, sf / sh; sep = ",\n" }
    pc = v["BenchmarkServePlanCold@" ncpu]; pw = v["BenchmarkServePlanWarm@" ncpu]
    if (pc > 0 && pw > 0) { printf "%s    \"plan_cache_reuse\": %.3f", sep, pc / pw; sep = ",\n" }
    printf "\n  }\n}\n"
}' "$TMP" > "$OUT"

echo "wrote $OUT" >&2
