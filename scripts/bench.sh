#!/usr/bin/env bash
# bench.sh — run the arithmetic-layer microbenchmarks, the headline
# end-to-end benchmarks (E12 Gao decode, E14 batch evaluation), and the
# session-layer job-throughput comparison (one warm cluster vs
# sequential core.Run, concurrent vs sequential Tutte FK lines), and
# emit the results as BENCH_<n>.json at the repository root, seeding the
# perf-trajectory record that PR descriptions quote.
#
# Usage: scripts/bench.sh [N]
#   N        suffix for BENCH_N.json (default 3)
#   BENCHTIME  overrides the go benchtime (default 2s for micro, 10x for e2e)
set -euo pipefail
cd "$(dirname "$0")/.."

N="${1:-3}"
MICRO_TIME="${BENCHTIME:-2s}"
E2E_TIME="${BENCHTIME:-10x}"
OUT="BENCH_${N}.json"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

echo "== field/NTT microbenchmarks (${MICRO_TIME})" >&2
go test -run xxx \
    -bench 'BenchmarkFieldMul|BenchmarkFieldExp|BenchmarkBatchInv|BenchmarkLagrangeEvaluatorAt|BenchmarkNTT/' \
    -benchtime "$MICRO_TIME" ./internal/ff ./internal/poly | tee -a "$TMP" >&2

echo "== end-to-end benchmarks (${E2E_TIME})" >&2
go test -run xxx -bench 'BenchmarkE12GaoDecode|BenchmarkE14' \
    -benchtime "$E2E_TIME" . | tee -a "$TMP" >&2

echo "== session-layer job throughput (${E2E_TIME})" >&2
go test -run xxx -bench 'BenchmarkJobs' \
    -benchtime "$E2E_TIME" . | tee -a "$TMP" >&2

# Fold "Benchmark<name> <iters> <ns> ns/op ..." lines into JSON, and
# derive the session-layer throughput ratios (sequential ns / cluster
# ns — above 1 means the cluster wins; overlap gains require >1 CPU).
awk -v host="$(uname -sm)" -v ncpu="$(nproc)" '
BEGIN { n = 0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip -GOMAXPROCS suffix
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op") { ns[n] = $i; nm[n] = name; n++; break }
    }
}
END {
    printf "{\n  \"host\": \"%s\",\n  \"num_cpu\": %d,\n  \"benchmarks\": [\n", host, ncpu
    for (i = 0; i < n; i++) {
        printf "    {\"name\": \"%s\", \"ns_per_op\": %s}%s\n", nm[i], ns[i], (i < n-1 ? "," : "")
        v[nm[i]] = ns[i]
    }
    printf "  ]"
    cl = v["BenchmarkJobsClusterThroughput"]; sq = v["BenchmarkJobsSequentialRun"]
    tc = v["BenchmarkJobsTutteConcurrentLines"]; ts = v["BenchmarkJobsTutteSequentialLines"]
    if (cl > 0 && sq > 0) {
        printf ",\n  \"ratios\": {\n"
        printf "    \"cluster_jobs_per_sec_vs_sequential\": %.3f", sq / cl
        if (tc > 0 && ts > 0) printf ",\n    \"tutte_concurrent_vs_sequential\": %.3f", ts / tc
        printf "\n  }"
    }
    printf "\n}\n"
}' "$TMP" > "$OUT"

echo "wrote $OUT" >&2
