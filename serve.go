package camelot

// The proof service: an HTTP front end over the session layer that
// makes the paper's "community standing by to prepare proofs for a
// stream of inputs" operable as a shared, multi-tenant service. Three
// properties of the protocol make the design sound:
//
//   - Proofs are deterministic in (canonical spec, fault tolerance):
//     every honest run of the same workload decodes bit-identical
//     coefficient vectors. A content-addressed cache keyed by
//     Workload.Digest therefore never conflates distinct computations
//     and never needs invalidation.
//   - Proofs are independently verifiable: a cached artifact does not
//     ask the client to trust the server's history. Every cached serve
//     is accompanied by a fresh VerifyProofBatch spot-check, and the
//     audit-grade VerifyProof path remains open to any client holding
//     the input.
//   - The shared pool's weighted round-robin (core.Pool.RunWeighted)
//     lets tenant priorities shape execution shares without starvation,
//     so one service instance can serve tenants of different sizes.
//
// Admission is bounded on two axes — a global in-flight preparation cap
// and per-tenant caps — and refusals are typed (ErrTenantQuota,
// ErrQueueFull) and mapped to 429 + Retry-After on the wire, so
// overload turns into backpressure instead of queue collapse.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Typed admission refusals; HTTP handlers map both to 429 with a
// Retry-After header. Match with errors.Is.
var (
	// ErrTenantQuota is returned when the submitting tenant already has
	// its maximum number of distinct proofs in preparation.
	ErrTenantQuota = errors.New("camelot: tenant in-flight quota exhausted")
	// ErrQueueFull is returned when the server as a whole is at its
	// in-flight preparation bound.
	ErrQueueFull = errors.New("camelot: server admission queue full")
)

// ErrUnknownProof is returned by status/result/verify lookups for a
// digest the server has never admitted.
var ErrUnknownProof = errors.New("camelot: no submission with that digest")

// TenantConfig is one tenant's service contract.
type TenantConfig struct {
	// MaxInFlight caps how many distinct proofs the tenant may have in
	// preparation at once (0 = the server's DefaultMaxInFlight).
	// Attaching to an already-running identical preparation or hitting
	// the cache never counts against the cap — only new work does.
	MaxInFlight int
	// Priority is the pool scheduling weight of the tenant's runs (see
	// WithPriority; values below 1 mean 1).
	Priority int
}

// ServerConfig fixes the service-wide run geometry and admission
// bounds. The geometry lives here, not in requests, because the proof
// cache is keyed by (canonical spec, FaultTolerance): one service
// instance prepares proofs of one shape, so every tenant's identical
// submission is a hit for the others.
type ServerConfig struct {
	// FaultTolerance is the f every prepared proof survives (e = d+1+2f).
	FaultTolerance int
	// MaxErasures and MaxRepairRounds pass through to the runs (see
	// WithMaxErasures / WithMaxRepairRounds).
	MaxErasures     int
	MaxRepairRounds int
	// VerifyTrials is the per-run verification effort (default 1).
	VerifyTrials int
	// VerifySeed seeds run verification and the cached-serve spot
	// checks (each spot check mixes in a distinct counter).
	VerifySeed int64
	// MaxQueueDepth bounds proofs in preparation across all tenants
	// (default 16).
	MaxQueueDepth int
	// DefaultMaxInFlight is the per-tenant cap for tenants without an
	// explicit TenantConfig (default 4).
	DefaultMaxInFlight int
	// RetryAfter is the backoff hint attached to 429 refusals
	// (default 1s).
	RetryAfter time.Duration
	// Tenants maps tenant names to explicit contracts; absent tenants
	// get DefaultMaxInFlight and priority 1.
	Tenants map[string]TenantConfig
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.VerifyTrials <= 0 {
		c.VerifyTrials = 1
	}
	if c.MaxQueueDepth <= 0 {
		c.MaxQueueDepth = 16
	}
	if c.DefaultMaxInFlight <= 0 {
		c.DefaultMaxInFlight = 4
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

func (c *ServerConfig) tenant(name string) TenantConfig {
	tc := c.Tenants[name]
	if tc.MaxInFlight <= 0 {
		tc.MaxInFlight = c.DefaultMaxInFlight
	}
	if tc.Priority < 1 {
		tc.Priority = 1
	}
	return tc
}

// serveEntry is one digest's lifecycle: admitted exactly once, watched
// to completion, then held as the cached artifact. done is closed after
// the terminal fields (bytes, proof, report, err) are written.
type serveEntry struct {
	digest string
	spec   string // canonical form
	tenant string // admitting tenant (owns the quota slot)
	job    *Job
	done   chan struct{}

	bytes  []byte // marshaled proof, the bit-identical cached artifact
	proof  *Proof // unmarshaling source of the spot checks
	report *Report
	err    error
}

// SubmitOutcome reports how a submission was admitted.
type SubmitOutcome struct {
	// Digest is the content address of the requested proof.
	Digest string
	// Canonical is the normalized spec line the digest covers.
	Canonical string
	// State is "running" (new preparation started), "coalesced"
	// (attached to an identical in-flight preparation), "cached"
	// (finished artifact available), or "failed" (previous preparation
	// failed; resubmitting retries).
	State string
}

// Server is the proof service: a content-addressed proof cache with
// single-flight preparation, per-tenant quotas and priorities, and
// bounded admission over a Cluster. Construct with NewServer; the
// caller owns the Cluster. Safe for concurrent use.
type Server struct {
	cluster *Cluster
	cfg     ServerConfig

	ctx    context.Context // governs all runs; cancelled by Close
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu       sync.Mutex
	entries  map[string]*serveEntry
	inflight map[string]int // per-tenant preparations in flight
	depth    int            // total preparations in flight
	// Stage-latency accumulators from finished runs' Reports.
	prepareNs, decodeNs, verifyNs int64

	// Counters (atomics: the metrics endpoint reads them without mu).
	submits, cacheHits, coalesced atomic.Int64
	refusedQuota, refusedQueue    atomic.Int64
	runs, runFailures             atomic.Int64
	deliveryFaults, repairRounds  atomic.Int64
	spotChecks, spotCheckFailures atomic.Int64
	spotSeed                      atomic.Int64
}

// NewServer returns a running proof service over cl. Closing the
// server waits for in-flight preparations; the cluster itself remains
// the caller's to close.
func NewServer(cl *Cluster, cfg ServerConfig) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cluster:  cl,
		cfg:      cfg.withDefaults(),
		ctx:      ctx,
		cancel:   cancel,
		entries:  make(map[string]*serveEntry),
		inflight: make(map[string]int),
	}
}

// Close aborts in-flight preparations and waits for their watchers to
// drain. Cached artifacts remain readable; new submissions still work
// but their runs fail immediately under the cancelled context, so Close
// is for shutdown, not pause.
func (s *Server) Close() {
	s.cancel()
	s.wg.Wait()
}

// Submit admits a workload for proof preparation under the given
// tenant. It never blocks on other work: the outcome says whether the
// proof is already cached, being prepared, or newly started, and
// Result/Status follow up by digest. Refusals are ErrTenantQuota and
// ErrQueueFull; a malformed spec errors as from ParseWorkload.
func (s *Server) Submit(tenant, spec string) (SubmitOutcome, error) {
	w, err := ParseWorkload(spec)
	if err != nil {
		return SubmitOutcome{}, err
	}
	s.submits.Add(1)
	digest := w.Digest(s.cfg.FaultTolerance)
	out := SubmitOutcome{Digest: digest, Canonical: w.Canonical}

	s.mu.Lock()
	if e, ok := s.entries[digest]; ok {
		select {
		case <-e.done:
			if e.err == nil {
				s.mu.Unlock()
				s.cacheHits.Add(1)
				out.State = "cached"
				return out, nil
			}
			// A failed preparation is not a negative cache: fall
			// through and replace the entry with a fresh attempt.
		default:
			s.mu.Unlock()
			s.coalesced.Add(1)
			out.State = "coalesced"
			return out, nil
		}
	}
	tc := s.cfg.tenant(tenant)
	if s.inflight[tenant] >= tc.MaxInFlight {
		s.mu.Unlock()
		s.refusedQuota.Add(1)
		return out, fmt.Errorf("%w: tenant %q has %d preparations in flight", ErrTenantQuota, tenant, tc.MaxInFlight)
	}
	if s.depth >= s.cfg.MaxQueueDepth {
		s.mu.Unlock()
		s.refusedQueue.Add(1)
		return out, fmt.Errorf("%w: %d preparations in flight", ErrQueueFull, s.depth)
	}
	e := &serveEntry{digest: digest, spec: w.Canonical, tenant: tenant, done: make(chan struct{})}
	// The plan key is the fault-independent PlanDigest, not the proof
	// digest: tenants whose submissions differ only in fault knobs still
	// share one compiled evaluation plan per prime on the cluster.
	e.job = s.cluster.Submit(s.ctx, w.Problem,
		WithFaultTolerance(s.cfg.FaultTolerance),
		WithMaxErasures(s.cfg.MaxErasures),
		WithMaxRepairRounds(s.cfg.MaxRepairRounds),
		WithVerifyTrials(s.cfg.VerifyTrials),
		WithSeed(s.cfg.VerifySeed),
		WithPriority(tc.Priority),
		withPlanKey(w.PlanDigest()),
	)
	s.entries[digest] = e
	s.inflight[tenant]++
	s.depth++
	s.mu.Unlock()

	s.runs.Add(1)
	s.wg.Add(1)
	go s.watch(e)
	out.State = "running"
	return out, nil
}

// watch finalizes one preparation: marshals the proof for bit-identical
// cached serving, folds the run's Report into the service metrics, and
// releases the admission slots.
func (s *Server) watch(e *serveEntry) {
	defer s.wg.Done()
	proof, report, err := e.job.Wait(context.Background())
	if err == nil {
		var bytes []byte
		if bytes, err = proof.MarshalBinary(); err == nil {
			e.bytes, e.proof = bytes, proof
		}
	}
	e.report, e.err = report, err

	st := e.job.Status()
	s.deliveryFaults.Add(int64(st.DeliveryFaults))
	s.repairRounds.Add(int64(st.RepairRounds))
	if err != nil {
		s.runFailures.Add(1)
	}

	s.mu.Lock()
	if report != nil {
		s.prepareNs += report.ComputeWall.Nanoseconds()
		s.decodeNs += report.DecodeWall.Nanoseconds()
		s.verifyNs += (time.Duration(report.VerifyTrials) * report.VerifyPerTrial).Nanoseconds()
	}
	s.inflight[e.tenant]--
	s.depth--
	s.mu.Unlock()
	close(e.done)
}

// lookup returns the entry for a digest or ErrUnknownProof.
func (s *Server) lookup(digest string) (*serveEntry, error) {
	s.mu.Lock()
	e, ok := s.entries[digest]
	s.mu.Unlock()
	if !ok {
		return nil, ErrUnknownProof
	}
	return e, nil
}

// Status reports a submission's live progress (the Job's status plus
// cache identity). Unknown digests return ErrUnknownProof.
func (s *Server) Status(digest string) (JobStatus, error) {
	e, err := s.lookup(digest)
	if err != nil {
		return JobStatus{}, err
	}
	return e.job.Status(), nil
}

// Result returns the proof bytes for a digest, blocking until the
// preparation finishes or ctx is done (long-poll). Every serve from a
// finished entry — the cache-hit path — runs a fresh VerifyProofBatch
// spot-check over the stored proof before the bytes are handed out, so
// a corrupted cache fails closed rather than shipping garbage. The
// returned slice is the cache's own storage; callers must not mutate
// it.
func (s *Server) Result(ctx context.Context, digest string) ([]byte, error) {
	e, err := s.lookup(digest)
	if err != nil {
		return nil, err
	}
	select {
	case <-e.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if e.err != nil {
		return nil, e.err
	}
	if ok, err := s.spotCheck(ctx, e); err != nil {
		return nil, err
	} else if !ok {
		return nil, fmt.Errorf("camelot: cached proof %s failed its spot-check", digest)
	}
	return e.bytes, nil
}

// VerifyStored runs a fresh VerifyProofBatch over a cached proof — the
// client-triggered form of the spot-check every cached Result performs.
func (s *Server) VerifyStored(ctx context.Context, digest string) (bool, error) {
	e, err := s.lookup(digest)
	if err != nil {
		return false, err
	}
	select {
	case <-e.done:
	case <-ctx.Done():
		return false, ctx.Err()
	}
	if e.err != nil {
		return false, e.err
	}
	return s.spotCheck(ctx, e)
}

func (s *Server) spotCheck(ctx context.Context, e *serveEntry) (bool, error) {
	// Each check draws a distinct seed so repeated serves accumulate
	// soundness rather than replaying one fold.
	seed := s.cfg.VerifySeed + s.spotSeed.Add(1)
	s.spotChecks.Add(1)
	ok, err := VerifyProofBatchContext(ctx, e.proof, seed)
	if err == nil && !ok {
		s.spotCheckFailures.Add(1)
	}
	return ok, err
}

// --- HTTP front end -----------------------------------------------------------

// submitRequest is the POST /v1/submit body.
type submitRequest struct {
	Tenant string `json:"tenant"`
	Spec   string `json:"spec"`
}

// statusResponse is the GET /v1/status body: the JSON shape of
// JobStatus with the stage and state rendered as strings.
type statusResponse struct {
	Digest         string `json:"digest"`
	Problem        string `json:"problem"`
	State          string `json:"state"`
	Stage          string `json:"stage"`
	PointsDone     int    `json:"points_done"`
	PointsTotal    int    `json:"points_total"`
	Suspects       int    `json:"suspects"`
	DeliveryFaults int    `json:"delivery_faults"`
	RepairRounds   int    `json:"repair_rounds"`
	Error          string `json:"error,omitempty"`
}

func stageName(st Stage) string {
	switch st {
	case StageQueued:
		return "queued"
	case StagePrepare:
		return "prepare"
	case StageDecode:
		return "decode"
	case StageVerify:
		return "verify"
	case StageDone:
		return "done"
	}
	return "unknown"
}

// Handler returns the service's HTTP interface:
//
//	POST /v1/submit   {"tenant": "...", "spec": "kind k=v ..."}
//	                  → 202 {"digest","canonical","state"}; 429 +
//	                  Retry-After with {"error":"tenant_quota"|"queue_full"}
//	                  under backpressure; 400 on malformed specs.
//	GET  /v1/status   ?digest=… → live JobStatus JSON.
//	GET  /v1/result   ?digest=… → the proof bytes (long-poll until
//	                  prepared; every serve is spot-checked first).
//	POST /v1/verify   ?digest=… → fresh VerifyProofBatch over the cached
//	                  proof → {"ok":true|false}.
//	GET  /metrics     → text counters: queue depth, cache hit ratio,
//	                  per-stage latency, delivery faults, repair rounds.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/submit", s.handleSubmit)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.HandleFunc("GET /v1/result", s.handleResult)
	mux.HandleFunc("POST /v1/verify", s.handleVerify)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad_body", "detail": err.Error()})
		return
	}
	var req submitRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad_json", "detail": err.Error()})
		return
	}
	out, err := s.Submit(req.Tenant, req.Spec)
	switch {
	case errors.Is(err, ErrTenantQuota), errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		code := "tenant_quota"
		if errors.Is(err, ErrQueueFull) {
			code = "queue_full"
		}
		writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": code, "detail": err.Error(), "digest": out.Digest})
	case err != nil:
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad_spec", "detail": err.Error()})
	default:
		code := http.StatusAccepted
		if out.State == "cached" {
			code = http.StatusOK
		}
		writeJSON(w, code, map[string]string{"digest": out.Digest, "canonical": out.Canonical, "state": out.State})
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	digest := r.URL.Query().Get("digest")
	st, err := s.Status(digest)
	if err != nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown_digest"})
		return
	}
	resp := statusResponse{
		Digest:         digest,
		Problem:        st.Problem,
		State:          st.State.String(),
		Stage:          stageName(st.Stage),
		PointsDone:     st.PointsDone,
		PointsTotal:    st.PointsTotal,
		Suspects:       st.Suspects,
		DeliveryFaults: st.DeliveryFaults,
		RepairRounds:   st.RepairRounds,
	}
	if st.Err != nil {
		resp.Error = st.Err.Error()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	bytes, err := s.Result(r.Context(), r.URL.Query().Get("digest"))
	switch {
	case errors.Is(err, ErrUnknownProof):
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown_digest"})
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": "preparation_failed", "detail": err.Error()})
	default:
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(bytes)
	}
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	ok, err := s.VerifyStored(r.Context(), r.URL.Query().Get("digest"))
	switch {
	case errors.Is(err, ErrUnknownProof):
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown_digest"})
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": "verify_failed", "detail": err.Error()})
	default:
		writeJSON(w, http.StatusOK, map[string]bool{"ok": ok})
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.WriteMetrics(w)
}

// WriteMetrics renders the service counters in the text exposition
// format: admission and cache behaviour, live queue depth, per-tenant
// in-flight counts, and the Observer-fed run aggregates (per-stage
// wall time, delivery faults, repair rounds).
func (s *Server) WriteMetrics(w io.Writer) {
	s.mu.Lock()
	depth := s.depth
	tenants := make([]string, 0, len(s.inflight))
	for t := range s.inflight {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	inflight := make([]int, len(tenants))
	for i, t := range tenants {
		inflight[i] = s.inflight[t]
	}
	prepare, decode, verify := s.prepareNs, s.decodeNs, s.verifyNs
	s.mu.Unlock()

	submits := s.submits.Load()
	hits, co := s.cacheHits.Load(), s.coalesced.Load()
	ratio := 0.0
	if submits > 0 {
		ratio = float64(hits+co) / float64(submits)
	}
	fmt.Fprintf(w, "camelot_submits_total %d\n", submits)
	fmt.Fprintf(w, "camelot_cache_hits_total %d\n", hits)
	fmt.Fprintf(w, "camelot_cache_coalesced_total %d\n", co)
	fmt.Fprintf(w, "camelot_cache_hit_ratio %g\n", ratio)
	fmt.Fprintf(w, "camelot_refused_tenant_quota_total %d\n", s.refusedQuota.Load())
	fmt.Fprintf(w, "camelot_refused_queue_full_total %d\n", s.refusedQueue.Load())
	fmt.Fprintf(w, "camelot_queue_depth %d\n", depth)
	for i, t := range tenants {
		fmt.Fprintf(w, "camelot_tenant_inflight{tenant=%q} %d\n", t, inflight[i])
	}
	fmt.Fprintf(w, "camelot_runs_total %d\n", s.runs.Load())
	fmt.Fprintf(w, "camelot_run_failures_total %d\n", s.runFailures.Load())
	fmt.Fprintf(w, "camelot_delivery_faults_total %d\n", s.deliveryFaults.Load())
	fmt.Fprintf(w, "camelot_repair_rounds_total %d\n", s.repairRounds.Load())
	fmt.Fprintf(w, "camelot_stage_seconds{stage=\"prepare\"} %g\n", float64(prepare)/1e9)
	fmt.Fprintf(w, "camelot_stage_seconds{stage=\"decode\"} %g\n", float64(decode)/1e9)
	fmt.Fprintf(w, "camelot_stage_seconds{stage=\"verify\"} %g\n", float64(verify)/1e9)
	fmt.Fprintf(w, "camelot_spot_checks_total %d\n", s.spotChecks.Load())
	fmt.Fprintf(w, "camelot_spot_check_failures_total %d\n", s.spotCheckFailures.Load())
	planHits, planMisses := s.cluster.PlanCacheStats()
	fmt.Fprintf(w, "camelot_plan_cache_hits %d\n", planHits)
	fmt.Fprintf(w, "camelot_plan_cache_misses %d\n", planMisses)
}
