// Serve: the Camelot proof service end to end. The paper's model is a
// community standing by to prepare proofs for a stream of inputs; this
// example runs that service over a real HTTP listener and replays its
// headline claim as a checked round trip:
//
//  1. submit a workload spec — the service canonicalizes it, computes
//     the content digest, and prepares the proof on the cluster;
//  2. long-poll the result and time the cold preparation;
//  3. submit the same workload with its fields reordered — the
//     canonical digest matches, the cache answers, and the served
//     bytes must be bit-identical to the cold run's;
//  4. ask the service to spot-check the cached artifact
//     (VerifyProofBatch — no problem instance needed), then verify it
//     locally too: caching never asks the client to trust the server.
//
// It exits non-zero on any mismatch, so CI runs it (race-instrumented)
// as the service acceptance gate. A 429 + Retry-After demonstration
// rides along on a deliberately saturated second service.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"camelot"
)

func main() {
	log.SetFlags(0)

	cluster := camelot.NewCluster(camelot.WithNodes(4))
	defer cluster.Close()
	service := camelot.NewServer(cluster, camelot.ServerConfig{
		FaultTolerance: 2,
		MaxQueueDepth:  8,
		Tenants: map[string]camelot.TenantConfig{
			"alice": {MaxInFlight: 4, Priority: 3},
			"bob":   {MaxInFlight: 2, Priority: 1},
		},
	})
	defer service.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: service.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	log.Printf("proof service on %s (4 nodes, f=2)", base)

	// 1. Cold submission.
	const spec = "triangles n=40 p=0.25 seed=7"
	start := time.Now()
	sub := submit(base, "alice", spec)
	if sub.State != "running" {
		log.Fatalf("cold submission state = %q, want running", sub.State)
	}
	cold := fetch(base + "/v1/result?digest=" + sub.Digest)
	coldLatency := time.Since(start)
	log.Printf("cold:   %-34q -> digest %s… (%d proof bytes in %v)",
		spec, sub.Digest[:12], len(cold), coldLatency.Round(time.Microsecond))

	// 2. Cache hit from another tenant, fields reordered: same
	// canonical form, same digest, same bytes.
	const reordered = "triangles seed=7 p=0.25 n=40"
	start = time.Now()
	hit := submit(base, "bob", reordered)
	if hit.State != "cached" || hit.Digest != sub.Digest {
		log.Fatalf("re-submission = %+v, want cached with digest %s", hit, sub.Digest)
	}
	served := fetch(base + "/v1/result?digest=" + hit.Digest)
	hitLatency := time.Since(start)
	if !bytes.Equal(served, cold) {
		log.Fatal("FAIL: cached proof is not bit-identical to the cold run's")
	}
	log.Printf("cached: %-34q -> same digest, bit-identical bytes in %v (%.0fx faster)",
		reordered, hitLatency.Round(time.Microsecond), float64(coldLatency)/float64(hitLatency))

	// 3. Server-side spot-check, then an independent local one.
	var verdict struct{ Ok bool }
	mustJSON(post(base+"/v1/verify?digest="+sub.Digest, ""), &verdict)
	if !verdict.Ok {
		log.Fatal("FAIL: service spot-check rejected the cached proof")
	}
	var proof camelot.Proof
	if err := proof.UnmarshalBinary(served); err != nil {
		log.Fatalf("served bytes do not unmarshal: %v", err)
	}
	if ok, err := camelot.VerifyProofBatch(&proof, time.Now().UnixNano()); err != nil || !ok {
		log.Fatalf("FAIL: local batch verification = (%v, %v)", ok, err)
	}
	log.Printf("verify: service spot-check and local VerifyProofBatch both accept")

	// 4. Metrics: the counters the round trip just moved.
	metrics := string(fetch(base + "/metrics"))
	for _, line := range strings.Split(strings.TrimSpace(metrics), "\n") {
		if strings.HasPrefix(line, "camelot_submits_total") ||
			strings.HasPrefix(line, "camelot_cache_hit") ||
			strings.HasPrefix(line, "camelot_stage_seconds") {
			log.Printf("metric: %s", line)
		}
	}
	if !strings.Contains(metrics, "camelot_cache_hits_total 1") {
		log.Fatal("FAIL: metrics do not record the cache hit")
	}

	// 5. Backpressure: a saturated single-slot service answers 429 with
	// a Retry-After hint instead of queueing without bound.
	demoBackpressure()

	log.Printf("ok: submit -> cache hit -> verify round trip held")
}

// demoBackpressure saturates a one-slot service and shows the typed
// refusal. The workload is slow enough (n=64) that the second
// submission reliably lands while the first is still preparing.
func demoBackpressure() {
	cluster := camelot.NewCluster(camelot.WithNodes(2))
	defer cluster.Close()
	service := camelot.NewServer(cluster, camelot.ServerConfig{MaxQueueDepth: 1, RetryAfter: 2 * time.Second})
	defer service.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: service.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	first := submit(base, "alice", "triangles n=64 p=0.2 seed=1")
	resp := post(base+"/v1/submit", `{"tenant":"bob","spec":"triangles n=64 p=0.2 seed=2"}`)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		log.Fatalf("saturated submit status = %d, want 429 (body %s)", resp.StatusCode, body)
	}
	log.Printf("backpressure: saturated service answered 429, Retry-After=%ss, body %s",
		resp.Header.Get("Retry-After"), strings.TrimSpace(string(body)))
	// Drain so Close has nothing in flight.
	fetch(base + "/v1/result?digest=" + first.Digest)
}

type submitReply struct{ Digest, Canonical, State string }

func submit(base, tenant, spec string) submitReply {
	body := fmt.Sprintf(`{"tenant":%q,"spec":%q}`, tenant, spec)
	resp := post(base+"/v1/submit", body)
	var out submitReply
	mustJSON(resp, &out)
	return out
}

func post(url, body string) *http.Response {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	return resp
}

func fetch(url string) []byte {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: status %d, body %s", url, resp.StatusCode, b)
	}
	return b
}

func mustJSON(resp *http.Response, v any) {
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode >= 400 {
		log.Fatalf("POST: status %d, body %s", resp.StatusCode, b)
	}
	if err := json.Unmarshal(b, v); err != nil {
		log.Fatalf("bad JSON %s: %v", b, err)
	}
}
