// Cluster example: the session API. One long-lived cluster — K nodes
// standing by, a shared worker pool, warm per-prime state — serves a
// stream of counting problems submitted asynchronously. The main
// goroutine polls job progress while the cluster works, then recovers
// every count and drains the cluster.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"camelot"
)

func main() {
	ctx := context.Background()

	// A long-lived runtime: 4 logical nodes per run, pool width and
	// transport at their defaults. Close drains in-flight jobs.
	cluster := camelot.NewCluster(camelot.WithNodes(4))
	defer cluster.Close()

	// A mixed workload, submitted without waiting: Submit returns an
	// async handle immediately and the shared pool arbitrates fairly
	// between in-flight jobs.
	type workItem struct {
		label   string
		problem camelot.CountingProblem
		job     *camelot.Job
	}
	items := []workItem{}
	for seed := int64(1); seed <= 3; seed++ {
		g := camelot.RandomGraph(32, 0.25, seed)
		p, err := camelot.NewTriangleProblem(g)
		if err != nil {
			log.Fatal(err)
		}
		items = append(items, workItem{label: fmt.Sprintf("triangles(seed=%d)", seed), problem: p})
	}
	a := make([][]int64, 10)
	for i := range a {
		a[i] = make([]int64, 10)
		for j := range a[i] {
			a[i][j] = int64((i + j) % 3)
		}
	}
	perm, err := camelot.NewPermanentProblem(a)
	if err != nil {
		log.Fatal(err)
	}
	items = append(items, workItem{label: "permanent(10x10)", problem: perm})

	for i := range items {
		items[i].job = cluster.Submit(ctx, items[i].problem, camelot.WithSeed(7), camelot.WithVerifyTrials(2))
	}

	// Poll: Status() is a few atomic loads — per-stage progress and live
	// suspect counts, free to call as often as you like.
	for {
		running := 0
		for _, it := range items {
			st := it.job.Status()
			if st.State == camelot.JobRunning {
				running++
				fmt.Printf("  %-20s %-8s %d/%d evaluation units\n",
					it.label, st.Stage, st.PointsDone, st.PointsTotal)
			}
		}
		if running == 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Harvest: Wait returns the run's (proof, report, error); Count
	// recovers the integer answer from the proof.
	for _, it := range items {
		proof, report, err := it.job.Wait(ctx)
		if err != nil {
			log.Fatal(err)
		}
		count, err := it.problem.Count(proof)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s = %v   (verified=%v, %d proof symbols)\n",
			it.label, count, report.Verified, report.ProofSymbols)
	}
}
