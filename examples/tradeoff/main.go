// Tradeoff: the paper's §1.4 smooth speedup curve. A fixed 6-clique
// instance is solved by communities of growing size; per-node work falls
// as 1/K (the evaluations are intrinsically workload-balanced) while the
// total stays within a constant of the sequential algorithm.
package main

import (
	"context"
	"fmt"
	"log"

	"camelot"
)

func main() {
	g := camelot.RandomGraph(8, 0.7, 11)
	fmt.Println("counting 6-cliques; sweeping the Round Table size K:")
	fmt.Printf("%4s %10s %14s %16s %14s\n", "K", "points", "points/node", "per-node time", "total time")
	for _, k := range []int{1, 2, 4, 8, 16, 32} {
		count, rep, err := camelot.CountCliques(context.Background(), g, 6,
			camelot.WithNodes(k), camelot.WithSeed(3), camelot.WithDecodingNodes(1))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d %10d %14d %16v %14v   (count=%v)\n",
			rep.Nodes, rep.CodeLength, (rep.CodeLength+rep.Nodes-1)/rep.Nodes,
			rep.MaxNodeCompute.Round(1000), rep.TotalNodeCompute.Round(1000), count)
	}
	fmt.Println("\nper-node work falls ~1/K until K reaches the proof size (paper §1.4);")
	fmt.Println("wall-clock gains saturate at the host's physical core count.")
}
