// Chromatic: compute the full chromatic polynomial of the Petersen graph
// with the O*(2^{n/2}) Camelot algorithm (Theorem 6), then read off its
// chromatic number and count of proper 3-colorings.
package main

import (
	"context"
	"fmt"
	"log"
	"math/big"

	"camelot"
)

func main() {
	g := camelot.PetersenGraph()
	coeffs, report, err := camelot.ChromaticPolynomial(context.Background(), g,
		camelot.WithNodes(4), camelot.WithSeed(5))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("chromatic polynomial of the Petersen graph:")
	fmt.Print("  χ(t) = ")
	for k := len(coeffs) - 1; k >= 0; k-- {
		if coeffs[k].Sign() == 0 {
			continue
		}
		fmt.Printf("%+v·t^%d ", coeffs[k], k)
	}
	fmt.Println()

	eval := func(t int64) *big.Int {
		acc := new(big.Int)
		x := big.NewInt(t)
		for k := len(coeffs) - 1; k >= 0; k-- {
			acc.Mul(acc, x)
			acc.Add(acc, coeffs[k])
		}
		return acc
	}
	for t := int64(1); t <= 4; t++ {
		fmt.Printf("  χ(%d) = %v\n", t, eval(t))
	}
	for t := int64(1); ; t++ {
		if eval(t).Sign() != 0 {
			fmt.Printf("chromatic number: %d\n", t)
			break
		}
	}
	fmt.Printf("(proof: degree %d, %d symbols, per-node time %v — vs 2^%d sequential states)\n",
		report.Degree, report.ProofSymbols, report.MaxNodeCompute, g.N())
}
