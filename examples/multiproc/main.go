// Multiproc: Camelot as real operating-system processes. This example
// is the deployment acceptance harness (CI runs it on three seeds): it
// builds the camelot binary, then proves the multi-process claim three
// ways against one workload spec —
//
//  1. reference: `coordinate -local` runs the workload in-process and
//     writes the proof;
//  2. deployment: `coordinate -listen` serves the control protocol
//     while two `camelot node` child processes evaluate every point
//     range, with per-frame HMAC authentication on, and the proof must
//     be bit-identical to the reference;
//  3. churn: three workers all armed with `-fail-owner 1` — whichever
//     one draws logical node 1 dies mid-run, the quorum gather absorbs
//     the silence as an erasure, a repair round re-assigns the lost
//     range to a survivor, and the healed proof is still bit-identical.
//
// Pass -race to build the instrumented binary (CI does), -seed to vary
// the workload.
package main

import (
	"bufio"
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"
)

func main() {
	seed := flag.Int("seed", 7, "workload seed")
	race := flag.Bool("race", false, "build the camelot binary with the race detector")
	flag.Parse()
	log.SetFlags(0)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	dir, err := os.MkdirTemp("", "camelot-multiproc-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	bin := filepath.Join(dir, "camelot")
	buildArgs := []string{"build"}
	if *race {
		buildArgs = append(buildArgs, "-race")
	}
	buildArgs = append(buildArgs, "-o", bin, "./cmd/camelot")
	if out, err := exec.CommandContext(ctx, "go", buildArgs...).CombinedOutput(); err != nil {
		log.Fatalf("building camelot binary: %v\n%s", err, out)
	}

	spec := fmt.Sprintf("triangles n=24 p=0.3 seed=%d", *seed)
	const secret = "round-table"
	common := []string{"-nodes", "3", "-trials", "1"}

	// 1. Reference proof, in-process.
	refPath := filepath.Join(dir, "ref.bin")
	local := exec.CommandContext(ctx, bin,
		append([]string{"coordinate", "-spec", spec, "-local", "-proofout", refPath}, common...)...)
	if out, err := local.CombinedOutput(); err != nil {
		log.Fatalf("local reference run: %v\n%s", err, out)
	}
	ref := mustRead(refPath)
	fmt.Printf("reference proof: %d bytes (in-process run)\n", len(ref))

	// 2. Two worker processes serve the whole run, authenticated.
	remotePath := filepath.Join(dir, "remote.bin")
	out := runDeployment(ctx, bin, deployment{
		coordArgs: append([]string{"coordinate", "-spec", spec,
			"-listen", "127.0.0.1:0", "-workers", "2", "-secret", secret,
			"-proofout", remotePath}, common...),
		workers: [][]string{
			{"node", "-secret", secret, "-name", "galahad"},
			{"node", "-secret", secret, "-name", "percival"},
		},
		wantWorkerFailures: 0,
	})
	if remote := mustRead(remotePath); !bytes.Equal(remote, ref) {
		log.Fatalf("multi-process proof differs from in-process proof (%d vs %d bytes)", len(remote), len(ref))
	}
	_ = out
	fmt.Println("deployment proof: bit-identical across 2 worker processes")

	// 3. Churn: the worker that draws node 1 dies; repair heals the run.
	healedPath := filepath.Join(dir, "healed.bin")
	out = runDeployment(ctx, bin, deployment{
		coordArgs: append([]string{"coordinate", "-spec", spec,
			"-listen", "127.0.0.1:0", "-workers", "3", "-secret", secret,
			"-erasures", "1", "-grace", "750ms", "-repair", "2",
			"-proofout", healedPath}, common...),
		workers: [][]string{
			{"node", "-secret", secret, "-name", "mordred-a", "-fail-owner", "1"},
			{"node", "-secret", secret, "-name", "mordred-b", "-fail-owner", "1"},
			{"node", "-secret", secret, "-name", "mordred-c", "-fail-owner", "1"},
		},
		wantWorkerFailures: 1,
	})
	if !strings.Contains(out, "repair") {
		log.Fatalf("churn run never reported a repair round:\n%s", out)
	}
	if healed := mustRead(healedPath); !bytes.Equal(healed, ref) {
		log.Fatalf("healed proof differs from in-process proof (%d vs %d bytes)", len(healed), len(ref))
	}
	fmt.Println("churn proof: worker killed mid-run, repair round healed it, still bit-identical")
}

// deployment is one coordinator-plus-workers scenario.
type deployment struct {
	coordArgs []string
	workers   [][]string
	// wantWorkerFailures is how many worker processes must exit
	// non-zero (the -fail-owner victim); any other count is a bug.
	wantWorkerFailures int
}

// runDeployment launches the coordinator, parses its announced address,
// joins the worker processes, and waits for everything. Returns the
// coordinator's full output.
func runDeployment(ctx context.Context, bin string, d deployment) string {
	coord := exec.CommandContext(ctx, bin, d.coordArgs...)
	stdout, err := coord.StdoutPipe()
	if err != nil {
		log.Fatal(err)
	}
	coord.Stderr = coord.Stdout
	if err := coord.Start(); err != nil {
		log.Fatalf("starting coordinator: %v", err)
	}

	// The first line announces the bound address; everything after is
	// the run report, drained concurrently so the pipe never blocks.
	sc := bufio.NewScanner(stdout)
	var addr string
	var buf bytes.Buffer
	for sc.Scan() {
		line := sc.Text()
		buf.WriteString(line + "\n")
		if a, ok := strings.CutPrefix(line, "coordinator listening on "); ok {
			addr = strings.TrimSpace(a)
			break
		}
	}
	if addr == "" {
		coord.Wait()
		log.Fatalf("coordinator never announced its address:\n%s", buf.String())
	}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		io.Copy(&buf, stdout)
	}()

	type workerExit struct {
		name string
		err  error
		out  []byte
	}
	exits := make(chan workerExit, len(d.workers))
	for _, args := range d.workers {
		args := append(append([]string(nil), args...), "-join", addr)
		go func() {
			w := exec.CommandContext(ctx, bin, args...)
			out, err := w.CombinedOutput()
			exits <- workerExit{name: strings.Join(args, " "), err: err, out: out}
		}()
	}

	failures := 0
	for range d.workers {
		e := <-exits
		if e.err != nil {
			failures++
			if !bytes.Contains(e.out, []byte("injected worker failure")) {
				log.Fatalf("worker %q failed for the wrong reason: %v\n%s", e.name, e.err, e.out)
			}
		}
	}
	<-drained
	if err := coord.Wait(); err != nil {
		log.Fatalf("coordinator run: %v\n%s", err, buf.String())
	}
	if failures != d.wantWorkerFailures {
		log.Fatalf("%d worker process(es) failed, want %d\n%s", failures, d.wantWorkerFailures, buf.String())
	}
	return buf.String()
}

func mustRead(path string) []byte {
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	return raw
}
