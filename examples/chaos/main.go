// Chaos: the paper's Camelot on a bad network. Eight Knights count
// triangles over a sharded messenger system — three per-shard buses
// bridged by relays — while the network itself misbehaves: two Knights'
// broadcasts are lost outright and every surviving scroll may arrive
// twice. The collector gathers by quorum instead of insisting on every
// message, the decoders treat the lost Knights' coordinates as
// Reed–Solomon erasures, and the proof still comes out bit-identical to
// a calm-weather run. Then the storm worsens past the code's budget:
// left alone, the run fails loudly with a typed decode error instead of
// lying — but with a repair round allowed, surviving Knights recompute
// the lost ranges and the same hurricane ends in the same proof, a
// little later.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"camelot"
)

func main() {
	ctx := context.Background()
	g := camelot.RandomGraph(32, 0.3, 11)

	// Calm weather first: the reference proof on a perfect bus.
	calm, calmRep, err := camelot.CountTriangles(ctx, g, camelot.WithSeed(5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calm run:  %v triangles (degree %d proof)\n", calm, calmRep.Degree)

	// Storm: 8 nodes on 3 shards; nodes 2 and 6 are unreachable and
	// every delivered message is duplicated. Losing 2 of 8 nodes erases
	// 2·⌈e/8⌉ coordinates, so pick f with 2f ≥ that budget.
	const k = 8
	faults := 0
	for {
		e := calmRep.Degree + 1 + 2*faults
		if 2*faults >= 2*((e+k-1)/k) {
			break
		}
		faults++
	}
	cluster := camelot.NewCluster(
		camelot.WithNodes(k),
		camelot.WithShardedTransport(3),
		camelot.WithLossyTransport(camelot.LossyConfig{
			Seed:      77,
			DropNodes: []int{2, 6},
			DupRate:   1.0,
		}),
	)
	defer cluster.Close()

	p, err := camelot.NewTriangleProblem(g)
	if err != nil {
		log.Fatal(err)
	}
	job := cluster.Submit(ctx, p,
		camelot.WithSeed(5),
		camelot.WithFaultTolerance(faults),
		camelot.WithMaxErasures(2),
		camelot.WithGatherGrace(500*time.Millisecond),
	)
	proof, rep, err := job.Wait(ctx)
	if err != nil {
		log.Fatal(err)
	}
	stormy, err := p.Count(proof)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("storm run: %v triangles — lost couriers %v decoded as erasures (f=%d)\n",
		stormy, rep.MissingNodes, faults)
	if stormy.Cmp(calm) != 0 {
		log.Fatal("storm run disagrees with calm run")
	}
	fmt.Println("proofs agree bit for bit; delivery faults never entered the suspect list:", rep.SuspectNodes)

	// Worse weather than the code can carry: with f=1 the budget is 2
	// erasures, and the two dead Knights own far more coordinates than
	// that. Without repair the run must refuse, honestly and typed.
	hurricane := []camelot.RunOption{
		camelot.WithSeed(5),
		camelot.WithFaultTolerance(1),
		camelot.WithMaxErasures(2),
		camelot.WithGatherGrace(300 * time.Millisecond),
	}
	job = cluster.Submit(ctx, p, hurricane...)
	if _, _, err = job.Wait(ctx); errors.Is(err, camelot.ErrDecodeFailure) {
		fmt.Println("hurricane run: refused honestly —", err)
	} else {
		log.Fatalf("hurricane run: expected a typed decode failure, got %v", err)
	}

	// The same hurricane, one repair round allowed: the decode failure
	// triggers a self-healing gather — surviving Knights recompute the
	// dead Knights' ranges (evaluation is deterministic in the point, so
	// the recomputed scrolls are the very scrolls the dead would have
	// sent) and the retried decode succeeds with the bit-identical count.
	job = cluster.Submit(ctx, p, append(hurricane, camelot.WithMaxRepairRounds(1))...)
	proof, rep, err = job.Wait(ctx)
	if err != nil {
		log.Fatal(err)
	}
	healed, err := p.Count(proof)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("healed run: %v triangles — %d repair round(s) recovered Knights %v\n",
		healed, rep.RepairRounds, rep.RepairedNodes)
	if healed.Cmp(calm) != 0 {
		log.Fatal("healed run disagrees with calm run")
	}
	fmt.Println("the storm beyond the budget became latency, not failure")
}
