// Merlin: the dual reading of every Camelot algorithm as a Merlin–Arthur
// protocol (paper §1.2). Merlin supplies the proof — here prepared
// honestly, then forged — and Arthur verifies it with random evaluations
// costing no more than a single Knight's share of the work.
package main

import (
	"context"
	"fmt"
	"log"

	"camelot"
	"camelot/internal/core"
	"camelot/internal/permanent"
)

func main() {
	// The claim: the permanent of a 10x10 0/1 matrix.
	a := make([][]int64, 10)
	for i := range a {
		a[i] = make([]int64, 10)
		for j := range a[i] {
			if (i+j)%3 != 0 {
				a[i][j] = 1
			}
		}
	}
	p, err := permanent.NewProblem(a)
	if err != nil {
		log.Fatal(err)
	}

	// Merlin materializes and instantaneously supplies the proof (we
	// let a single node prepare it; Merlin would just know it).
	proof, _, err := core.Run(context.Background(), p, core.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	per, err := p.Recover(proof)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Merlin claims: per(A) = %v, with a %d-symbol proof\n", per, proof.Size())

	// Arthur verifies with a few coin tosses.
	ok, err := camelot.VerifyProof(p, proof, 3, 1002)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Arthur's verdict on the honest proof: accept=%v\n", ok)

	// A dishonest Merlin perturbs one coefficient...
	q := proof.Primes[0]
	proof.Coeffs[q][0][5] = (proof.Coeffs[q][0][5] + 1) % q
	rejectedAt := -1
	for trial := 0; trial < 50; trial++ {
		ok, err := camelot.VerifyProof(p, proof, 1, int64(trial))
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			rejectedAt = trial
			break
		}
	}
	fmt.Printf("forged proof rejected at trial %d (soundness error <= d/q = %d/%d per trial)\n",
		rejectedAt, proof.Degree, q)
}
