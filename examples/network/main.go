// Network: Camelot over real sockets. The Knights no longer share a
// table — eight of them count triangles while every share broadcast
// travels a length-prefixed binary frame over loopback TCP to the
// collector, multi-process style: dial, retry until the collector is
// up, write the frame, hang up. The proof that comes back is
// bit-identical to the in-memory bus run, because the transport seam
// carries the same one message kind either way. Then the weather turns:
// a lossy wrapper drops two Knights' frames off the socket, the quorum
// gather hands the decoders a partial codeword, and the erasure budget
// recovers the very same proof again.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"camelot"
)

func main() {
	ctx := context.Background()
	g := camelot.RandomGraph(32, 0.3, 11)
	const k = 8

	// Reference: the paper's reliable in-memory broadcast bus.
	busCluster := camelot.NewCluster(camelot.WithNodes(k))
	defer busCluster.Close()
	p, err := camelot.NewTriangleProblem(g)
	if err != nil {
		log.Fatal(err)
	}
	busProof, _, err := busCluster.Submit(ctx, p, camelot.WithSeed(5)).Wait(ctx)
	if err != nil {
		log.Fatal(err)
	}
	count, err := p.Count(busProof)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("in-memory bus:  %v triangles\n", count)

	// The same community over loopback TCP: WithListenAddr alone binds
	// an ephemeral port per run and the senders dial whatever was
	// bound. Every broadcast crosses a real socket.
	tcpCluster := camelot.NewCluster(
		camelot.WithNodes(k),
		camelot.WithListenAddr("127.0.0.1:0"),
	)
	defer tcpCluster.Close()
	tcpProof, tcpRep, err := tcpCluster.Submit(ctx, p, camelot.WithSeed(5)).Wait(ctx)
	if err != nil {
		log.Fatal(err)
	}
	same, err := proofBytesEqual(busProof, tcpProof)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loopback TCP:   proof bit-identical to the bus run: %v (compute wall %v)\n",
		same, tcpRep.ComputeWall.Round(1000))
	if !same {
		log.Fatal("transport changed the proof — it must never")
	}

	// Storm over the socket: nodes 2 and 6 lose every frame. Losing 2
	// of 8 nodes erases 2·⌈e/8⌉ coordinates, so size f to cover it,
	// and let the quorum gather stop waiting for the lost two.
	faults := 0
	for {
		e := tcpRep.Degree + 1 + 2*faults
		if 2*faults >= 2*((e+k-1)/k) {
			break
		}
		faults++
	}
	stormCluster := camelot.NewCluster(
		camelot.WithNodes(k),
		camelot.WithListenAddr("127.0.0.1:0"),
		camelot.WithLossyTransport(camelot.LossyConfig{Seed: 77, DropNodes: []int{2, 6}}),
	)
	defer stormCluster.Close()
	stormProof, stormRep, err := stormCluster.Submit(ctx, p,
		camelot.WithSeed(5),
		camelot.WithFaultTolerance(faults),
		camelot.WithMaxErasures(2),
	).Wait(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lossy TCP:      undelivered %v decoded as erasures, verified=%v\n",
		stormRep.MissingNodes, stormRep.Verified)
	stormCount, err := p.Count(stormProof)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("                %v triangles — same answer off a stormy socket\n", stormCount)
}

// proofBytesEqual compares two proofs by their wire encoding — the
// strictest bit-identity check the format offers.
func proofBytesEqual(a, b *camelot.Proof) (bool, error) {
	ab, err := a.MarshalBinary()
	if err != nil {
		return false, err
	}
	bb, err := b.MarshalBinary()
	if err != nil {
		return false, err
	}
	return bytes.Equal(ab, bb), nil
}
