// Quickstart: count the triangles of a random graph with a 4-node
// Camelot community, then inspect the proof artifacts that make the
// computation independently verifiable.
//
// The one-shot functions used here run on a shared default cluster
// behind the scenes; when you have a *stream* of problems, create your
// own runtime with camelot.NewCluster and submit them as concurrent
// jobs — see examples/cluster.
package main

import (
	"context"
	"fmt"
	"log"

	"camelot"
)

func main() {
	g := camelot.RandomGraph(40 /* vertices */, 0.25 /* edge prob */, 42 /* seed */)

	count, report, err := camelot.CountTriangles(context.Background(), g,
		camelot.WithNodes(4),
		camelot.WithVerifyTrials(3),
		camelot.WithSeed(7),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("graph: n=%d m=%d\n", g.N(), g.M())
	fmt.Printf("triangles: %v\n\n", count)
	fmt.Printf("the proof behind the number:\n")
	fmt.Printf("  %d nodes each evaluated ~%d points of a degree-%d proof polynomial\n",
		report.Nodes, (report.CodeLength+report.Nodes-1)/report.Nodes, report.Degree)
	fmt.Printf("  proof size: %d field symbols over primes %v\n", report.ProofSymbols, report.Primes)
	fmt.Printf("  verified with %d random spot checks (%v each): %v\n",
		report.VerifyTrials, report.VerifyPerTrial, report.Verified)
}
