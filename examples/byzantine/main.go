// Byzantine: the scene from the paper's §1.1, executable. Eight Knights
// count 6-cliques around the Round Table; Lady Morgana enchants two of
// them into broadcasting different garbage to every listener. The honest
// Knights error-correct the shares, name the enchanted ones, and still
// deliver a proof any lone soul can check.
package main

import (
	"context"
	"fmt"
	"log"

	"camelot"
)

func main() {
	// The common input: a sparse graph with two planted 6-cliques.
	g := camelot.PlantCliques(9 /* vertices */, 0.3, 6 /* clique size */, 2 /* planted */, 3 /* seed */)

	// Morgana enchants Knights 2 and 5: full equivocation (different lies
	// to different recipients). With K=8 nodes we need the Reed–Solomon
	// radius to swallow two whole node blocks; probe the degree first.
	_, probe, err := camelot.CountCliques(context.Background(), g, 6, camelot.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	const k = 8
	faults := 0
	for {
		e := probe.Degree + 1 + 2*faults
		if faults >= 2*((e+k-1)/k) {
			break
		}
		faults++
	}

	count, report, err := camelot.CountCliques(context.Background(), g, 6,
		camelot.WithNodes(k),
		camelot.WithFaultTolerance(faults),
		camelot.WithAdversary(camelot.EquivocatingNodes(13, 2, 5)),
		camelot.WithSeed(1),
		camelot.WithDecodingNodes(2), // two honest Knights decode (both must agree)
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("six-cliques found: %v\n\n", count)
	fmt.Printf("the community effort:\n")
	fmt.Printf("  knights:              %d (enchanted: %v)\n", report.Nodes, report.ByzantineNodes)
	fmt.Printf("  corrupted shares:     %d of %d (radius %d)\n",
		report.CorruptedShares, report.CodeLength, faults)
	fmt.Printf("  culprits identified:  %v — purely from the decoded error locations\n", report.SuspectNodes)
	fmt.Printf("  proof verified:       %v\n", report.Verified)
}
