package camelot

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestNoFieldLiteralsOutsideFF enforces the ff constructor contract: a
// Field assembled as a struct literal skips the precomputed reduction
// kernel and panics on first multiply, so every construction outside
// package ff must go through ff.New or ff.Must. This walk backs the
// guarantee the arithmetic layer documents (see ARCHITECTURE.md,
// "Arithmetic layer").
func TestNoFieldLiteralsOutsideFF(t *testing.T) {
	var offenders []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			if filepath.ToSlash(path) == "internal/ff" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		needle := "ff.Field" + "{" // split so this file does not match itself
		for i, line := range strings.Split(string(src), "\n") {
			if strings.Contains(line, needle) {
				offenders = append(offenders, fmt.Sprintf("%s:%d", filepath.ToSlash(path), i+1))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(offenders) > 0 {
		t.Fatalf("ff.Field struct literals outside package ff (use ff.New or ff.Must):\n  %s",
			strings.Join(offenders, "\n  "))
	}
}

// problemPackages are the problem-zoo packages whose per-prime state
// must live in compiled plans (internal/plan), not in ad-hoc lazy
// caches inside the problem type.
var problemPackages = []string{
	"internal/chromatic",
	"internal/cliques",
	"internal/cnfsat",
	"internal/conv3sum",
	"internal/csp",
	"internal/hamilton",
	"internal/orthvec",
	"internal/permanent",
	"internal/setcover",
	"internal/triangles",
	"internal/tutte",
}

// lockGrandfathered lists problem-package files still allowed to hold a
// sync.Once or sync.Mutex. Empty: every per-prime cache has moved to
// the plan layer. Do not add entries — compile per-prime state through
// plan.Compiler instead.
var lockGrandfathered = map[string]bool{}

// TestNoAdHocPlanCachesInProblems enforces the plan-layer contract: a
// problem package that memoizes per-prime state behind sync.Once or a
// sync.Mutex is rebuilding the compiled-plan machinery privately —
// unshared across tenants, invisible to the cluster's plan cache, and
// a lock on the scheduler's hot path. Per-prime state belongs in
// Compile (plan.Compiler); cross-call coordination inside a plan is a
// design smell the equivalence tests cannot catch. sync.WaitGroup
// (fan-out joins) stays allowed.
func TestNoAdHocPlanCachesInProblems(t *testing.T) {
	var offenders []string
	for _, pkg := range problemPackages {
		entries, err := os.ReadDir(pkg)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range entries {
			name := d.Name()
			if d.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := pkg + "/" + name
			if lockGrandfathered[path] {
				continue
			}
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(src), "\n") {
				if strings.Contains(line, "sync.Once") || strings.Contains(line, "sync.Mutex") {
					offenders = append(offenders, fmt.Sprintf("%s:%d: %s", path, i+1, strings.TrimSpace(line)))
				}
			}
		}
	}
	if len(offenders) > 0 {
		t.Fatalf("ad-hoc lazy caches in problem packages (move per-prime state into plan.Compiler.Compile):\n  %s",
			strings.Join(offenders, "\n  "))
	}
}
