package camelot

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestNoFieldLiteralsOutsideFF enforces the ff constructor contract: a
// Field assembled as a struct literal skips the precomputed reduction
// kernel and panics on first multiply, so every construction outside
// package ff must go through ff.New or ff.Must. This walk backs the
// guarantee the arithmetic layer documents (see ARCHITECTURE.md,
// "Arithmetic layer").
func TestNoFieldLiteralsOutsideFF(t *testing.T) {
	var offenders []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			if filepath.ToSlash(path) == "internal/ff" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		needle := "ff.Field" + "{" // split so this file does not match itself
		for i, line := range strings.Split(string(src), "\n") {
			if strings.Contains(line, needle) {
				offenders = append(offenders, fmt.Sprintf("%s:%d", filepath.ToSlash(path), i+1))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(offenders) > 0 {
		t.Fatalf("ff.Field struct literals outside package ff (use ff.New or ff.Must):\n  %s",
			strings.Join(offenders, "\n  "))
	}
}
