package camelot

// Facade-level tests for the networked transport options and the Tutte
// line-concurrency regression, both observed from the public API.

import (
	"bytes"
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"camelot/internal/core"
)

// TestTCPFacadeProofBitIdentical is the acceptance criterion at the
// public surface: a run configured with the TCP options over loopback
// produces a proof bit-identical to the default bus run for the same
// seed and problem.
func TestTCPFacadeProofBitIdentical(t *testing.T) {
	ctx := context.Background()
	g := RandomGraph(24, 0.3, 7)
	p, err := NewTriangleProblem(g)
	if err != nil {
		t.Fatal(err)
	}
	run := func(opts ...ClusterOption) []byte {
		t.Helper()
		cl := NewCluster(append([]ClusterOption{WithNodes(5)}, opts...)...)
		defer cl.Close()
		proof, rep, err := cl.Submit(ctx, p, WithSeed(3), WithFaultTolerance(2)).Wait(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Verified {
			t.Fatal("run not verified")
		}
		data, err := proof.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	bus := run()
	tcp := run(WithListenAddr("127.0.0.1:0"))
	if !bytes.Equal(bus, tcp) {
		t.Fatal("TCP run's proof differs from the bus run's")
	}
}

// TestTCPFacadeLossyRecovers drives WithTCPTransport composed with
// WithLossyTransport: drops within the erasure budget off a real
// socket still recover the identical proof.
func TestTCPFacadeLossyRecovers(t *testing.T) {
	ctx := context.Background()
	g := RandomGraph(20, 0.3, 7)
	p, err := NewTriangleProblem(g)
	if err != nil {
		t.Fatal(err)
	}
	const k, faults = 8, 12 // ~22 points per node, budget 24 covers one node
	calm := NewCluster(WithNodes(k))
	defer calm.Close()
	calmProof, _, err := calm.Submit(ctx, p, WithSeed(3), WithFaultTolerance(faults)).Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	lossy := NewCluster(
		WithNodes(k),
		WithListenAddr("127.0.0.1:0"),
		WithLossyTransport(LossyConfig{Seed: 9, DropNodes: []int{4}}),
	)
	defer lossy.Close()
	proof, rep, err := lossy.Submit(ctx, p,
		WithSeed(3), WithFaultTolerance(faults), WithMaxErasures(1)).Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.MissingNodes) != 1 || rep.MissingNodes[0] != 4 {
		t.Fatalf("MissingNodes = %v, want [4]", rep.MissingNodes)
	}
	a, _ := calmProof.MarshalBinary()
	b, _ := proof.MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Fatal("lossy TCP proof differs from calm run")
	}
}

// countingFactory wraps the default bus factory and tracks how many
// runs are between transport construction (the very start of a run's
// prepare stage, right after its share buffers were allocated) and
// gather completion — a public-API view of lines in flight.
type countingFactory struct {
	active, maxActive atomic.Int32
	total             atomic.Int32
}

func (f *countingFactory) factory(k int) Transport {
	f.total.Add(1)
	n := f.active.Add(1)
	for {
		m := f.maxActive.Load()
		if n <= m || f.maxActive.CompareAndSwap(m, n) {
			break
		}
	}
	return &countingTransport{BroadcastBus: core.NewBroadcastBus(k), f: f}
}

type countingTransport struct {
	*core.BroadcastBus
	f    *countingFactory
	once sync.Once
}

func (t *countingTransport) done() { t.once.Do(func() { t.f.active.Add(-1) }) }

func (t *countingTransport) Gather(ctx context.Context, k int) ([]NodeShares, error) {
	defer t.done()
	// Overlap window: hold the "in flight" state briefly so concurrent
	// line starts are observed even when each line runs fast.
	defer time.Sleep(time.Millisecond)
	return t.BroadcastBus.Gather(ctx, k)
}

func (t *countingTransport) GatherQuorum(ctx context.Context, spec core.GatherSpec) ([]NodeShares, error) {
	defer t.done()
	defer time.Sleep(time.Millisecond)
	return t.BroadcastBus.GatherQuorum(ctx, spec)
}

// TestTuttePolynomialBoundsLineStarts is the call-site regression for
// the FK line fix: TuttePolynomial used to admit all m+1 lines at
// once, so every line's transport existed concurrently. With the cap,
// the number of simultaneously started runs can never exceed the
// pool width driving them.
func TestTuttePolynomialBoundsLineStarts(t *testing.T) {
	mg := RandomMultigraph(4, 9, 3) // 10 FK lines
	const width = 2
	f := &countingFactory{}
	res, err := TuttePolynomial(context.Background(), mg,
		WithMaxParallelism(width), WithTransport(f.factory), WithVerifyTrials(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := f.total.Load(); got != int32(mg.M()+1) {
		t.Fatalf("%d runs observed, want %d lines", got, mg.M()+1)
	}
	if got := f.maxActive.Load(); got > width {
		t.Fatalf("%d lines in flight at once, pool width %d", got, width)
	}
	// Sanity: the bounded run still recovers a correct polynomial
	// (T(2,2) = 2^m for any multigraph).
	if got := EvalTutte(res.T, 2, 2).Int64(); got != 1<<uint(mg.M()) {
		t.Fatalf("T(2,2) = %d, want %d", got, int64(1)<<uint(mg.M()))
	}
}
