package rs

// Parallel-vs-serial equivalence for the Gao decoder (satellite of
// ISSUE 6): the decode pipeline (interpolation, subproduct trees,
// EvalMany) picks up parallelism from internal/par through poly, and
// exact modular arithmetic means the parallel execution must reproduce
// the serial result bit for bit — message, corrected word, and error
// locations alike. CI's -race leg runs this with real interleavings.

import (
	"math/rand"
	"testing"

	"camelot/internal/par"
)

func TestDecodeParallelMatchesSerial(t *testing.T) {
	e, d := 2048, 1500
	c := newTestCode(t, e, d)
	rng := rand.New(rand.NewSource(31))
	f := c.Field()
	msg := randMessage(rng, f, d)

	restore := par.SetParallelism(1)
	encoded, err := c.Encode(msg)
	restore()
	if err != nil {
		t.Fatal(err)
	}
	received := make([]uint64, e)
	copy(received, encoded)
	// Stay within the erasure-adjusted budget 2·errors + erasures ≤ e-d-1
	// so both decode legs succeed rather than failing in tandem.
	for i := 0; i < 200; i++ {
		pos := rng.Intn(e)
		received[pos] = (received[pos] + 1 + rng.Uint64()%(f.Q-1)) % f.Q
	}
	erased := []int{3, 99, 1044}

	type result struct {
		msg, corrected []uint64
		locs           []int
		err            error
	}
	run := func(workers int) (clean, erasedRes result, encodedW []uint64) {
		restore := par.SetParallelism(workers)
		defer restore()
		encodedW, err := c.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		m1, c1, l1, e1 := c.Decode(received)
		m2, c2, l2, e2 := c.DecodeErasures(received, erased)
		return result{m1, c1, l1, e1}, result{m2, c2, l2, e2}, encodedW
	}

	serialClean, serialErased, serialEnc := run(1)
	parClean, parErased, parEnc := run(4)

	for i := range serialEnc {
		if parEnc[i] != serialEnc[i] {
			t.Fatalf("parallel Encode[%d] = %d, serial %d", i, parEnc[i], serialEnc[i])
		}
	}
	check := func(name string, got, want result) {
		t.Helper()
		if (got.err == nil) != (want.err == nil) {
			t.Fatalf("%s: parallel err %v, serial err %v", name, got.err, want.err)
		}
		if want.err != nil {
			return
		}
		for i := range want.msg {
			if got.msg[i] != want.msg[i] {
				t.Fatalf("%s: parallel message[%d] = %d, serial %d", name, i, got.msg[i], want.msg[i])
			}
		}
		for i := range want.corrected {
			if got.corrected[i] != want.corrected[i] {
				t.Fatalf("%s: parallel corrected[%d] = %d, serial %d", name, i, got.corrected[i], want.corrected[i])
			}
		}
		if len(got.locs) != len(want.locs) {
			t.Fatalf("%s: parallel found %d error locations, serial %d", name, len(got.locs), len(want.locs))
		}
		for i := range want.locs {
			if got.locs[i] != want.locs[i] {
				t.Fatalf("%s: parallel errorLocs[%d] = %d, serial %d", name, i, got.locs[i], want.locs[i])
			}
		}
		for i := range want.msg {
			if got.msg[i] != msg[i] {
				t.Fatalf("%s: decoded message[%d] = %d, original %d", name, i, got.msg[i], msg[i])
			}
		}
	}
	check("clean-decode", parClean, serialClean)
	check("erasure-decode", parErased, serialErased)
}
