// Package rs implements the nonsystematic Reed–Solomon code of paper §2.3:
// a message (p_0,...,p_d) is encoded as the evaluations of its polynomial
// at e distinct field points, and decoded — in the presence of up to
// ⌊(e-d-1)/2⌋ corrupted symbols — with Gao's extended-Euclidean decoder.
//
// The decoder additionally reports *which* positions were corrupted, which
// is how a Camelot node identifies the Knights that Morgana enchanted
// (paper §1.3, step 2).
package rs

import (
	"errors"
	"fmt"

	"camelot/internal/ff"
	"camelot/internal/poly"
)

// ErrDecodeFailure is returned when the received word is farther from the
// code than the unique-decoding radius, so no codeword can be recovered.
var ErrDecodeFailure = errors.New("rs: received word beyond unique-decoding radius")

// Code is a Reed–Solomon code of length e = len(Points) for messages of
// degree at most d (that is, d+1 symbols). Points must be distinct mod q.
type Code struct {
	ring   *poly.Ring
	points []uint64
	d      int
	g0     []uint64 // Π (x - x_i), precomputed for decoding
}

// New constructs a code over the given ring with the given evaluation
// points and message degree bound d (message length d+1).
func New(ring *poly.Ring, points []uint64, d int) (*Code, error) {
	e := len(points)
	if d < 0 || d+1 > e {
		return nil, fmt.Errorf("rs: need d+1 <= e, got d=%d e=%d", d, e)
	}
	if uint64(e) > ring.Field().Q {
		return nil, fmt.Errorf("rs: length %d exceeds field size %d", e, ring.Field().Q)
	}
	seen := make(map[uint64]struct{}, e)
	for _, x := range points {
		xr := x % ring.Field().Q
		if _, dup := seen[xr]; dup {
			return nil, fmt.Errorf("rs: duplicate evaluation point %d", x)
		}
		seen[xr] = struct{}{}
	}
	return &Code{ring: ring, points: points, d: d, g0: ring.ProductFromRoots(points)}, nil
}

// ConsecutivePoints returns the canonical Camelot point set 0..e-1.
func ConsecutivePoints(e int) []uint64 {
	pts := make([]uint64, e)
	for i := range pts {
		pts[i] = uint64(i)
	}
	return pts
}

// Length returns the codeword length e.
func (c *Code) Length() int { return len(c.points) }

// DegreeBound returns the message degree bound d.
func (c *Code) DegreeBound() int { return c.d }

// Points returns the evaluation points (not a copy; callers must not
// mutate).
func (c *Code) Points() []uint64 { return c.points }

// CorrectionRadius returns the number of symbol errors the decoder is
// guaranteed to correct: ⌊(e-d-1)/2⌋.
func (c *Code) CorrectionRadius() int { return (len(c.points) - c.d - 1) / 2 }

// Encode evaluates the message polynomial at every code point.
// The message may have fewer than d+1 symbols (high coefficients zero).
func (c *Code) Encode(message []uint64) ([]uint64, error) {
	if len(message) > c.d+1 {
		return nil, fmt.Errorf("rs: message length %d exceeds d+1 = %d", len(message), c.d+1)
	}
	return c.ring.EvalMany(message, c.points), nil
}

// Decode recovers the message polynomial from a received word, correcting
// up to CorrectionRadius() corrupted symbols. It returns the message
// coefficients (length d+1, trailing zeros included), the corrected
// codeword, and the indices at which the received word disagreed with it.
//
// Gao's algorithm (paper §2.3): interpolate G1 through the received word;
// run the extended Euclidean algorithm on (G0, G1) stopping at degree
// < (e+d+1)/2; the quotient G/V is the message iff the division is exact.
func (c *Code) Decode(received []uint64) (message, corrected []uint64, errorLocs []int, err error) {
	e := len(c.points)
	if len(received) != e {
		return nil, nil, nil, fmt.Errorf("rs: received word length %d, want %d", len(received), e)
	}
	g1 := c.ring.Interpolate(c.points, received)
	if poly.Degree(g1) < 0 {
		// The all-zero word is itself the zero codeword (the Euclidean
		// recursion below would degenerate on G1 = 0).
		return make([]uint64, c.d+1), make([]uint64, e), nil, nil
	}
	stop := (e + c.d + 1) / 2
	g, _, v := c.ring.PartialXGCD(c.g0, g1, stop)
	if poly.Degree(v) < 0 {
		return nil, nil, nil, fmt.Errorf("%w: degenerate error locator", ErrDecodeFailure)
	}
	p, r := c.ring.DivMod(g, v)
	if len(r) != 0 || poly.Degree(p) > c.d {
		return nil, nil, nil, ErrDecodeFailure
	}
	corrected = c.ring.EvalMany(p, c.points)
	for i := range corrected {
		if corrected[i] != received[i]%c.ring.Field().Q {
			errorLocs = append(errorLocs, i)
		}
	}
	if len(errorLocs) > c.CorrectionRadius() {
		// The Euclidean stop produced a "codeword" farther away than the
		// radius — with that many errors uniqueness is void; refuse.
		return nil, nil, nil, fmt.Errorf("%w: %d errors exceed radius %d",
			ErrDecodeFailure, len(errorLocs), c.CorrectionRadius())
	}
	message = make([]uint64, c.d+1)
	copy(message, p)
	return message, corrected, errorLocs, nil
}

// Verify spot-checks a putative message against an oracle for codeword
// symbols: it draws one Camelot verification equation (paper eq. (2)) at
// the given point x0, comparing oracle(x0) with Horner evaluation of the
// message. A mismatch proves the message is not the oracle's polynomial;
// agreement is correct with probability >= 1 - d/q for uniform x0.
func (c *Code) Verify(message []uint64, x0 uint64, oracle func(uint64) (uint64, error)) (bool, error) {
	want, err := oracle(x0)
	if err != nil {
		return false, fmt.Errorf("rs: verification oracle: %w", err)
	}
	f := c.ring.Field()
	return f.Horner(message, x0) == want%f.Q, nil
}

// Field returns the underlying coefficient field.
func (c *Code) Field() ff.Field { return c.ring.Field() }
