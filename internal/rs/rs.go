// Package rs implements the nonsystematic Reed–Solomon code of paper §2.3:
// a message (p_0,...,p_d) is encoded as the evaluations of its polynomial
// at e distinct field points, and decoded — in the presence of up to
// ⌊(e-d-1)/2⌋ corrupted symbols — with Gao's extended-Euclidean decoder.
//
// The decoder additionally reports *which* positions were corrupted, which
// is how a Camelot node identifies the Knights that Morgana enchanted
// (paper §1.3, step 2).
package rs

import (
	"errors"
	"fmt"

	"camelot/internal/ff"
	"camelot/internal/poly"
)

// ErrDecodeFailure is returned when the received word is farther from the
// code than the unique-decoding radius, so no codeword can be recovered.
var ErrDecodeFailure = errors.New("rs: received word beyond unique-decoding radius")

// Code is a Reed–Solomon code of length e = len(Points) for messages of
// degree at most d (that is, d+1 symbols). Points must be distinct mod q.
type Code struct {
	ring   *poly.Ring
	points []uint64
	d      int
	g0     []uint64 // Π (x - x_i), precomputed for decoding
}

// New constructs a code over the given ring with the given evaluation
// points and message degree bound d (message length d+1).
func New(ring *poly.Ring, points []uint64, d int) (*Code, error) {
	e := len(points)
	if d < 0 || d+1 > e {
		return nil, fmt.Errorf("rs: need d+1 <= e, got d=%d e=%d", d, e)
	}
	if uint64(e) > ring.Field().Q {
		return nil, fmt.Errorf("rs: length %d exceeds field size %d", e, ring.Field().Q)
	}
	seen := make(map[uint64]struct{}, e)
	for _, x := range points {
		xr := x % ring.Field().Q
		if _, dup := seen[xr]; dup {
			return nil, fmt.Errorf("rs: duplicate evaluation point %d", x)
		}
		seen[xr] = struct{}{}
	}
	return &Code{ring: ring, points: points, d: d, g0: ring.ProductFromRoots(points)}, nil
}

// ConsecutivePoints returns the canonical Camelot point set 0..e-1.
func ConsecutivePoints(e int) []uint64 {
	pts := make([]uint64, e)
	for i := range pts {
		pts[i] = uint64(i)
	}
	return pts
}

// Length returns the codeword length e.
func (c *Code) Length() int { return len(c.points) }

// DegreeBound returns the message degree bound d.
func (c *Code) DegreeBound() int { return c.d }

// Points returns the evaluation points (not a copy; callers must not
// mutate).
func (c *Code) Points() []uint64 { return c.points }

// CorrectionRadius returns the number of symbol errors the decoder is
// guaranteed to correct: ⌊(e-d-1)/2⌋.
func (c *Code) CorrectionRadius() int { return (len(c.points) - c.d - 1) / 2 }

// CorrectionRadiusWithErasures returns the number of symbol *errors* the
// decoder is guaranteed to correct when s symbols are additionally known
// to be erased: ⌊(e-s-d-1)/2⌋. Equivalently, a received word decodes
// whenever 2·errors + erasures ≤ e-d-1. Negative means even the erasures
// alone exceed what the code can absorb.
func (c *Code) CorrectionRadiusWithErasures(s int) int {
	n := len(c.points) - s - c.d - 1
	if n < 0 {
		return -((-n + 1) / 2) // floor division: Go's / truncates toward zero
	}
	return n / 2
}

// Encode evaluates the message polynomial at every code point.
// The message may have fewer than d+1 symbols (high coefficients zero).
func (c *Code) Encode(message []uint64) ([]uint64, error) {
	if len(message) > c.d+1 {
		return nil, fmt.Errorf("rs: message length %d exceeds d+1 = %d", len(message), c.d+1)
	}
	return c.ring.EvalMany(message, c.points), nil
}

// Decode recovers the message polynomial from a received word, correcting
// up to CorrectionRadius() corrupted symbols. It returns the message
// coefficients (length d+1, trailing zeros included), the corrected
// codeword, and the indices at which the received word disagreed with it.
//
// Gao's algorithm (paper §2.3): interpolate G1 through the received word;
// run the extended Euclidean algorithm on (G0, G1) stopping at degree
// < (e+d+1)/2; the quotient G/V is the message iff the division is exact.
func (c *Code) Decode(received []uint64) (message, corrected []uint64, errorLocs []int, err error) {
	if len(received) != len(c.points) {
		return nil, nil, nil, fmt.Errorf("rs: received word length %d, want %d", len(received), len(c.points))
	}
	return c.decodeOver(c.points, received, c.g0, nil)
}

// DecodeErasures decodes a received word in which the symbols at the
// listed positions are known to be missing (erasures): their values in
// received are ignored rather than treated as possible errors. The
// decoder restricts Gao's algorithm to the surviving positions, which
// doubles the budget an erased symbol gets relative to an error:
// decoding succeeds whenever 2·errors + erasures ≤ e-d-1.
//
// errorLocs reports only *content* errors among the delivered symbols;
// erased positions never appear in it (they are faults of delivery, not
// of the sender's word). The corrected codeword is full length — erased
// positions are filled in from the recovered polynomial. Duplicate
// erasure indices are tolerated; out-of-range indices are rejected.
//
// DecodeErasures is the one-shot form; callers decoding many words
// against the same erasure set (one per prime and coordinate, say)
// should build an ErasurePlan once and reuse it.
func (c *Code) DecodeErasures(received []uint64, erased []int) (message, corrected []uint64, errorLocs []int, err error) {
	plan, err := c.ErasurePlan(erased)
	if err != nil {
		return nil, nil, nil, err
	}
	return plan.Decode(received)
}

// ErasurePlan is a precomputed decoding context for one erasure set:
// the erasure mask, the surviving evaluation points, and their root
// product Π (x - x_i) — everything about the erasures that does not
// depend on the received word. Plans are immutable and safe for
// concurrent Decode calls, so one plan can serve every (decoder,
// prime, coordinate) of a run that lost the same senders.
type ErasurePlan struct {
	c    *Code
	mask []bool // nil when nothing is erased
	pts  []uint64
	g0   []uint64
}

// ErasurePlan validates the erasure set and precomputes the shortened
// decoding context. An erasure set leaving fewer than d+1 symbols is
// undecodable and fails here, with ErrDecodeFailure, before any word
// is seen.
func (c *Code) ErasurePlan(erased []int) (*ErasurePlan, error) {
	e := len(c.points)
	if len(erased) == 0 {
		return &ErasurePlan{c: c, pts: c.points, g0: c.g0}, nil
	}
	mask := make([]bool, e)
	s := 0
	for _, i := range erased {
		if i < 0 || i >= e {
			return nil, fmt.Errorf("rs: erasure index %d out of range [0,%d)", i, e)
		}
		if !mask[i] {
			mask[i] = true
			s++
		}
	}
	if e-s < c.d+1 {
		return nil, fmt.Errorf("%w: %d erasures leave %d symbols, need %d for degree bound %d",
			ErrDecodeFailure, s, e-s, c.d+1, c.d)
	}
	pts := make([]uint64, 0, e-s)
	for i, x := range c.points {
		if !mask[i] {
			pts = append(pts, x)
		}
	}
	return &ErasurePlan{c: c, mask: mask, pts: pts, g0: c.ring.ProductFromRoots(pts)}, nil
}

// Decode runs the erasure-aware Gao decoder against one received word;
// see DecodeErasures for the contract.
func (p *ErasurePlan) Decode(received []uint64) (message, corrected []uint64, errorLocs []int, err error) {
	c := p.c
	e := len(c.points)
	if len(received) != e {
		return nil, nil, nil, fmt.Errorf("rs: received word length %d, want %d", len(received), e)
	}
	vals := received
	if p.mask != nil {
		vals = make([]uint64, 0, len(p.pts))
		for i, v := range received {
			if !p.mask[i] {
				vals = append(vals, v)
			}
		}
	}
	return c.decodeOver(p.pts, vals, p.g0, p.mask)
}

// decodeOver runs Gao's decoder on the (possibly erasure-shortened) code
// over the given evaluation points: vals are the received symbols at
// pts, g0 = Π (x - pts_i), and mask (nil when nothing is erased) marks
// the erased positions of the full-length code so the corrected word
// and error locations can be expressed in full-length coordinates.
func (c *Code) decodeOver(pts, vals []uint64, g0 []uint64, mask []bool) (message, corrected []uint64, errorLocs []int, err error) {
	e := len(c.points)
	n := len(pts)
	g1 := c.ring.Interpolate(pts, vals)
	if poly.Degree(g1) < 0 {
		// Every delivered symbol is zero: the zero codeword (the Euclidean
		// recursion below would degenerate on G1 = 0).
		return make([]uint64, c.d+1), make([]uint64, e), nil, nil
	}
	stop := (n + c.d + 1) / 2
	g, _, v := c.ring.PartialXGCD(g0, g1, stop)
	if poly.Degree(v) < 0 {
		return nil, nil, nil, fmt.Errorf("%w: degenerate error locator", ErrDecodeFailure)
	}
	p, r := c.ring.DivMod(g, v)
	if len(r) != 0 || poly.Degree(p) > c.d {
		return nil, nil, nil, ErrDecodeFailure
	}
	corrected = c.ring.EvalMany(p, c.points)
	q := c.ring.Field().Q
	di := 0 // index into the delivered symbols
	for i := range corrected {
		if mask != nil && mask[i] {
			continue
		}
		if corrected[i] != vals[di]%q {
			errorLocs = append(errorLocs, i)
		}
		di++
	}
	if radius := c.CorrectionRadiusWithErasures(e - n); len(errorLocs) > radius {
		// The Euclidean stop produced a "codeword" farther away than the
		// radius — with that many errors uniqueness is void; refuse.
		return nil, nil, nil, fmt.Errorf("%w: %d errors exceed radius %d (%d erasures)",
			ErrDecodeFailure, len(errorLocs), radius, e-n)
	}
	message = make([]uint64, c.d+1)
	copy(message, p)
	return message, corrected, errorLocs, nil
}

// Verify spot-checks a putative message against an oracle for codeword
// symbols: it draws one Camelot verification equation (paper eq. (2)) at
// the given point x0, comparing oracle(x0) with Horner evaluation of the
// message. A mismatch proves the message is not the oracle's polynomial;
// agreement is correct with probability >= 1 - d/q for uniform x0.
func (c *Code) Verify(message []uint64, x0 uint64, oracle func(uint64) (uint64, error)) (bool, error) {
	want, err := oracle(x0)
	if err != nil {
		return false, fmt.Errorf("rs: verification oracle: %w", err)
	}
	f := c.ring.Field()
	return f.Horner(message, x0) == want%f.Q, nil
}

// Field returns the underlying coefficient field.
func (c *Code) Field() ff.Field { return c.ring.Field() }
