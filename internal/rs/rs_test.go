package rs

import (
	"errors"
	"math/rand"
	"testing"

	"camelot/internal/ff"
	"camelot/internal/poly"
)

func newTestCode(t testing.TB, e, d int) *Code {
	t.Helper()
	q, _, err := ff.NTTPrime(uint64(4*e), 4*e)
	if err != nil {
		t.Fatal(err)
	}
	ring := poly.NewRing(ff.Must(q))
	c, err := New(ring, ConsecutivePoints(e), d)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func randMessage(rng *rand.Rand, f ff.Field, d int) []uint64 {
	m := make([]uint64, d+1)
	for i := range m {
		m[i] = rng.Uint64() % f.Q
	}
	return m
}

func TestNewValidation(t *testing.T) {
	ring := poly.NewRing(ff.Must(97))
	tests := []struct {
		name   string
		points []uint64
		d      int
		ok     bool
	}{
		{"valid", []uint64{0, 1, 2, 3}, 1, true},
		{"d too large", []uint64{0, 1, 2}, 3, false},
		{"negative d", []uint64{0, 1}, -1, false},
		{"duplicate points", []uint64{0, 1, 1}, 1, false},
		{"duplicate mod q", []uint64{0, 1, 98}, 1, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(ring, tt.points, tt.d)
			if (err == nil) != tt.ok {
				t.Fatalf("New error = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestEncodeDecodeClean(t *testing.T) {
	for _, size := range []struct{ e, d int }{{8, 3}, {64, 20}, {257, 100}, {1024, 500}} {
		c := newTestCode(t, size.e, size.d)
		rng := rand.New(rand.NewSource(int64(size.e)))
		msg := randMessage(rng, c.Field(), size.d)
		cw, err := c.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		got, corrected, locs, err := c.Decode(cw)
		if err != nil {
			t.Fatalf("e=%d d=%d: clean decode failed: %v", size.e, size.d, err)
		}
		if len(locs) != 0 {
			t.Fatalf("clean decode reported errors at %v", locs)
		}
		if !poly.Equal(got, msg) {
			t.Fatal("decoded message differs")
		}
		for i := range cw {
			if corrected[i] != cw[i] {
				t.Fatal("corrected codeword differs from transmitted")
			}
		}
	}
}

func TestDecodeAtFullRadius(t *testing.T) {
	const e, d = 101, 40 // radius = 30
	c := newTestCode(t, e, d)
	rng := rand.New(rand.NewSource(99))
	msg := randMessage(rng, c.Field(), d)
	cw, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	radius := c.CorrectionRadius()
	if radius != 30 {
		t.Fatalf("radius = %d, want 30", radius)
	}
	for _, nerr := range []int{1, 5, radius} {
		rx := make([]uint64, e)
		copy(rx, cw)
		locs := rng.Perm(e)[:nerr]
		for _, i := range locs {
			rx[i] = (rx[i] + 1 + rng.Uint64()%(c.Field().Q-1)) % c.Field().Q
		}
		got, _, reported, err := c.Decode(rx)
		if err != nil {
			t.Fatalf("decode with %d errors failed: %v", nerr, err)
		}
		if !poly.Equal(got, msg) {
			t.Fatalf("decode with %d errors returned wrong message", nerr)
		}
		if len(reported) != nerr {
			t.Fatalf("reported %d error locations, want %d", len(reported), nerr)
		}
		want := make(map[int]bool, nerr)
		for _, i := range locs {
			want[i] = true
		}
		for _, i := range reported {
			if !want[i] {
				t.Fatalf("reported spurious error location %d", i)
			}
		}
	}
}

func TestDecodeBeyondRadiusFails(t *testing.T) {
	const e, d = 64, 30 // radius 16
	c := newTestCode(t, e, d)
	rng := rand.New(rand.NewSource(5))
	msg := randMessage(rng, c.Field(), d)
	cw, _ := c.Encode(msg)
	rx := make([]uint64, e)
	copy(rx, cw)
	// Corrupt well beyond the radius with random garbage: decoding must
	// either error or (with negligible probability) return some codeword —
	// but never silently return the wrong message as if clean.
	for _, i := range rng.Perm(e)[:40] {
		rx[i] = rng.Uint64() % c.Field().Q
	}
	got, _, _, err := c.Decode(rx)
	if err == nil && poly.Equal(got, msg) {
		t.Fatal("decode claimed success with original message despite 40 corruptions (should be impossible)")
	}
	if err != nil && !errors.Is(err, ErrDecodeFailure) {
		t.Fatalf("unexpected error type: %v", err)
	}
}

func TestDecodeShortMessagePadding(t *testing.T) {
	// Message shorter than d+1: decoder must return padded length d+1.
	c := newTestCode(t, 32, 10)
	msg := []uint64{1, 2, 3}
	cw, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	got, _, _, err := c.Decode(cw)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 11 {
		t.Fatalf("decoded length %d, want 11", len(got))
	}
	if !poly.Equal(got, msg) {
		t.Fatal("decoded message differs")
	}
}

func TestEncodeRejectsLongMessage(t *testing.T) {
	c := newTestCode(t, 16, 3)
	if _, err := c.Encode(make([]uint64, 5)); err == nil {
		t.Fatal("want error for message longer than d+1")
	}
}

func TestDecodeWrongLength(t *testing.T) {
	c := newTestCode(t, 16, 3)
	if _, _, _, err := c.Decode(make([]uint64, 15)); err == nil {
		t.Fatal("want error for wrong received-word length")
	}
}

func TestVerifyAcceptsCorrectRejectsForged(t *testing.T) {
	const e, d = 128, 60
	c := newTestCode(t, e, d)
	rng := rand.New(rand.NewSource(17))
	msg := randMessage(rng, c.Field(), d)
	oracle := func(x uint64) (uint64, error) {
		return c.Field().Horner(msg, x), nil
	}
	// Correct proof: always accepted.
	for trial := 0; trial < 20; trial++ {
		x0 := rng.Uint64() % c.Field().Q
		ok, err := c.Verify(msg, x0, oracle)
		if err != nil || !ok {
			t.Fatalf("correct proof rejected at x0=%d: %v", x0, err)
		}
	}
	// Forged proof: rejected with probability >= 1 - d/q per trial; over
	// 30 independent trials a surviving forgery has probability ~(d/q)^30,
	// far below test flakiness thresholds.
	forged := make([]uint64, len(msg))
	copy(forged, msg)
	forged[7] = c.Field().Add(forged[7], 1)
	rejected := false
	for trial := 0; trial < 30; trial++ {
		x0 := rng.Uint64() % c.Field().Q
		ok, err := c.Verify(forged, x0, oracle)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			rejected = true
			break
		}
	}
	if !rejected {
		t.Fatal("forged proof survived 30 verification trials")
	}
}

func TestCorrectionRadiusFormula(t *testing.T) {
	tests := []struct{ e, d, want int }{
		{10, 9, 0}, {10, 5, 2}, {100, 10, 44}, {3, 0, 1},
	}
	for _, tt := range tests {
		ring := poly.NewRing(ff.Must(257))
		c, err := New(ring, ConsecutivePoints(tt.e), tt.d)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.CorrectionRadius(); got != tt.want {
			t.Errorf("radius(e=%d,d=%d) = %d, want %d", tt.e, tt.d, got, tt.want)
		}
	}
}

func TestPropertyRandomErrorPatterns(t *testing.T) {
	// Property: for random messages and random error patterns within the
	// radius, decode always recovers message and exact error locations.
	const e, d = 80, 25
	c := newTestCode(t, e, d)
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		msg := randMessage(rng, c.Field(), d)
		cw, _ := c.Encode(msg)
		nerr := rng.Intn(c.CorrectionRadius() + 1)
		rx := make([]uint64, e)
		copy(rx, cw)
		lset := map[int]bool{}
		for _, i := range rng.Perm(e)[:nerr] {
			delta := 1 + rng.Uint64()%(c.Field().Q-1)
			rx[i] = c.Field().Add(rx[i], delta)
			lset[i] = true
		}
		got, _, locs, err := c.Decode(rx)
		if err != nil {
			t.Fatalf("trial %d (%d errors): %v", trial, nerr, err)
		}
		if !poly.Equal(got, msg) {
			t.Fatalf("trial %d: wrong message", trial)
		}
		if len(locs) != len(lset) {
			t.Fatalf("trial %d: reported %d locations, want %d", trial, len(locs), len(lset))
		}
		for _, i := range locs {
			if !lset[i] {
				t.Fatalf("trial %d: spurious location %d", trial, i)
			}
		}
	}
}

func BenchmarkEncode1024(b *testing.B) {
	c := newTestCode(b, 1024, 500)
	rng := rand.New(rand.NewSource(1))
	msg := randMessage(rng, c.Field(), 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode1024With100Errors(b *testing.B) {
	c := newTestCode(b, 1024, 500)
	rng := rand.New(rand.NewSource(1))
	msg := randMessage(rng, c.Field(), 500)
	cw, _ := c.Encode(msg)
	rx := make([]uint64, len(cw))
	copy(rx, cw)
	for _, i := range rng.Perm(len(cw))[:100] {
		rx[i] = rng.Uint64() % c.Field().Q
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := c.Decode(rx); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDecodeZeroCodeword(t *testing.T) {
	c := newTestCode(t, 32, 10)
	// All-zero received word: the zero message, no errors.
	msg, corrected, locs, err := c.Decode(make([]uint64, 32))
	if err != nil {
		t.Fatal(err)
	}
	if poly.Degree(msg) != -1 || len(locs) != 0 {
		t.Fatalf("zero word: msg=%v locs=%v", msg, locs)
	}
	for _, v := range corrected {
		if v != 0 {
			t.Fatal("corrected word not zero")
		}
	}
	// Zero codeword with a few corruptions still decodes to zero.
	rx := make([]uint64, 32)
	rx[3], rx[17] = 5, 9
	msg, _, locs, err = c.Decode(rx)
	if err != nil {
		t.Fatal(err)
	}
	if poly.Degree(msg) != -1 {
		t.Fatalf("corrupted zero word decoded to %v", msg)
	}
	if len(locs) != 2 {
		t.Fatalf("error locations = %v, want 2", locs)
	}
}
