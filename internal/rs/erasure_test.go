package rs

import (
	"errors"
	"math/rand"
	"testing"

	"camelot/internal/poly"
)

// corruptWord returns a copy of cw with nerr random symbol errors and
// s erased positions (erasure values scrambled too — the decoder must
// ignore them). Errors and erasures never overlap.
func corruptWord(rng *rand.Rand, c *Code, cw []uint64, nerr, s int) (rx []uint64, errLocs map[int]bool, erased []int) {
	e := len(cw)
	rx = make([]uint64, e)
	copy(rx, cw)
	perm := rng.Perm(e)
	erased = append(erased, perm[:s]...)
	for _, i := range erased {
		rx[i] = rng.Uint64() % c.Field().Q // garbage the decoder must never read
	}
	errLocs = make(map[int]bool, nerr)
	for _, i := range perm[s : s+nerr] {
		delta := 1 + rng.Uint64()%(c.Field().Q-1)
		rx[i] = c.Field().Add(rx[i], delta)
		errLocs[i] = true
	}
	return rx, errLocs, erased
}

func TestDecodeErasuresRecoversWithinBudget(t *testing.T) {
	const e, d = 64, 20 // budget: 2t + s <= 43
	c := newTestCode(t, e, d)
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		msg := randMessage(rng, c.Field(), d)
		cw, err := c.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		s := rng.Intn(e - d) // 0..43 erasures
		tmax := c.CorrectionRadiusWithErasures(s)
		if tmax < 0 {
			continue
		}
		nerr := rng.Intn(tmax + 1)
		rx, errLocs, erased := corruptWord(rng, c, cw, nerr, s)
		got, corrected, locs, err := c.DecodeErasures(rx, erased)
		if err != nil {
			t.Fatalf("trial %d (s=%d t=%d): %v", trial, s, nerr, err)
		}
		if !poly.Equal(got, msg) {
			t.Fatalf("trial %d (s=%d t=%d): wrong message", trial, s, nerr)
		}
		// The corrected word must be the true codeword everywhere,
		// including the erased positions (they are filled back in).
		for i := range cw {
			if corrected[i] != cw[i] {
				t.Fatalf("trial %d: corrected[%d] = %d, want %d", trial, i, corrected[i], cw[i])
			}
		}
		// Reported locations are exactly the content errors — never the
		// erasures, even though their received values were scrambled.
		if len(locs) != len(errLocs) {
			t.Fatalf("trial %d: reported %d error locations, want %d", trial, len(locs), len(errLocs))
		}
		for _, i := range locs {
			if !errLocs[i] {
				t.Fatalf("trial %d: spurious error location %d", trial, i)
			}
		}
	}
}

func TestDecodeErasuresBeyondBudgetFails(t *testing.T) {
	const e, d = 32, 15 // budget: 2t + s <= 16
	c := newTestCode(t, e, d)
	rng := rand.New(rand.NewSource(43))
	msg := randMessage(rng, c.Field(), d)
	cw, _ := c.Encode(msg)

	// Too many erasures alone: fewer than d+1 symbols survive.
	rx, _, erased := corruptWord(rng, c, cw, 0, e-d)
	if _, _, _, err := c.DecodeErasures(rx, erased); !errors.Is(err, ErrDecodeFailure) {
		t.Fatalf("e-d erasures: err = %v, want ErrDecodeFailure", err)
	}

	// Erasures within interpolation reach but errors beyond the shrunken
	// radius: the decoder must refuse rather than return the wrong word.
	s := 8 // radius shrinks to (32-8-15-1)/2 = 4
	for trial := 0; trial < 20; trial++ {
		rx, _, erased := corruptWord(rng, c, cw, c.CorrectionRadiusWithErasures(s)+3, s)
		got, _, _, err := c.DecodeErasures(rx, erased)
		if err == nil && poly.Equal(got, msg) {
			continue // miscorrection cannot return the true message here, but be lenient in form
		}
		if err != nil && !errors.Is(err, ErrDecodeFailure) {
			t.Fatalf("trial %d: unexpected error type: %v", trial, err)
		}
	}
}

func TestDecodeErasuresValidation(t *testing.T) {
	c := newTestCode(t, 16, 5)
	rx := make([]uint64, 16)
	if _, _, _, err := c.DecodeErasures(rx, []int{16}); err == nil {
		t.Fatal("out-of-range erasure index accepted")
	}
	if _, _, _, err := c.DecodeErasures(rx, []int{-1}); err == nil {
		t.Fatal("negative erasure index accepted")
	}
	// Duplicates collapse: {3,3} is one erasure, and the all-zero word
	// still decodes to the zero message.
	msg, corrected, locs, err := c.DecodeErasures(rx, []int{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if poly.Degree(msg) != -1 || len(locs) != 0 {
		t.Fatalf("zero word with erasures: msg=%v locs=%v", msg, locs)
	}
	for _, v := range corrected {
		if v != 0 {
			t.Fatal("corrected word not zero")
		}
	}
	if _, _, _, err := c.DecodeErasures(make([]uint64, 15), nil); err == nil {
		t.Fatal("wrong-length word accepted")
	}
}

func TestCorrectionRadiusWithErasures(t *testing.T) {
	c := newTestCode(t, 16, 5) // plain radius 5
	for _, tc := range []struct{ s, want int }{
		{0, 5}, {1, 4}, {2, 4}, {4, 3}, {10, 0}, {11, -1}, {16, -3},
	} {
		if got := c.CorrectionRadiusWithErasures(tc.s); got != tc.want {
			t.Errorf("radius with %d erasures = %d, want %d", tc.s, got, tc.want)
		}
	}
	if c.CorrectionRadiusWithErasures(0) != c.CorrectionRadius() {
		t.Error("zero erasures must reduce to the plain radius")
	}
}

// FuzzDecodeErasures drives the decoder with erasure-heavy received
// words — erasures plus errors up to and beyond the combined radius —
// pinning the ErrDecodeFailure contract: within budget the decoder
// recovers exactly; beyond budget it either refuses with
// ErrDecodeFailure or returns a self-consistent nearby codeword; it
// never panics and never reports more errors than the shrunken radius.
func FuzzDecodeErasures(f *testing.F) {
	const e, d = 48, 15 // budget: 2t + s <= 32
	c := newTestCode(f, e, d)
	f.Add(int64(1), uint8(0), uint8(0))
	f.Add(int64(2), uint8(4), uint8(8))   // comfortably inside
	f.Add(int64(3), uint8(8), uint8(16))  // exactly on the budget
	f.Add(int64(4), uint8(9), uint8(16))  // one error past it
	f.Add(int64(5), uint8(0), uint8(33))  // erasures alone past e-d-1
	f.Add(int64(6), uint8(0), uint8(48))  // everything erased
	f.Add(int64(7), uint8(16), uint8(0))  // plain errors at full radius
	f.Add(int64(8), uint8(30), uint8(30)) // deep beyond, both kinds
	f.Fuzz(func(t *testing.T, seed int64, nerrRaw, sRaw uint8) {
		rng := rand.New(rand.NewSource(seed))
		s := int(sRaw) % (e + 1)
		nerr := int(nerrRaw) % (e - s + 1)
		msg := randMessage(rng, c.Field(), d)
		cw, err := c.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		rx, _, erased := corruptWord(rng, c, cw, nerr, s)
		got, corrected, locs, err := c.DecodeErasures(rx, erased)
		withinBudget := 2*nerr+s <= e-d-1
		if withinBudget {
			if err != nil {
				t.Fatalf("s=%d t=%d within budget: %v", s, nerr, err)
			}
			if !poly.Equal(got, msg) {
				t.Fatalf("s=%d t=%d within budget: wrong message", s, nerr)
			}
		}
		if err != nil {
			if !errors.Is(err, ErrDecodeFailure) {
				t.Fatalf("s=%d t=%d: non-typed failure: %v", s, nerr, err)
			}
			return
		}
		// Success (possibly a miscorrection beyond the budget): the result
		// must be self-consistent — corrected is the codeword of got, locs
		// are exactly the delivered disagreements, and locs fits the
		// erasure-shrunken radius.
		recw, err := c.Encode(got)
		if err != nil {
			t.Fatal(err)
		}
		erasedSet := make(map[int]bool, len(erased))
		for _, i := range erased {
			erasedSet[i] = true
		}
		locSet := make(map[int]bool, len(locs))
		for _, i := range locs {
			if erasedSet[i] {
				t.Fatalf("erased position %d reported as content error", i)
			}
			locSet[i] = true
		}
		for i := range recw {
			if corrected[i] != recw[i] {
				t.Fatalf("corrected[%d] inconsistent with decoded message", i)
			}
			if !erasedSet[i] && (rx[i]%c.Field().Q != corrected[i]) != locSet[i] {
				t.Fatalf("error location set wrong at %d", i)
			}
		}
		if max := c.CorrectionRadiusWithErasures(len(erasedSet)); len(locs) > max {
			t.Fatalf("reported %d errors beyond shrunken radius %d", len(locs), max)
		}
	})
}

func TestErasurePlanReuseMatchesOneShot(t *testing.T) {
	const e, d = 40, 12
	c := newTestCode(t, e, d)
	rng := rand.New(rand.NewSource(53))
	erased := []int{3, 7, 21, 22}
	plan, err := c.ErasurePlan(erased)
	if err != nil {
		t.Fatal(err)
	}
	// One plan decoding many words must agree with the one-shot form.
	for trial := 0; trial < 20; trial++ {
		msg := randMessage(rng, c.Field(), d)
		cw, _ := c.Encode(msg)
		rx := make([]uint64, e)
		copy(rx, cw)
		for _, i := range erased {
			rx[i] = rng.Uint64() % c.Field().Q
		}
		rx[11] = c.Field().Add(rx[11], 1+rng.Uint64()%(c.Field().Q-1))
		m1, c1, l1, err1 := plan.Decode(rx)
		m2, c2, l2, err2 := c.DecodeErasures(rx, erased)
		if err1 != nil || err2 != nil {
			t.Fatalf("trial %d: %v / %v", trial, err1, err2)
		}
		if !poly.Equal(m1, m2) || !poly.Equal(m1, msg) || !poly.Equal(c1, c2) {
			t.Fatalf("trial %d: plan reuse diverged from one-shot decode", trial)
		}
		if len(l1) != 1 || len(l2) != 1 || l1[0] != 11 {
			t.Fatalf("trial %d: error locations %v / %v, want [11]", trial, l1, l2)
		}
	}
	// Undecodable erasure sets fail at plan build, typed.
	if _, err := c.ErasurePlan(rng.Perm(e)[:e-d]); !errors.Is(err, ErrDecodeFailure) {
		t.Fatalf("plan for e-d erasures: err = %v, want ErrDecodeFailure", err)
	}
}
