// Package partition implements the paper's §7 proof template for
// partitioning sum-products: computing
//
//	Σ f(X_1) f(X_2) ··· f(X_t)   over ordered partitions
//	X_1 ∪ ... ∪ X_t = U, X_i ∩ X_j = ∅
//
// of an n-element universe. The universe is split U = E ∪ B; subsets of
// the explicit part E are tracked exactly while the "bit" part B is
// tracked through Kronecker-substitution weights (element B[i] carries
// weight 2^i), giving a univariate proof polynomial
//
//	P(x) = Σ_s p_s x^s,  deg P = |B|·2^{|B|-1},
//
// whose coefficient p_{2^{|B|}-1} is the desired sum-product (§7.2).
// Instantiations (exact set covers §8, chromatic polynomial §9, Tutte
// polynomial §10) supply the node function g of eq. (27); the template
// turns g into evaluations of P via the inclusion–exclusion of eq. (28).
package partition

import (
	"fmt"

	"camelot/internal/bipoly"
	"camelot/internal/ff"
)

// Split fixes the bisection U = E ∪ B of the ground set {0..n-1}.
// Element B[i] carries Kronecker weight 2^i.
type Split struct {
	// N is the universe size.
	N int
	// E lists the explicit elements, B the bit elements; together they
	// partition {0..N-1}.
	E, B []int
}

// NewSplit validates and returns a split.
func NewSplit(n int, e, b []int) (Split, error) {
	if len(e)+len(b) != n {
		return Split{}, fmt.Errorf("partition: |E|+|B| = %d+%d != n = %d", len(e), len(b), n)
	}
	seen := make([]bool, n)
	for _, v := range append(append([]int{}, e...), b...) {
		if v < 0 || v >= n || seen[v] {
			return Split{}, fmt.Errorf("partition: element %d repeated or out of range", v)
		}
		seen[v] = true
	}
	if len(b) > 25 {
		return Split{}, fmt.Errorf("partition: |B| = %d too large (degree would be |B|·2^{|B|-1})", len(b))
	}
	return Split{N: n, E: e, B: b}, nil
}

// Balanced returns the §7.4 split with |E| = ⌈n/2⌉, |B| = ⌊n/2⌋
// (the optimum when the node budget is O*(2^{|E|} + 2^{|B|})): E takes
// the low-numbered elements.
func Balanced(n int) Split {
	nb := n / 2
	ne := n - nb
	e := make([]int, ne)
	b := make([]int, nb)
	for i := range e {
		e[i] = i
	}
	for i := range b {
		b[i] = ne + i
	}
	s, err := NewSplit(n, e, b)
	if err != nil {
		panic(err) // unreachable by construction
	}
	return s
}

// Tripartite returns the §10 split with |B| = ⌊n/3⌋ and E the rest
// (Tutte needs |E| ≈ 2|B| because its node function multiplies
// 2^{|E|/2} × 2^{|B|} matrices).
func Tripartite(n int) Split {
	nb := n / 3
	ne := n - nb
	e := make([]int, ne)
	b := make([]int, nb)
	for i := range e {
		e[i] = i
	}
	for i := range b {
		b[i] = ne + i
	}
	s, err := NewSplit(n, e, b)
	if err != nil {
		panic(err) // unreachable by construction
	}
	return s
}

// Degree returns the proof-polynomial degree bound |B|·2^{|B|-1}
// (coefficient index s ranges over achievable multiset weight sums).
func (s Split) Degree() int {
	if len(s.B) == 0 {
		return 0
	}
	return len(s.B) << uint(len(s.B)-1)
}

// TargetIndex returns 2^{|B|}-1: the coefficient p_{2^{|B|}-1} of P is
// the partitioning sum-product (the unique multiset of |B| weights
// summing there is B itself).
func (s Split) TargetIndex() int { return 1<<uint(len(s.B)) - 1 }

// Weight returns the Kronecker weight of the i-th B element, 2^i.
func (s Split) Weight(i int) uint64 { return 1 << uint(i) }

// WeightSum returns Σ weights over a mask of B indices.
func (s Split) WeightSum(bMask uint64) uint64 {
	// Weights are 2^i for bit i, so the sum is the mask value itself.
	return bMask
}

// Ring returns the truncated bivariate ring the template computes in:
// degrees (|E|, |B|).
func (s Split) Ring(f ff.Field) bipoly.Ring {
	return bipoly.NewRing(f, len(s.E), len(s.B))
}

// XPowers precomputes x0^{2^i} mod q for i = 0..|B|-1 and extends to
// x0^{weight sum of any B mask} via products: XPowers(mask) in O(|B|)
// from the table.
type XPowers struct {
	f   ff.Field
	pow []uint64 // pow[i] = x0^{2^i}
}

// NewXPowers builds the table for x0.
func (s Split) NewXPowers(f ff.Field, x0 uint64) XPowers {
	pow := make([]uint64, len(s.B))
	cur := x0 % f.Q
	for i := range pow {
		pow[i] = cur
		cur = f.Mul(cur, cur)
	}
	return XPowers{f: f, pow: pow}
}

// ForMask returns x0^{Σ_{i∈mask} 2^i}.
func (xp XPowers) ForMask(bMask uint64) uint64 {
	out := uint64(1)
	for i := 0; bMask != 0; i++ {
		if bMask&1 == 1 {
			out = xp.f.Mul(out, xp.pow[i])
		}
		bMask >>= 1
	}
	return out
}

// EvaluateAll computes P_t(x0) for t = 1..tMax from a node-function
// table g (indexed by masks over E, length 2^{|E|}) via eq. (28):
//
//	a_t(w_E, w_B) = Σ_{Y⊆E} (-1)^{|E\Y|} g(Y)^t,
//	P_t(x0) = [w_E^{|E|} w_B^{|B|}] a_t.
//
// Powers are maintained incrementally across t, so the total cost is
// 2^{|E|}·tMax bivariate multiplications.
func (s Split) EvaluateAll(r bipoly.Ring, g []bipoly.Poly, tMax int) ([]uint64, error) {
	ne := len(s.E)
	if len(g) != 1<<uint(ne) {
		return nil, fmt.Errorf("partition: g table has %d entries, want 2^%d", len(g), ne)
	}
	signs := make([]bool, len(g)) // true = negative
	for y := range signs {
		signs[y] = (ne-popcount(uint64(y)))%2 == 1
	}
	out := make([]uint64, tMax)
	pow := make([]bipoly.Poly, len(g))
	for y := range pow {
		pow[y] = g[y]
	}
	f := r.F
	for t := 1; t <= tMax; t++ {
		if t > 1 {
			for y := range pow {
				pow[y] = r.Mul(pow[y], g[y])
			}
		}
		acc := uint64(0)
		for y := range pow {
			c := r.Coeff(pow[y], ne, len(s.B))
			if signs[y] {
				acc = f.Sub(acc, c)
			} else {
				acc = f.Add(acc, c)
			}
		}
		out[t-1] = acc
	}
	return out, nil
}

func popcount(x uint64) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}
