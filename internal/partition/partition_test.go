package partition

import (
	"testing"

	"camelot/internal/bipoly"
	"camelot/internal/ff"
)

var testField = ff.Must(1048583)

func TestSplitValidation(t *testing.T) {
	if _, err := NewSplit(4, []int{0, 1}, []int{2}); err == nil {
		t.Fatal("incomplete split must be rejected")
	}
	if _, err := NewSplit(3, []int{0, 1}, []int{1}); err == nil {
		t.Fatal("overlapping split must be rejected")
	}
	if _, err := NewSplit(3, []int{0, 5}, []int{1}); err == nil {
		t.Fatal("out-of-range element must be rejected")
	}
	if _, err := NewSplit(60, nil, seq(0, 60)); err == nil {
		t.Fatal("oversized B must be rejected")
	}
	if _, err := NewSplit(4, []int{0, 1}, []int{2, 3}); err != nil {
		t.Fatalf("valid split rejected: %v", err)
	}
}

func seq(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

func TestBalancedAndTripartiteShapes(t *testing.T) {
	for n := 1; n <= 15; n++ {
		b := Balanced(n)
		if len(b.E)+len(b.B) != n || len(b.B) != n/2 {
			t.Fatalf("Balanced(%d): |E|=%d |B|=%d", n, len(b.E), len(b.B))
		}
		tr := Tripartite(n)
		if len(tr.E)+len(tr.B) != n || len(tr.B) != n/3 {
			t.Fatalf("Tripartite(%d): |E|=%d |B|=%d", n, len(tr.E), len(tr.B))
		}
	}
}

func TestDegreeAndTargetIndex(t *testing.T) {
	s := Balanced(6) // |B| = 3
	if got := s.Degree(); got != 3*4 {
		t.Fatalf("Degree = %d, want |B|·2^{|B|-1} = 12", got)
	}
	if got := s.TargetIndex(); got != 7 {
		t.Fatalf("TargetIndex = %d, want 2^3-1 = 7", got)
	}
	// Degenerate |B| = 0.
	if got := Balanced(1).Degree(); got != 0 {
		t.Fatalf("Degree(|B|=0) = %d", got)
	}
}

func TestXPowers(t *testing.T) {
	s := Balanced(8) // |B| = 4, weights 1,2,4,8
	f := testField
	x0 := uint64(7)
	xp := s.NewXPowers(f, x0)
	// mask 0b1011 has weight 1+2+8 = 11.
	want := f.Exp(7, 11)
	if got := xp.ForMask(0b1011); got != want {
		t.Fatalf("ForMask = %d, want %d", got, want)
	}
	if got := xp.ForMask(0); got != 1 {
		t.Fatalf("empty mask = %d, want 1", got)
	}
}

// TestEvaluateAllAgainstDirectSumProduct instantiates the template for a
// tiny explicit set function and compares P_t(x0) against a brute-force
// computation of the coefficients p_s (paper eq. (25)) followed by
// Horner evaluation.
func TestEvaluateAllAgainstDirectSumProduct(t *testing.T) {
	const n = 4
	s := Balanced(n) // E = {0,1}, B = {2,3} with weights 1,2
	f := testField
	// f(X) = |X| + 1 for a nontrivial non-indicator set function.
	setf := func(mask uint64) uint64 { return uint64(popcount(mask)) + 1 }

	for _, x0 := range []uint64{3, 17, 100000} {
		// Template path: build g per eq. (27) directly (quadratic in 2^n,
		// fine at n=4), then EvaluateAll.
		ring := s.Ring(f)
		xp := s.NewXPowers(f, x0)
		g := make([]bipoly.Poly, 1<<uint(len(s.E)))
		for y := uint64(0); y < 1<<uint(len(s.E)); y++ {
			acc := ring.Zero()
			for x := uint64(0); x < 1<<uint(n); x++ {
				xe := x & 0b11
				xb := x >> 2
				if xe&^y != 0 {
					continue
				}
				mono := ring.Monomial(popcount(xe), popcount(xb), f.Mul(setf(x), xp.ForMask(xb)))
				acc = ring.AddInPlace(acc, mono)
			}
			g[y] = acc
		}
		for _, tMax := range []int{1, 2, 3} {
			got, err := s.EvaluateAll(ring, g, tMax)
			if err != nil {
				t.Fatal(err)
			}
			for tt := 1; tt <= tMax; tt++ {
				want := directProofEval(f, s, setf, tt, x0)
				if got[tt-1] != want {
					t.Fatalf("x0=%d t=%d: template=%d direct=%d", x0, tt, got[tt-1], want)
				}
			}
		}
	}
}

// directProofEval computes P_t(x0) from the definition: enumerate all
// ordered t-tuples of subsets, keep those with multiset union E + M for
// a size-|B| multiset M, and weight by x0^{ΣM}.
func directProofEval(f ff.Field, s Split, setf func(uint64) uint64, t int, x0 uint64) uint64 {
	n := s.N
	ne := len(s.E)
	nb := len(s.B)
	total := uint64(0)
	tuple := make([]uint64, t)
	var rec func(depth int)
	rec = func(depth int) {
		if depth == t {
			// Element multiplicities.
			counts := make([]int, n)
			for _, x := range tuple {
				for v := 0; v < n; v++ {
					if x&(1<<uint(v)) != 0 {
						counts[v]++
					}
				}
			}
			// E elements exactly once.
			for i := 0; i < ne; i++ {
				if counts[i] != 1 {
					return
				}
			}
			// B multiset size |B|, weight = Σ counts · 2^i.
			size := 0
			weight := uint64(0)
			for i := 0; i < nb; i++ {
				size += counts[ne+i]
				weight += uint64(counts[ne+i]) << uint(i)
			}
			if size != nb {
				return
			}
			prod := f.Exp(x0, weight)
			for _, x := range tuple {
				prod = f.Mul(prod, setf(x))
			}
			total = f.Add(total, prod)
			return
		}
		for x := uint64(0); x < 1<<uint(n); x++ {
			tuple[depth] = x
			rec(depth + 1)
		}
	}
	rec(0)
	return total
}

func TestEvaluateAllRejectsBadTable(t *testing.T) {
	s := Balanced(4)
	ring := s.Ring(testField)
	if _, err := s.EvaluateAll(ring, make([]bipoly.Poly, 3), 1); err == nil {
		t.Fatal("want table-length error")
	}
}

func TestWeightSumIsMaskValue(t *testing.T) {
	s := Balanced(10)
	for _, mask := range []uint64{0, 1, 0b10110, 31} {
		if got := s.WeightSum(mask); got != mask {
			t.Fatalf("WeightSum(%b) = %d", mask, got)
		}
	}
}
