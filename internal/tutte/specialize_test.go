package tutte

import (
	"context"
	"math/big"
	"testing"

	"camelot/internal/chromatic"
	"camelot/internal/core"
	"camelot/internal/graph"
)

// TestChromaticFromTutteCrossValidation runs BOTH Camelot pipelines —
// Theorem 7 (Tutte via tripartite Potts) and Theorem 6 (chromatic via
// the independent-set template) — and checks they agree through the
// classical identity χ_G(t) = (-1)^{n-c} t^c T_G(1-t, 0). Two completely
// independent proof polynomials must produce the same numbers.
func TestChromaticFromTutteCrossValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("double Camelot pipeline in -short mode")
	}
	for seed := int64(0); seed < 2; seed++ {
		g := graph.Gnp(6, 0.5, seed)
		mg := graph.FromGraph(g)
		res, err := Compute(context.Background(), mg, core.Options{Nodes: 2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		cp, err := chromatic.NewProblem(g)
		if err != nil {
			t.Fatal(err)
		}
		proof, _, err := core.Run(context.Background(), cp, core.Options{Nodes: 2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		chromVals, err := cp.Values(proof)
		if err != nil {
			t.Fatal(err)
		}
		comps := mg.Components(nil)
		for tv := int64(1); tv <= int64(g.N()+1); tv++ {
			fromTutte := ChromaticAt(res.T, g.N(), comps, tv)
			if fromTutte.Cmp(chromVals[tv-1]) != 0 {
				t.Fatalf("seed %d t=%d: tutte-route %v, chromatic-route %v",
					seed, tv, fromTutte, chromVals[tv-1])
			}
		}
	}
}

func TestFlowPolynomialKnown(t *testing.T) {
	// Flow polynomial of C_n is (t-1): exactly t-1 nowhere-zero Z_t flows.
	mg := graph.FromGraph(graph.Cycle(5))
	res, err := Compute(context.Background(), mg, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for tv := int64(2); tv <= 5; tv++ {
		got := FlowAt(res.T, 5, 5, 1, tv)
		if got.Cmp(big.NewInt(tv-1)) != 0 {
			t.Fatalf("C5 flow at %d = %v, want %d", tv, got, tv-1)
		}
	}
	// Trees have no nowhere-zero flows.
	tree := graph.FromGraph(graph.Path(4))
	resT, err := Compute(context.Background(), tree, core.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := FlowAt(resT.T, 4, 3, 1, 3); got.Sign() != 0 {
		t.Fatalf("tree flow = %v, want 0", got)
	}
}

func TestSpecializationCounts(t *testing.T) {
	// K4: 16 spanning trees, 24 acyclic orientations (= 4! since K4 has
	// one linear order per orientation), 38 forests.
	mg := graph.FromGraph(graph.Complete(4))
	res, err := Compute(context.Background(), mg, core.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := SpanningTrees(res.T); got.Cmp(big.NewInt(16)) != 0 {
		t.Fatalf("spanning trees = %v, want 16", got)
	}
	if got := AcyclicOrientations(res.T); got.Cmp(big.NewInt(24)) != 0 {
		t.Fatalf("acyclic orientations = %v, want 24", got)
	}
	if got := Forests(res.T); got.Cmp(big.NewInt(38)) != 0 {
		t.Fatalf("forests = %v, want 38", got)
	}
}

func TestReliabilityNumerator(t *testing.T) {
	// Two parallel edges between two vertices: R(p) = 1-(1-p)^2 = 2p - p².
	mg := graph.NewMultigraph(2)
	mg.AddEdge(0, 1)
	mg.AddEdge(0, 1)
	res, err := Compute(context.Background(), mg, core.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := ReliabilityNumerator(res.Z, mg.M())
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 2, -1}
	for k, w := range want {
		if rel[k].Cmp(big.NewInt(w)) != 0 {
			t.Fatalf("rel coeff p^%d = %v, want %d", k, rel[k], w)
		}
	}
	// Reliability of a tree path: R(p) = p^m (all edges must survive).
	tree := graph.FromGraph(graph.Path(3))
	resT, err := Compute(context.Background(), tree, core.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	relT, err := ReliabilityNumerator(resT.Z, tree.M())
	if err != nil {
		t.Fatal(err)
	}
	for k, c := range relT {
		want := int64(0)
		if k == tree.M() {
			want = 1
		}
		if c.Cmp(big.NewInt(want)) != 0 {
			t.Fatalf("tree rel coeff p^%d = %v, want %d", k, c, want)
		}
	}
}

func TestReliabilityMonteCarloAgreement(t *testing.T) {
	// Sanity: the exact reliability polynomial at p = 1/2 equals the
	// fraction of edge subsets that span connectedly, computable directly.
	mg := graph.RandomMultigraph(5, 7, 9)
	res, err := Compute(context.Background(), mg, core.Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := ReliabilityNumerator(res.Z, mg.M())
	if err != nil {
		t.Fatal(err)
	}
	// R(1/2)·2^m = Σ_k rel[k]·2^{m-k} must equal the number of connected
	// spanning edge subsets.
	lhs := new(big.Int)
	for k, c := range rel {
		term := new(big.Int).Lsh(c, uint(mg.M()-k))
		lhs.Add(lhs, term)
	}
	connected := 0
	include := make([]bool, mg.M())
	for mask := 0; mask < 1<<uint(mg.M()); mask++ {
		for i := range include {
			include[i] = mask&(1<<uint(i)) != 0
		}
		if mg.Components(include) == 1 {
			connected++
		}
	}
	if lhs.Cmp(big.NewInt(int64(connected))) != 0 {
		t.Fatalf("R(1/2)·2^m = %v, direct count %d", lhs, connected)
	}
}
