package tutte

// Compiled plan for the fixed-r Potts subproblem. The evaluation point
// x0 enters nodeG only through the w_B-scalar xPow factors of S1 —
// every other ingredient is fixed per prime: the (1+r) power table, the
// S1 exponent factors, the S2 matrix together with its per-cardinality
// transposed slices, and the f_{E1,E2} cross factors. Compile hoists
// all of those; EvaluateBlock rebuilds only S1 and the downstream
// products per point, with identical arithmetic to nodeG so residues
// are bit-identical. Hoisted state is read-only (matrix.Mul allocates
// its result) and all scratch is per call, so one plan serves
// concurrent chunk tasks.

import (
	"camelot/internal/bipoly"
	"camelot/internal/core"
	"camelot/internal/ff"
	"camelot/internal/matrix"
	"camelot/internal/plan"
	"camelot/internal/yates"
)

var _ core.CompiledProblem = (*Problem)(nil)

type compiled struct {
	p *Problem
	f ff.Field
	// s1base[y1<<nb | x] = (1+r)^{E[X,Y1]+E[X]}: S1 before the xPow factor.
	s1base []uint64
	// m2t[j] = (S2|_j)ᵀ, the cardinality-j column slice of S2, transposed.
	m2t []*matrix.Matrix
	// colsByJ[j] lists the B-masks of popcount j.
	colsByJ [][]uint64
	// f12[y1<<n2 | y2] = (1+r)^{E[Y1,Y2]+E[Y1]}.
	f12 []uint64
}

// Compile implements plan.Compiler.
func (p *Problem) Compile(f ff.Field) (plan.Plan, error) {
	ne := len(p.split.E)
	nb := len(p.split.B)
	n1, n2 := p.n1, p.n2
	m := p.mg.M()
	onePlusR := make([]uint64, 2*m+1)
	onePlusR[0] = 1 % f.Q
	base := (p.r + 1) % f.Q
	for i := 1; i < len(onePlusR); i++ {
		onePlusR[i] = f.Mul(onePlusR[i-1], base)
	}

	vmE1 := func(y1 uint64) uint64 { return y1 }
	vmE2 := func(y2 uint64) uint64 { return y2 << uint(n1) }
	vmB := func(x uint64) uint64 { return x << uint(ne) }

	edgesWithinB := make([]int, 1<<uint(nb))
	for x := uint64(0); x < 1<<uint(nb); x++ {
		edgesWithinB[x] = p.mg.EdgesWithinMask(vmB(x))
	}
	s1base := make([]uint64, 1<<uint(n1+nb))
	for y1 := uint64(0); y1 < 1<<uint(n1); y1++ {
		for x := uint64(0); x < 1<<uint(nb); x++ {
			exp := p.mg.EdgesBetweenMasks(vmB(x), vmE1(y1)) + edgesWithinB[x]
			s1base[y1<<uint(nb)|x] = onePlusR[exp]
		}
	}
	s2 := matrix.New(f, 1<<uint(n2), 1<<uint(nb))
	for y2 := uint64(0); y2 < 1<<uint(n2); y2++ {
		e2within := p.mg.EdgesWithinMask(vmE2(y2))
		for x := uint64(0); x < 1<<uint(nb); x++ {
			exp := p.mg.EdgesBetweenMasks(vmB(x), vmE2(y2)) + e2within
			s2.Set(int(y2), int(x), onePlusR[exp])
		}
	}
	m2t := make([]*matrix.Matrix, nb+1)
	colsByJ := make([][]uint64, nb+1)
	for j := 0; j <= nb; j++ {
		m2 := matrix.New(f, s2.R, s2.C)
		for x := uint64(0); x < 1<<uint(nb); x++ {
			if popcount(x) != j {
				continue
			}
			colsByJ[j] = append(colsByJ[j], x)
			for y2 := 0; y2 < s2.R; y2++ {
				m2.Set(y2, int(x), s2.At(y2, int(x)))
			}
		}
		m2t[j] = m2.Transpose()
	}
	f12 := make([]uint64, 1<<uint(n1+n2))
	for y1 := uint64(0); y1 < 1<<uint(n1); y1++ {
		for y2 := uint64(0); y2 < 1<<uint(n2); y2++ {
			exp := p.mg.EdgesBetweenMasks(vmE1(y1), vmE2(y2)) + p.mg.EdgesWithinMask(vmE1(y1))
			f12[y1<<uint(n2)|y2] = onePlusR[exp]
		}
	}
	return &compiled{p: p, f: f, s1base: s1base, m2t: m2t, colsByJ: colsByJ, f12: f12}, nil
}

// EvaluateBlock implements plan.Plan.
func (c *compiled) EvaluateBlock(xs []uint64) ([][]uint64, error) {
	f, p := c.f, c.p
	ring := p.split.Ring(f)
	ne := len(p.split.E)
	nb := len(p.split.B)
	n1, n2 := p.n1, p.n2
	xPow := make([]uint64, 1<<uint(nb))
	out := make([][]uint64, len(xs))
	for xi, x0 := range xs {
		xp := p.split.NewXPowers(f, x0)
		for x := uint64(0); x < 1<<uint(nb); x++ {
			xPow[x] = xp.ForMask(x)
		}
		// Per-cardinality products T_j = S1|_j · (S2|_j)ᵀ: only the
		// popcount-j columns of S1 are populated, matching nodeG's m1.
		tj := make([]*matrix.Matrix, nb+1)
		for j := 0; j <= nb; j++ {
			m1 := matrix.New(f, 1<<uint(n1), 1<<uint(nb))
			for _, x := range c.colsByJ[j] {
				for y1 := uint64(0); y1 < 1<<uint(n1); y1++ {
					m1.Set(int(y1), int(x), f.Mul(c.s1base[y1<<uint(nb)|x], xPow[x]))
				}
			}
			tj[j] = m1.Mul(c.m2t[j])
		}
		g := make([]bipoly.Poly, 1<<uint(ne))
		for y1 := uint64(0); y1 < 1<<uint(n1); y1++ {
			for y2 := uint64(0); y2 < 1<<uint(n2); y2++ {
				f12 := c.f12[y1<<uint(n2)|y2]
				wE := popcount(y1) + popcount(y2)
				poly := ring.Zero()
				for j := 0; j <= nb; j++ {
					cv := f.Mul(f12, tj[j].At(int(y1), int(y2)))
					poly = ring.AddInPlace(poly, ring.Monomial(wE, j, cv))
				}
				g[y1|y2<<uint(n1)] = poly
			}
		}
		yates.Zeta(ne, g, ring.AddInPlace)
		vals, err := p.split.EvaluateAll(ring, g, p.n+1)
		if err != nil {
			return nil, err
		}
		out[xi] = vals
	}
	return out, nil
}
