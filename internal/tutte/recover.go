package tutte

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"sync"

	"camelot/internal/core"
	"camelot/internal/graph"
	"camelot/internal/interp"
)

// Result carries the recovered polynomials of a full Tutte computation.
type Result struct {
	// Z[c][j] is the coefficient of t^c r^j in the random-cluster
	// polynomial Z_G(t, r) = Σ_F t^{c(F)} r^{|F|}.
	Z [][]*big.Int
	// T[a][b] is the coefficient of x^a y^b in the Tutte polynomial.
	T [][]*big.Int
	// Reports holds one framework report per Fortuin–Kasteleyn line
	// r = 1..m+1.
	Reports []*core.Report
}

// RunLine executes one Fortuin–Kasteleyn line's Camelot run — the seam
// through which the session layer submits lines as concurrent cluster
// jobs. It must be non-nil; Compute wraps plain core.Run for the
// sequential case.
type RunLine func(ctx context.Context, p *Problem) (*core.Proof, *core.Report, error)

// Compute runs the full Theorem 7 pipeline: one Camelot run per integer
// r = 1..m+1 (each a width-(n+1) proof over the t grid), exact bivariate
// interpolation of Z, and the eq. (34) change of variables to T_G(x, y).
// Lines run sequentially through core.Run; the session layer's driver
// (camelot.TuttePolynomial) uses ComputeLines to run them as concurrent
// jobs on one cluster instead.
func Compute(ctx context.Context, mg *graph.Multigraph, opts core.Options) (*Result, error) {
	line := func(ctx context.Context, p *Problem) (*core.Proof, *core.Report, error) {
		return core.Run(ctx, p, opts)
	}
	return ComputeLines(ctx, mg, line, 1)
}

// ComputeLines is Compute with the per-line run pluggable and up to
// concurrency lines in flight at once. The result is deterministic
// regardless of concurrency: lines are independent Camelot runs, the
// value grid is indexed by r, and reports keep FK-line order.
func ComputeLines(ctx context.Context, mg *graph.Multigraph, line RunLine, concurrency int) (*Result, error) {
	n := mg.N()
	m := mg.M()
	if concurrency <= 0 {
		concurrency = 1
	}
	if concurrency > m+1 {
		concurrency = m + 1
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	grid := make([][]*big.Int, m+1) // grid[rIdx][tIdx]
	reports := make([]*core.Report, m+1)
	errs := make([]error, m+1)
	sem := make(chan struct{}, concurrency)
	var wg sync.WaitGroup
	for ri := 0; ri <= m; ri++ {
		wg.Add(1)
		go func(ri int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := runCtx.Err(); err != nil {
				errs[ri] = err
				return
			}
			p, err := NewProblem(mg, uint64(ri+1))
			if err != nil {
				errs[ri] = err
				cancel()
				return
			}
			proof, rep, err := line(runCtx, p)
			if err != nil {
				errs[ri] = fmt.Errorf("tutte: r=%d: %w", ri+1, err)
				cancel()
				return
			}
			reports[ri] = rep
			grid[ri], err = p.Values(proof)
			if err != nil {
				errs[ri] = err
				cancel()
			}
		}(ri)
	}
	wg.Wait()
	// Surface the root cause, not the cancellations it fanned out.
	var firstErr error
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			firstErr = err
			break
		}
	}
	if firstErr == nil {
		for _, err := range errs {
			if err != nil {
				firstErr = err
				break
			}
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	res := &Result{Reports: reports}
	z, err := InterpolateZ(grid, n, m)
	if err != nil {
		return nil, err
	}
	res.Z = z
	t, err := TutteFromZ(z, n, mg.Components(nil))
	if err != nil {
		return nil, err
	}
	res.T = t
	return res, nil
}

// InterpolateZ turns the value grid (rows r = 1..m+1, columns
// t = 1..n+1) into the coefficient matrix z[c][j] of Z_G.
func InterpolateZ(grid [][]*big.Int, n, m int) ([][]*big.Int, error) {
	tPoints := make([]int64, n+1)
	for i := range tPoints {
		tPoints[i] = int64(i + 1)
	}
	rPoints := make([]int64, m+1)
	for i := range rPoints {
		rPoints[i] = int64(i + 1)
	}
	// First in t per r-line: zeta[rIdx][c].
	zeta := make([][]*big.Int, m+1)
	for ri := 0; ri <= m; ri++ {
		coeffs, err := interp.LagrangeInt(tPoints, grid[ri])
		if err != nil {
			return nil, fmt.Errorf("tutte: interpolating t-line r=%d: %w", ri+1, err)
		}
		zeta[ri] = coeffs
	}
	// Then in r per t-degree.
	z := make([][]*big.Int, n+1)
	for c := 0; c <= n; c++ {
		vals := make([]*big.Int, m+1)
		for ri := 0; ri <= m; ri++ {
			vals[ri] = zeta[ri][c]
		}
		coeffs, err := interp.LagrangeInt(rPoints, vals)
		if err != nil {
			return nil, fmt.Errorf("tutte: interpolating r-line c=%d: %w", c, err)
		}
		z[c] = coeffs
	}
	return z, nil
}

// TutteFromZ applies eq. (34): with u = x-1, v = y-1,
// Z(uv, v) = u^{c0} v^n · T, so t_{uv}[c-c0][c+j-n] = z[c][j] directly
// (zero entries must appear outside that cone), followed by the binomial
// change back to x, y coordinates.
func TutteFromZ(z [][]*big.Int, n, c0 int) ([][]*big.Int, error) {
	maxU, maxV := 0, 0
	for c := range z {
		for j := range z[c] {
			if z[c][j].Sign() == 0 {
				continue
			}
			if c < c0 || c+j < n {
				return nil, fmt.Errorf("tutte: z[%d][%d] = %v violates the c >= c(E), c+j >= n cone", c, j, z[c][j])
			}
			if c-c0 > maxU {
				maxU = c - c0
			}
			if c+j-n > maxV {
				maxV = c + j - n
			}
		}
	}
	w := make([][]*big.Int, maxU+1)
	for a := range w {
		w[a] = make([]*big.Int, maxV+1)
		for b := range w[a] {
			w[a][b] = big.NewInt(0)
		}
	}
	for c := range z {
		for j := range z[c] {
			if z[c][j].Sign() != 0 {
				w[c-c0][c+j-n].Add(w[c-c0][c+j-n], z[c][j])
			}
		}
	}
	// T(x,y) = Σ w[a][b] (x-1)^a (y-1)^b: expand binomially.
	t := make([][]*big.Int, maxU+1)
	for a := range t {
		t[a] = make([]*big.Int, maxV+1)
		for b := range t[a] {
			t[a][b] = big.NewInt(0)
		}
	}
	for a := 0; a <= maxU; a++ {
		for b := 0; b <= maxV; b++ {
			if w[a][b].Sign() == 0 {
				continue
			}
			for i := 0; i <= a; i++ {
				bi := new(big.Int).Binomial(int64(a), int64(i))
				if (a-i)%2 == 1 {
					bi.Neg(bi)
				}
				for j := 0; j <= b; j++ {
					bj := new(big.Int).Binomial(int64(b), int64(j))
					if (b-j)%2 == 1 {
						bj.Neg(bj)
					}
					term := new(big.Int).Mul(w[a][b], bi)
					term.Mul(term, bj)
					t[i][j].Add(t[i][j], term)
				}
			}
		}
	}
	return t, nil
}

// Eval evaluates a bivariate coefficient matrix at integer (x, y).
func Eval(coeffs [][]*big.Int, x, y int64) *big.Int {
	total := new(big.Int)
	bx, by := big.NewInt(x), big.NewInt(y)
	xa := big.NewInt(1)
	for a := range coeffs {
		// Horner in y per x-power.
		row := new(big.Int)
		for b := len(coeffs[a]) - 1; b >= 0; b-- {
			row.Mul(row, by)
			row.Add(row, coeffs[a][b])
		}
		row.Mul(row, xa)
		total.Add(total, row)
		xa = new(big.Int).Mul(xa, bx)
	}
	return total
}

// --- Sequential baselines ----------------------------------------------------

// PottsBrute evaluates Z_G(t, r) by enumerating all t^n state assignments
// (Fortuin–Kasteleyn form): the integer-grid ground truth.
func PottsBrute(mg *graph.Multigraph, t int, r int64) *big.Int {
	n := mg.N()
	total := big.NewInt(0)
	sigma := make([]int, n)
	var rec func(v int)
	rec = func(v int) {
		if v == n {
			term := big.NewInt(1)
			factor := big.NewInt(1 + r)
			for _, e := range mg.Edges() {
				if sigma[e[0]] == sigma[e[1]] {
					term.Mul(term, factor)
				}
			}
			total.Add(total, term)
			return
		}
		for c := 0; c < t; c++ {
			sigma[v] = c
			rec(v + 1)
		}
	}
	rec(0)
	return total
}

// ZSubsets evaluates Z_G(t, r) = Σ_{F⊆E} t^{c(F)} r^{|F|} by subset
// expansion: exponential in m, exact, independent of the FK identity.
func ZSubsets(mg *graph.Multigraph, t, r int64) *big.Int {
	m := mg.M()
	total := big.NewInt(0)
	include := make([]bool, m)
	bt, br := big.NewInt(t), big.NewInt(r)
	for mask := uint64(0); mask < 1<<uint(m); mask++ {
		size := 0
		for i := 0; i < m; i++ {
			include[i] = mask&(1<<uint(i)) != 0
			if include[i] {
				size++
			}
		}
		comps := mg.Components(include)
		term := new(big.Int).Exp(bt, big.NewInt(int64(comps)), nil)
		term.Mul(term, new(big.Int).Exp(br, big.NewInt(int64(size)), nil))
		total.Add(total, term)
	}
	return total
}

// DeletionContraction computes the Tutte polynomial coefficient matrix by
// the classical recursion: loops contribute y, bridges x, other edges
// T(G-e) + T(G/e).
func DeletionContraction(mg *graph.Multigraph) [][]*big.Int {
	return tutteRec(mg.N(), append([][2]int(nil), mg.Edges()...))
}

func tutteRec(n int, edges [][2]int) [][]*big.Int {
	if len(edges) == 0 {
		return [][]*big.Int{{big.NewInt(1)}}
	}
	e := edges[len(edges)-1]
	rest := edges[:len(edges)-1]
	if e[0] == e[1] {
		// Loop: multiply by y.
		return shift(tutteRec(n, rest), 0, 1)
	}
	if isBridge(n, edges, len(edges)-1) {
		// Bridge: x · T(G/e).
		return shift(tutteRec(n-1, contract(rest, e)), 1, 0)
	}
	del := tutteRec(n, rest)
	con := tutteRec(n-1, contract(rest, e))
	return add(del, con)
}

// contract merges the higher endpoint of e into the lower one and
// relabels vertices above the removed one.
func contract(edges [][2]int, e [2]int) [][2]int {
	lo, hi := e[0], e[1]
	if lo > hi {
		lo, hi = hi, lo
	}
	relabel := func(v int) int {
		switch {
		case v == hi:
			return lo
		case v > hi:
			return v - 1
		}
		return v
	}
	out := make([][2]int, len(edges))
	for i, k := range edges {
		out[i] = [2]int{relabel(k[0]), relabel(k[1])}
	}
	return out
}

// isBridge reports whether edge idx disconnects its endpoints.
func isBridge(n int, edges [][2]int, idx int) bool {
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i, e := range edges {
		if i == idx {
			continue
		}
		parent[find(e[0])] = find(e[1])
	}
	return find(edges[idx][0]) != find(edges[idx][1])
}

func shift(p [][]*big.Int, dx, dy int) [][]*big.Int {
	out := make([][]*big.Int, len(p)+dx)
	width := 0
	for _, row := range p {
		if len(row) > width {
			width = len(row)
		}
	}
	for a := range out {
		out[a] = make([]*big.Int, width+dy)
		for b := range out[a] {
			out[a][b] = big.NewInt(0)
		}
	}
	for a, row := range p {
		for b, c := range row {
			out[a+dx][b+dy].Set(c)
		}
	}
	return out
}

func add(p, q [][]*big.Int) [][]*big.Int {
	rows := len(p)
	if len(q) > rows {
		rows = len(q)
	}
	width := 0
	for _, row := range p {
		if len(row) > width {
			width = len(row)
		}
	}
	for _, row := range q {
		if len(row) > width {
			width = len(row)
		}
	}
	out := make([][]*big.Int, rows)
	for a := range out {
		out[a] = make([]*big.Int, width)
		for b := range out[a] {
			out[a][b] = big.NewInt(0)
			if a < len(p) && b < len(p[a]) {
				out[a][b].Add(out[a][b], p[a][b])
			}
			if a < len(q) && b < len(q[a]) {
				out[a][b].Add(out[a][b], q[a][b])
			}
		}
	}
	return out
}
