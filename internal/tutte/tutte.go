// Package tutte implements the paper's Theorem 7: a Camelot algorithm for
// the Tutte polynomial of an n-vertex multigraph with proof size
// O*(2^{n/3}) and per-node time O*(2^{(ω+ε)n/3}). The route (§10):
//
//  1. Reduce T_G(x,y) to the Potts/random-cluster partition function
//     Z_G(t,r) at integer points (t, r) via Fortuin–Kasteleyn (eq. (36)).
//  2. For each integer r, compute Z_G(·, r) as a partitioning sum-product
//     over f(X) = (1+r)^{|E(G[X])|} with the §7 template; the node
//     function is assembled with the tripartite split E1, E2, B of
//     Williams, whose cross-cut aggregation is a matrix product (eq. 38).
//  3. Interpolate the (t, r) grid to the coefficients of Z and change
//     variables per eq. (34) to recover T_G(x, y).
package tutte

import (
	"fmt"
	"math/big"

	"camelot/internal/bipoly"
	"camelot/internal/core"
	"camelot/internal/crt"
	"camelot/internal/ff"
	"camelot/internal/graph"
	"camelot/internal/matrix"
	"camelot/internal/partition"
	"camelot/internal/yates"
)

// Problem is the fixed-r Camelot subproblem: coordinate t-1 carries the
// t-state Potts partitioning sum-product, t = 1..n+1.
type Problem struct {
	mg *graph.Multigraph
	n  int
	r  uint64
	// split is the §10 tripartite layout: B = ⌊n/3⌋ high vertices,
	// E = the rest, itself split into E1 (low half) and E2.
	split  partition.Split
	n1, n2 int
}

var _ core.Problem = (*Problem)(nil)

// NewProblem builds the fixed-r subproblem.
func NewProblem(mg *graph.Multigraph, r uint64) (*Problem, error) {
	n := mg.N()
	if n < 1 || n > 45 {
		return nil, fmt.Errorf("tutte: n = %d out of supported range [1, 45]", n)
	}
	if r < 1 {
		return nil, fmt.Errorf("tutte: Fortuin–Kasteleyn grid needs r >= 1, got %d", r)
	}
	split := partition.Tripartite(n)
	ne := len(split.E)
	n1 := (ne + 1) / 2
	return &Problem{mg: mg, n: n, r: r, split: split, n1: n1, n2: ne - n1}, nil
}

// Name implements core.Problem.
func (p *Problem) Name() string {
	return fmt.Sprintf("tutte-potts(n=%d,m=%d,r=%d)", p.n, p.mg.M(), p.r)
}

// Width implements core.Problem.
func (p *Problem) Width() int { return p.n + 1 }

// Degree implements core.Problem.
func (p *Problem) Degree() int { return p.split.Degree() }

// MinModulus implements core.Problem: above the proof degree, floored
// at 2^20 to keep the CRT prime count low.
func (p *Problem) MinModulus() uint64 {
	min := uint64(p.split.Degree()) + 2
	if min < 1<<20 {
		min = 1 << 20
	}
	return min
}

// NumPrimes implements core.Problem: Z(t,r) <= t^n (1+r)^m.
func (p *Problem) NumPrimes() int {
	bound := new(big.Int).Exp(big.NewInt(int64(p.n)+1), big.NewInt(int64(p.n)), nil)
	rp := new(big.Int).Exp(new(big.Int).SetUint64(p.r+1), big.NewInt(int64(p.mg.M())), nil)
	bound.Mul(bound, rp)
	bits := bound.BitLen()
	per := new(big.Int).SetUint64(p.MinModulus()).BitLen() - 1
	if per < 1 {
		per = 1
	}
	np := (bits + per - 1) / per
	if np < 1 {
		np = 1
	}
	return np
}

// nodeG computes the §10.2 node function. Vertex layout: E1 occupies
// vertices 0..n1-1, E2 occupies n1..ne-1, B occupies ne..n-1. The
// cross-cut aggregation t_{E1,E2} = f̂_{B,E1} · f̂_{B,E2}ᵀ is performed as
// |B|+1 scalar matrix products, one per B-subset cardinality class (the
// w_B exponent), each of shape 2^{|E1|} × 2^{|B|} × 2^{|E2|}.
func (p *Problem) nodeG(f ff.Field, x0 uint64) []bipoly.Poly {
	ring := p.split.Ring(f)
	ne := len(p.split.E)
	nb := len(p.split.B)
	n1, n2 := p.n1, p.n2
	xp := p.split.NewXPowers(f, x0)
	m := p.mg.M()
	// Powers of (1+r).
	onePlusR := make([]uint64, 2*m+1)
	onePlusR[0] = 1 % f.Q
	base := (p.r + 1) % f.Q
	for i := 1; i < len(onePlusR); i++ {
		onePlusR[i] = f.Mul(onePlusR[i-1], base)
	}

	vmE1 := func(y1 uint64) uint64 { return y1 }
	vmE2 := func(y2 uint64) uint64 { return y2 << uint(n1) }
	vmB := func(x uint64) uint64 { return x << uint(ne) }

	// S1[Y1][X] = (1+r)^{E[X,Y1]+E[X]} · w_B-scalar x0^{ΣX}
	// S2[Y2][X] = (1+r)^{E[X,Y2]+E[Y2]}
	s1 := matrix.New(f, 1<<uint(n1), 1<<uint(nb))
	s2 := matrix.New(f, 1<<uint(n2), 1<<uint(nb))
	edgesWithinB := make([]int, 1<<uint(nb))
	xPow := make([]uint64, 1<<uint(nb))
	for x := uint64(0); x < 1<<uint(nb); x++ {
		edgesWithinB[x] = p.mg.EdgesWithinMask(vmB(x))
		xPow[x] = xp.ForMask(x)
	}
	for y1 := uint64(0); y1 < 1<<uint(n1); y1++ {
		for x := uint64(0); x < 1<<uint(nb); x++ {
			exp := p.mg.EdgesBetweenMasks(vmB(x), vmE1(y1)) + edgesWithinB[x]
			s1.Set(int(y1), int(x), f.Mul(onePlusR[exp], xPow[x]))
		}
	}
	for y2 := uint64(0); y2 < 1<<uint(n2); y2++ {
		e2within := p.mg.EdgesWithinMask(vmE2(y2))
		for x := uint64(0); x < 1<<uint(nb); x++ {
			exp := p.mg.EdgesBetweenMasks(vmB(x), vmE2(y2)) + e2within
			s2.Set(int(y2), int(x), onePlusR[exp])
		}
	}
	// Per-cardinality products: T_j = S1|_j · (S2|_j)ᵀ.
	tj := make([]*matrix.Matrix, nb+1)
	for j := 0; j <= nb; j++ {
		m1 := matrix.New(f, s1.R, s1.C)
		m2 := matrix.New(f, s2.R, s2.C)
		for x := uint64(0); x < 1<<uint(nb); x++ {
			if popcount(x) != j {
				continue
			}
			for y1 := 0; y1 < s1.R; y1++ {
				m1.Set(y1, int(x), s1.At(y1, int(x)))
			}
			for y2 := 0; y2 < s2.R; y2++ {
				m2.Set(y2, int(x), s2.At(y2, int(x)))
			}
		}
		tj[j] = m1.Mul(m2.Transpose())
	}
	// g0(Y1 ∪ Y2) = f_{E1,E2}(Y1,Y2) · Σ_j T_j[Y1][Y2] w_E^{|Y|} w_B^j.
	g := make([]bipoly.Poly, 1<<uint(ne))
	for y1 := uint64(0); y1 < 1<<uint(n1); y1++ {
		for y2 := uint64(0); y2 < 1<<uint(n2); y2++ {
			f12exp := p.mg.EdgesBetweenMasks(vmE1(y1), vmE2(y2)) + p.mg.EdgesWithinMask(vmE1(y1))
			f12 := onePlusR[f12exp]
			wE := popcount(y1) + popcount(y2)
			poly := ring.Zero()
			for j := 0; j <= nb; j++ {
				c := f.Mul(f12, tj[j].At(int(y1), int(y2)))
				poly = ring.AddInPlace(poly, ring.Monomial(wE, j, c))
			}
			g[y1|y2<<uint(n1)] = poly
		}
	}
	// g = zeta(g0) over the E lattice.
	yates.Zeta(ne, g, ring.AddInPlace)
	return g
}

// Evaluate implements core.Problem.
func (p *Problem) Evaluate(q, x0 uint64) ([]uint64, error) {
	f, err := ff.New(q)
	if err != nil {
		return nil, err
	}
	g := p.nodeG(f, x0)
	return p.split.EvaluateAll(p.split.Ring(f), g, p.n+1)
}

// Values recovers Z_G(t, r) for t = 1..n+1 at this problem's r.
func (p *Problem) Values(proof *core.Proof) ([]*big.Int, error) {
	idx := p.split.TargetIndex()
	out := make([]*big.Int, p.n+1)
	residues := make([]uint64, len(proof.Primes))
	for t := 1; t <= p.n+1; t++ {
		for i, q := range proof.Primes {
			residues[i] = proof.Coeffs[q][t-1][idx]
		}
		v, err := crt.Reconstruct(residues, proof.Primes)
		if err != nil {
			return nil, fmt.Errorf("tutte: t=%d: %w", t, err)
		}
		out[t-1] = v
	}
	return out, nil
}

func popcount(x uint64) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}
