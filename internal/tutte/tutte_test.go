package tutte

import (
	"context"
	"math/big"
	"sync/atomic"
	"testing"
	"time"

	"camelot/internal/core"
	"camelot/internal/graph"
)

// tutteEqual compares coefficient matrices up to trailing zeros.
func tutteEqual(a, b [][]*big.Int) bool {
	coeff := func(m [][]*big.Int, i, j int) *big.Int {
		if i < len(m) && j < len(m[i]) {
			return m[i][j]
		}
		return big.NewInt(0)
	}
	rows := len(a)
	if len(b) > rows {
		rows = len(b)
	}
	for i := 0; i < rows; i++ {
		width := 0
		if i < len(a) {
			width = len(a[i])
		}
		if i < len(b) && len(b[i]) > width {
			width = len(b[i])
		}
		for j := 0; j < width; j++ {
			if coeff(a, i, j).Cmp(coeff(b, i, j)) != 0 {
				return false
			}
		}
	}
	return true
}

func TestDeletionContractionKnown(t *testing.T) {
	tests := []struct {
		name string
		mg   *graph.Multigraph
		want map[[2]int]int64 // (x-power, y-power) -> coefficient
	}{
		{"single edge (bridge)", edges(2, [2]int{0, 1}), map[[2]int]int64{{1, 0}: 1}},
		{"single loop", edges(1, [2]int{0, 0}), map[[2]int]int64{{0, 1}: 1}},
		{"two parallel edges", edges(2, [2]int{0, 1}, [2]int{0, 1}), map[[2]int]int64{{1, 0}: 1, {0, 1}: 1}},
		// Triangle: T = x^2 + x + y.
		{"triangle", edges(3, [2]int{0, 1}, [2]int{1, 2}, [2]int{0, 2}),
			map[[2]int]int64{{2, 0}: 1, {1, 0}: 1, {0, 1}: 1}},
		// C4: x^3 + x^2 + x + y.
		{"C4", edges(4, [2]int{0, 1}, [2]int{1, 2}, [2]int{2, 3}, [2]int{0, 3}),
			map[[2]int]int64{{3, 0}: 1, {2, 0}: 1, {1, 0}: 1, {0, 1}: 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := DeletionContraction(tt.mg)
			for key, want := range tt.want {
				if key[0] >= len(got) || key[1] >= len(got[key[0]]) {
					t.Fatalf("missing coefficient x^%d y^%d", key[0], key[1])
				}
				if got[key[0]][key[1]].Cmp(big.NewInt(want)) != 0 {
					t.Fatalf("t_{%d,%d} = %v, want %d", key[0], key[1], got[key[0]][key[1]], want)
				}
			}
			// All other entries must be zero.
			for a := range got {
				for b := range got[a] {
					if _, ok := tt.want[[2]int{a, b}]; !ok && got[a][b].Sign() != 0 {
						t.Fatalf("unexpected t_{%d,%d} = %v", a, b, got[a][b])
					}
				}
			}
		})
	}
}

func edges(n int, es ...[2]int) *graph.Multigraph {
	mg := graph.NewMultigraph(n)
	for _, e := range es {
		mg.AddEdge(e[0], e[1])
	}
	return mg
}

func TestPottsBruteMatchesSubsetExpansion(t *testing.T) {
	// The Fortuin–Kasteleyn identity: Σ_σ Π(1+r[σe1=σe2]) = Σ_F t^{c(F)} r^{|F|}.
	for _, mg := range []*graph.Multigraph{
		graph.RandomMultigraph(4, 5, 1),
		graph.RandomMultigraph(5, 6, 2),
		graph.FromGraph(graph.Cycle(4)),
	} {
		for _, tv := range []int{1, 2, 3} {
			for _, rv := range []int64{1, 2} {
				if got, want := PottsBrute(mg, tv, rv), ZSubsets(mg, int64(tv), rv); got.Cmp(want) != 0 {
					t.Fatalf("n=%d m=%d t=%d r=%d: potts=%v subsets=%v", mg.N(), mg.M(), tv, rv, got, want)
				}
			}
		}
	}
}

func TestCamelotPottsValuesMatchBrute(t *testing.T) {
	mg := graph.RandomMultigraph(5, 6, 3)
	p, err := NewProblem(mg, 2)
	if err != nil {
		t.Fatal(err)
	}
	proof, rep, err := core.Run(context.Background(), p, core.Options{Nodes: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified {
		t.Fatal("not verified")
	}
	vals, err := p.Values(proof)
	if err != nil {
		t.Fatal(err)
	}
	for tv := 1; tv <= mg.N()+1; tv++ {
		want := PottsBrute(mg, tv, 2)
		if vals[tv-1].Cmp(want) != 0 {
			t.Fatalf("Z(%d, 2) = %v, want %v", tv, vals[tv-1], want)
		}
	}
}

func TestComputeMatchesDeletionContraction(t *testing.T) {
	cases := map[string]*graph.Multigraph{
		"triangle":     edges(3, [2]int{0, 1}, [2]int{1, 2}, [2]int{0, 2}),
		"multi+loop":   edges(3, [2]int{0, 1}, [2]int{0, 1}, [2]int{1, 2}, [2]int{2, 2}),
		"random(5,6)":  graph.RandomMultigraph(5, 6, 7),
		"disconnected": edges(4, [2]int{0, 1}, [2]int{2, 3}),
		"c5":           graph.FromGraph(graph.Cycle(5)),
	}
	for name, mg := range cases {
		t.Run(name, func(t *testing.T) {
			res, err := Compute(context.Background(), mg, core.Options{Nodes: 2, Seed: 2})
			if err != nil {
				t.Fatal(err)
			}
			want := DeletionContraction(mg)
			if !tutteEqual(res.T, want) {
				t.Fatalf("Tutte mismatch:\ngot  %v\nwant %v", res.T, want)
			}
		})
	}
}

func TestTutteClassicalIdentities(t *testing.T) {
	if testing.Short() {
		t.Skip("Tutte identity suite in -short mode")
	}
	// K4: spanning trees T(1,1) = 16, forests T(2,1) = 61, 2^m = T(2,2).
	mg := graph.FromGraph(graph.Complete(4))
	res, err := Compute(context.Background(), mg, core.Options{Nodes: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := Eval(res.T, 1, 1); got.Cmp(big.NewInt(16)) != 0 {
		t.Fatalf("K4 spanning trees = %v, want 16", got)
	}
	if got := Eval(res.T, 2, 2); got.Cmp(big.NewInt(64)) != 0 {
		t.Fatalf("K4 T(2,2) = %v, want 2^6 = 64", got)
	}
}

func TestComputeEdgeless(t *testing.T) {
	mg := graph.NewMultigraph(3)
	res, err := Compute(context.Background(), mg, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// T = 1 for edgeless graphs.
	if got := Eval(res.T, 5, 7); got.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("edgeless T(5,7) = %v, want 1", got)
	}
}

func TestProblemValidation(t *testing.T) {
	mg := graph.NewMultigraph(3)
	if _, err := NewProblem(mg, 0); err == nil {
		t.Fatal("r = 0 must be rejected")
	}
	if _, err := NewProblem(graph.NewMultigraph(0), 1); err == nil {
		t.Fatal("empty graph must be rejected")
	}
}

func TestCamelotTutteWithFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("fault-injected Tutte in -short mode")
	}
	mg := graph.FromGraph(graph.Cycle(6))
	p, err := NewProblem(mg, 1)
	if err != nil {
		t.Fatal(err)
	}
	d := p.Degree()
	k := 4
	f := 0
	for {
		e := d + 1 + 2*f
		if f >= (e+k-1)/k {
			break
		}
		f++
	}
	proof, rep, err := core.Run(context.Background(), p, core.Options{
		Nodes: k, FaultTolerance: f, Adversary: core.NewEquivocatingNodes(2, 3), Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := p.Values(proof)
	if err != nil {
		t.Fatal(err)
	}
	for tv := 1; tv <= mg.N()+1; tv++ {
		if want := PottsBrute(mg, tv, 1); vals[tv-1].Cmp(want) != 0 {
			t.Fatalf("Z(%d,1) = %v, want %v", tv, vals[tv-1], want)
		}
	}
	for _, s := range rep.SuspectNodes {
		if s != 3 {
			t.Fatalf("honest node %d implicated", s)
		}
	}
}

// TestComputeLinesBoundsInFlight is the regression test for the FK
// line-concurrency fix: however many lines a multigraph has, at most
// `concurrency` of them may be started (and therefore holding share
// buffers) at once. The driver used to pass m+1 here, which let peak
// memory scale with the edge count.
func TestComputeLinesBoundsInFlight(t *testing.T) {
	mg := graph.RandomMultigraph(4, 9, 5) // 10 FK lines
	const bound = 2
	var inFlight, maxSeen, started atomic.Int32
	line := func(ctx context.Context, p *Problem) (*core.Proof, *core.Report, error) {
		n := inFlight.Add(1)
		defer inFlight.Add(-1)
		started.Add(1)
		for {
			m := maxSeen.Load()
			if n <= m || maxSeen.CompareAndSwap(m, n) {
				break
			}
		}
		// Give overlapping starts a window to overlap: a sleep here is
		// load-bearing, it widens the race the bound must prevent.
		time.Sleep(2 * time.Millisecond)
		return core.Run(ctx, p, core.Options{})
	}
	res, err := ComputeLines(context.Background(), mg, line, bound)
	if err != nil {
		t.Fatal(err)
	}
	if got := started.Load(); got != int32(mg.M()+1) {
		t.Fatalf("started %d lines, want %d", got, mg.M()+1)
	}
	if got := maxSeen.Load(); got > bound {
		t.Fatalf("%d lines in flight at once, bound %d", got, bound)
	}
	// And the capped computation still matches the classical recursion.
	if want := DeletionContraction(mg); !tutteEqual(res.T, want) {
		t.Fatal("bounded-concurrency Tutte result diverged from deletion-contraction")
	}
}
