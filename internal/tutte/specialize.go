package tutte

// Specializations of the Tutte polynomial (paper §1.5, highlight 4: "the
// Tutte polynomial subsumes a large number of #P-hard counting
// problems"). These let the Theorem 7 pipeline answer chromatic, flow,
// and reliability queries, and give the test suite a cross-validation
// path against the independent Theorem 6 implementation.

import (
	"fmt"
	"math/big"
)

// ChromaticAt evaluates the chromatic polynomial at integer t from Tutte
// coefficients: χ_G(t) = (-1)^{n-c} t^c · T_G(1-t, 0), where n is the
// vertex count and c the number of connected components.
func ChromaticAt(tutteCoeffs [][]*big.Int, n, components int, t int64) *big.Int {
	v := Eval(tutteCoeffs, 1-t, 0)
	tc := new(big.Int).Exp(big.NewInt(t), big.NewInt(int64(components)), nil)
	v.Mul(v, tc)
	if (n-components)%2 == 1 {
		v.Neg(v)
	}
	return v
}

// FlowAt evaluates the flow polynomial at integer t:
// F_G(t) = (-1)^{m-n+c} · T_G(0, 1-t), counting nowhere-zero Z_t-flows.
func FlowAt(tutteCoeffs [][]*big.Int, n, m, components int, t int64) *big.Int {
	v := Eval(tutteCoeffs, 0, 1-t)
	if (m-n+components)%2 == 1 {
		v.Neg(v)
	}
	return v
}

// SpanningTrees returns T_G(1,1): the number of maximal spanning forests
// (spanning trees when G is connected).
func SpanningTrees(tutteCoeffs [][]*big.Int) *big.Int { return Eval(tutteCoeffs, 1, 1) }

// Forests returns T_G(2,1): the number of spanning forests.
func Forests(tutteCoeffs [][]*big.Int) *big.Int { return Eval(tutteCoeffs, 2, 1) }

// ConnectedSpanningSubgraphs returns T_G(1,2).
func ConnectedSpanningSubgraphs(tutteCoeffs [][]*big.Int) *big.Int {
	return Eval(tutteCoeffs, 1, 2)
}

// AcyclicOrientations returns T_G(2,0) (Stanley's theorem).
func AcyclicOrientations(tutteCoeffs [][]*big.Int) *big.Int { return Eval(tutteCoeffs, 2, 0) }

// ReliabilityNumerator returns the numerator polynomial coefficients of
// the all-terminal reliability R_G(p) = Σ_k relK[k]·p^k, the probability
// that the surviving edges (each kept independently with probability p)
// span a connected graph, for a connected multigraph. It expands
// R(p) = Σ_{F spanning connected} p^{|F|}(1-p)^{m-|F|} from the
// random-cluster coefficients: the number of connected spanning edge
// sets of size s is Σ_j z[1][j] restricted to j = s with c = 1 — i.e.
// row c=1 of the Z coefficient matrix.
func ReliabilityNumerator(zCoeffs [][]*big.Int, m int) ([]*big.Int, error) {
	if len(zCoeffs) < 2 {
		return nil, fmt.Errorf("tutte: Z coefficients missing the c=1 row")
	}
	// connected[s] = number of spanning connected subgraphs with s edges
	// = coefficient of t^1 r^s in Z.
	connected := zCoeffs[1]
	out := make([]*big.Int, m+1)
	for k := range out {
		out[k] = big.NewInt(0)
	}
	// R(p) = Σ_s connected[s] p^s (1-p)^{m-s}: expand binomially.
	for s := 0; s < len(connected) && s <= m; s++ {
		if connected[s].Sign() == 0 {
			continue
		}
		for j := 0; j <= m-s; j++ {
			term := new(big.Int).Binomial(int64(m-s), int64(j))
			term.Mul(term, connected[s])
			if j%2 == 1 {
				term.Neg(term)
			}
			out[s+j].Add(out[s+j], term)
		}
	}
	return out, nil
}
