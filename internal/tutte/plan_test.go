package tutte

import (
	"reflect"
	"sync"
	"testing"

	"camelot/internal/core"
	"camelot/internal/ff"
	"camelot/internal/graph"
)

// TestEvaluateBlockMatchesEvaluate: the compiled plan hoists every
// x0-independent ingredient of nodeG (power tables, S2 slices, f12
// factors); the remaining per-point arithmetic must stay bit-identical
// to Evaluate across seeds, primes, and the full width-(n+1) row. A
// shared plan is also exercised from concurrent goroutines so the race
// detector validates the hoisted state is read-only.
func TestEvaluateBlockMatchesEvaluate(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		mg := graph.RandomMultigraph(6, 8, seed)
		for _, r := range []uint64{1, 3} {
			p, err := NewProblem(mg, r)
			if err != nil {
				t.Fatal(err)
			}
			primes, err := core.ChoosePrimes(2, p.MinModulus(), int(seed))
			if err != nil {
				t.Fatal(err)
			}
			xs := []uint64{0, 1, 2, 7, 100, 54321, 1 << 19}
			for _, q := range primes {
				f, err := ff.New(q)
				if err != nil {
					t.Fatal(err)
				}
				pl, err := p.Compile(f)
				if err != nil {
					t.Fatal(err)
				}
				rows, err := pl.EvaluateBlock(xs)
				if err != nil {
					t.Fatal(err)
				}
				for i, x := range xs {
					want, err := p.Evaluate(q, x)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(rows[i], want) {
						t.Fatalf("r=%d q=%d x=%d: block %v != point %v", r, q, x, rows[i], want)
					}
				}
				var wg sync.WaitGroup
				for w := 0; w < 4; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						got, err := pl.EvaluateBlock(xs)
						if err != nil {
							t.Error(err)
							return
						}
						if !reflect.DeepEqual(got, rows) {
							t.Errorf("r=%d q=%d: concurrent block diverged", r, q)
						}
					}()
				}
				wg.Wait()
			}
		}
	}
}
