// Package yates implements Yates's algorithm (paper §3.1) for multiplying
// a vector by a Kronecker power A^{⊗k} of a small t×s matrix, the
// split/sparse variant of paper §3.2 that delivers the output in
// independent parts sized to a sparse input, and the polynomial extension
// of paper §3.3 that replaces the outer part loop with evaluations of
// part-polynomials at arbitrary field points — the key device behind the
// sparsity-aware Camelot triangle algorithms.
//
// Index convention (paper §3): an index j in [s^k] is identified with its
// k digits (j_1, ..., j_k) in base s, j_1 most significant.
package yates

import (
	"fmt"

	"camelot/internal/ff"
)

// Transform returns y = A^{⊗k} x, where a is the t×s base matrix in
// row-major order (a[i*s+j] = A[i][j], entries already reduced mod f.Q)
// and x has length s^k. The result has length t^k. The input is not
// modified. Work is O((s+t)·max(s,t)^k·k) field operations, space
// O(max(s,t)^k) — exactly paper eq. (5) level by level.
func Transform(f ff.Field, a []uint64, t, s, k int, x []uint64) []uint64 {
	if len(a) != t*s {
		panic(fmt.Sprintf("yates: base matrix %d entries, want %dx%d", len(a), t, s))
	}
	if len(x) != pow(s, k) {
		panic(fmt.Sprintf("yates: input length %d, want %d^%d", len(x), s, k))
	}
	fk := f.Kernel()
	// Double-buffer the level fan-out: the per-level result was
	// previously a fresh allocation, which made the allocator and GC a
	// visible fraction of tight Kronecker pushes (R0^T levels per fanOut
	// call). Both buffers are sized to the largest level.
	maxSize := len(x)
	for l := 1; l <= k; l++ {
		if sz := pow(t, l) * pow(s, k-l); sz > maxSize {
			maxSize = sz
		}
	}
	bufA := make([]uint64, maxSize)
	bufB := make([]uint64, maxSize)
	cur := bufA[:len(x)]
	copy(cur, x)
	// After level ℓ the shape is [t^ℓ][s^{k-ℓ}]; level ℓ contracts digit ℓ.
	for l := 1; l <= k; l++ {
		prefix := pow(t, l-1)
		suffix := pow(s, k-l)
		next := bufB[:prefix*t*suffix]
		clear(next)
		for p := 0; p < prefix; p++ {
			for i := 0; i < t; i++ {
				row := a[i*s:]
				dst := next[(p*t+i)*suffix:]
				for j := 0; j < s; j++ {
					c := row[j]
					if c == 0 {
						continue
					}
					src := cur[(p*s+j)*suffix:]
					if c == 1 {
						for u := 0; u < suffix; u++ {
							dst[u] = f.Add(dst[u], src[u])
						}
						continue
					}
					cs := fk.Shift(c)
					for u := 0; u < suffix; u++ {
						dst[u] = f.Add(dst[u], ff.MulKS(src[u], cs, fk))
					}
				}
			}
		}
		bufA, bufB = bufB, bufA
		cur = next
	}
	return cur
}

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}

// Entry is one nonzero coordinate of a sparse input vector.
type Entry struct {
	Index int    // position in [s^k]
	Value uint64 // residue mod q
}

// SplitSparse computes y = A^{⊗k} x for an input vector with |D| nonzero
// entries, delivering the t^k outputs in t^{k-ℓ} independent parts of
// t^ℓ entries each (paper §3.2). Parts can be produced concurrently and
// each costs O((t^{ℓ+1}+s^{ℓ+1})ℓ + |D|) operations and O(t^ℓ + |D|)
// space, never materializing the full output.
type SplitSparse struct {
	f       ff.Field
	a       []uint64 // t×s base
	t, s, k int
	ell     int
	entries []Entry
	// lowDigits[i] caches the k-ℓ least-significant base-s digits of
	// entry i's index (most significant of the low block first).
	lowDigits [][]int
	// highIndex[i] caches the ℓ most-significant digits as one number.
	highIndex []int
}

// NewSplitSparse prepares a split/sparse transform. ell is the number of
// inner (Yates) levels; paper §3.2 picks ell = ⌈log_t |D|⌉, which
// DefaultEll computes. Requires t >= s (paper's standing assumption).
func NewSplitSparse(f ff.Field, a []uint64, t, s, k int, entries []Entry, ell int) (*SplitSparse, error) {
	if t < s {
		return nil, fmt.Errorf("yates: split/sparse requires t >= s, got t=%d s=%d", t, s)
	}
	if len(a) != t*s {
		return nil, fmt.Errorf("yates: base matrix %d entries, want %dx%d", len(a), t, s)
	}
	if ell < 0 || ell > k {
		return nil, fmt.Errorf("yates: ell=%d out of range [0,%d]", ell, k)
	}
	ss := &SplitSparse{
		f: f, a: a, t: t, s: s, k: k, ell: ell,
		entries:   entries,
		lowDigits: make([][]int, len(entries)),
		highIndex: make([]int, len(entries)),
	}
	sHigh := pow(s, ell)
	sLow := pow(s, k-ell)
	for i, e := range entries {
		if e.Index < 0 || e.Index >= sHigh*sLow {
			return nil, fmt.Errorf("yates: entry index %d out of range", e.Index)
		}
		ss.highIndex[i] = e.Index / sLow
		low := e.Index % sLow
		digs := make([]int, k-ell)
		for d := k - ell - 1; d >= 0; d-- {
			digs[d] = low % s
			low /= s
		}
		ss.lowDigits[i] = digs
	}
	return ss, nil
}

// DefaultEll returns the paper's choice ℓ = ⌈log_t |D|⌉ clamped to [0, k].
func DefaultEll(t, k, nnz int) int {
	ell := 0
	size := 1
	for size < nnz && ell < k {
		size *= t
		ell++
	}
	return ell
}

// NumParts returns the number of independent output parts, t^{k-ℓ}.
func (ss *SplitSparse) NumParts() int { return pow(ss.t, ss.k-ss.ell) }

// PartSize returns the number of output entries per part, t^ℓ.
func (ss *SplitSparse) PartSize() int { return pow(ss.t, ss.ell) }

// Part computes output part `outer` in [0, NumParts()): the vector of
// y values whose last k-ℓ output digits equal the base-t digits of outer.
// Part v contains y[v'*t^{k-ℓ} + outer] at position v' for v' in [t^ℓ].
func (ss *SplitSparse) Part(outer int) []uint64 {
	f := ss.f
	// Outer digits, most significant of the low block first.
	outDigs := make([]int, ss.k-ss.ell)
	o := outer
	for d := ss.k - ss.ell - 1; d >= 0; d-- {
		outDigs[d] = o % ss.t
		o /= ss.t
	}
	// Scatter: x^{(ℓ)}_{high} += Π_w a[i_w][j_w] · x_j   (paper step (b)).
	xl := make([]uint64, pow(ss.s, ss.ell))
	for i, e := range ss.entries {
		w := uint64(1)
		for d, jd := range ss.lowDigits[i] {
			w = f.Mul(w, ss.a[outDigs[d]*ss.s+jd])
			if w == 0 {
				break
			}
		}
		if w == 0 {
			continue
		}
		hi := ss.highIndex[i]
		xl[hi] = f.Add(xl[hi], f.Mul(w, e.Value))
	}
	// Inner classical Yates (paper step (c)).
	return Transform(f, ss.a, ss.t, ss.s, ss.ell, xl)
}

// Dense computes the full y = A^{⊗k} x by concatenating parts — a test
// and small-scale convenience (quadratic in part count; real users call
// Part/PartsAtPoint).
func (ss *SplitSparse) Dense() []uint64 {
	nParts := ss.NumParts()
	size := ss.PartSize()
	y := make([]uint64, nParts*size)
	for outer := 0; outer < nParts; outer++ {
		part := ss.Part(outer)
		for v := 0; v < size; v++ {
			y[v*nParts+outer] = part[v]
		}
	}
	return y
}

// PartsAtPoint evaluates the part-polynomials u^{(ℓ)}(z) at z = z0
// (paper §3.3). For z0 = 1, 2, ..., t^{k-ℓ} the result equals
// Part(z0 - 1); at other points it is the degree-(t^{k-ℓ}-1) polynomial
// extension. Cost O(|D|·(k-ℓ) + t^{k-ℓ+1}(k-ℓ) + inner Yates).
func (ss *SplitSparse) PartsAtPoint(z0 uint64) []uint64 {
	f := ss.f
	nOut := ss.k - ss.ell
	// Φ_i(z0) over the 1-based outer range [t^{k-ℓ}].
	phi := f.LagrangeAtOneBased(pow(ss.t, nOut), z0)
	// α_{j_low}(z0) for every low-digit tuple: (Aᵀ)^{⊗(k-ℓ)} Φ.
	at := make([]uint64, ss.s*ss.t)
	for i := 0; i < ss.t; i++ {
		for j := 0; j < ss.s; j++ {
			at[j*ss.t+i] = ss.a[i*ss.s+j]
		}
	}
	alpha := Transform(f, at, ss.s, ss.t, nOut, phi)
	// Scatter with interpolated weights, then inner Yates.
	xl := make([]uint64, pow(ss.s, ss.ell))
	sLow := pow(ss.s, nOut)
	for i, e := range ss.entries {
		low := e.Index % sLow
		w := alpha[low]
		if w == 0 {
			continue
		}
		hi := ss.highIndex[i]
		xl[hi] = f.Add(xl[hi], f.Mul(w, e.Value))
	}
	return Transform(f, ss.a, ss.t, ss.s, ss.ell, xl)
}

// PartPolyDegree returns the degree bound t^{k-ℓ} - 1 of each part
// polynomial u^{(ℓ)}_{i}(z).
func (ss *SplitSparse) PartPolyDegree() int { return pow(ss.t, ss.k-ss.ell) - 1 }

// PartsEvaluator amortizes PartsAtPoint across many points of the same
// transform: the transposed base matrix is built once, the Lagrange
// basis over the 1-based outer range goes through a scratch-reusing
// ff.LagrangeEvaluator (factorial products and fixed denominators
// inverted at construction), and the Φ/x^{(ℓ)} scatter buffers are
// reused between calls. This is the block-evaluation workhorse behind
// BatchProblem implementations of the §3.3 polynomial extension.
//
// Like ff.LagrangeEvaluator, a PartsEvaluator is NOT safe for
// concurrent use (shared scratch); build one per goroutine. At(z0) is
// bit-identical to ss.PartsAtPoint(z0) for every z0 — the one-shot and
// amortized Lagrange kernels compute the same residues — which is what
// lets batch and per-point protocol paths share one proof.
type PartsEvaluator struct {
	ss  *SplitSparse
	at  []uint64 // transposed base, s×t
	le  *ff.LagrangeEvaluator
	phi []uint64 // Lagrange basis scratch, length t^{k-ℓ}
	xl  []uint64 // scatter scratch, length s^ℓ
}

// NewPartsEvaluator prepares a reusable part-polynomial evaluator.
func (ss *SplitSparse) NewPartsEvaluator() *PartsEvaluator {
	at := make([]uint64, ss.s*ss.t)
	for i := 0; i < ss.t; i++ {
		for j := 0; j < ss.s; j++ {
			at[j*ss.t+i] = ss.a[i*ss.s+j]
		}
	}
	nOut := ss.k - ss.ell
	return &PartsEvaluator{
		ss:  ss,
		at:  at,
		le:  ss.f.NewLagrangeEvaluatorOneBased(pow(ss.t, nOut)),
		phi: make([]uint64, pow(ss.t, nOut)),
		xl:  make([]uint64, pow(ss.s, ss.ell)),
	}
}

// At evaluates the part-polynomials u^{(ℓ)}(z) at z = z0, exactly like
// SplitSparse.PartsAtPoint but with the per-point setup amortized. The
// returned slice is freshly allocated (the inner Yates transform owns
// it); scratch reuse covers the Lagrange and scatter phases.
func (pe *PartsEvaluator) At(z0 uint64) []uint64 {
	ss := pe.ss
	f := ss.f
	nOut := ss.k - ss.ell
	pe.le.At(z0, pe.phi)
	alpha := Transform(f, pe.at, ss.s, ss.t, nOut, pe.phi)
	clear(pe.xl)
	sLow := pow(ss.s, nOut)
	for i, e := range ss.entries {
		low := e.Index % sLow
		w := alpha[low]
		if w == 0 {
			continue
		}
		hi := ss.highIndex[i]
		pe.xl[hi] = f.Add(pe.xl[hi], f.Mul(w, e.Value))
	}
	return Transform(f, ss.a, ss.t, ss.s, ss.ell, pe.xl)
}

// Zeta computes the subset zeta transform in place over a generic
// commutative monoid: on return vals[Y] = Σ_{X ⊆ Y} vals[X] for every
// mask Y over an n-element ground set (len(vals) must be 2^n). This is
// Yates's algorithm for the base matrix [[1,0],[1,1]] specialized to
// arbitrary element types (the chromatic/Tutte node functions run it over
// bivariate polynomials).
func Zeta[T any](n int, vals []T, add func(dst, src T) T) {
	if len(vals) != 1<<uint(n) {
		panic(fmt.Sprintf("yates: zeta over %d values, want 2^%d", len(vals), n))
	}
	for b := 0; b < n; b++ {
		bit := 1 << uint(b)
		for m := 0; m < len(vals); m++ {
			if m&bit != 0 {
				vals[m] = add(vals[m], vals[m^bit])
			}
		}
	}
}
