package yates

import (
	"math/rand"
	"testing"

	"camelot/internal/ff"
)

var testField = ff.Must(1000003)

// kroneckerDense materializes A^{⊗k} and multiplies naively — the
// reference for every fast path.
func kroneckerDense(f ff.Field, a []uint64, t, s, k int, x []uint64) []uint64 {
	rows, cols := 1, 1
	m := []uint64{1}
	for level := 0; level < k; level++ {
		nr, nc := rows*t, cols*s
		nm := make([]uint64, nr*nc)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				for bi := 0; bi < t; bi++ {
					for bj := 0; bj < s; bj++ {
						nm[(i*t+bi)*nc+j*s+bj] = f.Mul(m[i*cols+j], a[bi*s+bj])
					}
				}
			}
		}
		m, rows, cols = nm, nr, nc
	}
	y := make([]uint64, rows)
	for i := 0; i < rows; i++ {
		acc := uint64(0)
		for j := 0; j < cols; j++ {
			acc = f.Add(acc, f.Mul(m[i*cols+j], x[j]))
		}
		y[i] = acc
	}
	return y
}

func randBase(rng *rand.Rand, t, s int) []uint64 {
	a := make([]uint64, t*s)
	for i := range a {
		a[i] = rng.Uint64() % testField.Q
	}
	return a
}

func randVec(rng *rand.Rand, n int) []uint64 {
	x := make([]uint64, n)
	for i := range x {
		x[i] = rng.Uint64() % testField.Q
	}
	return x
}

func TestTransformMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct{ t, s, k int }{
		{2, 2, 1}, {2, 2, 4}, {3, 2, 3}, {7, 4, 2}, {2, 2, 8}, {4, 3, 3},
	}
	for _, c := range cases {
		a := randBase(rng, c.t, c.s)
		x := randVec(rng, pow(c.s, c.k))
		got := Transform(testField, a, c.t, c.s, c.k, x)
		want := kroneckerDense(testField, a, c.t, c.s, c.k, x)
		if len(got) != len(want) {
			t.Fatalf("(%d,%d,%d): length %d want %d", c.t, c.s, c.k, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("(%d,%d,%d): index %d: %d want %d", c.t, c.s, c.k, i, got[i], want[i])
			}
		}
	}
}

func TestTransformIdentityBase(t *testing.T) {
	// A = I2: transform is the identity.
	x := []uint64{5, 6, 7, 8}
	got := Transform(testField, []uint64{1, 0, 0, 1}, 2, 2, 2, x)
	for i := range x {
		if got[i] != x[i] {
			t.Fatalf("identity transform changed input: %v", got)
		}
	}
}

func TestTransformPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"bad base":  func() { Transform(testField, []uint64{1}, 2, 2, 1, []uint64{1, 2}) },
		"bad input": func() { Transform(testField, []uint64{1, 0, 0, 1}, 2, 2, 2, []uint64{1, 2}) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("want panic")
				}
			}()
			fn()
		})
	}
}

func sparseFromDense(x []uint64) []Entry {
	var es []Entry
	for i, v := range x {
		if v != 0 {
			es = append(es, Entry{Index: i, Value: v})
		}
	}
	return es
}

func TestSplitSparseMatchesTransform(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cases := []struct{ t, s, k, ell, nnz int }{
		{2, 2, 5, 2, 6},
		{3, 2, 4, 2, 5},
		{7, 4, 2, 1, 9},
		{2, 2, 6, 0, 4},  // ell = 0: all outer
		{2, 2, 6, 6, 10}, // ell = k: plain Yates
	}
	for _, c := range cases {
		x := make([]uint64, pow(c.s, c.k))
		for _, i := range rng.Perm(len(x))[:c.nnz] {
			x[i] = 1 + rng.Uint64()%(testField.Q-1)
		}
		ss, err := NewSplitSparse(testField, randBase(rng, c.t, c.s), c.t, c.s, c.k, sparseFromDense(x), c.ell)
		if err != nil {
			t.Fatal(err)
		}
		want := Transform(testField, ss.a, c.t, c.s, c.k, x)
		got := ss.Dense()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("case %+v: index %d: %d want %d", c, i, got[i], want[i])
			}
		}
	}
}

func TestSplitSparseRejectsBadArgs(t *testing.T) {
	a := randBase(rand.New(rand.NewSource(3)), 2, 3)
	if _, err := NewSplitSparse(testField, a, 2, 3, 4, nil, 2); err == nil {
		t.Fatal("want error for t < s")
	}
	b := randBase(rand.New(rand.NewSource(3)), 3, 2)
	if _, err := NewSplitSparse(testField, b, 3, 2, 4, nil, 9); err == nil {
		t.Fatal("want error for ell > k")
	}
	if _, err := NewSplitSparse(testField, b, 3, 2, 2, []Entry{{Index: 99, Value: 1}}, 1); err == nil {
		t.Fatal("want error for out-of-range entry")
	}
}

func TestDefaultEll(t *testing.T) {
	tests := []struct{ t, k, nnz, want int }{
		{2, 10, 1, 0}, {2, 10, 2, 1}, {2, 10, 5, 3}, {2, 3, 1000, 3}, {7, 4, 40, 2},
	}
	for _, tt := range tests {
		if got := DefaultEll(tt.t, tt.k, tt.nnz); got != tt.want {
			t.Errorf("DefaultEll(%d,%d,%d) = %d, want %d", tt.t, tt.k, tt.nnz, got, tt.want)
		}
	}
}

func TestPartsAtPointOnGridMatchesParts(t *testing.T) {
	// Paper §3.3: evaluating the polynomial extension at z0 in [t^{k-ℓ}]
	// reproduces exactly the split/sparse parts.
	rng := rand.New(rand.NewSource(4))
	const tt, s, k, ell = 3, 2, 4, 2
	x := make([]uint64, pow(s, k))
	for _, i := range rng.Perm(len(x))[:5] {
		x[i] = 1 + rng.Uint64()%(testField.Q-1)
	}
	ss, err := NewSplitSparse(testField, randBase(rng, tt, s), tt, s, k, sparseFromDense(x), ell)
	if err != nil {
		t.Fatal(err)
	}
	for outer := 0; outer < ss.NumParts(); outer++ {
		want := ss.Part(outer)
		got := ss.PartsAtPoint(uint64(outer + 1))
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("outer %d entry %d: %d want %d", outer, i, got[i], want[i])
			}
		}
	}
}

func TestPartsAtPointIsLowDegreePolynomial(t *testing.T) {
	// Each coordinate of PartsAtPoint is a polynomial of degree
	// <= t^{k-ℓ}-1 in z0; check by Lagrange-extrapolating from the grid to
	// an off-grid point and comparing.
	rng := rand.New(rand.NewSource(5))
	const tt, s, k, ell = 2, 2, 5, 2
	f := testField
	x := make([]uint64, pow(s, k))
	for _, i := range rng.Perm(len(x))[:6] {
		x[i] = 1 + rng.Uint64()%(f.Q-1)
	}
	ss, err := NewSplitSparse(f, randBase(rng, tt, s), tt, s, k, sparseFromDense(x), ell)
	if err != nil {
		t.Fatal(err)
	}
	nParts := ss.NumParts()
	z0 := uint64(123456)
	got := ss.PartsAtPoint(z0)
	lam := f.LagrangeAtOneBased(nParts, z0)
	for coord := 0; coord < ss.PartSize(); coord++ {
		want := uint64(0)
		for o := 0; o < nParts; o++ {
			want = f.Add(want, f.Mul(ss.Part(o)[coord], lam[o]))
		}
		if got[coord] != want {
			t.Fatalf("coord %d: %d want %d", coord, got[coord], want)
		}
	}
}

func TestZetaTransform(t *testing.T) {
	// Over integers: vals[Y] must become Σ_{X⊆Y} original[X].
	n := 4
	vals := make([]uint64, 1<<n)
	orig := make([]uint64, 1<<n)
	rng := rand.New(rand.NewSource(6))
	for i := range vals {
		vals[i] = rng.Uint64() % 1000
		orig[i] = vals[i]
	}
	Zeta(n, vals, func(dst, src uint64) uint64 { return dst + src })
	for y := 0; y < 1<<n; y++ {
		want := uint64(0)
		for x := 0; x < 1<<n; x++ {
			if x&^y == 0 {
				want += orig[x]
			}
		}
		if vals[y] != want {
			t.Fatalf("zeta[%04b] = %d, want %d", y, vals[y], want)
		}
	}
}

func TestZetaPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Zeta(3, make([]uint64, 7), func(a, b uint64) uint64 { return a + b })
}

func BenchmarkTransform2x2x12(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randBase(rng, 2, 2)
	x := randVec(rng, 1<<12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Transform(testField, a, 2, 2, 12, x)
	}
}

func BenchmarkSplitSparsePart(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const tt, s, k = 7, 4, 5
	entries := make([]Entry, 200)
	for i := range entries {
		entries[i] = Entry{Index: rng.Intn(pow(s, k)), Value: 1 + rng.Uint64()%(testField.Q-1)}
	}
	ss, err := NewSplitSparse(testField, randBase(rng, tt, s), tt, s, k, entries, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ss.Part(i % ss.NumParts())
	}
}

func TestPartsEvaluatorMatchesPartsAtPoint(t *testing.T) {
	// The amortized evaluator must be bit-identical to the one-shot
	// PartsAtPoint everywhere: on the grid, off the grid, and at points
	// needing reduction mod q — that equality is what lets batch and
	// per-point protocol paths share one proof.
	rng := rand.New(rand.NewSource(6))
	cases := []struct{ t, s, k, ell, nnz int }{
		{2, 2, 5, 2, 6},
		{3, 2, 4, 2, 5},
		{7, 4, 2, 1, 9},
		{2, 2, 6, 0, 4},
	}
	for _, c := range cases {
		x := make([]uint64, pow(c.s, c.k))
		for _, i := range rng.Perm(len(x))[:c.nnz] {
			x[i] = 1 + rng.Uint64()%(testField.Q-1)
		}
		ss, err := NewSplitSparse(testField, randBase(rng, c.t, c.s), c.t, c.s, c.k, sparseFromDense(x), c.ell)
		if err != nil {
			t.Fatal(err)
		}
		pe := ss.NewPartsEvaluator()
		points := []uint64{0, 1, 2, uint64(ss.NumParts()), uint64(ss.NumParts()) + 1, testField.Q - 1, testField.Q + 5}
		for i := 0; i < 10; i++ {
			points = append(points, rng.Uint64()%(2*testField.Q))
		}
		for _, z0 := range points {
			want := ss.PartsAtPoint(z0)
			got := pe.At(z0)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("case %+v z0=%d entry %d: %d want %d", c, z0, i, got[i], want[i])
				}
			}
		}
	}
}
