package par

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestForChunksCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9} {
		restore := SetParallelism(workers)
		for _, n := range []int{0, 1, 2, 3, 7, 64, 1000} {
			hits := make([]int32, n)
			ForChunks(n, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("workers=%d n=%d: bad chunk [%d,%d)", workers, n, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
		restore()
	}
}

func TestForChunksSerialWhenParallelismOne(t *testing.T) {
	restore := SetParallelism(1)
	defer restore()
	calls := 0
	ForChunks(100, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 100 {
			t.Fatalf("expected single chunk [0,100), got [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("expected 1 serial call, got %d", calls)
	}
}

func TestForChunksNestedDoesNotDeadlock(t *testing.T) {
	restore := SetParallelism(4)
	defer restore()
	var total atomic.Int64
	ForChunks(8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ForChunks(8, func(lo2, hi2 int) {
				for j := lo2; j < hi2; j++ {
					ForChunks(8, func(lo3, hi3 int) {
						total.Add(int64(hi3 - lo3))
					})
				}
			})
		}
	})
	if got := total.Load(); got != 8*8*8 {
		t.Fatalf("nested ForChunks covered %d units, want %d", got, 8*8*8)
	}
}

func TestForChunksTokensReturned(t *testing.T) {
	restore := SetParallelism(4)
	defer restore()
	for round := 0; round < 50; round++ {
		ForChunks(16, func(lo, hi int) {})
	}
	if got := Parallelism(); got != 4 {
		t.Fatalf("Parallelism() = %d after repeated ForChunks, want 4", got)
	}
	// All three helper tokens must be back in the bucket.
	if free := len(cur.Load().ch); free != 3 {
		t.Fatalf("%d helper tokens free after ForChunks rounds, want 3", free)
	}
}

func TestDoRunsBoth(t *testing.T) {
	for _, workers := range []int{1, 2} {
		restore := SetParallelism(workers)
		var a, b atomic.Bool
		Do(func() { a.Store(true) }, func() { b.Store(true) })
		if !a.Load() || !b.Load() {
			t.Fatalf("workers=%d: Do skipped a branch (a=%v b=%v)", workers, a.Load(), b.Load())
		}
		restore()
	}
}

func TestDoTokensReturned(t *testing.T) {
	restore := SetParallelism(2)
	defer restore()
	for round := 0; round < 50; round++ {
		Do(func() {}, func() {})
	}
	if free := len(cur.Load().ch); free != 1 {
		t.Fatalf("%d helper tokens free after Do rounds, want 1", free)
	}
}

func TestConcurrentForChunksFromManyGoroutines(t *testing.T) {
	restore := SetParallelism(4)
	defer restore()
	var wg sync.WaitGroup
	var total atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 20; round++ {
				ForChunks(100, func(lo, hi int) {
					total.Add(int64(hi - lo))
				})
			}
		}()
	}
	wg.Wait()
	if got := total.Load(); got != 8*20*100 {
		t.Fatalf("covered %d units, want %d", got, 8*20*100)
	}
}
