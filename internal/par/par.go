// Package par provides small-grain data parallelism for the arithmetic
// kernels. It sits below internal/poly and internal/rs, which cannot use
// core.Pool (core imports rs imports poly), and which may already be
// running *inside* a Pool worker — so the primitives here must never
// block waiting for capacity.
//
// The design is a process-wide bucket of "helper" tokens, sized
// GOMAXPROCS-1 (the caller always counts as one worker). ForChunks and
// Do acquire helpers non-blockingly: when the bucket is empty — one CPU,
// or every core already busy in an enclosing parallel region — they
// degrade to plain serial execution on the caller's goroutine. That
// makes nesting (a parallel EvalMany inside a parallel decode inside a
// Pool task) deadlock-free by construction and keeps total goroutine
// count bounded by GOMAXPROCS regardless of call depth.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// bucket holds the helper tokens; capacity is parallelism-1.
type bucket struct {
	ch chan struct{}
}

var cur atomic.Pointer[bucket]

func init() {
	cur.Store(newBucket(runtime.GOMAXPROCS(0)))
}

func newBucket(workers int) *bucket {
	if workers < 1 {
		workers = 1
	}
	b := &bucket{ch: make(chan struct{}, workers-1)}
	for i := 0; i < workers-1; i++ {
		b.ch <- struct{}{}
	}
	return b
}

// SetParallelism replaces the helper bucket with one sized for the given
// worker count (caller included; 1 forces fully serial execution) and
// returns a restore function. It is a test knob: serial-vs-parallel
// equivalence tests pin both sides with it. Regions already running keep
// the bucket they acquired from, so a mid-flight swap is safe.
func SetParallelism(workers int) func() {
	prev := cur.Load()
	cur.Store(newBucket(workers))
	return func() { cur.Store(prev) }
}

// Parallelism returns the current worker count (helpers + the caller).
// Kernels use it to skip splitting overhead when it reports 1.
func Parallelism() int {
	return cap(cur.Load().ch) + 1
}

// grab acquires up to want helper tokens without blocking and returns
// how many it got.
func grab(b *bucket, want int) int {
	got := 0
	for got < want {
		select {
		case <-b.ch:
			got++
		default:
			return got
		}
	}
	return got
}

// ForChunks runs body over [0, n) split into contiguous chunks, one per
// available worker (helpers acquired non-blockingly, plus the caller).
// body must be safe to run concurrently on disjoint ranges. With no free
// helpers it is exactly body(0, n) on the calling goroutine. ForChunks
// returns when every chunk has finished.
func ForChunks(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	b := cur.Load()
	want := cap(b.ch)
	if n-1 < want {
		want = n - 1
	}
	helpers := grab(b, want)
	if helpers == 0 {
		body(0, n)
		return
	}
	workers := helpers + 1
	var wg sync.WaitGroup
	wg.Add(helpers)
	for w := 1; w <= helpers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		go func(lo, hi int) {
			body(lo, hi)
			b.ch <- struct{}{}
			wg.Done()
		}(lo, hi)
	}
	body(0, n/workers)
	wg.Wait()
}

// Do runs f and g, concurrently when a helper token is free and serially
// (f then g) otherwise. It returns when both have finished.
func Do(f, g func()) {
	b := cur.Load()
	if grab(b, 1) == 0 {
		f()
		g()
		return
	}
	done := make(chan struct{})
	go func() {
		f()
		b.ch <- struct{}{}
		close(done)
	}()
	g()
	<-done
}
