package cnfsat

import (
	"context"
	"math/big"
	"testing"

	"camelot/internal/core"
	"camelot/internal/ff"
)

func TestCountBruteKnown(t *testing.T) {
	tests := []struct {
		name string
		f    *Formula
		want int64
	}{
		// (x1 ∨ x2): 3 of 4 assignments.
		{"or", &Formula{V: 2, Clauses: [][]int{{1, 2}}}, 3},
		// (x1) ∧ (¬x1): unsatisfiable.
		{"contradiction", &Formula{V: 2, Clauses: [][]int{{1}, {-1}}}, 0},
		// (x1 ∨ ¬x2) ∧ (x2 ∨ x3): count by hand = 4.
		{"mixed", &Formula{V: 3, Clauses: [][]int{{1, -2}, {2, 3}}}, 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := CountBrute(tt.f); got.Cmp(big.NewInt(tt.want)) != 0 {
				t.Fatalf("got %v, want %d", got, tt.want)
			}
		})
	}
}

func TestCamelotMatchesBrute(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		f := RandomFormula(8, 10, 3, seed)
		want := CountBrute(f)
		p, err := NewProblem(f)
		if err != nil {
			t.Fatal(err)
		}
		proof, rep, err := core.Run(context.Background(), p, core.Options{Nodes: 4, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Verified {
			t.Fatal("not verified")
		}
		got, err := p.CountSolutions(proof)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("seed %d: camelot=%v brute=%v", seed, got, want)
		}
	}
}

func TestCamelotOddVariableCount(t *testing.T) {
	f := RandomFormula(7, 8, 2, 3)
	want := CountBrute(f)
	p, err := NewProblem(f)
	if err != nil {
		t.Fatal(err)
	}
	proof, _, err := core.Run(context.Background(), p, core.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.CountSolutions(proof)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(want) != 0 {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestCamelotWithByzantineFaults(t *testing.T) {
	f := RandomFormula(6, 6, 3, 9)
	want := CountBrute(f)
	p, err := NewProblem(f)
	if err != nil {
		t.Fatal(err)
	}
	d := p.Degree()
	k := 6
	ft := 0
	for {
		e := d + 1 + 2*ft
		if ft >= (e+k-1)/k {
			break
		}
		ft++
	}
	proof, rep, err := core.Run(context.Background(), p, core.Options{
		Nodes: k, FaultTolerance: ft, Adversary: core.NewEquivocatingNodes(1, 4), Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.CountSolutions(proof)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(want) != 0 {
		t.Fatalf("got %v, want %v", got, want)
	}
	for _, s := range rep.SuspectNodes {
		if s != 4 {
			t.Fatalf("honest node %d implicated", s)
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewProblem(&Formula{V: 1, Clauses: [][]int{{1}}}); err == nil {
		t.Fatal("v=1 must be rejected")
	}
	if _, err := NewProblem(&Formula{V: 3, Clauses: nil}); err == nil {
		t.Fatal("no clauses must be rejected")
	}
	if _, err := NewProblem(&Formula{V: 3, Clauses: [][]int{{}}}); err == nil {
		t.Fatal("empty clause must be rejected")
	}
	if _, err := NewProblem(&Formula{V: 3, Clauses: [][]int{{5}}}); err == nil {
		t.Fatal("out-of-range literal must be rejected")
	}
	if _, err := NewProblem(&Formula{V: 60, Clauses: [][]int{{1}}}); err == nil {
		t.Fatal("too many variables must be rejected")
	}
}

func TestTautologyAndFullCube(t *testing.T) {
	// (x1 ∨ ¬x1): all 2^4 assignments satisfy.
	f := &Formula{V: 4, Clauses: [][]int{{1, -1}}}
	p, err := NewProblem(f)
	if err != nil {
		t.Fatal(err)
	}
	proof, _, err := core.Run(context.Background(), p, core.Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.CountSolutions(proof)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewInt(16)) != 0 {
		t.Fatalf("tautology count = %v, want 16", got)
	}
}

func TestEvaluateBlockMatchesEvaluate(t *testing.T) {
	f := RandomFormula(9, 12, 3, 5)
	p, err := NewProblem(f)
	if err != nil {
		t.Fatal(err)
	}
	q := uint64(1048583)
	fld, err := ff.New(q)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := p.Compile(fld)
	if err != nil {
		t.Fatal(err)
	}
	xs := []uint64{0, 1, 7, 100, 54321}
	rows, err := pl.EvaluateBlock(xs)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		want, err := p.Evaluate(q, x)
		if err != nil {
			t.Fatal(err)
		}
		if rows[i][0] != want[0] {
			t.Fatalf("block P(%d) = %d, point path %d", x, rows[i][0], want[0])
		}
	}
}
