// Package cnfsat implements the paper's Theorem 8(1): a Camelot algorithm
// counting CNF satisfying assignments with proof size and time O*(2^{v/2}).
// The route (Appendix A.2) splits the variables in half and reduces to
// counting orthogonal Boolean vector pairs: row i of A marks the clauses
// a first-half assignment leaves entirely unsatisfied, row k of B does
// the same for second-half assignments, and (i, k) satisfies the formula
// iff the rows are orthogonal.
package cnfsat

import (
	"fmt"
	"math/big"
	"math/rand"

	"camelot/internal/core"
	"camelot/internal/ff"
	"camelot/internal/orthvec"
	"camelot/internal/plan"
)

// Formula is a CNF formula. Literals are nonzero integers: +v means
// variable v, -v its negation, v in 1..V.
type Formula struct {
	V       int
	Clauses [][]int
}

// Validate checks literal ranges and non-empty clauses.
func (f *Formula) Validate() error {
	if f.V < 2 {
		return fmt.Errorf("cnfsat: need at least 2 variables, got %d", f.V)
	}
	if len(f.Clauses) == 0 {
		return fmt.Errorf("cnfsat: formula has no clauses")
	}
	for ci, cl := range f.Clauses {
		if len(cl) == 0 {
			return fmt.Errorf("cnfsat: clause %d is empty", ci)
		}
		for _, lit := range cl {
			v := lit
			if v < 0 {
				v = -v
			}
			if v < 1 || v > f.V {
				return fmt.Errorf("cnfsat: clause %d has literal %d out of range", ci, lit)
			}
		}
	}
	return nil
}

// Problem is the Camelot #CNFSAT problem: an orthogonal-vectors problem
// over the two half-assignment matrices, to which it delegates.
type Problem struct {
	ov      *orthvec.OVProblem
	formula *Formula
	v1, v2  int
}

var (
	_ core.Problem         = (*Problem)(nil)
	_ core.CompiledProblem = (*Problem)(nil)
)

// NewProblem builds the Theorem 8(1) problem. The first ⌈v/2⌉ variables
// form the A side, the rest the B side.
func NewProblem(f *Formula) (*Problem, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	v1 := (f.V + 1) / 2
	v2 := f.V - v1
	if v1 > 24 || v2 > 24 {
		return nil, fmt.Errorf("cnfsat: half-assignment table 2^%d too large", v1)
	}
	m := len(f.Clauses)
	a := make([]uint8, (1<<uint(v1))*m)
	b := make([]uint8, (1<<uint(v2))*m)
	for i := 0; i < 1<<uint(v1); i++ {
		for j, cl := range f.Clauses {
			if satisfiesNoLiteral(cl, i, 1, v1) {
				a[i*m+j] = 1
			}
		}
	}
	for k := 0; k < 1<<uint(v2); k++ {
		for j, cl := range f.Clauses {
			if satisfiesNoLiteral(cl, k, v1+1, f.V) {
				b[k*m+j] = 1
			}
		}
	}
	am, err := orthvec.NewBoolMatrix(1<<uint(v1), m, a)
	if err != nil {
		return nil, err
	}
	bm, err := orthvec.NewBoolMatrix(1<<uint(v2), m, b)
	if err != nil {
		return nil, err
	}
	ov, err := orthvec.NewOVProblem(am, bm)
	if err != nil {
		return nil, err
	}
	return &Problem{ov: ov, formula: f, v1: v1, v2: v2}, nil
}

// Width implements core.Problem.
func (p *Problem) Width() int { return p.ov.Width() }

// Degree implements core.Problem.
func (p *Problem) Degree() int { return p.ov.Degree() }

// MinModulus implements core.Problem.
func (p *Problem) MinModulus() uint64 { return p.ov.MinModulus() }

// NumPrimes implements core.Problem.
func (p *Problem) NumPrimes() int { return p.ov.NumPrimes() }

// Evaluate implements core.Problem.
func (p *Problem) Evaluate(q, x0 uint64) ([]uint64, error) { return p.ov.Evaluate(q, x0) }

// Compile implements plan.Compiler, inheriting the orthogonal vectors
// compiled path: the half-assignment matrices are large (2^{v/2} rows),
// so amortizing the per-prime Lagrange setup matters here most.
func (p *Problem) Compile(f ff.Field) (plan.Plan, error) {
	return p.ov.Compile(f)
}

// satisfiesNoLiteral reports whether the assignment (bit b of mask =
// value of variable lo+b) satisfies none of the clause's literals in the
// variable window [lo, hi].
func satisfiesNoLiteral(clause []int, mask int, lo, hi int) bool {
	for _, lit := range clause {
		v := lit
		if v < 0 {
			v = -v
		}
		if v < lo || v > hi {
			continue
		}
		bit := (mask >> uint(v-lo)) & 1
		if (lit > 0 && bit == 1) || (lit < 0 && bit == 0) {
			return false
		}
	}
	return true
}

// Name implements core.Problem, overriding the OV name.
func (p *Problem) Name() string {
	return fmt.Sprintf("#cnfsat(v=%d,m=%d)", p.formula.V, len(p.formula.Clauses))
}

// CountSolutions recovers #SAT: the pair (i, k) contributes iff row i of
// A and row k of B are orthogonal (no clause unsatisfied by both
// halves... i.e. every clause satisfied), so #SAT = Σ_i c_i.
func (p *Problem) CountSolutions(proof *core.Proof) (*big.Int, error) {
	return p.ov.TotalPairs(proof)
}

// CountBrute enumerates all 2^v assignments — the ground truth for
// small formulas.
func CountBrute(f *Formula) *big.Int {
	count := big.NewInt(0)
	one := big.NewInt(1)
	for mask := 0; mask < 1<<uint(f.V); mask++ {
		sat := true
		for _, cl := range f.Clauses {
			clauseSat := false
			for _, lit := range cl {
				v := lit
				if v < 0 {
					v = -v
				}
				bit := (mask >> uint(v-1)) & 1
				if (lit > 0 && bit == 1) || (lit < 0 && bit == 0) {
					clauseSat = true
					break
				}
			}
			if !clauseSat {
				sat = false
				break
			}
		}
		if sat {
			count.Add(count, one)
		}
	}
	return count
}

// RandomFormula draws a uniform k-CNF with the given seed-driven clause
// structure, for experiments.
func RandomFormula(v, m, k int, seed int64) *Formula {
	rng := newRng(seed)
	f := &Formula{V: v, Clauses: make([][]int, m)}
	for j := range f.Clauses {
		cl := make([]int, k)
		for i := range cl {
			lit := rng.Intn(v) + 1
			if rng.Intn(2) == 1 {
				lit = -lit
			}
			cl[i] = lit
		}
		f.Clauses[j] = cl
	}
	return f
}

// newRng isolates the math/rand dependency.
func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
