package bitset

import (
	"testing"
)

func TestBasicOps(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 63, 64, 129} {
		s.Add(i)
	}
	if got := s.Count(); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
	for _, i := range []int{0, 63, 64, 129} {
		if !s.Contains(i) {
			t.Fatalf("missing %d", i)
		}
	}
	if s.Contains(1) || s.Contains(128) {
		t.Fatal("contains spurious element")
	}
	s.Remove(64)
	if s.Contains(64) || s.Count() != 3 {
		t.Fatal("remove failed")
	}
}

func TestForEachOrder(t *testing.T) {
	s := New(200)
	want := []int{3, 64, 65, 190}
	for _, i := range want {
		s.Add(i)
	}
	got := s.Elements()
	if len(got) != len(want) {
		t.Fatalf("Elements = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Elements = %v, want %v", got, want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	s := New(10)
	s.Add(3)
	c := s.Clone()
	c.Add(5)
	if s.Contains(5) {
		t.Fatal("clone shares storage with original")
	}
	if !c.Contains(3) {
		t.Fatal("clone missing original element")
	}
}

func TestIntersectsAndContainsAll(t *testing.T) {
	a := FromMask(10, 0b1011)
	b := FromMask(10, 0b0010)
	c := FromMask(10, 0b0100)
	if !a.IntersectsWith(b) {
		t.Fatal("a should intersect b")
	}
	if a.IntersectsWith(c) {
		t.Fatal("a should not intersect c")
	}
	if !a.ContainsAll(b) {
		t.Fatal("b ⊆ a expected")
	}
	if a.ContainsAll(c) {
		t.Fatal("c ⊄ a expected")
	}
}

func TestFromMaskAndWord(t *testing.T) {
	s := FromMask(8, 0b10110001)
	if s.Word(0) != 0b10110001 {
		t.Fatalf("Word(0) = %b", s.Word(0))
	}
	if s.Word(5) != 0 {
		t.Fatal("out-of-range word must be 0")
	}
	if s.Count() != 4 {
		t.Fatalf("Count = %d", s.Count())
	}
}

func TestSubsetSumIter(t *testing.T) {
	var subs []uint64
	SubsetSumIter(0b101, func(sub uint64) { subs = append(subs, sub) })
	want := []uint64{0b000, 0b001, 0b100, 0b101}
	if len(subs) != len(want) {
		t.Fatalf("got %v", subs)
	}
	for i := range want {
		if subs[i] != want[i] {
			t.Fatalf("got %v, want %v", subs, want)
		}
	}
	// Empty mask iterates exactly once.
	n := 0
	SubsetSumIter(0, func(uint64) { n++ })
	if n != 1 {
		t.Fatalf("empty mask iterated %d times", n)
	}
}
