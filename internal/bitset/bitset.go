// Package bitset provides a compact fixed-capacity bit set used for graph
// adjacency rows and subset enumeration throughout the exponential-time
// Camelot instantiations (independent sets, set families, vertex splits).
package bitset

import "math/bits"

// Set is a bit set over a fixed universe. The zero value is an empty set
// of capacity zero; construct with New for a given capacity.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set over a universe of n elements.
func New(n int) Set {
	return Set{words: make([]uint64, (n+63)/64), n: n}
}

// FromMask returns a set over n <= 64 elements initialized from mask bits.
func FromMask(n int, mask uint64) Set {
	s := New(n)
	if len(s.words) > 0 {
		s.words[0] = mask
	}
	return s
}

// Len returns the universe size.
func (s Set) Len() int { return s.n }

// Add inserts element i.
func (s Set) Add(i int) { s.words[i/64] |= 1 << uint(i%64) }

// Remove deletes element i.
func (s Set) Remove(i int) { s.words[i/64] &^= 1 << uint(i%64) }

// Contains reports whether i is in the set.
func (s Set) Contains(i int) bool { return s.words[i/64]&(1<<uint(i%64)) != 0 }

// Count returns the cardinality.
func (s Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns an independent copy.
func (s Set) Clone() Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return Set{words: w, n: s.n}
}

// IntersectsWith reports whether s and t share an element.
func (s Set) IntersectsWith(t Set) bool {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// ContainsAll reports whether t ⊆ s.
func (s Set) ContainsAll(t Set) bool {
	for i, w := range t.words {
		if i >= len(s.words) {
			if w != 0 {
				return false
			}
			continue
		}
		if w&^s.words[i] != 0 {
			return false
		}
	}
	return true
}

// ForEach calls fn for every element in ascending order.
func (s Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*64 + b)
			w &= w - 1
		}
	}
}

// Elements returns the members in ascending order.
func (s Set) Elements() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// Word returns the w-th 64-bit word (for n <= 64 callers use Word(0)).
func (s Set) Word(w int) uint64 {
	if w >= len(s.words) {
		return 0
	}
	return s.words[w]
}

// SubsetSumIter iterates, in increasing mask order, over all submasks of
// mask (including 0 and mask itself), calling fn for each. It exists for
// callers that enumerate sub-families of a ground set encoded in 64 bits.
func SubsetSumIter(mask uint64, fn func(sub uint64)) {
	sub := uint64(0)
	for {
		fn(sub)
		if sub == mask {
			return
		}
		sub = (sub - mask) & mask
	}
}
