package setcover

import (
	"context"
	"math/big"
	"math/rand"
	"testing"

	"camelot/internal/core"
	"camelot/internal/ff"
)

// randomFamily draws nonempty subsets of [n] without repetition concerns.
func randomFamily(rng *rand.Rand, n, size int) []uint64 {
	full := uint64(1)<<uint(n) - 1
	fam := make([]uint64, 0, size)
	for len(fam) < size {
		x := rng.Uint64() & full
		if x != 0 {
			fam = append(fam, x)
		}
	}
	return fam
}

func TestCountCoversIEMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		n := 4 + rng.Intn(3)
		fam := randomFamily(rng, n, 3+rng.Intn(4))
		for _, tt := range []int{1, 2, 3} {
			want := CountCoversBrute(fam, n, tt)
			got := CountCoversIE(fam, n, tt)
			if got.Cmp(want) != 0 {
				t.Fatalf("n=%d t=%d: IE=%v brute=%v", n, tt, got, want)
			}
		}
	}
}

func TestExactCoverCamelotMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 3; trial++ {
		n := 6
		fam := randomFamily(rng, n, 8)
		// Add singletons so some exact covers exist.
		for v := 0; v < n; v++ {
			fam = append(fam, 1<<uint(v))
		}
		for _, tt := range []int{2, 3, 4} {
			want := CountExactCoversBrute(fam, n, tt)
			p, err := NewExactCoverProblem(fam, n, tt)
			if err != nil {
				t.Fatal(err)
			}
			proof, rep, err := core.Run(context.Background(), p, core.Options{Nodes: 3, Seed: int64(trial)})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Verified {
				t.Fatal("not verified")
			}
			got, err := p.RecoverTuples(proof)
			if err != nil {
				t.Fatal(err)
			}
			if got.Cmp(want) != 0 {
				t.Fatalf("trial %d n=%d t=%d: camelot=%v brute=%v", trial, n, tt, got, want)
			}
		}
	}
}

func TestExactCoverPartitionsOfCompleteSingletons(t *testing.T) {
	// Family = all singletons of [n]: exactly one partition into n parts,
	// n! ordered tuples.
	const n = 5
	fam := make([]uint64, n)
	for v := 0; v < n; v++ {
		fam[v] = 1 << uint(v)
	}
	p, err := NewExactCoverProblem(fam, n, n)
	if err != nil {
		t.Fatal(err)
	}
	proof, _, err := core.Run(context.Background(), p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := p.RecoverPartitions(proof)
	if err != nil {
		t.Fatal(err)
	}
	if parts.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("partitions = %v, want 1", parts)
	}
	tuples, err := p.RecoverTuples(proof)
	if err != nil {
		t.Fatal(err)
	}
	if tuples.Cmp(big.NewInt(120)) != 0 {
		t.Fatalf("tuples = %v, want 5! = 120", tuples)
	}
}

func TestCoverCamelotMatchesIE(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 6
	fam := randomFamily(rng, n, 5)
	for _, tt := range []int{1, 2, 3} {
		want := CountCoversIE(fam, n, tt)
		p, err := NewCoverProblem(fam, n, tt)
		if err != nil {
			t.Fatal(err)
		}
		proof, rep, err := core.Run(context.Background(), p, core.Options{Nodes: 4, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Verified {
			t.Fatal("not verified")
		}
		got, err := p.RecoverCovers(proof)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("t=%d: camelot=%v IE=%v", tt, got, want)
		}
	}
}

// TestEvaluateBlockMatchesEvaluate pins the plan.Plan contract: the
// compiled EvaluateBlock must reproduce Evaluate bit-for-bit, including
// at grid points (indicator-vector Lagrange basis), points beyond the
// grid, and families with duplicate or overlapping sets.
func TestEvaluateBlockMatchesEvaluate(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	fams := map[string][]uint64{
		"random7":   randomFamily(rng, 7, 6),
		"dupes5":    {0b10101, 0b10101, 0b00011, 0b11000, 0b00100},
		"single6":   {0b111111},
		"overlaps6": randomFamily(rng, 6, 10),
	}
	for name, fam := range fams {
		n := 7
		if name != "random7" {
			n = 6
			if name == "dupes5" {
				n = 5
			}
		}
		for _, tt := range []int{1, 3} {
			p, err := NewCoverProblem(fam, n, tt)
			if err != nil {
				t.Fatal(err)
			}
			q := ff.NextPrime(p.MinModulus())
			f, err := ff.New(q)
			if err != nil {
				t.Fatal(err)
			}
			pl, err := p.Compile(f)
			if err != nil {
				t.Fatalf("%s t=%d: Compile: %v", name, tt, err)
			}
			xs := []uint64{0, 1, 2, uint64(1)<<uint(p.n1) - 1, 1 << uint(p.n1), 777, q - 1}
			rows, err := pl.EvaluateBlock(xs)
			if err != nil {
				t.Fatalf("%s t=%d: EvaluateBlock: %v", name, tt, err)
			}
			if len(rows) != len(xs) {
				t.Fatalf("%s t=%d: got %d rows, want %d", name, tt, len(rows), len(xs))
			}
			for i, x0 := range xs {
				want, err := p.Evaluate(q, x0)
				if err != nil {
					t.Fatalf("%s t=%d: Evaluate(%d): %v", name, tt, x0, err)
				}
				if len(rows[i]) != len(want) || rows[i][0] != want[0] {
					t.Fatalf("%s t=%d x0=%d: block=%v point=%v", name, tt, x0, rows[i], want)
				}
			}
		}
	}
}

func TestCoverCamelotWithByzantineFault(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 5
	fam := randomFamily(rng, n, 4)
	p, err := NewCoverProblem(fam, n, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Cover a whole node's block: e = d+1+2f over 8 nodes.
	d := p.Degree()
	f := 0
	for {
		e := d + 1 + 2*f
		if f >= (e+7)/8 {
			break
		}
		f++
	}
	proof, rep, err := core.Run(context.Background(), p, core.Options{
		Nodes: 8, FaultTolerance: f, Adversary: core.NewLyingNodes(1, 6), Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.RecoverCovers(proof)
	if err != nil {
		t.Fatal(err)
	}
	if want := CountCoversIE(fam, n, 2); got.Cmp(want) != 0 {
		t.Fatalf("got %v, want %v", got, want)
	}
	for _, s := range rep.SuspectNodes {
		if s != 6 {
			t.Fatalf("honest node %d implicated", s)
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewExactCoverProblem([]uint64{0b11, 0}, 2, 1); err == nil {
		t.Fatal("empty set must be rejected for exact covers")
	}
	if _, err := NewExactCoverProblem([]uint64{0b111}, 2, 1); err == nil {
		t.Fatal("set outside universe must be rejected")
	}
	if _, err := NewExactCoverProblem([]uint64{0b1}, 1, 5); err == nil {
		t.Fatal("t > n must be rejected")
	}
	if _, err := NewCoverProblem([]uint64{0b1}, 1, 0); err == nil {
		t.Fatal("t = 0 must be rejected")
	}
	if _, err := NewCoverProblem([]uint64{0b1}, 70, 1); err == nil {
		t.Fatal("n > 62 must be rejected")
	}
}

func TestCoverEmptyFamily(t *testing.T) {
	p, err := NewCoverProblem(nil, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	proof, _, err := core.Run(context.Background(), p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.RecoverCovers(proof)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sign() != 0 {
		t.Fatalf("empty family covers = %v, want 0", got)
	}
}
