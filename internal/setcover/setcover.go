// Package setcover implements the paper's set-cover counting results:
// Theorem 9 (number of t-element set covers from a small family, via the
// inclusion–exclusion proof polynomial of Appendix A.6) and Theorem 10
// (number of t-element exact covers / set partitions from a family of up
// to O*(2^{n/2}) sets, via the §7/§8 partitioning template).
package setcover

import (
	"fmt"
	"math/big"
	"math/bits"

	"camelot/internal/bipoly"
	"camelot/internal/core"
	"camelot/internal/crt"
	"camelot/internal/ff"
	"camelot/internal/partition"
	"camelot/internal/plan"
	"camelot/internal/yates"
)

// validateFamily checks the family masks fit the universe and, when
// forbidEmpty is set, excludes the empty set (degenerate for exact
// covers, paper footnote 20).
func validateFamily(family []uint64, n int, forbidEmpty bool) error {
	if n < 1 || n > 62 {
		return fmt.Errorf("setcover: universe size %d out of range [1, 62]", n)
	}
	full := uint64(1)<<uint(n) - 1
	for i, x := range family {
		if x&^full != 0 {
			return fmt.Errorf("setcover: set %d (%b) leaves the universe", i, x)
		}
		if forbidEmpty && x == 0 {
			return fmt.Errorf("setcover: set %d is empty", i)
		}
	}
	return nil
}

// --- Theorem 10: exact covers via the partitioning template -----------------

// ExactCoverProblem counts ordered t-tuples (X_1..X_t) of family members
// that partition the universe (each element covered exactly once). The
// number of unordered set partitions is the tuple count divided by t!.
type ExactCoverProblem struct {
	family []uint64
	n, t   int
	split  partition.Split
}

var _ core.Problem = (*ExactCoverProblem)(nil)
var _ core.CompiledProblem = (*ExactCoverProblem)(nil)

// NewExactCoverProblem builds the Theorem 10 Camelot problem.
func NewExactCoverProblem(family []uint64, n, t int) (*ExactCoverProblem, error) {
	if err := validateFamily(family, n, true); err != nil {
		return nil, err
	}
	if t < 1 || t > n {
		return nil, fmt.Errorf("setcover: t = %d out of range [1, %d]", t, n)
	}
	return &ExactCoverProblem{family: family, n: n, t: t, split: partition.Balanced(n)}, nil
}

// Name implements core.Problem.
func (p *ExactCoverProblem) Name() string {
	return fmt.Sprintf("exact-covers(n=%d,|F|=%d,t=%d)", p.n, len(p.family), p.t)
}

// Width implements core.Problem.
func (p *ExactCoverProblem) Width() int { return 1 }

// Degree implements core.Problem: |B|·2^{|B|-1} per §7.2.
func (p *ExactCoverProblem) Degree() int { return p.split.Degree() }

// MinModulus implements core.Problem: above the proof degree, floored
// at 2^20 to keep the CRT prime count low.
func (p *ExactCoverProblem) MinModulus() uint64 {
	min := uint64(p.split.Degree()) + 2
	if min < 1<<20 {
		min = 1 << 20
	}
	return min
}

// NumPrimes implements core.Problem: tuple count <= |F|^t.
func (p *ExactCoverProblem) NumPrimes() int {
	bound := new(big.Int).Exp(big.NewInt(int64(len(p.family))+1), big.NewInt(int64(p.t)), nil)
	return numPrimesFor(bound, p.MinModulus())
}

// nodeG computes the §8.2 node function: scatter every family set into
// g0[X∩E] with its bivariate weight and Kronecker x0-power, then a zeta
// transform over the E-lattice. Time O*(2^{|E|} + |F|).
func (p *ExactCoverProblem) nodeG(f ff.Field, x0 uint64) []bipoly.Poly {
	ring := p.split.Ring(f)
	ne := len(p.split.E)
	eFull := uint64(1)<<uint(ne) - 1
	xp := p.split.NewXPowers(f, x0)
	g := make([]bipoly.Poly, 1<<uint(ne))
	for _, x := range p.family {
		eMask := x & eFull
		bMask := x >> uint(ne)
		mono := ring.Monomial(popcount(eMask), popcount(bMask), xp.ForMask(bMask))
		g[eMask] = ring.AddInPlace(g[eMask], mono)
	}
	yates.Zeta(ne, g, ring.AddInPlace)
	return g
}

// Evaluate implements core.Problem.
func (p *ExactCoverProblem) Evaluate(q, x0 uint64) ([]uint64, error) {
	f, err := ff.New(q)
	if err != nil {
		return nil, err
	}
	g := p.nodeG(f, x0)
	vals, err := p.split.EvaluateAll(p.split.Ring(f), g, p.t)
	if err != nil {
		return nil, err
	}
	return []uint64{vals[p.t-1]}, nil
}

// exactCompiled is the ExactCoverProblem Plan for one prime: the field
// and ring are bound once; every per-point structure (x0 powers, the
// scatter lattice) is allocated inside EvaluateBlock.
type exactCompiled struct {
	p    *ExactCoverProblem
	f    ff.Field
	ring bipoly.Ring
}

// Compile implements plan.Compiler: the ring construction is hoisted;
// the arithmetic per point is identical to Evaluate, so rows agree bit
// for bit.
func (p *ExactCoverProblem) Compile(f ff.Field) (plan.Plan, error) {
	return &exactCompiled{p: p, f: f, ring: p.split.Ring(f)}, nil
}

// EvaluateBlock implements plan.Plan.
func (c *exactCompiled) EvaluateBlock(xs []uint64) ([][]uint64, error) {
	p := c.p
	ne := len(p.split.E)
	eFull := uint64(1)<<uint(ne) - 1
	rows := make([][]uint64, len(xs))
	for i, x0 := range xs {
		xp := p.split.NewXPowers(c.f, x0)
		g := make([]bipoly.Poly, 1<<uint(ne))
		for _, x := range p.family {
			eMask := x & eFull
			bMask := x >> uint(ne)
			mono := c.ring.Monomial(popcount(eMask), popcount(bMask), xp.ForMask(bMask))
			g[eMask] = c.ring.AddInPlace(g[eMask], mono)
		}
		yates.Zeta(ne, g, c.ring.AddInPlace)
		vals, err := p.split.EvaluateAll(c.ring, g, p.t)
		if err != nil {
			return nil, err
		}
		rows[i] = []uint64{vals[p.t-1]}
	}
	return rows, nil
}

// RecoverTuples extracts the ordered-tuple count: it is the coefficient
// p_{2^{|B|}-1} of the decoded proof, CRT'd over the primes.
func (p *ExactCoverProblem) RecoverTuples(proof *core.Proof) (*big.Int, error) {
	idx := p.split.TargetIndex()
	residues := make([]uint64, len(proof.Primes))
	for i, q := range proof.Primes {
		residues[i] = proof.Coeffs[q][0][idx]
	}
	return crt.Reconstruct(residues, proof.Primes)
}

// RecoverPartitions divides the tuple count by t!.
func (p *ExactCoverProblem) RecoverPartitions(proof *core.Proof) (*big.Int, error) {
	tuples, err := p.RecoverTuples(proof)
	if err != nil {
		return nil, err
	}
	fact := new(big.Int).MulRange(1, int64(p.t))
	quo, rem := new(big.Int).QuoRem(tuples, fact, new(big.Int))
	if rem.Sign() != 0 {
		return nil, fmt.Errorf("setcover: tuple count %v not divisible by %d! — proof inconsistent", tuples, p.t)
	}
	return quo, nil
}

// --- Theorem 9: covers via inclusion–exclusion (Appendix A.6) ---------------

// CoverProblem counts ordered t-tuples (X_1..X_t) of family members whose
// union is the universe (elements may be covered repeatedly). The proof
// polynomial is P(x) = F_t(D(x)) of eq. (45)/(46): D(x) sweeps the
// Boolean cube of the first half of the inclusion–exclusion variables.
type CoverProblem struct {
	family []uint64
	n, t   int
	// n1 is the number of D(x)-interpolated variables (2^{n1} grid).
	n1, n2 int
	// suffixes is the modulus- and point-independent suffix plan used by
	// the compiled block path, built once at construction; Evaluate
	// stays self-contained.
	suffixes coverPlan
}

// coverPlan is the x0- and q-independent structure of the 2^{n2} suffix
// sweep in eq. (46): for each assignment of the last n2 indicator
// variables, only family sets whose high part is contained in the suffix
// contribute a nonzero product, and the suffix's own (1-2y_j) factors
// collapse to (-1)^popcount(suffix).
type coverPlan struct {
	// prefixes[suffix] lists, in family order, the low-n1-bit masks of
	// the sets surviving that suffix.
	prefixes [][]uint64
	// negate[suffix] reports whether popcount(suffix) is odd, i.e.
	// whether the suffix flips the sign of the term.
	negate []bool
}

func (p *CoverProblem) buildPlan() {
	nSuffix := 1 << uint(p.n2)
	prefixes := make([][]uint64, nSuffix)
	negate := make([]bool, nSuffix)
	low := uint64(1)<<uint(p.n1) - 1
	for suffix := uint64(0); suffix < uint64(nSuffix); suffix++ {
		var surv []uint64
		for _, x := range p.family {
			if x>>uint(p.n1)&^suffix == 0 {
				surv = append(surv, x&low)
			}
		}
		prefixes[suffix] = surv
		negate[suffix] = bits.OnesCount64(suffix)%2 == 1
	}
	p.suffixes = coverPlan{prefixes: prefixes, negate: negate}
}

var _ core.Problem = (*CoverProblem)(nil)
var _ core.CompiledProblem = (*CoverProblem)(nil)

// NewCoverProblem builds the Theorem 9 Camelot problem.
func NewCoverProblem(family []uint64, n, t int) (*CoverProblem, error) {
	if err := validateFamily(family, n, false); err != nil {
		return nil, err
	}
	if t < 1 {
		return nil, fmt.Errorf("setcover: t = %d must be positive", t)
	}
	n1 := (n + 1) / 2
	p := &CoverProblem{family: family, n: n, t: t, n1: n1, n2: n - n1}
	p.buildPlan()
	return p, nil
}

// Name implements core.Problem.
func (p *CoverProblem) Name() string {
	return fmt.Sprintf("covers(n=%d,|F|=%d,t=%d)", p.n, len(p.family), p.t)
}

// Width implements core.Problem.
func (p *CoverProblem) Width() int { return 1 }

// Degree implements core.Problem: deg D_j <= 2^{n1}-1 composed with the
// total degree (1+t)·n1 of F_t in its n1 arguments (Appendix A.6).
func (p *CoverProblem) Degree() int {
	return (1<<uint(p.n1) - 1) * (1 + p.t) * p.n1
}

// MinModulus implements core.Problem: the Lagrange grid needs q > 2^{n1};
// the 2^20 floor keeps the CRT prime count low.
func (p *CoverProblem) MinModulus() uint64 {
	min := uint64(1)<<uint(p.n1) + 1
	if min < 1<<20 {
		min = 1 << 20
	}
	return min
}

// NumPrimes implements core.Problem: cover count <= |F|^t.
func (p *CoverProblem) NumPrimes() int {
	bound := new(big.Int).Exp(big.NewInt(int64(len(p.family))+1), big.NewInt(int64(p.t)), nil)
	return numPrimesFor(bound, p.MinModulus())
}

// Evaluate implements core.Problem: P(x0) = F_t(D(x0)) per eq. (45).
func (p *CoverProblem) Evaluate(q, x0 uint64) ([]uint64, error) {
	f, err := ff.New(q)
	if err != nil {
		return nil, err
	}
	// D_j(x0) = Σ_{i: bit j of i set} Φ_i(x0) over the grid 0..2^{n1}-1.
	phi := f.LagrangeAtZeroBased(1<<uint(p.n1), x0)
	y := make([]uint64, p.n)
	for i, v := range phi {
		if v == 0 {
			continue
		}
		for j := 0; j < p.n1; j++ {
			if i&(1<<uint(j)) != 0 {
				y[j] = f.Add(y[j], v)
			}
		}
	}
	total := uint64(0)
	for suffix := uint64(0); suffix < 1<<uint(p.n2); suffix++ {
		for j := 0; j < p.n2; j++ {
			y[p.n1+j] = (suffix >> uint(j)) & 1
		}
		// sign = (-1)^n Π_j (1-2y_j)
		sign := uint64(1)
		if p.n%2 == 1 {
			sign = f.Neg(sign)
		}
		for j := 0; j < p.n; j++ {
			sign = f.Mul(sign, f.Sub(1, f.Mul(2%f.Q, y[j])))
		}
		if sign == 0 {
			continue
		}
		// inner = Σ_{X∈F} Π_{j∈X} y_j
		inner := uint64(0)
		for _, x := range p.family {
			prod := uint64(1)
			for m := x; m != 0 && prod != 0; {
				j := trailingZeros(m)
				m &= m - 1
				prod = f.Mul(prod, y[j])
			}
			inner = f.Add(inner, prod)
		}
		total = f.Add(total, f.Mul(sign, f.Exp(inner, uint64(p.t))))
	}
	return []uint64{total}, nil
}

// coverCompiled is the CoverProblem Plan for one prime. The suffix plan
// is construction-time state on the problem; the Lagrange evaluator
// carries per-call scratch, so it is built inside EvaluateBlock (once
// per block — its factorial/inverse setup still amortizes over the
// block's points) rather than stored here.
type coverCompiled struct {
	p *CoverProblem
	f ff.Field
}

// Compile implements plan.Compiler. The compiled path produces
// bit-identical rows to Evaluate (exact modular arithmetic: dropping
// the zero products of non-surviving sets and the unit factors of
// suffix variables set to 1 cannot change any value) while amortizing
// two costs across each block: the Lagrange evaluator's
// factorial/inverse setup, and the per-suffix family filtering, which
// the construction-time coverPlan hoists out of the per-point loop
// entirely.
func (p *CoverProblem) Compile(f ff.Field) (plan.Plan, error) {
	return &coverCompiled{p: p, f: f}, nil
}

// EvaluateBlock implements plan.Plan.
func (c *coverCompiled) EvaluateBlock(xs []uint64) ([][]uint64, error) {
	p, f := c.p, c.f
	le := f.NewLagrangeEvaluatorZeroBased(1 << uint(p.n1))
	phi := make([]uint64, 1<<uint(p.n1))
	// Per point: D_j(x0) for the first n1 variables, plus the fixed part
	// of the sign, (-1)^n Π_{j<n1}(1-2y_j).
	ys := make([][]uint64, len(xs))
	signs := make([]uint64, len(xs))
	for xi, x0 := range xs {
		le.At(x0, phi)
		y := make([]uint64, p.n1)
		for i, v := range phi {
			if v == 0 {
				continue
			}
			for j := 0; j < p.n1; j++ {
				if i&(1<<uint(j)) != 0 {
					y[j] = f.Add(y[j], v)
				}
			}
		}
		sign := uint64(1)
		if p.n%2 == 1 {
			sign = f.Neg(sign)
		}
		for j := 0; j < p.n1; j++ {
			sign = f.Mul(sign, f.Sub(1, f.Mul(2%f.Q, y[j])))
		}
		ys[xi] = y
		signs[xi] = sign
	}
	totals := make([]uint64, len(xs))
	for suffix, surv := range p.suffixes.prefixes {
		for xi := range xs {
			sign := signs[xi]
			if sign == 0 {
				continue
			}
			if p.suffixes.negate[suffix] {
				sign = f.Neg(sign)
			}
			y := ys[xi]
			inner := uint64(0)
			for _, pm := range surv {
				prod := uint64(1)
				for m := pm; m != 0 && prod != 0; {
					j := trailingZeros(m)
					m &= m - 1
					prod = f.Mul(prod, y[j])
				}
				inner = f.Add(inner, prod)
			}
			totals[xi] = f.Add(totals[xi], f.Mul(sign, f.Exp(inner, uint64(p.t))))
		}
	}
	rows := make([][]uint64, len(xs))
	for xi, total := range totals {
		rows[xi] = []uint64{total}
	}
	return rows, nil
}

// RecoverCovers extracts the cover count: c_t = Σ_{i=0}^{2^{n1}-1} P(i)
// per modulus, then CRT.
func (p *CoverProblem) RecoverCovers(proof *core.Proof) (*big.Int, error) {
	residues := make([]uint64, len(proof.Primes))
	for i, q := range proof.Primes {
		residues[i] = proof.SumRange(q, 0, 0, uint64(1)<<uint(p.n1))
	}
	return crt.Reconstruct(residues, proof.Primes)
}

// --- Sequential baselines ----------------------------------------------------

// CountCoversBrute counts ordered covering t-tuples by explicit
// enumeration: O(|F|^t), ground truth for tiny inputs.
func CountCoversBrute(family []uint64, n, t int) *big.Int {
	full := uint64(1)<<uint(n) - 1
	count := big.NewInt(0)
	one := big.NewInt(1)
	var rec func(depth int, acc uint64)
	rec = func(depth int, acc uint64) {
		if depth == t {
			if acc == full {
				count.Add(count, one)
			}
			return
		}
		for _, x := range family {
			rec(depth+1, acc|x)
		}
	}
	rec(0, 0)
	return count
}

// CountExactCoversBrute counts ordered disjoint covering t-tuples by
// enumeration.
func CountExactCoversBrute(family []uint64, n, t int) *big.Int {
	full := uint64(1)<<uint(n) - 1
	count := big.NewInt(0)
	one := big.NewInt(1)
	var rec func(depth int, acc uint64)
	rec = func(depth int, acc uint64) {
		if depth == t {
			if acc == full {
				count.Add(count, one)
			}
			return
		}
		for _, x := range family {
			if acc&x == 0 {
				rec(depth+1, acc|x)
			}
		}
	}
	rec(0, 0)
	return count
}

// CountCoversIE counts ordered covering t-tuples with the sequential
// inclusion–exclusion formula c_t = Σ_Y (-1)^{n-|Y|} |{X⊆Y}|^t over all
// 2^n subsets (paper [7]): the baseline the Camelot design halves the
// exponent of.
func CountCoversIE(family []uint64, n, t int) *big.Int {
	size := 1 << uint(n)
	sub := make([]*big.Int, size)
	for i := range sub {
		sub[i] = big.NewInt(0)
	}
	one := big.NewInt(1)
	for _, x := range family {
		sub[x].Add(sub[x], one)
	}
	yates.Zeta(n, sub, func(dst, src *big.Int) *big.Int { return dst.Add(dst, src) })
	total := big.NewInt(0)
	tt := big.NewInt(int64(t))
	for y := 0; y < size; y++ {
		term := new(big.Int).Exp(sub[y], tt, nil)
		if (n-popcount(uint64(y)))%2 == 1 {
			total.Sub(total, term)
		} else {
			total.Add(total, term)
		}
	}
	return total
}

func popcount(x uint64) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

func trailingZeros(x uint64) int {
	c := 0
	for x&1 == 0 {
		x >>= 1
		c++
	}
	return c
}

// numPrimesFor returns how many primes >= minQ are needed so their
// product exceeds bound.
func numPrimesFor(bound *big.Int, minQ uint64) int {
	if minQ < 2 {
		minQ = 2
	}
	bits := bound.BitLen()
	per := new(big.Int).SetUint64(minQ).BitLen() - 1
	if per < 1 {
		per = 1
	}
	n := (bits + per - 1) / per
	if n < 1 {
		n = 1
	}
	return n
}
