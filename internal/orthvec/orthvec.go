// Package orthvec implements the paper's Theorem 11(1) and 11(2): Camelot
// algorithms with proof size and time Õ(nt^c) for counting orthogonal
// pairs among Boolean vectors (c = 1) and for the full Hamming distance
// distribution (c = 2). The proof polynomials compose column-interpolating
// polynomials A_j(x) with a multivariate combination indicator (Appendix
// A.1 and A.3).
package orthvec

import (
	"fmt"
	"math/big"

	"camelot/internal/core"
	"camelot/internal/ff"
	"camelot/internal/plan"
)

// BoolMatrix is an n×t 0/1 matrix, rows are vectors.
type BoolMatrix struct {
	N, T int
	Bits []uint8 // row-major
}

// NewBoolMatrix validates dimensions and entries.
func NewBoolMatrix(n, t int, bits []uint8) (*BoolMatrix, error) {
	if n < 1 || t < 1 || len(bits) != n*t {
		return nil, fmt.Errorf("orthvec: bad matrix shape n=%d t=%d len=%d", n, t, len(bits))
	}
	for i, b := range bits {
		if b > 1 {
			return nil, fmt.Errorf("orthvec: entry %d = %d not Boolean", i, b)
		}
	}
	return &BoolMatrix{N: n, T: t, Bits: bits}, nil
}

// At returns entry (i, j), 0-based.
func (m *BoolMatrix) At(i, j int) uint8 { return m.Bits[i*m.T+j] }

// --- Theorem 11(1): orthogonal vectors --------------------------------------

// OVProblem counts, for each row i of A, the rows of B orthogonal to it:
// c_i = |{k : Σ_j a_ij b_kj = 0}|. The proof polynomial (Appendix A.1) is
// P(x) = Σ_k Π_j (1 - b_kj A_j(x)) with A_j interpolating column j of A
// over the points 1..n, so P(i) = c_i.
type OVProblem struct {
	a, b *BoolMatrix
}

var (
	_ core.Problem         = (*OVProblem)(nil)
	_ core.CompiledProblem = (*OVProblem)(nil)
)

// NewOVProblem builds the problem for equal-width matrices.
func NewOVProblem(a, b *BoolMatrix) (*OVProblem, error) {
	if a.T != b.T {
		return nil, fmt.Errorf("orthvec: dimension mismatch t=%d vs %d", a.T, b.T)
	}
	return &OVProblem{a: a, b: b}, nil
}

// Name implements core.Problem.
func (p *OVProblem) Name() string { return fmt.Sprintf("orthogonal-vectors(n=%d,t=%d)", p.a.N, p.a.T) }

// Width implements core.Problem.
func (p *OVProblem) Width() int { return 1 }

// Degree implements core.Problem: t factors of degree <= n-1.
func (p *OVProblem) Degree() int { return p.a.T * (p.a.N - 1) }

// MinModulus implements core.Problem: q must exceed the recovery grid and
// the counts c_i <= n(B); a 2^20 floor keeps the prime count at one.
func (p *OVProblem) MinModulus() uint64 {
	min := uint64(p.a.N + 1)
	if bn := uint64(p.b.N + 1); bn > min {
		min = bn
	}
	if min < 1<<20 {
		min = 1 << 20
	}
	return min
}

// NumPrimes implements core.Problem: c_i <= n < q, one prime suffices.
func (p *OVProblem) NumPrimes() int { return 1 }

// Evaluate implements core.Problem: Õ(nt) per point.
func (p *OVProblem) Evaluate(q, x0 uint64) ([]uint64, error) {
	f, err := ff.New(q)
	if err != nil {
		return nil, err
	}
	lam := f.LagrangeAtOneBased(p.a.N, x0)
	// A_j(x0) = Σ_i a_ij Λ_{i+1}(x0).
	acol := make([]uint64, p.a.T)
	for i := 0; i < p.a.N; i++ {
		if lam[i] == 0 {
			continue
		}
		row := p.a.Bits[i*p.a.T:]
		for j := 0; j < p.a.T; j++ {
			if row[j] == 1 {
				acol[j] = f.Add(acol[j], lam[i])
			}
		}
	}
	// The per-row product multiplies by (1 - A_j(x0)) for each set bit;
	// hoist the t complements out of the n-row sweep.
	k := f.Kernel()
	for j, v := range acol {
		acol[j] = k.Shift(f.Sub(1, v)) // pre-shifted for MulKS
	}
	total := uint64(0)
	for r := 0; r < p.b.N; r++ {
		row := p.b.Bits[r*p.b.T:]
		prod := uint64(1)
		for j := 0; j < p.b.T && prod != 0; j++ {
			if row[j] == 1 {
				prod = ff.MulKS(prod, acol[j], k)
			}
		}
		total = f.Add(total, prod)
	}
	return []uint64{total}, nil
}

// ovCompiled is the OVProblem Plan for one prime. The Lagrange
// evaluator carries scratch, so it is built per EvaluateBlock call (its
// factorial/denominator setup amortizes over the block's points); the
// basis/column scratch vectors are likewise per call, making one plan
// safe for concurrent chunk tasks.
type ovCompiled struct {
	p *OVProblem
	f ff.Field
}

// Compile implements plan.Compiler: the Lagrange factorial and
// denominator tables are built once per block instead of once per
// point, and the basis/column scratch vectors are reused across the
// block, leaving only the irreducible Õ(nt) combination work per point.
// Deliberately not shared with Evaluate (which verification uses): the
// two paths go through different Lagrange kernels and cross-check each
// other.
func (p *OVProblem) Compile(f ff.Field) (plan.Plan, error) {
	return &ovCompiled{p: p, f: f}, nil
}

// EvaluateBlock implements plan.Plan.
func (c *ovCompiled) EvaluateBlock(xs []uint64) ([][]uint64, error) {
	p, f := c.p, c.f
	k := f.Kernel()
	le := f.NewLagrangeEvaluatorOneBased(p.a.N)
	lam := make([]uint64, p.a.N)
	acol := make([]uint64, p.a.T)
	out := make([][]uint64, len(xs))
	for xi, x0 := range xs {
		le.At(x0, lam)
		for j := range acol {
			acol[j] = 0
		}
		for i := 0; i < p.a.N; i++ {
			if lam[i] == 0 {
				continue
			}
			row := p.a.Bits[i*p.a.T:]
			for j := 0; j < p.a.T; j++ {
				if row[j] == 1 {
					acol[j] = f.Add(acol[j], lam[i])
				}
			}
		}
		for j, v := range acol {
			// Hoist the pre-shifted complements out of the row sweep.
			acol[j] = k.Shift(f.Sub(1, v))
		}
		total := uint64(0)
		for r := 0; r < p.b.N; r++ {
			row := p.b.Bits[r*p.b.T:]
			prod := uint64(1)
			for j := 0; j < p.b.T && prod != 0; j++ {
				if row[j] == 1 {
					prod = ff.MulKS(prod, acol[j], k)
				}
			}
			total = f.Add(total, prod)
		}
		out[xi] = []uint64{total}
	}
	return out, nil
}

// Counts recovers (c_1, ..., c_n) from the proof: c_i = P(i).
func (p *OVProblem) Counts(proof *core.Proof) ([]int64, error) {
	q := proof.Primes[0]
	out := make([]int64, p.a.N)
	for i := 1; i <= p.a.N; i++ {
		v := proof.Eval(q, 0, uint64(i))
		if v > uint64(p.b.N) {
			return nil, fmt.Errorf("orthvec: c_%d = %d exceeds row count %d — proof inconsistent", i, v, p.b.N)
		}
		out[i-1] = int64(v)
	}
	return out, nil
}

// TotalPairs recovers Σ_i c_i as a big integer (the #CNFSAT reduction's
// quantity of interest).
func (p *OVProblem) TotalPairs(proof *core.Proof) (*big.Int, error) {
	counts, err := p.Counts(proof)
	if err != nil {
		return nil, err
	}
	total := new(big.Int)
	for _, c := range counts {
		total.Add(total, big.NewInt(c))
	}
	return total, nil
}

// CountOrthogonalNaive is the O(n²t) reference.
func CountOrthogonalNaive(a, b *BoolMatrix) []int64 {
	out := make([]int64, a.N)
	for i := 0; i < a.N; i++ {
		for k := 0; k < b.N; k++ {
			dot := 0
			for j := 0; j < a.T; j++ {
				dot += int(a.At(i, j)) * int(b.At(k, j))
			}
			if dot == 0 {
				out[i]++
			}
		}
	}
	return out
}

// --- Theorem 11(2): Hamming distance distribution ---------------------------

// HammingProblem counts, for each row i of A and each distance h in
// [0, t], the rows of B at Hamming distance exactly h: c_ih. The proof
// polynomial (Appendix A.3) lives on the grid x = i(t+1)+h and uses t
// root-supplying polynomials H_ℓ alongside the column interpolants, so
// that P(i(t+1)+h) = (Π_{ℓ≠h}(h-ℓ)) · c_ih.
type HammingProblem struct {
	a, b *BoolMatrix
	// grid is (N+1)(t+1): row index 0 is a dummy row so the grid points
	// are the consecutive integers 0..grid-1 (enabling the O(grid)
	// Lagrange kernel).
	grid int
}

var (
	_ core.Problem         = (*HammingProblem)(nil)
	_ core.CompiledProblem = (*HammingProblem)(nil)
)

// NewHammingProblem builds the problem.
func NewHammingProblem(a, b *BoolMatrix) (*HammingProblem, error) {
	if a.T != b.T {
		return nil, fmt.Errorf("orthvec: dimension mismatch t=%d vs %d", a.T, b.T)
	}
	return &HammingProblem{a: a, b: b, grid: (a.N + 1) * (a.T + 1)}, nil
}

// Name implements core.Problem.
func (p *HammingProblem) Name() string {
	return fmt.Sprintf("hamming-distribution(n=%d,t=%d)", p.a.N, p.a.T)
}

// Width implements core.Problem.
func (p *HammingProblem) Width() int { return 1 }

// Degree implements core.Problem: the t+1 product factors each carry one
// grid-degree interpolant: (t+1)·(grid-1) is a safe bound (t factors of
// (dist - H_ℓ) where dist and H_ℓ have degree grid-1).
func (p *HammingProblem) Degree() int { return (p.a.T + 1) * (p.grid - 1) }

// MinModulus implements core.Problem: the factorial Π_{ℓ≠h}(h-ℓ) <= t!
// must be invertible and counts c_ih <= n must be recoverable; a 2^20
// floor keeps a single prime.
func (p *HammingProblem) MinModulus() uint64 {
	min := uint64(p.grid + 1)
	if bn := uint64(p.b.N + 1); bn > min {
		min = bn
	}
	if min < 1<<20 {
		min = 1 << 20
	}
	return min
}

// NumPrimes implements core.Problem.
func (p *HammingProblem) NumPrimes() int { return 1 }

// Evaluate implements core.Problem: Õ(nt²) per point.
func (p *HammingProblem) Evaluate(q, x0 uint64) ([]uint64, error) {
	f, err := ff.New(q)
	if err != nil {
		return nil, err
	}
	t := p.a.T
	phi := f.LagrangeAtZeroBased(p.grid, x0)
	// Column interpolants z_j = A_j(x0): value a_ij at grid point
	// i(t+1)+h for every h (dummy zero row i=0).
	z := make([]uint64, t)
	// Root suppliers w_ℓ (ℓ = 1..t): value (ℓ-1) + [ℓ-1 >= h] at grid
	// point i(t+1)+h.
	w := make([]uint64, t)
	for pt, v := range phi {
		if v == 0 {
			continue
		}
		i := pt / (t + 1)
		h := pt % (t + 1)
		if i >= 1 {
			row := p.a.Bits[(i-1)*t:]
			for j := 0; j < t; j++ {
				if row[j] == 1 {
					z[j] = f.Add(z[j], v)
				}
			}
		}
		for l := 1; l <= t; l++ {
			val := l - 1
			if l-1 >= h {
				val = l
			}
			if val != 0 {
				w[l-1] = f.Add(w[l-1], f.Mul(uint64(val)%q, v))
			}
		}
	}
	// P(x0) = Σ_k Π_ℓ (dist_k(z) - w_ℓ), dist_k = Σ_j (1-z_j)b_kj + z_j(1-b_kj).
	total := uint64(0)
	for k := 0; k < p.b.N; k++ {
		row := p.b.Bits[k*t:]
		dist := uint64(0)
		for j := 0; j < t; j++ {
			if row[j] == 1 {
				dist = f.Add(dist, f.Sub(1, z[j]))
			} else {
				dist = f.Add(dist, z[j])
			}
		}
		prod := uint64(1)
		for l := 0; l < t && prod != 0; l++ {
			prod = f.Mul(prod, f.Sub(dist, w[l]))
		}
		total = f.Add(total, prod)
	}
	return []uint64{total}, nil
}

// hammingCompiled is the HammingProblem Plan for one prime: the
// Lagrange evaluator and the z/w scratch are per-call, the point loop
// otherwise mirrors Evaluate exactly (same arithmetic order, so rows
// are bit-identical).
type hammingCompiled struct {
	p *HammingProblem
	f ff.Field
}

// Compile implements plan.Compiler: the Lagrange factorial and
// denominator tables build once per block instead of once per point.
func (p *HammingProblem) Compile(f ff.Field) (plan.Plan, error) {
	return &hammingCompiled{p: p, f: f}, nil
}

// EvaluateBlock implements plan.Plan.
func (c *hammingCompiled) EvaluateBlock(xs []uint64) ([][]uint64, error) {
	p, f := c.p, c.f
	q := f.Q
	t := p.a.T
	le := f.NewLagrangeEvaluatorZeroBased(p.grid)
	phi := make([]uint64, p.grid)
	z := make([]uint64, t)
	w := make([]uint64, t)
	out := make([][]uint64, len(xs))
	for xi, x0 := range xs {
		le.At(x0, phi)
		for j := range z {
			z[j] = 0
		}
		for l := range w {
			w[l] = 0
		}
		for pt, v := range phi {
			if v == 0 {
				continue
			}
			i := pt / (t + 1)
			h := pt % (t + 1)
			if i >= 1 {
				row := p.a.Bits[(i-1)*t:]
				for j := 0; j < t; j++ {
					if row[j] == 1 {
						z[j] = f.Add(z[j], v)
					}
				}
			}
			for l := 1; l <= t; l++ {
				val := l - 1
				if l-1 >= h {
					val = l
				}
				if val != 0 {
					w[l-1] = f.Add(w[l-1], f.Mul(uint64(val)%q, v))
				}
			}
		}
		total := uint64(0)
		for k := 0; k < p.b.N; k++ {
			row := p.b.Bits[k*t:]
			dist := uint64(0)
			for j := 0; j < t; j++ {
				if row[j] == 1 {
					dist = f.Add(dist, f.Sub(1, z[j]))
				} else {
					dist = f.Add(dist, z[j])
				}
			}
			prod := uint64(1)
			for l := 0; l < t && prod != 0; l++ {
				prod = f.Mul(prod, f.Sub(dist, w[l]))
			}
			total = f.Add(total, prod)
		}
		out[xi] = []uint64{total}
	}
	return out, nil
}

// Distribution recovers c_ih for i = 1..n, h = 0..t.
func (p *HammingProblem) Distribution(proof *core.Proof) ([][]int64, error) {
	q := proof.Primes[0]
	f, err := ff.New(q)
	if err != nil {
		return nil, err
	}
	t := p.a.T
	out := make([][]int64, p.a.N)
	for i := 1; i <= p.a.N; i++ {
		out[i-1] = make([]int64, t+1)
		for h := 0; h <= t; h++ {
			// D_h = Π_{ℓ∈{0..t}\{h}} (h-ℓ) = (-1)^{t-h} h! (t-h)!.
			dh := uint64(1)
			for l := 0; l <= t; l++ {
				if l != h {
					dh = f.Mul(dh, f.Reduce(int64(h-l)))
				}
			}
			v := f.Div(proof.Eval(q, 0, uint64(i*(t+1)+h)), dh)
			if v > uint64(p.b.N) {
				return nil, fmt.Errorf("orthvec: c_{%d,%d} = %d exceeds row count — proof inconsistent", i, h, v)
			}
			out[i-1][h] = int64(v)
		}
	}
	return out, nil
}

// HammingDistributionNaive is the O(n²t) reference.
func HammingDistributionNaive(a, b *BoolMatrix) [][]int64 {
	out := make([][]int64, a.N)
	for i := 0; i < a.N; i++ {
		out[i] = make([]int64, a.T+1)
		for k := 0; k < b.N; k++ {
			h := 0
			for j := 0; j < a.T; j++ {
				if a.At(i, j) != b.At(k, j) {
					h++
				}
			}
			out[i][h]++
		}
	}
	return out
}
