package orthvec

import (
	"context"
	"math/rand"
	"testing"

	"camelot/internal/core"
	"camelot/internal/ff"
)

func randBool(rng *rand.Rand, n, t int, density float64) *BoolMatrix {
	bits := make([]uint8, n*t)
	for i := range bits {
		if rng.Float64() < density {
			bits[i] = 1
		}
	}
	m, err := NewBoolMatrix(n, t, bits)
	if err != nil {
		panic(err)
	}
	return m
}

func TestNewBoolMatrixValidation(t *testing.T) {
	if _, err := NewBoolMatrix(2, 2, []uint8{0, 1, 1}); err == nil {
		t.Fatal("want length error")
	}
	if _, err := NewBoolMatrix(2, 2, []uint8{0, 1, 1, 2}); err == nil {
		t.Fatal("want non-Boolean error")
	}
	if _, err := NewBoolMatrix(0, 2, nil); err == nil {
		t.Fatal("want shape error")
	}
}

func TestOVCamelotMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct{ n, t int }{{5, 4}, {12, 8}, {20, 6}}
	for _, c := range cases {
		a := randBool(rng, c.n, c.t, 0.3)
		b := randBool(rng, c.n, c.t, 0.3)
		p, err := NewOVProblem(a, b)
		if err != nil {
			t.Fatal(err)
		}
		proof, rep, err := core.Run(context.Background(), p, core.Options{Nodes: 3, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Verified {
			t.Fatal("not verified")
		}
		got, err := p.Counts(proof)
		if err != nil {
			t.Fatal(err)
		}
		want := CountOrthogonalNaive(a, b)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d t=%d: c_%d = %d, want %d", c.n, c.t, i+1, got[i], want[i])
			}
		}
	}
}

func TestOVWithByzantineNode(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randBool(rng, 10, 5, 0.4)
	b := randBool(rng, 10, 5, 0.4)
	p, err := NewOVProblem(a, b)
	if err != nil {
		t.Fatal(err)
	}
	d := p.Degree()
	k := 5
	f := 0
	for {
		e := d + 1 + 2*f
		if f >= (e+k-1)/k {
			break
		}
		f++
	}
	proof, rep, err := core.Run(context.Background(), p, core.Options{
		Nodes: k, FaultTolerance: f, Adversary: core.NewLyingNodes(8, 0), Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Counts(proof)
	if err != nil {
		t.Fatal(err)
	}
	want := CountOrthogonalNaive(a, b)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("c_%d = %d, want %d", i+1, got[i], want[i])
		}
	}
	for _, s := range rep.SuspectNodes {
		if s != 0 {
			t.Fatalf("honest node %d implicated", s)
		}
	}
}

func TestOVDimensionMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randBool(rng, 4, 3, 0.5)
	b := randBool(rng, 4, 5, 0.5)
	if _, err := NewOVProblem(a, b); err == nil {
		t.Fatal("want dimension error")
	}
}

func TestOVAllZerosAndAllOnes(t *testing.T) {
	// All-zero A: every pair orthogonal.
	zeros, _ := NewBoolMatrix(4, 3, make([]uint8, 12))
	ones, _ := NewBoolMatrix(4, 3, []uint8{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1})
	p, err := NewOVProblem(zeros, ones)
	if err != nil {
		t.Fatal(err)
	}
	proof, _, err := core.Run(context.Background(), p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Counts(proof)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range got {
		if c != 4 {
			t.Fatalf("c_%d = %d, want 4", i+1, c)
		}
	}
	total, err := p.TotalPairs(proof)
	if err != nil {
		t.Fatal(err)
	}
	if total.Int64() != 16 {
		t.Fatalf("total = %v, want 16", total)
	}
}

func TestHammingCamelotMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cases := []struct{ n, t int }{{4, 3}, {8, 5}, {10, 4}}
	for _, c := range cases {
		a := randBool(rng, c.n, c.t, 0.5)
		b := randBool(rng, c.n, c.t, 0.5)
		p, err := NewHammingProblem(a, b)
		if err != nil {
			t.Fatal(err)
		}
		proof, rep, err := core.Run(context.Background(), p, core.Options{Nodes: 4, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Verified {
			t.Fatal("not verified")
		}
		got, err := p.Distribution(proof)
		if err != nil {
			t.Fatal(err)
		}
		want := HammingDistributionNaive(a, b)
		for i := range want {
			for h := range want[i] {
				if got[i][h] != want[i][h] {
					t.Fatalf("n=%d t=%d: c_{%d,%d} = %d, want %d", c.n, c.t, i+1, h, got[i][h], want[i][h])
				}
			}
		}
	}
}

func TestHammingRowSumsEqualN(t *testing.T) {
	// Σ_h c_ih = |B| for every i: a structural invariant.
	rng := rand.New(rand.NewSource(6))
	a := randBool(rng, 6, 4, 0.5)
	b := randBool(rng, 6, 4, 0.5)
	p, err := NewHammingProblem(a, b)
	if err != nil {
		t.Fatal(err)
	}
	proof, _, err := core.Run(context.Background(), p, core.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := p.Distribution(proof)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range dist {
		sum := int64(0)
		for _, c := range row {
			sum += c
		}
		if sum != 6 {
			t.Fatalf("row %d sums to %d, want 6", i+1, sum)
		}
	}
}

func TestHammingIdenticalMatrices(t *testing.T) {
	// A == B: c_{i,0} >= 1 (row i matches itself at distance 0).
	rng := rand.New(rand.NewSource(7))
	a := randBool(rng, 5, 3, 0.5)
	p, err := NewHammingProblem(a, a)
	if err != nil {
		t.Fatal(err)
	}
	proof, _, err := core.Run(context.Background(), p, core.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := p.Distribution(proof)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range dist {
		if row[0] < 1 {
			t.Fatalf("row %d: distance-0 count %d, want >= 1", i+1, row[0])
		}
	}
}

func TestOVEvaluateBlockMatchesEvaluate(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := randBool(rng, 12, 7, 0.4)
	b := randBool(rng, 15, 7, 0.4)
	p, err := NewOVProblem(a, b)
	if err != nil {
		t.Fatal(err)
	}
	const q = uint64(1048583)
	xs := make([]uint64, 0, 40)
	for x := uint64(0); x < 20; x++ { // covers the indicator grid 1..12
		xs = append(xs, x)
	}
	xs = append(xs, 54321, 999983%q)
	f, err := ff.New(q)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := p.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := pl.EvaluateBlock(xs)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		want, err := p.Evaluate(q, x)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows[i]) != 1 || rows[i][0] != want[0] {
			t.Fatalf("block P(%d) = %v, point path %v", x, rows[i], want)
		}
	}
}
