package conv3sum

import (
	"context"
	"math/rand"
	"testing"

	"camelot/internal/core"
	"camelot/internal/ff"
)

func TestCountNaiveKnown(t *testing.T) {
	// A = [1, 2, 3, 4, 5, 6]: A[i]+A[l] = A[i+l] means i + l = i+l always
	// (identity array): every (i, l) pair works: c_i = 3 for i = 1..3.
	a := []uint64{1, 2, 3, 4, 5, 6}
	got := CountNaive(a)
	for i, c := range got {
		if c != 3 {
			t.Fatalf("c_%d = %d, want 3", i+1, c)
		}
	}
}

func TestCamelotMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct{ n, t int }{{6, 4}, {8, 5}, {10, 6}}
	for _, c := range cases {
		a := make([]uint64, c.n)
		for i := range a {
			a[i] = rng.Uint64() % (1 << uint(c.t))
		}
		// Plant some solutions: A[1]+A[2] = A[3], A[2]+A[2] = A[4].
		a[2] = (a[0] + a[1]) % (1 << uint(c.t))
		if a[0]+a[1] >= 1<<uint(c.t) {
			a[2] = a[0] + a[1] - (1 << uint(c.t)) // keep t-bit; may break the plant, fine
			if a[0]+a[1] < 1<<uint(c.t) {
				a[2] = a[0] + a[1]
			}
		}
		p, err := NewProblem(a, c.t+1) // +1 bit headroom so sums stay in range
		if err != nil {
			t.Fatal(err)
		}
		proof, rep, err := core.Run(context.Background(), p, core.Options{Nodes: 4, Seed: int64(c.n)})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Verified {
			t.Fatal("not verified")
		}
		got, err := p.Counts(proof)
		if err != nil {
			t.Fatal(err)
		}
		want := CountNaive(a)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: c_%d = %d, want %d", c.n, i+1, got[i], want[i])
			}
		}
	}
}

func TestIdentityArrayAllSolutions(t *testing.T) {
	a := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	p, err := NewProblem(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	proof, _, err := core.Run(context.Background(), p, core.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	total, err := p.TotalSolutions(proof)
	if err != nil {
		t.Fatal(err)
	}
	if total.Int64() != 16 { // 4x4 pairs all work
		t.Fatalf("total = %v, want 16", total)
	}
}

func TestNoSolutions(t *testing.T) {
	// Strictly huge values so no sums match.
	a := []uint64{9, 9, 9, 9}
	p, err := NewProblem(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	proof, _, err := core.Run(context.Background(), p, core.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	total, err := p.TotalSolutions(proof)
	if err != nil {
		t.Fatal(err)
	}
	if total.Sign() != 0 {
		t.Fatalf("total = %v, want 0", total)
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewProblem([]uint64{1, 2, 3}, 4); err == nil {
		t.Fatal("odd length must be rejected")
	}
	if _, err := NewProblem([]uint64{1, 16}, 4); err == nil {
		t.Fatal("out-of-width value must be rejected")
	}
	if _, err := NewProblem([]uint64{1}, 4); err == nil {
		t.Fatal("too-short array must be rejected")
	}
}

func TestRippleCarryAgainstIntegers(t *testing.T) {
	// On Boolean inputs, T must be the exact adder indicator [y+z=w].
	p, err := NewProblem([]uint64{1, 2, 3, 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	_ = p
	f := fieldForTest(t)
	const tBits = 3
	for y := uint64(0); y < 1<<tBits; y++ {
		for z := uint64(0); z < 1<<tBits; z++ {
			for w := uint64(0); w < 1<<tBits; w++ {
				yb := bits(y, tBits)
				zb := bits(z, tBits)
				wb := bits(w, tBits)
				got := rippleCarryT(f, yb, zb, wb)
				want := uint64(0)
				if y+z == w {
					want = 1
				}
				if got != want {
					t.Fatalf("T(%d,%d,%d) = %d, want %d", y, z, w, got, want)
				}
			}
		}
	}
}

func bits(x uint64, t int) []uint64 {
	out := make([]uint64, t)
	for j := 0; j < t; j++ {
		out[j] = (x >> uint(j)) & 1
	}
	return out
}

// fieldForTest returns a small field for unit-testing polynomial gadgets.
func fieldForTest(t *testing.T) ff.Field {
	t.Helper()
	return ff.Must(1000003)
}
