package conv3sum

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"camelot/internal/core"
	"camelot/internal/ff"
)

// TestEvaluateBlockMatchesEvaluate: the compiled plan hoists the
// interpolated indicator columns that Evaluate rebuilds per call; the
// block path's ripple-carry accumulation must stay bit-identical to
// per-point Evaluate across seeds and primes. A shared plan is also
// driven from concurrent goroutines for the race detector.
func TestEvaluateBlockMatchesEvaluate(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tb := 5
		a := make([]uint64, 10)
		for i := range a {
			a[i] = rng.Uint64() % (1 << uint(tb-1))
		}
		p, err := NewProblem(a, tb)
		if err != nil {
			t.Fatal(err)
		}
		primes, err := core.ChoosePrimes(2, p.MinModulus(), int(seed))
		if err != nil {
			t.Fatal(err)
		}
		xs := []uint64{0, 1, 2, 7, 9, 10, 100, 54321, 1 << 19}
		for _, q := range primes {
			f, err := ff.New(q)
			if err != nil {
				t.Fatal(err)
			}
			pl, err := p.Compile(f)
			if err != nil {
				t.Fatal(err)
			}
			rows, err := pl.EvaluateBlock(xs)
			if err != nil {
				t.Fatal(err)
			}
			for i, x := range xs {
				want, err := p.Evaluate(q, x)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(rows[i], want) {
					t.Fatalf("q=%d x=%d: block %v != point %v", q, x, rows[i], want)
				}
			}
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					got, err := pl.EvaluateBlock(xs)
					if err != nil {
						t.Error(err)
						return
					}
					if !reflect.DeepEqual(got, rows) {
						t.Errorf("q=%d: concurrent block diverged", q)
					}
				}()
			}
			wg.Wait()
		}
	}
}
