// Package conv3sum implements the paper's Theorem 11(3): a Camelot
// algorithm for counting Convolution3SUM solutions — indices i, ℓ with
// A[i] + A[ℓ] = A[i+ℓ] — with proof size and time Õ(nt²) for n integers
// of t bits. The proof polynomial (Appendix A.4) extends a t-bit ripple
// carry adder into a polynomial over Z_q and composes it with
// bit-column interpolants of the input array.
package conv3sum

import (
	"fmt"
	"math/big"

	"camelot/internal/core"
	"camelot/internal/ff"
	"camelot/internal/plan"
	"camelot/internal/poly"
)

// Problem is the Convolution3SUM Camelot problem: P(i) = c_i counts the
// witnesses ℓ ∈ [n/2] with A[i] + A[ℓ] = A[i+ℓ], for i ∈ [n/2].
type Problem struct {
	a []uint64 // 1-based array packed at index 0..n-1
	n int      // even
	t int      // bit width
}

var (
	_ core.Problem         = (*Problem)(nil)
	_ core.CompiledProblem = (*Problem)(nil)
)

// NewProblem builds the problem for an array of n (even) t-bit integers.
// a[i] is the 1-based A[i+1].
func NewProblem(a []uint64, t int) (*Problem, error) {
	n := len(a)
	if n < 2 || n%2 != 0 {
		return nil, fmt.Errorf("conv3sum: need an even number of elements, got %d", n)
	}
	if t < 1 || t > 62 {
		return nil, fmt.Errorf("conv3sum: bit width %d out of range [1, 62]", t)
	}
	for i, v := range a {
		if v >= 1<<uint(t) {
			return nil, fmt.Errorf("conv3sum: A[%d] = %d exceeds %d bits", i+1, v, t)
		}
	}
	return &Problem{a: a, n: n, t: t}, nil
}

// Name implements core.Problem.
func (p *Problem) Name() string { return fmt.Sprintf("conv3sum(n=%d,t=%d)", p.n, p.t) }

// Width implements core.Problem.
func (p *Problem) Width() int { return 1 }

// Degree implements core.Problem. In units of deg A_j = n-1: the carry
// chain gives deg c_j <= j, each product factor (1-w_j)(1-S_j)+w_jS_j
// degree <= j+2, plus the final (1-c_t): Σ_{j=1..t}(j+2) + t =
// t(t+1)/2 + 3t units.
func (p *Problem) Degree() int {
	units := p.t*(p.t+1)/2 + 3*p.t
	return units * (p.n - 1)
}

// MinModulus implements core.Problem: counts c_i <= n/2 need q > n; the
// 2^20 floor keeps one prime.
func (p *Problem) MinModulus() uint64 {
	min := uint64(p.n + 1)
	if min < 1<<20 {
		min = 1 << 20
	}
	return min
}

// NumPrimes implements core.Problem.
func (p *Problem) NumPrimes() int { return 1 }

// columns returns the coefficient forms of the t bit-column
// interpolants over the field: A_j(i) = bit j of A[i] for i = 1..n.
// The compiled plan hoists this per-prime interpolation out of the
// per-point path; Evaluate rebuilds it per call.
func (p *Problem) columns(f ff.Field) (*poly.Ring, [][]uint64) {
	ring := poly.NewRing(f)
	points := make([]uint64, p.n)
	for i := range points {
		points[i] = uint64(i + 1)
	}
	cs := make([][]uint64, p.t)
	vals := make([]uint64, p.n)
	for j := 0; j < p.t; j++ {
		for i := 0; i < p.n; i++ {
			vals[i] = (p.a[i] >> uint(j)) & 1
		}
		cs[j] = ring.Interpolate(points, vals)
	}
	return ring, cs
}

// Evaluate implements core.Problem:
// P(x0) = Σ_{ℓ=1}^{n/2} T(A(x0), A(ℓ), A(x0+ℓ)) with the ripple-carry
// polynomial T of eq. (42). The n/2+1 evaluation points of every column
// polynomial are batched through fast multipoint evaluation.
func (p *Problem) Evaluate(q, x0 uint64) ([]uint64, error) {
	f, err := ff.New(q)
	if err != nil {
		return nil, err
	}
	ring, cs := p.columns(f)
	half := p.n / 2
	pts := make([]uint64, half+1)
	pts[0] = x0 % q
	for l := 1; l <= half; l++ {
		pts[l] = f.Add(x0%q, uint64(l)%q)
	}
	// colVals[j][idx] = A_j(pts[idx]).
	colVals := make([][]uint64, p.t)
	for j := 0; j < p.t; j++ {
		colVals[j] = ring.EvalMany(cs[j], pts)
	}
	y := make([]uint64, p.t) // A(x0)
	for j := range y {
		y[j] = colVals[j][0]
	}
	z := make([]uint64, p.t) // A(ℓ), exact bits
	w := make([]uint64, p.t) // A(x0+ℓ)
	total := uint64(0)
	for l := 1; l <= half; l++ {
		for j := 0; j < p.t; j++ {
			z[j] = (p.a[l-1] >> uint(j)) & 1
			w[j] = colVals[j][l]
		}
		total = f.Add(total, rippleCarryT(f, y, z, w))
	}
	return []uint64{total}, nil
}

// compiled is the Convolution3SUM Plan for one prime: the t bit-column
// interpolants are in coefficient form, computed once per compile; each
// point then costs one multipoint evaluation sweep plus the n/2
// ripple-carry products. The ring's transform scratch is pooled
// internally, so one plan serves concurrent chunk tasks.
type compiled struct {
	p    *Problem
	f    ff.Field
	ring *poly.Ring
	cs   [][]uint64 // coefficient forms, read-only after compile
}

// Compile implements plan.Compiler: it hoists the per-prime column
// interpolation (t polynomial interpolations of degree n-1) that
// Evaluate pays on every call. The per-point arithmetic is identical to
// Evaluate — same multipoint evaluator, same ripple-carry composition —
// so rows agree bit for bit.
func (p *Problem) Compile(f ff.Field) (plan.Plan, error) {
	ring, cs := p.columns(f)
	return &compiled{p: p, f: f, ring: ring, cs: cs}, nil
}

// EvaluateBlock implements plan.Plan.
func (c *compiled) EvaluateBlock(xs []uint64) ([][]uint64, error) {
	p, f := c.p, c.f
	q := f.Q
	half := p.n / 2
	pts := make([]uint64, half+1)
	colVals := make([][]uint64, p.t)
	y := make([]uint64, p.t)
	z := make([]uint64, p.t)
	w := make([]uint64, p.t)
	out := make([][]uint64, len(xs))
	for xi, x0 := range xs {
		pts[0] = x0 % q
		for l := 1; l <= half; l++ {
			pts[l] = f.Add(x0%q, uint64(l)%q)
		}
		for j := 0; j < p.t; j++ {
			colVals[j] = c.ring.EvalMany(c.cs[j], pts)
		}
		for j := range y {
			y[j] = colVals[j][0]
		}
		total := uint64(0)
		for l := 1; l <= half; l++ {
			for j := 0; j < p.t; j++ {
				z[j] = (p.a[l-1] >> uint(j)) & 1
				w[j] = colVals[j][l]
			}
			total = f.Add(total, rippleCarryT(f, y, z, w))
		}
		out[xi] = []uint64{total}
	}
	return out, nil
}

// rippleCarryT evaluates the 3t-variate adder-indicator polynomial T of
// eq. (42) at concrete field values: carries via the majority recurrence
// (41), digit agreement via the sum polynomial S.
func rippleCarryT(f ff.Field, y, z, w []uint64) uint64 {
	t := len(y)
	carry := uint64(0)
	prod := uint64(1)
	for j := 0; j < t; j++ {
		s := sumPoly(f, y[j], z[j], carry)
		carry = majPoly(f, y[j], z[j], carry)
		// (1-w_j)(1-s) + w_j s
		term := f.Add(f.Mul(f.Sub(1, w[j]), f.Sub(1, s)), f.Mul(w[j], s))
		prod = f.Mul(prod, term)
	}
	return f.Mul(prod, f.Sub(1, carry))
}

// sumPoly is S(b1,b2,b3): the XOR polynomial.
func sumPoly(f ff.Field, b1, b2, b3 uint64) uint64 {
	n1, n2, n3 := f.Sub(1, b1), f.Sub(1, b2), f.Sub(1, b3)
	s := f.Mul(f.Mul(n1, n2), b3)
	s = f.Add(s, f.Mul(f.Mul(n1, b2), n3))
	s = f.Add(s, f.Mul(f.Mul(b1, n2), n3))
	return f.Add(s, f.Mul(f.Mul(b1, b2), b3))
}

// majPoly is M(b1,b2,b3): the majority polynomial.
func majPoly(f ff.Field, b1, b2, b3 uint64) uint64 {
	n1, n2, n3 := f.Sub(1, b1), f.Sub(1, b2), f.Sub(1, b3)
	m := f.Mul(f.Mul(n1, b2), b3)
	m = f.Add(m, f.Mul(f.Mul(b1, n2), b3))
	m = f.Add(m, f.Mul(f.Mul(b1, b2), n3))
	return f.Add(m, f.Mul(f.Mul(b1, b2), b3))
}

// Counts recovers c_i = P(i) for i = 1..n/2.
func (p *Problem) Counts(proof *core.Proof) ([]int64, error) {
	q := proof.Primes[0]
	half := p.n / 2
	out := make([]int64, half)
	for i := 1; i <= half; i++ {
		v := proof.Eval(q, 0, uint64(i))
		if v > uint64(half) {
			return nil, fmt.Errorf("conv3sum: c_%d = %d exceeds %d — proof inconsistent", i, v, half)
		}
		out[i-1] = int64(v)
	}
	return out, nil
}

// TotalSolutions sums the counts.
func (p *Problem) TotalSolutions(proof *core.Proof) (*big.Int, error) {
	cs, err := p.Counts(proof)
	if err != nil {
		return nil, err
	}
	total := new(big.Int)
	for _, c := range cs {
		total.Add(total, big.NewInt(c))
	}
	return total, nil
}

// CountNaive is the O(n²) reference: per-i witness counts for i in
// [1, n/2].
func CountNaive(a []uint64) []int64 {
	n := len(a)
	half := n / 2
	out := make([]int64, half)
	for i := 1; i <= half; i++ {
		for l := 1; l <= half; l++ {
			if a[i-1]+a[l-1] == a[i+l-1] {
				out[i-1]++
			}
		}
	}
	return out
}
