package cliques

import (
	"context"
	"math/big"
	"math/rand"
	"testing"

	"camelot/internal/core"
	"camelot/internal/ff"
	"camelot/internal/graph"
	"camelot/internal/matrix"
	"camelot/internal/tensor"
)

var testField = ff.Must(1000003)

func randForm(t *testing.T, rng *rand.Rand, n int) *Form {
	t.Helper()
	ms := make(map[[2]int]*matrix.Matrix)
	fm, err := NewForm(testField, n, func(s, tt int) *matrix.Matrix {
		key := [2]int{s, tt}
		if m, ok := ms[key]; ok {
			return m
		}
		m := matrix.Rand(testField, n, n, rng)
		ms[key] = m
		return m
	})
	if err != nil {
		t.Fatal(err)
	}
	return fm
}

func TestNesetrilPoljakMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 3, 4, 5} {
		fm := randForm(t, rng, n)
		if got, want := fm.EvalNesetrilPoljak(), fm.EvalDirect(); got != want {
			t.Fatalf("n=%d: NP=%d direct=%d", n, got, want)
		}
	}
}

func TestTheorem13PartsMatchDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cases := []struct {
		name string
		n    int
		dc   tensor.Decomposition
	}{
		{"trivial-2", 2, tensor.Trivial(2)},
		{"trivial-4", 4, tensor.Trivial(4)},
		{"strassen-2", 2, tensor.Strassen()},
		{"strassen-4", 4, tensor.Strassen().Pow(2)},
		{"trivial2^2", 4, tensor.Trivial(2).Pow(2)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fm := randForm(t, rng, tc.n)
			got, err := fm.EvalParts(tc.dc, 4)
			if err != nil {
				t.Fatal(err)
			}
			if want := fm.EvalDirect(); got != want {
				t.Fatalf("parts=%d direct=%d", got, want)
			}
		})
	}
}

func TestProofEvalMatchesTermsOnGrid(t *testing.T) {
	// P(x0) at x0 = r+1 must equal the exact term P(r) (paper §5.2).
	rng := rand.New(rand.NewSource(3))
	fm := randForm(t, rng, 4)
	dc := tensor.Strassen().Pow(2)
	for r := 0; r < dc.R(); r += 7 {
		want, err := fm.TermAt(dc, r)
		if err != nil {
			t.Fatal(err)
		}
		got, err := fm.ProofEval(dc, uint64(r+1))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("P(%d): proof=%d term=%d", r+1, got, want)
		}
	}
}

func TestProofPolynomialDegree(t *testing.T) {
	// Interpolating P from 3(R-1)+1 points must reproduce P elsewhere.
	rng := rand.New(rand.NewSource(4))
	fm := randForm(t, rng, 2)
	dc := tensor.Strassen()
	d := 3 * (dc.R() - 1)
	f := testField
	xs := make([]uint64, d+1)
	for i := range xs {
		xs[i] = uint64(i + 1)
	}
	lam := f.LagrangeAtOneBased(d+1, 99991)
	viaInterp := uint64(0)
	for i, x := range xs {
		v, err := fm.ProofEval(dc, x)
		if err != nil {
			t.Fatal(err)
		}
		viaInterp = f.Add(viaInterp, f.Mul(v, lam[i]))
	}
	direct, err := fm.ProofEval(dc, 99991)
	if err != nil {
		t.Fatal(err)
	}
	if viaInterp != direct {
		t.Fatalf("P not a degree-%d polynomial: interp=%d direct=%d", d, viaInterp, direct)
	}
}

func TestSubsetMatrixSixCliqueIsAdjacency(t *testing.T) {
	g := graph.Gnp(7, 0.6, 1)
	sm, err := BuildSubsetMatrix(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sm.N != 7 {
		t.Fatalf("N = %d", sm.N)
	}
	for u := 0; u < 7; u++ {
		for v := 0; v < 7; v++ {
			want := uint64(0)
			if g.HasEdge(u, v) {
				want = 1
			}
			if sm.Entries[u*7+v] != want {
				t.Fatalf("χ[%d][%d] = %d, want adjacency %d", u, v, sm.Entries[u*7+v], want)
			}
		}
	}
}

func TestSubsetMatrixPairs(t *testing.T) {
	// k=12, s=2: entries require disjointness and the union clique.
	g := graph.Complete(5)
	sm, err := BuildSubsetMatrix(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sm.N != 10 {
		t.Fatalf("N = %d, want C(5,2)=10", sm.N)
	}
	// In K5 every disjoint pair of pairs forms a 4-clique: each row has
	// C(3,2) = 3 disjoint partners.
	for i := 0; i < sm.N; i++ {
		row := 0
		for j := 0; j < sm.N; j++ {
			row += int(sm.Entries[i*sm.N+j])
		}
		if row != 3 {
			t.Fatalf("row %d sum = %d, want 3", i, row)
		}
	}
}

func TestCountNaiveKnownValues(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		k    int
		want int64
	}{
		{"K6 has 1 six-clique", graph.Complete(6), 6, 1},
		{"K8 choose 6", graph.Complete(8), 6, 28},
		{"K9 choose 6", graph.Complete(9), 6, 84},
		{"cycle has none", graph.Cycle(10), 6, 0},
		{"K5 triangles", graph.Complete(5), 3, 10},
		{"petersen triangles", graph.Petersen(), 3, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := CountNaive(tt.g, tt.k); got.Cmp(big.NewInt(tt.want)) != 0 {
				t.Fatalf("got %v, want %d", got, tt.want)
			}
		})
	}
}

func TestMultinomial(t *testing.T) {
	// k=6: 6!/(1!)^6 = 720. k=12: 12!/(2!)^6 = 479001600/64 = 7484400.
	if got := Multinomial(6); got.Cmp(big.NewInt(720)) != 0 {
		t.Fatalf("Multinomial(6) = %v", got)
	}
	if got := Multinomial(12); got.Cmp(big.NewInt(7484400)) != 0 {
		t.Fatalf("Multinomial(12) = %v", got)
	}
}

func TestCountNesetrilPoljakMatchesNaive(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := graph.Gnp(9, 0.75, seed)
		want := CountNaive(g, 6)
		got, err := CountNesetrilPoljak(g, 6)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("seed %d: NP=%v naive=%v", seed, got, want)
		}
	}
}

func TestCountPartsMatchesNaive(t *testing.T) {
	g := graph.Gnp(8, 0.8, 5)
	want := CountNaive(g, 6)
	for name, base := range map[string]tensor.Decomposition{
		"strassen": tensor.Strassen(), "trivial": tensor.Trivial(2),
	} {
		got, err := CountParts(g, 6, base, 4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("%s: parts=%v naive=%v", name, got, want)
		}
	}
}

func TestCamelotSixCliqueEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full Camelot clique run in -short mode")
	}
	g := graph.PlantCliques(8, 0.5, 6, 1, 2)
	want := CountNaive(g, 6)
	p, err := NewProblem(g, 6, tensor.Strassen())
	if err != nil {
		t.Fatal(err)
	}
	// d = 3(R-1) = 1026 for Strassen^3 (R=343); with K=8 nodes a single
	// byzantine node owns ~e/8 shares, so f must cover a full node block:
	// e = 1027+2f, f=200 => e=1427, ~179 shares per node <= radius 200.
	proof, rep, err := core.Run(context.Background(), p, core.Options{
		Nodes: 8, FaultTolerance: 200, Adversary: core.NewLyingNodes(3, 2),
		Seed: 1, DecodingNodes: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified {
		t.Fatal("proof not verified")
	}
	got, err := p.Recover(proof)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(want) != 0 {
		t.Fatalf("recovered %v, want %v", got, want)
	}
	// The lying node must be identified.
	found := false
	for _, s := range rep.SuspectNodes {
		if s == 2 {
			found = true
		}
		if s != 2 {
			t.Fatalf("honest node %d implicated", s)
		}
	}
	if !found {
		t.Fatal("byzantine node not identified")
	}
}

func TestCamelotCliqueRejectsBadGraphArgs(t *testing.T) {
	g := graph.Complete(6)
	if _, err := NewProblem(g, 5, tensor.Strassen()); err == nil {
		t.Fatal("want error for k not divisible by 6")
	}
	if _, err := NewProblem(g, 0, tensor.Strassen()); err == nil {
		t.Fatal("want error for k=0")
	}
}

func TestEnumerateSubsets(t *testing.T) {
	subs := enumerateSubsets(4, 2)
	if len(subs) != 6 {
		t.Fatalf("C(4,2) = %d, want 6", len(subs))
	}
	for _, m := range subs {
		if onesCount(m) != 2 {
			t.Fatalf("subset %b has wrong size", m)
		}
	}
}

func onesCount(x uint64) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

func TestEvaluateBlockMatchesEvaluate(t *testing.T) {
	g := graph.Gnp(8, 0.7, 19)
	p, err := NewProblem(g, 6, tensor.Strassen())
	if err != nil {
		t.Fatal(err)
	}
	q, _, err := ff.NTTPrime(p.MinModulus(), 4)
	if err != nil {
		t.Fatal(err)
	}
	f, err := ff.New(q)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := p.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	xs := []uint64{0, 1, 2, 7, 343, 344, 99991}
	rows, err := pl.EvaluateBlock(xs)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		want, err := p.Evaluate(q, x)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows[i]) != 1 || rows[i][0] != want[0] {
			t.Fatalf("block P(%d) = %v, point path %v", x, rows[i], want)
		}
	}
}
