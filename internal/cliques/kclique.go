package cliques

import (
	"fmt"
	"math/big"

	"camelot/internal/core"
	"camelot/internal/crt"
	"camelot/internal/ff"
	"camelot/internal/graph"
	"camelot/internal/matrix"
	"camelot/internal/plan"
	"camelot/internal/tensor"
)

// SubsetMatrix is the paper §5.1 reduction object: χ is indexed by the
// size-s subsets A, B of V(G) with
//
//	χ_AB = [A ∪ B is a clique in G and A ∩ B = ∅],
//
// so that the (6,2)-form with input χ counts every k-clique (k = 6s)
// exactly k!/(s!)^6 times.
type SubsetMatrix struct {
	// N is the number of size-s subsets, C(n, s).
	N int
	// S is the subset size k/6.
	S int
	// Entries is the 0/1 matrix in row-major order.
	Entries []uint64
}

// BuildSubsetMatrix constructs χ for the given graph and subset size s.
// Subsets are enumerated in lexicographic order of their sorted elements.
func BuildSubsetMatrix(g *graph.Graph, s int) (*SubsetMatrix, error) {
	n := g.N()
	if n > 62 {
		return nil, fmt.Errorf("cliques: subset matrix supports n <= 62, got %d", n)
	}
	if s < 1 || s > n {
		return nil, fmt.Errorf("cliques: subset size %d out of range for n=%d", s, n)
	}
	subsets := enumerateSubsets(n, s)
	// Only subsets that are themselves cliques can appear in a nonzero
	// entry; precompute the predicate.
	nn := len(subsets)
	sm := &SubsetMatrix{N: nn, S: s, Entries: make([]uint64, nn*nn)}
	isClique := make([]bool, nn)
	for i, m := range subsets {
		isClique[i] = g.IsCliqueMask(m)
	}
	for i, a := range subsets {
		if !isClique[i] {
			continue
		}
		for j, b := range subsets {
			if i == j || !isClique[j] || a&b != 0 {
				continue
			}
			if g.IsCliqueMask(a | b) {
				sm.Entries[i*nn+j] = 1
			}
		}
	}
	return sm, nil
}

// enumerateSubsets lists all size-s subsets of [n] as bit masks in
// lexicographic order.
func enumerateSubsets(n, s int) []uint64 {
	var out []uint64
	var rec func(start int, chosen int, mask uint64)
	rec = func(start, chosen int, mask uint64) {
		if chosen == s {
			out = append(out, mask)
			return
		}
		for v := start; v <= n-(s-chosen); v++ {
			rec(v+1, chosen+1, mask|1<<uint(v))
		}
	}
	rec(0, 0, 0)
	return out
}

// Multinomial returns k! / (s!)^6 for k = 6s: the overcount factor of
// the reduction.
func Multinomial(k int) *big.Int {
	s := k / 6
	num := new(big.Int).MulRange(1, int64(k))
	sf := new(big.Int).MulRange(1, int64(s))
	den := new(big.Int).Exp(sf, big.NewInt(6), nil)
	return num.Div(num, den)
}

// Problem is the Camelot k-clique counting problem (Theorem 1): the
// proof polynomial of §5.2 over the (6,2)-form of the subset matrix,
// with degree 3(R-1) for the rank R = dc.R() of the chosen matrix
// multiplication tensor decomposition.
//
// The per-prime form build (zero-padding χ into the field and fixing
// the decomposition bases) lives in Compile; point-wise Evaluate
// rebuilds it per call and exists as the verification reference.
type Problem struct {
	g  *graph.Graph
	k  int
	sm *SubsetMatrix
	dc tensor.Decomposition
	// padN is the decomposition size N0^T >= sm.N; χ is zero-padded.
	padN int
}

var (
	_ core.Problem         = (*Problem)(nil)
	_ core.CompiledProblem = (*Problem)(nil)
)

// NewProblem builds the Camelot clique problem for a graph, a clique
// size k divisible by 6, and a base tensor decomposition (Strassen() for
// the ω = log2 7 design, Trivial(b) for ω = 3).
func NewProblem(g *graph.Graph, k int, base tensor.Decomposition) (*Problem, error) {
	if k <= 0 || k%6 != 0 {
		return nil, fmt.Errorf("cliques: k must be a positive multiple of 6, got %d", k)
	}
	sm, err := BuildSubsetMatrix(g, k/6)
	if err != nil {
		return nil, err
	}
	dc, padN := base.ForSize(sm.N)
	return &Problem{g: g, k: k, sm: sm, dc: dc, padN: padN}, nil
}

// Name implements core.Problem.
func (p *Problem) Name() string { return fmt.Sprintf("count-%d-cliques(n=%d)", p.k, p.g.N()) }

// Width implements core.Problem.
func (p *Problem) Width() int { return 1 }

// Degree implements core.Problem: deg P <= 3(R-1) (paper §5.2).
func (p *Problem) Degree() int { return 3 * (p.dc.R() - 1) }

// MinModulus implements core.Problem: q >= 3R+1 enables interpolation
// (paper §5.2); the 2^20 floor keeps the CRT prime count low.
func (p *Problem) MinModulus() uint64 {
	min := uint64(3*p.dc.R() + 1)
	if min < 1<<20 {
		min = 1 << 20
	}
	return min
}

// CountBound returns N^6 · multinomial-free upper bound on X: the form
// value is at most N^6 for a 0/1 matrix.
func (p *Problem) CountBound() *big.Int {
	n := big.NewInt(int64(p.sm.N))
	return n.Exp(n, big.NewInt(6), nil)
}

// NumPrimes implements core.Problem.
func (p *Problem) NumPrimes() int {
	return numPrimesFor(p.CountBound(), p.MinModulus())
}

// numPrimesFor returns how many primes >= minQ are needed so their
// product exceeds bound.
func numPrimesFor(bound *big.Int, minQ uint64) int {
	if minQ < 2 {
		minQ = 2
	}
	bits := bound.BitLen()
	perPrime := new(big.Int).SetUint64(minQ).BitLen() - 1
	if perPrime < 1 {
		perPrime = 1
	}
	n := (bits + perPrime - 1) / perPrime
	if n < 1 {
		n = 1
	}
	return n
}

// buildForm constructs the (6,2)-form of χ over the field: the
// zero-padded subset matrix lifted into Z_q.
func (p *Problem) buildForm(f ff.Field) (*Form, error) {
	chi := matrix.New(f, p.padN, p.padN)
	for i := 0; i < p.sm.N; i++ {
		copy(chi.A[i*p.padN:i*p.padN+p.sm.N], p.sm.Entries[i*p.sm.N:(i+1)*p.sm.N])
	}
	return NewUniformForm(f, chi)
}

// Evaluate implements core.Problem: P(x0) mod q via §5.3. It rebuilds
// the form per call — the compiled plan is the amortized path.
func (p *Problem) Evaluate(q, x0 uint64) ([]uint64, error) {
	f, err := ff.New(q)
	if err != nil {
		return nil, err
	}
	fm, err := p.buildForm(f)
	if err != nil {
		return nil, err
	}
	v, err := fm.ProofEval(p.dc, x0)
	if err != nil {
		return nil, err
	}
	return []uint64{v}, nil
}

// compiled is the clique Plan for one prime: the form is built once at
// compile time; each EvaluateBlock call makes its own tensor
// point-evaluator (Form.Combine allocates per call), so one plan serves
// concurrent chunk tasks.
type compiled struct {
	p  *Problem
	fm *Form
}

// Compile implements plan.Compiler: one form build and one tensor
// point-evaluator per block, instead of rebuilding Lagrange tables and
// reduced bases three times per point.
func (p *Problem) Compile(f ff.Field) (plan.Plan, error) {
	fm, err := p.buildForm(f)
	if err != nil {
		return nil, err
	}
	return &compiled{p: p, fm: fm}, nil
}

// EvaluateBlock implements plan.Plan.
func (c *compiled) EvaluateBlock(xs []uint64) ([][]uint64, error) {
	vals, err := c.fm.ProofEvalBlock(c.p.dc, xs)
	if err != nil {
		return nil, err
	}
	out := make([][]uint64, len(xs))
	for i, v := range vals {
		out[i] = []uint64{v}
	}
	return out, nil
}

// Recover extracts the clique count from a decoded proof:
// X = Σ_{r=1}^{R} P(r) per modulus (Theorem 13), CRT over the primes,
// then division by the k!/(s!)^6 overcount.
func (p *Problem) Recover(proof *core.Proof) (*big.Int, error) {
	r := uint64(p.dc.R())
	residues := make([]uint64, len(proof.Primes))
	for i, q := range proof.Primes {
		residues[i] = proof.SumRange(q, 0, 1, r+1)
	}
	x, err := crt.Reconstruct(residues, proof.Primes)
	if err != nil {
		return nil, fmt.Errorf("cliques: %w", err)
	}
	mult := Multinomial(p.k)
	quo, rem := new(big.Int).QuoRem(x, mult, new(big.Int))
	if rem.Sign() != 0 {
		return nil, fmt.Errorf("cliques: form value %v not divisible by %v — proof inconsistent", x, mult)
	}
	return quo, nil
}

// --- Sequential baselines ----------------------------------------------------

// CountNaive counts k-cliques by ordered DFS extension — the ground
// truth for tests (exact, exponential in k only).
func CountNaive(g *graph.Graph, k int) *big.Int {
	n := g.N()
	count := big.NewInt(0)
	one := big.NewInt(1)
	// cur holds the chosen vertices; cand the still-extendable vertices
	// greater than the last chosen one and adjacent to all chosen.
	var rec func(last int, depth int, cand []int)
	rec = func(last, depth int, cand []int) {
		if depth == k {
			count.Add(count, one)
			return
		}
		for i, v := range cand {
			// Remaining candidates adjacent to v.
			next := make([]int, 0, len(cand)-i-1)
			for _, u := range cand[i+1:] {
				if g.HasEdge(v, u) {
					next = append(next, u)
				}
			}
			if len(next) >= k-depth-1 {
				rec(v, depth+1, next)
			} else if k-depth-1 == 0 {
				rec(v, depth+1, next)
			}
		}
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	rec(-1, 0, all)
	return count
}

// CountNesetrilPoljak counts k-cliques (k divisible by 6 here, to share
// the subset machinery) with the §4.1 circuit: O(N^{2ω}) time, O(N⁴)
// space. Exact over the integers via a single 61-bit prime when the
// bound fits, CRT otherwise.
func CountNesetrilPoljak(g *graph.Graph, k int) (*big.Int, error) {
	sm, err := BuildSubsetMatrix(g, k/6)
	if err != nil {
		return nil, err
	}
	bound := new(big.Int).Exp(big.NewInt(int64(sm.N)), big.NewInt(6), nil)
	minQ := uint64(1) << 40
	primes, err := core.ChoosePrimes(numPrimesFor(bound, minQ), minQ, 4)
	if err != nil {
		return nil, err
	}
	residues := make([]uint64, len(primes))
	for i, q := range primes {
		f, err := ff.New(q)
		if err != nil {
			return nil, err
		}
		chi, err := matrix.FromSlice(f, sm.N, sm.N, sm.Entries)
		if err != nil {
			return nil, err
		}
		fm, err := NewUniformForm(f, chi)
		if err != nil {
			return nil, err
		}
		residues[i] = fm.EvalNesetrilPoljak()
	}
	x, err := crt.Reconstruct(residues, primes)
	if err != nil {
		return nil, err
	}
	mult := Multinomial(k)
	quo, rem := new(big.Int).QuoRem(x, mult, new(big.Int))
	if rem.Sign() != 0 {
		return nil, fmt.Errorf("cliques: NP form value %v not divisible by %v", x, mult)
	}
	return quo, nil
}

// CountParts counts k-cliques with the Theorem 2 execution: the new
// circuit, Σ_r P(r) over parallel workers, O(N²) space per worker.
func CountParts(g *graph.Graph, k int, base tensor.Decomposition, parallelism int) (*big.Int, error) {
	p, err := NewProblem(g, k, base)
	if err != nil {
		return nil, err
	}
	bound := p.CountBound()
	minQ := p.MinModulus()
	if minQ < 1<<20 {
		minQ = 1 << 20
	}
	primes, err := core.ChoosePrimes(numPrimesFor(bound, minQ), minQ, 4)
	if err != nil {
		return nil, err
	}
	residues := make([]uint64, len(primes))
	for i, q := range primes {
		f, err := ff.New(q)
		if err != nil {
			return nil, err
		}
		fm, err := p.buildForm(f)
		if err != nil {
			return nil, err
		}
		residues[i], err = fm.EvalParts(p.dc, parallelism)
		if err != nil {
			return nil, err
		}
	}
	x, err := crt.Reconstruct(residues, primes)
	if err != nil {
		return nil, err
	}
	mult := Multinomial(k)
	quo, rem := new(big.Int).QuoRem(x, mult, new(big.Int))
	if rem.Sign() != 0 {
		return nil, fmt.Errorf("cliques: parts form value %v not divisible by %v", x, mult)
	}
	return quo, nil
}
