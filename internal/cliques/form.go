// Package cliques implements the paper's main technical results: the
// (6,2)-linear form of §4 with its three evaluation circuits (direct,
// Nešetřil–Poljak, and the new space-efficient parallel design of
// Theorem 13), the proof polynomial of §5.2 with the fast evaluation
// algorithm of §5.3, and the k-clique counting reduction of §5.1 packaged
// as a core.Problem (Theorems 1 and 2).
package cliques

import (
	"fmt"
	"runtime"
	"sync"

	"camelot/internal/ff"
	"camelot/internal/matrix"
	"camelot/internal/tensor"
)

// Form is the (6,2)-linear form of paper eq. (9), generalized (per the
// paper's footnote 17) to 15 distinct N×N matrices, one per index pair
// 1 <= s < t <= 6:
//
//	X = Σ_{x_1..x_6} Π_{s<t} M^{(s,t)}[x_s][x_t].
//
// For clique counting all 15 matrices are the same χ.
type Form struct {
	n int
	f ff.Field
	// m[s][t] for 0-based s < t.
	m [6][6]*matrix.Matrix
}

// NewForm builds a form over f from the 15 matrices. get(s, t) must
// return the N×N matrix for the (1-based) pair s < t.
func NewForm(f ff.Field, n int, get func(s, t int) *matrix.Matrix) (*Form, error) {
	fm := &Form{n: n, f: f}
	for s := 0; s < 6; s++ {
		for t := s + 1; t < 6; t++ {
			m := get(s+1, t+1)
			if m == nil || m.R != n || m.C != n {
				return nil, fmt.Errorf("cliques: matrix (%d,%d) missing or not %dx%d", s+1, t+1, n, n)
			}
			fm.m[s][t] = m
		}
	}
	return fm, nil
}

// NewUniformForm builds the form with a single matrix χ in all 15
// positions — the clique-counting case.
func NewUniformForm(f ff.Field, chi *matrix.Matrix) (*Form, error) {
	if chi.R != chi.C {
		return nil, fmt.Errorf("cliques: χ must be square, got %dx%d", chi.R, chi.C)
	}
	return NewForm(f, chi.R, func(_, _ int) *matrix.Matrix { return chi })
}

// at returns M^{(s,t)} for 0-based s < t.
func (fm *Form) at(s, t int) *matrix.Matrix { return fm.m[s][t] }

// N returns the matrix dimension.
func (fm *Form) N() int { return fm.n }

// EvalDirect computes X by six nested loops: O(N^6) time, O(1) extra
// space. The correctness reference for everything else.
func (fm *Form) EvalDirect() uint64 {
	f := fm.f
	n := fm.n
	total := uint64(0)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			vab := fm.at(0, 1).At(a, b)
			if vab == 0 {
				continue
			}
			for c := 0; c < n; c++ {
				vabc := f.Mul(vab, f.Mul(fm.at(0, 2).At(a, c), fm.at(1, 2).At(b, c)))
				if vabc == 0 {
					continue
				}
				for d := 0; d < n; d++ {
					vd := f.Mul(fm.at(0, 3).At(a, d), f.Mul(fm.at(1, 3).At(b, d), fm.at(2, 3).At(c, d)))
					if vd == 0 {
						continue
					}
					vabcd := f.Mul(vabc, vd)
					for e := 0; e < n; e++ {
						ve := f.Mul(f.Mul(fm.at(0, 4).At(a, e), fm.at(1, 4).At(b, e)),
							f.Mul(fm.at(2, 4).At(c, e), fm.at(3, 4).At(d, e)))
						if ve == 0 {
							continue
						}
						vabcde := f.Mul(vabcd, ve)
						for x := 0; x < n; x++ {
							vx := f.Mul(f.Mul(fm.at(0, 5).At(a, x), fm.at(1, 5).At(b, x)),
								f.Mul(fm.at(2, 5).At(c, x), f.Mul(fm.at(3, 5).At(d, x), fm.at(4, 5).At(e, x))))
							total = f.Add(total, f.Mul(vabcde, vx))
						}
					}
				}
			}
		}
	}
	return total
}

// EvalNesetrilPoljak computes X with the classic §4.1 design: three
// N²×N² matrices U, S, T, one fast product V = S·Tᵀ, and a dot with U.
// O(N^{2ω}) time but O(N⁴) space — the baseline Theorem 13 improves on.
func (fm *Form) EvalNesetrilPoljak() uint64 {
	f := fm.f
	n := fm.n
	n2 := n * n
	u := matrix.New(f, n2, n2)
	s := matrix.New(f, n2, n2)
	tt := matrix.New(f, n2, n2)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			row := a*n + b
			for c := 0; c < n; c++ {
				for d := 0; d < n; d++ {
					col := c*n + d
					// U_{ab,cd} = M12_ab M13_ac M14_ad M23_bc M24_bd
					v := f.Mul(fm.at(0, 1).At(a, b), fm.at(0, 2).At(a, c))
					v = f.Mul(v, fm.at(0, 3).At(a, d))
					v = f.Mul(v, fm.at(1, 2).At(b, c))
					v = f.Mul(v, fm.at(1, 3).At(b, d))
					u.Set(row, col, v)
					// S_{ab,ef} = M15_ae M16_af M25_be M26_bf M56_ef
					e, x := c, d // reuse loop vars as (e, f)
					v = f.Mul(fm.at(0, 4).At(a, e), fm.at(0, 5).At(a, x))
					v = f.Mul(v, fm.at(1, 4).At(b, e))
					v = f.Mul(v, fm.at(1, 5).At(b, x))
					v = f.Mul(v, fm.at(4, 5).At(e, x))
					s.Set(row, col, v)
					// T_{cd,ef} = M34_cd M35_ce M36_cf M45_de M46_df
					cc, dd := a, b // row is (c,d) here
					v = f.Mul(fm.at(2, 3).At(cc, dd), fm.at(2, 4).At(cc, e))
					v = f.Mul(v, fm.at(2, 5).At(cc, x))
					v = f.Mul(v, fm.at(3, 4).At(dd, e))
					v = f.Mul(v, fm.at(3, 5).At(dd, x))
					tt.Set(row, col, v)
				}
			}
		}
	}
	v := s.Mul(tt.Transpose())
	return u.DotAll(v)
}

// TermAt computes the single term P(r) of the new design (paper eqs.
// (11)–(12)) for the 0-based term index r of the decomposition: a
// constant number of N×N matrix products in O(N²) space.
func (fm *Form) TermAt(dc tensor.Decomposition, r int) (uint64, error) {
	alpha := dc.AlphaMatrixAt(fm.f, r)
	beta := dc.BetaMatrixAt(fm.f, r)
	gamma := dc.GammaMatrixAt(fm.f, r)
	return fm.Combine(alpha, beta, gamma)
}

// Combine assembles P from coefficient matrices (either exact term
// matrices for P(r) or interpolated ones for P(x0)): the (11)–(12)
// pipeline expressed as Hadamard products and N×N matrix products.
func (fm *Form) Combine(alpha, beta, gamma *matrix.Matrix) (uint64, error) {
	n := fm.n
	if alpha.R != n || beta.R != n || gamma.R != n {
		return 0, fmt.Errorf("cliques: coefficient matrices are %dx%d, want %dx%d", alpha.R, alpha.C, n, n)
	}
	// H_ad = Σ_{e'} α_{de'} M15_{ae'} M45_{de'}      => H = M15 · (α ∘ M45)ᵀ
	h := fm.at(0, 4).Mul(alpha.Hadamard(fm.at(3, 4)).Transpose())
	// A_ab = Σ_d M14_ad M24_bd H_ad                  => A = (M14 ∘ H) · M24ᵀ
	a := fm.at(0, 3).Hadamard(h).Mul(fm.at(1, 3).Transpose())
	// K_be = Σ_{f'} β_{ef'} M26_{bf'} M56_{ef'}      => K = M26 · (β ∘ M56)ᵀ
	kk := fm.at(1, 5).Mul(beta.Hadamard(fm.at(4, 5)).Transpose())
	// B_bc = Σ_e M25_be M35_ce K_be                  => B = (M25 ∘ K) · M35ᵀ
	b := fm.at(1, 4).Hadamard(kk).Mul(fm.at(2, 4).Transpose())
	// L_cf = Σ_{d'} γ_{d'f} M34_{cd'} M46_{d'f}      => L = M34 · (γ ∘ M46)
	l := fm.at(2, 3).Mul(gamma.Hadamard(fm.at(3, 5)))
	// C_ac = Σ_f M16_af M36_cf L_cf                  => C = M16 · (M36 ∘ L)ᵀ
	c := fm.at(0, 5).Mul(fm.at(2, 5).Hadamard(l).Transpose())
	// Q_ab = Σ_c M13_ac M23_bc B_bc C_ac             => Q = (M13 ∘ C) · (M23 ∘ B)ᵀ
	q := fm.at(0, 2).Hadamard(c).Mul(fm.at(1, 2).Hadamard(b).Transpose())
	// P = Σ_ab M12_ab A_ab Q_ab
	return fm.at(0, 1).Hadamard(a).DotAll(q), nil
}

// EvalParts computes X = Σ_{r=1}^{R} P(r) (Theorem 13) with the new
// circuit, distributing terms over min(parallelism, R) goroutines — the
// Theorem 2 execution mode: per-worker space O(N²), embarrassingly
// parallel over r.
func (fm *Form) EvalParts(dc tensor.Decomposition, parallelism int) (uint64, error) {
	if dc.N() != fm.n {
		return 0, fmt.Errorf("cliques: decomposition covers N=%d, form has N=%d", dc.N(), fm.n)
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	r := dc.R()
	if parallelism > r {
		parallelism = r
	}
	partials := make([]uint64, parallelism)
	errs := make([]error, parallelism)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			acc := uint64(0)
			for term := w; term < r; term += parallelism {
				v, err := fm.TermAt(dc, term)
				if err != nil {
					errs[w] = err
					return
				}
				acc = fm.f.Add(acc, v)
			}
			partials[w] = acc
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	total := uint64(0)
	for _, v := range partials {
		total = fm.f.Add(total, v)
	}
	return total, nil
}

// ProofEval evaluates the proof polynomial P(x0) of paper §5.2–§5.3: the
// tensor coefficient polynomials are evaluated at x0 via Yates in O(R)
// operations, then combined with the same O(N^ω)-work, O(N²)-space
// pipeline as a single term. deg P <= 3(R-1).
func (fm *Form) ProofEval(dc tensor.Decomposition, x0 uint64) (uint64, error) {
	if dc.N() != fm.n {
		return 0, fmt.Errorf("cliques: decomposition covers N=%d, form has N=%d", dc.N(), fm.n)
	}
	alpha := dc.AlphaMatrixAtPoint(fm.f, x0)
	beta := dc.BetaMatrixAtPoint(fm.f, x0)
	gamma := dc.GammaMatrixAtPoint(fm.f, x0)
	return fm.Combine(alpha, beta, gamma)
}

// ProofEvalBlock evaluates P at every point of xs, hoisting the
// per-prime tensor setup — reduced bases, Lagrange denominator
// inverses, fan-out index table — out of the point loop via a shared
// tensor.PointEvaluator. Results are identical to point-wise ProofEval.
func (fm *Form) ProofEvalBlock(dc tensor.Decomposition, xs []uint64) ([]uint64, error) {
	if dc.N() != fm.n {
		return nil, fmt.Errorf("cliques: decomposition covers N=%d, form has N=%d", dc.N(), fm.n)
	}
	pe := dc.NewPointEvaluator(fm.f)
	out := make([]uint64, len(xs))
	for i, x0 := range xs {
		alpha, beta, gamma := pe.MatricesAt(x0)
		v, err := fm.Combine(alpha, beta, gamma)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
