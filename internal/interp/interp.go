// Package interp provides exact polynomial interpolation over the
// rationals with big integers: the final reconstruction step that turns
// CRT-recovered evaluation grids (chromatic-polynomial values at
// t = 1..n+1, Potts partition-function grids for the Tutte polynomial)
// into integer coefficient vectors.
package interp

import (
	"fmt"
	"math/big"
)

// LagrangeInt interpolates the unique polynomial of degree
// < len(points) through (points[i], values[i]) and returns its
// coefficients, which must come out integral (they do for the counting
// polynomials this package serves); otherwise an error is returned.
func LagrangeInt(points []int64, values []*big.Int) ([]*big.Int, error) {
	n := len(points)
	if n == 0 || n != len(values) {
		return nil, fmt.Errorf("interp: %d points, %d values", n, len(values))
	}
	seen := make(map[int64]bool, n)
	for _, x := range points {
		if seen[x] {
			return nil, fmt.Errorf("interp: duplicate point %d", x)
		}
		seen[x] = true
	}
	// Accumulate Σ_i y_i · Π_{j≠i} (x - x_j)/(x_i - x_j) in big.Rat
	// coefficients.
	acc := make([]*big.Rat, n)
	for i := range acc {
		acc[i] = new(big.Rat)
	}
	for i := 0; i < n; i++ {
		if values[i].Sign() == 0 {
			continue
		}
		// numer(x) = Π_{j≠i} (x - x_j), denom = Π_{j≠i} (x_i - x_j).
		numer := make([]*big.Int, 1, n)
		numer[0] = big.NewInt(1)
		denom := big.NewInt(1)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			xj := big.NewInt(points[j])
			// numer *= (x - x_j)
			next := make([]*big.Int, len(numer)+1)
			for k := range next {
				next[k] = new(big.Int)
			}
			for k, c := range numer {
				next[k+1].Add(next[k+1], c)
				next[k].Sub(next[k], new(big.Int).Mul(c, xj))
			}
			numer = next
			denom.Mul(denom, new(big.Int).Sub(big.NewInt(points[i]), xj))
		}
		scale := new(big.Rat).SetFrac(values[i], denom)
		for k, c := range numer {
			term := new(big.Rat).SetFrac(c, big.NewInt(1))
			acc[k].Add(acc[k], term.Mul(term, scale))
		}
	}
	out := make([]*big.Int, n)
	for k, c := range acc {
		if !c.IsInt() {
			return nil, fmt.Errorf("interp: coefficient of x^%d is non-integral (%v)", k, c)
		}
		out[k] = new(big.Int).Set(c.Num())
	}
	return out, nil
}

// EvalInt evaluates a big-integer coefficient polynomial at an integer
// point by Horner's rule.
func EvalInt(coeffs []*big.Int, x *big.Int) *big.Int {
	acc := new(big.Int)
	for k := len(coeffs) - 1; k >= 0; k-- {
		acc.Mul(acc, x)
		acc.Add(acc, coeffs[k])
	}
	return acc
}

// Trim removes trailing zero coefficients (returning at least one).
func Trim(coeffs []*big.Int) []*big.Int {
	n := len(coeffs)
	for n > 1 && coeffs[n-1].Sign() == 0 {
		n--
	}
	return coeffs[:n]
}
