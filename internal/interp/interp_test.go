package interp

import (
	"math/big"
	"math/rand"
	"testing"
)

func TestLagrangeIntRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		deg := 1 + rng.Intn(8)
		coeffs := make([]*big.Int, deg+1)
		for i := range coeffs {
			coeffs[i] = big.NewInt(rng.Int63n(2001) - 1000)
		}
		points := make([]int64, deg+1)
		values := make([]*big.Int, deg+1)
		for i := range points {
			points[i] = int64(i*3 - 5) // non-consecutive, includes negatives
			values[i] = EvalInt(coeffs, big.NewInt(points[i]))
		}
		got, err := LagrangeInt(points, values)
		if err != nil {
			t.Fatal(err)
		}
		for i := range coeffs {
			if got[i].Cmp(coeffs[i]) != 0 {
				t.Fatalf("trial %d: c_%d = %v, want %v", trial, i, got[i], coeffs[i])
			}
		}
	}
}

func TestLagrangeIntErrors(t *testing.T) {
	one := big.NewInt(1)
	if _, err := LagrangeInt(nil, nil); err == nil {
		t.Fatal("empty input must error")
	}
	if _, err := LagrangeInt([]int64{1}, []*big.Int{one, one}); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := LagrangeInt([]int64{2, 2}, []*big.Int{one, one}); err == nil {
		t.Fatal("duplicate points must error")
	}
	// Half-integer slope: non-integral coefficients.
	if _, err := LagrangeInt([]int64{0, 2}, []*big.Int{big.NewInt(0), one}); err == nil {
		t.Fatal("non-integral interpolant must error")
	}
}

func TestEvalIntHorner(t *testing.T) {
	// 2 - 3x + x^3 at x = -2: 2 + 6 - 8 = 0.
	coeffs := []*big.Int{big.NewInt(2), big.NewInt(-3), big.NewInt(0), big.NewInt(1)}
	if got := EvalInt(coeffs, big.NewInt(-2)); got.Sign() != 0 {
		t.Fatalf("got %v, want 0", got)
	}
	if got := EvalInt(nil, big.NewInt(5)); got.Sign() != 0 {
		t.Fatalf("empty polynomial = %v, want 0", got)
	}
}

func TestTrim(t *testing.T) {
	in := []*big.Int{big.NewInt(1), big.NewInt(0), big.NewInt(0)}
	if got := Trim(in); len(got) != 1 {
		t.Fatalf("Trim kept %d coefficients", len(got))
	}
	zero := []*big.Int{big.NewInt(0)}
	if got := Trim(zero); len(got) != 1 {
		t.Fatal("Trim must keep at least one coefficient")
	}
}
