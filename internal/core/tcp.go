package core

// TCPTransport carries NodeShares over real sockets — the ROADMAP's
// networked transport, behind the same Transport seam every in-memory
// implementation satisfies. One instance plays both roles of a
// loopback cluster: the collector side binds a listener at
// construction (so senders can connect before the gather starts),
// accepts connections, and feeds decoded frames into the shared
// quorum-gather loop; the sender side dials the collector per message
// with bounded retry and backoff. A send-only instance (no listen
// address) is the shape a remote compute process would use.
//
// Failure philosophy: a socket can lose, truncate, or corrupt frames,
// so the TCP path changes no engine semantics — a message that never
// decodes simply never arrives, the collector reports the sender
// missing, and the decode stage erases its coordinates under the
// MaxErasures/GatherGrace budget exactly as for any other delivery
// fault. Malformed frames are counted (BadFrames) and cost the peer
// its connection, never an allocation beyond the bytes received.
// LossyTransport composes on top for loopback chaos testing.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// ErrNotCollector is returned when Gather is called on a send-only
// TCPTransport (one constructed without a listen address).
var ErrNotCollector = errors.New("core: tcp transport is send-only (no listen address)")

// TCPConfig parameterizes a TCPTransport. The zero value of every
// field has a usable default except the addresses: at least one of
// Addr and ListenAddr must be set.
type TCPConfig struct {
	// Addr is the address senders dial to reach the collector. Empty
	// with a non-empty ListenAddr means "dial whatever the listener
	// bound" — the loopback case, which supports ephemeral ":0" ports.
	Addr string
	// ListenAddr, when non-empty, makes this instance the run's
	// collector: the listener binds at construction. Empty means
	// send-only — a Gather on such an instance fails with
	// ErrNotCollector. (The facade's WithTCPTransport option defaults
	// the bind address to the dial address; this constructor does
	// not, because send-only is exactly Addr-without-ListenAddr.)
	ListenAddr string
	// DialTimeout bounds one dial attempt (default 2s).
	DialTimeout time.Duration
	// RetryBackoff is the initial gap between dial attempts, doubling
	// per retry (default 50ms) — a sender may come up before its
	// collector does.
	RetryBackoff time.Duration
	// DialRetries is the number of redials after a failed first
	// attempt (default 4; negative disables retrying).
	DialRetries int
	// MaxFrameBytes caps the payload size a reader accepts (default
	// 64 MiB; hard cap 1 GiB). Frames claiming more are rejected
	// before any allocation and cost the peer its connection.
	MaxFrameBytes int
}

func (cfg TCPConfig) withDefaults() TCPConfig {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 50 * time.Millisecond
	}
	if cfg.DialRetries == 0 {
		cfg.DialRetries = 4
	}
	if cfg.DialRetries < 0 {
		cfg.DialRetries = 0
	}
	if cfg.MaxFrameBytes <= 0 {
		cfg.MaxFrameBytes = 64 << 20
	}
	if cfg.MaxFrameBytes > maxFrameBytesHardCap {
		cfg.MaxFrameBytes = maxFrameBytesHardCap
	}
	return cfg
}

// TCPTransport is a Transport whose messages travel length-prefixed
// binary frames over TCP. Safe for concurrent Send calls;
// Gather/GatherQuorum must be called from a single collector goroutine
// (the engine's), and returning from either shuts the transport down:
// the listener closes, reader connections close, and any straggler's
// Send completes as a no-op — the run no longer wants the message.
type TCPTransport struct {
	cfg TCPConfig
	k   int
	ln  net.Listener
	ch  chan NodeShares

	done      chan struct{}
	stop      sync.Once
	wg        sync.WaitGroup
	mu        sync.Mutex
	conns     map[net.Conn]bool
	badFrames atomic.Int64
}

var (
	_ Transport      = (*TCPTransport)(nil)
	_ QuorumGatherer = (*TCPTransport)(nil)
)

// NewTCPTransport builds a transport for a run of k nodes. With a
// listen address it binds immediately (retrying briefly on "address in
// use", so back-to-back runs can share one fixed port) and starts
// accepting; construction failure means the collector cannot exist and
// is returned as an error.
func NewTCPTransport(k int, cfg TCPConfig) (*TCPTransport, error) {
	if k < 1 {
		k = 1
	}
	cfg = cfg.withDefaults()
	if cfg.Addr == "" && cfg.ListenAddr == "" {
		return nil, errors.New("core: tcp transport needs an Addr or ListenAddr")
	}
	t := &TCPTransport{
		cfg: cfg,
		k:   k,
		// Headroom for duplicated deliveries, mirroring the sharded
		// transport: a lossy wrapper must never wedge a reader.
		ch:    make(chan NodeShares, 2*k+2),
		done:  make(chan struct{}),
		conns: make(map[net.Conn]bool),
	}
	if cfg.ListenAddr != "" {
		ln, err := listenWithRetry(cfg.ListenAddr)
		if err != nil {
			return nil, fmt.Errorf("core: tcp listen %s: %w", cfg.ListenAddr, err)
		}
		t.ln = ln
		t.wg.Add(1)
		go t.acceptLoop()
	}
	return t, nil
}

// listenWithRetry binds addr, retrying briefly when the previous run's
// listener on a fixed port is still tearing down. Concurrent runs on
// one fixed port still conflict — use ":0" (or per-run addresses) when
// runs overlap.
func listenWithRetry(addr string) (net.Listener, error) {
	backoff := 100 * time.Millisecond
	var lastErr error
	for attempt := 0; attempt < 5; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			return ln, nil
		}
		lastErr = err
		// errors.Is catches the errno portably; the string match is a
		// fallback for wrapped errors that lose it.
		if !errors.Is(err, syscall.EADDRINUSE) && !strings.Contains(err.Error(), "address already in use") {
			break
		}
	}
	return nil, lastErr
}

// Addr returns the address senders should dial. A loopback instance —
// one whose dial address is unset or identical to its listen address —
// dials what the listener actually bound, which is what makes
// ephemeral ":0" ports work; a split configuration (bind behind NAT,
// dial a public name) keeps the configured dial address.
func (t *TCPTransport) Addr() string {
	if t.ln != nil && (t.cfg.Addr == "" || t.cfg.Addr == t.cfg.ListenAddr) {
		return t.ln.Addr().String()
	}
	return t.cfg.Addr
}

// BadFrames reports how many connections were dropped for malformed
// frames — wrong magic, implausible geometry, oversized or short body.
func (t *TCPTransport) BadFrames() int64 { return t.badFrames.Load() }

// acceptLoop hands each inbound connection to its own reader
// goroutine; it ends when shutdown closes the listener.
func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.mu.Lock()
		select {
		case <-t.done:
			// Shutdown already swept the conns map; a connection
			// registered now would never be closed and its reader
			// would hang Close() forever. Turn it away instead.
			t.mu.Unlock()
			conn.Close()
			continue
		default:
		}
		t.conns[conn] = true
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readConn(conn)
	}
}

// readConn decodes frames off one connection into the collector
// channel until the stream ends, the transport shuts down, or a
// malformed frame makes the stream untrustworthy.
func (t *TCPTransport) readConn(conn net.Conn) {
	defer func() {
		t.mu.Lock()
		delete(t.conns, conn)
		t.mu.Unlock()
		conn.Close()
		t.wg.Done()
	}()
	for {
		payload, err := ReadFrame(conn, t.cfg.MaxFrameBytes)
		if err != nil {
			// A clean EOF or a died connection is a delivery fault the
			// quorum gather absorbs; only protocol violations count as
			// bad frames. Either way the connection is done — past a
			// framing error the stream cannot be resynchronized.
			if errors.Is(err, ErrBadFrame) {
				t.badFrames.Add(1)
			}
			return
		}
		m, err := DecodeNodeShares(payload)
		if err != nil {
			t.badFrames.Add(1)
			return
		}
		if m.ID < 0 || m.ID >= t.k || m.From < 0 || m.From >= t.k {
			// A sender (or claimed repair sponsor) this run never had:
			// feeding it through would fail the whole gather as a
			// protocol violation, but over a socket it is just a
			// hostile or misrouted peer — cost it the connection, not
			// the run. (The engine additionally validates each claimed
			// shape against the run geometry.)
			t.badFrames.Add(1)
			return
		}
		select {
		case t.ch <- m:
		case <-t.done:
			return
		}
	}
}

// Send implements Transport: encode, dial the collector (retrying with
// backoff — it may not be up yet), write one frame, close. Cancelling
// ctx aborts a blocked dial or write; after the gather has returned,
// Send completes as a no-op.
func (t *TCPTransport) Send(ctx context.Context, m NodeShares) error {
	payload, err := EncodeNodeShares(m)
	if err != nil {
		return err
	}
	if len(payload) > t.cfg.MaxFrameBytes {
		// The receiver enforces the same cap, so a larger frame would
		// be "sent" successfully and silently dropped on arrival —
		// fail here with the real cause instead.
		return fmt.Errorf("core: tcp send from node %d: frame is %d bytes, cap %d (raise TCPConfig.MaxFrameBytes)",
			m.ID, len(payload), t.cfg.MaxFrameBytes)
	}
	backoff := t.cfg.RetryBackoff
	var lastErr error
	for attempt := 0; attempt <= t.cfg.DialRetries; attempt++ {
		if attempt > 0 {
			timer := time.NewTimer(backoff)
			select {
			case <-timer.C:
			case <-t.done:
				timer.Stop()
				return nil
			case <-ctx.Done():
				timer.Stop()
				return ctx.Err()
			}
			backoff *= 2
		}
		select {
		case <-t.done:
			return nil
		default:
		}
		err := t.sendOnce(ctx, payload)
		if err == nil {
			return nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
	return fmt.Errorf("core: tcp send from node %d to %s failed after %d attempts: %w",
		m.ID, t.Addr(), t.cfg.DialRetries+1, lastErr)
}

// sendOnce is one dial+write attempt. A per-connection watchdog
// goroutine forces the deadline when the run is cancelled or the
// transport shuts down, so a write blocked on a dead collector cannot
// outlive either.
func (t *TCPTransport) sendOnce(ctx context.Context, payload []byte) error {
	d := net.Dialer{Timeout: t.cfg.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", t.Addr())
	if err != nil {
		return err
	}
	defer conn.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			conn.SetDeadline(time.Now())
		case <-t.done:
			conn.SetDeadline(time.Now())
		case <-stop:
		}
	}()
	return WriteFrame(conn, payload)
}

// Gather implements Transport (strict: counts raw messages); see
// TCPTransport's doc for the shutdown-on-return contract.
func (t *TCPTransport) Gather(ctx context.Context, k int) ([]NodeShares, error) {
	if t.ln == nil {
		return nil, ErrNotCollector
	}
	defer t.shutdown()
	out := make([]NodeShares, 0, k)
	for len(out) < k {
		select {
		case m := <-t.ch:
			out = append(out, m)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return out, nil
}

// GatherQuorum implements QuorumGatherer over the collector channel —
// the same loop every in-memory transport uses, so MaxErasures and
// GatherGrace behave identically over a socket. With spec.KeepOpen the
// listener and reader connections survive the gather's return: the
// engine may run repair rounds over this instance — follow-up frames
// arrive on existing or fresh connections alike — and calls Close when
// the run ends.
func (t *TCPTransport) GatherQuorum(ctx context.Context, spec GatherSpec) ([]NodeShares, error) {
	if t.ln == nil {
		return nil, ErrNotCollector
	}
	if !spec.KeepOpen {
		defer t.shutdown()
	}
	return gatherQuorum(ctx, t.ch, spec)
}

// shutdown ends the transport's world: listener closed, reader
// connections closed, stragglers' Send released as no-ops. Idempotent.
func (t *TCPTransport) shutdown() {
	t.stop.Do(func() {
		close(t.done)
		if t.ln != nil {
			t.ln.Close()
		}
		t.mu.Lock()
		for conn := range t.conns {
			conn.Close()
		}
		t.mu.Unlock()
	})
}

// Close shuts the transport down and waits for the accept and reader
// goroutines to exit — for callers that never reach a gather (tests,
// aborted runs). Gather paths shut down implicitly on return.
func (t *TCPTransport) Close() {
	t.shutdown()
	t.wg.Wait()
}

// NewTCPFactory adapts NewTCPTransport to the TransportFactory shape.
// A factory cannot return an error, so a failed construction (bad
// address, bind failure) yields a transport whose every method reports
// it — the run fails with the root cause on first use.
func NewTCPFactory(cfg TCPConfig) TransportFactory {
	return func(k int) Transport {
		t, err := NewTCPTransport(k, cfg)
		if err != nil {
			return FailedTransport(err)
		}
		return t
	}
}

// FailedTransport returns a Transport (and QuorumGatherer) whose every
// method fails with err — the factory-shaped surface for construction
// failures.
func FailedTransport(err error) Transport { return failedTransport{err} }

type failedTransport struct{ err error }

func (t failedTransport) Send(context.Context, NodeShares) error { return t.err }
func (t failedTransport) Gather(context.Context, int) ([]NodeShares, error) {
	return nil, t.err
}
func (t failedTransport) GatherQuorum(context.Context, GatherSpec) ([]NodeShares, error) {
	return nil, t.err
}
