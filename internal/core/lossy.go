package core

// LossyTransport simulates a faulty network over any inner transport:
// seeded, per-message decisions to drop, delay, or duplicate a node's
// broadcast (reordering follows from delays and duplicate timing). The
// fate of a message is a pure function of (Seed, sender id) — not of
// the wall-clock interleaving of Send calls — so a run's delivery-fault
// pattern is reproducible no matter how the scheduler orders the
// senders, which is what lets the chaos harness assert bit-identical
// proofs across repetitions.
//
// Loss is a *delivery* fault: a dropped message simply never reaches
// the collector, which reports the sender as missing and the decode
// stage erases its coordinates. Contrast the Adversary, which corrupts
// the *content* of delivered shares. The two compose freely.

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrQuorumUnsupported is returned when a run that tolerates delivery
// faults (Options.MaxErasures > 0) is configured with a transport that
// cannot gather by quorum.
var ErrQuorumUnsupported = errors.New("core: transport does not support quorum gather")

// LossyConfig parameterizes the simulated faults. The zero value is a
// perfect network.
type LossyConfig struct {
	// Seed drives every per-message fate decision.
	Seed int64
	// DropNodes lists senders whose broadcasts are always lost —
	// deterministic whole-node delivery failure, the transport-level
	// analogue of SilentNodes.
	DropNodes []int
	// DropRate is the probability a message is dropped.
	DropRate float64
	// DupRate is the probability a surviving message is delivered twice.
	DupRate float64
	// DelayRate is the probability a surviving message is held for a
	// fate-determined duration in (0, MaxDelay] before delivery.
	DelayRate float64
	// MaxDelay bounds the injected delay; 0 disables delays.
	MaxDelay time.Duration
}

// LossyTransport wraps an inner Transport with simulated loss. Safe for
// concurrent Send calls iff the inner transport is.
type LossyTransport struct {
	inner Transport
	cfg   LossyConfig
	drop  map[int]bool
	// wg tracks in-flight delayed deliveries, which run on their own
	// goroutines so the injected latency holds the *message*, not the
	// sending worker's pool slot. DrainSends waits on it and surfaces
	// the first delivery failure (errOnce/sendErr), so an asynchronous
	// send cannot silently lose the error a blocking one would have
	// returned.
	wg      sync.WaitGroup
	errOnce sync.Once
	sendErr error
}

var (
	_ Transport      = (*LossyTransport)(nil)
	_ QuorumGatherer = (*LossyTransport)(nil)
)

// NewLossyTransport wraps inner with the given fault model.
func NewLossyTransport(inner Transport, cfg LossyConfig) *LossyTransport {
	drop := make(map[int]bool, len(cfg.DropNodes))
	for _, id := range cfg.DropNodes {
		drop[id] = true
	}
	return &LossyTransport{inner: inner, cfg: cfg, drop: drop}
}

// NewLossyFactory returns a TransportFactory that wraps inner-built
// transports with the fault model (inner nil means the default
// BroadcastBus).
func NewLossyFactory(cfg LossyConfig, inner TransportFactory) TransportFactory {
	if inner == nil {
		inner = func(k int) Transport { return NewBroadcastBus(k) }
	}
	return func(k int) Transport { return NewLossyTransport(inner(k), cfg) }
}

// chance maps a hash draw to [0, 1).
func chance(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// fate decides what the network does to node id's broadcast —
// deterministic in (Seed, id), independent of call order.
func (t *LossyTransport) fate(id int) (drop bool, copies int, delay time.Duration) {
	if t.drop[id] {
		return true, 0, 0
	}
	seed := uint64(t.cfg.Seed)
	if chance(garbage(seed, uint64(id), 1)) < t.cfg.DropRate {
		return true, 0, 0
	}
	copies = 1
	if chance(garbage(seed, uint64(id), 2)) < t.cfg.DupRate {
		copies = 2
	}
	if t.cfg.MaxDelay > 0 && chance(garbage(seed, uint64(id), 3)) < t.cfg.DelayRate {
		delay = 1 + time.Duration(garbage(seed, uint64(id), 4)%uint64(t.cfg.MaxDelay))
	}
	return false, copies, delay
}

// Send implements Transport: the message meets its fate on the way to
// the inner transport. A drop consumes the message silently — from the
// sender's point of view the broadcast succeeded. A delayed message is
// handed to a delivery goroutine and Send returns immediately: the
// injected latency models the *network* holding the message, so it
// must not serialize the sending workers or skew compute-time
// readings. The delivery goroutine honors the Send context — the
// engine scopes each gather round's sends to their own context and
// cancels it when the round's gather returns, so a still-pending
// delayed copy from round N is abandoned before round N+1 begins and
// can never land in a later round's gather.
// Fate (drop/copies/delay) stays a pure function of (Seed, sender id),
// where "sender" is the message's physical origin: a dead node's range
// re-sent by a surviving sponsor in a repair round rides the sponsor's
// link, so DropNodes containing the dead owner does not re-drop the
// repair — the owner's *link* is dead, the sponsor's is not. Fate is
// deliberately not re-drawn per round, which keeps loss patterns pure
// in (Seed, link) and repair outcomes schedule-independent.
func (t *LossyTransport) Send(ctx context.Context, m NodeShares) error {
	drop, copies, delay := t.fate(m.Origin())
	if drop {
		return nil
	}
	if delay > 0 {
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			timer := time.NewTimer(delay)
			defer timer.Stop()
			select {
			case <-timer.C:
			case <-ctx.Done():
				return
			}
			for i := 0; i < copies; i++ {
				if err := t.inner.Send(ctx, m); err != nil {
					// Abandonment via cancellation is the run winding
					// down; anything else is a delivery failure the
					// blocking path would have returned — keep it for
					// DrainSends.
					if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
						t.errOnce.Do(func() { t.sendErr = err })
					}
					return
				}
			}
		}()
		return nil
	}
	for i := 0; i < copies; i++ {
		if err := t.inner.Send(ctx, m); err != nil {
			return err
		}
	}
	return nil
}

// DrainSends implements SendDrainer: it blocks until every delayed
// delivery handed off by Send has finished or been abandoned (the
// goroutines honor their Send context, so this terminates once the
// engine cancels sending) and returns the first delivery failure. The
// engine calls it after the last Send returns and before announcing
// SendsDone, which both restores the blocking path's error propagation
// and keeps the "no further Send can occur" signal truthful.
func (t *LossyTransport) DrainSends(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		t.wg.Wait()
		close(done)
	}()
	// The delivery goroutines honor their own Send contexts, but a
	// user-supplied inner transport might not be prompt about it — the
	// drain must still be interruptible by the engine's context.
	select {
	case <-done:
		return t.sendErr
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Gather implements Transport by delegation. With drops configured, a
// strict gather can never complete — use GatherQuorum (the engine does
// when Options.MaxErasures > 0).
func (t *LossyTransport) Gather(ctx context.Context, k int) ([]NodeShares, error) {
	return t.inner.Gather(ctx, k)
}

// GatherQuorum implements QuorumGatherer by delegation; the inner
// transport must support it too.
func (t *LossyTransport) GatherQuorum(ctx context.Context, spec GatherSpec) ([]NodeShares, error) {
	qg, ok := t.inner.(QuorumGatherer)
	if !ok {
		return nil, ErrQuorumUnsupported
	}
	return qg.GatherQuorum(ctx, spec)
}

// Close tears the inner transport down when it has a lifecycle to tear
// down (sharded relays, a TCP listener kept open across repair rounds).
// The wrapper itself holds no resources beyond the delayed-delivery
// goroutines, which exit on their own cancelled Send contexts.
func (t *LossyTransport) Close() {
	if c, ok := t.inner.(interface{ Close() }); ok {
		c.Close()
	}
}
