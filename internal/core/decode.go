package core

// Per-node error correction (paper §1.3 step 2): every honest node runs
// the Gao decoder over the word it received, recovering the true proof
// and identifying the corrupted shares' owners.

import (
	"context"
	"fmt"
	"sort"

	"camelot/internal/poly"
	"camelot/internal/rs"
)

// decodeResult is one honest node's view after decoding: the recovered
// proof plus the node ids it observed contributing corrupted shares.
type decodeResult struct {
	coeffs    map[uint64][][]uint64
	evals     map[uint64][][]uint64
	suspects  map[int]bool
	maxErrors int
}

func (a *decodeResult) sameProof(b *decodeResult) bool {
	for q, ac := range a.coeffs {
		bc, ok := b.coeffs[q]
		if !ok || len(ac) != len(bc) {
			return false
		}
		for w := range ac {
			if !poly.Equal(ac[w], bc[w]) {
				return false
			}
		}
	}
	return true
}

// decodeAsNode assembles the word the recipient received — shares from
// each delivered sender pass through the adversary — and runs the Gao
// decoder for every prime and coordinate, checking ctx between decodes.
// Each prime's ErasurePlan carries the coordinates of senders whose
// broadcasts the transport lost: their word slots are never read, and
// they never become suspects — only content errors among delivered
// shares do.
func decodeAsNode(ctx context.Context, recipient int, primes []uint64, plans []*rs.ErasurePlan,
	shares []NodeShares, assign PointAssignment, adv Adversary, w, e int) (*decodeResult, error) {
	res := &decodeResult{
		coeffs:   make(map[uint64][][]uint64, len(primes)),
		evals:    make(map[uint64][][]uint64, len(primes)),
		suspects: make(map[int]bool),
	}
	word := make([]uint64, e)
	for pi, q := range primes {
		res.coeffs[q] = make([][]uint64, w)
		res.evals[q] = make([][]uint64, w)
		for c := 0; c < w; c++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			for _, sender := range shares {
				// The adversary controls *nodes*, and what it corrupts is
				// what a node computes and sends: keyed by the message's
				// physical origin, so a byzantine survivor's repair of a
				// dead node's range arrives corrupted, while an honest
				// sponsor's repair of a byzantine-but-silent node's range
				// arrives clean.
				for x := sender.Lo; x < sender.Hi; x++ {
					v, delivered := adv.Transform(sender.Origin(), recipient, q, c, x, sender.Vals[pi][c][x-sender.Lo])
					if !delivered {
						v = 0 // suppressed share: decoder sees it as a (probable) error symbol
					}
					word[x] = v
				}
			}
			msg, corrected, locs, err := plans[pi].Decode(word)
			if err != nil {
				return nil, fmt.Errorf("prime %d coord %d: %w", q, c, err)
			}
			res.coeffs[q][c] = msg
			res.evals[q][c] = corrected
			for _, loc := range locs {
				res.suspects[assign.Owner(loc)] = true
			}
			if len(locs) > res.maxErrors {
				res.maxErrors = len(locs)
			}
		}
	}
	return res, nil
}

func honestNodes(k int, adv Adversary) []int {
	bad := make(map[int]bool)
	for _, id := range adv.CorruptNodes() {
		bad[id] = true
	}
	out := make([]int, 0, k)
	for id := 0; id < k; id++ {
		if !bad[id] {
			out = append(out, id)
		}
	}
	return out
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
