package core

// GeometryCache is the session layer's warm per-prime state: the
// immutable, reusable pieces of engine geometry — NTT-friendly prime
// selections and per-prime Reed–Solomon codes keyed by (q, e, d) — are
// computed once and shared by every run a Cluster executes. One-shot
// core.Run calls (no cache) recompute them per run, which is exactly
// the facade overhead the Cluster API exists to amortize.

import (
	"fmt"
	"sync"

	"camelot/internal/ff"
	"camelot/internal/poly"
	"camelot/internal/rs"
)

// GeometryCache memoizes prime selection and Reed–Solomon code
// construction across runs. All methods are safe for concurrent use and
// work on a nil receiver (falling through to direct computation), so
// the engine can consult Options.Geometry unconditionally.
//
// Memory stays bounded for long-lived clusters sweeping many distinct
// problem shapes: when either map reaches maxGeometryEntries the whole
// map is dropped and rebuilt — an epoch flush rather than LRU, because
// the steady state of a serving cluster is a handful of hot geometries
// that immediately repopulate, and a flush is contention-free.
type GeometryCache struct {
	mu     sync.Mutex
	primes map[primesKey][]uint64
	codes  map[codeKey]*rs.Code
}

// maxGeometryEntries caps each memo map. A code for a length-e word
// holds O(e) field elements, so the cap bounds warm state to a few
// hundred codes regardless of how many shapes a process ever sees.
const maxGeometryEntries = 256

type primesKey struct {
	count int
	min   uint64
	order int
}

type codeKey struct {
	q    uint64
	e, d int
}

// NewGeometryCache returns an empty cache.
func NewGeometryCache() *GeometryCache {
	return &GeometryCache{
		primes: make(map[primesKey][]uint64),
		codes:  make(map[codeKey]*rs.Code),
	}
}

// choosePrimes is ChoosePrimes with memoization. The returned slice is
// owned by the cache; callers copy before publishing it.
func (gc *GeometryCache) choosePrimes(count int, min uint64, order int) ([]uint64, error) {
	if gc == nil {
		return ChoosePrimes(count, min, order)
	}
	key := primesKey{count: count, min: min, order: order}
	gc.mu.Lock()
	if ps, ok := gc.primes[key]; ok {
		gc.mu.Unlock()
		return ps, nil
	}
	gc.mu.Unlock()
	// Compute outside the lock: prime scans are the expensive part and
	// racing first builds are harmless (last write wins with an equal
	// value — the scan is deterministic).
	ps, err := ChoosePrimes(count, min, order)
	if err != nil {
		return nil, err
	}
	gc.mu.Lock()
	if len(gc.primes) >= maxGeometryEntries {
		gc.primes = make(map[primesKey][]uint64)
	}
	gc.primes[key] = ps
	gc.mu.Unlock()
	return ps, nil
}

// code returns the Reed–Solomon code for consecutive points 0..e-1 and
// degree bound d over GF(q), building and caching it on first use.
// rs.Code is immutable after construction and safe for concurrent
// decoders, which is what makes cross-run sharing sound.
func (gc *GeometryCache) code(q uint64, e, d int) (*rs.Code, error) {
	if gc == nil {
		return buildCode(q, e, d)
	}
	key := codeKey{q: q, e: e, d: d}
	gc.mu.Lock()
	if c, ok := gc.codes[key]; ok {
		gc.mu.Unlock()
		return c, nil
	}
	gc.mu.Unlock()
	c, err := buildCode(q, e, d)
	if err != nil {
		return nil, err
	}
	gc.mu.Lock()
	if len(gc.codes) >= maxGeometryEntries {
		gc.codes = make(map[codeKey]*rs.Code)
	}
	gc.codes[key] = c
	gc.mu.Unlock()
	return c, nil
}

func buildCode(q uint64, e, d int) (*rs.Code, error) {
	f, err := ff.New(q)
	if err != nil {
		return nil, fmt.Errorf("building field mod %d: %w", q, err)
	}
	code, err := rs.New(poly.NewRing(f), rs.ConsecutivePoints(e), d)
	if err != nil {
		return nil, fmt.Errorf("building code mod %d: %w", q, err)
	}
	return code, nil
}
