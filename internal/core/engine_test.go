package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// slowProblem sleeps per evaluation, for cancellation-promptness tests.
type slowProblem struct {
	degree int
	delay  time.Duration
}

var _ Problem = (*slowProblem)(nil)

func (p *slowProblem) Name() string       { return "slow" }
func (p *slowProblem) Width() int         { return 1 }
func (p *slowProblem) Degree() int        { return p.degree }
func (p *slowProblem) MinModulus() uint64 { return 257 }
func (p *slowProblem) NumPrimes() int     { return 1 }
func (p *slowProblem) Evaluate(q, x0 uint64) ([]uint64, error) {
	time.Sleep(p.delay)
	return []uint64{x0 % q}, nil
}

// batchPolyProblem wraps polyProblem with a block path, optionally
// sabotaged to return malformed blocks.
type batchPolyProblem struct {
	*polyProblem
	blockCalls atomic.Int64
	badRows    bool
	badWidth   bool
}

var _ BatchProblem = (*batchPolyProblem)(nil)

func (p *batchPolyProblem) EvaluateBlock(q uint64, xs []uint64) ([][]uint64, error) {
	p.blockCalls.Add(1)
	if p.badRows {
		return make([][]uint64, len(xs)+1), nil
	}
	out := make([][]uint64, len(xs))
	for i, x := range xs {
		vec, err := p.polyProblem.Evaluate(q, x)
		if err != nil {
			return nil, err
		}
		if p.badWidth {
			vec = vec[:1]
		}
		out[i] = vec
	}
	return out, nil
}

func TestRunUsesBatchPath(t *testing.T) {
	bp := &batchPolyProblem{polyProblem: testProblem()}
	pointProof, _, err := Run(context.Background(), bp.polyProblem, Options{Nodes: 3, FaultTolerance: 2})
	if err != nil {
		t.Fatal(err)
	}
	batchProof, rep, err := Run(context.Background(), bp, Options{Nodes: 3, FaultTolerance: 2})
	if err != nil {
		t.Fatal(err)
	}
	if bp.blockCalls.Load() == 0 {
		t.Fatal("EvaluateBlock was never called")
	}
	if !rep.Verified {
		t.Fatal("batch run not verified")
	}
	q := pointProof.Primes[0]
	for w := range pointProof.Coeffs[q] {
		for j := range pointProof.Coeffs[q][w] {
			if pointProof.Coeffs[q][w][j] != batchProof.Coeffs[q][w][j] {
				t.Fatal("batch and per-point proofs differ")
			}
		}
	}
}

func TestRunRejectsMalformedBlocks(t *testing.T) {
	for name, bp := range map[string]*batchPolyProblem{
		"wrong-rows":  {polyProblem: testProblem(), badRows: true},
		"wrong-width": {polyProblem: testProblem(), badWidth: true},
	} {
		if _, _, err := Run(context.Background(), bp, Options{Nodes: 2}); err == nil {
			t.Fatalf("%s: malformed EvaluateBlock output accepted", name)
		}
	}
}

func TestRunMaxParallelismOneMatchesDefault(t *testing.T) {
	p := testProblem()
	serial, _, err := Run(context.Background(), p, Options{Nodes: 6, FaultTolerance: 3, MaxParallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	pooled, _, err := Run(context.Background(), p, Options{Nodes: 6, FaultTolerance: 3, MaxParallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := serial.Primes[0]
	for w := range serial.Coeffs[q] {
		for j := range serial.Coeffs[q][w] {
			if serial.Coeffs[q][w][j] != pooled.Coeffs[q][w][j] {
				t.Fatal("worker pool size changed the proof")
			}
		}
	}
}

func TestSchedulerBoundsParallelism(t *testing.T) {
	const workers, tasks = 3, 20
	var cur, peak atomic.Int64
	s := newScheduler(workers)
	err := s.run(context.Background(), tasks, func(int) error {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > workers {
		t.Fatalf("observed %d concurrent tasks, pool bound is %d", got, workers)
	}
}

func TestSchedulerFirstErrorWinsAndStops(t *testing.T) {
	var ran atomic.Int64
	boom := errors.New("boom")
	s := newScheduler(1)
	err := s.run(context.Background(), 100, func(id int) error {
		ran.Add(1)
		if id == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := ran.Load(); n > 4 {
		t.Fatalf("pool kept scheduling after error: %d tasks ran", n)
	}
}

func TestBroadcastBusRoundTrip(t *testing.T) {
	bus := NewBroadcastBus(3)
	ctx := context.Background()
	var wg sync.WaitGroup
	for id := 0; id < 3; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if err := bus.Send(ctx, NodeShares{ID: id, Lo: id, Hi: id + 1}); err != nil {
				t.Error(err)
			}
		}(id)
	}
	wg.Wait()
	msgs, err := bus.Gather(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	all, missing, err := collectShares(msgs, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 0 {
		t.Fatalf("missing = %v on a complete gather", missing)
	}
	for id, m := range all {
		if m.ID != id || m.Lo != id {
			t.Fatalf("message %d misfiled: %+v", id, m)
		}
	}
}

func TestCollectSharesDetectsProtocolViolations(t *testing.T) {
	// Duplicated delivery is a transport fault, not a protocol
	// violation: the first copy wins and nothing is reported missing.
	all, missing, err := collectShares([]NodeShares{{ID: 0, Lo: 1}, {ID: 0, Lo: 9}, {ID: 1}}, 2, 0)
	if err != nil || len(missing) != 0 {
		t.Fatalf("duplicate delivery: all=%v missing=%v err=%v", all, missing, err)
	}
	if len(all) != 2 || all[0].Lo != 1 {
		t.Fatalf("dedup did not keep the first copy: %+v", all)
	}
	// A sender outside [0, k) is a protocol violation.
	if _, _, err := collectShares([]NodeShares{{ID: 5}}, 2, 0); err == nil {
		t.Fatal("out-of-range sender accepted")
	}
	// Missing senders are reported, not errored — the engine decides
	// whether the run is strict (fail) or erasure-tolerant (decode).
	all, missing, err = collectShares([]NodeShares{{ID: 1}}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 || len(missing) != 2 || missing[0] != 0 || missing[1] != 2 {
		t.Fatalf("all=%v missing=%v, want one delivered and missing [0 2]", all, missing)
	}
	boom := errors.New("node exploded")
	if _, _, err := collectShares([]NodeShares{{ID: 0}, {ID: 1, Err: boom}}, 2, 0); !errors.Is(err, boom) {
		t.Fatalf("in-band node error not surfaced: %v", err)
	}
}

// countingTransport wraps the bus to prove custom transports plug in.
type countingTransport struct {
	*BroadcastBus
	sends atomic.Int64
}

func (c *countingTransport) Send(ctx context.Context, m NodeShares) error {
	c.sends.Add(1)
	return c.BroadcastBus.Send(ctx, m)
}

func TestRunWithCustomTransport(t *testing.T) {
	ct := &countingTransport{}
	opts := Options{
		Nodes: 4,
		NewTransport: func(k int) Transport {
			ct.BroadcastBus = NewBroadcastBus(k)
			return ct
		},
	}
	_, rep, err := Run(context.Background(), testProblem(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified {
		t.Fatal("not verified over custom transport")
	}
	if got := ct.sends.Load(); got != int64(rep.Nodes) {
		t.Fatalf("transport saw %d sends, want %d", got, rep.Nodes)
	}
}

// blockingSendTransport models a bounded transport with a dead
// collector: Send blocks until cancelled, Gather fails immediately.
type blockingSendTransport struct {
	gatherErr error
}

func (tr *blockingSendTransport) Send(ctx context.Context, m NodeShares) error {
	<-ctx.Done()
	return ctx.Err()
}

func (tr *blockingSendTransport) Gather(ctx context.Context, k int) ([]NodeShares, error) {
	return nil, tr.gatherErr
}

func TestRunFailingGatherDoesNotDeadlock(t *testing.T) {
	boom := errors.New("collector died")
	opts := Options{
		Nodes:        4,
		NewTransport: func(k int) Transport { return &blockingSendTransport{gatherErr: boom} },
	}
	done := make(chan error, 1)
	go func() {
		_, _, err := Run(context.Background(), testProblem(), opts)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v, want the gather failure", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run deadlocked: gather failure did not cancel blocked senders")
	}
}

func TestEvaluateRangeChunksBatchWithCancellationChecks(t *testing.T) {
	bp := &batchPolyProblem{polyProblem: testProblem()}
	ctx := context.Background()
	const blockSize = 256
	const q, lo, hi = 257, 0, 2*blockSize + 10
	batch, err := evaluateRange(ctx, NewPlanner(bp), q, lo, hi, bp.Width(), blockSize)
	if err != nil {
		t.Fatal(err)
	}
	if calls := bp.blockCalls.Load(); calls != 3 {
		t.Fatalf("range of %d points used %d blocks, want 3 chunks of <= %d", hi-lo, calls, blockSize)
	}
	point, err := evaluateRange(ctx, NewPlanner(bp.polyProblem), q, lo, hi, bp.Width(), blockSize)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(batch) != fmt.Sprint(point) {
		t.Fatal("chunked batch evaluation disagrees with per-point fallback")
	}
	// A cancelled context must be noticed before any chunk runs.
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	before := bp.blockCalls.Load()
	if _, err := evaluateRange(cancelled, NewPlanner(bp), q, lo, hi, bp.Width(), blockSize); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if bp.blockCalls.Load() != before {
		t.Fatal("EvaluateBlock ran despite cancelled context")
	}
}

func TestEvaluateRangeAutotunesBlockSize(t *testing.T) {
	bp := &batchPolyProblem{polyProblem: testProblem()}
	ctx := context.Background()
	const q, lo, hi = 257, 0, 20000
	// blockSize <= 0 autotunes: the first call is a probeChunk-sized
	// probe, and these near-free evaluations push the steady-state size
	// to the maxBatchChunk clamp, so the whole range takes
	// 1 + ceil((hi-probeChunk)/maxBatchChunk) calls.
	batch, err := evaluateRange(ctx, NewPlanner(bp), q, lo, hi, bp.Width(), 0)
	if err != nil {
		t.Fatal(err)
	}
	wantCalls := int64(1 + (hi-lo-probeChunk+maxBatchChunk-1)/maxBatchChunk)
	if calls := bp.blockCalls.Load(); calls != wantCalls {
		t.Fatalf("autotuned range of %d points used %d blocks, want %d (probe %d + clamp %d)",
			hi-lo, calls, wantCalls, probeChunk, maxBatchChunk)
	}
	point, err := evaluateRange(ctx, NewPlanner(bp.polyProblem), q, lo, hi, bp.Width(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(batch) != fmt.Sprint(point) {
		t.Fatal("autotuned batch evaluation disagrees with per-point fallback")
	}
}

func TestRunCancelledContextPrompt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// 100ms per evaluation × 30 points: an un-cancelled run would take
	// seconds even fully parallel; a prompt abort takes microseconds.
	p := &slowProblem{degree: 29, delay: 100 * time.Millisecond}
	start := time.Now()
	_, _, err := Run(ctx, p, Options{Nodes: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancelled run took %v", elapsed)
	}
}

func TestRunCancelMidEvaluation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p := &slowProblem{degree: 39, delay: 10 * time.Millisecond}
	go func() {
		time.Sleep(25 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	// Serial execution would need 40 × 10ms = 400ms of evaluation.
	_, _, err := Run(ctx, p, Options{Nodes: 4, MaxParallelism: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 250*time.Millisecond {
		t.Fatalf("mid-run cancellation took %v", elapsed)
	}
}

func TestEveryStageReturnsCtxErr(t *testing.T) {
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	bg := context.Background()
	p := testProblem()

	en, err := newEngine(p, Options{Nodes: 3, FaultTolerance: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := en.stagePrepare(cancelled); !errors.Is(err, context.Canceled) {
		t.Fatalf("prepare: err = %v, want context.Canceled", err)
	}
	all, err := en.stagePrepare(bg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := en.stageDecode(cancelled, all); !errors.Is(err, context.Canceled) {
		t.Fatalf("decode: err = %v, want context.Canceled", err)
	}
	proof, err := en.stageDecode(bg, all)
	if err != nil {
		t.Fatal(err)
	}
	if err := en.stageVerify(cancelled, proof); !errors.Is(err, context.Canceled) {
		t.Fatalf("verify: err = %v, want context.Canceled", err)
	}
	if err := en.stageVerify(bg, proof); err != nil {
		t.Fatal(err)
	}
}

func TestPointAssignmentTilesExactly(t *testing.T) {
	// Property sweep: Range intervals must tile [0, e) in order with no
	// gaps or overlaps, and Owner must agree with Range — including the
	// per==0 branch (more nodes than points, only reachable through
	// direct PointAssignment construction since Run clamps k <= e).
	rng := rand.New(rand.NewSource(11))
	cases := []struct{ e, k int }{
		{1, 1}, {1, 2}, {2, 5}, {3, 5}, {5, 5}, {7, 3}, {16, 8}, {100, 7}, {99, 100},
	}
	for trial := 0; trial < 200; trial++ {
		cases = append(cases, struct{ e, k int }{e: 1 + rng.Intn(200), k: 1 + rng.Intn(40)})
	}
	for _, tc := range cases {
		pa := NewPointAssignment(tc.e, tc.k)
		next := 0
		for id := 0; id < tc.k; id++ {
			lo, hi := pa.Range(id)
			if lo != next {
				t.Fatalf("e=%d k=%d: Range(%d) starts at %d, want %d (gap or overlap)", tc.e, tc.k, id, lo, next)
			}
			if hi < lo {
				t.Fatalf("e=%d k=%d: Range(%d) = [%d,%d) inverted", tc.e, tc.k, id, lo, hi)
			}
			for i := lo; i < hi; i++ {
				if own := pa.Owner(i); own != id {
					t.Fatalf("e=%d k=%d: Owner(%d) = %d, want %d", tc.e, tc.k, i, own, id)
				}
			}
			next = hi
		}
		if next != tc.e {
			t.Fatalf("e=%d k=%d: ranges cover [0,%d), want [0,%d)", tc.e, tc.k, next, tc.e)
		}
	}
}

func TestUniformUint64(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, q := range []uint64{2, 3, 17, 257, 1 << 20, (1 << 62) + 57} {
		for i := 0; i < 2000; i++ {
			if v := uniformUint64(rng, q); v >= q {
				t.Fatalf("uniformUint64(%d) = %d out of range", q, v)
			}
		}
	}
	// For q just above 2^63, half of all uint64 draws must be rejected;
	// a biased modulo would pile those onto small residues. Check the
	// observed mean is near q/2 (far from q/4, the biased mean).
	q := uint64(1)<<63 + 29
	var sum float64
	const draws = 4000
	for i := 0; i < draws; i++ {
		sum += float64(uniformUint64(rng, q))
	}
	mean := sum / draws
	if mean < float64(q)/2*0.9 || mean > float64(q)/2*1.1 {
		t.Fatalf("mean %.3g not near q/2 = %.3g — rejection sampling broken", mean, float64(q)/2)
	}
}

func TestVerifyProofDeterministicPerSeed(t *testing.T) {
	p := testProblem()
	proof, _, err := Run(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 5; seed++ {
		a, err := VerifyProof(p, proof, 3, seed)
		if err != nil {
			t.Fatal(err)
		}
		b, err := VerifyProof(p, proof, 3, seed)
		if err != nil {
			t.Fatal(err)
		}
		if a != b || !a {
			t.Fatalf("seed %d: verification not deterministic or rejected a true proof", seed)
		}
	}
}

func TestEvaluateRangeFallbackMatchesBatch(t *testing.T) {
	bp := &batchPolyProblem{polyProblem: testProblem()}
	ctx := context.Background()
	const q, lo, hi = 257, 2, 9
	w := bp.Width()
	batch, err := evaluateRange(ctx, NewPlanner(bp), q, lo, hi, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	point, err := evaluateRange(ctx, NewPlanner(bp.polyProblem), q, lo, hi, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(batch) != fmt.Sprint(point) {
		t.Fatalf("batch %v != per-point %v", batch, point)
	}
}
