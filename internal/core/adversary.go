package core

import "hash/fnv"

// Adversary models Lady Morgana: it may tamper with shares in flight
// from a byzantine sender to any recipient. Honest nodes' shares are
// never touched. Implementations must be deterministic so runs are
// reproducible.
type Adversary interface {
	// Transform returns the (possibly corrupted) value the recipient
	// receives for the given share, and whether the share arrives at all
	// (false = dropped/silent).
	Transform(sender, recipient int, prime uint64, coord, point int, value uint64) (uint64, bool)
	// CorruptNodes lists the byzantine node ids, for reporting.
	CorruptNodes() []int
}

// NoAdversary delivers every share unmodified.
type NoAdversary struct{}

var _ Adversary = NoAdversary{}

// Transform implements Adversary.
func (NoAdversary) Transform(_, _ int, _ uint64, _, _ int, value uint64) (uint64, bool) {
	return value, true
}

// CorruptNodes implements Adversary.
func (NoAdversary) CorruptNodes() []int { return nil }

// SilentNodes drops every share sent by the listed nodes — the crash
// failure model.
type SilentNodes struct {
	// IDs are the crashed node identifiers.
	IDs []int
	set map[int]bool
}

var _ Adversary = (*SilentNodes)(nil)

// NewSilentNodes returns an adversary that silences the given nodes.
func NewSilentNodes(ids ...int) *SilentNodes {
	s := &SilentNodes{IDs: ids, set: make(map[int]bool, len(ids))}
	for _, id := range ids {
		s.set[id] = true
	}
	return s
}

// Transform implements Adversary.
func (s *SilentNodes) Transform(sender, _ int, _ uint64, _, _ int, value uint64) (uint64, bool) {
	if s.set[sender] {
		return 0, false
	}
	return value, true
}

// CorruptNodes implements Adversary.
func (s *SilentNodes) CorruptNodes() []int { return s.IDs }

// LyingNodes replaces every share from the listed nodes with
// deterministic garbage — the same garbage for every recipient (a
// consistent liar).
type LyingNodes struct {
	// IDs are the byzantine node identifiers.
	IDs []int
	// Salt varies the garbage stream between runs.
	Salt uint64
	set  map[int]bool
}

var _ Adversary = (*LyingNodes)(nil)

// NewLyingNodes returns an adversary whose listed nodes broadcast
// pseudo-random garbage.
func NewLyingNodes(salt uint64, ids ...int) *LyingNodes {
	l := &LyingNodes{IDs: ids, Salt: salt, set: make(map[int]bool, len(ids))}
	for _, id := range ids {
		l.set[id] = true
	}
	return l
}

// Transform implements Adversary.
func (l *LyingNodes) Transform(sender, _ int, prime uint64, coord, point int, value uint64) (uint64, bool) {
	if !l.set[sender] {
		return value, true
	}
	g := garbage(l.Salt, uint64(sender), prime, uint64(coord), uint64(point), 0)
	// Guarantee the share is actually wrong.
	v := g % prime
	if v == value {
		v = (v + 1) % prime
	}
	return v, true
}

// CorruptNodes implements Adversary.
func (l *LyingNodes) CorruptNodes() []int { return l.IDs }

// EquivocatingNodes send *different* garbage to different recipients —
// full byzantine equivocation. Per paper footnote 7, decoding still
// succeeds at every honest node because each received word independently
// lies within the decoding radius.
type EquivocatingNodes struct {
	// IDs are the byzantine node identifiers.
	IDs []int
	// Salt varies the garbage stream between runs.
	Salt uint64
	set  map[int]bool
}

var _ Adversary = (*EquivocatingNodes)(nil)

// NewEquivocatingNodes returns an adversary whose listed nodes equivocate.
func NewEquivocatingNodes(salt uint64, ids ...int) *EquivocatingNodes {
	e := &EquivocatingNodes{IDs: ids, Salt: salt, set: make(map[int]bool, len(ids))}
	for _, id := range ids {
		e.set[id] = true
	}
	return e
}

// Transform implements Adversary.
func (e *EquivocatingNodes) Transform(sender, recipient int, prime uint64, coord, point int, value uint64) (uint64, bool) {
	if !e.set[sender] {
		return value, true
	}
	g := garbage(e.Salt, uint64(sender), prime, uint64(coord), uint64(point), uint64(recipient)+1)
	v := g % prime
	if v == value {
		v = (v + 1) % prime
	}
	return v, true
}

// CorruptNodes implements Adversary.
func (e *EquivocatingNodes) CorruptNodes() []int { return e.IDs }

// garbage hashes the share coordinates into a deterministic 64-bit value.
func garbage(parts ...uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, p := range parts {
		for i := 0; i < 8; i++ {
			buf[i] = byte(p >> (8 * i))
		}
		_, _ = h.Write(buf[:])
	}
	return h.Sum64()
}
