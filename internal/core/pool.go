package core

// The session layer's execution substrate: a long-lived, bounded worker
// pool that many concurrent engine runs share. The per-run scheduler
// (scheduler.go) bounds one run's concurrency; the Pool additionally
// arbitrates *between* runs — task sets from concurrent Run calls are
// interleaved round-robin, so a wide run cannot starve a narrow one.
// This is the fairness a multi-tenant cluster needs when jobs of very
// different sizes are in flight together. The round-robin is
// weight-aware: a run submitted with weight w claims w tasks per
// scheduling cycle where a weight-1 run claims one, so a proof service
// can give paying tenants a larger share of the pool without ever
// starving the rest (every run with work left claims at least one task
// per cycle).

import (
	"context"
	"errors"
	"runtime"
	"sync"
)

// ErrPoolClosed is returned by Pool.Run once the pool has been closed.
var ErrPoolClosed = errors.New("core: pool closed")

// Pool is a long-lived bounded worker pool shared by concurrent engine
// runs. Construct with NewPool; the zero value is not usable. Tasks
// must not call Run on their own pool (a width-1 pool would deadlock).
type Pool struct {
	width int

	mu     sync.Mutex
	cond   *sync.Cond
	runs   []*poolRun // task sets with work left or tasks in flight
	rr     int        // round-robin cursor into runs
	closed bool
	wg     sync.WaitGroup
}

// poolRun is one Run call's task set.
type poolRun struct {
	ctx      context.Context
	task     func(id int) error
	n        int // total tasks
	next     int // next unclaimed id; == n once nothing is left to claim
	active   int // claimed tasks still executing
	weight   int // tasks claimable per scheduling cycle (>= 1)
	credit   int // claims left this cycle; refilled to weight when the cycle turns
	err      error
	finished bool
	done     chan struct{}
}

// NewPool starts a pool of the given width (0 = GOMAXPROCS) and returns
// it running. Callers own the pool and must Close it to stop the
// workers.
func NewPool(width int) *Pool {
	if width <= 0 {
		width = runtime.GOMAXPROCS(0)
	}
	p := &Pool{width: width}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(width)
	for w := 0; w < width; w++ {
		go p.worker()
	}
	return p
}

// Width returns the number of workers.
func (p *Pool) Width() int { return p.width }

// Run executes task(0..n-1) on the pool and returns the first task
// error (or the context error). Like scheduler.run, it blocks until
// every *claimed* task has returned, so callers may reuse task-captured
// state afterwards; a task error or cancellation only stops unclaimed
// tasks from starting. Concurrent Run calls are served fairly.
func (p *Pool) Run(ctx context.Context, n int, task func(id int) error) error {
	return p.RunWeighted(ctx, n, 1, task)
}

// RunWeighted is Run with a scheduling weight: each cycle of the pool's
// between-runs round-robin lets this task set claim up to weight tasks
// where a plain Run claims one. Weights below 1 are clamped to 1, so a
// weighted run never starves and an unweighted one never stalls.
func (p *Pool) RunWeighted(ctx context.Context, n, weight int, task func(id int) error) error {
	if n <= 0 {
		// An empty task set has nothing left to do: it completed.
		return nil
	}
	if weight < 1 {
		weight = 1
	}
	r := &poolRun{ctx: ctx, task: task, n: n, weight: weight, credit: weight, done: make(chan struct{})}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrPoolClosed
	}
	p.runs = append(p.runs, r)
	p.mu.Unlock()
	p.cond.Broadcast()
	select {
	case <-r.done:
	case <-ctx.Done():
		// Withdraw the unclaimed remainder; tasks already executing are
		// expected to observe ctx themselves, and the run completes (and
		// closes done) once they drain. A run whose tasks were all
		// claimed (or that already finished) keeps its own outcome: a
		// cancellation arriving after the last task was handed out has
		// nothing to withdraw and must not turn success into failure.
		p.mu.Lock()
		if !r.finished && r.err == nil && r.next < r.n {
			r.fail(ctx.Err())
			p.finishLocked(r)
		}
		p.mu.Unlock()
		<-r.done
	}
	// r.err is nil only if no task failed and no withdrawal happened —
	// i.e. all n tasks ran to completion — so it is the whole verdict:
	// a context cancelled just after the last task finished does not
	// retroactively fail a completed run.
	return r.err
}

// Close drains the pool: new Run calls are rejected, task sets already
// submitted run to completion, then the workers exit. It blocks until
// the drain is done.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}

// fail records the first error and withdraws unclaimed tasks. Callers
// hold p.mu.
func (r *poolRun) fail(err error) {
	if r.err == nil {
		r.err = err
	}
	r.next = r.n
}

// finishLocked completes and removes the run if nothing is left to do.
// Callers hold p.mu.
func (p *Pool) finishLocked(r *poolRun) {
	if r.finished || r.next < r.n || r.active > 0 {
		return
	}
	r.finished = true
	for i, q := range p.runs {
		if q == r {
			p.runs = append(p.runs[:i], p.runs[i+1:]...)
			if p.rr > i {
				p.rr--
			}
			break
		}
	}
	close(r.done)
	// Waiting workers re-check state: with the pool closed the last
	// removal is what lets them exit.
	p.cond.Broadcast()
}

// pickLocked claims nothing; it returns the next run with an unclaimed
// task and scheduling credit left, advancing the round-robin cursor and
// spending one credit. When every run with work left is out of credit
// the cycle turns: credits refill to each run's weight and the scan
// repeats (guaranteed to pick then). Callers hold p.mu.
func (p *Pool) pickLocked() *poolRun {
	if r := p.scanLocked(); r != nil {
		return r
	}
	// No run had both work and credit. If any has work at all, start a
	// new cycle; otherwise there is nothing to pick.
	hasWork := false
	for _, r := range p.runs {
		if r.next < r.n {
			hasWork = true
		}
		r.credit = r.weight
	}
	if !hasWork {
		return nil
	}
	return p.scanLocked()
}

// scanLocked is one round-robin pass: the first run from the cursor
// with an unclaimed task and credit left wins and pays one credit.
func (p *Pool) scanLocked() *poolRun {
	for i := 0; i < len(p.runs); i++ {
		r := p.runs[(p.rr+i)%len(p.runs)]
		if r.next < r.n && r.credit > 0 {
			r.credit--
			p.rr = (p.rr + i + 1) % len(p.runs)
			return r
		}
	}
	return nil
}

func (p *Pool) worker() {
	defer p.wg.Done()
	p.mu.Lock()
	for {
		r := p.pickLocked()
		if r == nil {
			if p.closed && len(p.runs) == 0 {
				p.mu.Unlock()
				return
			}
			p.cond.Wait()
			continue
		}
		id := r.next
		r.next++
		r.active++
		p.mu.Unlock()
		var err error
		if e := r.ctx.Err(); e != nil {
			err = e
		} else {
			err = r.task(id)
		}
		p.mu.Lock()
		r.active--
		if err != nil {
			r.fail(err)
		}
		p.finishLocked(r)
	}
}
