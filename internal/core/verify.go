package core

// Randomized verification (paper §1.3 step 3, eq. (2)): any entity
// checks the decoded proof against the input with one fresh evaluation
// of P at a uniform random point per trial.

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"camelot/internal/ff"
)

// VerifyProof runs the paper's randomized check (eq. (2)): for each of
// trials rounds and each modulus it draws a uniform x0 and compares one
// fresh evaluation of P(x0) with Horner evaluation of the claimed
// coefficients, for every coordinate. A correct proof always passes; a
// forged one survives a round with probability at most d/q.
//
// This is also the Merlin–Arthur mode: Arthur runs VerifyProof against a
// proof Merlin supplied, spending only a single node's evaluation effort
// per trial.
func VerifyProof(p Problem, proof *Proof, trials int, seed int64) (bool, error) {
	return verifyProof(context.Background(), p, proof, trials, seed)
}

// VerifyProofContext is VerifyProof with cancellation: the check aborts
// between (trial, prime) pairs when ctx is done, so multi-trial
// verification of a large proof is as cancellable as every other
// protocol stage. The job pipeline and any caller holding a deadline
// should prefer it.
func VerifyProofContext(ctx context.Context, p Problem, proof *Proof, trials int, seed int64) (bool, error) {
	return verifyProof(ctx, p, proof, trials, seed)
}

// verifyProof is the context-aware engine form of VerifyProof: the
// cancellation check runs once per (trial, prime) pair, so even a slow
// problem aborts after at most one stray evaluation.
func verifyProof(ctx context.Context, p Problem, proof *Proof, trials int, seed int64) (bool, error) {
	if trials <= 0 {
		trials = 1
	}
	rng := rand.New(rand.NewSource(seed))
	for t := 0; t < trials; t++ {
		for _, q := range proof.Primes {
			if err := ctx.Err(); err != nil {
				return false, err
			}
			f, err := ff.New(q)
			if err != nil {
				return false, err
			}
			x0 := uniformUint64(rng, q)
			want, err := p.Evaluate(q, x0)
			if err != nil {
				return false, fmt.Errorf("evaluating P(%d) mod %d: %w", x0, q, err)
			}
			coeffs, ok := proof.Coeffs[q]
			if !ok {
				return false, fmt.Errorf("proof missing modulus %d", q)
			}
			for c := 0; c < proof.Width; c++ {
				if f.Horner(coeffs[c], x0) != want[c]%q {
					return false, nil
				}
			}
		}
	}
	return true, nil
}

// uniformUint64 draws a uniform value in [0, q) by rejection sampling:
// a plain rng.Uint64() % q overrepresents small residues by up to
// 2^64 mod q draws, a bias the soundness bound d/q does not account
// for. Values at or above the largest multiple of q below 2^64 are
// redrawn (at most one redraw expected for any q >= 2).
func uniformUint64(rng *rand.Rand, q uint64) uint64 {
	if q == 0 {
		panic("core: uniformUint64 with q = 0")
	}
	rem := (math.MaxUint64%q + 1) % q // 2^64 mod q
	if rem == 0 {
		return rng.Uint64() % q // q divides 2^64: no bias to reject
	}
	limit := math.MaxUint64 - rem // last acceptable value: ⌊2^64/q⌋·q - 1
	for {
		v := rng.Uint64()
		if v <= limit {
			return v % q
		}
	}
}
