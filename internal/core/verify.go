package core

// Randomized verification (paper §1.3 step 3, eq. (2)): any entity
// checks the decoded proof against the input with one fresh evaluation
// of P at a uniform random point per trial.

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"camelot/internal/ff"
)

// VerifyProof runs the paper's randomized check (eq. (2)): for each of
// trials rounds and each modulus it draws a uniform x0 and compares one
// fresh evaluation of P(x0) with Horner evaluation of the claimed
// coefficients, for every coordinate. A correct proof always passes; a
// forged one survives a round with probability at most d/q.
//
// This is also the Merlin–Arthur mode: Arthur runs VerifyProof against a
// proof Merlin supplied, spending only a single node's evaluation effort
// per trial.
func VerifyProof(p Problem, proof *Proof, trials int, seed int64) (bool, error) {
	return verifyProof(context.Background(), p, proof, trials, seed)
}

// VerifyProofContext is VerifyProof with cancellation: the check aborts
// between (trial, prime) pairs when ctx is done, so multi-trial
// verification of a large proof is as cancellable as every other
// protocol stage. The job pipeline and any caller holding a deadline
// should prefer it.
func VerifyProofContext(ctx context.Context, p Problem, proof *Proof, trials int, seed int64) (bool, error) {
	return verifyProof(ctx, p, proof, trials, seed)
}

// verifyProof is the context-aware engine form of VerifyProof: the
// cancellation check runs once per (trial, prime) pair, so even a slow
// problem aborts after at most one stray evaluation.
func verifyProof(ctx context.Context, p Problem, proof *Proof, trials int, seed int64) (bool, error) {
	if trials <= 0 {
		trials = 1
	}
	rng := rand.New(rand.NewSource(seed))
	for t := 0; t < trials; t++ {
		for _, q := range proof.Primes {
			if err := ctx.Err(); err != nil {
				return false, err
			}
			f, err := ff.New(q)
			if err != nil {
				return false, err
			}
			x0 := uniformUint64(rng, q)
			want, err := p.Evaluate(q, x0)
			if err != nil {
				return false, fmt.Errorf("evaluating P(%d) mod %d: %w", x0, q, err)
			}
			coeffs, ok := proof.Coeffs[q]
			if !ok {
				return false, fmt.Errorf("proof missing modulus %d", q)
			}
			for c := 0; c < proof.Width; c++ {
				if f.Horner(coeffs[c], x0) != want[c]%q {
					return false, nil
				}
			}
		}
	}
	return true, nil
}

// uniformUint64 draws a uniform value in [0, q) by rejection sampling:
// a plain rng.Uint64() % q overrepresents small residues by up to
// 2^64 mod q draws, a bias the soundness bound d/q does not account
// for. Values at or above the largest multiple of q below 2^64 are
// redrawn (at most one redraw expected for any q >= 2).
func uniformUint64(rng *rand.Rand, q uint64) uint64 {
	if q == 0 {
		panic("core: uniformUint64 with q = 0")
	}
	rem := (math.MaxUint64%q + 1) % q // 2^64 mod q
	if rem == 0 {
		return rng.Uint64() % q // q divides 2^64: no bias to reject
	}
	limit := math.MaxUint64 - rem // last acceptable value: ⌊2^64/q⌋·q - 1
	for {
		v := rng.Uint64()
		if v <= limit {
			return v % q
		}
	}
}

// VerifyProofBatch is the batched ingest check: it verifies that a
// proof is *internally consistent* — that for every modulus the stored
// codeword evaluations (Evals) are exactly the evaluations of the
// stored coefficient vectors (Coeffs) at the proof points 0..e-1 —
// while folding all Width·e per-point equations into ONE Horner
// evaluation per prime under a seeded random-linear-combination
// challenge. It never calls Problem.Evaluate, so a proof service can
// run it at ingest on proofs whose problem instance it cannot (or will
// not) evaluate; the paranoid per-point path — VerifyProof's fresh
// evaluations of P against the input — remains the audit-grade check
// that ties the proof to the problem.
//
// Per prime q, with W = Width, e = len(Points), d = Degree, the check
// draws r, z uniform in [0, q) from the seeded generator and accepts
// iff
//
//	Σ_i Λ_i(z) · (Σ_c r^c·Evals[c][i])  ==  (Σ_c r^c·Coeffs[c])(z)
//
// where Λ_i is the Lagrange basis over the grid 0..e-1: the left side
// is the degree-<e interpolation of the r-folded codeword evaluated at
// z, the right side the r-folded coefficient polynomial at z.
//
// Soundness: suppose some coordinate's Evals disagree with its Coeffs.
// The r-fold of the per-coordinate difference polynomials is a nonzero
// polynomial in r of degree ≤ W-1 evaluated coefficient-wise, so the
// folded difference vanishes for at most (W-1)/q of the r draws
// (Schwartz–Zippel in r). When it does not vanish, the two sides are
// distinct polynomials in z of degree ≤ max(d, e-1) and agree for at
// most max(d, e-1)/q of the z draws. One round therefore wrongly
// accepts with probability at most
//
//	(W-1 + max(d, e-1)) / q   per prime,
//
// and independent challenges across primes multiply the bound. For the
// framework's primes (≥ 2^31) and typical proof shapes this is < 2^-19
// per prime per call.
//
// Cost: O(W·(d+e) + e) multiplications per prime versus the W·e·d of
// auditing every point — the fold is what makes batched ingest cheap.
func VerifyProofBatch(proof *Proof, seed int64) (bool, error) {
	return verifyProofBatch(context.Background(), proof, seed)
}

// VerifyProofBatchContext is VerifyProofBatch with cancellation,
// checked once per prime.
func VerifyProofBatchContext(ctx context.Context, proof *Proof, seed int64) (bool, error) {
	return verifyProofBatch(ctx, proof, seed)
}

func verifyProofBatch(ctx context.Context, proof *Proof, seed int64) (bool, error) {
	e := len(proof.Points)
	for i, x := range proof.Points {
		if x != uint64(i) {
			return false, fmt.Errorf("batch verification requires the consecutive point grid 0..%d, got point %d at index %d", e-1, x, i)
		}
	}
	if proof.Width == 0 || e == 0 {
		return true, nil
	}
	rng := rand.New(rand.NewSource(seed))
	for _, q := range proof.Primes {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		f, err := ff.New(q)
		if err != nil {
			return false, err
		}
		k := f.Kernel()
		coeffs, ok := proof.Coeffs[q]
		evals, ok2 := proof.Evals[q]
		if !ok || !ok2 {
			return false, fmt.Errorf("proof missing modulus %d", q)
		}
		if len(coeffs) < proof.Width || len(evals) < proof.Width {
			return false, fmt.Errorf("proof mod %d has %d coefficient rows and %d evaluation rows, want %d",
				q, len(coeffs), len(evals), proof.Width)
		}
		r := uniformUint64(rng, q)
		z := uniformUint64(rng, q)
		foldedC := make([]uint64, proof.Degree+1)
		foldedE := make([]uint64, e)
		rc := uint64(1) // r^c
		for c := 0; c < proof.Width; c++ {
			if len(coeffs[c]) != proof.Degree+1 || len(evals[c]) != e {
				return false, fmt.Errorf("proof mod %d coordinate %d: %d coefficients and %d evaluations, want %d and %d",
					q, c, len(coeffs[c]), len(evals[c]), proof.Degree+1, e)
			}
			rcS := k.Shift(rc)
			for j, v := range coeffs[c] {
				foldedC[j] = f.Add(foldedC[j], ff.MulKS(v%q, rcS, k))
			}
			for i, v := range evals[c] {
				foldedE[i] = f.Add(foldedE[i], ff.MulKS(v%q, rcS, k))
			}
			rc = ff.MulK(rc, r, k)
		}
		lam := f.LagrangeAtZeroBased(e, z)
		lhs := uint64(0)
		for i, li := range lam {
			lhs = f.Add(lhs, ff.MulK(li, foldedE[i], k))
		}
		if lhs != f.Horner(foldedC, z) {
			return false, nil
		}
	}
	return true, nil
}
