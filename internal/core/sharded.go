package core

// ShardedTransport partitions the K nodes into contiguous shards, each
// with its own in-memory bus, and bridges them with one relay goroutine
// per shard that forwards shard traffic into a central collector
// channel. It models the first step away from the paper's single
// reliable broadcast bus: delivery still succeeds, but messages cross
// an extra asynchronous hop, so cross-shard arrival order is arbitrary
// and a slow shard's messages trail the rest — exactly the conditions
// the quorum gather and erasure-tolerant decode path must absorb.

import (
	"context"
	"sync"
)

// ShardedTransport is a Transport whose nodes are partitioned into
// per-shard buses feeding a collector through relay goroutines. Safe
// for concurrent Send calls; Gather/GatherQuorum must be called from a
// single collector goroutine (the engine's), and returning from either
// shuts the relays down.
type ShardedTransport struct {
	k         int
	shards    []chan NodeShares
	collector chan NodeShares
	done      chan struct{}
	stop      sync.Once
}

var (
	_ Transport      = (*ShardedTransport)(nil)
	_ QuorumGatherer = (*ShardedTransport)(nil)
)

// NewShardedTransport builds a transport for k nodes split into the
// given number of shards (clamped to [1, k]). Buffers leave headroom
// for duplicated deliveries so a LossyTransport can wrap this one
// without ever wedging a sender.
func NewShardedTransport(k, shards int) *ShardedTransport {
	if k < 1 {
		k = 1
	}
	if shards < 1 {
		shards = 1
	}
	if shards > k {
		shards = k
	}
	t := &ShardedTransport{
		k:         k,
		shards:    make([]chan NodeShares, shards),
		collector: make(chan NodeShares, 2*k+2),
		done:      make(chan struct{}),
	}
	for s := range t.shards {
		// Shard s owns nodes [s*k/shards, (s+1)*k/shards): the same
		// contiguous balanced split PointAssignment uses for points.
		size := (s+1)*k/shards - s*k/shards
		ch := make(chan NodeShares, 2*size+2)
		t.shards[s] = ch
		go t.relay(ch)
	}
	return t
}

// Shards returns the shard count.
func (t *ShardedTransport) Shards() int { return len(t.shards) }

// shardOf routes a node id to its shard; ids outside [0, k) — a
// protocol violation the collector reports — ride shard 0.
func (t *ShardedTransport) shardOf(id int) int {
	if id < 0 || id >= t.k {
		return 0
	}
	return id * len(t.shards) / t.k
}

// relay forwards one shard's traffic into the collector until the
// gather completes.
func (t *ShardedTransport) relay(ch <-chan NodeShares) {
	for {
		select {
		case m := <-ch:
			select {
			case t.collector <- m:
			case <-t.done:
				return
			}
		case <-t.done:
			return
		}
	}
}

// shutdown releases the relays (and any sender blocked on a full
// shard); idempotent.
func (t *ShardedTransport) shutdown() {
	t.stop.Do(func() { close(t.done) })
}

// Send implements Transport: the message enters its shard's bus and a
// relay carries it to the collector. After the gather has returned,
// Send succeeds as a no-op — the run no longer wants the message.
func (t *ShardedTransport) Send(ctx context.Context, m NodeShares) error {
	select {
	case t.shards[t.shardOf(m.ID)] <- m:
		return nil
	case <-t.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Gather implements Transport (strict: counts raw messages).
func (t *ShardedTransport) Gather(ctx context.Context, k int) ([]NodeShares, error) {
	defer t.shutdown()
	out := make([]NodeShares, 0, k)
	for len(out) < k {
		select {
		case m := <-t.collector:
			out = append(out, m)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return out, nil
}

// GatherQuorum implements QuorumGatherer. With spec.KeepOpen the relays
// stay up after the gather returns — the engine may run repair rounds
// over this instance and calls Close when the run ends.
func (t *ShardedTransport) GatherQuorum(ctx context.Context, spec GatherSpec) ([]NodeShares, error) {
	if !spec.KeepOpen {
		defer t.shutdown()
	}
	return gatherQuorum(ctx, t.collector, spec)
}

// Close shuts the relays down (idempotent) — for callers that kept the
// transport open across gather rounds, or never reached a gather.
func (t *ShardedTransport) Close() { t.shutdown() }
