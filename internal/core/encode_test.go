package core

// Adversarial tests for the proof decoder: once proofs cross a socket,
// UnmarshalBinary is a trust boundary. These pin the two hardening
// fixes — duplicate primes are rejected instead of silently
// overwriting map entries, and claimed geometry is checked against the
// bytes actually present before anything is allocated. (Round-trip
// coverage of honest proofs lives in core_test.go.)

import (
	"encoding/binary"
	"errors"
	"runtime"
	"testing"
)

// tinyProof builds a consistent in-memory proof for mutation.
func tinyProof(primes ...uint64) *Proof {
	p := &Proof{
		Primes: primes,
		Degree: 2,
		Width:  1,
		Points: []uint64{0, 1, 2, 3},
		Coeffs: map[uint64][][]uint64{},
		Evals:  map[uint64][][]uint64{},
	}
	for _, q := range primes {
		p.Coeffs[q] = [][]uint64{{1, 2, 3}}
		p.Evals[q] = [][]uint64{{4, 5, 6, 7}}
	}
	return p
}

func TestUnmarshalRejectsDuplicatePrimes(t *testing.T) {
	// A Primes slice listing the same modulus twice marshals cleanly
	// (both entries resolve to the one map entry) — exactly the
	// payload shape a forger would mail: Primes says two, the maps
	// hold one.
	dup := tinyProof(97, 97)
	data, err := dup.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Proof
	err = back.UnmarshalBinary(data)
	if !errors.Is(err, ErrMalformedProof) {
		t.Fatalf("duplicate primes: err = %v, want ErrMalformedProof", err)
	}
	// The honest two-prime proof still round-trips.
	honest := tinyProof(97, 101)
	data, err = honest.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatalf("honest proof rejected: %v", err)
	}
}

// proofHeader hand-assembles a proof payload header making arbitrary
// geometry claims.
func proofHeader(degree, width, nPoints uint64, rest ...uint64) []byte {
	buf := append([]byte{}, proofMagic[:]...)
	for _, v := range []uint64{degree, width, nPoints} {
		buf = binary.LittleEndian.AppendUint64(buf, v)
	}
	for _, v := range rest {
		buf = binary.LittleEndian.AppendUint64(buf, v)
	}
	return buf
}

// TestUnmarshalBoundsAllocationsAgainstPayload mails headers whose
// claims would demand gigabytes: the decoder must reject them on the
// byte budget before allocating anything claim-sized.
func TestUnmarshalBoundsAllocationsAgainstPayload(t *testing.T) {
	cases := map[string][]byte{
		// 2^28 points claimed, zero bytes behind them.
		"unbacked points": proofHeader(4, 2, 1<<28),
		// Small point set but one prime claiming width×(degree+1) ≈
		// 2^44 words — the shape that used to allocate before reading.
		"unbacked body": proofHeader(1<<28, 1<<16, 2, 0, 0, 1, 12345),
		// 64 primes of a plausible-but-unbacked size.
		"many primes": proofHeader(1<<20, 8, 2, 0, 0, 64, 12345),
	}
	for name, data := range cases {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		var p Proof
		err := p.UnmarshalBinary(data)
		runtime.ReadMemStats(&after)
		if !errors.Is(err, ErrMalformedProof) {
			t.Fatalf("%s: err = %v, want ErrMalformedProof", name, err)
		}
		// The claims above are all ≥ 2 GiB; the reject path must stay
		// orders of magnitude below.
		if grew := after.TotalAlloc - before.TotalAlloc; grew > 16<<20 {
			t.Fatalf("%s: decoder allocated %d bytes rejecting a tiny payload", name, grew)
		}
	}
}

func TestUnmarshalRejectionsAreTyped(t *testing.T) {
	cases := map[string][]byte{
		"empty":       nil,
		"bad magic":   []byte("XXXX rest doesn't matter"),
		"huge degree": proofHeader(1<<60, 1, 1),
	}
	for name, data := range cases {
		var p Proof
		if err := p.UnmarshalBinary(data); !errors.Is(err, ErrMalformedProof) {
			t.Fatalf("%s: err = %v, want ErrMalformedProof", name, err)
		}
	}
}
