package core

// The scheduler layer bounds the protocol's concurrency: instead of one
// goroutine per node (which at K = e meant thousands of goroutines for
// large codewords), node and decoder tasks run on a worker pool of
// Options.MaxParallelism goroutines. It also owns the evaluation
// contract: problems that implement BatchProblem get their whole owned
// point range per prime in one call, amortizing per-prime setup; others
// fall back to point-at-a-time Evaluate.

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// BatchProblem is an optional extension of Problem: EvaluateBlock
// computes P at many points of one prime in a single call, returning
// one row (P_0(x), ..., P_{Width-1}(x)) per requested point. The
// framework hands each node its owned point range in blocks of
// consecutive points — sized by Options.BlockSize, or autotuned from a
// first-chunk timing probe (see evaluateRangeInto) — so implementations
// can do per-prime input reduction once per block instead of once per
// point.
// The xs slice is reused between calls; implementations must not retain
// it past the call.
// Results must be identical to point-wise Evaluate — the verification
// stage evaluates through Evaluate, so a divergent batch path fails
// verification rather than silently corrupting the proof.
//
// BatchProblem is the uncached legacy seam: every in-tree problem now
// implements CompiledProblem instead (see planner.go), whose compiled
// plans the framework memoizes per prime and shares across chunks,
// repair rounds, and runs. New block implementations should compile.
type BatchProblem interface {
	Problem
	EvaluateBlock(q uint64, xs []uint64) ([][]uint64, error)
}

// Block-size autotuning. A block is the cancellation quantum of the
// prepare stage — ctx is only observed between EvaluateBlock calls — so
// the right size depends on how expensive a point is: cheap points want
// huge blocks (amortize per-block setup), expensive points want small
// ones (bounded abort latency). Rather than hardcode one number (the
// retired constant was 256), the first chunk of each range is a small
// probe whose measured duration sets the steady-state size, targeting
// targetBlockNs per block and clamped to [minBatchChunk, maxBatchChunk].
// Options.BlockSize overrides the probe with a fixed size.
const (
	// probeChunk is the first-chunk probe size under autotuning.
	probeChunk = 32
	// minBatchChunk / maxBatchChunk clamp the autotuned size.
	minBatchChunk = 16
	maxBatchChunk = 4096
	// targetBlockNs is the steady-state per-block duration the autotuner
	// aims for: long enough to amortize setup, short enough that
	// cancellation latency stays human-scale.
	targetBlockNs = 25_000_000
)

// tuneBlockSize derives the steady-state block size from the probe
// chunk's measured duration.
func tuneBlockSize(elapsed time.Duration, probePoints int) int {
	perPoint := elapsed.Nanoseconds() / int64(probePoints)
	if perPoint <= 0 {
		return maxBatchChunk
	}
	bs := int(targetBlockNs / perPoint)
	if bs < minBatchChunk {
		return minBatchChunk
	}
	if bs > maxBatchChunk {
		return maxBatchChunk
	}
	return bs
}

// scheduler runs indexed tasks on a bounded worker pool.
type scheduler struct {
	workers int
}

// newScheduler clamps the pool size: 0 (the default) means
// runtime.GOMAXPROCS, matching the machine's true parallelism.
func newScheduler(maxParallelism int) scheduler {
	if maxParallelism <= 0 {
		maxParallelism = runtime.GOMAXPROCS(0)
	}
	return scheduler{workers: maxParallelism}
}

// run executes task(0..n-1) on the pool and returns the first task
// error. A task error or context cancellation stops new tasks from
// starting; tasks already running are expected to observe ctx
// themselves.
func (s scheduler) run(ctx context.Context, n int, task func(id int) error) error {
	workers := s.workers
	if workers > n {
		workers = n
	}
	poolCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}
	ids := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := range ids {
				if poolCtx.Err() != nil {
					return
				}
				if err := task(id); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
feed:
	for id := 0; id < n; id++ {
		select {
		case ids <- id:
		case <-poolCtx.Done():
			break feed
		}
	}
	close(ids)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// evaluateRange computes vals[coord][x-lo] = P_coord(x) mod q for the
// point range [lo, hi), through the planner's block evaluator (a
// compiled plan or a legacy EvaluateBlock) when the problem has one and
// point-at-a-time Evaluate otherwise.
func evaluateRange(ctx context.Context, pl *Planner, q uint64, lo, hi, width, blockSize int) ([][]uint64, error) {
	vals := make([][]uint64, width)
	for c := range vals {
		vals[c] = make([]uint64, hi-lo)
	}
	if err := evaluateRangeInto(ctx, pl, q, lo, hi, width, vals, lo, blockSize); err != nil {
		return nil, err
	}
	return vals, nil
}

// evaluateRangeInto evaluates the point range [lo, hi) directly into
// dst[coord][x-base] — the engine's form, where several chunk tasks of
// the same node write disjoint slices of one shared message buffer.
// The planner memoizes the per-prime compile, so every chunk of a run
// shares one plan per prime instead of recompiling per chunk.
// blockSize > 0 fixes the block chunk size; <= 0 autotunes it from a
// first-chunk timing probe (each range task probes for itself: the
// probe is real work, and per-point cost can differ across primes).
func evaluateRangeInto(ctx context.Context, pl *Planner, q uint64, lo, hi, width int, dst [][]uint64, base int, blockSize int) error {
	bp, err := pl.For(q)
	if err != nil {
		return fmt.Errorf("compiling plan mod %d: %w", q, err)
	}
	if bp != nil {
		autotune := blockSize <= 0
		chunk := blockSize
		if autotune {
			chunk = probeChunk
		}
		// One chunk buffer for the whole range; EvaluateBlock must not
		// retain its argument (see the Plan contract).
		var xs []uint64
		for start := lo; start < hi; {
			if err := ctx.Err(); err != nil {
				return err
			}
			end := start + chunk
			if end > hi {
				end = hi
			}
			if cap(xs) < end-start {
				xs = make([]uint64, end-start)
			}
			xs = xs[:end-start]
			for i := range xs {
				xs[i] = uint64(start + i)
			}
			probeStart := time.Now()
			rows, err := bp.EvaluateBlock(xs)
			if err != nil {
				return fmt.Errorf("evaluating block [%d,%d) mod %d: %w", start, end, q, err)
			}
			if autotune {
				chunk = tuneBlockSize(time.Since(probeStart), end-start)
				autotune = false
			}
			if len(rows) != len(xs) {
				return fmt.Errorf("EvaluateBlock returned %d rows, want %d", len(rows), len(xs))
			}
			for i, vec := range rows {
				if len(vec) != width {
					return fmt.Errorf("EvaluateBlock row %d has %d coords, want %d", i, len(vec), width)
				}
				for c, v := range vec {
					dst[c][start-base+i] = v % q
				}
			}
			start = end
		}
		return nil
	}
	p := pl.Problem()
	for x := lo; x < hi; x++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		vec, err := p.Evaluate(q, uint64(x))
		if err != nil {
			return fmt.Errorf("evaluating P(%d) mod %d: %w", x, q, err)
		}
		if len(vec) != width {
			return fmt.Errorf("Evaluate returned %d coords, want %d", len(vec), width)
		}
		for c, v := range vec {
			dst[c][x-base] = v % q
		}
	}
	return nil
}

// EvaluateShares computes one complete NodeShares message for the
// point range [lo, hi): every prime's width×span evaluation block,
// stamped with the logical owner, the physical sender, and the gather
// round. It reuses the engine's evaluateRange so a remotely produced
// frame is bit-identical to what the in-process prepare stage would
// have broadcast — the property the multi-process bit-identity checks
// pin. Block size autotunes exactly as in-process evaluation does.
//
// The method form is the worker daemon's whole compute path
// (internal/ctrl): a worker keeps one Planner per assignment manifest,
// so the per-prime compile persists across assignments and repair
// rounds of the same workload. The free function wraps a throwaway
// Planner for one-shot callers.
func (pl *Planner) EvaluateShares(ctx context.Context, primes []uint64, owner, from, round, lo, hi int) (NodeShares, error) {
	m := NodeShares{
		ID: owner, From: from, Round: round,
		Lo: lo, Hi: hi,
		Vals: make([][][]uint64, len(primes)),
	}
	width := pl.Problem().Width()
	start := time.Now()
	for pi, q := range primes {
		vals, err := evaluateRange(ctx, pl, q, lo, hi, width, 0)
		if err != nil {
			return m, err
		}
		m.Vals[pi] = vals
	}
	m.Elapsed = time.Since(start)
	return m, nil
}

// EvaluateShares is the one-shot form of Planner.EvaluateShares: it
// compiles (and discards) plans for this call only.
func EvaluateShares(ctx context.Context, p Problem, primes []uint64, owner, from, round, lo, hi int) (NodeShares, error) {
	return NewPlanner(p).EvaluateShares(ctx, primes, owner, from, round, lo, hi)
}
