package core

// The deterministic chaos harness: a table of seeded transport-fault
// scenarios — message loss, duplicate storms, cross-shard delays,
// combined byzantine-plus-loss weather — asserting the protocol's two
// honest outcomes. Where the Reed–Solomon budget 2·errors + erasures
// ≤ e-d-1 covers the damage, the run must produce a proof bit-identical
// to the fault-free run; where it cannot, the run must refuse with the
// typed rs.ErrDecodeFailure instead of fabricating an answer. Every
// scenario is replayed under several seeds; CI's chaos job adds three
// more fixed seeds via -chaos-seed and runs the suite under -race.

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"camelot/internal/rs"
)

// chaosSeed is mixed into every scenario's RNG seeds, letting the CI
// matrix replay the whole table under distinct deterministic seeds:
//
//	go test -race -run Chaos ./internal/core/ -args -chaos-seed 7
var chaosSeed = flag.Int64("chaos-seed", 1, "seed mixed into every chaos scenario")

// chaosScenario is one table entry. The transport factory receives the
// mixed seed so loss patterns vary across seeds while staying
// reproducible within one.
type chaosScenario struct {
	name           string
	nodes, faults  int
	maxErasures    int
	repair         int // MaxRepairRounds (0: self-healing off)
	grace          time.Duration
	transport      func(seed int64, k int) Transport
	adversary      func(seed int64) Adversary
	wantErr        error // nil: run must succeed with the baseline proof
	wantMissing    []int // exact MissingNodes to assert (nil skips)
	wantSuspects   []int // exact SuspectNodes to assert (nil skips)
	wantRepaired   []int // exact RepairedNodes to assert (nil skips)
	skipDeliveryCk bool  // scenarios whose missing set is timing-dependent
}

// chaosScenarios returns the fault table. Geometry A (k=8, f=4) puts 2
// points on each node with budget 2t+s ≤ 8: one lost node costs 2
// erasures, one lying node costs 2 errors. Geometry B (k=5, f=1) has
// budget 2, so losing two nodes (4 erasures) is unrecoverable.
func chaosScenarios() []chaosScenario {
	lossy := func(cfg LossyConfig) func(int64, int) Transport {
		return func(seed int64, k int) Transport {
			cfg := cfg
			cfg.Seed = seed
			return NewLossyTransport(NewBroadcastBus(k), cfg)
		}
	}
	shardedLossy := func(shards int, cfg LossyConfig) func(int64, int) Transport {
		return func(seed int64, k int) Transport {
			cfg := cfg
			cfg.Seed = seed
			return NewLossyTransport(NewShardedTransport(k, shards), cfg)
		}
	}
	// tcp binds an ephemeral loopback collector per run; a bind
	// failure surfaces through the run as a typed transport error.
	tcp := func(k int) Transport {
		t, err := NewTCPTransport(k, TCPConfig{ListenAddr: "127.0.0.1:0"})
		if err != nil {
			return FailedTransport(err)
		}
		return t
	}
	lossyTCP := func(cfg LossyConfig) func(int64, int) Transport {
		return func(seed int64, k int) Transport {
			cfg := cfg
			cfg.Seed = seed
			return NewLossyTransport(tcp(k), cfg)
		}
	}
	return []chaosScenario{
		{
			// The sharded bus alone is lossless: the strict gather path
			// (MaxErasures 0) must work across the relay hop.
			name:  "sharded-clean-strict",
			nodes: 8, faults: 4,
			transport:    func(_ int64, k int) Transport { return NewShardedTransport(k, 3) },
			wantMissing:  []int{},
			wantSuspects: []int{},
		},
		{
			// Deterministic loss of 2 of 8 nodes: 4 erasures ≤ budget 8.
			// Quorum is exactly the deliverable count, so the missing set
			// is exactly the dropped set.
			name:  "drop-within-budget",
			nodes: 8, faults: 4, maxErasures: 2, grace: 2 * time.Second,
			transport:    lossy(LossyConfig{DropNodes: []int{2, 5}}),
			wantMissing:  []int{2, 5},
			wantSuspects: []int{},
		},
		{
			// Every message delivered twice: dedup plus quorum counting
			// by distinct sender must shrug the storm off.
			name:  "duplicate-storm",
			nodes: 8, faults: 4, maxErasures: 2, grace: 2 * time.Second,
			transport:      lossy(LossyConfig{DupRate: 1}),
			skipDeliveryCk: true, // an early quorum may erase 0-2 stragglers
		},
		{
			// Every message delayed on a sharded network: the grace timer
			// resets per arrival, so a slow-but-alive network completes.
			name:  "cross-shard-delays",
			nodes: 8, faults: 4, maxErasures: 2, grace: 2 * time.Second,
			transport:      shardedLossy(3, LossyConfig{DelayRate: 1, MaxDelay: 3 * time.Millisecond}),
			skipDeliveryCk: true,
		},
		{
			// Morgana and the weather at once: node 3 lies (2 errors),
			// node 6's broadcast is lost (2 erasures); 2·2+2 = 6 ≤ 8.
			// Delivery faults and content faults must be reported on
			// separate axes.
			name:  "adversary-plus-loss",
			nodes: 8, faults: 4, maxErasures: 1, grace: 2 * time.Second,
			transport:    lossy(LossyConfig{DropNodes: []int{6}}),
			adversary:    func(seed int64) Adversary { return NewLyingNodes(uint64(seed), 3) },
			wantMissing:  []int{6},
			wantSuspects: []int{3},
		},
		{
			// Real sockets, calm weather: the strict gather must hear
			// all eight nodes over loopback TCP frames.
			name:  "tcp-clean-strict",
			nodes: 8, faults: 4,
			transport:    func(_ int64, k int) Transport { return tcp(k) },
			wantMissing:  []int{},
			wantSuspects: []int{},
		},
		{
			// Frames dropped off the socket: the TCP collector's quorum
			// gather plus erasure decode recovers exactly as the
			// in-memory transports do.
			name:  "tcp-drop-within-budget",
			nodes: 8, faults: 4, maxErasures: 2, grace: 2 * time.Second,
			transport:    lossyTCP(LossyConfig{DropNodes: []int{2, 5}}),
			wantMissing:  []int{2, 5},
			wantSuspects: []int{},
		},
		{
			// Morgana on a real network: a liar's corrupted content and
			// a socket that loses node 6, on separate fault axes.
			name:  "tcp-adversary-plus-loss",
			nodes: 8, faults: 4, maxErasures: 1, grace: 2 * time.Second,
			transport:    lossyTCP(LossyConfig{DropNodes: []int{6}}),
			adversary:    func(seed int64) Adversary { return NewLyingNodes(uint64(seed), 3) },
			wantMissing:  []int{6},
			wantSuspects: []int{3},
		},
		{
			// Losing 2 of 5 nodes erases 4 points against budget 2: the
			// decoder must refuse with the typed error.
			name:  "drop-beyond-budget",
			nodes: 5, faults: 1, maxErasures: 2, grace: 2 * time.Second,
			transport: lossy(LossyConfig{DropNodes: []int{1, 3}}),
			wantErr:   rs.ErrDecodeFailure,
		},
		{
			// Beyond-budget loss under a duplicate storm with a liar on
			// top: still the same typed refusal, never a wrong proof.
			name:  "combined-beyond-budget",
			nodes: 5, faults: 1, maxErasures: 2, grace: 2 * time.Second,
			transport: lossy(LossyConfig{DropNodes: []int{0, 2}, DupRate: 1}),
			adversary: func(seed int64) Adversary { return NewLyingNodes(uint64(seed), 4) },
			wantErr:   rs.ErrDecodeFailure,
		},
		{
			// Quorum unreachable (2 lost, 1 tolerated): the grace timer
			// must fire, hand over the partial gather, and the decode
			// stage must refuse — the deadline path, typed end to end.
			name:  "grace-deadline-partial",
			nodes: 5, faults: 1, maxErasures: 1, grace: 150 * time.Millisecond,
			transport: lossy(LossyConfig{DropNodes: []int{1, 3}}),
			wantErr:   rs.ErrDecodeFailure,
		},
		{
			// The network loses *everything*: no arrival ever arms the
			// grace timer, so the run must end via the SendsDone signal
			// (pool finished → one grace → empty gather → typed refusal)
			// rather than hang on the caller's context.
			name:  "total-loss",
			nodes: 4, faults: 1, maxErasures: 4, grace: 150 * time.Millisecond,
			transport: lossy(LossyConfig{DropRate: 1}),
			wantErr:   rs.ErrDecodeFailure,
		},
		// Node-churn weather: the same beyond-budget storms, now with the
		// self-healing gather allowed to run. The dead links stay dead
		// (fate is per physical sender), but repair re-assigns the dead
		// nodes' ranges to survivors whose links are alive — so the run
		// recovers the very loss it just refused, with the bit-identical
		// proof the harness demands of every recovery.
		{
			// drop-beyond-budget (4 erasures vs budget 2), healed in one
			// round: survivors 0,2,4 sponsor the ranges of 1 and 3.
			name:  "repair-drop-beyond-budget",
			nodes: 5, faults: 1, maxErasures: 2, repair: 1, grace: 2 * time.Second,
			transport:    lossy(LossyConfig{DropNodes: []int{1, 3}}),
			wantMissing:  []int{},
			wantSuspects: []int{},
			wantRepaired: []int{1, 3},
		},
		{
			// The same healed storm across the cross-shard relay: the
			// sharded transport must keep its relays alive for the
			// follow-up round.
			name:  "repair-sharded-beyond-budget",
			nodes: 5, faults: 1, maxErasures: 2, repair: 1, grace: 2 * time.Second,
			transport:    shardedLossy(2, LossyConfig{DropNodes: []int{1, 3}}),
			wantMissing:  []int{},
			wantSuspects: []int{},
			wantRepaired: []int{1, 3},
		},
		{
			// And over real sockets: the TCP collector must accept the
			// repair round's frames on the same listener.
			name:  "repair-tcp-beyond-budget",
			nodes: 5, faults: 1, maxErasures: 2, repair: 1, grace: 2 * time.Second,
			transport:    lossyTCP(LossyConfig{DropNodes: []int{1, 3}}),
			wantMissing:  []int{},
			wantSuspects: []int{},
			wantRepaired: []int{1, 3},
		},
		{
			// Morgana during the repair: node 3 lies (2 errors) while the
			// network eats three broadcasts (6 erasures, 2·2+6 > 8). One
			// repair round recovers the erasures — sponsored by honest
			// survivors 0, 1, 2 — and the liar's errors then fit the
			// budget alone, staying on the content-fault axis.
			name:  "repair-adversary-plus-storm",
			nodes: 8, faults: 4, maxErasures: 3, repair: 1, grace: 2 * time.Second,
			transport:    lossy(LossyConfig{DropNodes: []int{5, 6, 7}, DupRate: 1}),
			adversary:    func(seed int64) Adversary { return NewLyingNodes(uint64(seed), 3) },
			wantMissing:  []int{},
			wantSuspects: []int{3},
			wantRepaired: []int{5, 6, 7},
		},
		{
			// A byzantine *sponsor*: with nodes 1, 5, 6 lost, the liar 3
			// is the third survivor and sponsors node 6's range — the
			// adversary corrupts what node 3 computes and sends, so the
			// repaired range arrives wrong and node 6's points decode as
			// errors attributed to their owner. 4 error points (liar's
			// own 2 plus the poisoned 2) still fit 2·4 ≤ 8: the decoder
			// corrects them all and the proof stays bit-identical.
			name:  "repair-byzantine-sponsor",
			nodes: 8, faults: 4, maxErasures: 3, repair: 1, grace: 2 * time.Second,
			transport:    lossy(LossyConfig{DropNodes: []int{1, 5, 6}}),
			adversary:    func(seed int64) Adversary { return NewLyingNodes(uint64(seed), 3) },
			wantMissing:  []int{},
			wantSuspects: []int{3, 6},
			wantRepaired: []int{1, 5, 6},
		},
		{
			// Repair cannot conjure survivors: when the network loses
			// everything there is no live link to sponsor a retry over,
			// and the run must still end in the typed refusal rather
			// than loop or hang.
			name:  "total-loss-with-repair",
			nodes: 4, faults: 1, maxErasures: 4, repair: 2, grace: 150 * time.Millisecond,
			transport: lossy(LossyConfig{DropRate: 1}),
			wantErr:   rs.ErrDecodeFailure,
		},
	}
}

// chaosObserver records the delivery-fault and repair callbacks.
type chaosObserver struct {
	nopObserver
	deliveryFaults atomic.Int32
	repairRounds   atomic.Int32
}

func (o *chaosObserver) DeliveryFaults(n int) { o.deliveryFaults.Store(int32(n)) }

func (o *chaosObserver) RepairRound(round int, reassigned []int) {
	o.repairRounds.Store(int32(round))
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func proofsEqual(a, b *Proof) error {
	if len(a.Primes) != len(b.Primes) {
		return fmt.Errorf("prime count %d vs %d", len(a.Primes), len(b.Primes))
	}
	for i, q := range a.Primes {
		if b.Primes[i] != q {
			return fmt.Errorf("prime %d: %d vs %d", i, q, b.Primes[i])
		}
		for w := range a.Coeffs[q] {
			for j := range a.Coeffs[q][w] {
				if a.Coeffs[q][w][j] != b.Coeffs[q][w][j] {
					return fmt.Errorf("coeff mod %d coord %d idx %d differs", q, w, j)
				}
			}
			for j := range a.Evals[q][w] {
				if a.Evals[q][w][j] != b.Evals[q][w][j] {
					return fmt.Errorf("eval mod %d coord %d idx %d differs", q, w, j)
				}
			}
		}
	}
	return nil
}

func TestChaosScenarios(t *testing.T) {
	ctx := context.Background()
	p := testProblem() // degree 7
	baselines := map[[2]int]*Proof{}
	baseline := func(t *testing.T, nodes, faults int) *Proof {
		key := [2]int{nodes, faults}
		if pr, ok := baselines[key]; ok {
			return pr
		}
		pr, _, err := Run(ctx, p, Options{Nodes: nodes, FaultTolerance: faults})
		if err != nil {
			t.Fatalf("fault-free baseline (k=%d f=%d): %v", nodes, faults, err)
		}
		baselines[key] = pr
		return pr
	}
	for _, sc := range chaosScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			for _, base := range []int64{3, 17, 101} {
				seed := base*1000003 + *chaosSeed
				obs := &chaosObserver{}
				opts := Options{
					Nodes:           sc.nodes,
					FaultTolerance:  sc.faults,
					MaxErasures:     sc.maxErasures,
					MaxRepairRounds: sc.repair,
					GatherGrace:     sc.grace,
					Seed:            seed,
					NewTransport:    func(k int) Transport { return sc.transport(seed, k) },
					Observer:        obs,
				}
				if sc.adversary != nil {
					opts.Adversary = sc.adversary(seed)
				}
				proof, rep, err := Run(ctx, p, opts)

				if sc.wantErr != nil {
					if !errors.Is(err, sc.wantErr) {
						t.Fatalf("seed %d: err = %v, want %v", seed, err, sc.wantErr)
					}
					continue
				}
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if !rep.Verified {
					t.Fatalf("seed %d: recovered run not verified", seed)
				}
				// The paper's determinism claim under delivery faults:
				// whichever subset of shares survives, the decoded proof
				// is the fault-free proof, bit for bit.
				if err := proofsEqual(baseline(t, sc.nodes, sc.faults), proof); err != nil {
					t.Fatalf("seed %d: proof differs from fault-free run: %v", seed, err)
				}
				if sc.wantMissing != nil && !sameInts(rep.MissingNodes, sc.wantMissing) {
					t.Fatalf("seed %d: MissingNodes = %v, want %v", seed, rep.MissingNodes, sc.wantMissing)
				}
				if sc.wantSuspects != nil && !sameInts(rep.SuspectNodes, sc.wantSuspects) {
					t.Fatalf("seed %d: SuspectNodes = %v, want %v", seed, rep.SuspectNodes, sc.wantSuspects)
				}
				if sc.wantRepaired != nil && !sameInts(rep.RepairedNodes, sc.wantRepaired) {
					t.Fatalf("seed %d: RepairedNodes = %v, want %v", seed, rep.RepairedNodes, sc.wantRepaired)
				}
				if got, want := int(obs.repairRounds.Load()), rep.RepairRounds; got != want {
					t.Fatalf("seed %d: observer saw %d repair rounds, report says %d", seed, got, want)
				}
				if sc.repair == 0 && rep.RepairRounds != 0 {
					t.Fatalf("seed %d: repair disabled but report claims %d rounds", seed, rep.RepairRounds)
				}
				if !sc.skipDeliveryCk {
					// The observer's delivery-fault count is the round-0
					// gather's view: everything repair later recovered plus
					// whatever stayed missing.
					if got, want := int(obs.deliveryFaults.Load()), len(rep.MissingNodes)+len(rep.RepairedNodes); got != want {
						t.Fatalf("seed %d: observer saw %d delivery faults, report says %d", seed, got, want)
					}
				}
				// Delivery faults must never leak into the suspect list.
				suspect := map[int]bool{}
				for _, id := range rep.SuspectNodes {
					suspect[id] = true
				}
				for _, id := range rep.MissingNodes {
					if suspect[id] {
						t.Fatalf("seed %d: missing node %d also reported as content suspect", seed, id)
					}
				}
			}
		})
	}
}

// TestChaosLossRunsAreReproducible pins the determinism contract the
// harness rests on: the same seed yields the same missing set and the
// same proof on every replay, concurrency notwithstanding.
func TestChaosLossRunsAreReproducible(t *testing.T) {
	ctx := context.Background()
	p := testProblem()
	run := func() (*Proof, *Report) {
		proof, rep, err := Run(ctx, p, Options{
			Nodes: 8, FaultTolerance: 4, MaxErasures: 2, GatherGrace: 2 * time.Second,
			NewTransport: func(k int) Transport {
				return NewLossyTransport(NewShardedTransport(k, 2), LossyConfig{Seed: 99, DropNodes: []int{1, 4}})
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return proof, rep
	}
	p1, r1 := run()
	p2, r2 := run()
	if err := proofsEqual(p1, p2); err != nil {
		t.Fatalf("replay diverged: %v", err)
	}
	if !sameInts(r1.MissingNodes, r2.MissingNodes) || !sameInts(r1.MissingNodes, []int{1, 4}) {
		t.Fatalf("missing sets diverged or wrong: %v vs %v", r1.MissingNodes, r2.MissingNodes)
	}
}
