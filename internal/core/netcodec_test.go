package core

// Codec tests for the NodeShares wire format: exact round-trips across
// the geometry space, rejection of truncated/oversized/garbage frames
// with the typed ErrBadFrame, and a fuzz target asserting the decoder
// never panics and that every accepted payload re-encodes to the very
// bytes that produced it (the format is canonical).

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"testing"
	"time"
)

// randomShares builds a rectangular NodeShares with seeded contents,
// including a random sponsor and repair round so the round-trip cases
// exercise the v2 header fields.
func randomShares(rng *rand.Rand, id, lo, span, nPrimes, width int, errText string) NodeShares {
	m := NodeShares{
		ID: id, From: rng.Intn(1 << 20), Round: rng.Intn(4),
		Lo: lo, Hi: lo + span,
		Elapsed: time.Duration(rng.Int63n(1 << 40)),
		Vals:    make([][][]uint64, nPrimes),
	}
	if errText != "" {
		m.Err = &RemoteError{Msg: errText}
	}
	for pi := range m.Vals {
		coords := make([][]uint64, width)
		for c := range coords {
			vals := make([]uint64, span)
			for j := range vals {
				vals[j] = rng.Uint64()
			}
			coords[c] = vals
		}
		m.Vals[pi] = coords
	}
	return m
}

func sharesEqual(t *testing.T, a, b NodeShares) {
	t.Helper()
	if a.ID != b.ID || a.From != b.From || a.Round != b.Round ||
		a.Lo != b.Lo || a.Hi != b.Hi || a.Elapsed != b.Elapsed {
		t.Fatalf("header mismatch: %+v vs %+v", a, b)
	}
	switch {
	case a.Err == nil && b.Err == nil:
	case a.Err == nil || b.Err == nil || a.Err.Error() != b.Err.Error():
		t.Fatalf("err mismatch: %v vs %v", a.Err, b.Err)
	}
	if len(a.Vals) != len(b.Vals) {
		t.Fatalf("prime count %d vs %d", len(a.Vals), len(b.Vals))
	}
	for pi := range a.Vals {
		if len(a.Vals[pi]) != len(b.Vals[pi]) {
			t.Fatalf("prime %d width %d vs %d", pi, len(a.Vals[pi]), len(b.Vals[pi]))
		}
		for c := range a.Vals[pi] {
			av, bv := a.Vals[pi][c], b.Vals[pi][c]
			if len(av) != len(bv) {
				t.Fatalf("prime %d coord %d span %d vs %d", pi, c, len(av), len(bv))
			}
			for j := range av {
				if av[j] != bv[j] {
					t.Fatalf("prime %d coord %d point %d: %d vs %d", pi, c, j, av[j], bv[j])
				}
			}
		}
	}
}

func TestNodeSharesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cases := []struct {
		id, lo, span, nPrimes, width int
		errText                      string
	}{
		{0, 0, 1, 1, 1, ""},
		{7, 13, 29, 3, 4, ""},
		{3, 0, 0, 2, 5, ""}, // empty owned range
		{1, 5, 8, 0, 0, ""}, // no primes at all
		{2, 9, 4, 1, 2, "node 2: evaluation exploded"},
		{1 << 20, 1 << 20, 100, 4, 3, ""},
	}
	for _, tc := range cases {
		m := randomShares(rng, tc.id, tc.lo, tc.span, tc.nPrimes, tc.width, tc.errText)
		data, err := EncodeNodeShares(m)
		if err != nil {
			t.Fatalf("encode %+v: %v", tc, err)
		}
		back, err := DecodeNodeShares(data)
		if err != nil {
			t.Fatalf("decode %+v: %v", tc, err)
		}
		sharesEqual(t, m, back)
		// Canonical: re-encoding the decoded message reproduces the bytes.
		again, err := EncodeNodeShares(back)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(data, again) {
			t.Fatalf("re-encoded bytes differ for %+v", tc)
		}
	}
}

func TestNodeSharesEncodeRejectsRagged(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randomShares(rng, 1, 0, 4, 2, 3, "")
	m.Vals[1] = m.Vals[1][:2] // second prime narrower than the first
	if _, err := EncodeNodeShares(m); err == nil {
		t.Fatal("encode accepted ragged width")
	}
	m = randomShares(rng, 1, 0, 4, 2, 3, "")
	m.Vals[0][1] = m.Vals[0][1][:3] // one coord short of the span
	if _, err := EncodeNodeShares(m); err == nil {
		t.Fatal("encode accepted short coordinate vector")
	}
	m = randomShares(rng, 1, 0, 4, 1, 1, "")
	m.Hi = m.Lo - 1
	if _, err := EncodeNodeShares(m); err == nil {
		t.Fatal("encode accepted negative span")
	}
}

func TestNodeSharesDecodeRejectsTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randomShares(rng, 5, 10, 6, 2, 3, "some failure")
	data, err := EncodeNodeShares(m)
	if err != nil {
		t.Fatal(err)
	}
	// Every proper prefix must be rejected, and always with the typed
	// error — the decoder's contract with the connection reader.
	for n := 0; n < len(data); n++ {
		if _, err := DecodeNodeShares(data[:n]); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("prefix of %d/%d bytes: err = %v, want ErrBadFrame", n, len(data), err)
		}
	}
	// Trailing garbage is a framing bug, not slack.
	if _, err := DecodeNodeShares(append(append([]byte{}, data...), 0xFF)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("trailing byte accepted: %v", err)
	}
}

func TestNodeSharesDecodeRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":       nil,
		"bad magic":   []byte("XXXXthis is not a frame at all, not even close"),
		"proof magic": append([]byte{'C', 'M', 'L', 1}, make([]byte, 64)...),
		// The pre-repair frame format: one version byte off, typed-rejected
		// rather than misparsed (v1 headers lack the from/round words).
		"v1 magic": append([]byte{'C', 'M', 'S', 1}, make([]byte, 72)...),
	}
	for name, data := range cases {
		if _, err := DecodeNodeShares(data); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("%s: err = %v, want ErrBadFrame", name, err)
		}
	}
}

// TestNodeSharesDecodeBoundsAllocations feeds headers claiming huge
// geometry with almost no bytes behind them: the decoder must reject
// before allocating anything proportional to the claim.
func TestNodeSharesDecodeBoundsAllocations(t *testing.T) {
	le := binary.LittleEndian
	hdr := func(id, from, round, lo, hi, elapsed, errLen uint64, rest ...uint64) []byte {
		buf := append([]byte{}, sharesMagic[:]...)
		for _, v := range []uint64{id, from, round, lo, hi, elapsed, errLen} {
			buf = le.AppendUint64(buf, v)
		}
		for _, v := range rest {
			buf = le.AppendUint64(buf, v)
		}
		return buf
	}
	cases := map[string][]byte{
		"huge span":     hdr(1, 0, 0, 0, 1<<40, 0, 0),
		"negative span": hdr(1, 0, 0, 100, 50, 0, 0),
		"huge from":     hdr(1, 1<<40, 0, 0, 1, 0, 0),
		"huge round":    hdr(1, 0, 1<<40, 0, 1, 0, 0),
		"huge err":      hdr(1, 0, 0, 0, 1, 0, 1<<30),
		"huge primes":   hdr(1, 0, 0, 0, 1, 0, 0, 1<<20, 1),
		"huge width":    hdr(1, 0, 0, 0, 1, 0, 0, 1, 1<<40),
		"unbacked body": hdr(1, 0, 0, 0, 1<<20, 0, 0, 8, 64), // claims 4 GiB of words, carries none
	}
	for name, data := range cases {
		allocated := testing.AllocsPerRun(1, func() {
			if _, err := DecodeNodeShares(data); !errors.Is(err, ErrBadFrame) {
				t.Fatalf("%s: err = %v, want ErrBadFrame", name, err)
			}
		})
		// The error path allocates the error value and nothing
		// claim-sized; a handful of allocations is the ceiling.
		if allocated > 8 {
			t.Fatalf("%s: %v allocations on the reject path", name, allocated)
		}
	}
}

func TestReadFrameRejectsOversizedClaim(t *testing.T) {
	var buf bytes.Buffer
	var prefix [4]byte
	binary.LittleEndian.PutUint32(prefix[:], 1<<28)
	buf.Write(prefix[:])
	buf.WriteString("tiny")
	if _, err := ReadFrame(&buf, 1<<20); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversized claim: err = %v, want ErrBadFrame", err)
	}
}

func TestFrameRoundTripAndPartials(t *testing.T) {
	payload := []byte("the collector expects exactly this")
	var buf bytes.Buffer
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	stream := append([]byte{}, buf.Bytes()...)
	got, err := ReadFrame(bytes.NewReader(stream), 0)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: %q, %v", got, err)
	}
	// A stream cut mid-frame is a died connection, not a protocol
	// violation: io.ErrUnexpectedEOF, never ErrBadFrame.
	for n := 1; n < len(stream); n++ {
		_, err := ReadFrame(bytes.NewReader(stream[:n]), 0)
		if errors.Is(err, ErrBadFrame) {
			t.Fatalf("cut at %d misread as protocol violation", n)
		}
		if err == nil {
			t.Fatalf("cut at %d accepted", n)
		}
	}
	// And a clean end before any prefix byte is io.EOF.
	if _, err := ReadFrame(bytes.NewReader(nil), 0); err != io.EOF {
		t.Fatalf("empty stream: %v, want io.EOF", err)
	}
}

// FuzzDecodeNodeShares asserts the decoder's two contracts under
// arbitrary bytes: it never panics, and anything it accepts re-encodes
// to exactly the input (canonical format, so a forwarded frame cannot
// mutate in flight).
func FuzzDecodeNodeShares(f *testing.F) {
	rng := rand.New(rand.NewSource(3))
	for _, m := range []NodeShares{
		randomShares(rng, 0, 0, 1, 1, 1, ""),
		randomShares(rng, 6, 12, 5, 2, 3, "boom"),
		randomShares(rng, 2, 0, 0, 1, 4, ""),
	} {
		data, err := EncodeNodeShares(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte{'C', 'M', 'S', 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeNodeShares(data)
		if err != nil {
			if !errors.Is(err, ErrBadFrame) {
				t.Fatalf("rejection not typed: %v", err)
			}
			return
		}
		again, err := EncodeNodeShares(m)
		if err != nil {
			t.Fatalf("accepted payload failed to re-encode: %v", err)
		}
		if !bytes.Equal(data, again) {
			t.Fatalf("decode/encode not canonical:\n in %x\nout %x", data, again)
		}
	})
}
