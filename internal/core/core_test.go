package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"camelot/internal/ff"
)

// polyProblem is a transparent test problem: width explicit polynomials
// with small integer coefficients, evaluated honestly.
type polyProblem struct {
	name   string
	coeffs [][]int64 // [coord][power]
	minQ   uint64
	primes int
}

var _ Problem = (*polyProblem)(nil)

func (p *polyProblem) Name() string { return p.name }
func (p *polyProblem) Width() int   { return len(p.coeffs) }
func (p *polyProblem) Degree() int {
	d := 0
	for _, c := range p.coeffs {
		if len(c)-1 > d {
			d = len(c) - 1
		}
	}
	return d
}
func (p *polyProblem) MinModulus() uint64 {
	if p.minQ == 0 {
		return 17
	}
	return p.minQ
}
func (p *polyProblem) NumPrimes() int {
	if p.primes == 0 {
		return 1
	}
	return p.primes
}
func (p *polyProblem) Evaluate(q, x0 uint64) ([]uint64, error) {
	f := ff.Must(q)
	out := make([]uint64, len(p.coeffs))
	for w, cs := range p.coeffs {
		acc := uint64(0)
		for j := len(cs) - 1; j >= 0; j-- {
			acc = f.Add(f.Mul(acc, x0), f.Reduce(cs[j]))
		}
		out[w] = acc
	}
	return out, nil
}

// liarProblem claims degree 1 but actually evaluates x^2: the decoded
// "proof" cannot match fresh evaluations, so verification must fail.
type liarProblem struct{}

var _ Problem = liarProblem{}

func (liarProblem) Name() string       { return "liar" }
func (liarProblem) Width() int         { return 1 }
func (liarProblem) Degree() int        { return 1 }
func (liarProblem) MinModulus() uint64 { return 101 }
func (liarProblem) NumPrimes() int     { return 1 }
func (liarProblem) Evaluate(q, x0 uint64) ([]uint64, error) {
	f := ff.Must(q)
	return []uint64{f.Mul(x0, x0)}, nil
}

func testProblem() *polyProblem {
	return &polyProblem{
		name:   "test-poly",
		coeffs: [][]int64{{3, 1, 4, 1, 5, 9, 2, 6}, {-2, 7, 0, 0, 0, 0, 0, 1}},
	}
}

func TestRunCleanSingleNode(t *testing.T) {
	p := testProblem()
	proof, rep, err := Run(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified {
		t.Fatal("clean run not verified")
	}
	if rep.Nodes != 1 || rep.CodeLength != p.Degree()+1 {
		t.Fatalf("geometry: %+v", rep)
	}
	// Coefficients must match the plain polynomial.
	q := proof.Primes[0]
	f := ff.Must(q)
	for w, cs := range p.coeffs {
		for j, c := range cs {
			if proof.Coeffs[q][w][j] != f.Reduce(c) {
				t.Fatalf("coord %d coeff %d = %d, want %d", w, j, proof.Coeffs[q][w][j], f.Reduce(c))
			}
		}
	}
}

func TestRunManyNodesMatchesSingle(t *testing.T) {
	p := testProblem()
	ctx := context.Background()
	p1, _, err := Run(ctx, p, Options{Nodes: 1, FaultTolerance: 3})
	if err != nil {
		t.Fatal(err)
	}
	p8, rep, err := Run(ctx, p, Options{Nodes: 8, FaultTolerance: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Nodes != 8 {
		t.Fatalf("nodes = %d", rep.Nodes)
	}
	q := p1.Primes[0]
	for w := 0; w < p.Width(); w++ {
		for j := range p1.Coeffs[q][w] {
			if p1.Coeffs[q][w][j] != p8.Coeffs[q][w][j] {
				t.Fatal("K=1 and K=8 proofs differ")
			}
		}
	}
}

func TestRunWithLyingNodesIdentifiesCulprits(t *testing.T) {
	p := testProblem()
	// d=7, f=4 => e = 8 + 8 = 16 points on 8 nodes => 2 points each.
	// One lying node corrupts 2 shares <= radius 4.
	adv := NewLyingNodes(1, 3)
	proof, rep, err := Run(context.Background(), p, Options{
		Nodes: 8, FaultTolerance: 4, Adversary: adv,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified {
		t.Fatal("run with in-radius corruption must verify")
	}
	if len(rep.SuspectNodes) != 1 || rep.SuspectNodes[0] != 3 {
		t.Fatalf("suspects = %v, want [3]", rep.SuspectNodes)
	}
	if rep.CorruptedShares == 0 {
		t.Fatal("no corrupted shares observed")
	}
	// Proof must still be the true polynomial.
	q := proof.Primes[0]
	f := ff.Must(q)
	if proof.Coeffs[q][0][0] != f.Reduce(3) {
		t.Fatal("corrupted run decoded wrong proof")
	}
}

func TestRunWithSilentNodes(t *testing.T) {
	p := testProblem()
	adv := NewSilentNodes(0)
	_, rep, err := Run(context.Background(), p, Options{
		Nodes: 8, FaultTolerance: 4, Adversary: adv,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The silent node owns 2 of 16 points; they may decode as errors
	// (unless the true share was 0). Culprit identification is
	// best-effort for crash faults; proof correctness is the invariant.
	if !rep.Verified {
		t.Fatal("not verified")
	}
}

func TestRunWithEquivocation(t *testing.T) {
	// Paper footnote 7: equivocating byzantine nodes send different
	// garbage to different recipients; every honest node still decodes
	// the same proof.
	p := testProblem()
	adv := NewEquivocatingNodes(7, 2, 5)
	// e = 8+2*8 = 24 points on 12 nodes => 2 points per node; two
	// byzantine nodes corrupt 4 shares <= radius 8.
	_, rep, err := Run(context.Background(), p, Options{
		Nodes: 12, FaultTolerance: 8, Adversary: adv,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified {
		t.Fatal("not verified under equivocation")
	}
	want := map[int]bool{2: true, 5: true}
	for _, s := range rep.SuspectNodes {
		if !want[s] {
			t.Fatalf("spurious suspect %d", s)
		}
	}
}

func TestRunBeyondRadiusFails(t *testing.T) {
	p := testProblem()
	// f=1 => radius 1, but the lying node owns 2+ points.
	adv := NewLyingNodes(1, 0)
	_, _, err := Run(context.Background(), p, Options{
		Nodes: 4, FaultTolerance: 1, Adversary: adv,
	})
	if err == nil {
		t.Fatal("expected decode failure beyond radius")
	}
}

func TestRunAllNodesByzantine(t *testing.T) {
	p := testProblem()
	adv := NewLyingNodes(1, 0, 1)
	_, _, err := Run(context.Background(), p, Options{Nodes: 2, Adversary: adv})
	if !errors.Is(err, ErrNoHonestNodes) {
		t.Fatalf("err = %v, want ErrNoHonestNodes", err)
	}
}

func TestRunVerificationCatchesNonPolynomial(t *testing.T) {
	_, _, err := Run(context.Background(), liarProblem{}, Options{Seed: 42})
	if !errors.Is(err, ErrVerificationFailed) {
		t.Fatalf("err = %v, want ErrVerificationFailed", err)
	}
}

func TestRunMultiPrime(t *testing.T) {
	p := testProblem()
	p.primes = 3
	proof, rep, err := Run(context.Background(), p, Options{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(proof.Primes) != 3 || len(rep.Primes) != 3 {
		t.Fatalf("primes = %v", proof.Primes)
	}
	for i := 1; i < 3; i++ {
		if proof.Primes[i] <= proof.Primes[i-1] {
			t.Fatal("primes must be strictly ascending (distinct)")
		}
	}
}

func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := testProblem()
	if _, _, err := Run(ctx, p, Options{Nodes: 2}); err == nil {
		t.Fatal("cancelled context must abort the run")
	}
}

func TestProofEvalAndSumRange(t *testing.T) {
	p := testProblem()
	proof, _, err := Run(context.Background(), p, Options{FaultTolerance: 2})
	if err != nil {
		t.Fatal(err)
	}
	q := proof.Primes[0]
	f := ff.Must(q)
	// Eval inside the table and beyond it must agree with the polynomial.
	for _, x := range []uint64{0, 3, uint64(len(proof.Points)), 99999 % q} {
		want, _ := p.Evaluate(q, x)
		if got := proof.Eval(q, 0, x); got != want[0] {
			t.Fatalf("Eval(%d) = %d, want %d", x, got, want[0])
		}
	}
	// SumRange against direct summation.
	want := uint64(0)
	for x := uint64(2); x < 20; x++ {
		v, _ := p.Evaluate(q, x)
		want = f.Add(want, v[1])
	}
	if got := proof.SumRange(q, 1, 2, 20); got != want {
		t.Fatalf("SumRange = %d, want %d", got, want)
	}
}

func TestVerifyProofRejectsForgery(t *testing.T) {
	p := testProblem()
	proof, _, err := Run(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := proof.Primes[0]
	proof.Coeffs[q][0][2] = (proof.Coeffs[q][0][2] + 1) % q
	rejected := false
	for seed := int64(0); seed < 20 && !rejected; seed++ {
		ok, err := VerifyProof(p, proof, 1, seed)
		if err != nil {
			t.Fatal(err)
		}
		rejected = !ok
	}
	if !rejected {
		t.Fatal("forged proof survived 20 trials (d/q ~ 7/257 per trial)")
	}
}

func TestPointAssignmentBalanced(t *testing.T) {
	for _, tc := range []struct{ e, k int }{{10, 3}, {16, 8}, {7, 7}, {5, 1}, {100, 7}} {
		pa := NewPointAssignment(tc.e, tc.k)
		counts := make([]int, tc.k)
		for i := 0; i < tc.e; i++ {
			owner := pa.Owner(i)
			if owner < 0 || owner >= tc.k {
				t.Fatalf("e=%d k=%d: owner(%d)=%d", tc.e, tc.k, i, owner)
			}
			counts[owner]++
		}
		lo, hi := tc.e/tc.k, (tc.e+tc.k-1)/tc.k
		for id, c := range counts {
			if c < lo || c > hi {
				t.Fatalf("e=%d k=%d: node %d owns %d points, want in [%d,%d]", tc.e, tc.k, id, c, lo, hi)
			}
			rlo, rhi := pa.Range(id)
			if rhi-rlo != c {
				t.Fatalf("Range(%d) = [%d,%d) disagrees with owner count %d", id, rlo, rhi, c)
			}
			for i := rlo; i < rhi; i++ {
				if pa.Owner(i) != id {
					t.Fatalf("Owner(%d) != %d", i, id)
				}
			}
		}
	}
}

func TestChoosePrimes(t *testing.T) {
	primes, err := ChoosePrimes(3, 1000, 64)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for _, q := range primes {
		if q < 1000 || !ff.IsPrime(q) || (q-1)%64 != 0 {
			t.Fatalf("bad prime %d", q)
		}
		if seen[q] {
			t.Fatal("duplicate prime")
		}
		seen[q] = true
	}
	if _, err := ChoosePrimes(0, 10, 4); err == nil {
		t.Fatal("want error for count=0")
	}
}

func TestAdversaryDeterminism(t *testing.T) {
	a1 := NewLyingNodes(9, 1)
	a2 := NewLyingNodes(9, 1)
	v1, ok1 := a1.Transform(1, 0, 101, 0, 5, 7)
	v2, ok2 := a2.Transform(1, 0, 101, 0, 5, 7)
	if v1 != v2 || ok1 != ok2 {
		t.Fatal("lying adversary not deterministic")
	}
	if v1 == 7 {
		t.Fatal("lying adversary must change the value")
	}
	// Equivocators differ by recipient.
	e := NewEquivocatingNodes(9, 1)
	r0, _ := e.Transform(1, 0, 101, 0, 5, 7)
	r1, _ := e.Transform(1, 2, 101, 0, 5, 7)
	if r0 == r1 {
		t.Fatal("equivocator sent identical values to different recipients (hash collision would be astronomically unlikely)")
	}
}

func TestRunMoreNodesThanPoints(t *testing.T) {
	p := &polyProblem{name: "tiny", coeffs: [][]int64{{1, 2}}}
	_, rep, err := Run(context.Background(), p, Options{Nodes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Nodes > rep.CodeLength {
		t.Fatalf("nodes %d not clamped to code length %d", rep.Nodes, rep.CodeLength)
	}
}

func TestRunRandomAdversarySweep(t *testing.T) {
	// Property-style sweep: random fault counts within the radius always
	// verify and never implicate honest nodes.
	p := testProblem()
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		k := 4 + rng.Intn(8)
		f := 2 + rng.Intn(4)
		e := p.Degree() + 1 + 2*f
		per := (e + k - 1) / k
		maxBad := f / per
		if maxBad == 0 {
			continue
		}
		bad := rng.Perm(k)[:1+rng.Intn(maxBad)]
		adv := NewLyingNodes(uint64(trial), bad...)
		_, rep, err := Run(context.Background(), p, Options{
			Nodes: k, FaultTolerance: f, Adversary: adv, Seed: int64(trial),
		})
		if err != nil {
			t.Fatalf("trial %d (k=%d f=%d bad=%v): %v", trial, k, f, bad, err)
		}
		badSet := map[int]bool{}
		for _, b := range bad {
			badSet[b] = true
		}
		for _, s := range rep.SuspectNodes {
			if !badSet[s] {
				t.Fatalf("trial %d: honest node %d implicated", trial, s)
			}
		}
	}
}

func TestProofBinaryRoundTrip(t *testing.T) {
	p := testProblem()
	p.primes = 2
	proof, _, err := Run(context.Background(), p, Options{FaultTolerance: 3, Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	data, err := proof.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Proof
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.Degree != proof.Degree || back.Width != proof.Width ||
		len(back.Points) != len(proof.Points) || len(back.Primes) != len(proof.Primes) {
		t.Fatal("geometry did not round-trip")
	}
	for _, q := range proof.Primes {
		for c := 0; c < proof.Width; c++ {
			for j := range proof.Coeffs[q][c] {
				if back.Coeffs[q][c][j] != proof.Coeffs[q][c][j] {
					t.Fatal("coefficients did not round-trip")
				}
			}
			for j := range proof.Evals[q][c] {
				if back.Evals[q][c][j] != proof.Evals[q][c][j] {
					t.Fatal("evaluations did not round-trip")
				}
			}
		}
	}
	// The deserialized proof must still verify — the Merlin handoff.
	ok, err := VerifyProof(p, &back, 2, 9)
	if err != nil || !ok {
		t.Fatalf("deserialized proof rejected: %v %v", ok, err)
	}
}

func TestProofUnmarshalRejectsGarbage(t *testing.T) {
	var p Proof
	if err := p.UnmarshalBinary([]byte("definitely not a proof")); err == nil {
		t.Fatal("garbage accepted")
	}
	if err := p.UnmarshalBinary(nil); err == nil {
		t.Fatal("empty accepted")
	}
	// Valid magic, truncated body.
	if err := p.UnmarshalBinary([]byte{'C', 'M', 'L', 1, 9, 0}); err == nil {
		t.Fatal("truncated accepted")
	}
}
