// Package core implements the Camelot framework of paper §1.2–§1.4: a
// template for community computation over a common input in which K
// compute nodes jointly evaluate a proof polynomial P(x) mod q at e
// points, the evaluation vector being — by construction — a nonsystematic
// Reed–Solomon codeword. The framework provides:
//
//   - Proof preparation in distributed encoded form (§1.3 step 1):
//     logical nodes, each responsible for ~e/K evaluation points,
//     scheduled on a bounded worker pool and broadcasting their shares
//     over a pluggable Transport (default: an in-memory bus). Problems
//     implementing BatchProblem evaluate their whole owned range per
//     prime in one call.
//   - Error correction during preparation (§1.3 step 2): every honest
//     node independently runs the Gao decoder on whatever it received,
//     recovering the true proof and identifying the failed nodes, for up
//     to ⌊(e-d-1)/2⌋ corrupted shares — byzantine equivocation included.
//   - Independent verification (§1.3 step 3): any entity checks the proof
//     against the input with one evaluation of P at a random point;
//     soundness error ≤ d/q per trial.
//
// Problems plug in via the Problem interface; answers larger than one
// modulus are assembled by evaluating over several distinct primes and
// reconstructing with the Chinese Remainder Theorem.
//
// The protocol itself is a staged pipeline (see ARCHITECTURE.md at the
// repository root): engine.go wires prepare → decode → verify over the
// transport layer (transport.go) and the scheduler layer (scheduler.go),
// with context cancellation observed in every stage.
package core

import (
	"errors"
	"fmt"
	"time"

	"camelot/internal/ff"
	"camelot/internal/plan"
)

// Problem is a Camelot proof system: a family of Width() univariate proof
// polynomials over Z_q (one instance per admissible prime q), each of
// degree at most Degree(), whose evaluations any node can compute from
// the common input.
//
// Evaluate must be deterministic in (q, x0): the entire framework —
// distributed encoding, error-correction, and verification — relies on
// every honest node computing identical shares.
type Problem interface {
	// Name identifies the problem in reports and errors.
	Name() string
	// Width is the number of simultaneous proof polynomials (most
	// problems use 1; the chromatic polynomial uses one per color count).
	Width() int
	// Degree returns an upper bound d on the degree of every coordinate
	// polynomial.
	Degree() int
	// MinModulus returns the smallest admissible prime modulus (problems
	// derive it from their reconstruction and evaluation needs, e.g.
	// q ≥ 3R+1 for the clique proof of paper §5.2).
	MinModulus() uint64
	// NumPrimes returns how many distinct primes are needed so that the
	// product exceeds the problem's integer answer bound.
	NumPrimes() int
	// Evaluate computes (P_0(x0), ..., P_{Width-1}(x0)) mod q.
	Evaluate(q uint64, x0 uint64) ([]uint64, error)
}

// Proof is the static, independently verifiable artifact of a Camelot
// run: for every modulus, the coefficient vectors of the proof
// polynomials plus the corrected codeword evaluations at points 0..e-1.
type Proof struct {
	// Primes are the proof moduli, ascending.
	Primes []uint64
	// Degree is the degree bound d (coefficient vectors have d+1 entries).
	Degree int
	// Width is the number of coordinate polynomials.
	Width int
	// Points are the evaluation points 0..e-1.
	Points []uint64
	// Coeffs[prime][w] is the coefficient vector of coordinate w mod prime.
	Coeffs map[uint64][][]uint64
	// Evals[prime][w] is the corrected codeword of coordinate w mod prime.
	Evals map[uint64][][]uint64
}

// Eval returns P_w(x) mod prime, using the corrected evaluation table
// when x is one of the code points and Horner otherwise.
func (p *Proof) Eval(prime uint64, w int, x uint64) uint64 {
	f := ff.Must(prime) // proofs carry framework-selected primes; memoized, so cheap per call
	if x < uint64(len(p.Points)) {
		return p.Evals[prime][w][x]
	}
	return f.Horner(p.Coeffs[prime][w], x)
}

// SumRange returns Σ_{x=lo}^{hi-1} P_w(x) mod prime — the reconstruction
// sum used by problems whose answer is an evaluation sum (permanent, set
// covers, triangle trace, clique form).
func (p *Proof) SumRange(prime uint64, w int, lo, hi uint64) uint64 {
	f := ff.Must(prime)
	acc := uint64(0)
	for x := lo; x < hi; x++ {
		acc = f.Add(acc, p.Eval(prime, w, x))
	}
	return acc
}

// Size returns the proof size in field symbols: Width·(d+1) per prime —
// the quantity every theorem in the paper bounds.
func (p *Proof) Size() int {
	return len(p.Primes) * p.Width * (p.Degree + 1)
}

// ErrNoHonestNodes is returned when the adversary corrupts every node.
var ErrNoHonestNodes = errors.New("core: adversary left no honest nodes")

// ErrProofDisagreement is returned when two honest nodes decode different
// proofs — impossible within the decoding radius, so it indicates that
// corruption exceeded the configured fault tolerance.
var ErrProofDisagreement = errors.New("core: honest nodes decoded different proofs")

// ErrVerificationFailed is returned when the prepared proof fails the
// randomized check against the input.
var ErrVerificationFailed = errors.New("core: proof verification failed")

// Options configure a Camelot run. The zero value is usable: a
// single-node, fault-free, honest run with one verification trial.
type Options struct {
	// Nodes is the number of compute nodes K (default 1).
	Nodes int
	// FaultTolerance is the number f of corrupted shares the run must
	// survive; the codeword length is e = d+1+2f (default 0).
	FaultTolerance int
	// Adversary injects byzantine behaviour (default: none).
	Adversary Adversary
	// Seed drives verification randomness (and nothing else; the
	// computation itself is deterministic).
	Seed int64
	// VerifyTrials is the number of independent spot checks each with
	// soundness error ≤ d/q (default 1).
	VerifyTrials int
	// DecodingNodes caps how many honest nodes perform the full decode
	// (every node receives everything regardless). 0 means all — the
	// paper's model; tests at large K may reduce it for speed.
	DecodingNodes int
	// MaxParallelism bounds the worker pool that drives node evaluation
	// and decoding. 0 means runtime.GOMAXPROCS — the logical node count
	// K no longer dictates goroutine count.
	MaxParallelism int
	// BlockSize fixes how many consecutive points one EvaluateBlock call
	// receives when the problem implements BatchProblem. 0 (the default)
	// autotunes: each range task times a small probe chunk first and
	// sizes subsequent blocks to targetBlockNs, clamped to
	// [minBatchChunk, maxBatchChunk]. Explicit positive values are used
	// as given — the cancellation quantum is then the caller's business.
	BlockSize int
	// NewTransport builds the share-broadcast transport for a run of k
	// nodes (default: the in-memory BroadcastBus). A factory rather than
	// an instance because transports hold per-run message state while
	// Options values are reused across runs.
	NewTransport TransportFactory
	// MaxErasures is the number of node broadcasts the run tolerates
	// losing in delivery (default 0: every message must arrive). When
	// positive, the gather runs in quorum mode — it returns once
	// K-MaxErasures distinct senders have been heard or the GatherGrace
	// timer fires — and the decode stage treats the missing nodes'
	// coordinates as Reed–Solomon erasures: recovery succeeds whenever
	// 2·(corrupted shares) + (erased shares) ≤ e-d-1. Requires a
	// transport implementing QuorumGatherer (the built-ins all do).
	MaxErasures int
	// GatherGrace bounds how long a quorum-mode gather waits between
	// message arrivals before treating the stragglers as lost (default
	// 2s when MaxErasures > 0). Ignored in strict mode.
	GatherGrace time.Duration
	// MaxRepairRounds bounds how many repair rounds the engine may run
	// when the decode stage fails with erasures beyond the Reed–Solomon
	// budget: each round re-assigns the missing nodes' point ranges to
	// surviving nodes, re-gathers over the same transport, and retries
	// the decode — converting a transport loss the budget cannot absorb
	// into latency instead of a typed failure. Default 0: repair off,
	// the run fails exactly as before. Requires MaxErasures > 0 (a
	// strict gather has no missing nodes to repair; newEngine rejects
	// the combination).
	MaxRepairRounds int
	// Pool, when non-nil, substitutes the session layer's shared
	// long-lived worker pool for the per-run scheduler; MaxParallelism
	// is then ignored (the pool's width was fixed at construction).
	Pool *Pool
	// Priority is the run's scheduling weight on the shared Pool: each
	// cycle of the pool's between-runs round-robin lets this run claim
	// Priority tasks where a default run claims one. Values below 1
	// (including the zero default) mean weight 1; without a Pool the
	// per-run scheduler ignores it. This is how a multi-tenant service
	// gives some tenants a larger share of a contended cluster without
	// starving the rest.
	Priority int
	// Geometry, when non-nil, memoizes prime selection and Reed–Solomon
	// code construction across runs — the Cluster's warm per-prime
	// state. One-shot runs leave it nil and recompute per run.
	Geometry *GeometryCache
	// Plans, when non-nil and paired with a non-empty PlanKey, memoizes
	// compiled evaluation plans across runs: the run's planner keys its
	// per-prime compiles into this shared cache instead of a private
	// one, so repeated submissions of the same workload skip compilation
	// entirely. Within a single run plans are always shared across
	// chunks and repair rounds, shared cache or not.
	Plans *plan.Cache
	// PlanKey identifies the workload instance in the shared Plans
	// cache. It must be derived from a canonical instance encoding (the
	// serve layer uses the workload's plan digest) — never a display
	// name, which distinct instances can share. Empty disables sharing.
	PlanKey string
	// Observer, when non-nil, receives progress callbacks (stage
	// transitions, evaluation units done, live suspect counts).
	Observer Observer
}

func (o Options) withDefaults() Options {
	if o.Nodes <= 0 {
		o.Nodes = 1
	}
	if o.Adversary == nil {
		o.Adversary = NoAdversary{}
	}
	if o.VerifyTrials <= 0 {
		o.VerifyTrials = 1
	}
	if o.NewTransport == nil {
		o.NewTransport = func(k int) Transport { return NewBroadcastBus(k) }
	}
	if o.MaxErasures < 0 {
		o.MaxErasures = 0
	}
	if o.MaxErasures > 0 && o.GatherGrace <= 0 {
		o.GatherGrace = 2 * time.Second
	}
	if o.MaxRepairRounds < 0 {
		o.MaxRepairRounds = 0
	}
	return o
}

// PointAssignment maps evaluation-point indices to owner nodes in
// contiguous balanced blocks, so each node performs ⌈e/K⌉ or ⌊e/K⌋
// evaluations — the paper's intrinsic workload balance.
type PointAssignment struct {
	e, k int
}

// NewPointAssignment returns the balanced assignment of e points to k
// nodes.
func NewPointAssignment(e, k int) PointAssignment { return PointAssignment{e: e, k: k} }

// Owner returns the node that evaluates point index i.
func (pa PointAssignment) Owner(i int) int {
	// First (e mod k) nodes own ⌈e/k⌉ points, the rest ⌊e/k⌋.
	big := pa.e % pa.k
	per := pa.e / pa.k
	cut := big * (per + 1)
	if i < cut {
		return i / (per + 1)
	}
	if per == 0 {
		return pa.k - 1
	}
	return big + (i-cut)/per
}

// Range returns the half-open point-index interval owned by node id.
func (pa PointAssignment) Range(id int) (lo, hi int) {
	big := pa.e % pa.k
	per := pa.e / pa.k
	if id < big {
		lo = id * (per + 1)
		return lo, lo + per + 1
	}
	lo = big*(per+1) + (id-big)*per
	return lo, lo + per
}

// ChoosePrimes selects count distinct primes, each at least min and
// NTT-friendly for transforms of the given order (so Reed–Solomon
// encode/decode run quasi-linearly). Primes ascend strictly.
func ChoosePrimes(count int, min uint64, order int) ([]uint64, error) {
	if count <= 0 {
		return nil, fmt.Errorf("core: need at least one prime")
	}
	primes := make([]uint64, 0, count)
	next := min
	for len(primes) < count {
		q, _, err := ff.NTTPrime(next, order)
		if err != nil {
			return nil, fmt.Errorf("core: selecting prime >= %d: %w", next, err)
		}
		primes = append(primes, q)
		next = q + 1
	}
	return primes, nil
}
