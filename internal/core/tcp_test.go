package core

// TCPTransport tests: full engine runs over loopback sockets (strict
// and quorum gathers, bare and lossy-wrapped), the dial-retry path, the
// malformed-frame trust boundary, and shutdown/cancellation hygiene.

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

// tcpLoopback builds an ephemeral loopback collector transport.
func tcpLoopback(t testing.TB, k int) *TCPTransport {
	t.Helper()
	tr, err := NewTCPTransport(k, TCPConfig{ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("tcp transport: %v", err)
	}
	return tr
}

// TestTCPRunMatchesBus is the acceptance gate: the same seed and
// problem over loopback TCP must produce a proof bit-identical to the
// in-memory bus run — the transport cannot touch the mathematics.
func TestTCPRunMatchesBus(t *testing.T) {
	ctx := context.Background()
	p := testProblem()
	busProof, _, err := Run(ctx, p, Options{Nodes: 6, FaultTolerance: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	tcpProof, rep, err := Run(ctx, p, Options{
		Nodes: 6, FaultTolerance: 3, Seed: 9,
		NewTransport: func(k int) Transport { return tcpLoopback(t, k) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified {
		t.Fatal("tcp run not verified")
	}
	if err := proofsEqual(busProof, tcpProof); err != nil {
		t.Fatalf("tcp proof differs from bus proof: %v", err)
	}
}

// TestTCPQuorumWithLoss drives the erasure path over real sockets: a
// lossy wrapper drops two nodes' frames off the socket and the quorum
// gather plus erasure decode must still recover the identical proof.
func TestTCPQuorumWithLoss(t *testing.T) {
	ctx := context.Background()
	p := testProblem()
	baseline, _, err := Run(ctx, p, Options{Nodes: 8, FaultTolerance: 4})
	if err != nil {
		t.Fatal(err)
	}
	proof, rep, err := Run(ctx, p, Options{
		Nodes: 8, FaultTolerance: 4, MaxErasures: 2, GatherGrace: 2 * time.Second,
		NewTransport: func(k int) Transport {
			return NewLossyTransport(tcpLoopback(t, k), LossyConfig{DropNodes: []int{2, 5}})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sameInts(rep.MissingNodes, []int{2, 5}) {
		t.Fatalf("MissingNodes = %v, want [2 5]", rep.MissingNodes)
	}
	if err := proofsEqual(baseline, proof); err != nil {
		t.Fatalf("lossy tcp proof differs: %v", err)
	}
}

// TestTCPSendRetriesUntilCollectorUp reserves an address, starts a
// send-only transport dialing it, and only then brings the collector
// up: the dial-retry loop must bridge the gap.
func TestTCPSendRetriesUntilCollectorUp(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	sender, err := NewTCPTransport(1, TCPConfig{Addr: addr, RetryBackoff: 25 * time.Millisecond, DialRetries: 20})
	if err != nil {
		t.Fatal(err)
	}
	collectorUp := make(chan *TCPTransport, 1)
	go func() {
		time.Sleep(150 * time.Millisecond)
		c, err := NewTCPTransport(1, TCPConfig{ListenAddr: addr})
		if err != nil {
			collectorUp <- nil
			return
		}
		collectorUp <- c
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sender.Send(ctx, NodeShares{ID: 0, Lo: 0, Hi: 1, Vals: [][][]uint64{{{42}}}}); err != nil {
		t.Fatalf("send with late collector: %v", err)
	}
	collector := <-collectorUp
	if collector == nil {
		t.Fatal("collector failed to bind the reserved address")
	}
	defer collector.Close()
	msgs, err := collector.Gather(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || msgs[0].ID != 0 || msgs[0].Vals[0][0][0] != 42 {
		t.Fatalf("gathered %+v", msgs)
	}
}

// TestTCPSendFailsTyped pins the giving-up path: nothing ever listens,
// so Send must return the dial failure after its bounded retries
// rather than hang.
func TestTCPSendFailsTyped(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	sender, err := NewTCPTransport(1, TCPConfig{Addr: addr, RetryBackoff: 5 * time.Millisecond, DialRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	err = sender.Send(context.Background(), NodeShares{ID: 0, Lo: 0, Hi: 0})
	if err == nil {
		t.Fatal("send to dead address succeeded")
	}
}

// TestTCPMalformedFramesCostTheConnection writes garbage and an
// oversized length claim straight onto raw connections: the collector
// must count them, drop those connections, and still gather the honest
// sender's message.
func TestTCPMalformedFramesCostTheConnection(t *testing.T) {
	tr := tcpLoopback(t, 2)
	defer tr.Close()
	addr := tr.Addr()

	// Connection 1: a frame whose payload is garbage.
	c1, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(c1, []byte("not a NodeShares payload")); err != nil {
		t.Fatal(err)
	}
	c1.Close()
	// Connection 2: a length prefix claiming far beyond the cap; the
	// reader must reject on the claim, never allocate it.
	c2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Write([]byte{0xFF, 0xFF, 0xFF, 0x3F}); err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	// Both rejections must land before the gather returns and shuts
	// the readers down; they record asynchronously.
	deadline := time.Now().Add(5 * time.Second)
	for tr.BadFrames() < 2 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := tr.BadFrames(); got != 2 {
		t.Fatalf("BadFrames = %d, want 2", got)
	}

	// The honest sender still gets through on its own connection.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := tr.Send(ctx, NodeShares{ID: 1, Lo: 0, Hi: 1, Vals: [][][]uint64{{{7}}}}); err != nil {
		t.Fatal(err)
	}
	msgs, err := tr.GatherQuorum(ctx, GatherSpec{K: 2, Quorum: 1, Grace: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	delivered, missing, err := collectShares(msgs, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(delivered) != 1 || delivered[0].ID != 1 || !sameInts(missing, []int{0}) {
		t.Fatalf("delivered %+v missing %v", delivered, missing)
	}
}

// TestTCPInBandError carries a node-side failure over the socket: the
// collector must surface it exactly as an in-memory transport would.
func TestTCPInBandError(t *testing.T) {
	tr := tcpLoopback(t, 1)
	defer tr.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	want := errors.New("node 0: the grail was a lie")
	if err := tr.Send(ctx, NodeShares{ID: 0, Lo: 0, Hi: 0, Err: want}); err != nil {
		t.Fatal(err)
	}
	msgs, err := tr.Gather(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := collectShares(msgs, 1, 0); err == nil || err.Error() != want.Error() {
		t.Fatalf("in-band error = %v, want %q", err, want)
	}
}

// TestTCPGatherCancellation: a gather with no senders must end with
// the context, and the transport must shut down cleanly after.
func TestTCPGatherCancellation(t *testing.T) {
	tr := tcpLoopback(t, 4)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := tr.Gather(ctx, 4); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline", err)
	}
	tr.Close() // must not hang or double-close anything
	// After shutdown a straggler's Send completes as a no-op.
	if err := tr.Send(context.Background(), NodeShares{ID: 0, Lo: 0, Hi: 0}); err != nil {
		t.Fatalf("post-shutdown send: %v", err)
	}
}

// TestTCPSendOnlyGatherRefuses pins the collector contract: a
// send-only instance cannot gather.
func TestTCPSendOnlyGatherRefuses(t *testing.T) {
	sender, err := NewTCPTransport(1, TCPConfig{Addr: "127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sender.Gather(context.Background(), 1); !errors.Is(err, ErrNotCollector) {
		t.Fatalf("Gather = %v, want ErrNotCollector", err)
	}
	if _, err := sender.GatherQuorum(context.Background(), GatherSpec{K: 1, Quorum: 1}); !errors.Is(err, ErrNotCollector) {
		t.Fatalf("GatherQuorum = %v, want ErrNotCollector", err)
	}
}

// TestTCPFactoryFailureSurfaces: a factory whose bind fails must yield
// a transport that reports the root cause, and a run using it must
// fail with that cause instead of hanging.
func TestTCPFactoryFailureSurfaces(t *testing.T) {
	factory := NewTCPFactory(TCPConfig{ListenAddr: "this is not:a bindable:address"})
	tr := factory(4)
	if _, ok := tr.(failedTransport); !ok {
		t.Fatalf("factory with unbindable address returned %T, want failedTransport", tr)
	}
	_, _, err := Run(context.Background(), testProblem(), Options{
		Nodes: 2, NewTransport: func(k int) Transport { return factory(k) },
	})
	if err == nil {
		t.Fatal("run with unbindable collector succeeded")
	}
}

// TestTCPUnknownSenderCostsTheConnection: a frame naming a node the
// run never had must be filtered at the transport — feeding it through
// would fail the whole gather as a protocol violation, handing any
// peer that can reach the port a one-frame kill switch.
func TestTCPUnknownSenderCostsTheConnection(t *testing.T) {
	tr := tcpLoopback(t, 2)
	defer tr.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// A well-formed frame from "node 7" of a 2-node run. Wait for the
	// filter to record it before gathering — the gather returning at
	// quorum shuts the readers down.
	if err := tr.Send(ctx, NodeShares{ID: 7, Lo: 0, Hi: 1, Vals: [][][]uint64{{{1}}}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for tr.BadFrames() < 1 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := tr.BadFrames(); got != 1 {
		t.Fatalf("BadFrames = %d, want 1", got)
	}
	if err := tr.Send(ctx, NodeShares{ID: 1, Lo: 0, Hi: 1, Vals: [][][]uint64{{{2}}}}); err != nil {
		t.Fatal(err)
	}
	msgs, err := tr.GatherQuorum(ctx, GatherSpec{K: 2, Quorum: 1, Grace: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	delivered, missing, err := collectShares(msgs, 2, 0)
	if err != nil {
		t.Fatalf("forged id reached collectShares: %v", err)
	}
	if len(delivered) != 1 || delivered[0].ID != 1 || !sameInts(missing, []int{0}) {
		t.Fatalf("delivered %+v missing %v", delivered, missing)
	}
}
