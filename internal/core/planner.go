package core

// The planner is the core engine's handle on the plan layer
// (internal/plan): it resolves, per prime, how a problem's point ranges
// are evaluated — a compiled Plan (memoized, shared), a legacy
// BatchProblem block call, or the point-at-a-time fallback — and it is
// the unit of reuse. One engine builds one Planner for its whole run,
// so every chunk task, node, and repair round of the run compiles at
// most once per prime; ctrl workers keep a Planner per assignment
// manifest for the same reason; and runs submitted with a shared
// plan.Cache and a workload key reuse compiles across runs and tenants.

import (
	"camelot/internal/ff"
	"camelot/internal/plan"
)

// CompiledProblem is a Problem whose per-prime setup compiles into a
// reusable plan.Plan — the preferred extension point for block
// evaluation. Problems that implement it get their compiled plans
// memoized and shared by the framework; BatchProblem remains supported
// as the uncached legacy seam for out-of-tree implementations.
type CompiledProblem interface {
	Problem
	plan.Compiler
}

// Planner resolves a problem's per-prime evaluation strategy and
// memoizes compiled plans. Safe for concurrent use (the engine's chunk
// tasks call For from every pool worker).
type Planner struct {
	p     Problem
	cp    plan.Compiler // non-nil when p compiles
	cache *plan.Cache   // never nil
	key   string
}

// NewPlanner returns a planner with a private plan cache — reuse within
// whatever scope keeps the planner alive (a run, a worker's manifest).
func NewPlanner(p Problem) *Planner {
	return NewSharedPlanner(p, nil, "")
}

// NewSharedPlanner returns a planner that memoizes compiled plans in
// the shared cache under key — the cross-run, cross-tenant sharing
// mode. The key must uniquely identify the problem instance (a
// canonical workload digest, not a display name); when cache is nil or
// key empty the planner falls back to a private cache.
func NewSharedPlanner(p Problem, cache *plan.Cache, key string) *Planner {
	pl := &Planner{p: p, cache: cache, key: key}
	pl.cp, _ = p.(plan.Compiler)
	if pl.cache == nil || pl.key == "" {
		pl.cache = plan.NewCache()
		pl.key = "private"
	}
	return pl
}

// Problem returns the planner's underlying problem.
func (pl *Planner) Problem() Problem { return pl.p }

// For returns the block evaluator for prime q: the memoized compiled
// plan when the problem compiles, an adapter over EvaluateBlock for
// legacy BatchProblems, and nil (with nil error) when only per-point
// Evaluate exists.
func (pl *Planner) For(q uint64) (plan.Plan, error) {
	if pl.cp != nil {
		return pl.cache.Get(pl.key, q, func() (plan.Plan, error) {
			f, err := ff.New(q)
			if err != nil {
				return nil, err
			}
			return pl.cp.Compile(f)
		})
	}
	if bp, ok := pl.p.(BatchProblem); ok {
		return plan.Func(func(xs []uint64) ([][]uint64, error) {
			return bp.EvaluateBlock(q, xs)
		}), nil
	}
	return nil, nil
}
