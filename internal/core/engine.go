package core

// The pipeline layer wires the paper's three protocol steps — prepare,
// decode, verify — as explicit stages over the transport and scheduler
// layers. Each stage observes context cancellation at entry and inside
// its hot loops, so a cancelled run returns promptly no matter which
// stage it is in.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"camelot/internal/rs"
)

// Report records what a Camelot run did: sizing, timing, adversary
// damage, and verification outcome. All durations are wall-clock per
// phase; MaxNodeCompute approximates the paper's per-node time E and
// TotalNodeCompute the total work EK.
type Report struct {
	// Problem is the Problem.Name of the run.
	Problem string
	// Nodes is K, the number of compute nodes.
	Nodes int
	// Width, Degree, CodeLength, FaultTolerance echo the run geometry
	// (CodeLength is e = Degree+1+2·FaultTolerance).
	Width, Degree, CodeLength, FaultTolerance int
	// Primes are the proof moduli.
	Primes []uint64
	// ProofSymbols is the total proof size in field symbols.
	ProofSymbols int
	// ByzantineNodes are the adversary-controlled node ids.
	ByzantineNodes []int
	// SuspectNodes are the nodes the honest decoders identified as having
	// contributed corrupted shares (union across decoders).
	SuspectNodes []int
	// MissingNodes are the nodes whose share broadcasts never arrived —
	// delivery faults, reported distinctly from the content-fault
	// SuspectNodes. Their coordinates were decoded as erasures. When
	// repair rounds ran, this is the set still missing after the last
	// round; nodes a repair recovered move to RepairedNodes.
	MissingNodes []int
	// RepairedNodes are the nodes whose lost broadcasts a repair round
	// recovered: their point ranges were recomputed by surviving nodes
	// and re-gathered, so their coordinates were decoded as ordinary
	// symbols after all. Sorted ascending.
	RepairedNodes []int
	// RepairRounds is the number of self-healing gather rounds the run
	// executed (0 when repair never triggered or was disabled).
	RepairRounds int
	// CorruptedShares is the largest number of error locations any single
	// decoder observed (per prime and coordinate, maximized).
	CorruptedShares int
	// ComputeWall is the wall-clock duration of the distributed
	// evaluation phase.
	ComputeWall time.Duration
	// MaxNodeCompute is the largest single node's evaluation time (≈ E).
	MaxNodeCompute time.Duration
	// TotalNodeCompute is the summed evaluation time of all nodes (≈ EK).
	TotalNodeCompute time.Duration
	// DecodeWall is the wall-clock duration of the decode phase.
	DecodeWall time.Duration
	// VerifyPerTrial is the average duration of one verification trial.
	VerifyPerTrial time.Duration
	// VerifyTrials is the number of spot checks performed.
	VerifyTrials int
	// Verified reports whether every trial accepted.
	Verified bool
}

// engine holds one run's resolved geometry and shared state; its methods
// are the pipeline stages.
type engine struct {
	p    Problem
	opts Options
	// planner resolves and memoizes the run's per-prime evaluation
	// plans: every chunk task and repair round of this run shares one
	// compile per prime, and runs submitted with Options.Plans/PlanKey
	// share compiles across runs.
	planner *Planner
	w, d    int // width, degree bound
	e, k    int // code length, node count (clamped to e)
	primes  []uint64
	assign PointAssignment
	codes  []*rs.Code
	report *Report
	obs    Observer
	// pointsLeft is the progress-credit budget: the (point, prime)
	// units announced via Observer.Geometry that have not been credited
	// through Observer.PointsDone yet. Repair rounds re-evaluate ranges
	// whose round-0 evaluation may already have been credited (locally
	// the computation succeeded — only the broadcast was lost), so all
	// crediting routes through creditPoints, which debits this budget
	// and clamps at zero: PointsDone can never exceed PointsTotal.
	pointsLeft atomic.Int64

	// Transport state, owned for the whole run once stagePrepare builds
	// it: repair rounds re-gather over the same instance, so the engine
	// — not the gather — decides when the transport's world ends (see
	// closeTransport). quorumTr is the same transport's quorum
	// capability; keepOpen records that gathers must leave it alive for
	// potential repair rounds.
	tr       Transport
	quorumTr QuorumGatherer
	keepOpen bool
	// remote is the transport's RemoteAssigner capability when it has
	// one: prepare and repair rounds then ship AssignSpec manifests to
	// remote workers instead of evaluating on the local pool.
	remote RemoteAssigner
}

// newEngine validates the problem geometry, selects the proof moduli,
// and builds the per-prime Reed–Solomon codes.
func newEngine(p Problem, opts Options) (*engine, error) {
	opts = opts.withDefaults()
	d := p.Degree()
	w := p.Width()
	if w <= 0 || d < 0 {
		return nil, fmt.Errorf("invalid geometry width=%d degree=%d", w, d)
	}
	e := d + 1 + 2*opts.FaultTolerance
	k := opts.Nodes
	if k > e {
		k = e // more nodes than points is pointless; trailing nodes would idle
	}
	if opts.MaxRepairRounds > 0 && opts.MaxErasures <= 0 {
		// A strict gather either hears every node or fails the run —
		// there is never a missing set to repair, so the combination is
		// a configuration mistake worth naming.
		return nil, fmt.Errorf("MaxRepairRounds=%d requires MaxErasures > 0: only erasure-tolerant gathers produce repairable missing nodes", opts.MaxRepairRounds)
	}
	minQ := p.MinModulus()
	if minQ < uint64(e)+1 {
		minQ = uint64(e) + 1
	}
	order := 1
	for order < 2*e {
		order <<= 1
	}
	// Geometry resolution goes through the (possibly nil) cache: a
	// Cluster's warm state makes repeated same-shape runs skip the prime
	// scan and code construction entirely.
	cached, err := opts.Geometry.choosePrimes(p.NumPrimes(), minQ, order)
	if err != nil {
		return nil, err
	}
	// Copy: the report and proof publish the slice to callers, and the
	// cached copy must stay immutable.
	primes := append([]uint64(nil), cached...)
	codes := make([]*rs.Code, len(primes))
	for pi, q := range primes {
		code, err := opts.Geometry.code(q, e, d)
		if err != nil {
			return nil, err
		}
		codes[pi] = code
	}
	obs := opts.Observer
	if obs == nil {
		obs = nopObserver{}
	}
	return &engine{
		p: p, opts: opts, w: w, d: d, e: e, k: k,
		planner: NewSharedPlanner(p, opts.Plans, opts.PlanKey),
		primes:  primes,
		assign: NewPointAssignment(e, k),
		codes:  codes,
		obs:    obs,
		report: &Report{
			Problem:        p.Name(),
			Nodes:          k,
			Width:          w,
			Degree:         d,
			CodeLength:     e,
			FaultTolerance: opts.FaultTolerance,
			Primes:         primes,
			ByzantineNodes: append([]int(nil), opts.Adversary.CorruptNodes()...),
			VerifyTrials:   opts.VerifyTrials,
		},
	}, nil
}

// Run executes the full Camelot protocol for the problem: distributed
// proof preparation on a bounded worker pool over opts.Nodes logical
// nodes, per-node Gao decoding with failed-node identification,
// cross-node agreement check, and randomized verification. When the
// decode fails with erasures beyond the Reed–Solomon budget and
// Options.MaxRepairRounds allows it, bounded repair rounds re-assign
// the missing nodes' point ranges to survivors and retry — turning
// delivery faults the budget cannot absorb into latency. It returns
// the decoded proof even when verification fails (callers inspect the
// error).
func Run(ctx context.Context, p Problem, opts Options) (*Proof, *Report, error) {
	en, err := newEngine(p, opts)
	if err != nil {
		return nil, nil, fmt.Errorf("core: %s: %w", p.Name(), err)
	}
	// The engine owns the transport for the whole run — gathers in
	// repair-capable runs leave it open between rounds.
	defer en.closeTransport()
	en.pointsLeft.Store(int64(en.e * len(en.primes)))
	en.obs.Geometry(en.e*len(en.primes), en.k)
	prep, err := en.stagePrepare(ctx)
	if err != nil {
		return nil, nil, fmt.Errorf("core: %s: %w", p.Name(), err)
	}
	proof, err := en.stageDecode(ctx, prep)
	for round := 1; err != nil && en.canRepair(err, prep, round); round++ {
		if rerr := en.stageRepair(ctx, prep, round); rerr != nil {
			return nil, nil, fmt.Errorf("core: %s: repair round %d: %w", p.Name(), round, rerr)
		}
		proof, err = en.stageDecode(ctx, prep)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("core: %s: %w", p.Name(), err)
	}
	if err := en.stageVerify(ctx, proof); err != nil {
		return proof, en.report, fmt.Errorf("core: %s: %w", p.Name(), err)
	}
	return proof, en.report, nil
}

// creditPoints reports n newly evaluated (point, prime) units to the
// observer, clamped to the remaining geometry budget. A repair round
// recomputes ranges that round 0 may already have credited (local
// evaluation completes even when the broadcast is lost, and a straggler
// cut loose mid-range credited part of it), so without the clamp a
// healed run would report PointsDone > PointsTotal.
func (en *engine) creditPoints(n int) {
	if n <= 0 {
		return
	}
	for {
		left := en.pointsLeft.Load()
		if left <= 0 {
			return
		}
		take := int64(n)
		if take > left {
			take = left
		}
		if en.pointsLeft.CompareAndSwap(left, left-take) {
			en.obs.PointsDone(int(take))
			return
		}
	}
}

// canRepair decides whether a failed decode is worth another gather
// round: repair must be enabled with rounds left, the failure must be
// the typed beyond-budget refusal (anything else — cancellation, a
// decoder bug — repair cannot fix), and there must be both missing
// nodes to recompute and survivors to recompute them.
func (en *engine) canRepair(err error, prep *prepared, round int) bool {
	if !(round <= en.opts.MaxRepairRounds && en.keepOpen &&
		errors.Is(err, rs.ErrDecodeFailure) && len(prep.missing) > 0) {
		return false
	}
	// Locally, a survivor must exist to sponsor the recompute. Remotely,
	// logical nodes and workers are different populations: even with
	// every logical node missing, any live worker can be re-assigned the
	// ranges (AssignRanges fails if none is).
	return en.remote != nil || len(prep.missing) < en.k
}

// closeTransport ends the transport's world for transports that have
// one to end (sharded relays, a TCP listener). Repair-capable gathers
// run with GatherSpec.KeepOpen, so teardown is the engine's job; for
// everything else this is an idempotent no-op.
func (en *engine) closeTransport() {
	if c, ok := en.tr.(interface{ Close() }); ok {
		c.Close()
	}
}

// runTasks executes indexed tasks on the session pool when one is
// configured (Cluster runs) and on a per-run scheduler otherwise. On
// the pool the run's Priority becomes its scheduling weight, so a
// high-priority tenant's tasks interleave more densely than a default
// run's.
func (en *engine) runTasks(ctx context.Context, n int, task func(id int) error) error {
	if en.opts.Pool != nil {
		return en.opts.Pool.RunWeighted(ctx, n, en.opts.Priority, task)
	}
	return newScheduler(en.opts.MaxParallelism).run(ctx, n, task)
}

// execWidth returns the execution parallelism available to this run —
// the knob that decides whether owned point ranges are worth
// sub-chunking.
func (en *engine) execWidth() int {
	if en.opts.Pool != nil {
		return en.opts.Pool.Width()
	}
	if en.opts.MaxParallelism > 0 {
		return en.opts.MaxParallelism
	}
	return runtime.GOMAXPROCS(0)
}

// prepChunk is one prepare-stage task: a slice of one owned point range
// for one prime. node indexes the round's prepNode slice (which in
// round 0 coincides with the owner's id; in a repair round it is just
// the position among the ranges being repaired).
type prepChunk struct {
	node, prime int
	lo, hi      int
}

// prepNode tracks one node's in-flight message across its chunks.
type prepNode struct {
	msg       NodeShares
	remaining atomic.Int32
	elapsedNS atomic.Int64
}

// prepared is the prepare stage's product: the delivered share
// messages ordered by node id, plus the ids whose broadcasts never
// arrived (their coordinates become Reed–Solomon erasures in the
// decode stage).
type prepared struct {
	shares  []NodeShares
	missing []int
}

// stagePrepare is protocol step 1 (distributed encoded proof
// preparation): every node evaluates its owned block of the codeword for
// every prime and coordinate and broadcasts it as one message over the
// transport; the collector gathers all K messages.
//
// The work unit is a (node, prime, sub-range) chunk rather than a whole
// node: when the pool is wider than the node count — a single-node run
// on a many-core box, say — idle workers take sub-chunks of the same
// node's range, so K bounds the paper's work *split* but never the
// machine's parallelism. Chunk boundaries cannot change results: every
// point is evaluated independently and written to its own slot (and the
// BatchProblem contract requires block results to match point-wise
// evaluation bit for bit).
// In quorum mode (Options.MaxErasures > 0) the gather tolerates
// delivery faults: it returns once K-MaxErasures distinct senders have
// been heard or the grace timer fires, stragglers are cut loose (their
// pending work is cancelled — it could only produce messages the run
// has already given up on), and the missing node ids are passed to the
// decode stage as erasures instead of failing the run.
func (en *engine) stagePrepare(ctx context.Context) (*prepared, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	en.obs.StageStart(StagePrepare)
	en.tr = en.opts.NewTransport(en.k)
	quorumMode := en.opts.MaxErasures > 0
	if quorumMode {
		var ok bool
		if en.quorumTr, ok = en.tr.(QuorumGatherer); !ok {
			return nil, fmt.Errorf("%w: MaxErasures=%d needs one, %T is not",
				ErrQuorumUnsupported, en.opts.MaxErasures, en.tr)
		}
	}
	// Repair rounds re-gather over this same transport instance, so
	// gathers must not tear it down on return.
	en.keepOpen = quorumMode && en.opts.MaxRepairRounds > 0
	// A transport that can assign work to remote workers flips the
	// engine into remote mode: manifests go out instead of local
	// evaluation, and frames stream back through the same gather.
	en.remote, _ = en.tr.(RemoteAssigner)
	spec := GatherSpec{
		K:        en.k,
		Quorum:   en.k - en.opts.MaxErasures,
		Grace:    en.opts.GatherGrace,
		Round:    0,
		KeepOpen: en.keepOpen,
	}
	computeStart := time.Now()
	var msgs []NodeShares
	var err error
	if en.remote != nil {
		specs := make([]AssignSpec, 0, en.k)
		for id := 0; id < en.k; id++ {
			lo, hi := en.assign.Range(id)
			specs = append(specs, AssignSpec{
				Owner: id, Round: 0, Lo: lo, Hi: hi,
				Width: en.w, Primes: en.primes,
			})
		}
		msgs, err = en.runRemoteRound(ctx, specs, spec, quorumMode)
	} else {
		parts := 1
		if w := en.execWidth(); w > en.k {
			parts = (w + en.k - 1) / en.k
		}
		nodes := make([]*prepNode, 0, en.k)
		var chunks []prepChunk
		for id := 0; id < en.k; id++ {
			lo, hi := en.assign.Range(id)
			var st *prepNode
			st, chunks = en.buildShareTasks(len(nodes), id, id, 0, lo, hi, parts, chunks)
			nodes = append(nodes, st)
		}
		msgs, err = en.runRound(ctx, nodes, chunks, spec, quorumMode)
	}
	if err != nil {
		return nil, err
	}
	if quorumMode {
		// A node that reports an in-band failure contributed no shares,
		// which is exactly the delivery-fault axis a quorum run absorbs:
		// drop its report and let its coordinates erase within budget
		// (a duplicate delivery carrying real shares still wins). This
		// also keeps a forged error frame from an untrusted network peer
		// from failing the run — in strict mode it still does, loudly,
		// via collectShares.
		kept := msgs[:0]
		for _, m := range msgs {
			if m.Err != nil && m.ID >= 0 && m.ID < en.k {
				continue
			}
			kept = append(kept, m)
		}
		msgs = kept
	}
	delivered, missing, err := collectShares(msgs, en.k, 0)
	if err != nil {
		return nil, err
	}
	// Shape guard: a message that crossed an untrusted transport (TCP)
	// may claim any geometry the codec's generic bounds allow, and the
	// decoders index shares by the run's. A malformed message must
	// never panic a decoder — it becomes its sender's delivery fault
	// where the run tolerates those, and a typed refusal where it
	// does not.
	valid := delivered[:0]
	var malformed []int
	for _, m := range delivered {
		if en.shareShapeOK(m) {
			valid = append(valid, m)
		} else {
			malformed = append(malformed, m.ID)
		}
	}
	if len(malformed) > 0 {
		if !quorumMode {
			return nil, fmt.Errorf("transport delivered malformed shares from node %d; tolerate delivery faults with MaxErasures", malformed[0])
		}
		delivered = valid
		missing = append(missing, malformed...)
		sort.Ints(missing)
	}
	if len(missing) > 0 && !quorumMode {
		if len(msgs) > len(delivered) {
			// The strict gather counts raw messages, so duplicated
			// deliveries consumed the slots of a sender still in
			// flight — name the real defect, not a phantom loss.
			return nil, fmt.Errorf("transport duplicated deliveries (%d messages from %d senders) while node %d went unheard; tolerate delivery faults with MaxErasures",
				len(msgs), len(delivered), missing[0])
		}
		return nil, fmt.Errorf("transport delivered no message from node %d", missing[0])
	}
	en.report.MissingNodes = missing
	en.obs.DeliveryFaults(len(missing))
	for _, m := range delivered {
		en.report.TotalNodeCompute += m.Elapsed
		if m.Elapsed > en.report.MaxNodeCompute {
			en.report.MaxNodeCompute = m.Elapsed
		}
		if en.remote != nil {
			// Remote evaluation reports no per-chunk progress; credit a
			// range's points (per prime, matching Observer.Geometry's
			// units) when its frame lands.
			en.creditPoints((m.Hi - m.Lo) * len(en.primes))
		}
	}
	en.report.ComputeWall = time.Since(computeStart)
	return &prepared{shares: delivered, missing: missing}, nil
}

// buildShareTasks allocates the in-flight message for one owned point
// range [lo, hi) — owner's id on the message, sponsor as the physical
// sender, round tagging the gather it belongs to — and appends its
// (prime, sub-range) chunk tasks. idx is the message's position in the
// round's prepNode slice (what prepChunk.node indexes).
func (en *engine) buildShareTasks(idx, owner, sponsor, round, lo, hi, parts int, chunks []prepChunk) (*prepNode, []prepChunk) {
	st := &prepNode{msg: NodeShares{
		ID: owner, From: sponsor, Round: round,
		Lo: lo, Hi: hi,
		Vals: make([][][]uint64, len(en.primes)),
	}}
	n := 0
	for pi := range en.primes {
		st.msg.Vals[pi] = make([][]uint64, en.w)
		for c := 0; c < en.w; c++ {
			st.msg.Vals[pi][c] = make([]uint64, hi-lo)
		}
		for _, cut := range cutRange(lo, hi, parts) {
			chunks = append(chunks, prepChunk{node: idx, prime: pi, lo: cut[0], hi: cut[1]})
			n++
		}
	}
	st.remaining.Store(int32(n))
	return st, chunks
}

// runRound drives one send/gather round over the run's transport: the
// worker pool evaluates the chunks, each completed message is broadcast,
// and the collector gathers under spec. Each round gets fresh send and
// gather contexts scoped to this call — cancelling the round's senders
// on return is what abandons its still-pending deliveries (a lossy
// transport's delayed copies, say) so they cannot leak into a later
// round's gather; the round filter in the quorum loop is the second
// line of defense.
func (en *engine) runRound(ctx context.Context, nodes []*prepNode, chunks []prepChunk, spec GatherSpec, quorumMode bool) ([]NodeShares, error) {
	// Failure on either side of the transport must cancel the other:
	// a pool (Send) failure cancels the gather so the collector cannot
	// wait forever on messages that will never arrive, and a gather
	// failure cancels the senders so a bounded transport cannot leave
	// them blocked on a dead collector.
	sendCtx, cancelSend := context.WithCancel(ctx)
	defer cancelSend()
	gatherCtx, cancelGather := context.WithCancel(ctx)
	defer cancelGather()
	poolDone := make(chan error, 1)
	// sendsDone tells a quorum gather that no further Send can occur,
	// so a total-loss network ends in one grace period instead of
	// waiting out the caller's context.
	sendsDone := make(chan struct{})
	spec.SendsDone = sendsDone
	go func() {
		defer close(sendsDone)
		err := en.runTasks(sendCtx, len(chunks), func(ti int) error {
			chk := chunks[ti]
			st := nodes[chk.node]
			start := time.Now()
			err := evaluateRangeInto(sendCtx, en.planner, en.primes[chk.prime], chk.lo, chk.hi, en.w,
				st.msg.Vals[chk.prime], st.msg.Lo, en.opts.BlockSize)
			st.elapsedNS.Add(int64(time.Since(start)))
			if err != nil {
				return fmt.Errorf("node %d: %w", st.msg.Origin(), err)
			}
			en.creditPoints(chk.hi - chk.lo)
			if st.remaining.Add(-1) == 0 {
				// Last chunk of this message: it is complete (every
				// other chunk's write happened-before the counter
				// reached zero), broadcast it.
				st.msg.Elapsed = time.Duration(st.elapsedNS.Load())
				return en.tr.Send(sendCtx, st.msg)
			}
			return nil
		})
		if err == nil {
			// A transport may still hold accepted deliveries in flight
			// (injected delays): conclude them before announcing
			// SendsDone, and surface an asynchronous delivery failure
			// exactly as a Send returning it would have. The drain
			// covers this round's sends — repair rounds included —
			// because it runs inside every round.
			if d, ok := en.tr.(SendDrainer); ok {
				err = d.DrainSends(sendCtx)
			}
		}
		if err != nil {
			cancelGather()
		}
		poolDone <- err
	}()
	var msgs []NodeShares
	var gatherErr error
	if quorumMode {
		msgs, gatherErr = en.quorumTr.GatherQuorum(gatherCtx, spec)
	} else {
		msgs, gatherErr = en.tr.Gather(gatherCtx, spec.K)
	}
	// Either outcome ends the round's senders: after a failure the
	// cancellation frees workers stuck on a dead collector; after a
	// success any straggler still computing or sending is cut loose
	// (strict gathers have heard every node by now, quorum gathers have
	// decided to erase the rest).
	cancelSend()
	poolErr := <-poolDone
	// Prefer the root cause over the cancellation it triggered on the
	// other side.
	if poolErr != nil && !errors.Is(poolErr, context.Canceled) {
		return nil, poolErr
	}
	if gatherErr != nil {
		return nil, gatherErr
	}
	return msgs, nil
}

// runRemoteRound drives one assign/gather round in remote mode: the
// transport ships each spec's manifest to a live worker and the
// collector gathers the frames streamed back. GatherSpec.SendsDone
// stays nil — the engine cannot see when remote workers finish sending,
// so a quorum gather's deadline discipline rests on the grace timer
// armed by arrivals; the coordinator turns worker faults into in-band
// Err frames, which are arrivals too, so a dying cluster still
// converges instead of waiting out ctx.
func (en *engine) runRemoteRound(ctx context.Context, specs []AssignSpec, spec GatherSpec, quorumMode bool) ([]NodeShares, error) {
	if err := en.remote.AssignRanges(ctx, specs); err != nil {
		return nil, err
	}
	if quorumMode {
		return en.quorumTr.GatherQuorum(ctx, spec)
	}
	return en.tr.Gather(ctx, spec.K)
}

// stageRepair is the self-healing gather: the decode stage has refused
// (erasures beyond the Reed–Solomon budget), but the missing nodes'
// point ranges are known, survivors are idle, and evaluation is
// deterministic in (q, x0) — so a survivor recomputes exactly the
// values the dead node would have sent, bit for bit. Each missing
// range becomes one message carrying the dead owner's id (what the
// decoders index by) sent by a sponsoring survivor (what the
// transport's link faults attach to), sponsors rotating across rounds
// so a round-robin neighbor with its own bad link does not doom every
// retry. Recovered messages join prep.shares; whatever is still
// missing stays erased for the decode retry to judge against the
// budget.
func (en *engine) stageRepair(ctx context.Context, prep *prepared, round int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	still := make(map[int]bool, len(prep.missing))
	for _, id := range prep.missing {
		still[id] = true
	}
	en.obs.RepairRound(round, append([]int(nil), prep.missing...))
	repairStart := time.Now()
	spec := GatherSpec{
		K: en.k,
		// The round is complete when every re-assigned range has been
		// heard; the grace timer hands over a partial round (the decode
		// retry then judges what is still missing against the budget).
		Quorum:   len(prep.missing),
		Grace:    en.opts.GatherGrace,
		Round:    round,
		KeepOpen: true,
	}
	var msgs []NodeShares
	var err error
	if en.remote != nil {
		// Remotely there is no sponsor rotation to run here: the
		// coordinator re-routes each missing range to whichever worker
		// is live, which is the whole point of separating logical nodes
		// from physical workers.
		specs := make([]AssignSpec, 0, len(prep.missing))
		for _, id := range prep.missing {
			lo, hi := en.assign.Range(id)
			specs = append(specs, AssignSpec{
				Owner: id, Round: round, Lo: lo, Hi: hi,
				Width: en.w, Primes: en.primes,
			})
		}
		msgs, err = en.runRemoteRound(ctx, specs, spec, true)
	} else {
		survivors := make([]int, 0, en.k-len(prep.missing))
		for id := 0; id < en.k; id++ {
			if !still[id] {
				survivors = append(survivors, id)
			}
		}
		if len(survivors) == 0 {
			// canRepair refuses this; keep the invariant locally too.
			return fmt.Errorf("no surviving nodes to repair %d missing ranges", len(prep.missing))
		}
		parts := 1
		if w := en.execWidth(); w > len(prep.missing) {
			parts = (w + len(prep.missing) - 1) / len(prep.missing)
		}
		nodes := make([]*prepNode, 0, len(prep.missing))
		var chunks []prepChunk
		for i, id := range prep.missing {
			sponsor := survivors[(i+round-1)%len(survivors)]
			lo, hi := en.assign.Range(id)
			var st *prepNode
			st, chunks = en.buildShareTasks(len(nodes), id, sponsor, round, lo, hi, parts, chunks)
			nodes = append(nodes, st)
		}
		msgs, err = en.runRound(ctx, nodes, chunks, spec, true)
	}
	if err != nil {
		return err
	}
	// Merge under the same quorum-mode rules as round 0: in-band Err
	// messages are their sender's delivery fault, duplicates dedup by
	// (node, round), and a message must both belong to a range this
	// round re-assigned and match the run geometry to count.
	kept := msgs[:0]
	for _, m := range msgs {
		if m.Err != nil && m.ID >= 0 && m.ID < en.k {
			continue
		}
		kept = append(kept, m)
	}
	delivered, _, err := collectShares(kept, en.k, round)
	if err != nil {
		return err
	}
	var repaired []int
	for _, m := range delivered {
		if !still[m.ID] || !en.shareShapeOK(m) {
			continue
		}
		still[m.ID] = false
		prep.shares = append(prep.shares, m)
		repaired = append(repaired, m.ID)
		en.report.TotalNodeCompute += m.Elapsed
		if m.Elapsed > en.report.MaxNodeCompute {
			en.report.MaxNodeCompute = m.Elapsed
		}
		if en.remote != nil {
			en.creditPoints((m.Hi - m.Lo) * len(en.primes))
		}
	}
	remaining := prep.missing[:0]
	for _, id := range prep.missing {
		if still[id] {
			remaining = append(remaining, id)
		}
	}
	prep.missing = remaining
	en.report.MissingNodes = append([]int(nil), remaining...)
	en.report.RepairedNodes = append(en.report.RepairedNodes, repaired...)
	sort.Ints(en.report.RepairedNodes)
	en.report.RepairRounds = round
	en.report.ComputeWall += time.Since(repairStart)
	return nil
}

// shareShapeOK reports whether a delivered message's claimed geometry
// matches what this run assigned its sender — the precondition every
// decoder's indexing relies on.
func (en *engine) shareShapeOK(m NodeShares) bool {
	lo, hi := en.assign.Range(m.ID)
	if m.Lo != lo || m.Hi != hi || len(m.Vals) != len(en.primes) {
		return false
	}
	for _, coords := range m.Vals {
		if len(coords) != en.w {
			return false
		}
		for _, vals := range coords {
			if len(vals) != hi-lo {
				return false
			}
		}
	}
	return true
}

// erasedPoints expands missing node ids into the evaluation-point
// indices they owned — the erasure set every decoder passes to the
// Reed–Solomon decoder.
func (en *engine) erasedPoints(missing []int) []int {
	var out []int
	for _, id := range missing {
		lo, hi := en.assign.Range(id)
		for x := lo; x < hi; x++ {
			out = append(out, x)
		}
	}
	return out
}

// cutRange splits [lo, hi) into at most parts non-empty, contiguous,
// near-equal pieces, in order.
func cutRange(lo, hi, parts int) [][2]int {
	n := hi - lo
	if n <= 0 {
		return nil
	}
	if parts > n {
		parts = n
	}
	if parts <= 1 {
		return [][2]int{{lo, hi}}
	}
	out := make([][2]int, 0, parts)
	for i := 0; i < parts; i++ {
		a := lo + i*n/parts
		b := lo + (i+1)*n/parts
		if a < b {
			out = append(out, [2]int{a, b})
		}
	}
	return out
}

// stageDecode is protocol step 2 (error correction during preparation):
// every honest node assembles its own received word — the adversary may
// equivocate per recipient — decodes it independently on the worker
// pool, and the decoded proofs are checked for agreement. Nodes whose
// broadcasts the transport lost contribute no symbols: their
// coordinates are decoded as erasures, which cost half an error each in
// the Reed–Solomon budget and are never counted as suspects.
func (en *engine) stageDecode(ctx context.Context, prep *prepared) (*Proof, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	en.obs.StageStart(StageDecode)
	honest := honestNodes(en.k, en.opts.Adversary)
	if len(honest) == 0 {
		return nil, ErrNoHonestNodes
	}
	decoders := honest
	if en.opts.DecodingNodes > 0 && en.opts.DecodingNodes < len(decoders) {
		decoders = decoders[:en.opts.DecodingNodes]
	}
	// One erasure plan per prime, shared read-only by every decoder:
	// the erasure set is a property of the gather, not of any received
	// word, and the plan's root-product precomputation is quadratic in
	// the codeword length. An undecodable erasure set fails here.
	erased := en.erasedPoints(prep.missing)
	plans := make([]*rs.ErasurePlan, len(en.codes))
	for pi, code := range en.codes {
		plan, err := code.ErasurePlan(erased)
		if err != nil {
			return nil, fmt.Errorf("prime %d: %w", en.primes[pi], err)
		}
		plans[pi] = plan
	}

	decodeStart := time.Now()
	results := make([]*decodeResult, len(decoders))
	// Suspects merge incrementally as decoders finish so Status() can
	// report a live count mid-stage.
	var mu sync.Mutex
	suspects := map[int]bool{}
	err := en.runTasks(ctx, len(decoders), func(di int) error {
		recipient := decoders[di]
		res, err := decodeAsNode(ctx, recipient, en.primes, plans, prep.shares, en.assign, en.opts.Adversary, en.w, en.e)
		if err != nil {
			return fmt.Errorf("node %d decoding: %w", recipient, err)
		}
		results[di] = res
		mu.Lock()
		for nid := range res.suspects {
			suspects[nid] = true
		}
		n := len(suspects)
		mu.Unlock()
		en.obs.SuspectsFound(n)
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Accumulate: a repair-capable run decodes once per round, and the
	// report's decode wall is the run's total.
	en.report.DecodeWall += time.Since(decodeStart)

	// Agreement: all decoders must have recovered the same proof.
	first := results[0]
	for _, res := range results[1:] {
		if !first.sameProof(res) {
			return nil, ErrProofDisagreement
		}
	}
	for _, res := range results {
		if res.maxErrors > en.report.CorruptedShares {
			en.report.CorruptedShares = res.maxErrors
		}
	}
	en.report.SuspectNodes = sortedKeys(suspects)

	proof := &Proof{
		Primes: en.primes,
		Degree: en.d,
		Width:  en.w,
		Points: rs.ConsecutivePoints(en.e),
		Coeffs: first.coeffs,
		Evals:  first.evals,
	}
	en.report.ProofSymbols = proof.Size()
	return proof, nil
}

// stageVerify is protocol step 3 (independent verification): the
// randomized spot check of the decoded proof against the input.
func (en *engine) stageVerify(ctx context.Context, proof *Proof) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	en.obs.StageStart(StageVerify)
	verifyStart := time.Now()
	ok, err := verifyProof(ctx, en.p, proof, en.opts.VerifyTrials, en.opts.Seed)
	if err != nil {
		return fmt.Errorf("verification: %w", err)
	}
	en.report.VerifyPerTrial = time.Since(verifyStart) / time.Duration(en.opts.VerifyTrials)
	en.report.Verified = ok
	if !ok {
		return ErrVerificationFailed
	}
	return nil
}
