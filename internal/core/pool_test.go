package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolBoundsParallelism(t *testing.T) {
	const width, tasks = 3, 24
	p := NewPool(width)
	defer p.Close()
	var cur, peak atomic.Int64
	err := p.Run(context.Background(), tasks, func(int) error {
		c := cur.Add(1)
		for {
			pk := peak.Load()
			if c <= pk || peak.CompareAndSwap(pk, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > width {
		t.Fatalf("observed %d concurrent tasks, pool width is %d", got, width)
	}
}

func TestPoolRunsEveryTaskExactlyOnce(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const tasks = 200
	counts := make([]atomic.Int32, tasks)
	if err := p.Run(context.Background(), tasks, func(id int) error {
		counts[id].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for id := range counts {
		if n := counts[id].Load(); n != 1 {
			t.Fatalf("task %d ran %d times", id, n)
		}
	}
}

func TestPoolInterleavesConcurrentRuns(t *testing.T) {
	// A width-1 pool given two task sets must alternate between them
	// (round-robin), not drain the first before touching the second.
	p := NewPool(1)
	defer p.Close()
	var order []int
	var mu sync.Mutex
	record := func(run int) func(int) error {
		return func(int) error {
			mu.Lock()
			order = append(order, run)
			mu.Unlock()
			return nil
		}
	}
	// Block the worker until both runs are registered so the schedule
	// is deterministic.
	gate := make(chan struct{})
	started := make(chan struct{})
	go p.Run(context.Background(), 1, func(int) error {
		close(started)
		<-gate
		return nil
	})
	<-started
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = p.Run(context.Background(), 3, record(i))
		}(i)
	}
	// Give both Run calls time to register their queues, then release.
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	// Exact interleaving 0,1,0,1,... or 1,0,1,0,...: round-robin with
	// one task claimed per turn.
	if len(order) != 6 {
		t.Fatalf("ran %d tasks, want 6", len(order))
	}
	for i := 2; i < len(order); i++ {
		if order[i] != order[i-2] {
			t.Fatalf("schedule %v is not round-robin", order)
		}
	}
	if order[0] == order[1] {
		t.Fatalf("schedule %v lets one run hog the worker", order)
	}
}

func TestPoolFirstErrorStopsRun(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	boom := errors.New("boom")
	var ran atomic.Int64
	err := p.Run(context.Background(), 100, func(id int) error {
		ran.Add(1)
		if id == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := ran.Load(); n > 4 {
		t.Fatalf("pool kept scheduling this run after its error: %d tasks ran", n)
	}
}

func TestPoolErrorInOneRunDoesNotAffectOthers(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	boom := errors.New("boom")
	var wg sync.WaitGroup
	var okErr, badErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		badErr = p.Run(context.Background(), 50, func(id int) error {
			if id == 0 {
				return boom
			}
			return nil
		})
	}()
	go func() {
		defer wg.Done()
		okErr = p.Run(context.Background(), 50, func(id int) error {
			time.Sleep(100 * time.Microsecond)
			return nil
		})
	}()
	wg.Wait()
	if !errors.Is(badErr, boom) {
		t.Fatalf("failing run returned %v, want boom", badErr)
	}
	if okErr != nil {
		t.Fatalf("healthy run returned %v, want nil", okErr)
	}
}

func TestPoolRunAfterCloseFails(t *testing.T) {
	p := NewPool(1)
	p.Close()
	if err := p.Run(context.Background(), 1, func(int) error { return nil }); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("err = %v, want ErrPoolClosed", err)
	}
}

func TestPoolCloseDrainsInFlightRun(t *testing.T) {
	p := NewPool(2)
	var done atomic.Int64
	runDone := make(chan error, 1)
	started := make(chan struct{})
	var once sync.Once
	go func() {
		runDone <- p.Run(context.Background(), 10, func(int) error {
			once.Do(func() { close(started) })
			time.Sleep(2 * time.Millisecond)
			done.Add(1)
			return nil
		})
	}()
	<-started
	p.Close() // must block until all 10 tasks completed
	if n := done.Load(); n != 10 {
		t.Fatalf("Close returned with %d/10 tasks done", n)
	}
	if err := <-runDone; err != nil {
		t.Fatal(err)
	}
}

func TestPoolRunHonorsCancellation(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := p.Run(ctx, 1000, func(int) error {
		ran.Add(1)
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancelled Run took %v", elapsed)
	}
	if n := ran.Load(); n >= 1000 {
		t.Fatal("cancellation did not withdraw unclaimed tasks")
	}
}

func TestRunWithPoolMatchesScheduler(t *testing.T) {
	p := testProblem()
	plain, _, err := Run(context.Background(), p, Options{Nodes: 3, FaultTolerance: 2})
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(4)
	defer pool.Close()
	pooled, _, err := Run(context.Background(), p, Options{Nodes: 3, FaultTolerance: 2, Pool: pool, Geometry: NewGeometryCache()})
	if err != nil {
		t.Fatal(err)
	}
	q := plain.Primes[0]
	for w := range plain.Coeffs[q] {
		for j := range plain.Coeffs[q][w] {
			if plain.Coeffs[q][w][j] != pooled.Coeffs[q][w][j] {
				t.Fatal("shared pool + geometry cache changed the proof")
			}
		}
	}
}

func TestGeometryCacheReusesCodesAndPrimes(t *testing.T) {
	gc := NewGeometryCache()
	p1, err := gc.choosePrimes(2, 1<<20, 8)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := gc.choosePrimes(2, 1<<20, 8)
	if err != nil {
		t.Fatal(err)
	}
	if &p1[0] != &p2[0] {
		t.Fatal("prime selection not cached")
	}
	direct, err := ChoosePrimes(2, 1<<20, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct {
		if p1[i] != direct[i] {
			t.Fatal("cached primes differ from direct selection")
		}
	}
	c1, err := gc.code(p1[0], 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := gc.code(p1[0], 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("code not cached")
	}
	if c3, err := gc.code(p1[0], 16, 8); err != nil || c3 == c1 {
		t.Fatalf("distinct geometry must build a distinct code (err=%v)", err)
	}
	// Nil cache falls through to direct computation.
	var nilGC *GeometryCache
	if _, err := nilGC.choosePrimes(1, 1<<20, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := nilGC.code(p1[0], 16, 7); err != nil {
		t.Fatal(err)
	}
}

// chunkObserver records observer callbacks for the progress tests.
type chunkObserver struct {
	mu       sync.Mutex
	stages   []Stage
	points   atomic.Int64
	total    atomic.Int64
	suspects atomic.Int64
}

func (o *chunkObserver) Geometry(points, nodes int) { o.total.Store(int64(points)) }
func (o *chunkObserver) StageStart(s Stage) {
	o.mu.Lock()
	o.stages = append(o.stages, s)
	o.mu.Unlock()
}
func (o *chunkObserver) PointsDone(d int)       { o.points.Add(int64(d)) }
func (o *chunkObserver) SuspectsFound(n int)    { o.suspects.Store(int64(n)) }
func (o *chunkObserver) DeliveryFaults(n int)   {}
func (o *chunkObserver) RepairRound(int, []int) {}

func TestObserverSeesStagesAndFullProgress(t *testing.T) {
	obs := &chunkObserver{}
	p := testProblem()
	_, rep, err := Run(context.Background(), p, Options{Nodes: 2, FaultTolerance: 1, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	want := rep.CodeLength * len(rep.Primes)
	if got := obs.points.Load(); got != int64(want) {
		t.Fatalf("observer saw %d evaluation units, want %d", got, want)
	}
	if got := obs.total.Load(); got != int64(want) {
		t.Fatalf("Geometry announced %d units, want %d", got, want)
	}
	obs.mu.Lock()
	stages := append([]Stage(nil), obs.stages...)
	obs.mu.Unlock()
	if len(stages) != 3 || stages[0] != StagePrepare || stages[1] != StageDecode || stages[2] != StageVerify {
		t.Fatalf("stage sequence %v, want [prepare decode verify]", stages)
	}
}

func TestObserverSeesSuspects(t *testing.T) {
	obs := &chunkObserver{}
	p := testProblem()
	// Plenty of fault tolerance so one lying node is corrected.
	_, rep, err := Run(context.Background(), p, Options{
		Nodes: 4, FaultTolerance: 4, Adversary: NewLyingNodes(3, 1), Observer: obs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.SuspectNodes) == 0 {
		t.Fatal("test needs a run that identifies suspects")
	}
	if got := obs.suspects.Load(); got != int64(len(rep.SuspectNodes)) {
		t.Fatalf("observer saw %d suspects, report has %d", got, len(rep.SuspectNodes))
	}
}

func TestSingleNodeRunUsesSubChunks(t *testing.T) {
	// Satellite: with K=1 and a wide pool, the owned range must be split
	// into sub-chunks (so idle workers can help) with bit-identical
	// results.
	p := testProblem()
	serial, _, err := Run(context.Background(), p, Options{Nodes: 1, FaultTolerance: 3, MaxParallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Concurrency proof: wrap the problem to track concurrent Evaluate
	// calls while a wide pool splits the single node's range.
	var cur, peak atomic.Int64
	tracked := &concurrencyTrackedProblem{Problem: p, cur: &cur, peak: &peak}
	wide, _, err := Run(context.Background(), tracked, Options{Nodes: 1, FaultTolerance: 3, MaxParallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	q := serial.Primes[0]
	for w := range serial.Coeffs[q] {
		for j := range serial.Coeffs[q][w] {
			if serial.Coeffs[q][w][j] != wide.Coeffs[q][w][j] {
				t.Fatal("sub-chunked single-node run changed the proof")
			}
		}
	}
	if peak.Load() < 2 {
		t.Fatalf("single-node run never evaluated concurrently (peak %d) despite pool width 8", peak.Load())
	}
}

// concurrencyTrackedProblem counts concurrent Evaluate calls.
type concurrencyTrackedProblem struct {
	Problem
	cur, peak *atomic.Int64
}

func (p *concurrencyTrackedProblem) Evaluate(q, x0 uint64) ([]uint64, error) {
	c := p.cur.Add(1)
	for {
		pk := p.peak.Load()
		if c <= pk || p.peak.CompareAndSwap(pk, c) {
			break
		}
	}
	time.Sleep(50 * time.Microsecond)
	defer p.cur.Add(-1)
	return p.Problem.Evaluate(q, x0)
}

// TestPoolRunCompletedSurvivesLateCancel pins Pool.Run's verdict when
// the context is cancelled after every task has been claimed and all
// of them complete successfully: the task set completed, so the caller
// must see success, not the unrelated cancellation. Pre-fix, Run fell
// through to ctx.Err() (and its cancel branch poisoned even a finished
// run's error), turning a fully completed run into a spurious failure.
func TestPoolRunCompletedSurvivesLateCancel(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()

	// Deterministic interleaving: both tasks are claimed and report in,
	// then the context is cancelled while they are still in flight, then
	// they return nil. Run must wait them out and report success.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var entered atomic.Int64
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- pool.Run(ctx, 2, func(id int) error {
			entered.Add(1)
			<-release
			return nil
		})
	}()
	for entered.Load() < 2 {
		runtime.Gosched()
	}
	cancel()
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("completed run reported %v, want nil", err)
	}

	// And the pure timing race, many times: cancellation arriving at
	// (or just after) the moment the last task finishes must never
	// fabricate a failure.
	for i := 0; i < 200; i++ {
		raceCtx, raceCancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		raceDone := make(chan error, 1)
		go func() {
			raceDone <- pool.Run(raceCtx, 4, func(id int) error {
				ran.Add(1)
				return nil
			})
		}()
		for ran.Load() < 4 {
			runtime.Gosched()
		}
		raceCancel()
		if err := <-raceDone; err != nil {
			t.Fatalf("iteration %d: completed run reported %v (ran %d/4 tasks)", i, err, ran.Load())
		}
	}
}

// TestPoolWeightedRunGetsLargerShare pins the weight-aware round-robin:
// with every worker claim serialized through a width-1 pool, a weight-3
// run's tasks must interleave ~3x as densely as a concurrent weight-1
// run's, and the weight-1 run must still finish (no starvation).
func TestPoolWeightedRunGetsLargerShare(t *testing.T) {
	pool := NewPool(1)
	defer pool.Close()

	// Seed both runs before the single worker starts claiming: a gate
	// task submitted first holds the worker until both task sets are
	// queued, so the claim order afterwards is purely the scheduler's.
	gate := make(chan struct{})
	gateEntered := make(chan struct{})
	gateDone := make(chan error, 1)
	go func() {
		gateDone <- pool.Run(context.Background(), 1, func(int) error {
			close(gateEntered)
			<-gate
			return nil
		})
	}()
	// The worker must be inside the gate task before the contenders are
	// submitted, or it could drain one of them while the other queues.
	<-gateEntered

	const n = 12
	var mu sync.Mutex
	var order []string
	record := func(tag string) func(int) error {
		return func(int) error {
			mu.Lock()
			order = append(order, tag)
			mu.Unlock()
			return nil
		}
	}
	heavyDone := make(chan error, 1)
	lightDone := make(chan error, 1)
	go func() { heavyDone <- pool.RunWeighted(context.Background(), n, 3, record("heavy")) }()
	go func() { lightDone <- pool.Run(context.Background(), n, record("light")) }()

	// Wait until both runs are queued behind the gate, then open it.
	for {
		pool.mu.Lock()
		queued := len(pool.runs)
		pool.mu.Unlock()
		if queued == 3 {
			break
		}
		runtime.Gosched()
	}
	close(gate)
	if err := <-gateDone; err != nil {
		t.Fatal(err)
	}
	if err := <-heavyDone; err != nil {
		t.Fatal(err)
	}
	if err := <-lightDone; err != nil {
		t.Fatal(err)
	}

	// In the window before either run drains, heavy should have claimed
	// ~3 tasks per light task. Look at the prefix where both runs still
	// had work: the first 12 claims hold 3:1 cycles (3 heavy + 1 light).
	heavyFirst8 := 0
	for _, tag := range order[:8] {
		if tag == "heavy" {
			heavyFirst8++
		}
	}
	if heavyFirst8 < 5 {
		t.Fatalf("weight-3 run claimed %d of the first 8 serialized slots, want >= 5 (order %v)", heavyFirst8, order)
	}
	if len(order) != 2*n {
		t.Fatalf("ran %d tasks, want %d", len(order), 2*n)
	}
}
