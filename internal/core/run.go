package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"camelot/internal/ff"
	"camelot/internal/poly"
	"camelot/internal/rs"
)

// Report records what a Camelot run did: sizing, timing, adversary
// damage, and verification outcome. All durations are wall-clock per
// phase; MaxNodeCompute approximates the paper's per-node time E and
// TotalNodeCompute the total work EK.
type Report struct {
	// Problem is the Problem.Name of the run.
	Problem string
	// Nodes is K, the number of compute nodes.
	Nodes int
	// Width, Degree, CodeLength, FaultTolerance echo the run geometry
	// (CodeLength is e = Degree+1+2·FaultTolerance).
	Width, Degree, CodeLength, FaultTolerance int
	// Primes are the proof moduli.
	Primes []uint64
	// ProofSymbols is the total proof size in field symbols.
	ProofSymbols int
	// ByzantineNodes are the adversary-controlled node ids.
	ByzantineNodes []int
	// SuspectNodes are the nodes the honest decoders identified as having
	// contributed corrupted shares (union across decoders).
	SuspectNodes []int
	// CorruptedShares is the largest number of error locations any single
	// decoder observed (per prime and coordinate, maximized).
	CorruptedShares int
	// ComputeWall is the wall-clock duration of the distributed
	// evaluation phase.
	ComputeWall time.Duration
	// MaxNodeCompute is the largest single node's evaluation time (≈ E).
	MaxNodeCompute time.Duration
	// TotalNodeCompute is the summed evaluation time of all nodes (≈ EK).
	TotalNodeCompute time.Duration
	// DecodeWall is the wall-clock duration of the decode phase.
	DecodeWall time.Duration
	// VerifyPerTrial is the average duration of one verification trial.
	VerifyPerTrial time.Duration
	// VerifyTrials is the number of spot checks performed.
	VerifyTrials int
	// Verified reports whether every trial accepted.
	Verified bool
}

// nodeShares is the single broadcast message a node contributes: its
// evaluations for every prime, coordinate, and owned point.
type nodeShares struct {
	id      int
	lo, hi  int           // owned point-index range
	vals    [][][]uint64  // [prime][coord][point-lo]
	elapsed time.Duration // evaluation time
	err     error
}

// Run executes the full Camelot protocol for the problem: distributed
// proof preparation on opts.Nodes goroutine nodes, per-node Gao decoding
// with failed-node identification, cross-node agreement check, and
// randomized verification. It returns the decoded proof even when
// verification fails (callers inspect the error).
func Run(ctx context.Context, p Problem, opts Options) (*Proof, *Report, error) {
	opts = opts.withDefaults()
	d := p.Degree()
	w := p.Width()
	if w <= 0 || d < 0 {
		return nil, nil, fmt.Errorf("core: %s: invalid geometry width=%d degree=%d", p.Name(), w, d)
	}
	e := d + 1 + 2*opts.FaultTolerance
	k := opts.Nodes
	if k > e {
		k = e // more nodes than points is pointless; trailing nodes would idle
	}
	minQ := p.MinModulus()
	if minQ < uint64(e)+1 {
		minQ = uint64(e) + 1
	}
	order := 1
	for order < 2*e {
		order <<= 1
	}
	primes, err := ChoosePrimes(p.NumPrimes(), minQ, order)
	if err != nil {
		return nil, nil, fmt.Errorf("core: %s: %w", p.Name(), err)
	}

	report := &Report{
		Problem:        p.Name(),
		Nodes:          k,
		Width:          w,
		Degree:         d,
		CodeLength:     e,
		FaultTolerance: opts.FaultTolerance,
		Primes:         primes,
		ByzantineNodes: append([]int(nil), opts.Adversary.CorruptNodes()...),
		VerifyTrials:   opts.VerifyTrials,
	}

	// Phase 1: distributed evaluation. Each node computes its block of
	// the codeword for every prime and coordinate and "broadcasts" it as
	// one message. Goroutine lifetimes are bounded by the WaitGroup; a
	// context cancellation is observed between evaluations.
	assign := NewPointAssignment(e, k)
	msgs := make(chan nodeShares, k)
	var wg sync.WaitGroup
	computeStart := time.Now()
	for id := 0; id < k; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			lo, hi := assign.Range(id)
			m := nodeShares{id: id, lo: lo, hi: hi, vals: make([][][]uint64, len(primes))}
			start := time.Now()
			for pi, q := range primes {
				m.vals[pi] = make([][]uint64, w)
				for c := range m.vals[pi] {
					m.vals[pi][c] = make([]uint64, hi-lo)
				}
				for x := lo; x < hi; x++ {
					if err := ctx.Err(); err != nil {
						m.err = err
						msgs <- m
						return
					}
					vec, err := p.Evaluate(q, uint64(x))
					if err != nil {
						m.err = fmt.Errorf("node %d evaluating P(%d) mod %d: %w", id, x, q, err)
						msgs <- m
						return
					}
					if len(vec) != w {
						m.err = fmt.Errorf("node %d: Evaluate returned %d coords, want %d", id, len(vec), w)
						msgs <- m
						return
					}
					for c, v := range vec {
						m.vals[pi][c][x-lo] = v % q
					}
				}
			}
			m.elapsed = time.Since(start)
			msgs <- m
		}(id)
	}
	wg.Wait()
	close(msgs)

	all := make([]nodeShares, k)
	for m := range msgs {
		if m.err != nil {
			return nil, nil, fmt.Errorf("core: %s: %w", p.Name(), m.err)
		}
		all[m.id] = m
		report.TotalNodeCompute += m.elapsed
		if m.elapsed > report.MaxNodeCompute {
			report.MaxNodeCompute = m.elapsed
		}
	}
	report.ComputeWall = time.Since(computeStart)

	// Phase 2: every honest node assembles its own received word (the
	// adversary may equivocate per recipient) and decodes independently.
	honest := honestNodes(k, opts.Adversary)
	if len(honest) == 0 {
		return nil, nil, fmt.Errorf("core: %s: %w", p.Name(), ErrNoHonestNodes)
	}
	decoders := honest
	if opts.DecodingNodes > 0 && opts.DecodingNodes < len(decoders) {
		decoders = decoders[:opts.DecodingNodes]
	}

	codes := make([]*rs.Code, len(primes))
	for pi, q := range primes {
		ring := poly.NewRing(ff.Field{Q: q})
		code, err := rs.New(ring, rs.ConsecutivePoints(e), d)
		if err != nil {
			return nil, nil, fmt.Errorf("core: %s: building code mod %d: %w", p.Name(), q, err)
		}
		codes[pi] = code
	}

	decodeStart := time.Now()
	results := make([]*decodeResult, len(decoders))
	errs := make(chan error, len(decoders))
	var dwg sync.WaitGroup
	for di, recipient := range decoders {
		dwg.Add(1)
		go func(di, recipient int) {
			defer dwg.Done()
			res, err := decodeAsNode(recipient, p, primes, codes, all, assign, opts.Adversary, w, e)
			if err != nil {
				errs <- fmt.Errorf("node %d decoding: %w", recipient, err)
				return
			}
			results[di] = res
		}(di, recipient)
	}
	dwg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return nil, nil, fmt.Errorf("core: %s: %w", p.Name(), err)
	}
	report.DecodeWall = time.Since(decodeStart)

	// Agreement: all decoders must have recovered the same proof.
	first := results[0]
	for _, res := range results[1:] {
		if !first.sameProof(res) {
			return nil, nil, fmt.Errorf("core: %s: %w", p.Name(), ErrProofDisagreement)
		}
	}
	suspects := map[int]bool{}
	for _, res := range results {
		for nid := range res.suspects {
			suspects[nid] = true
		}
		if res.maxErrors > report.CorruptedShares {
			report.CorruptedShares = res.maxErrors
		}
	}
	report.SuspectNodes = sortedKeys(suspects)

	proof := &Proof{
		Primes: primes,
		Degree: d,
		Width:  w,
		Points: rs.ConsecutivePoints(e),
		Coeffs: first.coeffs,
		Evals:  first.evals,
	}
	report.ProofSymbols = proof.Size()

	// Phase 3: randomized verification against the input (paper eq. (2)).
	verifyStart := time.Now()
	ok, err := VerifyProof(p, proof, opts.VerifyTrials, opts.Seed)
	if err != nil {
		return proof, report, fmt.Errorf("core: %s: verification: %w", p.Name(), err)
	}
	report.VerifyPerTrial = time.Since(verifyStart) / time.Duration(opts.VerifyTrials)
	report.Verified = ok
	if !ok {
		return proof, report, fmt.Errorf("core: %s: %w", p.Name(), ErrVerificationFailed)
	}
	return proof, report, nil
}

type decodeResult struct {
	coeffs    map[uint64][][]uint64
	evals     map[uint64][][]uint64
	suspects  map[int]bool
	maxErrors int
}

func (a *decodeResult) sameProof(b *decodeResult) bool {
	for q, ac := range a.coeffs {
		bc, ok := b.coeffs[q]
		if !ok || len(ac) != len(bc) {
			return false
		}
		for w := range ac {
			if !poly.Equal(ac[w], bc[w]) {
				return false
			}
		}
	}
	return true
}

// decodeAsNode assembles the word the recipient received — shares from
// each sender pass through the adversary — and runs the Gao decoder for
// every prime and coordinate.
func decodeAsNode(recipient int, p Problem, primes []uint64, codes []*rs.Code,
	all []nodeShares, assign PointAssignment, adv Adversary, w, e int) (*decodeResult, error) {
	res := &decodeResult{
		coeffs:   make(map[uint64][][]uint64, len(primes)),
		evals:    make(map[uint64][][]uint64, len(primes)),
		suspects: make(map[int]bool),
	}
	word := make([]uint64, e)
	for pi, q := range primes {
		res.coeffs[q] = make([][]uint64, w)
		res.evals[q] = make([][]uint64, w)
		for c := 0; c < w; c++ {
			for _, sender := range all {
				for x := sender.lo; x < sender.hi; x++ {
					v, delivered := adv.Transform(sender.id, recipient, q, c, x, sender.vals[pi][c][x-sender.lo])
					if !delivered {
						v = 0 // missing share: decoder sees it as a (probable) error symbol
					}
					word[x] = v
				}
			}
			msg, corrected, locs, err := codes[pi].Decode(word)
			if err != nil {
				return nil, fmt.Errorf("prime %d coord %d: %w", q, c, err)
			}
			res.coeffs[q][c] = msg
			res.evals[q][c] = corrected
			for _, loc := range locs {
				res.suspects[assign.Owner(loc)] = true
			}
			if len(locs) > res.maxErrors {
				res.maxErrors = len(locs)
			}
		}
	}
	return res, nil
}

// VerifyProof runs the paper's randomized check (eq. (2)): for each of
// trials rounds and each modulus it draws a uniform x0 and compares one
// fresh evaluation of P(x0) with Horner evaluation of the claimed
// coefficients, for every coordinate. A correct proof always passes; a
// forged one survives a round with probability at most d/q.
//
// This is also the Merlin–Arthur mode: Arthur runs VerifyProof against a
// proof Merlin supplied, spending only a single node's evaluation effort
// per trial.
func VerifyProof(p Problem, proof *Proof, trials int, seed int64) (bool, error) {
	if trials <= 0 {
		trials = 1
	}
	rng := rand.New(rand.NewSource(seed))
	for t := 0; t < trials; t++ {
		for _, q := range proof.Primes {
			f := ff.Field{Q: q}
			x0 := rng.Uint64() % q
			want, err := p.Evaluate(q, x0)
			if err != nil {
				return false, fmt.Errorf("evaluating P(%d) mod %d: %w", x0, q, err)
			}
			coeffs, ok := proof.Coeffs[q]
			if !ok {
				return false, fmt.Errorf("proof missing modulus %d", q)
			}
			for c := 0; c < proof.Width; c++ {
				if f.Horner(coeffs[c], x0) != want[c]%q {
					return false, nil
				}
			}
		}
	}
	return true, nil
}

func honestNodes(k int, adv Adversary) []int {
	bad := make(map[int]bool)
	for _, id := range adv.CorruptNodes() {
		bad[id] = true
	}
	out := make([]int, 0, k)
	for id := 0; id < k; id++ {
		if !bad[id] {
			out = append(out, id)
		}
	}
	return out
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
