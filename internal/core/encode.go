package core

// Binary serialization for proofs. A Camelot proof is a static artifact
// meant to outlive the computation — stored beside the input, mailed to
// a verifier, or replayed by Merlin — so it needs a stable wire format.
// The format is versioned, little-endian, and self-describing enough to
// round-trip without out-of-band metadata.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// proofMagic guards against decoding unrelated bytes; the trailing byte
// is the format version.
var proofMagic = [4]byte{'C', 'M', 'L', 1}

// ErrMalformedProof is the typed rejection of proof bytes that cannot
// be a Camelot proof: wrong magic, implausible or duplicated geometry,
// or a size claim the data cannot back. Once proofs cross a socket the
// decoder is a trust boundary, so every claimed dimension is checked
// against the bytes actually present before anything is allocated.
var ErrMalformedProof = errors.New("core: malformed proof")

// MarshalBinary implements encoding.BinaryMarshaler.
//
// Layout: magic | degree | width | #points | points... | #primes |
// per prime: q | width × (d+1) coefficients | width × e evaluations.
func (p *Proof) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(proofMagic[:])
	w := func(v uint64) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	w(uint64(p.Degree))
	w(uint64(p.Width))
	w(uint64(len(p.Points)))
	for _, x := range p.Points {
		w(x)
	}
	w(uint64(len(p.Primes)))
	for _, q := range p.Primes {
		w(q)
		coeffs, ok := p.Coeffs[q]
		if !ok || len(coeffs) != p.Width {
			return nil, fmt.Errorf("core: proof missing coefficients for prime %d", q)
		}
		evals, ok := p.Evals[q]
		if !ok || len(evals) != p.Width {
			return nil, fmt.Errorf("core: proof missing evaluations for prime %d", q)
		}
		for c := 0; c < p.Width; c++ {
			if len(coeffs[c]) != p.Degree+1 {
				return nil, fmt.Errorf("core: prime %d coord %d: %d coefficients, want %d",
					q, c, len(coeffs[c]), p.Degree+1)
			}
			for _, v := range coeffs[c] {
				w(v)
			}
		}
		for c := 0; c < p.Width; c++ {
			if len(evals[c]) != len(p.Points) {
				return nil, fmt.Errorf("core: prime %d coord %d: %d evaluations, want %d",
					q, c, len(evals[c]), len(p.Points))
			}
			for _, v := range evals[c] {
				w(v)
			}
		}
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (p *Proof) UnmarshalBinary(data []byte) error {
	rest, ok := ConsumeMagic(data, proofMagic)
	if !ok {
		return fmt.Errorf("%w: bad magic/version", ErrMalformedProof)
	}
	r := bytes.NewReader(rest)
	var rdErr error
	rd := func() uint64 {
		var v uint64
		if rdErr == nil {
			rdErr = binary.Read(r, binary.LittleEndian, &v)
		}
		return v
	}
	degree := rd()
	width := rd()
	nPoints := rd()
	if rdErr != nil {
		return fmt.Errorf("core: truncated proof header: %w", rdErr)
	}
	const sane = 1 << 28
	if degree > sane || width > 1<<16 || nPoints > sane {
		return fmt.Errorf("%w: implausible geometry d=%d w=%d e=%d", ErrMalformedProof, degree, width, nPoints)
	}
	// Check every claimed dimension against the bytes actually present
	// before allocating: a 40-byte payload must never be able to demand
	// gigabytes. The geometry bounds above keep these products far
	// below uint64 overflow.
	if nPoints*8 > uint64(r.Len()) {
		return fmt.Errorf("%w: %d points claimed, %d bytes available", ErrMalformedProof, nPoints, r.Len())
	}
	p.Degree = int(degree)
	p.Width = int(width)
	p.Points = make([]uint64, nPoints)
	for i := range p.Points {
		p.Points[i] = rd()
	}
	nPrimes := rd()
	if rdErr != nil {
		return fmt.Errorf("core: truncated proof points: %w", rdErr)
	}
	if nPrimes > 64 {
		return fmt.Errorf("%w: implausible prime count %d", ErrMalformedProof, nPrimes)
	}
	// Per prime: the prime itself plus width coefficient vectors of
	// degree+1 words and width evaluation vectors of nPoints words.
	wordsPerPrime := 1 + width*(degree+1) + width*nPoints
	if need := nPrimes * wordsPerPrime * 8; need > uint64(r.Len()) {
		return fmt.Errorf("%w: body claims %d bytes, %d available", ErrMalformedProof, need, r.Len())
	}
	p.Primes = make([]uint64, 0, nPrimes)
	p.Coeffs = make(map[uint64][][]uint64, nPrimes)
	p.Evals = make(map[uint64][][]uint64, nPrimes)
	for pi := uint64(0); pi < nPrimes; pi++ {
		q := rd()
		if _, dup := p.Coeffs[q]; dup {
			// A repeated modulus would overwrite Coeffs[q]/Evals[q]
			// while Primes kept both entries — an internally
			// inconsistent proof no honest marshaller produces.
			return fmt.Errorf("%w: duplicate prime %d", ErrMalformedProof, q)
		}
		coeffs := make([][]uint64, p.Width)
		for c := range coeffs {
			coeffs[c] = make([]uint64, p.Degree+1)
			for j := range coeffs[c] {
				coeffs[c][j] = rd()
			}
		}
		evals := make([][]uint64, p.Width)
		for c := range evals {
			evals[c] = make([]uint64, nPoints)
			for j := range evals[c] {
				evals[c][j] = rd()
			}
		}
		if rdErr != nil {
			return fmt.Errorf("core: truncated proof body: %w", rdErr)
		}
		p.Primes = append(p.Primes, q)
		p.Coeffs[q] = coeffs
		p.Evals[q] = evals
	}
	if r.Len() != 0 {
		return fmt.Errorf("core: %d trailing bytes after proof", r.Len())
	}
	return nil
}
