package core

// The transport layer carries the protocol's single message kind — a
// node's broadcast of its evaluated shares — from the prepare stage to
// the decode stage. The paper's model is a reliable broadcast bus; the
// Transport interface keeps that as the default while leaving room for
// sharded or lossy transports (message loss and corruption in flight are
// already modeled separately by the Adversary, which acts on received
// words, not on the transport).

import (
	"context"
	"fmt"
	"time"
)

// NodeShares is the broadcast message a node contributes: its
// evaluations for every prime, coordinate, and owned point.
type NodeShares struct {
	// ID is the sending node.
	ID int
	// Lo, Hi delimit the owned point-index range [Lo, Hi).
	Lo, Hi int
	// Vals is indexed [prime][coord][point-Lo].
	Vals [][][]uint64
	// Elapsed is the node's evaluation time.
	Elapsed time.Duration
	// Err is a node-side evaluation failure, reported in-band so the
	// collector can attribute it.
	Err error
}

// Transport moves NodeShares messages from compute nodes to the
// collector. Implementations must be safe for concurrent Send calls.
type Transport interface {
	// Send broadcasts one node's shares. It may block (a bounded or
	// networked transport) and must honor ctx cancellation.
	Send(ctx context.Context, m NodeShares) error
	// Gather blocks until k messages have arrived (or ctx is cancelled)
	// and returns them in arbitrary order.
	Gather(ctx context.Context, k int) ([]NodeShares, error)
}

// TransportFactory builds a fresh Transport for a run of k nodes. A
// factory rather than an instance, because a Transport holds per-run
// message state while Options values are routinely reused across runs.
type TransportFactory func(k int) Transport

// BroadcastBus is the default in-memory transport: a reliable,
// order-preserving broadcast channel with capacity for every node's
// message, so Send never blocks in a fault-free run.
type BroadcastBus struct {
	ch chan NodeShares
}

var _ Transport = (*BroadcastBus)(nil)

// NewBroadcastBus returns a bus buffered for k messages.
func NewBroadcastBus(k int) *BroadcastBus {
	if k < 1 {
		k = 1
	}
	return &BroadcastBus{ch: make(chan NodeShares, k)}
}

// Send implements Transport.
func (b *BroadcastBus) Send(ctx context.Context, m NodeShares) error {
	select {
	case b.ch <- m:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Gather implements Transport.
func (b *BroadcastBus) Gather(ctx context.Context, k int) ([]NodeShares, error) {
	out := make([]NodeShares, 0, k)
	for len(out) < k {
		select {
		case m := <-b.ch:
			out = append(out, m)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return out, nil
}

// collectShares orders k gathered messages by node id and surfaces any
// in-band node failure.
func collectShares(msgs []NodeShares, k int) ([]NodeShares, error) {
	all := make([]NodeShares, k)
	seen := make([]bool, k)
	for _, m := range msgs {
		if m.ID < 0 || m.ID >= k {
			return nil, fmt.Errorf("transport delivered message from unknown node %d", m.ID)
		}
		if seen[m.ID] {
			return nil, fmt.Errorf("transport delivered duplicate message from node %d", m.ID)
		}
		if m.Err != nil {
			return nil, m.Err
		}
		seen[m.ID] = true
		all[m.ID] = m
	}
	for id, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("transport delivered no message from node %d", id)
		}
	}
	return all, nil
}
