package core

// The transport layer carries the protocol's single message kind — a
// node's broadcast of its evaluated shares — from the prepare stage to
// the decode stage. The paper's model is a reliable broadcast bus; the
// Transport interface keeps that as the default while modeling the
// delivery-fault axis explicitly: ShardedTransport partitions nodes
// into per-shard buses bridged by relay goroutines, and LossyTransport
// drops, delays, duplicates, and reorders messages under a seeded RNG.
// Delivery faults (a message that never arrives) are distinct from the
// content faults the Adversary injects: the Adversary corrupts the
// *values* of received words per (sender, recipient) pair at decode
// time, while a faulty transport loses whole messages — the collector
// then reports the missing senders and the decode stage treats their
// coordinates as Reed–Solomon erasures.

import (
	"context"
	"fmt"
	"time"
)

// NodeShares is the broadcast message a node contributes: its
// evaluations for every prime, coordinate, and owned point.
type NodeShares struct {
	// ID is the node whose point range the message carries — the range
	// owner, which is what every decoder indexes by. In a repair round
	// the owner is dead and a surviving sponsor computes and sends the
	// range on its behalf; ID still names the owner.
	ID int
	// From is the node that physically sent the message: the owner
	// itself in round 0, the sponsoring survivor in a repair round. The
	// transport's link faults (a lossy network's drop fate, say) attach
	// to the physical sender, not the range owner — see Origin.
	From int
	// Round is the gather round the message belongs to: 0 for the
	// initial prepare gather, n ≥ 1 for the n-th repair round. A
	// collector drops frames from any other round as delivery faults —
	// a stale duplicate must never be double-counted into a later
	// round's quorum.
	Round int
	// Lo, Hi delimit the owned point-index range [Lo, Hi).
	Lo, Hi int
	// Vals is indexed [prime][coord][point-Lo].
	Vals [][][]uint64
	// Elapsed is the node's evaluation time.
	Elapsed time.Duration
	// Err is a node-side evaluation failure, reported in-band so the
	// collector can attribute it.
	Err error
}

// Origin returns the message's physical sender: the sponsor (From) for
// a repair-round message, the owner (ID) otherwise. Round > 0 is the
// discriminant — From's zero value is a valid node id, so round-0
// messages constructed without From must still originate from ID.
func (m NodeShares) Origin() int {
	if m.Round > 0 {
		return m.From
	}
	return m.ID
}

// Transport moves NodeShares messages from compute nodes to the
// collector. Implementations must be safe for concurrent Send calls.
type Transport interface {
	// Send broadcasts one node's shares. It may block (a bounded or
	// networked transport) and must honor ctx cancellation.
	Send(ctx context.Context, m NodeShares) error
	// Gather blocks until k messages have arrived (or ctx is cancelled)
	// and returns them in arbitrary order. It counts raw messages — a
	// transport that can lose or duplicate them must also implement
	// QuorumGatherer, which counts distinct senders instead.
	Gather(ctx context.Context, k int) ([]NodeShares, error)
}

// GatherSpec parameterizes a quorum gather.
type GatherSpec struct {
	// K is the total number of expected senders (node ids 0..K-1).
	K int
	// Quorum is the number of distinct senders sufficient to return:
	// the engine sets K - MaxErasures. Clamped to [1, K].
	Quorum int
	// Grace bounds how long the collector waits between message
	// arrivals before giving up on stragglers: the timer arms on the
	// first arrival, resets on every new distinct sender, and when it
	// fires the gather returns whatever arrived — even below quorum
	// (the decode stage then judges whether the erasures are
	// recoverable). Before the first message there is no deadline —
	// compute time is unbounded and the collector cannot tell a slow
	// run from a dead network, so a gather that never hears anyone
	// waits for SendsDone or ctx. Grace <= 0 disables the timer
	// entirely.
	Grace time.Duration
	// SendsDone, when non-nil, is closed by the caller once no further
	// Send can occur (the engine closes it when the worker pool has
	// finished). The gather then allows one final grace period for the
	// transport's in-flight hop to drain and returns whatever arrived —
	// without this signal, a network that lost *every* message would
	// never trip the first-arrival grace timer and the gather would
	// wait for ctx alone.
	SendsDone <-chan struct{}
	// Round is the gather round this spec serves. Messages carrying any
	// other NodeShares.Round are dropped unseen — not counted toward
	// the quorum, not returned, not allowed to arm the grace timer. A
	// round-0 broadcast delayed past its own gather must read as a
	// delivery fault in its round, never as a phantom arrival in the
	// repair round that follows.
	Round int
	// KeepOpen tells transports that normally shut down when a gather
	// returns (sharded relays, the TCP listener) to stay alive: the
	// engine may run repair rounds over the same instance and owns the
	// transport's lifecycle for the rest of the run (see the engine's
	// closeTransport).
	KeepOpen bool
}

// QuorumGatherer is the capability a transport needs to serve runs that
// tolerate delivery faults (Options.MaxErasures > 0). GatherQuorum
// returns when all K distinct senders have been heard, when Quorum
// distinct senders have been heard (plus a non-blocking drain of
// whatever else is already buffered, so an arrived message is never
// erased just because the quorum filled first), or when the grace
// timer fires — whichever comes first. The returned slice is the raw
// message stream: duplicates are preserved (collectShares dedups them)
// and only counting is by distinct sender.
type QuorumGatherer interface {
	GatherQuorum(ctx context.Context, spec GatherSpec) ([]NodeShares, error)
}

// SendDrainer is an optional Transport capability for transports that
// accept a Send and deliver it later on their own goroutines (e.g.
// LossyTransport's injected delays). DrainSends blocks until every
// such in-flight delivery has completed or been abandoned and returns
// the first delivery failure. The engine calls it once the worker pool
// has finished sending and before closing GatherSpec.SendsDone, so an
// asynchronous delivery failure still fails the run with its root
// cause and "sending concluded" is never announced early.
type SendDrainer interface {
	DrainSends(ctx context.Context) error
}

// TransportFactory builds a fresh Transport for a run of k nodes. A
// factory rather than an instance, because a Transport holds per-run
// message state while Options values are routinely reused across runs.
type TransportFactory func(k int) Transport

// AssignSpec names one point range the engine wants evaluated remotely:
// the logical node that owns it (what decoders index by), the gather
// round its frames must carry, and the geometry a worker needs to
// reproduce the evaluation bit for bit (Evaluate is deterministic in
// (q, x0), so any worker produces the same words). The problem instance
// itself travels out of band — a remote transport is constructed around
// a specific workload.
type AssignSpec struct {
	// Owner is the logical node id in [0, K) whose range this is; the
	// frames that come back carry it as NodeShares.ID.
	Owner int
	// Round tags the gather round the resulting frames belong to
	// (NodeShares.Round; 0 for the initial prepare, >= 1 for repairs).
	Round int
	// Lo, Hi bound the owned point range [Lo, Hi).
	Lo, Hi int
	// Width is the proof polynomial's coordinate count.
	Width int
	// Primes are the proof moduli, in proof order.
	Primes []uint64
}

// RemoteAssigner is the optional Transport capability behind remote
// (multi-process) runs: instead of the engine evaluating ranges on its
// own worker pool and Send-ing the results, AssignRanges ships each
// range's manifest to a live remote worker, which evaluates and streams
// NodeShares frames back through the transport's gather side. The
// engine detects the capability by type assertion in stagePrepare and
// switches the prepare and repair stages to assignment mode; a repair
// round re-assigns a missing range with its new Round tag. AssignRanges
// returns once every spec has been handed to some worker (not once
// results arrive) — delivery is judged by the gather, like any Send.
type RemoteAssigner interface {
	AssignRanges(ctx context.Context, specs []AssignSpec) error
}

// GatherShares runs the shared quorum-gather loop over ch under spec.
// It exists for transports implemented outside this package (the
// control-protocol coordinator in internal/ctrl) so their GatherQuorum
// has byte-for-byte the engine's gather semantics: distinct-sender
// counting, round filtering, grace timing, and the post-quorum drain.
func GatherShares(ctx context.Context, ch <-chan NodeShares, spec GatherSpec) ([]NodeShares, error) {
	return gatherQuorum(ctx, ch, spec)
}

// BroadcastBus is the default in-memory transport: a reliable,
// order-preserving broadcast channel with capacity for every node's
// message, so Send never blocks in a fault-free run.
type BroadcastBus struct {
	ch chan NodeShares
}

var (
	_ Transport      = (*BroadcastBus)(nil)
	_ QuorumGatherer = (*BroadcastBus)(nil)
)

// NewBroadcastBus returns a bus buffered for k messages.
func NewBroadcastBus(k int) *BroadcastBus {
	if k < 1 {
		k = 1
	}
	return &BroadcastBus{ch: make(chan NodeShares, k)}
}

// Send implements Transport.
func (b *BroadcastBus) Send(ctx context.Context, m NodeShares) error {
	select {
	case b.ch <- m:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Gather implements Transport.
func (b *BroadcastBus) Gather(ctx context.Context, k int) ([]NodeShares, error) {
	out := make([]NodeShares, 0, k)
	for len(out) < k {
		select {
		case m := <-b.ch:
			out = append(out, m)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return out, nil
}

// GatherQuorum implements QuorumGatherer.
func (b *BroadcastBus) GatherQuorum(ctx context.Context, spec GatherSpec) ([]NodeShares, error) {
	return gatherQuorum(ctx, b.ch, spec)
}

// gatherQuorum is the shared quorum-gather loop over a message channel;
// see QuorumGatherer for the contract.
func gatherQuorum(ctx context.Context, ch <-chan NodeShares, spec GatherSpec) ([]NodeShares, error) {
	if spec.Quorum > spec.K {
		spec.Quorum = spec.K
	}
	if spec.Quorum < 1 {
		spec.Quorum = 1
	}
	// The grace timer arms on the first arrival, not at gather begin:
	// until someone has finished computing there is nothing to measure
	// stragglers against, and a slow problem must not read as loss.
	var timerC <-chan time.Time
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	armTimer := func() {
		if spec.Grace <= 0 {
			return
		}
		if timer == nil {
			timer = time.NewTimer(spec.Grace)
			timerC = timer.C
			return
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(spec.Grace)
	}
	distinct := make(map[int]bool, spec.K)
	var out []NodeShares
	for len(distinct) < spec.Quorum {
		select {
		case m := <-ch:
			if m.Round != spec.Round {
				// A frame from another gather round — a round-0 copy a
				// slow network delivered into the repair round, or a
				// replayed stale frame. It is this round's delivery
				// fault for its owner, never an arrival: dropping it
				// unseen keeps it out of the quorum count, the output,
				// and the grace timer.
				continue
			}
			out = append(out, m)
			if m.ID >= 0 && m.ID < spec.K && !distinct[m.ID] {
				distinct[m.ID] = true
				// Every new sender renews the stragglers' grace, so a
				// slow-but-alive network is never cut off mid-stream.
				armTimer()
			}
		case <-spec.SendsDone:
			// No further Send can occur: whatever is still coming sits
			// in the transport's in-flight hop. Give it one grace to
			// drain, then hand over the partial gather. With the timer
			// disabled, settle for what is already buffered.
			spec.SendsDone = nil
			if spec.Grace <= 0 {
				for {
					select {
					case m := <-ch:
						if m.Round != spec.Round {
							continue
						}
						out = append(out, m)
					default:
						return out, nil
					}
				}
			}
			armTimer()
		case <-timerC:
			return out, nil // deadline: hand over what arrived
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	// Quorum reached: drain whatever is already buffered without
	// waiting further. A sender whose message has in fact arrived must
	// not be erased just because the quorum filled first — erasures
	// spend Reed–Solomon budget that content errors may need. The cap
	// bounds the drain against a transport still actively duplicating.
	for i := 0; i < 2*spec.K; i++ {
		select {
		case m := <-ch:
			if m.Round != spec.Round {
				continue
			}
			out = append(out, m)
		default:
			return out, nil
		}
	}
	return out, nil
}

// collectShares organizes gathered messages: it dedups repeated
// deliveries by (node, round) — first copy wins — surfaces any in-band
// node failure, and reports which of the k expected senders were never
// heard from. A message from any round other than the requested one is
// skipped as if it never arrived: a stale round-0 frame replayed during
// a repair round is that round's delivery fault, never a counted
// delivery (the quorum gather filters these too; this is the defense
// for callers that bypass it). It errors only on protocol violations
// (a sender outside [0, k)) and node-side failures — missing senders
// are the caller's policy decision (the engine fails a strict run and
// erases a lossy one).
func collectShares(msgs []NodeShares, k, round int) (delivered []NodeShares, missing []int, err error) {
	all := make([]NodeShares, k)
	seen := make([]bool, k)
	for _, m := range msgs {
		if m.Round != round {
			continue // another round's frame: for this round, never delivered
		}
		if m.ID < 0 || m.ID >= k {
			return nil, nil, fmt.Errorf("transport delivered message from unknown node %d", m.ID)
		}
		if seen[m.ID] {
			continue // duplicated delivery; the first copy already counted
		}
		if m.Err != nil {
			return nil, nil, m.Err
		}
		seen[m.ID] = true
		all[m.ID] = m
	}
	delivered = make([]NodeShares, 0, k)
	for id, ok := range seen { // ascending, so both outputs sort by id
		if ok {
			delivered = append(delivered, all[id])
		} else {
			missing = append(missing, id)
		}
	}
	return delivered, missing, nil
}
