package core

// Unit and property tests for the transport layer itself: the
// collector's tolerance of arbitrary message streams, the broadcast
// bus's cancellation behaviour, the quorum-gather contract, and the
// sharded/lossy implementations. End-to-end fault scenarios live in
// chaos_test.go.

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// TestCollectSharesPropertySweep: over randomly permuted, duplicated,
// and truncated message sets, collectShares never panics, never
// invents or loses a sender, and reports the exact missing-id set.
func TestCollectSharesPropertySweep(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 500; trial++ {
		k := 1 + rng.Intn(12)
		dropped := map[int]bool{}
		for id := 0; id < k; id++ {
			if rng.Float64() < 0.3 {
				dropped[id] = true
			}
		}
		var msgs []NodeShares
		for id := 0; id < k; id++ {
			if dropped[id] {
				continue
			}
			copies := 1 + rng.Intn(3) // duplicated delivery
			for c := 0; c < copies; c++ {
				msgs = append(msgs, NodeShares{ID: id, Lo: id, Hi: id + 1})
			}
		}
		rng.Shuffle(len(msgs), func(i, j int) { msgs[i], msgs[j] = msgs[j], msgs[i] })

		delivered, missing, err := collectShares(msgs, k)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(delivered)+len(missing) != k {
			t.Fatalf("trial %d: %d delivered + %d missing != k=%d", trial, len(delivered), len(missing), k)
		}
		seen := map[int]bool{}
		for i, m := range delivered {
			if dropped[m.ID] {
				t.Fatalf("trial %d: dropped node %d delivered", trial, m.ID)
			}
			if m.Lo != m.ID {
				t.Fatalf("trial %d: payload mangled for node %d", trial, m.ID)
			}
			if seen[m.ID] {
				t.Fatalf("trial %d: node %d delivered twice after dedup", trial, m.ID)
			}
			seen[m.ID] = true
			if i > 0 && delivered[i-1].ID >= m.ID {
				t.Fatalf("trial %d: delivered not ordered by id", trial)
			}
		}
		for i, id := range missing {
			if !dropped[id] {
				t.Fatalf("trial %d: node %d reported missing but was sent", trial, id)
			}
			if i > 0 && missing[i-1] >= id {
				t.Fatalf("trial %d: missing ids not ascending: %v", trial, missing)
			}
		}
		if len(missing) != len(dropped) {
			t.Fatalf("trial %d: missing = %v, dropped = %v", trial, missing, dropped)
		}
	}
}

func TestBroadcastBusPreCancelledContexts(t *testing.T) {
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	// Gather on an empty bus with a dead context must not block.
	bus := NewBroadcastBus(2)
	if _, err := bus.Gather(cancelled, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("gather: err = %v, want context.Canceled", err)
	}
	if _, err := bus.GatherQuorum(cancelled, GatherSpec{K: 2, Quorum: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("quorum gather: err = %v, want context.Canceled", err)
	}
	// Send on a *full* bus with a dead context must not block either
	// (on a bus with free capacity a pre-cancelled Send may still
	// succeed — select picks among ready cases — which is fine; the
	// guarantee is no deadlock).
	full := NewBroadcastBus(1)
	if err := full.Send(context.Background(), NodeShares{ID: 0}); err != nil {
		t.Fatal(err)
	}
	if err := full.Send(cancelled, NodeShares{ID: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("send on full bus: err = %v, want context.Canceled", err)
	}
}

func TestBroadcastBusMidGatherCancellation(t *testing.T) {
	for _, quorum := range []bool{false, true} {
		bus := NewBroadcastBus(3)
		ctx, cancel := context.WithCancel(context.Background())
		if err := bus.Send(ctx, NodeShares{ID: 0}); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() {
			var err error
			if quorum {
				// No grace timer: the gather may only end by quorum or ctx.
				_, err = bus.GatherQuorum(ctx, GatherSpec{K: 3, Quorum: 3})
			} else {
				_, err = bus.Gather(ctx, 3)
			}
			done <- err
		}()
		time.Sleep(20 * time.Millisecond) // let the gather consume the lone message
		cancel()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("quorum=%v: err = %v, want context.Canceled", quorum, err)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("quorum=%v: mid-gather cancellation did not unblock", quorum)
		}
	}
}

func TestGatherQuorumCountsDistinctSenders(t *testing.T) {
	bus := NewBroadcastBus(8)
	ctx := context.Background()
	// Three raw messages but only two distinct senders: a quorum of 3
	// must not be satisfied by the duplicate.
	for _, id := range []int{0, 0, 1} {
		if err := bus.Send(ctx, NodeShares{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	msgs, err := bus.GatherQuorum(ctx, GatherSpec{K: 4, Quorum: 3, Grace: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Fatalf("gather returned in %v — duplicate satisfied the quorum", elapsed)
	}
	if len(msgs) != 3 {
		t.Fatalf("raw stream length %d, want 3 (duplicates preserved)", len(msgs))
	}
	_, missing, err := collectShares(msgs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !sameInts(missing, []int{2, 3}) {
		t.Fatalf("missing = %v, want [2 3]", missing)
	}
}

func TestGatherQuorumReturnsAtQuorum(t *testing.T) {
	bus := NewBroadcastBus(8)
	ctx := context.Background()
	for id := 0; id < 3; id++ {
		if err := bus.Send(ctx, NodeShares{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	// Quorum 3 with an hour of grace: must return immediately.
	start := time.Now()
	msgs, err := bus.GatherQuorum(ctx, GatherSpec{K: 8, Quorum: 3, Grace: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 3 || time.Since(start) > 5*time.Second {
		t.Fatalf("quorum return: %d msgs after %v", len(msgs), time.Since(start))
	}
}

func TestShardedTransportDeliversAcrossShards(t *testing.T) {
	const k = 9
	tr := NewShardedTransport(k, 4)
	if tr.Shards() != 4 {
		t.Fatalf("shards = %d", tr.Shards())
	}
	ctx := context.Background()
	for id := 0; id < k; id++ {
		if err := tr.Send(ctx, NodeShares{ID: id, Lo: id, Hi: id + 1}); err != nil {
			t.Fatal(err)
		}
	}
	msgs, err := tr.Gather(ctx, k)
	if err != nil {
		t.Fatal(err)
	}
	delivered, missing, err := collectShares(msgs, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 0 || len(delivered) != k {
		t.Fatalf("relays lost messages: missing %v", missing)
	}
	for id, m := range delivered {
		if m.ID != id || m.Lo != id {
			t.Fatalf("message %d misfiled: %+v", id, m)
		}
	}
}

func TestShardedTransportShutdownFreesLateSenders(t *testing.T) {
	const k = 6
	tr := NewShardedTransport(k, 2)
	ctx := context.Background()
	for id := 0; id < 4; id++ {
		if err := tr.Send(ctx, NodeShares{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	msgs, err := tr.GatherQuorum(ctx, GatherSpec{K: k, Quorum: 4, Grace: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if _, missing, _ := collectShares(msgs, k); len(missing) != 2 {
		t.Fatalf("missing = %v, want 2 stragglers", missing)
	}
	// The gather has returned and shut the relays down: a straggler's
	// Send (and many of them — beyond any buffer) must complete as a
	// no-op rather than wedge its worker.
	done := make(chan error, 1)
	go func() {
		var err error
		for i := 0; i < 10*k && err == nil; i++ {
			err = tr.Send(ctx, NodeShares{ID: 4})
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("late Send blocked after gather shutdown")
	}
}

func TestLossyTransportFateIsDeterministic(t *testing.T) {
	cfg := LossyConfig{Seed: 5, DropRate: 0.4, DupRate: 0.5, DelayRate: 0.5, MaxDelay: time.Millisecond}
	a := NewLossyTransport(NewBroadcastBus(1), cfg)
	b := NewLossyTransport(NewBroadcastBus(1), cfg)
	varied := false
	for id := 0; id < 64; id++ {
		d1, c1, del1 := a.fate(id)
		d2, c2, del2 := b.fate(id)
		if d1 != d2 || c1 != c2 || del1 != del2 {
			t.Fatalf("fate(%d) differs across identically-seeded transports", id)
		}
		d3, c3, del3 := a.fate(id)
		if d1 != d3 || c1 != c3 || del1 != del3 {
			t.Fatalf("fate(%d) differs across calls", id)
		}
		if d1 || c1 == 2 || del1 > 0 {
			varied = true
		}
	}
	if !varied {
		t.Fatal("no message met any fate at 40-50% rates over 64 senders")
	}
	// A different seed must produce a different fate pattern somewhere.
	other := NewLossyTransport(NewBroadcastBus(1), LossyConfig{Seed: 6, DropRate: 0.4, DupRate: 0.5})
	same := true
	for id := 0; id < 64 && same; id++ {
		d1, c1, _ := a.fate(id)
		d2, c2, _ := other.fate(id)
		same = d1 == d2 && c1 == c2
	}
	if same {
		t.Fatal("seeds 5 and 6 produced identical fates for 64 senders")
	}
}

func TestLossyTransportDropsAndDuplicates(t *testing.T) {
	bus := NewBroadcastBus(16)
	tr := NewLossyTransport(bus, LossyConfig{DropNodes: []int{2}, DupRate: 1})
	ctx := context.Background()
	for id := 0; id < 4; id++ {
		if err := tr.Send(ctx, NodeShares{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	// 3 survivors × 2 copies on the inner bus, node 2 gone entirely.
	if got := len(bus.ch); got != 6 {
		t.Fatalf("inner bus holds %d messages, want 6", got)
	}
	msgs, err := tr.GatherQuorum(ctx, GatherSpec{K: 4, Quorum: 3, Grace: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	_, missing, err := collectShares(msgs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !sameInts(missing, []int{2}) {
		t.Fatalf("missing = %v, want [2]", missing)
	}
}

// strictOnlyTransport implements Transport but not QuorumGatherer (no
// embedding: that would promote the bus's GatherQuorum).
type strictOnlyTransport struct{ inner *BroadcastBus }

func (s strictOnlyTransport) Send(ctx context.Context, m NodeShares) error {
	return s.inner.Send(ctx, m)
}

func (s strictOnlyTransport) Gather(ctx context.Context, k int) ([]NodeShares, error) {
	return s.inner.Gather(ctx, k)
}

func TestRunRejectsQuorumOnStrictTransport(t *testing.T) {
	_, _, err := Run(context.Background(), testProblem(), Options{
		Nodes: 4, FaultTolerance: 4, MaxErasures: 1,
		NewTransport: func(k int) Transport { return strictOnlyTransport{inner: NewBroadcastBus(k)} },
	})
	if !errors.Is(err, ErrQuorumUnsupported) {
		t.Fatalf("err = %v, want ErrQuorumUnsupported", err)
	}
}

func TestRunStrictModeStillRequiresEveryMessage(t *testing.T) {
	// Without MaxErasures a lossy run cannot complete: the strict
	// gather waits for all K and the run ends only with the context.
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	_, _, err := Run(ctx, testProblem(), Options{
		Nodes: 4, FaultTolerance: 4,
		NewTransport: func(k int) Transport {
			return NewLossyTransport(NewBroadcastBus(k), LossyConfig{DropNodes: []int{0}})
		},
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestRunQuorumModeMatchesStrictWhenNothingIsLost(t *testing.T) {
	p := testProblem()
	strict, _, err := Run(context.Background(), p, Options{Nodes: 6, FaultTolerance: 3})
	if err != nil {
		t.Fatal(err)
	}
	quorum, rep, err := Run(context.Background(), p, Options{
		Nodes: 6, FaultTolerance: 3, MaxErasures: 2, GatherGrace: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := proofsEqual(strict, quorum); err != nil {
		t.Fatalf("quorum mode changed the proof on a perfect network: %v", err)
	}
	if len(rep.MissingNodes) > 2 {
		t.Fatalf("MissingNodes = %v beyond MaxErasures", rep.MissingNodes)
	}
}
