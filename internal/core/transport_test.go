package core

// Unit and property tests for the transport layer itself: the
// collector's tolerance of arbitrary message streams, the broadcast
// bus's cancellation behaviour, the quorum-gather contract, and the
// sharded/lossy implementations. End-to-end fault scenarios live in
// chaos_test.go.

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCollectSharesPropertySweep: over randomly permuted, duplicated,
// and truncated message sets, collectShares never panics, never
// invents or loses a sender, and reports the exact missing-id set.
func TestCollectSharesPropertySweep(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 500; trial++ {
		k := 1 + rng.Intn(12)
		dropped := map[int]bool{}
		for id := 0; id < k; id++ {
			if rng.Float64() < 0.3 {
				dropped[id] = true
			}
		}
		var msgs []NodeShares
		for id := 0; id < k; id++ {
			if dropped[id] {
				continue
			}
			copies := 1 + rng.Intn(3) // duplicated delivery
			for c := 0; c < copies; c++ {
				msgs = append(msgs, NodeShares{ID: id, Lo: id, Hi: id + 1})
			}
		}
		rng.Shuffle(len(msgs), func(i, j int) { msgs[i], msgs[j] = msgs[j], msgs[i] })

		delivered, missing, err := collectShares(msgs, k, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(delivered)+len(missing) != k {
			t.Fatalf("trial %d: %d delivered + %d missing != k=%d", trial, len(delivered), len(missing), k)
		}
		seen := map[int]bool{}
		for i, m := range delivered {
			if dropped[m.ID] {
				t.Fatalf("trial %d: dropped node %d delivered", trial, m.ID)
			}
			if m.Lo != m.ID {
				t.Fatalf("trial %d: payload mangled for node %d", trial, m.ID)
			}
			if seen[m.ID] {
				t.Fatalf("trial %d: node %d delivered twice after dedup", trial, m.ID)
			}
			seen[m.ID] = true
			if i > 0 && delivered[i-1].ID >= m.ID {
				t.Fatalf("trial %d: delivered not ordered by id", trial)
			}
		}
		for i, id := range missing {
			if !dropped[id] {
				t.Fatalf("trial %d: node %d reported missing but was sent", trial, id)
			}
			if i > 0 && missing[i-1] >= id {
				t.Fatalf("trial %d: missing ids not ascending: %v", trial, missing)
			}
		}
		if len(missing) != len(dropped) {
			t.Fatalf("trial %d: missing = %v, dropped = %v", trial, missing, dropped)
		}
	}
}

func TestBroadcastBusPreCancelledContexts(t *testing.T) {
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	// Gather on an empty bus with a dead context must not block.
	bus := NewBroadcastBus(2)
	if _, err := bus.Gather(cancelled, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("gather: err = %v, want context.Canceled", err)
	}
	if _, err := bus.GatherQuorum(cancelled, GatherSpec{K: 2, Quorum: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("quorum gather: err = %v, want context.Canceled", err)
	}
	// Send on a *full* bus with a dead context must not block either
	// (on a bus with free capacity a pre-cancelled Send may still
	// succeed — select picks among ready cases — which is fine; the
	// guarantee is no deadlock).
	full := NewBroadcastBus(1)
	if err := full.Send(context.Background(), NodeShares{ID: 0}); err != nil {
		t.Fatal(err)
	}
	if err := full.Send(cancelled, NodeShares{ID: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("send on full bus: err = %v, want context.Canceled", err)
	}
}

func TestBroadcastBusMidGatherCancellation(t *testing.T) {
	for _, quorum := range []bool{false, true} {
		bus := NewBroadcastBus(3)
		ctx, cancel := context.WithCancel(context.Background())
		if err := bus.Send(ctx, NodeShares{ID: 0}); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() {
			var err error
			if quorum {
				// No grace timer: the gather may only end by quorum or ctx.
				_, err = bus.GatherQuorum(ctx, GatherSpec{K: 3, Quorum: 3})
			} else {
				_, err = bus.Gather(ctx, 3)
			}
			done <- err
		}()
		time.Sleep(20 * time.Millisecond) // let the gather consume the lone message
		cancel()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("quorum=%v: err = %v, want context.Canceled", quorum, err)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("quorum=%v: mid-gather cancellation did not unblock", quorum)
		}
	}
}

func TestGatherQuorumCountsDistinctSenders(t *testing.T) {
	bus := NewBroadcastBus(8)
	ctx := context.Background()
	// Three raw messages but only two distinct senders: a quorum of 3
	// must not be satisfied by the duplicate.
	for _, id := range []int{0, 0, 1} {
		if err := bus.Send(ctx, NodeShares{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	msgs, err := bus.GatherQuorum(ctx, GatherSpec{K: 4, Quorum: 3, Grace: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Fatalf("gather returned in %v — duplicate satisfied the quorum", elapsed)
	}
	if len(msgs) != 3 {
		t.Fatalf("raw stream length %d, want 3 (duplicates preserved)", len(msgs))
	}
	_, missing, err := collectShares(msgs, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !sameInts(missing, []int{2, 3}) {
		t.Fatalf("missing = %v, want [2 3]", missing)
	}
}

func TestGatherQuorumReturnsAtQuorum(t *testing.T) {
	bus := NewBroadcastBus(8)
	ctx := context.Background()
	for id := 0; id < 3; id++ {
		if err := bus.Send(ctx, NodeShares{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	// Quorum 3 with an hour of grace: must return immediately.
	start := time.Now()
	msgs, err := bus.GatherQuorum(ctx, GatherSpec{K: 8, Quorum: 3, Grace: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 3 || time.Since(start) > 5*time.Second {
		t.Fatalf("quorum return: %d msgs after %v", len(msgs), time.Since(start))
	}
}

func TestShardedTransportDeliversAcrossShards(t *testing.T) {
	const k = 9
	tr := NewShardedTransport(k, 4)
	if tr.Shards() != 4 {
		t.Fatalf("shards = %d", tr.Shards())
	}
	ctx := context.Background()
	for id := 0; id < k; id++ {
		if err := tr.Send(ctx, NodeShares{ID: id, Lo: id, Hi: id + 1}); err != nil {
			t.Fatal(err)
		}
	}
	msgs, err := tr.Gather(ctx, k)
	if err != nil {
		t.Fatal(err)
	}
	delivered, missing, err := collectShares(msgs, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 0 || len(delivered) != k {
		t.Fatalf("relays lost messages: missing %v", missing)
	}
	for id, m := range delivered {
		if m.ID != id || m.Lo != id {
			t.Fatalf("message %d misfiled: %+v", id, m)
		}
	}
}

func TestShardedTransportShutdownFreesLateSenders(t *testing.T) {
	const k = 6
	tr := NewShardedTransport(k, 2)
	ctx := context.Background()
	for id := 0; id < 4; id++ {
		if err := tr.Send(ctx, NodeShares{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	msgs, err := tr.GatherQuorum(ctx, GatherSpec{K: k, Quorum: 4, Grace: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if _, missing, _ := collectShares(msgs, k, 0); len(missing) != 2 {
		t.Fatalf("missing = %v, want 2 stragglers", missing)
	}
	// The gather has returned and shut the relays down: a straggler's
	// Send (and many of them — beyond any buffer) must complete as a
	// no-op rather than wedge its worker.
	done := make(chan error, 1)
	go func() {
		var err error
		for i := 0; i < 10*k && err == nil; i++ {
			err = tr.Send(ctx, NodeShares{ID: 4})
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("late Send blocked after gather shutdown")
	}
}

func TestLossyTransportFateIsDeterministic(t *testing.T) {
	cfg := LossyConfig{Seed: 5, DropRate: 0.4, DupRate: 0.5, DelayRate: 0.5, MaxDelay: time.Millisecond}
	a := NewLossyTransport(NewBroadcastBus(1), cfg)
	b := NewLossyTransport(NewBroadcastBus(1), cfg)
	varied := false
	for id := 0; id < 64; id++ {
		d1, c1, del1 := a.fate(id)
		d2, c2, del2 := b.fate(id)
		if d1 != d2 || c1 != c2 || del1 != del2 {
			t.Fatalf("fate(%d) differs across identically-seeded transports", id)
		}
		d3, c3, del3 := a.fate(id)
		if d1 != d3 || c1 != c3 || del1 != del3 {
			t.Fatalf("fate(%d) differs across calls", id)
		}
		if d1 || c1 == 2 || del1 > 0 {
			varied = true
		}
	}
	if !varied {
		t.Fatal("no message met any fate at 40-50% rates over 64 senders")
	}
	// A different seed must produce a different fate pattern somewhere.
	other := NewLossyTransport(NewBroadcastBus(1), LossyConfig{Seed: 6, DropRate: 0.4, DupRate: 0.5})
	same := true
	for id := 0; id < 64 && same; id++ {
		d1, c1, _ := a.fate(id)
		d2, c2, _ := other.fate(id)
		same = d1 == d2 && c1 == c2
	}
	if same {
		t.Fatal("seeds 5 and 6 produced identical fates for 64 senders")
	}
}

func TestLossyTransportDropsAndDuplicates(t *testing.T) {
	bus := NewBroadcastBus(16)
	tr := NewLossyTransport(bus, LossyConfig{DropNodes: []int{2}, DupRate: 1})
	ctx := context.Background()
	for id := 0; id < 4; id++ {
		if err := tr.Send(ctx, NodeShares{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	// 3 survivors × 2 copies on the inner bus, node 2 gone entirely.
	if got := len(bus.ch); got != 6 {
		t.Fatalf("inner bus holds %d messages, want 6", got)
	}
	msgs, err := tr.GatherQuorum(ctx, GatherSpec{K: 4, Quorum: 3, Grace: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	_, missing, err := collectShares(msgs, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !sameInts(missing, []int{2}) {
		t.Fatalf("missing = %v, want [2]", missing)
	}
}

// strictOnlyTransport implements Transport but not QuorumGatherer (no
// embedding: that would promote the bus's GatherQuorum).
type strictOnlyTransport struct{ inner *BroadcastBus }

func (s strictOnlyTransport) Send(ctx context.Context, m NodeShares) error {
	return s.inner.Send(ctx, m)
}

func (s strictOnlyTransport) Gather(ctx context.Context, k int) ([]NodeShares, error) {
	return s.inner.Gather(ctx, k)
}

func TestRunRejectsQuorumOnStrictTransport(t *testing.T) {
	_, _, err := Run(context.Background(), testProblem(), Options{
		Nodes: 4, FaultTolerance: 4, MaxErasures: 1,
		NewTransport: func(k int) Transport { return strictOnlyTransport{inner: NewBroadcastBus(k)} },
	})
	if !errors.Is(err, ErrQuorumUnsupported) {
		t.Fatalf("err = %v, want ErrQuorumUnsupported", err)
	}
}

func TestRunStrictModeStillRequiresEveryMessage(t *testing.T) {
	// Without MaxErasures a lossy run cannot complete: the strict
	// gather waits for all K and the run ends only with the context.
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	_, _, err := Run(ctx, testProblem(), Options{
		Nodes: 4, FaultTolerance: 4,
		NewTransport: func(k int) Transport {
			return NewLossyTransport(NewBroadcastBus(k), LossyConfig{DropNodes: []int{0}})
		},
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestRunQuorumModeMatchesStrictWhenNothingIsLost(t *testing.T) {
	p := testProblem()
	strict, _, err := Run(context.Background(), p, Options{Nodes: 6, FaultTolerance: 3})
	if err != nil {
		t.Fatal(err)
	}
	quorum, rep, err := Run(context.Background(), p, Options{
		Nodes: 6, FaultTolerance: 3, MaxErasures: 2, GatherGrace: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := proofsEqual(strict, quorum); err != nil {
		t.Fatalf("quorum mode changed the proof on a perfect network: %v", err)
	}
	if len(rep.MissingNodes) > 2 {
		t.Fatalf("MissingNodes = %v beyond MaxErasures", rep.MissingNodes)
	}
}

// TestLossyTransportDelayDoesNotBlockSender is the regression test for
// the delay-injection fix: the injected latency models the network
// holding the message, so Send must hand the delayed delivery to a
// goroutine and return immediately — a blocking Send would serialize
// the compute workers and skew every throughput reading.
func TestLossyTransportDelayDoesNotBlockSender(t *testing.T) {
	bus := NewBroadcastBus(2)
	// Find a seed whose fate for sender 0 is "delay, no drop": the
	// fate function is pure, so probe it without any I/O.
	cfg := LossyConfig{DelayRate: 1, MaxDelay: time.Hour}
	var lt *LossyTransport
	for seed := int64(0); ; seed++ {
		cfg.Seed = seed
		lt = NewLossyTransport(bus, cfg)
		if drop, _, delay := lt.fate(0); !drop && delay > 30*time.Minute {
			break
		}
		if seed > 10_000 {
			t.Fatal("no seed with a long delay fate found")
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	start := time.Now()
	if err := lt.Send(ctx, NodeShares{ID: 0, Lo: 0, Hi: 0}); err != nil {
		t.Fatal(err)
	}
	if blocked := time.Since(start); blocked > 2*time.Second {
		t.Fatalf("Send blocked %v on an hour-scale injected delay", blocked)
	}
	// The message is held by the network, not delivered yet.
	drainCtx, drainCancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer drainCancel()
	if _, err := bus.Gather(drainCtx, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("delayed message visible early: %v", err)
	}
	// Cancelling the send context abandons the pending delivery, and
	// DrainSends observes the goroutine's exit.
	cancel()
	_ = lt.DrainSends(context.Background())
}

// TestLossyTransportShortDelayStillDelivers: the asynchronous path
// must still deliver (including duplicate copies) once the delay
// elapses.
func TestLossyTransportShortDelayStillDelivers(t *testing.T) {
	bus := NewBroadcastBus(4)
	cfg := LossyConfig{DelayRate: 1, DupRate: 1, MaxDelay: 2 * time.Millisecond}
	var lt *LossyTransport
	for seed := int64(0); ; seed++ {
		cfg.Seed = seed
		lt = NewLossyTransport(bus, cfg)
		if drop, copies, delay := lt.fate(3); !drop && copies == 2 && delay > 0 {
			break
		}
		if seed > 10_000 {
			t.Fatal("no seed with a delayed duplicate fate found")
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := lt.Send(ctx, NodeShares{ID: 3, Lo: 0, Hi: 0}); err != nil {
		t.Fatal(err)
	}
	msgs, err := bus.Gather(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 2 || msgs[0].ID != 3 || msgs[1].ID != 3 {
		t.Fatalf("gathered %+v, want two copies from node 3", msgs)
	}
	_ = lt.DrainSends(context.Background())
}

// erroringTransport fails every Send; Gather behaves like a bus that
// never hears anyone.
type erroringTransport struct {
	*BroadcastBus
	err error
}

func (t *erroringTransport) Send(context.Context, NodeShares) error { return t.err }

// TestLossyDelayedSendErrorFailsTheRun pins the error-propagation
// contract of the asynchronous delay path: a delayed delivery that
// fails must fail the run with the root cause — exactly as the old
// blocking Send did — instead of leaving the gather waiting forever.
func TestLossyDelayedSendErrorFailsTheRun(t *testing.T) {
	boom := errors.New("the network ate the frame")
	// A seed whose fate for every sender of a 2-node run is pure
	// delay: probe fate directly.
	cfg := LossyConfig{DelayRate: 1, MaxDelay: time.Millisecond}
	probe := NewLossyTransport(NewBroadcastBus(2), cfg)
	for seed := int64(0); ; seed++ {
		probe.cfg.Seed = seed
		if _, _, d0 := probe.fate(0); d0 > 0 {
			if _, _, d1 := probe.fate(1); d1 > 0 {
				cfg.Seed = seed
				break
			}
		}
		if seed > 100_000 {
			t.Fatal("no all-delay seed found")
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, _, err := Run(ctx, testProblem(), Options{
		Nodes: 2, FaultTolerance: 1,
		NewTransport: func(k int) Transport {
			return NewLossyTransport(&erroringTransport{BroadcastBus: NewBroadcastBus(k), err: boom}, cfg)
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the delayed delivery's %v", err, boom)
	}
}

// forgingTransport injects a forged message before delegating the
// honest send — the in-memory stand-in for a hostile network peer.
type forgingTransport struct {
	*BroadcastBus
	forge NodeShares
	once  sync.Once
}

func (t *forgingTransport) Send(ctx context.Context, m NodeShares) error {
	t.once.Do(func() { _ = t.BroadcastBus.Send(ctx, t.forge) })
	return t.BroadcastBus.Send(ctx, m)
}

// TestMalformedShapeIsDeliveryFaultNotPanic: a structurally valid
// message whose claimed geometry does not match the run (wrong range,
// wrong prime count) used to reach the decoders' unchecked indexing.
// In quorum mode it must now count as its sender's delivery fault and
// the run must recover the baseline proof; in strict mode it must be
// a typed refusal. Never a panic.
func TestMalformedShapeIsDeliveryFaultNotPanic(t *testing.T) {
	ctx := context.Background()
	p := testProblem()
	baseline, _, err := Run(ctx, p, Options{Nodes: 8, FaultTolerance: 4})
	if err != nil {
		t.Fatal(err)
	}
	// The forged message claims node 3 with an absurd range and no
	// prime payloads — first copy wins, so it shadows the honest one.
	forge := NodeShares{ID: 3, Lo: 0, Hi: 1, Vals: nil}
	proof, rep, err := Run(ctx, p, Options{
		Nodes: 8, FaultTolerance: 4, MaxErasures: 1, GatherGrace: 2 * time.Second,
		NewTransport: func(k int) Transport {
			return &forgingTransport{BroadcastBus: NewBroadcastBus(2 * k), forge: forge}
		},
	})
	if err != nil {
		t.Fatalf("quorum run with forged shape: %v", err)
	}
	// Node 3 must be erased (its only delivery was the forged shape);
	// the forged message also counted toward the quorum, so an honest
	// straggler may legitimately ride along in the missing set — the
	// budget covers it either way.
	erased3 := false
	for _, id := range rep.MissingNodes {
		erased3 = erased3 || id == 3
	}
	if !erased3 {
		t.Fatalf("MissingNodes = %v, want node 3 erased", rep.MissingNodes)
	}
	if err := proofsEqual(baseline, proof); err != nil {
		t.Fatalf("proof differs after absorbing forged shape: %v", err)
	}
	// Strict mode: typed refusal, not a panic, not a hang.
	_, _, err = Run(ctx, p, Options{
		Nodes: 8, FaultTolerance: 4,
		NewTransport: func(k int) Transport {
			return &forgingTransport{BroadcastBus: NewBroadcastBus(2 * k), forge: forge}
		},
	})
	if err == nil {
		t.Fatal("strict run accepted a malformed share shape")
	}
}

// TestForgedErrFrameIsDeliveryFaultInQuorumMode: an in-band error
// message is trusted in strict mode (fail loudly with the node's
// report) but in quorum mode the sender just contributed no shares —
// a delivery fault within budget, which also denies an unauthenticated
// network peer the one-frame kill switch of mailing a forged error.
func TestForgedErrFrameIsDeliveryFaultInQuorumMode(t *testing.T) {
	ctx := context.Background()
	p := testProblem()
	baseline, _, err := Run(ctx, p, Options{Nodes: 8, FaultTolerance: 4})
	if err != nil {
		t.Fatal(err)
	}
	forge := NodeShares{ID: 2, Err: errors.New("forged: the node is fine")}
	newTransport := func(k int) Transport {
		return &forgingTransport{BroadcastBus: NewBroadcastBus(2 * k), forge: forge}
	}
	// Quorum mode: the forged report erases node 2 at worst; the
	// honest copy of node 2's shares arrives later and may still win.
	proof, rep, err := Run(ctx, p, Options{
		Nodes: 8, FaultTolerance: 4, MaxErasures: 1, GatherGrace: 2 * time.Second,
		NewTransport: newTransport,
	})
	if err != nil {
		t.Fatalf("quorum run failed on a forged error report: %v", err)
	}
	if err := proofsEqual(baseline, proof); err != nil {
		t.Fatalf("proof differs: %v", err)
	}
	_ = rep
	// Strict mode: the report is trusted and fails the run.
	_, _, err = Run(ctx, p, Options{Nodes: 8, FaultTolerance: 4, NewTransport: newTransport})
	if err == nil || !strings.Contains(err.Error(), "forged: the node is fine") {
		t.Fatalf("strict run: err = %v, want the in-band report", err)
	}
}
