package core

// Binary serialization for NodeShares — the wire format that lets the
// prepare stage's one message kind cross a real socket. The design
// mirrors the proof format in encode.go: versioned magic, little-endian
// words, self-describing geometry. Unlike a proof, a share message is
// ephemeral and arrives from an untrusted network, so the decoder
// validates every claimed dimension against the bytes actually present
// *before* allocating — a malicious or corrupted frame must cost the
// collector an error, never gigabytes.
//
// Payload layout (every integer a little-endian uint64):
//
//	magic 'C' 'M' 'S' 2
//	id | from | round | lo | hi | elapsedNS
//	errLen | errLen bytes of in-band error text
//	nPrimes | width
//	nPrimes × width × (hi-lo) evaluation words, [prime][coord][point]
//
// Version 2 added the from and round words for the self-healing gather:
// a repair-round frame names its range owner (id) and the surviving
// sponsor that actually computed and sent it (from), and the round
// number lets the collector drop stale frames from earlier gathers.
// Version-1 frames are rejected with ErrBadFrame like any other
// unknown format — both ends of a run upgrade together.
//
// On the stream the payload travels length-prefixed (see WriteFrame /
// ReadFrame in frame.go): a uint32 little-endian byte count, then the
// payload. The prefix is what lets a reader recover message boundaries
// from a TCP byte stream; it carries no other meaning.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// sharesMagic guards against decoding unrelated bytes; the trailing
// byte is the format version.
var sharesMagic = [4]byte{'C', 'M', 'S', 2}

// ErrBadFrame is the typed rejection of a malformed NodeShares frame:
// wrong magic, implausible geometry, a size claim the received bytes
// cannot back, or an oversized length prefix. A reader that hits it
// must drop the connection — past a bad frame the stream cannot be
// trusted to be in sync.
var ErrBadFrame = errors.New("core: malformed NodeShares frame")

// RemoteError is a node-side evaluation failure reconstructed from its
// in-band wire form. Only the message survives the socket, not the
// original error type.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return e.Msg }

// Codec sanity bounds, matching the proof decoder's: a frame claiming
// more is rejected before any allocation.
const (
	maxCodecPrimes = 64
	maxCodecWidth  = 1 << 16
	maxCodecSpan   = 1 << 28 // points per node
	maxCodecErrLen = 1 << 16
)

// EncodeNodeShares serializes m into a fresh payload buffer (without
// the stream length prefix; WriteFrame adds it).
func EncodeNodeShares(m NodeShares) ([]byte, error) {
	span := m.Hi - m.Lo
	if span < 0 || span > maxCodecSpan {
		return nil, fmt.Errorf("core: encode shares node %d: bad range [%d,%d)", m.ID, m.Lo, m.Hi)
	}
	var errText string
	if m.Err != nil {
		errText = m.Err.Error()
		if len(errText) > maxCodecErrLen {
			errText = errText[:maxCodecErrLen]
		}
	}
	nPrimes := len(m.Vals)
	if nPrimes > maxCodecPrimes {
		return nil, fmt.Errorf("core: encode shares node %d: %d primes exceeds %d", m.ID, nPrimes, maxCodecPrimes)
	}
	width := 0
	if nPrimes > 0 {
		width = len(m.Vals[0])
	}
	if width > maxCodecWidth {
		return nil, fmt.Errorf("core: encode shares node %d: width %d exceeds %d", m.ID, width, maxCodecWidth)
	}
	for pi, coords := range m.Vals {
		if len(coords) != width {
			return nil, fmt.Errorf("core: encode shares node %d: prime %d has %d coords, want %d", m.ID, pi, len(coords), width)
		}
		for c, vals := range coords {
			if len(vals) != span {
				return nil, fmt.Errorf("core: encode shares node %d: prime %d coord %d has %d points, want %d", m.ID, pi, c, len(vals), span)
			}
		}
	}
	if m.From < 0 || m.Round < 0 {
		// The decoder rejects these as implausible, so encoding them
		// would produce a frame the format disowns.
		return nil, fmt.Errorf("core: encode shares node %d: negative from=%d or round=%d", m.ID, m.From, m.Round)
	}
	// 9 header words: id, from, round, lo, hi, elapsed, errLen, nPrimes, width.
	size := len(sharesMagic) + 8*9 + len(errText) + 8*nPrimes*width*span
	buf := make([]byte, 0, size)
	buf = append(buf, sharesMagic[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(m.ID)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(m.From)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(m.Round)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(m.Lo)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(m.Hi)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(m.Elapsed)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(errText)))
	buf = append(buf, errText...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(nPrimes))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(width))
	for _, coords := range m.Vals {
		for _, vals := range coords {
			for _, v := range vals {
				buf = binary.LittleEndian.AppendUint64(buf, v)
			}
		}
	}
	return buf, nil
}

// DecodeNodeShares parses one payload produced by EncodeNodeShares.
// Every failure wraps ErrBadFrame, and no allocation larger than the
// payload itself ever happens: each claimed dimension is checked
// against the remaining bytes first.
func DecodeNodeShares(data []byte) (NodeShares, error) {
	var m NodeShares
	rest, ok := ConsumeMagic(data, sharesMagic)
	if !ok {
		return m, fmt.Errorf("%w: bad magic/version", ErrBadFrame)
	}
	word := func() (uint64, bool) {
		if len(rest) < 8 {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(rest)
		rest = rest[8:]
		return v, true
	}
	var hdr [7]uint64 // id, from, round, lo, hi, elapsed, errLen
	for i := range hdr {
		v, ok := word()
		if !ok {
			return m, fmt.Errorf("%w: truncated header", ErrBadFrame)
		}
		hdr[i] = v
	}
	id, from, round := int64(hdr[0]), int64(hdr[1]), int64(hdr[2])
	lo, hi := int64(hdr[3]), int64(hdr[4])
	span := hi - lo
	// id/from/round stay strictly below 1<<31 so the int conversions
	// are exact even on 32-bit platforms; honest senders are 0..K-1 and
	// honest rounds are tiny.
	if id < 0 || id >= 1<<31 || from < 0 || from >= 1<<31 || round < 0 || round >= 1<<31 ||
		lo < 0 || hi < lo || span > maxCodecSpan {
		return m, fmt.Errorf("%w: implausible geometry id=%d from=%d round=%d range=[%d,%d)",
			ErrBadFrame, id, from, round, lo, hi)
	}
	errLen := hdr[6]
	if errLen > maxCodecErrLen || errLen > uint64(len(rest)) {
		return m, fmt.Errorf("%w: error text claims %d bytes, %d available", ErrBadFrame, errLen, len(rest))
	}
	var errText string
	if errLen > 0 {
		errText = string(rest[:errLen])
		rest = rest[errLen:]
	}
	nPrimes, ok := word()
	if !ok {
		return m, fmt.Errorf("%w: truncated prime count", ErrBadFrame)
	}
	width, ok := word()
	if !ok {
		return m, fmt.Errorf("%w: truncated width", ErrBadFrame)
	}
	if nPrimes > maxCodecPrimes || width > maxCodecWidth {
		return m, fmt.Errorf("%w: implausible shape primes=%d width=%d", ErrBadFrame, nPrimes, width)
	}
	if nPrimes == 0 && width != 0 {
		// With no primes there is nothing to be wide: the encoder
		// always writes width 0 here, so anything else is not a frame
		// it produced (keeping decode∘encode canonical).
		return m, fmt.Errorf("%w: width %d with no primes", ErrBadFrame, width)
	}
	// The whole body must be present, exactly: a short frame is
	// corruption, a long one a framing bug. Checking before allocating
	// bounds the decoder's memory by the bytes actually received.
	// (Bounds above keep this product far below overflow.)
	need := nPrimes * width * uint64(span) * 8
	if need != uint64(len(rest)) {
		return m, fmt.Errorf("%w: body claims %d bytes, frame carries %d", ErrBadFrame, need, len(rest))
	}
	m.ID = int(id)
	m.From = int(from)
	m.Round = int(round)
	m.Lo = int(lo)
	m.Hi = int(hi)
	m.Elapsed = time.Duration(int64(hdr[5]))
	if errLen > 0 {
		m.Err = &RemoteError{Msg: errText}
	}
	m.Vals = make([][][]uint64, nPrimes)
	for pi := range m.Vals {
		coords := make([][]uint64, width)
		for c := range coords {
			vals := make([]uint64, span)
			for j := range vals {
				vals[j] = binary.LittleEndian.Uint64(rest)
				rest = rest[8:]
			}
			coords[c] = vals
		}
		m.Vals[pi] = coords
	}
	return m, nil
}
