package core

// Tests for the self-healing gather: bounded repair rounds that turn a
// beyond-budget decode failure into latency. The scenarios here pin the
// mechanics the chaos harness exercises end to end — sponsor rotation
// across rounds, the typed refusal when rounds run out, the round
// filter against stale and replayed frames, and the boundary behavior
// of the helpers that cut missing ranges into repair work.

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"camelot/internal/rs"
)

// filterTransport drops messages matching a predicate on their way to
// the underlying bus — deterministic per-frame loss for exercising
// specific rounds.
type filterTransport struct {
	*BroadcastBus
	dropFn func(NodeShares) bool
}

func (t *filterTransport) Send(ctx context.Context, m NodeShares) error {
	if t.dropFn(m) {
		return nil
	}
	return t.BroadcastBus.Send(ctx, m)
}

// TestRepairSecondRound loses nodes 1 and 3 in round 0 (4 erasures vs
// budget 2) and then eats the entire first repair round too: the second
// round, with sponsors rotated to different survivors, must recover and
// the proof must be bit-identical to the fault-free run.
func TestRepairSecondRound(t *testing.T) {
	ctx := context.Background()
	p := testProblem()
	baseline, _, err := Run(ctx, p, Options{Nodes: 5, FaultTolerance: 1})
	if err != nil {
		t.Fatal(err)
	}
	proof, rep, err := Run(ctx, p, Options{
		Nodes: 5, FaultTolerance: 1,
		MaxErasures: 2, MaxRepairRounds: 2, GatherGrace: 100 * time.Millisecond,
		NewTransport: func(k int) Transport {
			return &filterTransport{
				BroadcastBus: NewBroadcastBus(k),
				dropFn: func(m NodeShares) bool {
					if m.Round == 0 {
						return m.ID == 1 || m.ID == 3
					}
					return m.Round == 1 // first repair round lost wholesale
				},
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RepairRounds != 2 {
		t.Fatalf("RepairRounds = %d, want 2", rep.RepairRounds)
	}
	if !sameInts(rep.RepairedNodes, []int{1, 3}) {
		t.Fatalf("RepairedNodes = %v, want [1 3]", rep.RepairedNodes)
	}
	if !sameInts(rep.MissingNodes, []int{}) {
		t.Fatalf("MissingNodes = %v, want none", rep.MissingNodes)
	}
	if err := proofsEqual(baseline, proof); err != nil {
		t.Fatalf("repaired proof differs from fault-free run: %v", err)
	}
}

// TestRepairExhaustedStaysTyped keeps eating every repair round: once
// MaxRepairRounds is spent the run must end in the same typed
// beyond-budget refusal a repair-disabled run produces — never a hang,
// never an untyped error.
func TestRepairExhaustedStaysTyped(t *testing.T) {
	p := testProblem()
	_, _, err := Run(context.Background(), p, Options{
		Nodes: 5, FaultTolerance: 1,
		MaxErasures: 2, MaxRepairRounds: 1, GatherGrace: 100 * time.Millisecond,
		NewTransport: func(k int) Transport {
			return &filterTransport{
				BroadcastBus: NewBroadcastBus(k),
				dropFn: func(m NodeShares) bool {
					return m.Round > 0 || m.ID == 1 || m.ID == 3
				},
			}
		},
	})
	if !errors.Is(err, rs.ErrDecodeFailure) {
		t.Fatalf("err = %v, want rs.ErrDecodeFailure", err)
	}
}

// TestRepairRequiresErasureMode pins the configuration guard: repair
// without erasure tolerance is a contradiction (a strict gather never
// produces a repairable missing set) and must be rejected up front.
func TestRepairRequiresErasureMode(t *testing.T) {
	_, _, err := Run(context.Background(), testProblem(), Options{
		Nodes: 3, MaxRepairRounds: 1,
	})
	if err == nil {
		t.Fatal("MaxRepairRounds without MaxErasures accepted")
	}
}

// replayTransport captures a frame the network "lost" in round 0 and
// replays it — values mutated — into the repair round's gather, still
// tagged Round 0. The round filter must treat it as noise.
type replayTransport struct {
	*BroadcastBus
	mu       sync.Mutex
	captured *NodeShares
}

func (t *replayTransport) Send(ctx context.Context, m NodeShares) error {
	if m.Round == 0 {
		if m.ID == 1 || m.ID == 3 {
			t.mu.Lock()
			if t.captured == nil {
				c := m
				t.captured = &c
			}
			t.mu.Unlock()
			return nil
		}
		return t.BroadcastBus.Send(ctx, m)
	}
	t.mu.Lock()
	c := t.captured
	t.captured = nil
	t.mu.Unlock()
	if c != nil {
		stale := *c
		stale.Vals[0][0][0] ^= 1 // corrupt: accepting it would poison the word
		if err := t.BroadcastBus.Send(ctx, stale); err != nil {
			return err
		}
	}
	return t.BroadcastBus.Send(ctx, m)
}

// TestRepairDropsMutatedStaleReplay replays a mutated round-0 frame
// into the repair round: the gather's round filter must drop it (it is
// node 1's delivery fault in round 0, not an arrival in round 1), the
// repair must still recover, and the proof must stay bit-identical.
func TestRepairDropsMutatedStaleReplay(t *testing.T) {
	ctx := context.Background()
	p := testProblem()
	baseline, _, err := Run(ctx, p, Options{Nodes: 5, FaultTolerance: 1})
	if err != nil {
		t.Fatal(err)
	}
	proof, rep, err := Run(ctx, p, Options{
		Nodes: 5, FaultTolerance: 1,
		MaxErasures: 2, MaxRepairRounds: 1, GatherGrace: 2 * time.Second,
		NewTransport: func(k int) Transport {
			return &replayTransport{BroadcastBus: NewBroadcastBus(k)}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sameInts(rep.RepairedNodes, []int{1, 3}) {
		t.Fatalf("RepairedNodes = %v, want [1 3]", rep.RepairedNodes)
	}
	if err := proofsEqual(baseline, proof); err != nil {
		t.Fatalf("stale replay leaked into the repaired proof: %v", err)
	}
}

// TestGatherQuorumDropsStaleRoundFrames drives the quorum loop directly
// with a mix of rounds: frames from any round but the requested one
// must not count toward the quorum, must not appear in the output, and
// must not satisfy the post-quorum drain.
func TestGatherQuorumDropsStaleRoundFrames(t *testing.T) {
	ch := make(chan NodeShares, 8)
	stale := NodeShares{ID: 1, Round: 0, Lo: 7} // a round-0 straggler
	ch <- stale
	ch <- NodeShares{ID: 0, Round: 1}
	ch <- NodeShares{ID: 1, Round: 1}
	ch <- NodeShares{ID: 0, Round: 2} // from a round that does not exist yet
	out, err := gatherQuorum(context.Background(), ch, GatherSpec{K: 2, Quorum: 2, Round: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("gather returned %d frames, want the 2 round-1 frames: %+v", len(out), out)
	}
	for _, m := range out {
		if m.Round != 1 {
			t.Fatalf("stale frame leaked through the round filter: %+v", m)
		}
	}

	// Stale frames alone must not arm the quorum: with sends concluded
	// the gather settles empty instead of counting them.
	ch2 := make(chan NodeShares, 4)
	ch2 <- stale
	ch2 <- NodeShares{ID: 0, Round: 0}
	done := make(chan struct{})
	close(done)
	out, err = gatherQuorum(context.Background(), ch2, GatherSpec{K: 2, Quorum: 2, Round: 1, SendsDone: done})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("round-0 frames counted into a round-1 gather: %+v", out)
	}
}

// TestCollectSharesDedupByNodeAndRound pins the collector's dedup key:
// the first copy of a (node, round) pair wins, later copies and other
// rounds' frames are skipped as if never delivered.
func TestCollectSharesDedupByNodeAndRound(t *testing.T) {
	msgs := []NodeShares{
		{ID: 0, Round: 1, Lo: 5},
		{ID: 0, Round: 1, Lo: 9}, // duplicate delivery: first copy wins
		{ID: 1, Round: 0, Lo: 2}, // stale round: not a delivery at all
		{ID: 1, Round: 1, Lo: 4},
	}
	delivered, missing, err := collectShares(msgs, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(delivered) != 2 || delivered[0].Lo != 5 || delivered[1].Lo != 4 {
		t.Fatalf("delivered = %+v, want first copies of nodes 0 and 1", delivered)
	}
	if len(missing) != 0 {
		t.Fatalf("missing = %v, want none", missing)
	}
	// Without the round-1 frame, node 1's stale round-0 copy must not
	// mask the loss.
	_, missing, err = collectShares(msgs[:3], 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !sameInts(missing, []int{1}) {
		t.Fatalf("missing = %v, want [1]", missing)
	}
}

// TestErasedPointsBoundaries pins the missing-node → erased-point
// expansion on an uneven assignment (10 points over 4 nodes: ranges
// [0,3) [3,6) [6,8) [8,10)).
func TestErasedPointsBoundaries(t *testing.T) {
	en := &engine{assign: NewPointAssignment(10, 4)}
	if got := en.erasedPoints(nil); got != nil {
		t.Fatalf("erasedPoints(nil) = %v, want nil", got)
	}
	if got, want := en.erasedPoints([]int{1, 3}), []int{3, 4, 5, 8, 9}; !reflect.DeepEqual(got, want) {
		t.Fatalf("erasedPoints([1 3]) = %v, want %v", got, want)
	}
	if got, want := en.erasedPoints([]int{2}), []int{6, 7}; !reflect.DeepEqual(got, want) {
		t.Fatalf("erasedPoints([2]) = %v, want %v", got, want)
	}
}

// TestCutRangeBoundaries pins the sub-chunk cutter on its edges: empty
// and inverted ranges, more parts than points, single points, and the
// no-split cases — plus the tiling invariant every cut must satisfy.
func TestCutRangeBoundaries(t *testing.T) {
	cases := []struct {
		lo, hi, parts int
		want          [][2]int
	}{
		{0, 10, 3, [][2]int{{0, 3}, {3, 6}, {6, 10}}},
		{0, 3, 8, [][2]int{{0, 1}, {1, 2}, {2, 3}}}, // parts clamp to width
		{5, 6, 4, [][2]int{{5, 6}}},                 // single point
		{4, 4, 2, nil},                              // empty range
		{7, 3, 2, nil},                              // inverted range
		{0, 10, 0, [][2]int{{0, 10}}},               // no split requested
		{0, 10, 1, [][2]int{{0, 10}}},
	}
	for _, tc := range cases {
		got := cutRange(tc.lo, tc.hi, tc.parts)
		if !reflect.DeepEqual(got, tc.want) {
			t.Fatalf("cutRange(%d, %d, %d) = %v, want %v", tc.lo, tc.hi, tc.parts, got, tc.want)
		}
		// Tiling: the pieces must cover [lo, hi) contiguously in order.
		at := tc.lo
		for _, c := range got {
			if c[0] != at || c[1] <= c[0] {
				t.Fatalf("cutRange(%d, %d, %d) does not tile: %v", tc.lo, tc.hi, tc.parts, got)
			}
			at = c[1]
		}
		if len(got) > 0 && at != tc.hi {
			t.Fatalf("cutRange(%d, %d, %d) stops at %d: %v", tc.lo, tc.hi, tc.parts, at, got)
		}
	}
}

// TestLossyDelayedCopyCannotStraddleRounds is the regression for the
// round-isolation contract: a delayed delivery accepted in round N whose
// Send context is cancelled when the round ends must be abandoned — it
// must not land on the bus where round N+1's gather would have to
// filter it.
func TestLossyDelayedCopyCannotStraddleRounds(t *testing.T) {
	bus := NewBroadcastBus(4)
	lt := NewLossyTransport(bus, LossyConfig{Seed: 5, DelayRate: 1, MaxDelay: time.Hour})
	// Fate is pure in (Seed, sender): assert the fixture actually
	// injects a delay long enough that cancellation races nothing.
	if _, _, delay := lt.fate(0); delay < time.Second {
		t.Fatalf("fixture: fate(0) delay %v too short for a deterministic test; pick another seed", delay)
	}
	roundCtx, cancelRound := context.WithCancel(context.Background())
	if err := lt.Send(roundCtx, NodeShares{ID: 0, Round: 0}); err != nil {
		t.Fatal(err)
	}
	cancelRound() // round 0's gather returned; the engine cancels its senders
	if err := lt.DrainSends(context.Background()); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-bus.ch:
		t.Fatalf("abandoned round-0 delivery reached the bus: %+v", m)
	default:
	}
	// The next round's traffic flows normally over the same bus (sent
	// directly: this fixture delays every lossy send by up to an hour).
	if err := bus.Send(context.Background(), NodeShares{ID: 0, From: 2, Round: 1}); err != nil {
		t.Fatal(err)
	}
	out, err := gatherQuorum(context.Background(), bus.ch, GatherSpec{K: 4, Quorum: 1, Round: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Round != 1 || out[0].Origin() != 2 {
		t.Fatalf("round-1 gather saw %+v, want the sponsor's frame alone", out)
	}
}

// progressObserver accumulates the Geometry total and PointsDone
// credits — the counters JobStatus.PointsDone/PointsTotal are built
// from at the session layer.
type progressObserver struct {
	nopObserver
	total atomic.Int64
	done  atomic.Int64
}

func (o *progressObserver) Geometry(points, nodes int) { o.total.Store(int64(points)) }
func (o *progressObserver) PointsDone(delta int)       { o.done.Add(int64(delta)) }

// TestRepairProgressNeverOverCredits pins the progress-accounting
// invariant PointsDone <= PointsTotal across a healed run. Round 0
// evaluates (and credits) every node's range but loses two broadcasts
// in transit; the repair round recomputes those ranges on sponsoring
// survivors — a second evaluation of already-credited points that must
// not be credited twice.
func TestRepairProgressNeverOverCredits(t *testing.T) {
	ctx := context.Background()
	p := testProblem()
	obs := &progressObserver{}
	_, rep, err := Run(ctx, p, Options{
		Nodes: 5, FaultTolerance: 1,
		MaxErasures: 2, MaxRepairRounds: 1, GatherGrace: 100 * time.Millisecond,
		Observer: obs,
		NewTransport: func(k int) Transport {
			return &filterTransport{
				BroadcastBus: NewBroadcastBus(k),
				dropFn: func(m NodeShares) bool {
					return m.Round == 0 && (m.ID == 1 || m.ID == 3)
				},
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RepairRounds != 1 {
		t.Fatalf("RepairRounds = %d, want 1 (fixture must force a repair)", rep.RepairRounds)
	}
	total, done := obs.total.Load(), obs.done.Load()
	if total <= 0 {
		t.Fatalf("Geometry announced %d points", total)
	}
	if done > total {
		t.Fatalf("PointsDone = %d exceeds PointsTotal = %d after repair: repair rounds double-credit progress", done, total)
	}
	if done < total {
		// Every range was eventually delivered (round 0 survivors plus
		// repaired ranges), so a healed run's progress should also be
		// complete — the clamp must not under-credit a full recovery.
		t.Fatalf("PointsDone = %d < PointsTotal = %d after full heal", done, total)
	}
}
