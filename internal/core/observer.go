package core

// Run observation: the engine reports coarse progress — stage
// transitions, evaluation units completed, live suspect counts — to an
// Options.Observer. The session layer's Job turns these callbacks into
// an inspectable Status; the hooks are deliberately cheap (a few atomic
// adds per chunk) so observation never perturbs the run.

// Stage identifies a protocol phase for progress observation.
type Stage int32

const (
	// StageQueued is the pre-run state (a submitted job not yet started).
	StageQueued Stage = iota
	// StagePrepare is protocol step 1: distributed encoded evaluation.
	StagePrepare
	// StageDecode is protocol step 2: per-node error correction.
	StageDecode
	// StageVerify is protocol step 3: randomized verification.
	StageVerify
	// StageDone is the terminal state (success or failure).
	StageDone
)

// String returns the stage name.
func (s Stage) String() string {
	switch s {
	case StageQueued:
		return "queued"
	case StagePrepare:
		return "prepare"
	case StageDecode:
		return "decode"
	case StageVerify:
		return "verify"
	case StageDone:
		return "done"
	}
	return "unknown"
}

// Observer receives engine progress callbacks. Implementations must be
// safe for concurrent calls: PointsDone and SuspectsFound arrive from
// many pool workers at once. All methods must be fast — they run on the
// engine's hot paths.
type Observer interface {
	// Geometry announces the resolved run shape before the first stage:
	// the total number of (point, prime) evaluation units the prepare
	// stage will compute, and the logical node count K.
	Geometry(points, nodes int)
	// StageStart marks a protocol stage transition.
	StageStart(s Stage)
	// PointsDone reports delta newly completed evaluation units.
	PointsDone(delta int)
	// SuspectsFound reports the current size of the union of suspect
	// node sets across the decoders that have finished so far.
	SuspectsFound(count int)
	// DeliveryFaults reports how many nodes' broadcasts never arrived,
	// once, when the prepare stage's gather resolves. Delivery faults
	// are a transport failure axis distinct from the content faults
	// SuspectsFound tracks: a missing node is erased, not suspected.
	DeliveryFaults(count int)
	// RepairRound announces the start of a self-healing gather round
	// (round counts from 1): the decode stage found the erasures beyond
	// budget and the listed nodes' point ranges are being re-assigned
	// to surviving nodes. The slice is the callback's to keep.
	RepairRound(round int, reassigned []int)
}

// nopObserver is the default when Options.Observer is nil.
type nopObserver struct{}

func (nopObserver) Geometry(int, int)      {}
func (nopObserver) StageStart(Stage)       {}
func (nopObserver) PointsDone(int)         {}
func (nopObserver) SuspectsFound(int)      {}
func (nopObserver) DeliveryFaults(int)     {}
func (nopObserver) RepairRound(int, []int) {}
