package core

// Shared frame-header plumbing for every versioned wire format this
// module speaks: the proof encoding ('CML'), the NodeShares share
// frames ('CMS'), and the control protocol ('CMC' in internal/ctrl).
// Each format owns its magic constant; the validation — and therefore
// the shape of a version bump (change the trailing byte, reject
// everything else) — lives in exactly one place, here.

import (
	"encoding/binary"
	"fmt"
	"io"
)

// ConsumeMagic checks data's leading 4 magic/version bytes against want
// and returns the remainder. ok is false when the bytes are short or
// differ — including a version byte from a different format revision;
// both ends of a deployment upgrade together, so an old-version frame
// is rejected exactly like unrelated bytes. Callers wrap the failure in
// their format's typed error (ErrBadFrame, ErrMalformedProof, ...).
func ConsumeMagic(data []byte, want [4]byte) (rest []byte, ok bool) {
	if len(data) < len(want) || [4]byte(data[:4]) != want {
		return nil, false
	}
	return data[4:], true
}

// maxFrameBytesHardCap bounds any frame regardless of configuration —
// a backstop against a misconfigured or hostile peer.
const maxFrameBytesHardCap = 1 << 30

// WriteFrame writes one length-prefixed payload to the stream: a
// uint32 little-endian byte count, then the payload. The prefix is what
// lets a reader recover message boundaries from a TCP byte stream; it
// carries no other meaning. Exported for the control protocol
// (internal/ctrl), which frames its messages the same way.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFrameBytesHardCap {
		return fmt.Errorf("core: frame payload %d bytes exceeds hard cap", len(payload))
	}
	var prefix [4]byte
	binary.LittleEndian.PutUint32(prefix[:], uint32(len(payload)))
	if _, err := w.Write(prefix[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed payload, rejecting claims above
// maxBytes (<= 0 or oversized falls back to the hard cap) with
// ErrBadFrame before allocating. io.EOF before the first prefix byte is
// a clean end of stream; a partial frame surfaces as
// io.ErrUnexpectedEOF (the connection died, not a protocol violation).
func ReadFrame(r io.Reader, maxBytes int) ([]byte, error) {
	var prefix [4]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(prefix[:])
	if maxBytes <= 0 || maxBytes > maxFrameBytesHardCap {
		maxBytes = maxFrameBytesHardCap
	}
	if n > uint32(maxBytes) {
		return nil, fmt.Errorf("%w: length prefix claims %d bytes, cap %d", ErrBadFrame, n, maxBytes)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return payload, nil
}
