package core

// Tests for the RLC batch verifier (ISSUE 6 tentpole c): agreement with
// the per-point audit path on valid and corrupted proofs, detection of
// evaluation-table tampering (which VerifyProof, reading only Coeffs,
// cannot see), determinism under a fixed seed, and the validation
// errors.

import (
	"context"
	"testing"
)

func batchTestProof(t *testing.T) (*polyProblem, *Proof) {
	t.Helper()
	p := &polyProblem{
		name:   "batch-fixture",
		coeffs: [][]int64{{5, 0, 3, 2}, {1, 4}, {7, 0, 0, 0, 11}},
		primes: 2,
		// Large primes keep the per-round soundness error
		// (W-1+max(d,e-1))/q around 2^-28, so the fixed-seed corruption
		// sweeps below cannot land on an accepting challenge.
		minQ: 1 << 31,
	}
	proof, rep, err := Run(context.Background(), p, Options{Nodes: 4, FaultTolerance: 1, Seed: 77})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rep.Verified {
		t.Fatal("fixture run did not verify")
	}
	return p, proof
}

func TestVerifyProofBatchAgreesOnValidProof(t *testing.T) {
	p, proof := batchTestProof(t)
	for seed := int64(0); seed < 20; seed++ {
		ok, err := VerifyProof(p, proof, 1, seed)
		if err != nil || !ok {
			t.Fatalf("VerifyProof(seed=%d) = %v, %v on a valid proof", seed, ok, err)
		}
		ok, err = VerifyProofBatch(proof, seed)
		if err != nil || !ok {
			t.Fatalf("VerifyProofBatch(seed=%d) = %v, %v on a valid proof", seed, ok, err)
		}
	}
}

func TestVerifyProofBatchAgreesOnCorruptedCoefficients(t *testing.T) {
	p, proof := batchTestProof(t)
	q := proof.Primes[0]
	// Tampering with a coefficient desynchronizes Coeffs from both the
	// input polynomial and the stored Evals: the audit path and the batch
	// check must both reject.
	proof.Coeffs[q][0][2] = (proof.Coeffs[q][0][2] + 1) % q
	for seed := int64(0); seed < 20; seed++ {
		ok, err := VerifyProof(p, proof, 1, seed)
		if err != nil {
			t.Fatalf("VerifyProof: %v", err)
		}
		if ok {
			t.Fatalf("VerifyProof(seed=%d) accepted a coefficient-corrupted proof", seed)
		}
		ok, err = VerifyProofBatch(proof, seed)
		if err != nil {
			t.Fatalf("VerifyProofBatch: %v", err)
		}
		if ok {
			t.Fatalf("VerifyProofBatch(seed=%d) accepted a coefficient-corrupted proof", seed)
		}
	}
}

func TestVerifyProofBatchCatchesEvalTampering(t *testing.T) {
	p, proof := batchTestProof(t)
	q := proof.Primes[len(proof.Primes)-1]
	proof.Evals[q][1][3] = (proof.Evals[q][1][3] + 1) % q
	// VerifyProof reads only Coeffs, so it still accepts — this is
	// exactly the gap the structural batch check closes at ingest.
	ok, err := VerifyProof(p, proof, 1, 9)
	if err != nil || !ok {
		t.Fatalf("VerifyProof = %v, %v (reads Coeffs only; should accept)", ok, err)
	}
	for seed := int64(0); seed < 20; seed++ {
		ok, err := VerifyProofBatch(proof, seed)
		if err != nil {
			t.Fatalf("VerifyProofBatch: %v", err)
		}
		if ok {
			t.Fatalf("VerifyProofBatch(seed=%d) accepted an eval-tampered proof", seed)
		}
	}
}

func TestVerifyProofBatchDeterministicPerSeed(t *testing.T) {
	_, proof := batchTestProof(t)
	for seed := int64(0); seed < 5; seed++ {
		a, err1 := VerifyProofBatch(proof, seed)
		b, err2 := VerifyProofBatch(proof, seed)
		if err1 != nil || err2 != nil || a != b {
			t.Fatalf("seed %d: VerifyProofBatch not deterministic (%v/%v, %v/%v)", seed, a, err1, b, err2)
		}
	}
}

func TestVerifyProofBatchValidation(t *testing.T) {
	_, proof := batchTestProof(t)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := VerifyProofBatchContext(ctx, proof, 1); err == nil {
		t.Fatal("expected context cancellation error")
	}

	q := proof.Primes[0]
	short := *proof
	short.Coeffs = map[uint64][][]uint64{q: proof.Coeffs[q][:1]}
	short.Primes = []uint64{q}
	if _, err := VerifyProofBatch(&short, 1); err == nil {
		t.Fatal("expected row-count validation error")
	}

	missing := *proof
	missing.Primes = append(append([]uint64{}, proof.Primes...), 1048583)
	if _, err := VerifyProofBatch(&missing, 1); err == nil {
		t.Fatal("expected missing-modulus error")
	}

	scattered := *proof
	scattered.Points = append([]uint64{}, proof.Points...)
	scattered.Points[0] = 500
	if _, err := VerifyProofBatch(&scattered, 1); err == nil {
		t.Fatal("expected non-consecutive-points error")
	}
}
