package matrix

import (
	"math/rand"
	"testing"

	"camelot/internal/ff"
)

var testField = ff.Must(1000003)

// mulReference is a textbook triple loop with per-step reduction.
func mulReference(a, b *Matrix) *Matrix {
	out := New(a.F, a.R, b.C)
	for i := 0; i < a.R; i++ {
		for j := 0; j < b.C; j++ {
			acc := uint64(0)
			for k := 0; k < a.C; k++ {
				acc = a.F.Add(acc, a.F.Mul(a.At(i, k), b.At(k, j)))
			}
			out.Set(i, j, acc)
		}
	}
	return out
}

func TestMulMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {2, 3, 4}, {7, 7, 7}, {16, 5, 9}, {33, 33, 33}, {64, 64, 64},
	}
	for _, sh := range shapes {
		a := Rand(testField, sh.m, sh.k, rng)
		b := Rand(testField, sh.k, sh.n, rng)
		if got, want := a.Mul(b), mulReference(a, b); !got.Equal(want) {
			t.Fatalf("Mul mismatch at %dx%dx%d", sh.m, sh.k, sh.n)
		}
	}
}

func TestMulLargeModulusPath(t *testing.T) {
	// q >= 2^31 exercises the non-lazy kernel.
	f := ff.Must((1 << 61) - 1)
	rng := rand.New(rand.NewSource(3))
	a := Rand(f, 20, 20, rng)
	b := Rand(f, 20, 20, rng)
	if got, want := a.Mul(b), mulReference(a, b); !got.Equal(want) {
		t.Fatal("large-modulus Mul mismatch")
	}
}

func TestStrassenMatchesClassic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{129, 150, 200} {
		a := Rand(testField, n, n, rng)
		b := Rand(testField, n, n, rng)
		got := a.Mul(b)         // Strassen path (n >= cutoff)
		want := a.mulClassic(b) // direct kernel
		if !got.Equal(want) {
			t.Fatalf("Strassen mismatch at n=%d", n)
		}
	}
}

func TestMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for incompatible shapes")
		}
	}()
	a := New(testField, 2, 3)
	b := New(testField, 2, 3)
	a.Mul(b)
}

func TestAddSubHadamard(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := Rand(testField, 8, 8, rng)
	b := Rand(testField, 8, 8, rng)
	sum := a.Add(b)
	if !sum.Sub(b).Equal(a) {
		t.Fatal("(a+b)-b != a")
	}
	h := a.Hadamard(b)
	for i := range h.A {
		if h.A[i] != testField.Mul(a.A[i], b.A[i]) {
			t.Fatal("hadamard entry mismatch")
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := Rand(testField, 5, 9, rng)
	if !a.Transpose().Transpose().Equal(a) {
		t.Fatal("transpose not an involution")
	}
	if a.Transpose().R != 9 || a.Transpose().C != 5 {
		t.Fatal("transpose shape wrong")
	}
}

func TestDotAllAndTrace(t *testing.T) {
	a, err := FromSlice(testField, 2, 2, []uint64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromSlice(testField, 2, 2, []uint64{5, 6, 7, 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.DotAll(b); got != 5+12+21+32 {
		t.Fatalf("DotAll = %d, want 70", got)
	}
	if got := a.Trace(); got != 5 {
		t.Fatalf("Trace = %d, want 5", got)
	}
}

func TestDotAllMatchesMulTrace(t *testing.T) {
	// Σ_ij (A·B)_ij C_ij == DotAll(A·B, C): sanity glue used by the
	// (6,2)-form code paths.
	rng := rand.New(rand.NewSource(7))
	a := Rand(testField, 12, 12, rng)
	b := Rand(testField, 12, 12, rng)
	c := Rand(testField, 12, 12, rng)
	ab := a.Mul(b)
	want := uint64(0)
	for i := 0; i < 12; i++ {
		for j := 0; j < 12; j++ {
			want = testField.Add(want, testField.Mul(ab.At(i, j), c.At(i, j)))
		}
	}
	if got := ab.DotAll(c); got != want {
		t.Fatal("DotAll mismatch")
	}
}

func TestFromSliceValidation(t *testing.T) {
	if _, err := FromSlice(testField, 2, 2, []uint64{1, 2, 3}); err == nil {
		t.Fatal("want error for wrong data length")
	}
}

func TestScale(t *testing.T) {
	a, _ := FromSlice(testField, 1, 3, []uint64{1, 2, 3})
	s := a.Scale(10)
	for i, want := range []uint64{10, 20, 30} {
		if s.A[i] != want {
			t.Fatalf("Scale: %v", s.A)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(testField, 2, 2)
	b := a.Clone()
	b.Set(0, 0, 9)
	if a.At(0, 0) != 0 {
		t.Fatal("clone shares storage")
	}
}

func BenchmarkMulClassic64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := Rand(testField, 64, 64, rng)
	y := Rand(testField, 64, 64, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Mul(y)
	}
}

func BenchmarkMulStrassen256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := Rand(testField, 256, 256, rng)
	y := Rand(testField, 256, 256, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Mul(y)
	}
}
