// Package matrix implements dense matrices over a prime field Z_q with
// the multiplication kernels the Camelot clique/triangle/Tutte algorithms
// depend on: cache-blocked classical multiplication with lazy modular
// reduction, Strassen's recursion above a cutoff (the practical stand-in
// for "fast matrix multiplication" with ω = log2 7), and a row-parallel
// driver. Everything is deterministic and allocation-conscious: the
// (6,2)-linear-form evaluator of paper §4.2 relies on products staying in
// O(N²) space.
package matrix

import (
	"fmt"
	"math/rand"

	"camelot/internal/ff"
)

// strassenCutoff is the dimension above which Strassen recursion pays for
// itself (classical kernel below).
const strassenCutoff = 128

// Matrix is a rows×cols matrix over Z_q in row-major order.
type Matrix struct {
	R, C int
	F    ff.Field
	A    []uint64 // len R*C, canonical residues
}

// New returns a zero rows×cols matrix over f.
func New(f ff.Field, rows, cols int) *Matrix {
	return &Matrix{R: rows, C: cols, F: f, A: make([]uint64, rows*cols)}
}

// FromSlice wraps row-major data (reduced mod q) into a matrix.
func FromSlice(f ff.Field, rows, cols int, data []uint64) (*Matrix, error) {
	if len(data) != rows*cols {
		return nil, fmt.Errorf("matrix: %d entries for %dx%d", len(data), rows, cols)
	}
	m := New(f, rows, cols)
	for i, v := range data {
		m.A[i] = v % f.Q
	}
	return m, nil
}

// Rand returns a matrix with uniform entries, for tests and benches.
func Rand(f ff.Field, rows, cols int, rng *rand.Rand) *Matrix {
	m := New(f, rows, cols)
	for i := range m.A {
		m.A[i] = rng.Uint64() % f.Q
	}
	return m
}

// At returns entry (i, j).
func (m *Matrix) At(i, j int) uint64 { return m.A[i*m.C+j] }

// Set assigns entry (i, j), reducing mod q.
func (m *Matrix) Set(i, j int, v uint64) { m.A[i*m.C+j] = v % m.F.Q }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := New(m.F, m.R, m.C)
	copy(out.A, m.A)
	return out
}

// Equal reports entry-wise equality.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.R != o.R || m.C != o.C {
		return false
	}
	for i := range m.A {
		if m.A[i] != o.A[i] {
			return false
		}
	}
	return true
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.F, m.C, m.R)
	for i := 0; i < m.R; i++ {
		for j := 0; j < m.C; j++ {
			out.A[j*m.R+i] = m.A[i*m.C+j]
		}
	}
	return out
}

// Add returns m + o.
func (m *Matrix) Add(o *Matrix) *Matrix {
	m.mustSameShape(o)
	out := New(m.F, m.R, m.C)
	for i := range m.A {
		out.A[i] = m.F.Add(m.A[i], o.A[i])
	}
	return out
}

// Sub returns m - o.
func (m *Matrix) Sub(o *Matrix) *Matrix {
	m.mustSameShape(o)
	out := New(m.F, m.R, m.C)
	for i := range m.A {
		out.A[i] = m.F.Sub(m.A[i], o.A[i])
	}
	return out
}

// Hadamard returns the entry-wise product m ∘ o.
func (m *Matrix) Hadamard(o *Matrix) *Matrix {
	m.mustSameShape(o)
	k := m.F.Kernel()
	out := New(m.F, m.R, m.C)
	for i := range m.A {
		out.A[i] = ff.MulK(m.A[i], o.A[i], k)
	}
	return out
}

// Scale returns c·m.
func (m *Matrix) Scale(c uint64) *Matrix {
	k := m.F.Kernel()
	cs := k.Shift(c)
	out := New(m.F, m.R, m.C)
	for i := range m.A {
		out.A[i] = ff.MulKS(m.A[i], cs, k)
	}
	return out
}

// DotAll returns Σ_ij m[i][j]·o[i][j] — the final contraction of the
// Nešetřil–Poljak and new-circuit designs.
func (m *Matrix) DotAll(o *Matrix) uint64 {
	m.mustSameShape(o)
	k := m.F.Kernel()
	acc := uint64(0)
	for i := range m.A {
		acc = m.F.Add(acc, ff.MulK(m.A[i], o.A[i], k))
	}
	return acc
}

// Trace returns Σ_i m[i][i].
func (m *Matrix) Trace() uint64 {
	if m.R != m.C {
		panic("matrix: trace of non-square matrix")
	}
	acc := uint64(0)
	for i := 0; i < m.R; i++ {
		acc = m.F.Add(acc, m.At(i, i))
	}
	return acc
}

func (m *Matrix) mustSameShape(o *Matrix) {
	if m.R != o.R || m.C != o.C || m.F.Q != o.F.Q {
		panic(fmt.Sprintf("matrix: shape/field mismatch %dx%d/%d vs %dx%d/%d",
			m.R, m.C, m.F.Q, o.R, o.C, o.F.Q))
	}
}

// Mul returns m·o, choosing Strassen for large square-ish inputs and the
// blocked classical kernel otherwise.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if m.C != o.R {
		panic(fmt.Sprintf("matrix: cannot multiply %dx%d by %dx%d", m.R, m.C, o.R, o.C))
	}
	if m.R >= strassenCutoff && m.C >= strassenCutoff && o.C >= strassenCutoff {
		return m.mulStrassen(o)
	}
	return m.mulClassic(o)
}

// mulClassic is an ikj-ordered kernel with lazy reduction: products are
// accumulated raw in uint64 and reduced only when another addition could
// overflow, which needs q < 2^31 to guarantee safety; otherwise entries
// are reduced every step.
func (m *Matrix) mulClassic(o *Matrix) *Matrix {
	out := New(m.F, m.R, o.C)
	f := m.F
	if f.Q < 1<<31 {
		// (q-1)^2 < 2^62; at least 4 raw products fit before overflow, so
		// reduce every `lazy` accumulations.
		lazy := int((^uint64(0)) / ((f.Q - 1) * (f.Q - 1)))
		row := make([]uint64, o.C)
		for i := 0; i < m.R; i++ {
			for j := range row {
				row[j] = 0
			}
			pending := 0
			for k := 0; k < m.C; k++ {
				a := m.A[i*m.C+k]
				if a == 0 {
					continue
				}
				ork := o.A[k*o.C:]
				for j := 0; j < o.C; j++ {
					row[j] += a * ork[j]
				}
				pending++
				if pending == lazy {
					for j := range row {
						row[j] %= f.Q
					}
					pending = 0
				}
			}
			outRow := out.A[i*o.C:]
			for j := 0; j < o.C; j++ {
				outRow[j] = row[j] % f.Q
			}
		}
		return out
	}
	fk := f.Kernel()
	for i := 0; i < m.R; i++ {
		for k := 0; k < m.C; k++ {
			a := m.A[i*m.C+k]
			if a == 0 {
				continue
			}
			as := fk.Shift(a)
			ork := o.A[k*o.C:]
			outRow := out.A[i*o.C:]
			for j := 0; j < o.C; j++ {
				outRow[j] = f.Add(outRow[j], ff.MulKS(ork[j], as, fk))
			}
		}
	}
	return out
}

// mulStrassen pads to even dimensions and recurses with seven products.
func (m *Matrix) mulStrassen(o *Matrix) *Matrix {
	n := m.R
	if m.C > n {
		n = m.C
	}
	if o.C > n {
		n = o.C
	}
	if n%2 == 1 {
		n++
	}
	a := m.padTo(n, n)
	b := o.padTo(n, n)
	c := strassenRec(a, b)
	return c.cropTo(m.R, o.C)
}

func (m *Matrix) padTo(r, c int) *Matrix {
	if m.R == r && m.C == c {
		return m
	}
	out := New(m.F, r, c)
	for i := 0; i < m.R; i++ {
		copy(out.A[i*c:i*c+m.C], m.A[i*m.C:(i+1)*m.C])
	}
	return out
}

func (m *Matrix) cropTo(r, c int) *Matrix {
	if m.R == r && m.C == c {
		return m
	}
	out := New(m.F, r, c)
	for i := 0; i < r; i++ {
		copy(out.A[i*c:(i+1)*c], m.A[i*m.C:i*m.C+c])
	}
	return out
}

func (m *Matrix) quadrants() (a11, a12, a21, a22 *Matrix) {
	h := m.R / 2
	w := m.C / 2
	get := func(r0, c0 int) *Matrix {
		q := New(m.F, h, w)
		for i := 0; i < h; i++ {
			copy(q.A[i*w:(i+1)*w], m.A[(r0+i)*m.C+c0:(r0+i)*m.C+c0+w])
		}
		return q
	}
	return get(0, 0), get(0, w), get(h, 0), get(h, w)
}

func assemble(c11, c12, c21, c22 *Matrix) *Matrix {
	h, w := c11.R, c11.C
	out := New(c11.F, 2*h, 2*w)
	for i := 0; i < h; i++ {
		copy(out.A[i*2*w:i*2*w+w], c11.A[i*w:(i+1)*w])
		copy(out.A[i*2*w+w:(i+1)*2*w], c12.A[i*w:(i+1)*w])
		copy(out.A[(h+i)*2*w:(h+i)*2*w+w], c21.A[i*w:(i+1)*w])
		copy(out.A[(h+i)*2*w+w:(h+i+1)*2*w], c22.A[i*w:(i+1)*w])
	}
	return out
}

func strassenRec(a, b *Matrix) *Matrix {
	if a.R <= strassenCutoff || a.R%2 == 1 {
		return a.mulClassic(b)
	}
	a11, a12, a21, a22 := a.quadrants()
	b11, b12, b21, b22 := b.quadrants()
	m1 := strassenRec(a11.Add(a22), b11.Add(b22))
	m2 := strassenRec(a21.Add(a22), b11)
	m3 := strassenRec(a11, b12.Sub(b22))
	m4 := strassenRec(a22, b21.Sub(b11))
	m5 := strassenRec(a11.Add(a12), b22)
	m6 := strassenRec(a21.Sub(a11), b11.Add(b12))
	m7 := strassenRec(a12.Sub(a22), b21.Add(b22))
	c11 := m1.Add(m4).Sub(m5).Add(m7)
	c12 := m3.Add(m5)
	c21 := m2.Add(m4)
	c22 := m1.Sub(m2).Add(m3).Add(m6)
	return assemble(c11, c12, c21, c22)
}
