// Package chromatic implements the paper's Theorem 6: a Camelot algorithm
// computing the chromatic polynomial of an n-vertex graph with proof size
// and per-node time O*(2^{n/2}), against the O*(2^n)-time sequential
// baseline. The proof polynomial instantiates the §7 partitioning
// template with f = the independent-set indicator (§9.1); the node
// function aggregates contributions across the (E, B) vertex cut with
// zeta transforms (§9.2).
package chromatic

import (
	"fmt"
	"math/big"

	"camelot/internal/bipoly"
	"camelot/internal/core"
	"camelot/internal/crt"
	"camelot/internal/ff"
	"camelot/internal/graph"
	"camelot/internal/interp"
	"camelot/internal/partition"
	"camelot/internal/plan"
	"camelot/internal/yates"
)

// Problem is the Camelot chromatic-polynomial problem. It is
// vector-valued: coordinate t-1 carries the proof polynomial for the
// t-color partitioning sum-product, t = 1..n+1, all sharing one node
// function per evaluation point.
type Problem struct {
	g     *graph.Graph
	n     int
	split partition.Split

	// masks holds the x0- and q-independent independent-set structure
	// of the cut, built once at construction; see maskPlan.
	masks maskPlan
}

var _ core.Problem = (*Problem)(nil)
var _ core.CompiledProblem = (*Problem)(nil)

// NewProblem builds the Theorem 6 problem for a simple graph.
func NewProblem(g *graph.Graph) (*Problem, error) {
	n := g.N()
	if n < 1 || n > 50 {
		return nil, fmt.Errorf("chromatic: n = %d out of supported range [1, 50]", n)
	}
	p := &Problem{g: g, n: n, split: partition.Balanced(n)}
	p.buildMasks()
	return p, nil
}

// Name implements core.Problem.
func (p *Problem) Name() string { return fmt.Sprintf("chromatic(n=%d,m=%d)", p.n, p.g.M()) }

// Width implements core.Problem: one coordinate per color count 1..n+1.
func (p *Problem) Width() int { return p.n + 1 }

// Degree implements core.Problem.
func (p *Problem) Degree() int { return p.split.Degree() }

// MinModulus implements core.Problem: above the proof degree, floored
// at 2^20 to keep the CRT prime count low.
func (p *Problem) MinModulus() uint64 {
	min := uint64(p.split.Degree()) + 2
	if min < 1<<20 {
		min = 1 << 20
	}
	return min
}

// NumPrimes implements core.Problem: χ_G(t) <= (n+1)^n over the grid.
func (p *Problem) NumPrimes() int {
	bound := new(big.Int).Exp(big.NewInt(int64(p.n)+1), big.NewInt(int64(p.n)), nil)
	bits := bound.BitLen()
	per := new(big.Int).SetUint64(p.MinModulus()).BitLen() - 1
	if per < 1 {
		per = 1
	}
	np := (bits + per - 1) / per
	if np < 1 {
		np = 1
	}
	return np
}

// nodeG computes the §9.2 node function in O*(2^{n/2}): a zeta transform
// over the B-side independent sets, neighborhood lookups across the cut,
// and a zeta transform over the E side.
func (p *Problem) nodeG(f ff.Field, x0 uint64) []bipoly.Poly {
	ring := p.split.Ring(f)
	ne := len(p.split.E)
	nb := len(p.split.B)
	xp := p.split.NewXPowers(f, x0)
	fullB := uint64(1)<<uint(nb) - 1

	// fB(X) for X ⊆ B: w_B^{|X|} x0^{ΣX} if X independent, else 0.
	gB := make([]bipoly.Poly, 1<<uint(nb))
	for bm := uint64(0); bm <= fullB; bm++ {
		if p.g.IsIndependentMask(bm << uint(ne)) {
			gB[bm] = ring.Monomial(0, popcount(bm), xp.ForMask(bm))
		}
	}
	// gB = zeta(fB) over the B lattice.
	yates.Zeta(nb, gB, ring.AddInPlace)

	// f̂E(X) for X ⊆ E: w_E^{|X|} · gB(B \ Γ_{G,B}(X)) if X independent.
	g := make([]bipoly.Poly, 1<<uint(ne))
	for em := uint64(0); em < 1<<uint(ne); em++ {
		if !p.g.IsIndependentMask(em) {
			continue
		}
		nbrB := (p.g.NeighborhoodMask(em) >> uint(ne)) & fullB
		g[em] = ring.MulMonomial(gB[fullB&^nbrB], popcount(em), 0, 1)
	}
	// g = zeta(f̂E) over the E lattice.
	yates.Zeta(ne, g, ring.AddInPlace)
	return g
}

// Evaluate implements core.Problem: (P_1(x0), ..., P_{n+1}(x0)) mod q,
// with incremental powers sharing the node function across all t.
func (p *Problem) Evaluate(q, x0 uint64) ([]uint64, error) {
	f, err := ff.New(q)
	if err != nil {
		return nil, err
	}
	g := p.nodeG(f, x0)
	return p.split.EvaluateAll(p.split.Ring(f), g, p.n+1)
}

// maskPlan is the evaluation-point-independent (and modulus-
// independent) part of nodeG: which subsets of each side of the cut are
// independent sets, their sizes, and — for the E side — the gB table
// index B \ Γ(X) the cross-cut lookup reads. Evaluate rediscovers this
// per point with IsIndependentMask/NeighborhoodMask bit scans; the
// compiled plan reuses the construction-time tables for every point of
// every block of every prime.
type maskPlan struct {
	b []bMask
	e []eMask
}

type bMask struct {
	mask uint64 // X ⊆ B, independent (B-local bits)
	pop  int
}

type eMask struct {
	mask uint64 // X ⊆ E, independent
	comp uint64 // fullB &^ (Γ(X) ∩ B): the gB index read for X
	pop  int
}

func (p *Problem) buildMasks() {
	ne := len(p.split.E)
	nb := len(p.split.B)
	fullB := uint64(1)<<uint(nb) - 1
	for bm := uint64(0); bm <= fullB; bm++ {
		if p.g.IsIndependentMask(bm << uint(ne)) {
			p.masks.b = append(p.masks.b, bMask{mask: bm, pop: popcount(bm)})
		}
	}
	for em := uint64(0); em < 1<<uint(ne); em++ {
		if !p.g.IsIndependentMask(em) {
			continue
		}
		nbrB := (p.g.NeighborhoodMask(em) >> uint(ne)) & fullB
		p.masks.e = append(p.masks.e, eMask{mask: em, comp: fullB &^ nbrB, pop: popcount(em)})
	}
}

// compiled is the chromatic Plan for one prime: the construction-time
// mask tables bound to the field and its ring. All per-point state (x0
// powers, the gB and g lattices) is allocated inside EvaluateBlock, so
// one compiled plan serves concurrent chunk tasks.
type compiled struct {
	p    *Problem
	f    ff.Field
	ring bipoly.Ring
}

// Compile implements plan.Compiler: the independent-set scan of both
// lattice sides — 2^{|E|} + 2^{|B|} mask/neighborhood probes per point
// on the plain path — is hoisted out, so each point of a block runs
// only the field-dependent work (x0 powers, zeta transforms, the
// template's incremental t-powers). Arithmetic order is identical to
// Evaluate, so results agree bit for bit (the equivalence test
// cross-checks the two paths; the verification stage re-evaluates
// through Evaluate either way).
func (p *Problem) Compile(f ff.Field) (plan.Plan, error) {
	return &compiled{p: p, f: f, ring: p.split.Ring(f)}, nil
}

// EvaluateBlock implements plan.Plan.
func (c *compiled) EvaluateBlock(xs []uint64) ([][]uint64, error) {
	p := c.p
	ne := len(p.split.E)
	nb := len(p.split.B)
	rows := make([][]uint64, len(xs))
	for i, x0 := range xs {
		xp := p.split.NewXPowers(c.f, x0)
		gB := make([]bipoly.Poly, 1<<uint(nb))
		for _, m := range p.masks.b {
			gB[m.mask] = c.ring.Monomial(0, m.pop, xp.ForMask(m.mask))
		}
		yates.Zeta(nb, gB, c.ring.AddInPlace)
		g := make([]bipoly.Poly, 1<<uint(ne))
		for _, m := range p.masks.e {
			g[m.mask] = c.ring.MulMonomial(gB[m.comp], m.pop, 0, 1)
		}
		yates.Zeta(ne, g, c.ring.AddInPlace)
		row, err := p.split.EvaluateAll(c.ring, g, p.n+1)
		if err != nil {
			return nil, err
		}
		rows[i] = row
	}
	return rows, nil
}

// Values recovers the chromatic polynomial values χ_G(t) for
// t = 1..n+1 from a decoded proof: coordinate t-1's coefficient at the
// template target index, CRT'd over the primes.
func (p *Problem) Values(proof *core.Proof) ([]*big.Int, error) {
	idx := p.split.TargetIndex()
	out := make([]*big.Int, p.n+1)
	residues := make([]uint64, len(proof.Primes))
	for t := 1; t <= p.n+1; t++ {
		for i, q := range proof.Primes {
			residues[i] = proof.Coeffs[q][t-1][idx]
		}
		v, err := crt.Reconstruct(residues, proof.Primes)
		if err != nil {
			return nil, fmt.Errorf("chromatic: t=%d: %w", t, err)
		}
		out[t-1] = v
	}
	return out, nil
}

// Coefficients recovers the chromatic polynomial's integer coefficients
// (degree n, so n+1 coefficients c_0..c_n with χ_G(t) = Σ c_k t^k) by
// exact interpolation through the grid values.
func (p *Problem) Coefficients(proof *core.Proof) ([]*big.Int, error) {
	values, err := p.Values(proof)
	if err != nil {
		return nil, err
	}
	points := make([]int64, p.n+1)
	for i := range points {
		points[i] = int64(i + 1)
	}
	coeffs, err := interp.LagrangeInt(points, values)
	if err != nil {
		return nil, fmt.Errorf("chromatic: %w", err)
	}
	return coeffs, nil
}

func popcount(x uint64) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

// --- Sequential baselines ----------------------------------------------------

// CountColoringsBrute counts proper t-colorings by enumerating all t^n
// assignments — the tiny-graph ground truth.
func CountColoringsBrute(g *graph.Graph, t int) *big.Int {
	n := g.N()
	count := big.NewInt(0)
	one := big.NewInt(1)
	colors := make([]int, n)
	var rec func(v int)
	rec = func(v int) {
		if v == n {
			count.Add(count, one)
			return
		}
		for c := 0; c < t; c++ {
			ok := true
			for u := 0; u < v; u++ {
				if colors[u] == c && g.HasEdge(u, v) {
					ok = false
					break
				}
			}
			if ok {
				colors[v] = c
				rec(v + 1)
			}
		}
	}
	rec(0)
	return count
}

// DeletionContraction computes the chromatic polynomial coefficients via
// the classical recursion χ(G) = χ(G-e) - χ(G/e): exponential in m but
// exact, the cross-check oracle for small graphs.
func DeletionContraction(g *graph.Graph) []*big.Int {
	adj := make(map[[2]int]bool)
	for _, e := range g.Edges() {
		adj[[2]int{e[0], e[1]}] = true
	}
	return chromaticRec(g.N(), adj)
}

// chromaticRec works on a vertex count and a normalized (u<v) edge set.
func chromaticRec(n int, edges map[[2]int]bool) []*big.Int {
	if len(edges) == 0 {
		// x^n
		coeffs := make([]*big.Int, n+1)
		for i := range coeffs {
			coeffs[i] = big.NewInt(0)
		}
		coeffs[n] = big.NewInt(1)
		return coeffs
	}
	// Pick any edge.
	var e [2]int
	for k := range edges {
		e = k
		break
	}
	// Deletion.
	del := make(map[[2]int]bool, len(edges)-1)
	for k := range edges {
		if k != e {
			del[k] = true
		}
	}
	dc := chromaticRec(n, del)
	// Contraction: merge e[1] into e[0], relabel vertices > e[1] down by 1,
	// dropping duplicate edges and the loop.
	con := make(map[[2]int]bool)
	relabel := func(v int) int {
		switch {
		case v == e[1]:
			v = e[0]
		case v > e[1]:
			v--
		}
		return v
	}
	for k := range edges {
		if k == e {
			continue
		}
		u, v := relabel(k[0]), relabel(k[1])
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		con[[2]int{u, v}] = true
	}
	cc := chromaticRec(n-1, con)
	out := make([]*big.Int, n+1)
	for i := range out {
		out[i] = big.NewInt(0)
		if i < len(dc) {
			out[i].Set(dc[i])
		}
		if i < len(cc) {
			out[i].Sub(out[i], cc[i])
		}
	}
	return out
}
