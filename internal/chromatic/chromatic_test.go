package chromatic

import (
	"context"
	"math/big"
	"testing"

	"camelot/internal/core"
	"camelot/internal/ff"
	"camelot/internal/graph"
	"camelot/internal/interp"
)

func TestDeletionContractionKnownPolynomials(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		// coefficients c_0..c_n of χ(t)
		want []int64
	}{
		// Triangle: t(t-1)(t-2) = t^3 - 3t^2 + 2t.
		{"K3", graph.Complete(3), []int64{0, 2, -3, 1}},
		// Path on 3 vertices: t(t-1)^2 = t^3 - 2t^2 + t.
		{"P3", graph.Path(3), []int64{0, 1, -2, 1}},
		// Single vertex: t.
		{"K1", graph.New(1), []int64{0, 1}},
		// C4: (t-1)^4 + (t-1) = t^4 -4t^3 +6t^2 -3t.
		{"C4", graph.Cycle(4), []int64{0, -3, 6, -4, 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := DeletionContraction(tt.g)
			if len(got) != len(tt.want) {
				t.Fatalf("got %d coefficients, want %d", len(got), len(tt.want))
			}
			for i, w := range tt.want {
				if got[i].Cmp(big.NewInt(w)) != 0 {
					t.Fatalf("c_%d = %v, want %d", i, got[i], w)
				}
			}
		})
	}
}

func TestDeletionContractionMatchesBrute(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := graph.Gnp(6, 0.5, seed)
		coeffs := DeletionContraction(g)
		for _, tc := range []int64{1, 2, 3, 4} {
			want := CountColoringsBrute(g, int(tc))
			got := interp.EvalInt(coeffs, big.NewInt(tc))
			if got.Cmp(want) != 0 {
				t.Fatalf("seed %d t=%d: DC=%v brute=%v", seed, tc, got, want)
			}
		}
	}
}

func TestCamelotChromaticMatchesDeletionContraction(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"gnp8":    graph.Gnp(8, 0.4, 1),
		"cycle7":  graph.Cycle(7),
		"k5":      graph.Complete(5),
		"path6":   graph.Path(6),
		"sparse9": graph.Gnp(9, 0.25, 2),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			p, err := NewProblem(g)
			if err != nil {
				t.Fatal(err)
			}
			proof, rep, err := core.Run(context.Background(), p, core.Options{Nodes: 4, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Verified {
				t.Fatal("not verified")
			}
			got, err := p.Coefficients(proof)
			if err != nil {
				t.Fatal(err)
			}
			want := DeletionContraction(g)
			if len(got) != len(want) {
				t.Fatalf("coefficient count %d, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i].Cmp(want[i]) != 0 {
					t.Fatalf("c_%d = %v, want %v", i, got[i], want[i])
				}
			}
		})
	}
}

func TestCamelotChromaticPetersen(t *testing.T) {
	if testing.Short() {
		t.Skip("Petersen chromatic run in -short mode")
	}
	// The Petersen graph's chromatic polynomial at small t is classical:
	// χ(1) = 0, χ(2) = 0, χ(3) = 120.
	p, err := NewProblem(graph.Petersen())
	if err != nil {
		t.Fatal(err)
	}
	proof, _, err := core.Run(context.Background(), p, core.Options{Nodes: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := p.Values(proof)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].Sign() != 0 || vals[1].Sign() != 0 {
		t.Fatalf("χ(1)=%v χ(2)=%v, want 0, 0", vals[0], vals[1])
	}
	if vals[2].Cmp(big.NewInt(120)) != 0 {
		t.Fatalf("χ(3) = %v, want 120", vals[2])
	}
}

func TestCamelotChromaticWithByzantineNodes(t *testing.T) {
	g := graph.Gnp(8, 0.5, 4)
	p, err := NewProblem(g)
	if err != nil {
		t.Fatal(err)
	}
	// Cover one node's block with the radius.
	d := p.Degree()
	k := 6
	f := 0
	for {
		e := d + 1 + 2*f
		if f >= (e+k-1)/k {
			break
		}
		f++
	}
	proof, rep, err := core.Run(context.Background(), p, core.Options{
		Nodes: k, FaultTolerance: f, Adversary: core.NewLyingNodes(11, 2), Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Coefficients(proof)
	if err != nil {
		t.Fatal(err)
	}
	want := DeletionContraction(g)
	for i := range want {
		if got[i].Cmp(want[i]) != 0 {
			t.Fatalf("c_%d = %v, want %v", i, got[i], want[i])
		}
	}
	for _, s := range rep.SuspectNodes {
		if s != 2 {
			t.Fatalf("honest node %d implicated", s)
		}
	}
}

func TestChromaticEdgelessAndSingleton(t *testing.T) {
	// Edgeless graph on 4 vertices: χ(t) = t^4.
	p, err := NewProblem(graph.New(4))
	if err != nil {
		t.Fatal(err)
	}
	proof, _, err := core.Run(context.Background(), p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	coeffs, err := p.Coefficients(proof)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range coeffs {
		want := int64(0)
		if i == 4 {
			want = 1
		}
		if c.Cmp(big.NewInt(want)) != 0 {
			t.Fatalf("edgeless: c_%d = %v", i, c)
		}
	}
}

func TestProblemValidation(t *testing.T) {
	if _, err := NewProblem(graph.New(0)); err == nil {
		t.Fatal("empty graph must be rejected")
	}
}

func TestInterpolationUtility(t *testing.T) {
	// p(x) = x^2 - 3x + 2 through points 0..2.
	coeffs, err := interp.LagrangeInt([]int64{0, 1, 2}, []*big.Int{
		big.NewInt(2), big.NewInt(0), big.NewInt(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{2, -3, 1}
	for i, w := range want {
		if coeffs[i].Cmp(big.NewInt(w)) != 0 {
			t.Fatalf("c_%d = %v, want %d", i, coeffs[i], w)
		}
	}
	// Non-integral result must error.
	if _, err := interp.LagrangeInt([]int64{0, 2}, []*big.Int{big.NewInt(0), big.NewInt(1)}); err == nil {
		t.Fatal("want non-integral error")
	}
	// Duplicate points must error.
	if _, err := interp.LagrangeInt([]int64{1, 1}, []*big.Int{big.NewInt(0), big.NewInt(1)}); err == nil {
		t.Fatal("want duplicate-point error")
	}
}

// TestEvaluateBlockMatchesEvaluate pins the compiled plan against the
// per-point path bit for bit (the plan.Plan contract: verification
// re-evaluates through Evaluate, so any divergence would surface as a
// verification failure, not a wrong answer — but it must not happen).
func TestEvaluateBlockMatchesEvaluate(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"gnp8":   graph.Gnp(8, 0.4, 1),
		"cycle7": graph.Cycle(7),
		"k5":     graph.Complete(5),
	} {
		t.Run(name, func(t *testing.T) {
			p, err := NewProblem(g)
			if err != nil {
				t.Fatal(err)
			}
			q := ff.NextPrime(p.MinModulus())
			f, err := ff.New(q)
			if err != nil {
				t.Fatal(err)
			}
			pl, err := p.Compile(f)
			if err != nil {
				t.Fatal(err)
			}
			xs := []uint64{0, 1, 2, 7, 100, 1 << 19}
			rows, err := pl.EvaluateBlock(xs)
			if err != nil {
				t.Fatal(err)
			}
			if len(rows) != len(xs) {
				t.Fatalf("EvaluateBlock returned %d rows, want %d", len(rows), len(xs))
			}
			for i, x0 := range xs {
				want, err := p.Evaluate(q, x0)
				if err != nil {
					t.Fatal(err)
				}
				if len(rows[i]) != len(want) {
					t.Fatalf("x0=%d: row width %d, want %d", x0, len(rows[i]), len(want))
				}
				for c := range want {
					if rows[i][c] != want[c] {
						t.Fatalf("x0=%d coord %d: EvaluateBlock %d, Evaluate %d", x0, c, rows[i][c], want[c])
					}
				}
			}
		})
	}
}
