package poly

// Equivalence tests for the lazy/parallel arithmetic paths (satellite of
// ISSUE 6): transformLazy against the canonical reference transform, and
// every parallel tree walk against its serial execution, bit for bit.
// CI's -race leg runs these with real goroutine interleavings.

import (
	"math/rand"
	"testing"

	"camelot/internal/ff"
	"camelot/internal/par"
)

func TestTransformLazyMatchesReference(t *testing.T) {
	for _, workers := range []int{1, 4} {
		restore := par.SetParallelism(workers)
		for _, n := range []int{2, 4, 8, 64, 512, 4096, 8192} {
			r := testRing(t)
			f := r.f
			rng := rand.New(rand.NewSource(int64(n)))
			a := make([]uint64, n)
			for i := range a {
				a[i] = rng.Uint64() % f.Q
			}
			p := r.plan(n)
			for _, tw := range [][]uint64{p.fwd, p.inv} {
				want := make([]uint64, n)
				copy(want, a)
				transform(f, want, p, tw)
				got := make([]uint64, n)
				copy(got, a)
				transformLazy(f, got, p, tw)
				ff.ReduceVec4Q(got, f.Q)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("workers=%d n=%d: transformLazy[%d] = %d, reference %d", workers, n, i, got[i], want[i])
					}
				}
			}
		}
		restore()
	}
}

// TestTransformLazyRangeInvariant checks the documented [0, 4q) bound on
// lazy residues, which the pointwise-product stage of mulNTT relies on.
func TestTransformLazyRangeInvariant(t *testing.T) {
	n := 8192
	r := testRing(t)
	f := r.f
	rng := rand.New(rand.NewSource(99))
	a := make([]uint64, n)
	for i := range a {
		a[i] = rng.Uint64() % f.Q
	}
	p := r.plan(n)
	transformLazy(f, a, p, p.fwd)
	for i, v := range a {
		if v >= 4*f.Q {
			t.Fatalf("lazy residue a[%d] = %d breaks the [0,4q) invariant (q=%d)", i, v, f.Q)
		}
	}
}

func TestMulParallelMatchesSerial(t *testing.T) {
	r := testRing(t)
	rng := rand.New(rand.NewSource(5))
	a := make([]uint64, 6000)
	b := make([]uint64, 5000)
	for i := range a {
		a[i] = rng.Uint64() % r.f.Q
	}
	for i := range b {
		b[i] = rng.Uint64() % r.f.Q
	}
	restore := par.SetParallelism(1)
	want := r.Mul(a, b)
	restore()
	restore = par.SetParallelism(4)
	got := r.Mul(a, b)
	restore()
	if len(got) != len(want) {
		t.Fatalf("parallel Mul length %d, serial %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parallel Mul[%d] = %d, serial %d", i, got[i], want[i])
		}
	}
}

func TestEvalManyInterpolateParallelMatchesSerial(t *testing.T) {
	r := testRing(t)
	rng := rand.New(rand.NewSource(21))
	n := 2048
	points := make([]uint64, n)
	for i := range points {
		points[i] = uint64(i)
	}
	coeffs := make([]uint64, 1500)
	for i := range coeffs {
		coeffs[i] = rng.Uint64() % r.f.Q
	}

	restore := par.SetParallelism(1)
	wantVals := r.EvalMany(coeffs, points)
	wantPoly := r.Interpolate(points, wantVals)
	wantProd := r.ProductFromRoots(points)
	restore()

	restore = par.SetParallelism(4)
	gotVals := r.EvalMany(coeffs, points)
	gotPoly := r.Interpolate(points, gotVals)
	gotProd := r.ProductFromRoots(points)
	restore()

	for i := range wantVals {
		if gotVals[i] != wantVals[i] {
			t.Fatalf("parallel EvalMany[%d] = %d, serial %d", i, gotVals[i], wantVals[i])
		}
	}
	if len(gotPoly) != len(wantPoly) {
		t.Fatalf("parallel Interpolate length %d, serial %d", len(gotPoly), len(wantPoly))
	}
	for i := range wantPoly {
		if gotPoly[i] != wantPoly[i] {
			t.Fatalf("parallel Interpolate[%d] = %d, serial %d", i, gotPoly[i], wantPoly[i])
		}
	}
	for i := range wantProd {
		if gotProd[i] != wantProd[i] {
			t.Fatalf("parallel ProductFromRoots[%d] = %d, serial %d", i, gotProd[i], wantProd[i])
		}
	}
}
