package poly

// Tests for the cached-plan NTT: correctness against the naive product
// and against a self-contained division-based reference transform (the
// pre-plan implementation, kept here verbatim in spirit: twiddles
// rebuilt per call, Fermat inversions per multiply, hardware-division
// modmul), plan-cache concurrency, and the BenchmarkNTT pair quoted in
// BENCH_2.json.

import (
	"math/bits"
	"math/rand"
	"sync"
	"testing"

	"camelot/internal/ff"
)

// refMulMod is the division-based modular multiply the reference
// transform uses — deliberately independent of package ff's reduction.
func refMulMod(a, b, q uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi, lo, q)
	return rem
}

func refExpMod(a, e, q uint64) uint64 {
	a %= q
	r := uint64(1)
	for e > 0 {
		if e&1 == 1 {
			r = refMulMod(r, a, q)
		}
		a = refMulMod(a, a, q)
		e >>= 1
	}
	return r
}

// refNTT is the pre-plan transform: bit-reversal computed inline and
// stage twiddles rebuilt by repeated squaring on every call.
func refNTT(a []uint64, w, q uint64) {
	n := len(a)
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		wl := w
		for m := n; m > length; m >>= 1 {
			wl = refMulMod(wl, wl, q)
		}
		for start := 0; start < n; start += length {
			wj := uint64(1)
			half := length / 2
			for j := 0; j < half; j++ {
				u := a[start+j]
				v := refMulMod(a[start+j+half], wj, q)
				a[start+j] = (u + v) % q
				a[start+j+half] = (u + q - v) % q
				wj = refMulMod(wj, wl, q)
			}
		}
	}
}

// refMulNTT is the pre-plan NTT product: two Fermat inversions per call.
func refMulNTT(a, b []uint64, n int, w, q uint64) []uint64 {
	fa := make([]uint64, n)
	fb := make([]uint64, n)
	copy(fa, a)
	copy(fb, b)
	refNTT(fa, w, q)
	refNTT(fb, w, q)
	for i := range fa {
		fa[i] = refMulMod(fa[i], fb[i], q)
	}
	refNTT(fa, refExpMod(w, q-2, q), q)
	invN := refExpMod(uint64(n)%q, q-2, q)
	for i := range fa {
		fa[i] = refMulMod(fa[i], invN, q)
	}
	return fa[:len(a)+len(b)-1]
}

func randPolyQ(rng *rand.Rand, n int, q uint64) []uint64 {
	p := make([]uint64, n)
	for i := range p {
		p[i] = rng.Uint64() % q
	}
	if p[n-1] == 0 {
		p[n-1] = 1
	}
	return p
}

// nttRings returns rings over NTT-friendly primes spanning the modulus
// range, including one just under the 2^62 ceiling.
func nttRings(t testing.TB) []*Ring {
	var rs []*Ring
	for _, min := range []uint64{1 << 20, 1 << 45, 1 << 61} {
		q, _, err := ff.NTTPrime(min, 1<<13)
		if err != nil {
			t.Fatalf("NTTPrime(%d): %v", min, err)
		}
		rs = append(rs, NewRing(ff.Must(q)))
	}
	return rs
}

func TestMulNTTMatchesReferenceTransform(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, r := range nttRings(t) {
		q := r.f.Q
		for _, size := range []int{130, 512, 2000} {
			a := randPolyQ(rng, size, q)
			b := randPolyQ(rng, size-7, q)
			n := nttSize(len(a) + len(b) - 1)
			w := r.rootOfOrder(n)
			got := Trim(r.mulNTT(a, b, n))
			want := Trim(refMulNTT(a, b, n, w, q))
			if !Equal(got, want) {
				t.Fatalf("q=%d size=%d: plan NTT disagrees with reference transform", q, size)
			}
		}
	}
}

func TestMulNTTMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for _, r := range nttRings(t) {
		q := r.f.Q
		for _, size := range []int{1, 2, 3, 129, 700} {
			a := randPolyQ(rng, size, q)
			b := randPolyQ(rng, size+5, q)
			n := nttSize(len(a) + len(b) - 1)
			got := Trim(r.mulNTT(a, b, n))
			want := Trim(r.mulNaive(a, b))
			if !Equal(got, want) {
				t.Fatalf("q=%d size=%d: NTT product disagrees with schoolbook", q, size)
			}
		}
	}
}

// TestNTTPlanConcurrent hammers one modulus+size from many goroutines —
// both through a shared ring and through per-goroutine rings — so the
// race detector sees the plan cache's first-use publication.
func TestNTTPlanConcurrent(t *testing.T) {
	q, _, err := ff.NTTPrime(1<<20, 1<<11)
	if err != nil {
		t.Fatal(err)
	}
	shared := NewRing(ff.Must(q))
	rng := rand.New(rand.NewSource(31))
	a := randPolyQ(rng, 300, q)
	b := randPolyQ(rng, 301, q)
	want := shared.mulNaive(a, b)
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(own bool) {
			defer wg.Done()
			r := shared
			if own {
				r = NewRing(ff.Must(q))
			}
			for i := 0; i < 20; i++ {
				if !Equal(r.Mul(a, b), want) {
					errs <- "concurrent NTT product mismatch"
					return
				}
			}
		}(g%2 == 0)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// BenchmarkNTT times one size-4096 polynomial product through the cached
// plan and through the pre-plan division-based reference (twiddles
// rebuilt, Fermat inversions per call).
func BenchmarkNTT(b *testing.B) {
	q, _, err := ff.NTTPrime(1<<45, 1<<13)
	if err != nil {
		b.Fatal(err)
	}
	r := NewRing(ff.Must(q))
	rng := rand.New(rand.NewSource(37))
	a := randPolyQ(rng, 2048, q)
	c := randPolyQ(rng, 2048, q)
	n := nttSize(len(a) + len(c) - 1)
	w := r.rootOfOrder(n)
	b.Run("plan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.mulNTT(a, c, n)
		}
	})
	b.Run("div-reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			refMulNTT(a, c, n, w, q)
		}
	})
}
