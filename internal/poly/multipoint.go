package poly

// Subproduct-tree multipoint evaluation and interpolation (paper §2.2):
// evaluating or interpolating a degree-d polynomial at d+1 points in
// O(M(d) log d) field operations. These are the workhorses behind
// Reed–Solomon encoding (evaluation) and the Gao decoder's first step
// (interpolation of the received word).

import (
	"camelot/internal/ff"
	"camelot/internal/par"
)

// fastThreshold is the point count below which naive O(d^2) evaluation /
// Lagrange interpolation is used directly (the tree overhead dominates
// below it).
const fastThreshold = 64

// parSpanMin is the subtree span (leaf count) from which the recursive
// tree walks fork their two children onto par workers; below it the
// token bookkeeping costs more than the subtree. The walks degrade to
// plain serial recursion when every worker is busy (par.Do is
// non-blocking), so nesting inside an already-parallel decode is safe.
const parSpanMin = 4 * fastThreshold

// subproductTree holds Π(x - x_i) over binary ranges of the point set.
// Node k covers the points of its leaves; tree[1] is the full product.
type subproductTree struct {
	n    int
	node [][]uint64 // heap layout, 1-based; leaves are (x - x_i)
}

// newSubproductTree builds the tree over the given points.
func (r *Ring) newSubproductTree(points []uint64) *subproductTree {
	n := len(points)
	size := nttSize(n)
	t := &subproductTree{n: n, node: make([][]uint64, 2*size)}
	for i := 0; i < size; i++ {
		if i < n {
			t.node[size+i] = []uint64{r.f.Neg(points[i]), 1}
		} else {
			t.node[size+i] = []uint64{1}
		}
	}
	// Nodes within one level are independent; levels go bottom-up. Each
	// level is split across par workers once it has enough nodes to
	// amortize the fork (near the root the per-node products are large,
	// but Mul itself parallelizes through the NTT).
	for levelLo := size / 2; levelLo >= 1; levelLo /= 2 {
		width := levelLo // nodes levelLo .. 2*levelLo-1
		if width >= 4 && par.Parallelism() > 1 {
			par.ForChunks(width, func(clo, chi int) {
				for k := levelLo + clo; k < levelLo+chi; k++ {
					t.node[k] = r.Mul(t.node[2*k], t.node[2*k+1])
				}
			})
		} else {
			for k := levelLo; k < 2*levelLo; k++ {
				t.node[k] = r.Mul(t.node[2*k], t.node[2*k+1])
			}
		}
	}
	return t
}

// EvalMany evaluates p at every point, in O(M(d) log d) via the subproduct
// tree for large inputs and Horner per point for small ones.
func (r *Ring) EvalMany(p []uint64, points []uint64) []uint64 {
	if len(points) <= fastThreshold || len(p) <= fastThreshold {
		out := make([]uint64, len(points))
		for i, x := range points {
			out[i] = r.Eval(p, x)
		}
		return out
	}
	t := r.newSubproductTree(points)
	out := make([]uint64, len(points))
	r.evalDown(t, 1, p, out, 0, nttSize(len(points)))
	return out
}

// evalDown reduces p modulo the subtree products, descending to leaves.
// span is the leaf count under node k; off the leaf offset.
func (r *Ring) evalDown(t *subproductTree, k int, p []uint64, out []uint64, off, span int) {
	if off >= t.n {
		return
	}
	_, rem := r.DivMod(p, t.node[k])
	if span == 1 {
		if len(rem) == 0 {
			out[off] = 0
		} else {
			out[off] = rem[0]
		}
		return
	}
	// Below a size threshold, finish with Horner: cheaper than recursion.
	if span <= fastThreshold {
		for i := off; i < off+span && i < t.n; i++ {
			// Leaf i holds (x - x_i): recover x_i from its constant term.
			xi := r.f.Neg(t.node[nttSize(t.n)+i][0])
			out[i] = r.Eval(rem, xi)
		}
		return
	}
	// The children read rem (DivMod copies; nothing is mutated) and write
	// disjoint halves of out, so they can run concurrently.
	if span >= parSpanMin && par.Parallelism() > 1 {
		par.Do(
			func() { r.evalDown(t, 2*k, rem, out, off, span/2) },
			func() { r.evalDown(t, 2*k+1, rem, out, off+span/2, span/2) },
		)
		return
	}
	r.evalDown(t, 2*k, rem, out, off, span/2)
	r.evalDown(t, 2*k+1, rem, out, off+span/2, span/2)
}

// Interpolate returns the unique polynomial of degree < len(points) with
// p(points[i]) = values[i]. Points must be distinct mod q.
func (r *Ring) Interpolate(points, values []uint64) []uint64 {
	if len(points) != len(values) {
		panic("poly: interpolation point/value length mismatch")
	}
	if len(points) == 0 {
		return nil
	}
	if len(points) <= fastThreshold {
		return r.interpolateLagrange(points, values)
	}
	t := r.newSubproductTree(points)
	m := t.node[1] // Π (x - x_i)
	dm := r.Derivative(m)
	denom := r.EvalMany(dm, points)
	r.f.BatchInv(denom)
	coeffs := make([]uint64, len(points))
	ff.MulVecK(coeffs, values, denom, r.f.Kernel())
	return Trim(r.combineUp(t, 1, coeffs, 0, nttSize(len(points))))
}

// combineUp computes Σ_i c_i Π_{j≠i} (x - x_j) over the subtree.
func (r *Ring) combineUp(t *subproductTree, k int, c []uint64, off, span int) []uint64 {
	if off >= t.n {
		return nil
	}
	if span == 1 {
		return []uint64{c[off]}
	}
	var left, right []uint64
	if span >= parSpanMin && par.Parallelism() > 1 {
		// The children only read t and c; their results are combined here.
		par.Do(
			func() { left = r.combineUp(t, 2*k, c, off, span/2) },
			func() { right = r.combineUp(t, 2*k+1, c, off+span/2, span/2) },
		)
	} else {
		left = r.combineUp(t, 2*k, c, off, span/2)
		right = r.combineUp(t, 2*k+1, c, off+span/2, span/2)
	}
	// left * rightProduct + right * leftProduct
	lp := r.Mul(left, t.node[2*k+1])
	rp := r.Mul(right, t.node[2*k])
	return r.Add(lp, rp)
}

// interpolateLagrange is the quadratic fallback for small point sets.
func (r *Ring) interpolateLagrange(points, values []uint64) []uint64 {
	n := len(points)
	// master = Π (x - x_i)
	master := []uint64{1}
	for _, x := range points {
		master = r.Mul(master, []uint64{r.f.Neg(x), 1})
	}
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		// numer_i = master / (x - x_i), denom_i = numer_i(x_i)
		numer, rem := r.DivMod(master, []uint64{r.f.Neg(points[i]), 1})
		if len(rem) != 0 {
			panic("poly: interpolation points not distinct")
		}
		d := r.Eval(numer, points[i])
		if d == 0 {
			panic("poly: interpolation points not distinct mod q")
		}
		c := r.f.Mul(values[i], r.f.Inv(d))
		for j, v := range numer {
			out[j] = r.f.Add(out[j], r.f.Mul(c, v))
		}
	}
	return Trim(out)
}

// ProductFromRoots returns Π_i (x - roots[i]) — the G0 precomputation of
// the Gao decoder (paper §2.3).
func (r *Ring) ProductFromRoots(roots []uint64) []uint64 {
	return r.productRange(roots, 0, len(roots))
}

func (r *Ring) productRange(roots []uint64, lo, hi int) []uint64 {
	switch hi - lo {
	case 0:
		return []uint64{1}
	case 1:
		return []uint64{r.f.Neg(roots[lo]), 1}
	}
	mid := (lo + hi) / 2
	if hi-lo >= parSpanMin && par.Parallelism() > 1 {
		var left, right []uint64
		par.Do(
			func() { left = r.productRange(roots, lo, mid) },
			func() { right = r.productRange(roots, mid, hi) },
		)
		return r.Mul(left, right)
	}
	return r.Mul(r.productRange(roots, lo, mid), r.productRange(roots, mid, hi))
}
