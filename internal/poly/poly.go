// Package poly implements dense univariate polynomial arithmetic over a
// prime field Z_q: the "fast arithmetic toolbox" of paper §2.2. It provides
// multiplication (naive, Karatsuba, and NTT when the modulus permits),
// division with remainder, the truncated extended Euclidean algorithm used
// by the Gao Reed–Solomon decoder, and subproduct-tree multipoint
// evaluation and interpolation.
//
// A polynomial is a coefficient slice c with c[j] the coefficient of x^j.
// The zero polynomial is the empty (or all-zero) slice. Operations treat
// inputs as immutable and return fresh slices.
package poly

import (
	"camelot/internal/ff"
)

// nttThreshold is the product size above which NTT multiplication is
// attempted; below it Karatsuba/naive win on constants.
const nttThreshold = 256

// karatsubaThreshold is the operand size below which naive multiplication
// is used inside the Karatsuba recursion.
const karatsubaThreshold = 32

// Ring provides polynomial arithmetic over a fixed prime field.
// Construct with NewRing. The zero value is unusable.
type Ring struct {
	f ff.Field
	// twoAdicity is the largest k with 2^k | q-1; it bounds NTT sizes.
	twoAdicity int
	// root is a primitive 2^twoAdicity-th root of unity, 0 if unavailable.
	root uint64
}

// NewRing returns a polynomial ring over Z_q. If q-1 has enough powers of
// two, multiplications transparently use the number-theoretic transform.
// The generator search behind the transform root is delegated to
// ff.PrimitiveRoot, which memoizes per modulus, so rebuilding a ring for
// a previously seen prime is cheap.
func NewRing(f ff.Field) *Ring {
	r := &Ring{f: f}
	m := f.Q - 1
	for m%2 == 0 {
		m /= 2
		r.twoAdicity++
	}
	if r.twoAdicity >= 2 {
		if g, err := ff.PrimitiveRoot(f.Q); err == nil {
			r.root = f.Exp(g, (f.Q-1)>>uint(r.twoAdicity))
		}
	}
	return r
}

// Field returns the coefficient field.
func (r *Ring) Field() ff.Field { return r.f }

// Trim removes trailing zero coefficients, returning the canonical
// representation (possibly an empty slice for the zero polynomial).
func Trim(p []uint64) []uint64 {
	n := len(p)
	for n > 0 && p[n-1] == 0 {
		n--
	}
	return p[:n]
}

// Degree returns the degree of p, or -1 for the zero polynomial.
func Degree(p []uint64) int {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] != 0 {
			return i
		}
	}
	return -1
}

// Equal reports whether a and b represent the same polynomial.
func Equal(a, b []uint64) bool {
	a, b = Trim(a), Trim(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Add returns a+b.
func (r *Ring) Add(a, b []uint64) []uint64 {
	if len(a) < len(b) {
		a, b = b, a
	}
	out := make([]uint64, len(a))
	copy(out, a)
	for i := range b {
		out[i] = r.f.Add(out[i], b[i])
	}
	return Trim(out)
}

// Sub returns a-b.
func (r *Ring) Sub(a, b []uint64) []uint64 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make([]uint64, n)
	copy(out, a)
	for i := range b {
		out[i] = r.f.Sub(out[i], b[i])
	}
	return Trim(out)
}

// Scale returns c*a for a scalar c.
func (r *Ring) Scale(a []uint64, c uint64) []uint64 {
	if c == 0 {
		return nil
	}
	out := make([]uint64, len(a))
	for i := range a {
		out[i] = r.f.Mul(a[i], c)
	}
	return Trim(out)
}

// MulXn returns a * x^n (shift by n).
func (r *Ring) MulXn(a []uint64, n int) []uint64 {
	a = Trim(a)
	if len(a) == 0 {
		return nil
	}
	out := make([]uint64, len(a)+n)
	copy(out[n:], a)
	return out
}

// Mul returns a*b, dispatching on size: naive for tiny operands,
// Karatsuba in the mid range, NTT for large products when the modulus
// supports a big enough transform.
func (r *Ring) Mul(a, b []uint64) []uint64 {
	a, b = Trim(a), Trim(b)
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	outLen := len(a) + len(b) - 1
	if outLen >= nttThreshold && r.root != 0 {
		if n := nttSize(outLen); n <= 1<<uint(r.twoAdicity) {
			return Trim(r.mulNTT(a, b, n))
		}
	}
	if len(a) <= karatsubaThreshold || len(b) <= karatsubaThreshold {
		return Trim(r.mulNaive(a, b))
	}
	return Trim(r.mulKaratsuba(a, b))
}

// mulNaive is the schoolbook product, on the hoisted reduction kernel.
func (r *Ring) mulNaive(a, b []uint64) []uint64 {
	k := r.f.Kernel()
	out := make([]uint64, len(a)+len(b)-1)
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		ais := k.Shift(ai)
		row := out[i : i+len(b)]
		for j, bj := range b {
			row[j] = r.f.Add(row[j], ff.MulKS(bj, ais, k))
		}
	}
	return out
}

// mulKaratsuba implements the classic three-multiplication recursion.
func (r *Ring) mulKaratsuba(a, b []uint64) []uint64 {
	if len(a) <= karatsubaThreshold || len(b) <= karatsubaThreshold {
		return r.mulNaive(a, b)
	}
	m := len(a)
	if len(b) > m {
		m = len(b)
	}
	m /= 2
	a0, a1 := splitAt(a, m), highAt(a, m)
	b0, b1 := splitAt(b, m), highAt(b, m)
	z0 := r.mulKaratsuba(a0, b0)
	z2 := []uint64(nil)
	if len(a1) > 0 && len(b1) > 0 {
		z2 = r.mulKaratsuba(a1, b1)
	}
	sa := r.Add(a0, a1)
	sb := r.Add(b0, b1)
	var z1 []uint64
	if len(sa) > 0 && len(sb) > 0 {
		z1 = r.mulKaratsuba(sa, sb)
	}
	z1 = r.Sub(r.Sub(z1, z0), z2)
	out := make([]uint64, len(a)+len(b)-1)
	addInto(r.f, out, z0, 0)
	addInto(r.f, out, z1, m)
	addInto(r.f, out, z2, 2*m)
	return out
}

func splitAt(p []uint64, m int) []uint64 {
	if len(p) <= m {
		return Trim(p)
	}
	return Trim(p[:m])
}

func highAt(p []uint64, m int) []uint64 {
	if len(p) <= m {
		return nil
	}
	return Trim(p[m:])
}

func addInto(f ff.Field, dst, src []uint64, off int) {
	for i, v := range src {
		dst[off+i] = f.Add(dst[off+i], v)
	}
}

// Eval evaluates p at x by Horner's rule.
func (r *Ring) Eval(p []uint64, x uint64) uint64 { return r.f.Horner(p, x) }

// Derivative returns p'.
func (r *Ring) Derivative(p []uint64) []uint64 {
	if len(p) <= 1 {
		return nil
	}
	out := make([]uint64, len(p)-1)
	for i := 1; i < len(p); i++ {
		out[i-1] = r.f.Mul(p[i], uint64(i)%r.f.Q)
	}
	return Trim(out)
}

// DivMod returns quotient and remainder of a / b. Panics if b is zero
// (a programming error in this codebase: divisors are always nonzero
// subproduct or Euclidean polynomials).
func (r *Ring) DivMod(a, b []uint64) (q, rem []uint64) {
	b = Trim(b)
	if len(b) == 0 {
		panic("poly: division by zero polynomial")
	}
	a = Trim(a)
	if len(a) < len(b) {
		return nil, a
	}
	rem = make([]uint64, len(a))
	copy(rem, a)
	q = make([]uint64, len(a)-len(b)+1)
	k := r.f.Kernel()
	invLeadS := k.Shift(r.f.Inv(b[len(b)-1]))
	for i := len(a) - len(b); i >= 0; i-- {
		c := ff.MulKS(rem[i+len(b)-1], invLeadS, k)
		if c == 0 {
			continue
		}
		q[i] = c
		cs := k.Shift(c)
		row := rem[i : i+len(b)]
		for j, bj := range b {
			row[j] = r.f.Sub(row[j], ff.MulKS(bj, cs, k))
		}
	}
	return Trim(q), Trim(rem)
}

// GCD returns the monic greatest common divisor of a and b.
func (r *Ring) GCD(a, b []uint64) []uint64 {
	a, b = Trim(a), Trim(b)
	for len(b) > 0 {
		_, rem := r.DivMod(a, b)
		a, b = b, rem
	}
	return r.Monic(a)
}

// Monic scales p so its leading coefficient is one.
func (r *Ring) Monic(p []uint64) []uint64 {
	p = Trim(p)
	if len(p) == 0 {
		return nil
	}
	lead := p[len(p)-1]
	if lead == 1 {
		return p
	}
	return r.Scale(p, r.f.Inv(lead))
}

// PartialXGCD runs the extended Euclidean algorithm on (a, b) and stops as
// soon as the remainder g has degree < stopDeg, returning (g, u, v) with
// u*a + v*b = g. This is exactly the half-way stop the Gao decoder needs
// (paper §2.3): a = G0, b = G1, stopDeg = (e+d+1)/2.
func (r *Ring) PartialXGCD(a, b []uint64, stopDeg int) (g, u, v []uint64) {
	// Invariants: r0 = u0*a + v0*b, r1 = u1*a + v1*b. The "current
	// remainder" of the Euclidean sequence is r1; we stop at the first
	// remainder with degree < stopDeg (which may be the zero polynomial —
	// e.g. decoding a received word close to the zero codeword).
	r0, r1 := Trim(a), Trim(b)
	u0, u1 := []uint64{1}, []uint64(nil)
	v0, v1 := []uint64(nil), []uint64{1}
	for Degree(r1) >= stopDeg {
		q, rem := r.DivMod(r0, r1)
		r0, r1 = r1, rem
		u0, u1 = u1, r.Sub(u0, r.Mul(q, u1))
		v0, v1 = v1, r.Sub(v0, r.Mul(q, v1))
	}
	return r1, u1, v1
}
