package poly

// Number-theoretic transform over NTT-friendly prime fields, used to give
// the O(d log d) multiplication of paper §2.2 for the large encodes and
// decodes (proof codewords routinely have thousands of symbols).

// nttSize returns the smallest power of two >= n.
func nttSize(n int) int {
	s := 1
	for s < n {
		s <<= 1
	}
	return s
}

// mulNTT multiplies a and b via forward transforms of size n (a power of
// two that both the product and the field's two-adicity accommodate).
func (r *Ring) mulNTT(a, b []uint64, n int) []uint64 {
	fa := make([]uint64, n)
	fb := make([]uint64, n)
	copy(fa, a)
	copy(fb, b)
	w := r.rootOfOrder(n)
	r.ntt(fa, w)
	r.ntt(fb, w)
	for i := range fa {
		fa[i] = r.f.Mul(fa[i], fb[i])
	}
	r.ntt(fa, r.f.Inv(w)) // inverse transform with w^{-1} ...
	invN := r.f.Inv(uint64(n) % r.f.Q)
	for i := range fa {
		fa[i] = r.f.Mul(fa[i], invN) // ... plus 1/n scaling
	}
	return fa[:len(a)+len(b)-1]
}

// rootOfOrder returns a primitive n-th root of unity (n a power of two
// within the field's two-adicity).
func (r *Ring) rootOfOrder(n int) uint64 {
	w := r.root
	size := 1 << uint(r.twoAdicity)
	for size > n {
		w = r.f.Mul(w, w)
		size >>= 1
	}
	return w
}

// ntt performs an in-place iterative radix-2 Cooley–Tukey transform of
// a (length a power of two) with the given primitive root of unity.
func (r *Ring) ntt(a []uint64, w uint64) {
	n := len(a)
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		// wl = w^(n/length): primitive length-th root.
		wl := w
		for m := n; m > length; m >>= 1 {
			wl = r.f.Mul(wl, wl)
		}
		for start := 0; start < n; start += length {
			wj := uint64(1)
			half := length / 2
			for j := 0; j < half; j++ {
				u := a[start+j]
				v := r.f.Mul(a[start+j+half], wj)
				a[start+j] = r.f.Add(u, v)
				a[start+j+half] = r.f.Sub(u, v)
				wj = r.f.Mul(wj, wl)
			}
		}
	}
}
