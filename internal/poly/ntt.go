package poly

// Number-theoretic transform over NTT-friendly prime fields, used to give
// the O(d log d) multiplication of paper §2.2 for the large encodes and
// decodes (proof codewords routinely have thousands of symbols).
//
// Transforms run against cached plans: for every (modulus, size) pair the
// forward and inverse stage twiddle tables, the bit-reversal permutation,
// and the 1/n scaling constant are computed once and shared process-wide
// (rings are rebuilt per prime per run, so the cache cannot live on the
// Ring). Plans also pool transform scratch buffers, so a multiplication
// allocates only its result. The cache is a sync.Map keyed by (q, n);
// concurrent lookups are lock-free and a racing build publishes exactly
// one winner via LoadOrStore. Growth is bounded by the distinct moduli
// and transform sizes a process touches.

import (
	"sync"

	"camelot/internal/ff"
	"camelot/internal/par"
)

// nttSize returns the smallest power of two >= n.
func nttSize(n int) int {
	s := 1
	for s < n {
		s <<= 1
	}
	return s
}

// planKey identifies a cached transform plan.
type planKey struct {
	q uint64
	n int
}

var planCache sync.Map // planKey -> *nttPlan

// nttPlan holds everything a size-n transform over one modulus needs
// beyond the data itself. Plans are immutable after construction apart
// from the scratch pool.
type nttPlan struct {
	n int
	// rev is the bit-reversal permutation; entry i is the index i's
	// bit-reversed image.
	rev []int32
	// fwd and inv are the stage-major twiddle tables for the forward and
	// inverse transforms: the stage with butterfly span `length` occupies
	// half = length/2 consecutive entries holding wl^0..wl^(half-1),
	// stages in ascending length order, n-1 entries total. Entries are
	// stored pre-normalized with Kernel.Shift so every butterfly uses the
	// cheaper ff.MulKS.
	fwd []uint64
	inv []uint64
	// invN is 1/n mod q, the inverse-transform scaling constant, also
	// pre-shifted for MulKS.
	invN uint64
	// bufs pools length-n scratch vectors for mulNTT.
	bufs sync.Pool
}

// plan returns the cached transform plan for size n over the ring's
// modulus, building and publishing it on first use.
func (r *Ring) plan(n int) *nttPlan {
	key := planKey{q: r.f.Q, n: n}
	if p, ok := planCache.Load(key); ok {
		return p.(*nttPlan)
	}
	p := r.buildPlan(n)
	actual, _ := planCache.LoadOrStore(key, p)
	return actual.(*nttPlan)
}

func (r *Ring) buildPlan(n int) *nttPlan {
	f := r.f
	k := f.Kernel()
	w := r.rootOfOrder(n)
	p := &nttPlan{
		n:    n,
		rev:  make([]int32, n),
		fwd:  stageTwiddles(f, w, n),
		inv:  stageTwiddles(f, f.Inv(w), n),
		invN: k.Shift(f.Inv(f.ReduceU(uint64(n)))),
	}
	for i, v := range p.fwd {
		p.fwd[i] = k.Shift(v)
	}
	for i, v := range p.inv {
		p.inv[i] = k.Shift(v)
	}
	for i := 1; i < n; i++ {
		p.rev[i] = p.rev[i>>1]>>1 | int32(i&1)*int32(n>>1)
	}
	p.bufs.New = func() any {
		b := make([]uint64, n)
		return &b
	}
	return p
}

// stageTwiddles fills the stage-major twiddle table for a transform with
// primitive n-th root w (see nttPlan.fwd for the layout).
func stageTwiddles(f ff.Field, w uint64, n int) []uint64 {
	tw := make([]uint64, n-1)
	off := 0
	for length := 2; length <= n; length <<= 1 {
		// wl = w^(n/length): primitive length-th root.
		wl := w
		for m := n; m > length; m >>= 1 {
			wl = f.Mul(wl, wl)
		}
		half := length >> 1
		wj := uint64(1)
		for j := 0; j < half; j++ {
			tw[off+j] = wj
			wj = f.Mul(wj, wl)
		}
		off += half
	}
	return tw
}

// mulNTT multiplies a and b via forward transforms of size n (a power of
// two that both the product and the field's two-adicity accommodate).
func (r *Ring) mulNTT(a, b []uint64, n int) []uint64 {
	p := r.plan(n)
	f := r.f
	k := f.Kernel()
	// fa is returned (truncated) to the caller, so it cannot come from
	// the pool; fb is pure scratch.
	fa := make([]uint64, n)
	copy(fa, a)
	fbp := p.bufs.Get().(*[]uint64)
	fb := (*fbp)[:n]
	copy(fb, b)
	clear(fb[len(b):])
	transformLazy(f, fa, p, p.fwd)
	transformLazy(f, fb, p, p.fwd)
	// Pointwise product. MulK shifts its second operand, which must
	// therefore be canonical: fb is reduced out of the lazy range, while
	// fa rides the lazy first-operand slot (< 4q) untouched. The products
	// come out canonical, so the inverse transform starts clean.
	ff.ReduceVec4Q(fb, f.Q)
	ff.MulVecK(fa, fa, fb, k)
	p.bufs.Put(fbp)
	transformLazy(f, fa, p, p.inv)
	// Scale by 1/n (invN is stored pre-shifted); fa's lazy entries feed
	// the first-operand slot, and the sweep emits canonical values.
	ff.MulVecKS(fa, fa, p.invN, k)
	return fa[:len(a)+len(b)-1]
}

// rootOfOrder returns a primitive n-th root of unity (n a power of two
// within the field's two-adicity).
func (r *Ring) rootOfOrder(n int) uint64 {
	w := r.root
	size := 1 << uint(r.twoAdicity)
	for size > n {
		w = r.f.Mul(w, w)
		size >>= 1
	}
	return w
}

// transform performs an in-place iterative radix-2 Cooley–Tukey pass of
// a (length p.n) with the given stage twiddle table (p.fwd or p.inv).
// The butterfly loop runs on the hoisted reduction kernel so the field
// multiply inlines (see ff.MulK).
//
// transform is the fully-canonical reference path: transformLazy below
// is differentially tested against it (TestTransformLazyMatchesReference)
// and replaces it in mulNTT.
func transform(f ff.Field, a []uint64, p *nttPlan, tw []uint64) {
	n := p.n
	k := f.Kernel()
	q := f.Q
	for i, ri := range p.rev {
		if int32(i) < ri {
			a[i], a[ri] = a[ri], a[i]
		}
	}
	off := 0
	for length := 2; length <= n; length <<= 1 {
		half := length >> 1
		ws := tw[off : off+half]
		for start := 0; start < n; start += length {
			lo := a[start : start+half : start+half]
			hi := a[start+half : start+length : start+length]
			for j, wj := range ws {
				u := lo[j]
				v := ff.MulKS(hi[j], wj, k)
				s := u + v
				if s >= q {
					s -= q
				}
				lo[j] = s
				d := u - v
				if u < v {
					d += q
				}
				hi[j] = d
			}
		}
		off += half
	}
}

// nttParallelMin is the transform size from which stage splitting across
// par workers pays for itself; below it the fork/join overhead dominates
// a stage's ~n/2 butterflies.
const nttParallelMin = 4096

// transformLazy is the production transform: same stage structure as
// transform, but with Harvey-style lazy butterflies that keep residues
// in [0, 4q) instead of canonicalizing after every operation, 4-wide
// unrolled inner loops, and stages split across par workers for large
// sizes. Canonical input yields output in the lazy range [0, 4q);
// callers reduce (ff.ReduceVec4Q) or exploit the lazy first-operand
// slot of ff.MulK (see mulNTT). Residues agree with transform mod q at
// every index.
//
// Per butterfly, with u = lo reduced into [0, 2q) and t = hi·w (< q,
// canonical — hi < 4q rides MulKS's lazy first-operand budget):
//
//	lo' = u + t        < 3q
//	hi' = u + 2q - t   in (0, 4q)
//
// so the [0, 4q) invariant is maintained stage over stage.
//
// Work splitting: a stage is a barrier (stage s+1 reads what stage s
// wrote) but its butterflies are independent. Early stages have many
// blocks and short twiddle runs — they split by block; late stages have
// few long blocks — they split the twiddle range inside each block.
func transformLazy(f ff.Field, a []uint64, p *nttPlan, tw []uint64) {
	n := p.n
	k := f.Kernel()
	twoQ := 2 * f.Q
	for i, ri := range p.rev {
		if int32(i) < ri {
			a[i], a[ri] = a[ri], a[i]
		}
	}
	workers := par.Parallelism()
	parallel := n >= nttParallelMin && workers > 1
	off := 0
	for length := 2; length <= n; length <<= 1 {
		half := length >> 1
		ws := tw[off : off+half]
		blocks := n / length
		switch {
		case !parallel:
			for start := 0; start < n; start += length {
				lazyButterflies(a[start:start+half:start+half], a[start+half:start+length:start+length], ws, twoQ, k)
			}
		case blocks >= workers:
			par.ForChunks(blocks, func(blo, bhi int) {
				for b := blo; b < bhi; b++ {
					start := b * length
					lazyButterflies(a[start:start+half:start+half], a[start+half:start+length:start+length], ws, twoQ, k)
				}
			})
		default:
			for start := 0; start < n; start += length {
				lo := a[start : start+half : start+half]
				hi := a[start+half : start+length : start+length]
				par.ForChunks(half, func(jlo, jhi int) {
					lazyButterflies(lo[jlo:jhi], hi[jlo:jhi], ws[jlo:jhi], twoQ, k)
				})
			}
		}
		off += half
	}
}

// lazyButterflies applies one stage's butterflies to paired slices
// (lo[j], hi[j]) with twiddles ws[j], maintaining the [0, 4q) lazy
// invariant. The 4-wide unroll overlaps the independent reduction
// chains; see ff/vec.go for the idiom.
func lazyButterflies(lo, hi, ws []uint64, twoQ uint64, k ff.Kernel) {
	n := len(ws)
	j := 0
	for ; j+4 <= n; j += 4 {
		u0, u1, u2, u3 := lo[j], lo[j+1], lo[j+2], lo[j+3]
		if u0 >= twoQ {
			u0 -= twoQ
		}
		if u1 >= twoQ {
			u1 -= twoQ
		}
		if u2 >= twoQ {
			u2 -= twoQ
		}
		if u3 >= twoQ {
			u3 -= twoQ
		}
		t0 := ff.MulKS(hi[j], ws[j], k)
		t1 := ff.MulKS(hi[j+1], ws[j+1], k)
		t2 := ff.MulKS(hi[j+2], ws[j+2], k)
		t3 := ff.MulKS(hi[j+3], ws[j+3], k)
		lo[j], lo[j+1], lo[j+2], lo[j+3] = u0+t0, u1+t1, u2+t2, u3+t3
		hi[j], hi[j+1], hi[j+2], hi[j+3] = u0+twoQ-t0, u1+twoQ-t1, u2+twoQ-t2, u3+twoQ-t3
	}
	for ; j < n; j++ {
		u := lo[j]
		if u >= twoQ {
			u -= twoQ
		}
		t := ff.MulKS(hi[j], ws[j], k)
		lo[j] = u + t
		hi[j] = u + twoQ - t
	}
}
