package poly

// Number-theoretic transform over NTT-friendly prime fields, used to give
// the O(d log d) multiplication of paper §2.2 for the large encodes and
// decodes (proof codewords routinely have thousands of symbols).
//
// Transforms run against cached plans: for every (modulus, size) pair the
// forward and inverse stage twiddle tables, the bit-reversal permutation,
// and the 1/n scaling constant are computed once and shared process-wide
// (rings are rebuilt per prime per run, so the cache cannot live on the
// Ring). Plans also pool transform scratch buffers, so a multiplication
// allocates only its result. The cache is a sync.Map keyed by (q, n);
// concurrent lookups are lock-free and a racing build publishes exactly
// one winner via LoadOrStore. Growth is bounded by the distinct moduli
// and transform sizes a process touches.

import (
	"sync"

	"camelot/internal/ff"
)

// nttSize returns the smallest power of two >= n.
func nttSize(n int) int {
	s := 1
	for s < n {
		s <<= 1
	}
	return s
}

// planKey identifies a cached transform plan.
type planKey struct {
	q uint64
	n int
}

var planCache sync.Map // planKey -> *nttPlan

// nttPlan holds everything a size-n transform over one modulus needs
// beyond the data itself. Plans are immutable after construction apart
// from the scratch pool.
type nttPlan struct {
	n int
	// rev is the bit-reversal permutation; entry i is the index i's
	// bit-reversed image.
	rev []int32
	// fwd and inv are the stage-major twiddle tables for the forward and
	// inverse transforms: the stage with butterfly span `length` occupies
	// half = length/2 consecutive entries holding wl^0..wl^(half-1),
	// stages in ascending length order, n-1 entries total. Entries are
	// stored pre-normalized with Kernel.Shift so every butterfly uses the
	// cheaper ff.MulKS.
	fwd []uint64
	inv []uint64
	// invN is 1/n mod q, the inverse-transform scaling constant, also
	// pre-shifted for MulKS.
	invN uint64
	// bufs pools length-n scratch vectors for mulNTT.
	bufs sync.Pool
}

// plan returns the cached transform plan for size n over the ring's
// modulus, building and publishing it on first use.
func (r *Ring) plan(n int) *nttPlan {
	key := planKey{q: r.f.Q, n: n}
	if p, ok := planCache.Load(key); ok {
		return p.(*nttPlan)
	}
	p := r.buildPlan(n)
	actual, _ := planCache.LoadOrStore(key, p)
	return actual.(*nttPlan)
}

func (r *Ring) buildPlan(n int) *nttPlan {
	f := r.f
	k := f.Kernel()
	w := r.rootOfOrder(n)
	p := &nttPlan{
		n:    n,
		rev:  make([]int32, n),
		fwd:  stageTwiddles(f, w, n),
		inv:  stageTwiddles(f, f.Inv(w), n),
		invN: k.Shift(f.Inv(f.ReduceU(uint64(n)))),
	}
	for i, v := range p.fwd {
		p.fwd[i] = k.Shift(v)
	}
	for i, v := range p.inv {
		p.inv[i] = k.Shift(v)
	}
	for i := 1; i < n; i++ {
		p.rev[i] = p.rev[i>>1]>>1 | int32(i&1)*int32(n>>1)
	}
	p.bufs.New = func() any {
		b := make([]uint64, n)
		return &b
	}
	return p
}

// stageTwiddles fills the stage-major twiddle table for a transform with
// primitive n-th root w (see nttPlan.fwd for the layout).
func stageTwiddles(f ff.Field, w uint64, n int) []uint64 {
	tw := make([]uint64, n-1)
	off := 0
	for length := 2; length <= n; length <<= 1 {
		// wl = w^(n/length): primitive length-th root.
		wl := w
		for m := n; m > length; m >>= 1 {
			wl = f.Mul(wl, wl)
		}
		half := length >> 1
		wj := uint64(1)
		for j := 0; j < half; j++ {
			tw[off+j] = wj
			wj = f.Mul(wj, wl)
		}
		off += half
	}
	return tw
}

// mulNTT multiplies a and b via forward transforms of size n (a power of
// two that both the product and the field's two-adicity accommodate).
func (r *Ring) mulNTT(a, b []uint64, n int) []uint64 {
	p := r.plan(n)
	f := r.f
	k := f.Kernel()
	// fa is returned (truncated) to the caller, so it cannot come from
	// the pool; fb is pure scratch.
	fa := make([]uint64, n)
	copy(fa, a)
	fbp := p.bufs.Get().(*[]uint64)
	fb := (*fbp)[:n]
	copy(fb, b)
	clear(fb[len(b):])
	transform(f, fa, p, p.fwd)
	transform(f, fb, p, p.fwd)
	for i := range fa {
		fa[i] = ff.MulK(fa[i], fb[i], k)
	}
	p.bufs.Put(fbp)
	transform(f, fa, p, p.inv)
	for i := range fa {
		fa[i] = ff.MulKS(fa[i], p.invN, k)
	}
	return fa[:len(a)+len(b)-1]
}

// rootOfOrder returns a primitive n-th root of unity (n a power of two
// within the field's two-adicity).
func (r *Ring) rootOfOrder(n int) uint64 {
	w := r.root
	size := 1 << uint(r.twoAdicity)
	for size > n {
		w = r.f.Mul(w, w)
		size >>= 1
	}
	return w
}

// transform performs an in-place iterative radix-2 Cooley–Tukey pass of
// a (length p.n) with the given stage twiddle table (p.fwd or p.inv).
// The butterfly loop runs on the hoisted reduction kernel so the field
// multiply inlines (see ff.MulK).
func transform(f ff.Field, a []uint64, p *nttPlan, tw []uint64) {
	n := p.n
	k := f.Kernel()
	q := f.Q
	for i, ri := range p.rev {
		if int32(i) < ri {
			a[i], a[ri] = a[ri], a[i]
		}
	}
	off := 0
	for length := 2; length <= n; length <<= 1 {
		half := length >> 1
		ws := tw[off : off+half]
		for start := 0; start < n; start += length {
			lo := a[start : start+half : start+half]
			hi := a[start+half : start+length : start+length]
			for j, wj := range ws {
				u := lo[j]
				v := ff.MulKS(hi[j], wj, k)
				s := u + v
				if s >= q {
					s -= q
				}
				lo[j] = s
				d := u - v
				if u < v {
					d += q
				}
				hi[j] = d
			}
		}
		off += half
	}
}
