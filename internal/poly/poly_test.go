package poly

import (
	"math/rand"
	"testing"
	"testing/quick"

	"camelot/internal/ff"
)

// testRing returns a ring over an NTT-friendly prime (large two-adicity).
func testRing(t testing.TB) *Ring {
	t.Helper()
	q, _, err := ff.NTTPrime(1<<20, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	return NewRing(ff.Must(q))
}

// plainRing returns a ring over a prime with tiny two-adicity, forcing the
// Karatsuba path even for large products.
func plainRing(t testing.TB) *Ring {
	t.Helper()
	// 1000003 - 1 = 2 * 3 * 166667: two-adicity 1, no NTT.
	return NewRing(ff.Must(1000003))
}

func randPoly(rng *rand.Rand, f ff.Field, deg int) []uint64 {
	p := make([]uint64, deg+1)
	for i := range p {
		p[i] = rng.Uint64() % f.Q
	}
	p[deg] = 1 + rng.Uint64()%(f.Q-1) // ensure exact degree
	return p
}

func TestDegreeAndTrim(t *testing.T) {
	tests := []struct {
		name string
		in   []uint64
		deg  int
	}{
		{"nil", nil, -1},
		{"zeros", []uint64{0, 0, 0}, -1},
		{"constant", []uint64{5}, 0},
		{"padded", []uint64{1, 2, 0, 0}, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Degree(tt.in); got != tt.deg {
				t.Errorf("Degree = %d, want %d", got, tt.deg)
			}
			if got := Trim(tt.in); Degree(got) != tt.deg || (len(got) > 0 && got[len(got)-1] == 0) {
				t.Errorf("Trim not canonical: %v", got)
			}
		})
	}
}

func TestMulAgainstNaive(t *testing.T) {
	rings := map[string]*Ring{"ntt": testRing(t), "plain": plainRing(t)}
	sizes := [][2]int{{1, 1}, {3, 7}, {31, 33}, {100, 90}, {300, 5}, {512, 512}, {1000, 777}}
	for name, r := range rings {
		rng := rand.New(rand.NewSource(42))
		for _, sz := range sizes {
			a := randPoly(rng, r.f, sz[0])
			b := randPoly(rng, r.f, sz[1])
			got := r.Mul(a, b)
			want := Trim(r.mulNaive(a, b))
			if !Equal(got, want) {
				t.Fatalf("%s: Mul mismatch at sizes %v", name, sz)
			}
		}
	}
}

func TestMulZero(t *testing.T) {
	r := testRing(t)
	if got := r.Mul(nil, []uint64{1, 2, 3}); len(got) != 0 {
		t.Fatalf("0 * p = %v, want zero", got)
	}
}

func TestMulPropertyCommutative(t *testing.T) {
	r := plainRing(t)
	rng := rand.New(rand.NewSource(7))
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	prop := func(da, db uint8) bool {
		a := randPoly(rng, r.f, int(da%60)+1)
		b := randPoly(rng, r.f, int(db%60)+1)
		return Equal(r.Mul(a, b), r.Mul(b, a))
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDivMod(t *testing.T) {
	r := testRing(t)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		a := randPoly(rng, r.f, 5+rng.Intn(200))
		b := randPoly(rng, r.f, 1+rng.Intn(50))
		q, rem := r.DivMod(a, b)
		if Degree(rem) >= Degree(b) {
			t.Fatalf("remainder degree %d >= divisor degree %d", Degree(rem), Degree(b))
		}
		back := r.Add(r.Mul(q, b), rem)
		if !Equal(back, a) {
			t.Fatalf("q*b + r != a (trial %d)", trial)
		}
	}
}

func TestDivModSmallerDividend(t *testing.T) {
	r := testRing(t)
	q, rem := r.DivMod([]uint64{1, 2}, []uint64{0, 0, 1})
	if len(q) != 0 || !Equal(rem, []uint64{1, 2}) {
		t.Fatalf("got q=%v rem=%v", q, rem)
	}
}

func TestGCD(t *testing.T) {
	r := testRing(t)
	rng := rand.New(rand.NewSource(11))
	g := randPoly(rng, r.f, 7)
	a := r.Mul(g, randPoly(rng, r.f, 13))
	b := r.Mul(g, randPoly(rng, r.f, 9))
	got := r.GCD(a, b)
	// gcd must divide both and be divisible by g (up to possibly larger
	// common factors; check divisibility both ways where it must hold).
	if _, rem := r.DivMod(a, got); len(rem) != 0 {
		t.Fatal("gcd does not divide a")
	}
	if _, rem := r.DivMod(b, got); len(rem) != 0 {
		t.Fatal("gcd does not divide b")
	}
	if _, rem := r.DivMod(got, r.Monic(g)); len(rem) != 0 {
		t.Fatal("g does not divide gcd")
	}
}

func TestPartialXGCDInvariant(t *testing.T) {
	r := testRing(t)
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 20; trial++ {
		a := randPoly(rng, r.f, 40)
		b := randPoly(rng, r.f, 35)
		stop := rng.Intn(30)
		g, u, v := r.PartialXGCD(a, b, stop)
		if Degree(g) >= stop && Degree(r.GCD(a, b)) < stop {
			t.Fatalf("stopped with degree %d >= stop %d", Degree(g), stop)
		}
		lhs := r.Add(r.Mul(u, a), r.Mul(v, b))
		if !Equal(lhs, g) {
			t.Fatalf("u*a + v*b != g (trial %d)", trial)
		}
	}
}

func TestEvalManyMatchesHorner(t *testing.T) {
	for name, r := range map[string]*Ring{"ntt": testRing(t), "plain": plainRing(t)} {
		rng := rand.New(rand.NewSource(5))
		p := randPoly(rng, r.f, 300)
		points := make([]uint64, 400)
		for i := range points {
			points[i] = uint64(i) * 7919 % r.f.Q
		}
		got := r.EvalMany(p, points)
		for i, x := range points {
			if want := r.Eval(p, x); got[i] != want {
				t.Fatalf("%s: EvalMany[%d] = %d, want %d", name, i, got[i], want)
			}
		}
	}
}

func TestInterpolateRoundTrip(t *testing.T) {
	for name, r := range map[string]*Ring{"ntt": testRing(t), "plain": plainRing(t)} {
		rng := rand.New(rand.NewSource(9))
		for _, n := range []int{1, 2, 17, 64, 65, 200, 513} {
			p := randPoly(rng, r.f, n-1)
			points := make([]uint64, n)
			for i := range points {
				points[i] = uint64(i)
			}
			values := r.EvalMany(p, points)
			got := r.Interpolate(points, values)
			if !Equal(got, p) {
				t.Fatalf("%s: interpolate(n=%d) did not round-trip", name, n)
			}
		}
	}
}

func TestInterpolateConstantAndLinear(t *testing.T) {
	r := testRing(t)
	got := r.Interpolate([]uint64{5}, []uint64{42})
	if !Equal(got, []uint64{42}) {
		t.Fatalf("constant interpolation = %v", got)
	}
	// Through (0, 1) and (1, 3): p(x) = 1 + 2x.
	got = r.Interpolate([]uint64{0, 1}, []uint64{1, 3})
	if !Equal(got, []uint64{1, 2}) {
		t.Fatalf("linear interpolation = %v", got)
	}
}

func TestProductFromRoots(t *testing.T) {
	r := testRing(t)
	roots := []uint64{1, 2, 3}
	// (x-1)(x-2)(x-3) = x^3 - 6x^2 + 11x - 6
	got := r.ProductFromRoots(roots)
	want := []uint64{r.f.Reduce(-6), 11, r.f.Reduce(-6), 1}
	if !Equal(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for _, x := range roots {
		if r.Eval(got, x) != 0 {
			t.Fatalf("root %d not a root", x)
		}
	}
}

func TestDerivative(t *testing.T) {
	r := testRing(t)
	// d/dx (1 + 2x + 3x^2) = 2 + 6x
	got := r.Derivative([]uint64{1, 2, 3})
	if !Equal(got, []uint64{2, 6}) {
		t.Fatalf("got %v", got)
	}
	if got := r.Derivative([]uint64{7}); len(got) != 0 {
		t.Fatalf("derivative of constant = %v", got)
	}
}

func TestNTTRoundTripProperty(t *testing.T) {
	r := testRing(t)
	if r.root == 0 {
		t.Skip("ring lacks NTT support")
	}
	rng := rand.New(rand.NewSource(13))
	a := randPoly(rng, r.f, 700)
	b := randPoly(rng, r.f, 900)
	got := r.mulNTT(a, b, nttSize(len(a)+len(b)-1))
	want := r.mulNaive(a, b)
	if !Equal(got, want) {
		t.Fatal("NTT product differs from naive")
	}
}

func BenchmarkMulNTT4096(b *testing.B) {
	r := testRing(b)
	rng := rand.New(rand.NewSource(1))
	p := randPoly(rng, r.f, 2047)
	q := randPoly(rng, r.f, 2047)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Mul(p, q)
	}
}

func BenchmarkEvalMany2048(b *testing.B) {
	r := testRing(b)
	rng := rand.New(rand.NewSource(1))
	p := randPoly(rng, r.f, 2047)
	points := make([]uint64, 2048)
	for i := range points {
		points[i] = uint64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.EvalMany(p, points)
	}
}

func BenchmarkInterpolate2048(b *testing.B) {
	r := testRing(b)
	rng := rand.New(rand.NewSource(1))
	p := randPoly(rng, r.f, 2047)
	points := make([]uint64, 2048)
	for i := range points {
		points[i] = uint64(i)
	}
	values := r.EvalMany(p, points)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Interpolate(points, values)
	}
}
