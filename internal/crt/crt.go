// Package crt reconstructs integers from residues modulo several pairwise
// coprime word-sized primes, via the Chinese Remainder Theorem. Camelot
// proofs are prepared modulo O(1) distinct primes q and the final counts
// (clique counts, permanents, chromatic-polynomial values, ...) are
// reassembled over the integers (paper footnotes 5 and 18).
package crt

import (
	"errors"
	"fmt"
	"math/big"
)

// ErrMismatch is returned when residue and modulus slices disagree in
// length or are empty.
var ErrMismatch = errors.New("crt: residue/modulus mismatch")

// Reconstruct returns the unique x in [0, Π moduli) with
// x ≡ residues[i] (mod moduli[i]) for all i. Moduli must be pairwise
// coprime (they are distinct primes everywhere in this codebase).
func Reconstruct(residues, moduli []uint64) (*big.Int, error) {
	if len(residues) != len(moduli) || len(residues) == 0 {
		return nil, fmt.Errorf("%w: %d residues, %d moduli", ErrMismatch, len(residues), len(moduli))
	}
	x := new(big.Int).SetUint64(residues[0] % moduli[0])
	m := new(big.Int).SetUint64(moduli[0])
	for i := 1; i < len(moduli); i++ {
		qi := new(big.Int).SetUint64(moduli[i])
		ri := new(big.Int).SetUint64(residues[i] % moduli[i])
		// Solve x + m*t ≡ ri (mod qi)  =>  t ≡ (ri - x) * m^{-1} (mod qi).
		minv := new(big.Int).ModInverse(new(big.Int).Mod(m, qi), qi)
		if minv == nil {
			return nil, fmt.Errorf("crt: moduli %d and earlier product not coprime", moduli[i])
		}
		t := new(big.Int).Sub(ri, x)
		t.Mod(t, qi)
		t.Mul(t, minv)
		t.Mod(t, qi)
		x.Add(x, t.Mul(t, m))
		m.Mul(m, qi)
	}
	return x, nil
}

// ReconstructSigned is Reconstruct followed by mapping into the symmetric
// range (-M/2, M/2], for quantities that may be negative (e.g. permanents
// of matrices with negative entries).
func ReconstructSigned(residues, moduli []uint64) (*big.Int, error) {
	x, err := Reconstruct(residues, moduli)
	if err != nil {
		return nil, err
	}
	m := big.NewInt(1)
	for _, q := range moduli {
		m.Mul(m, new(big.Int).SetUint64(q))
	}
	half := new(big.Int).Rsh(m, 1)
	if x.Cmp(half) > 0 {
		x.Sub(x, m)
	}
	return x, nil
}

// ProductBits returns the bit length of the product of the moduli: the
// capacity check for "do we have enough primes for this bound".
func ProductBits(moduli []uint64) int {
	m := big.NewInt(1)
	for _, q := range moduli {
		m.Mul(m, new(big.Int).SetUint64(q))
	}
	return m.BitLen()
}
