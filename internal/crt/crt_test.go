package crt

import (
	"math/big"
	"math/rand"
	"testing"
)

func TestReconstructSmall(t *testing.T) {
	// x ≡ 2 (mod 3), x ≡ 3 (mod 5), x ≡ 2 (mod 7)  =>  x = 23.
	x, err := Reconstruct([]uint64{2, 3, 2}, []uint64{3, 5, 7})
	if err != nil {
		t.Fatal(err)
	}
	if x.Cmp(big.NewInt(23)) != 0 {
		t.Fatalf("got %v, want 23", x)
	}
}

func TestReconstructSingle(t *testing.T) {
	x, err := Reconstruct([]uint64{42}, []uint64{97})
	if err != nil {
		t.Fatal(err)
	}
	if x.Cmp(big.NewInt(42)) != 0 {
		t.Fatalf("got %v", x)
	}
}

func TestReconstructErrors(t *testing.T) {
	if _, err := Reconstruct(nil, nil); err == nil {
		t.Fatal("want error for empty input")
	}
	if _, err := Reconstruct([]uint64{1}, []uint64{3, 5}); err == nil {
		t.Fatal("want error for length mismatch")
	}
	if _, err := Reconstruct([]uint64{1, 2}, []uint64{6, 4}); err == nil {
		t.Fatal("want error for non-coprime moduli")
	}
}

func TestReconstructRoundTripProperty(t *testing.T) {
	moduli := []uint64{1000003, 2000003, 4000037, 8000009}
	m := big.NewInt(1)
	for _, q := range moduli {
		m.Mul(m, new(big.Int).SetUint64(q))
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		want := new(big.Int).Rand(rng, m)
		res := make([]uint64, len(moduli))
		for i, q := range moduli {
			res[i] = new(big.Int).Mod(want, new(big.Int).SetUint64(q)).Uint64()
		}
		got, err := Reconstruct(res, moduli)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("trial %d: got %v, want %v", trial, got, want)
		}
	}
}

func TestReconstructSigned(t *testing.T) {
	moduli := []uint64{10007, 10009}
	for _, want := range []int64{-5000, -1, 0, 1, 123456} {
		res := make([]uint64, len(moduli))
		for i, q := range moduli {
			v := want % int64(q)
			if v < 0 {
				v += int64(q)
			}
			res[i] = uint64(v)
		}
		got, err := ReconstructSigned(res, moduli)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(big.NewInt(want)) != 0 {
			t.Fatalf("want %d, got %v", want, got)
		}
	}
}

func TestProductBits(t *testing.T) {
	if got := ProductBits([]uint64{2, 2}); got != 3 { // product 4 -> 3 bits
		t.Fatalf("ProductBits = %d, want 3", got)
	}
}
