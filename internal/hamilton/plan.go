package hamilton

// Compiled plans for the cycle and path problems. The walk kernels
// factor the z-indicator out of the inner product — next[v] =
// z_v · Σ_{u : a_uv = 1} vec[u] distributes exactly over Z_q, so the
// compiled sweep drops the per-edge multiply of closedWalks/openWalks
// while producing bit-identical residues. Compile additionally hoists
// the adjacency structure as in-neighbour lists; the Lagrange
// evaluator and all walk scratch are per EvaluateBlock call, so one
// plan serves concurrent chunk tasks.

import (
	"camelot/internal/ff"
	"camelot/internal/graph"
	"camelot/internal/plan"
)

var (
	_ plan.Compiler = (*Problem)(nil)
	_ plan.Compiler = (*PathProblem)(nil)
)

// inNeighbours lists, for each vertex v, the vertices u with a_uv = 1.
func inNeighbours(g *graph.Graph) [][]int32 {
	n := g.N()
	adj := g.AdjacencyMatrix()
	in := make([][]int32, n)
	for v := 0; v < n; v++ {
		for u := 0; u < n; u++ {
			if adj[u*n+v] == 1 {
				in[v] = append(in[v], int32(u))
			}
		}
	}
	return in
}

// walkScratch carries the per-call buffers shared by every point and
// suffix of one EvaluateBlock invocation.
type walkScratch struct {
	z    []uint64
	vec  []uint64
	next []uint64
}

func newWalkScratch(n int) *walkScratch {
	return &walkScratch{
		z:    make([]uint64, n),
		vec:  make([]uint64, n),
		next: make([]uint64, n),
	}
}

// step advances the z-weighted walk vector one step using the factored
// kernel: next[v] = z_v · Σ_{u ∈ in(v)} vec[u]. Distributivity mod q
// makes this bit-identical to the per-edge accumulation in
// closedWalks/openWalks.
func (ws *walkScratch) step(f ff.Field, in [][]int32) {
	for v := range ws.next {
		zv := ws.z[v]
		if zv == 0 {
			ws.next[v] = 0
			continue
		}
		s := uint64(0)
		for _, u := range in[v] {
			s = f.Add(s, ws.vec[u])
		}
		ws.next[v] = f.Mul(zv, s)
	}
	ws.vec, ws.next = ws.next, ws.vec
}

// fillSwept writes the D(x0)-swept indicators z[off..off+half) from the
// Lagrange basis row phi, zeroing them first.
func fillSwept(f ff.Field, z []uint64, off, half int, phi []uint64) {
	for j := 0; j < half; j++ {
		z[off+j] = 0
	}
	for i, v := range phi {
		if v == 0 {
			continue
		}
		for j := 0; j < half; j++ {
			if i&(1<<uint(j)) != 0 {
				z[off+j] = f.Add(z[off+j], v)
			}
		}
	}
}

// compiled is the Hamiltonian-cycle Plan for one prime.
type compiled struct {
	p  *Problem
	f  ff.Field
	in [][]int32
}

// Compile implements plan.Compiler.
func (p *Problem) Compile(f ff.Field) (plan.Plan, error) {
	return &compiled{p: p, f: f, in: inNeighbours(p.g)}, nil
}

// EvaluateBlock implements plan.Plan.
func (c *compiled) EvaluateBlock(xs []uint64) ([][]uint64, error) {
	f, p, n := c.f, c.p, c.p.n
	le := f.NewLagrangeEvaluatorZeroBased(1 << uint(p.half))
	phi := make([]uint64, 1<<uint(p.half))
	ws := newWalkScratch(n)
	out := make([][]uint64, len(xs))
	for xi, x0 := range xs {
		le.At(x0, phi)
		ws.z[0] = 1
		fillSwept(f, ws.z, 1, p.half, phi)
		signP := uint64(1)
		if (n-1)%2 == 1 {
			signP = f.Neg(signP)
		}
		for j := 0; j < p.half; j++ {
			signP = f.Mul(signP, f.Sub(1, f.Mul(2%f.Q, ws.z[1+j])))
		}
		total := uint64(0)
		for suffix := uint64(0); suffix < 1<<uint(p.rest); suffix++ {
			ones := 0
			for j := 0; j < p.rest; j++ {
				if suffix&(1<<uint(j)) != 0 {
					ws.z[1+p.half+j] = 1
					ones++
				} else {
					ws.z[1+p.half+j] = 0
				}
			}
			sign := signP
			if ones%2 == 1 {
				sign = f.Neg(sign)
			}
			if sign == 0 {
				continue
			}
			for v := range ws.vec {
				ws.vec[v] = 0
			}
			ws.vec[0] = 1
			for step := 0; step < n; step++ {
				ws.step(f, c.in)
			}
			total = f.Add(total, f.Mul(sign, ws.vec[0]))
		}
		out[xi] = []uint64{total}
	}
	return out, nil
}

// compiledPath is the Hamiltonian-path Plan for one prime.
type compiledPath struct {
	p  *PathProblem
	f  ff.Field
	in [][]int32
}

// Compile implements plan.Compiler.
func (p *PathProblem) Compile(f ff.Field) (plan.Plan, error) {
	return &compiledPath{p: p, f: f, in: inNeighbours(p.g)}, nil
}

// EvaluateBlock implements plan.Plan.
func (c *compiledPath) EvaluateBlock(xs []uint64) ([][]uint64, error) {
	f, p, n := c.f, c.p, c.p.n
	le := f.NewLagrangeEvaluatorZeroBased(1 << uint(p.half))
	phi := make([]uint64, 1<<uint(p.half))
	ws := newWalkScratch(n)
	out := make([][]uint64, len(xs))
	for xi, x0 := range xs {
		le.At(x0, phi)
		fillSwept(f, ws.z, 0, p.half, phi)
		signP := uint64(1)
		if n%2 == 1 {
			signP = f.Neg(signP)
		}
		for j := 0; j < p.half; j++ {
			signP = f.Mul(signP, f.Sub(1, f.Mul(2%f.Q, ws.z[j])))
		}
		total := uint64(0)
		for suffix := uint64(0); suffix < 1<<uint(p.rest); suffix++ {
			ones := 0
			for j := 0; j < p.rest; j++ {
				if suffix&(1<<uint(j)) != 0 {
					ws.z[p.half+j] = 1
					ones++
				} else {
					ws.z[p.half+j] = 0
				}
			}
			sign := signP
			if ones%2 == 1 {
				sign = f.Neg(sign)
			}
			if sign == 0 {
				continue
			}
			copy(ws.vec, ws.z)
			for step := 0; step < n-1; step++ {
				ws.step(f, c.in)
			}
			acc := uint64(0)
			for _, v := range ws.vec {
				acc = f.Add(acc, v)
			}
			total = f.Add(total, f.Mul(sign, acc))
		}
		out[xi] = []uint64{total}
	}
	return out, nil
}
