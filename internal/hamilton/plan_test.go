package hamilton

import (
	"reflect"
	"sync"
	"testing"

	"camelot/internal/core"
	"camelot/internal/ff"
	"camelot/internal/graph"
)

// checkPlanMatches verifies the compiled plan is bit-identical to
// per-point Evaluate across every supplied prime, and that one shared
// plan instance survives concurrent EvaluateBlock calls (the race
// detector checks compiled state is read-only, scratch per call).
func checkPlanMatches(t *testing.T, p core.CompiledProblem, seed int64) {
	t.Helper()
	primes, err := core.ChoosePrimes(2, p.MinModulus(), int(seed))
	if err != nil {
		t.Fatal(err)
	}
	xs := []uint64{0, 1, 2, 7, 31, 100, 54321, 1 << 19}
	for _, q := range primes {
		f, err := ff.New(q)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := p.Compile(f)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := pl.EvaluateBlock(xs)
		if err != nil {
			t.Fatal(err)
		}
		for i, x := range xs {
			want, err := p.Evaluate(q, x)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(rows[i], want) {
				t.Fatalf("q=%d x=%d: block %v != point %v", q, x, rows[i], want)
			}
		}
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				got, err := pl.EvaluateBlock(xs)
				if err != nil {
					t.Error(err)
					return
				}
				if !reflect.DeepEqual(got, rows) {
					t.Errorf("q=%d: concurrent block diverged", q)
				}
			}()
		}
		wg.Wait()
	}
}

// TestEvaluateBlockMatchesEvaluate: verification re-evaluates through
// Evaluate, so any plan divergence would break the protocol. The
// factored walk kernel relies on distributivity mod q; this checks it
// across seeds and primes, for both cycles and paths.
func TestEvaluateBlockMatchesEvaluate(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := graph.Gnp(9, 0.5, seed)
		cyc, err := NewProblem(g)
		if err != nil {
			t.Fatal(err)
		}
		checkPlanMatches(t, cyc, seed)
		pth, err := NewPathProblem(g)
		if err != nil {
			t.Fatal(err)
		}
		checkPlanMatches(t, pth, seed)
	}
}
