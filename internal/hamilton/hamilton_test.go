package hamilton

import (
	"context"
	"math/big"
	"testing"

	"camelot/internal/core"
	"camelot/internal/graph"
)

func TestCountDPKnown(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want int64
	}{
		{"triangle", graph.Complete(3), 1},
		{"K4", graph.Complete(4), 3},
		{"K5", graph.Complete(5), 12},
		{"K6", graph.Complete(6), 60},
		{"C5", graph.Cycle(5), 1},
		{"path", graph.Path(5), 0},
		{"petersen (hypohamiltonian)", graph.Petersen(), 0},
		{"K33", graph.CompleteBipartite(3, 3), 6},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := CountDP(tt.g); got.Cmp(big.NewInt(tt.want)) != 0 {
				t.Fatalf("got %v, want %d", got, tt.want)
			}
		})
	}
}

func TestCamelotMatchesDP(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"K5":     graph.Complete(5),
		"C6":     graph.Cycle(6),
		"gnp7":   graph.Gnp(7, 0.6, 1),
		"gnp8":   graph.Gnp(8, 0.5, 2),
		"sparse": graph.Gnp(8, 0.3, 3),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			want := CountDP(g)
			p, err := NewProblem(g)
			if err != nil {
				t.Fatal(err)
			}
			proof, rep, err := core.Run(context.Background(), p, core.Options{Nodes: 3, Seed: 4})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Verified {
				t.Fatal("not verified")
			}
			got, err := p.RecoverUndirected(proof)
			if err != nil {
				t.Fatal(err)
			}
			if got.Cmp(want) != 0 {
				t.Fatalf("camelot=%v dp=%v", got, want)
			}
		})
	}
}

func TestCamelotWithByzantineFaults(t *testing.T) {
	g := graph.Complete(6)
	want := CountDP(g) // 60
	p, err := NewProblem(g)
	if err != nil {
		t.Fatal(err)
	}
	d := p.Degree()
	k := 6
	ft := 0
	for {
		e := d + 1 + 2*ft
		if ft >= (e+k-1)/k {
			break
		}
		ft++
	}
	proof, rep, err := core.Run(context.Background(), p, core.Options{
		Nodes: k, FaultTolerance: ft, Adversary: core.NewEquivocatingNodes(5, 3), Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.RecoverUndirected(proof)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(want) != 0 {
		t.Fatalf("camelot=%v, want %v", got, want)
	}
	for _, s := range rep.SuspectNodes {
		if s != 3 {
			t.Fatalf("honest node %d implicated", s)
		}
	}
}

func TestHamiltonNoCycles(t *testing.T) {
	p, err := NewProblem(graph.Path(6))
	if err != nil {
		t.Fatal(err)
	}
	proof, _, err := core.Run(context.Background(), p, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.RecoverUndirected(proof)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sign() != 0 {
		t.Fatalf("path has %v hamilton cycles?", got)
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewProblem(graph.New(2)); err == nil {
		t.Fatal("n=2 must be rejected")
	}
	if _, err := NewProblem(graph.New(40)); err == nil {
		t.Fatal("n=40 must be rejected (per-node table too large)")
	}
}

func TestCountPathsDPKnown(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want int64
	}{
		{"P4 has one", graph.Path(4), 1},
		{"K3", graph.Complete(3), 3},  // 3!/2
		{"K4", graph.Complete(4), 12}, // 4!/2
		{"C5", graph.Cycle(5), 5},     // drop any edge
		{"star none", graph.CompleteBipartite(1, 3), 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := CountPathsDP(tt.g); got.Cmp(big.NewInt(tt.want)) != 0 {
				t.Fatalf("got %v, want %d", got, tt.want)
			}
		})
	}
}

func TestCamelotPathsMatchDP(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := graph.Gnp(7, 0.5, seed)
		want := CountPathsDP(g)
		p, err := NewPathProblem(g)
		if err != nil {
			t.Fatal(err)
		}
		proof, rep, err := core.Run(context.Background(), p, core.Options{Nodes: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Verified {
			t.Fatal("not verified")
		}
		got, err := p.RecoverUndirected(proof)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("seed %d: camelot=%v dp=%v", seed, got, want)
		}
	}
}

func TestPathProblemValidation(t *testing.T) {
	if _, err := NewPathProblem(graph.New(1)); err == nil {
		t.Fatal("n=1 must be rejected")
	}
}
