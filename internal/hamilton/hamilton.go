// Package hamilton implements the paper's Theorem 8(3): a Camelot
// algorithm counting Hamiltonian cycles with proof size and time
// O*(2^{n/2}). Following the permanent blueprint of Appendix A.5 applied
// to Karp's inclusion–exclusion over walk counts: with z-indicators on
// the vertices other than a fixed anchor, the number of directed
// Hamiltonian cycles is
//
//	Σ_{z ∈ {0,1}^{n-1}} (-1)^{n-1-|z|} (M(z)^n)_{00},
//
// where M(z)_{uv} = a_uv·z_v (z_anchor = 1): the matrix power counts the
// closed n-walks from the anchor confined to the support of z, and the
// alternating sum keeps exactly the walks visiting every vertex — the
// Hamiltonian cycles. Half of the z variables ride the bit-sweeping
// interpolation vector D(x); the other half is enumerated per node.
package hamilton

import (
	"fmt"
	"math/big"

	"camelot/internal/core"
	"camelot/internal/crt"
	"camelot/internal/ff"
	"camelot/internal/graph"
)

// Problem is the Camelot Hamiltonian-cycle counting problem.
type Problem struct {
	g    *graph.Graph
	n    int
	half int // D(x)-swept z variables (vertices 1..half)
	rest int // enumerated z variables (vertices half+1..n-1)
}

var _ core.Problem = (*Problem)(nil)

// NewProblem builds the Theorem 8(3) problem.
func NewProblem(g *graph.Graph) (*Problem, error) {
	n := g.N()
	if n < 3 || n > 30 {
		return nil, fmt.Errorf("hamilton: n = %d out of supported range [3, 30]", n)
	}
	half := (n - 1) / 2
	return &Problem{g: g, n: n, half: half, rest: n - 1 - half}, nil
}

// Name implements core.Problem.
func (p *Problem) Name() string { return fmt.Sprintf("hamilton-cycles(n=%d,m=%d)", p.n, p.g.M()) }

// Width implements core.Problem.
func (p *Problem) Width() int { return 1 }

// Degree implements core.Problem: the walk-count entry of M(z)^n has
// total degree <= n in z, the sign product adds half more, composed with
// deg D = 2^{half}-1.
func (p *Problem) Degree() int {
	return (p.n + p.half) * (1<<uint(p.half) - 1)
}

// MinModulus implements core.Problem.
func (p *Problem) MinModulus() uint64 {
	min := uint64(1)<<uint(p.half) + 1
	if min < 1<<20 {
		min = 1 << 20
	}
	return min
}

// Bound returns n!, an upper bound on the directed cycle count.
func (p *Problem) Bound() *big.Int { return new(big.Int).MulRange(1, int64(p.n)) }

// NumPrimes implements core.Problem.
func (p *Problem) NumPrimes() int {
	bits := p.Bound().BitLen() + 1
	per := new(big.Int).SetUint64(p.MinModulus()).BitLen() - 1
	if per < 1 {
		per = 1
	}
	np := (bits + per - 1) / per
	if np < 1 {
		np = 1
	}
	return np
}

// Evaluate implements core.Problem: O*(2^{n/2}) — for each enumerated
// suffix, one n×n matrix power by repeated squaring.
func (p *Problem) Evaluate(q, x0 uint64) ([]uint64, error) {
	f, err := ff.New(q)
	if err != nil {
		return nil, err
	}
	n := p.n
	// z_j = D_j(x0) for vertices 1..half.
	phi := f.LagrangeAtZeroBased(1<<uint(p.half), x0)
	z := make([]uint64, n) // z[v] for every vertex; z[0] = 1 (anchor)
	z[0] = 1
	for i, v := range phi {
		if v == 0 {
			continue
		}
		for j := 0; j < p.half; j++ {
			if i&(1<<uint(j)) != 0 {
				z[1+j] = f.Add(z[1+j], v)
			}
		}
	}
	// Prefix sign: (-1)^{n-1} Π_{j=1..half} (1-2z_j).
	signP := uint64(1)
	if (n-1)%2 == 1 {
		signP = f.Neg(signP)
	}
	for j := 0; j < p.half; j++ {
		signP = f.Mul(signP, f.Sub(1, f.Mul(2%f.Q, z[1+j])))
	}
	adj := p.g.AdjacencyMatrix()
	total := uint64(0)
	for suffix := uint64(0); suffix < 1<<uint(p.rest); suffix++ {
		ones := 0
		for j := 0; j < p.rest; j++ {
			if suffix&(1<<uint(j)) != 0 {
				z[1+p.half+j] = 1
				ones++
			} else {
				z[1+p.half+j] = 0
			}
		}
		// Suffix sign factor Π (1-2z_j) = (-1)^{#ones}.
		sign := signP
		if ones%2 == 1 {
			sign = f.Neg(sign)
		}
		if sign == 0 {
			continue
		}
		walks := closedWalks(f, adj, z, n)
		total = f.Add(total, f.Mul(sign, walks))
	}
	return []uint64{total}, nil
}

// closedWalks returns (M(z)^n)_{00} with M_{uv} = a_uv z_v, computed by
// iterated vector-matrix products from the anchor row: O(n³) per call.
func closedWalks(f ff.Field, adj []uint64, z []uint64, n int) uint64 {
	// vec starts as the anchor indicator; after k steps vec[v] counts
	// z-weighted walks of length k from vertex 0 to v.
	vec := make([]uint64, n)
	vec[0] = 1
	next := make([]uint64, n)
	for step := 0; step < n; step++ {
		for v := range next {
			next[v] = 0
		}
		for u := 0; u < n; u++ {
			if vec[u] == 0 {
				continue
			}
			row := adj[u*n:]
			for v := 0; v < n; v++ {
				if row[v] == 1 && z[v] != 0 {
					next[v] = f.Add(next[v], f.Mul(vec[u], z[v]))
				}
			}
		}
		vec, next = next, vec
	}
	return vec[0]
}

// RecoverDirected reconstructs the directed Hamiltonian cycle count
// Σ_{i<2^{half}} P(i) via the CRT.
func (p *Problem) RecoverDirected(proof *core.Proof) (*big.Int, error) {
	residues := make([]uint64, len(proof.Primes))
	for i, q := range proof.Primes {
		residues[i] = proof.SumRange(q, 0, 0, uint64(1)<<uint(p.half))
	}
	v, err := crt.Reconstruct(residues, proof.Primes)
	if err != nil {
		return nil, fmt.Errorf("hamilton: %w", err)
	}
	return v, nil
}

// RecoverUndirected halves the directed count (each undirected cycle is
// traversed in two directions).
func (p *Problem) RecoverUndirected(proof *core.Proof) (*big.Int, error) {
	d, err := p.RecoverDirected(proof)
	if err != nil {
		return nil, err
	}
	quo, rem := new(big.Int).QuoRem(d, big.NewInt(2), new(big.Int))
	if rem.Sign() != 0 {
		return nil, fmt.Errorf("hamilton: directed count %v is odd — proof inconsistent", d)
	}
	return quo, nil
}

// CountDP counts undirected Hamiltonian cycles with the classical
// Held–Karp bitmask dynamic program: O(2^n n²), the sequential baseline.
func CountDP(g *graph.Graph) *big.Int {
	n := g.N()
	if n < 3 {
		return big.NewInt(0)
	}
	// dp[mask][v]: walks from 0 covering exactly mask (0 ∈ mask), ending
	// at v ∈ mask, visiting each mask vertex once.
	size := 1 << uint(n)
	dp := make([][]*big.Int, size)
	dp[1] = make([]*big.Int, n)
	for v := range dp[1] {
		dp[1][v] = big.NewInt(0)
	}
	dp[1][0] = big.NewInt(1)
	total := new(big.Int)
	for mask := 1; mask < size; mask += 2 { // masks containing vertex 0
		if dp[mask] == nil {
			continue
		}
		for v := 0; v < n; v++ {
			if dp[mask][v] == nil || dp[mask][v].Sign() == 0 {
				continue
			}
			if mask == size-1 {
				if v != 0 && g.HasEdge(v, 0) {
					total.Add(total, dp[mask][v])
				}
				continue
			}
			for u := 1; u < n; u++ {
				if mask&(1<<uint(u)) != 0 || !g.HasEdge(v, u) {
					continue
				}
				nm := mask | 1<<uint(u)
				if dp[nm] == nil {
					dp[nm] = make([]*big.Int, n)
				}
				if dp[nm][u] == nil {
					dp[nm][u] = big.NewInt(0)
				}
				dp[nm][u].Add(dp[nm][u], dp[mask][v])
			}
		}
		dp[mask] = nil // release as we go
	}
	// Each undirected cycle counted twice (two directions).
	return total.Rsh(total, 1)
}
