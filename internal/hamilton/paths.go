package hamilton

// Hamiltonian paths — the paper's Appendix A.5 closing remark ("a
// similar approach works for counting the number of Hamiltonian paths").
// The inclusion–exclusion kernel changes from closed n-walks anchored at
// a vertex to open (n-1)-walks with free endpoints, with every visited
// vertex (the start included) carrying its z-indicator:
//
//	#directed Hamiltonian paths = Σ_{z∈{0,1}^n} (-1)^{n-|z|} · 1ᵀ_z M(z)^{n-1} 1,
//
// where (1_z)_u = z_u and M(z)_{uv} = a_uv z_v. Half of the z variables
// ride the bit-sweeping interpolation vector D(x), the rest are
// enumerated per node — proof size and per-node time O*(2^{n/2}).

import (
	"fmt"
	"math/big"

	"camelot/internal/core"
	"camelot/internal/crt"
	"camelot/internal/ff"
	"camelot/internal/graph"
)

// PathProblem is the Camelot Hamiltonian-path counting problem.
type PathProblem struct {
	g    *graph.Graph
	n    int
	half int // D(x)-swept z variables (vertices 0..half-1)
	rest int
}

var _ core.Problem = (*PathProblem)(nil)

// NewPathProblem builds the Hamiltonian-path problem.
func NewPathProblem(g *graph.Graph) (*PathProblem, error) {
	n := g.N()
	if n < 2 || n > 30 {
		return nil, fmt.Errorf("hamilton: n = %d out of supported range [2, 30]", n)
	}
	half := n / 2
	return &PathProblem{g: g, n: n, half: half, rest: n - half}, nil
}

// Name implements core.Problem.
func (p *PathProblem) Name() string {
	return fmt.Sprintf("hamilton-paths(n=%d,m=%d)", p.n, p.g.M())
}

// Width implements core.Problem.
func (p *PathProblem) Width() int { return 1 }

// Degree implements core.Problem: the walk sum has total z-degree <= n,
// the sign product adds half, composed with deg D = 2^{half}-1.
func (p *PathProblem) Degree() int {
	return (p.n + p.half) * (1<<uint(p.half) - 1)
}

// MinModulus implements core.Problem.
func (p *PathProblem) MinModulus() uint64 {
	min := uint64(1)<<uint(p.half) + 1
	if min < 1<<20 {
		min = 1 << 20
	}
	return min
}

// NumPrimes implements core.Problem: the directed path count is < n!.
func (p *PathProblem) NumPrimes() int {
	bits := new(big.Int).MulRange(1, int64(p.n)).BitLen() + 1
	per := new(big.Int).SetUint64(p.MinModulus()).BitLen() - 1
	if per < 1 {
		per = 1
	}
	np := (bits + per - 1) / per
	if np < 1 {
		np = 1
	}
	return np
}

// Evaluate implements core.Problem.
func (p *PathProblem) Evaluate(q, x0 uint64) ([]uint64, error) {
	f, err := ff.New(q)
	if err != nil {
		return nil, err
	}
	n := p.n
	phi := f.LagrangeAtZeroBased(1<<uint(p.half), x0)
	z := make([]uint64, n)
	for i, v := range phi {
		if v == 0 {
			continue
		}
		for j := 0; j < p.half; j++ {
			if i&(1<<uint(j)) != 0 {
				z[j] = f.Add(z[j], v)
			}
		}
	}
	signP := uint64(1)
	if n%2 == 1 {
		signP = f.Neg(signP)
	}
	for j := 0; j < p.half; j++ {
		signP = f.Mul(signP, f.Sub(1, f.Mul(2%f.Q, z[j])))
	}
	adj := p.g.AdjacencyMatrix()
	total := uint64(0)
	for suffix := uint64(0); suffix < 1<<uint(p.rest); suffix++ {
		ones := 0
		for j := 0; j < p.rest; j++ {
			if suffix&(1<<uint(j)) != 0 {
				z[p.half+j] = 1
				ones++
			} else {
				z[p.half+j] = 0
			}
		}
		sign := signP
		if ones%2 == 1 {
			sign = f.Neg(sign)
		}
		if sign == 0 {
			continue
		}
		total = f.Add(total, f.Mul(sign, openWalks(f, adj, z, n)))
	}
	return []uint64{total}, nil
}

// openWalks returns 1ᵀ_z M(z)^{n-1} 1: the z-weighted count of walks of
// length n-1 with free endpoints, every visited vertex weighted once.
func openWalks(f ff.Field, adj []uint64, z []uint64, n int) uint64 {
	vec := make([]uint64, n)
	copy(vec, z) // start weights
	next := make([]uint64, n)
	for step := 0; step < n-1; step++ {
		for v := range next {
			next[v] = 0
		}
		for u := 0; u < n; u++ {
			if vec[u] == 0 {
				continue
			}
			row := adj[u*n:]
			for v := 0; v < n; v++ {
				if row[v] == 1 && z[v] != 0 {
					next[v] = f.Add(next[v], f.Mul(vec[u], z[v]))
				}
			}
		}
		vec, next = next, vec
	}
	acc := uint64(0)
	for _, v := range vec {
		acc = f.Add(acc, v)
	}
	return acc
}

// RecoverDirected reconstructs the directed Hamiltonian path count.
func (p *PathProblem) RecoverDirected(proof *core.Proof) (*big.Int, error) {
	residues := make([]uint64, len(proof.Primes))
	for i, q := range proof.Primes {
		residues[i] = proof.SumRange(q, 0, 0, uint64(1)<<uint(p.half))
	}
	v, err := crt.Reconstruct(residues, proof.Primes)
	if err != nil {
		return nil, fmt.Errorf("hamilton: %w", err)
	}
	return v, nil
}

// RecoverUndirected halves the directed count.
func (p *PathProblem) RecoverUndirected(proof *core.Proof) (*big.Int, error) {
	d, err := p.RecoverDirected(proof)
	if err != nil {
		return nil, err
	}
	quo, rem := new(big.Int).QuoRem(d, big.NewInt(2), new(big.Int))
	if rem.Sign() != 0 {
		return nil, fmt.Errorf("hamilton: directed path count %v is odd — proof inconsistent", d)
	}
	return quo, nil
}

// CountPathsDP counts undirected Hamiltonian paths with a bitmask
// dynamic program: O(2^n n²), the sequential baseline.
func CountPathsDP(g *graph.Graph) *big.Int {
	n := g.N()
	if n < 2 {
		return big.NewInt(0)
	}
	size := 1 << uint(n)
	dp := make([][]*big.Int, size)
	for v := 0; v < n; v++ {
		mask := 1 << uint(v)
		if dp[mask] == nil {
			dp[mask] = make([]*big.Int, n)
		}
		dp[mask][v] = big.NewInt(1)
	}
	total := new(big.Int)
	for mask := 1; mask < size; mask++ {
		if dp[mask] == nil {
			continue
		}
		for v := 0; v < n; v++ {
			if dp[mask][v] == nil || dp[mask][v].Sign() == 0 {
				continue
			}
			if mask == size-1 {
				total.Add(total, dp[mask][v])
				continue
			}
			for u := 0; u < n; u++ {
				if mask&(1<<uint(u)) != 0 || !g.HasEdge(v, u) {
					continue
				}
				nm := mask | 1<<uint(u)
				if dp[nm] == nil {
					dp[nm] = make([]*big.Int, n)
				}
				if dp[nm][u] == nil {
					dp[nm][u] = big.NewInt(0)
				}
				dp[nm][u].Add(dp[nm][u], dp[mask][v])
			}
		}
		dp[mask] = nil
	}
	// Each undirected path counted once per direction.
	return total.Rsh(total, 1)
}
