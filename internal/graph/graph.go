// Package graph provides the simple-graph and multigraph types consumed by
// the Camelot algorithm instantiations: bitset adjacency for the
// exponential-time algorithms (independent-set and clique predicates in
// O(n/64) words), edge lists for the sparse triangle algorithms, and
// deterministic generators for the experiment workloads.
package graph

import (
	"fmt"
	"math/rand"

	"camelot/internal/bitset"
)

// Graph is an undirected simple graph on vertices 0..n-1.
type Graph struct {
	n   int
	adj []bitset.Set
	m   int
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	g := &Graph{n: n, adj: make([]bitset.Set, n)}
	for i := range g.adj {
		g.adj[i] = bitset.New(n)
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// AddEdge inserts the undirected edge {u, v}. Self-loops and duplicate
// edges are ignored (simple graph).
func (g *Graph) AddEdge(u, v int) {
	if u == v || g.adj[u].Contains(v) {
		return
	}
	g.adj[u].Add(v)
	g.adj[v].Add(u)
	g.m++
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool { return u != v && g.adj[u].Contains(v) }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return g.adj[v].Count() }

// Neighbors returns the adjacency bitset of v (callers must not mutate).
func (g *Graph) Neighbors(v int) bitset.Set { return g.adj[v] }

// Edges returns all edges as ordered pairs (u < v).
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.m)
	for u := 0; u < g.n; u++ {
		g.adj[u].ForEach(func(v int) {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		})
	}
	return out
}

// IsCliqueMask reports whether the vertex subset encoded by mask
// (n <= 64) induces a clique.
func (g *Graph) IsCliqueMask(mask uint64) bool {
	for u := 0; u < g.n && u < 64; u++ {
		if mask&(1<<uint(u)) == 0 {
			continue
		}
		// Every mask vertex after u must be adjacent to u.
		rest := mask &^ ((uint64(2) << uint(u)) - 1)
		if rest&^g.adj[u].Word(0) != 0 {
			return false
		}
	}
	return true
}

// IsIndependentMask reports whether the vertex subset encoded by mask
// (n <= 64) is an independent set.
func (g *Graph) IsIndependentMask(mask uint64) bool {
	for u := 0; u < g.n && u < 64; u++ {
		if mask&(1<<uint(u)) == 0 {
			continue
		}
		if mask&g.adj[u].Word(0) != 0 {
			return false
		}
	}
	return true
}

// EdgesWithinMask counts edges of the subgraph induced by mask (n <= 64).
func (g *Graph) EdgesWithinMask(mask uint64) int {
	c := 0
	for u := 0; u < g.n && u < 64; u++ {
		if mask&(1<<uint(u)) == 0 {
			continue
		}
		c += onesCount(mask & g.adj[u].Word(0))
	}
	return c / 2
}

// EdgesBetweenMasks counts edges with one endpoint in each (disjoint)
// mask (n <= 64).
func (g *Graph) EdgesBetweenMasks(a, b uint64) int {
	c := 0
	for u := 0; u < g.n && u < 64; u++ {
		if a&(1<<uint(u)) == 0 {
			continue
		}
		c += onesCount(b & g.adj[u].Word(0))
	}
	return c
}

func onesCount(x uint64) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

// NeighborhoodMask returns the union of neighborhoods of the vertices in
// mask, as a mask (n <= 64).
func (g *Graph) NeighborhoodMask(mask uint64) uint64 {
	var nb uint64
	for u := 0; u < g.n && u < 64; u++ {
		if mask&(1<<uint(u)) != 0 {
			nb |= g.adj[u].Word(0)
		}
	}
	return nb
}

// AdjacencyMatrix returns the n×n 0/1 adjacency matrix in row-major order.
func (g *Graph) AdjacencyMatrix() []uint64 {
	a := make([]uint64, g.n*g.n)
	for u := 0; u < g.n; u++ {
		g.adj[u].ForEach(func(v int) { a[u*g.n+v] = 1 })
	}
	return a
}

// String summarizes the graph for diagnostics.
func (g *Graph) String() string { return fmt.Sprintf("graph(n=%d, m=%d)", g.n, g.m) }

// --- Generators ------------------------------------------------------------

// Gnp returns an Erdős–Rényi G(n, p) graph drawn with the given seed.
func Gnp(n int, p float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// Complete returns K_n.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

// Cycle returns C_n.
func Cycle(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

// Path returns P_n (n vertices, n-1 edges).
func Path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// Petersen returns the Petersen graph (10 vertices, 15 edges) — the
// classic chromatic/Tutte test subject.
func Petersen() *Graph {
	g := New(10)
	for i := 0; i < 5; i++ {
		g.AddEdge(i, (i+1)%5)     // outer cycle
		g.AddEdge(i+5, (i+2)%5+5) // inner pentagram
		g.AddEdge(i, i+5)         // spokes
	}
	return g
}

// CompleteBipartite returns K_{a,b}.
func CompleteBipartite(a, b int) *Graph {
	g := New(a + b)
	for u := 0; u < a; u++ {
		for v := a; v < a+b; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

// PlantCliques returns a sparse G(n, p) graph with cnt cliques of size k
// planted on random vertex sets — a workload where clique counting has a
// known-from-construction lower bound.
func PlantCliques(n int, p float64, k, cnt int, seed int64) *Graph {
	g := Gnp(n, p, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	for c := 0; c < cnt; c++ {
		perm := rng.Perm(n)[:k]
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				g.AddEdge(perm[i], perm[j])
			}
		}
	}
	return g
}

// --- Multigraphs (Tutte polynomial) ----------------------------------------

// Multigraph is an undirected multigraph: parallel edges and self-loops
// are allowed and significant (the Tutte polynomial distinguishes them).
type Multigraph struct {
	n     int
	edges [][2]int
}

// NewMultigraph returns an edgeless multigraph on n vertices.
func NewMultigraph(n int) *Multigraph { return &Multigraph{n: n} }

// FromGraph converts a simple graph into a multigraph.
func FromGraph(g *Graph) *Multigraph {
	mg := NewMultigraph(g.N())
	for _, e := range g.Edges() {
		mg.AddEdge(e[0], e[1])
	}
	return mg
}

// N returns the vertex count.
func (mg *Multigraph) N() int { return mg.n }

// M returns the edge count (with multiplicity).
func (mg *Multigraph) M() int { return len(mg.edges) }

// AddEdge appends the edge {u, v}; u == v inserts a loop.
func (mg *Multigraph) AddEdge(u, v int) { mg.edges = append(mg.edges, [2]int{u, v}) }

// Edges returns the edge list (callers must not mutate).
func (mg *Multigraph) Edges() [][2]int { return mg.edges }

// Components returns the number of connected components of the spanning
// subgraph with the edge subset selected by include (nil = all edges).
func (mg *Multigraph) Components(include []bool) int {
	parent := make([]int, mg.n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	comps := mg.n
	for i, e := range mg.edges {
		if include != nil && !include[i] {
			continue
		}
		ru, rv := find(e[0]), find(e[1])
		if ru != rv {
			parent[ru] = rv
			comps--
		}
	}
	return comps
}

// EdgesWithinMask counts edges (with multiplicity, loops included) whose
// endpoints both lie in mask (n <= 64).
func (mg *Multigraph) EdgesWithinMask(mask uint64) int {
	c := 0
	for _, e := range mg.edges {
		if mask&(1<<uint(e[0])) != 0 && mask&(1<<uint(e[1])) != 0 {
			c++
		}
	}
	return c
}

// EdgesBetweenMasks counts edges with one endpoint in a and the other in
// b, for disjoint masks (n <= 64). Loops never cross.
func (mg *Multigraph) EdgesBetweenMasks(a, b uint64) int {
	c := 0
	for _, e := range mg.edges {
		ea, eb := uint64(1)<<uint(e[0]), uint64(1)<<uint(e[1])
		if (a&ea != 0 && b&eb != 0) || (a&eb != 0 && b&ea != 0) {
			c++
		}
	}
	return c
}

// RandomMultigraph returns a multigraph with m edges drawn uniformly with
// replacement (so loops and parallel edges occur).
func RandomMultigraph(n, m int, seed int64) *Multigraph {
	rng := rand.New(rand.NewSource(seed))
	mg := NewMultigraph(n)
	for i := 0; i < m; i++ {
		mg.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return mg
}
