package graph

import (
	"testing"
)

func TestAddEdgeSimpleInvariants(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0) // duplicate ignored
	g.AddEdge(2, 2) // loop ignored
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge must be symmetric")
	}
	if g.HasEdge(2, 2) {
		t.Fatal("loops must be rejected")
	}
	if g.Degree(0) != 1 || g.Degree(2) != 0 {
		t.Fatal("wrong degrees")
	}
}

func TestEdgesList(t *testing.T) {
	g := Cycle(4)
	edges := g.Edges()
	if len(edges) != 4 {
		t.Fatalf("edges = %v", edges)
	}
	for _, e := range edges {
		if e[0] >= e[1] {
			t.Fatalf("edge %v not ordered", e)
		}
	}
}

func TestMaskPredicates(t *testing.T) {
	// Triangle 0-1-2 plus pendant 3 attached to 0.
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)

	tests := []struct {
		mask   uint64
		clique bool
		indep  bool
	}{
		{0b0000, true, true},
		{0b0001, true, true},
		{0b0111, true, false},  // the triangle
		{0b1111, false, false}, // 1-3 not an edge
		{0b1010, true, false},  // hmm: {1,3} edge? no => clique false
		{0b0110, true, false},  // {1,2} edge: clique, not independent
		{0b1100, true, true},   // {2,3}: no edge: independent, not clique
	}
	for _, tt := range tests {
		if tt.mask == 0b1010 {
			// {1,3}: no edge => not a clique but independent.
			if g.IsCliqueMask(tt.mask) {
				t.Errorf("mask %04b: IsClique = true, want false", tt.mask)
			}
			if !g.IsIndependentMask(tt.mask) {
				t.Errorf("mask %04b: IsIndependent = false, want true", tt.mask)
			}
			continue
		}
		if tt.mask == 0b1100 {
			if g.IsCliqueMask(tt.mask) {
				t.Errorf("mask %04b: IsClique true, want false", tt.mask)
			}
			if !g.IsIndependentMask(tt.mask) {
				t.Errorf("mask %04b: IsIndependent false, want true", tt.mask)
			}
			continue
		}
		if got := g.IsCliqueMask(tt.mask); got != tt.clique {
			t.Errorf("mask %04b: IsClique = %v, want %v", tt.mask, got, tt.clique)
		}
		if got := g.IsIndependentMask(tt.mask); got != tt.indep {
			t.Errorf("mask %04b: IsIndependent = %v, want %v", tt.mask, got, tt.indep)
		}
	}
}

func TestEdgeCountingMasks(t *testing.T) {
	g := Complete(5)
	if got := g.EdgesWithinMask(0b11111); got != 10 {
		t.Fatalf("EdgesWithinMask(K5) = %d, want 10", got)
	}
	if got := g.EdgesWithinMask(0b00111); got != 3 {
		t.Fatalf("EdgesWithinMask(triangle) = %d, want 3", got)
	}
	if got := g.EdgesBetweenMasks(0b00011, 0b11100); got != 6 {
		t.Fatalf("EdgesBetweenMasks = %d, want 6", got)
	}
}

func TestNeighborhoodMask(t *testing.T) {
	g := Path(4) // 0-1-2-3
	if got := g.NeighborhoodMask(0b0001); got != 0b0010 {
		t.Fatalf("N(0) = %04b", got)
	}
	if got := g.NeighborhoodMask(0b0110); got != 0b1111 {
		t.Fatalf("N({1,2}) = %04b, want 1111", got)
	}
}

func TestGenerators(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		n, m int
	}{
		{"complete6", Complete(6), 6, 15},
		{"cycle7", Cycle(7), 7, 7},
		{"path5", Path(5), 5, 4},
		{"petersen", Petersen(), 10, 15},
		{"bipartite", CompleteBipartite(3, 4), 7, 12},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.g.N() != tt.n || tt.g.M() != tt.m {
				t.Fatalf("got (n=%d, m=%d), want (%d, %d)", tt.g.N(), tt.g.M(), tt.n, tt.m)
			}
		})
	}
}

func TestPetersenIsCubic(t *testing.T) {
	g := Petersen()
	for v := 0; v < 10; v++ {
		if g.Degree(v) != 3 {
			t.Fatalf("degree(%d) = %d, want 3", v, g.Degree(v))
		}
	}
}

func TestGnpDeterministic(t *testing.T) {
	a := Gnp(30, 0.3, 7)
	b := Gnp(30, 0.3, 7)
	if a.M() != b.M() {
		t.Fatal("same seed must give same graph")
	}
	c := Gnp(30, 0.3, 8)
	if a.M() == c.M() && a.String() == c.String() {
		// Edge counts can coincide; compare adjacency.
		same := true
		for v := 0; v < 30; v++ {
			if a.adj[v].Word(0) != c.adj[v].Word(0) {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds gave identical graphs")
		}
	}
}

func TestPlantCliques(t *testing.T) {
	g := PlantCliques(20, 0.05, 5, 2, 3)
	// Cannot know which vertices, but the construction guarantees at least
	// one 5-clique exists; verify via brute force.
	found := false
	for mask := uint64(0); mask < 1<<20 && !found; mask++ {
		if onesCount(mask) == 5 && g.IsCliqueMask(mask) {
			found = true
		}
	}
	if !found {
		t.Fatal("planted clique not found")
	}
}

func TestAdjacencyMatrix(t *testing.T) {
	g := Path(3)
	a := g.AdjacencyMatrix()
	want := []uint64{0, 1, 0, 1, 0, 1, 0, 1, 0}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("adjacency = %v", a)
		}
	}
}

func TestMultigraphComponents(t *testing.T) {
	mg := NewMultigraph(5)
	mg.AddEdge(0, 1)
	mg.AddEdge(1, 2)
	mg.AddEdge(3, 3) // loop: joins nothing
	if got := mg.Components(nil); got != 3 {
		t.Fatalf("components = %d, want 3 ({0,1,2}, {3}, {4})", got)
	}
	// Exclude the 1-2 edge.
	inc := []bool{true, false, true}
	if got := mg.Components(inc); got != 4 {
		t.Fatalf("components = %d, want 4", got)
	}
}

func TestMultigraphMaskCounts(t *testing.T) {
	mg := NewMultigraph(4)
	mg.AddEdge(0, 1)
	mg.AddEdge(0, 1) // parallel
	mg.AddEdge(2, 2) // loop
	mg.AddEdge(1, 2)
	if got := mg.EdgesWithinMask(0b0011); got != 2 {
		t.Fatalf("within {0,1} = %d, want 2", got)
	}
	if got := mg.EdgesWithinMask(0b0100); got != 1 {
		t.Fatalf("within {2} (loop) = %d, want 1", got)
	}
	if got := mg.EdgesBetweenMasks(0b0011, 0b0100); got != 1 {
		t.Fatalf("between = %d, want 1", got)
	}
}

func TestFromGraph(t *testing.T) {
	mg := FromGraph(Cycle(5))
	if mg.N() != 5 || mg.M() != 5 {
		t.Fatalf("FromGraph: n=%d m=%d", mg.N(), mg.M())
	}
	if mg.Components(nil) != 1 {
		t.Fatal("cycle must be connected")
	}
}

func TestRandomMultigraphDeterministic(t *testing.T) {
	a := RandomMultigraph(6, 12, 1)
	b := RandomMultigraph(6, 12, 1)
	if a.M() != 12 || b.M() != 12 {
		t.Fatal("wrong edge count")
	}
	for i := range a.edges {
		if a.edges[i] != b.edges[i] {
			t.Fatal("same seed must reproduce edges")
		}
	}
}
