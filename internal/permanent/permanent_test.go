package permanent

import (
	"context"
	"math/big"
	"math/rand"
	"testing"

	"camelot/internal/core"
	"camelot/internal/ff"
)

func randMatrix(rng *rand.Rand, n int, lo, hi int64) [][]int64 {
	a := make([][]int64, n)
	for i := range a {
		a[i] = make([]int64, n)
		for j := range a[i] {
			a[i][j] = lo + rng.Int63n(hi-lo+1)
		}
	}
	return a
}

func TestNaiveKnown(t *testing.T) {
	// per [[1,2],[3,4]] = 1*4 + 2*3 = 10.
	a := [][]int64{{1, 2}, {3, 4}}
	if got := Naive(a); got.Cmp(big.NewInt(10)) != 0 {
		t.Fatalf("got %v, want 10", got)
	}
	// All-ones 3x3: 3! = 6.
	ones := [][]int64{{1, 1, 1}, {1, 1, 1}, {1, 1, 1}}
	if got := Naive(ones); got.Cmp(big.NewInt(6)) != 0 {
		t.Fatalf("got %v, want 6", got)
	}
	// Identity: 1.
	id := [][]int64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	if got := Naive(id); got.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("got %v, want 1", got)
	}
}

func TestRyserMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 2; n <= 7; n++ {
		a := randMatrix(rng, n, -3, 3)
		if got, want := Ryser(a), Naive(a); got.Cmp(want) != 0 {
			t.Fatalf("n=%d: ryser=%v naive=%v", n, got, want)
		}
	}
}

func TestCamelotMatchesRyser(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{2, 4, 5, 6, 8} {
		a := randMatrix(rng, n, 0, 2)
		want := Ryser(a)
		p, err := NewProblem(a)
		if err != nil {
			t.Fatal(err)
		}
		proof, rep, err := core.Run(context.Background(), p, core.Options{Nodes: 3, Seed: int64(n)})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Verified {
			t.Fatal("not verified")
		}
		got, err := p.Recover(proof)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("n=%d: camelot=%v ryser=%v", n, got, want)
		}
	}
}

func TestCamelotNegativeEntries(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randMatrix(rng, 6, -5, 5)
	want := Ryser(a)
	p, err := NewProblem(a)
	if err != nil {
		t.Fatal(err)
	}
	proof, _, err := core.Run(context.Background(), p, core.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Recover(proof)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(want) != 0 {
		t.Fatalf("camelot=%v ryser=%v", got, want)
	}
	if want.Sign() >= 0 {
		t.Log("note: drawn matrix had non-negative permanent; signed path still exercised via CRT range")
	}
}

func TestCamelotWithByzantineFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randMatrix(rng, 6, 0, 1)
	want := Ryser(a)
	p, err := NewProblem(a)
	if err != nil {
		t.Fatal(err)
	}
	// Two byzantine nodes: the radius must cover two full node blocks.
	d := p.Degree()
	k := 8
	ft := 0
	for {
		e := d + 1 + 2*ft
		if ft >= 2*((e+k-1)/k) {
			break
		}
		ft++
	}
	proof, rep, err := core.Run(context.Background(), p, core.Options{
		Nodes: k, FaultTolerance: ft, Adversary: core.NewLyingNodes(6, 1, 5), Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Recover(proof)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(want) != 0 {
		t.Fatalf("camelot=%v ryser=%v", got, want)
	}
	badSet := map[int]bool{1: true, 5: true}
	for _, s := range rep.SuspectNodes {
		if !badSet[s] {
			t.Fatalf("honest node %d implicated", s)
		}
	}
}

func TestPermanentZeroMatrix(t *testing.T) {
	a := [][]int64{{0, 0}, {0, 0}}
	p, err := NewProblem(a)
	if err != nil {
		t.Fatal(err)
	}
	proof, _, err := core.Run(context.Background(), p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Recover(proof)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sign() != 0 {
		t.Fatalf("got %v, want 0", got)
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewProblem([][]int64{{1}}); err == nil {
		t.Fatal("n=1 must be rejected")
	}
	if _, err := NewProblem([][]int64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged matrix must be rejected")
	}
}

func BenchmarkRyser12(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randMatrix(rng, 12, 0, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Ryser(a)
	}
}

func TestEvaluateBlockMatchesEvaluate(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{4, 7, 10} {
		a := randMatrix(rng, n, -3, 3)
		p, err := NewProblem(a)
		if err != nil {
			t.Fatal(err)
		}
		const q = uint64(1048583)
		f, err := ff.New(q)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := p.Compile(f)
		if err != nil {
			t.Fatal(err)
		}
		// Mix grid points (indicator Lagrange) and far-off points.
		xs := []uint64{0, 1, 2, uint64(1)<<uint(n/2) + 5, 99991 % q, 123456 % q}
		rows, err := pl.EvaluateBlock(xs)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != len(xs) {
			t.Fatalf("n=%d: %d rows, want %d", n, len(rows), len(xs))
		}
		for i, x := range xs {
			want, err := p.Evaluate(q, x)
			if err != nil {
				t.Fatal(err)
			}
			if len(rows[i]) != 1 || rows[i][0] != want[0] {
				t.Fatalf("n=%d: block P(%d) = %v, point path %v", n, x, rows[i], want)
			}
		}
	}
}

func TestEvaluateBlockEmpty(t *testing.T) {
	p, err := NewProblem([][]int64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	f, err := ff.New(1048583)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := p.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := pl.EvaluateBlock(nil)
	if err != nil || len(rows) != 0 {
		t.Fatalf("empty block: rows=%v err=%v", rows, err)
	}
}
