// Package permanent implements the paper's Theorem 8(2): a Camelot
// algorithm for the permanent of an n×n integer matrix with proof size
// and time O*(2^{n/2}). The proof polynomial (Appendix A.5) plugs the
// bit-sweeping interpolation vector D(x) into half of Ryser's
// inclusion–exclusion formula; per A = Σ_{i<2^{n/2}} P(i), reconstructed
// over several primes with the CRT.
package permanent

import (
	"fmt"
	"math/big"

	"camelot/internal/core"
	"camelot/internal/crt"
	"camelot/internal/ff"
	"camelot/internal/plan"
)

// Problem is the Camelot permanent problem.
type Problem struct {
	a    [][]int64
	n    int
	half int // number of D(x)-swept columns
	phi  int64
}

var (
	_ core.Problem         = (*Problem)(nil)
	_ core.CompiledProblem = (*Problem)(nil)
)

// NewProblem builds the problem for a square integer matrix.
func NewProblem(a [][]int64) (*Problem, error) {
	n := len(a)
	if n < 2 || n > 40 {
		return nil, fmt.Errorf("permanent: n = %d out of supported range [2, 40]", n)
	}
	phi := int64(1)
	for _, row := range a {
		if len(row) != n {
			return nil, fmt.Errorf("permanent: matrix not square")
		}
		for _, v := range row {
			if v > phi {
				phi = v
			}
			if -v > phi {
				phi = -v
			}
		}
	}
	return &Problem{a: a, n: n, half: n / 2, phi: phi}, nil
}

// Name implements core.Problem.
func (p *Problem) Name() string { return fmt.Sprintf("permanent(n=%d)", p.n) }

// Width implements core.Problem.
func (p *Problem) Width() int { return 1 }

// Degree implements core.Problem: Q has total degree <= n + n/2 in its
// n/2 arguments (n linear row factors plus the sign product), composed
// with D of degree 2^{n/2}-1.
func (p *Problem) Degree() int {
	return (p.n + p.half) * (1<<uint(p.half) - 1)
}

// MinModulus implements core.Problem.
func (p *Problem) MinModulus() uint64 {
	min := uint64(1)<<uint(p.half) + 1
	if min < 1<<20 {
		min = 1 << 20
	}
	return min
}

// Bound returns n!·φ^n, an upper bound on |per A|.
func (p *Problem) Bound() *big.Int {
	b := new(big.Int).MulRange(1, int64(p.n))
	b.Mul(b, new(big.Int).Exp(big.NewInt(p.phi), big.NewInt(int64(p.n)), nil))
	return b
}

// NumPrimes implements core.Problem: enough primes for the signed CRT
// range (one extra bit for the sign).
func (p *Problem) NumPrimes() int {
	bits := p.Bound().BitLen() + 2
	per := new(big.Int).SetUint64(p.MinModulus()).BitLen() - 1
	if per < 1 {
		per = 1
	}
	np := (bits + per - 1) / per
	if np < 1 {
		np = 1
	}
	return np
}

// Evaluate implements core.Problem: P(x0) = Q(D(x0)) per eq. (44), in
// O*(2^{n/2}) via a Gray-code sweep of the enumerated suffix half.
func (p *Problem) Evaluate(q, x0 uint64) ([]uint64, error) {
	f, err := ff.New(q)
	if err != nil {
		return nil, err
	}
	n, half := p.n, p.half
	rest := n - half
	k := f.Kernel()
	am := p.reducedMatrix(f)
	// z_j = D_j(x0) for the first half of the z variables.
	phi := f.LagrangeAtZeroBased(1<<uint(half), x0)
	z := make([]uint64, half)
	for i, v := range phi {
		if v == 0 {
			continue
		}
		for j := 0; j < half; j++ {
			if i&(1<<uint(j)) != 0 {
				z[j] = f.Add(z[j], v)
			}
		}
	}
	// Prefix row sums rowP_i = Σ_{j<half} a_ij z_j and prefix sign
	// Π_{j<half}(1-2z_j).
	rowP := make([]uint64, n)
	for i := 0; i < n; i++ {
		acc := uint64(0)
		row := am[i*n : i*n+half]
		for j := 0; j < half; j++ {
			acc = f.Add(acc, ff.MulK(row[j], z[j], k))
		}
		rowP[i] = acc
	}
	signP := uint64(1)
	if n%2 == 1 {
		signP = f.Neg(signP)
	}
	for j := 0; j < half; j++ {
		signP = ff.MulK(signP, f.Sub(1, ff.MulK(2%f.Q, z[j], k)), k)
	}
	// Gray-code sweep over the suffix assignments: maintain per-row
	// suffix sums and the suffix popcount.
	rowS := make([]uint64, n)
	total := uint64(0)
	gray := uint64(0)
	ones := 0
	for iter := uint64(0); ; iter++ {
		// Term for the current suffix.
		sign := signP
		if ones%2 == 1 {
			sign = f.Neg(sign)
		}
		prod := sign
		for i := 0; i < n && prod != 0; i++ {
			prod = ff.MulK(prod, f.Add(rowP[i], rowS[i]), k)
		}
		total = f.Add(total, prod)
		if iter+1 == 1<<uint(rest) {
			break
		}
		// Advance Gray code: flip bit tz(iter+1).
		bit := trailingZeros(iter + 1)
		mask := uint64(1) << uint(bit)
		col := half + bit
		if gray&mask == 0 {
			gray |= mask
			ones++
			for i := 0; i < n; i++ {
				rowS[i] = f.Add(rowS[i], am[i*n+col])
			}
		} else {
			gray &^= mask
			ones--
			for i := 0; i < n; i++ {
				rowS[i] = f.Sub(rowS[i], am[i*n+col])
			}
		}
	}
	return []uint64{total}, nil
}

// reducedMatrix returns the matrix entries as canonical residues mod
// f.Q, row-major. Reducing once per call keeps the signed per-entry
// reductions out of the Gray-code sweep, which touches a column per
// step.
func (p *Problem) reducedMatrix(f ff.Field) []uint64 {
	n := p.n
	am := make([]uint64, n*n)
	for i, row := range p.a {
		for j, v := range row {
			am[i*n+j] = f.Reduce(v)
		}
	}
	return am
}

// compiled is the permanent Plan for one prime: the reduced matrix is
// hoisted to compile time; the Lagrange evaluator and all sweep state
// are per-call scratch (built once per block, amortized over its
// points), so one plan serves concurrent chunk tasks.
type compiled struct {
	p  *Problem
	f  ff.Field
	am []uint64 // reducedMatrix(f), read-only after compile
}

// Compile implements plan.Compiler. The per-point Evaluate spends its
// time in two places: the O(2^{n/2}·n) Gray-code sweep over suffix
// assignments (half of which is maintaining the suffix row sums) and
// the O(2^{n/2}) Lagrange vector. Across a block the suffix row sums
// and Gray-code bookkeeping are identical for every point, so the
// compiled path updates them once per step for the whole block and
// reuses one Lagrange evaluator — roughly halving the per-point work
// for large blocks.
//
// Deliberately NOT shared with Evaluate: verification re-evaluates
// through the per-point path, so the two independent implementations
// cross-check each other and a plan bug fails verification loudly
// instead of silently corrupting the recovered permanent.
func (p *Problem) Compile(f ff.Field) (plan.Plan, error) {
	return &compiled{p: p, f: f, am: p.reducedMatrix(f)}, nil
}

// EvaluateBlock implements plan.Plan.
func (c *compiled) EvaluateBlock(xs []uint64) ([][]uint64, error) {
	p, f, am := c.p, c.f, c.am
	n, half := p.n, p.half
	rest := n - half
	m := len(xs)
	out := make([][]uint64, m)
	if m == 0 {
		return out, nil
	}
	k := f.Kernel()
	le := f.NewLagrangeEvaluatorZeroBased(1 << uint(half))
	phi := make([]uint64, 1<<uint(half))
	z := make([]uint64, half)
	// Per-point prefix state: row sums over the D(x)-swept columns and
	// the prefix sign product.
	rowP := make([]uint64, m*n)
	signP := make([]uint64, m)
	for xi, x0 := range xs {
		le.At(x0, phi)
		for j := range z {
			z[j] = 0
		}
		for i, v := range phi {
			if v == 0 {
				continue
			}
			for j := 0; j < half; j++ {
				if i&(1<<uint(j)) != 0 {
					z[j] = f.Add(z[j], v)
				}
			}
		}
		base := xi * n
		for i := 0; i < n; i++ {
			acc := uint64(0)
			row := am[i*n : i*n+half]
			for j := 0; j < half; j++ {
				acc = f.Add(acc, ff.MulK(row[j], z[j], k))
			}
			rowP[base+i] = acc
		}
		sign := uint64(1)
		if n%2 == 1 {
			sign = f.Neg(sign)
		}
		for j := 0; j < half; j++ {
			sign = ff.MulK(sign, f.Sub(1, ff.MulK(2%f.Q, z[j], k)), k)
		}
		signP[xi] = sign
	}
	// One shared Gray-code sweep: suffix row sums rowS and the suffix
	// popcount advance once per step for every point in the block.
	totals := make([]uint64, m)
	rowS := make([]uint64, n)
	gray := uint64(0)
	ones := 0
	for iter := uint64(0); ; iter++ {
		neg := ones%2 == 1
		for xi := 0; xi < m; xi++ {
			sign := signP[xi]
			if neg {
				sign = f.Neg(sign)
			}
			// 4-wide unrolled lazy sweep: the row sums go into the
			// multiplier unreduced (< 2q). Evaluate keeps the scalar
			// canonical sweep, so the block/point equivalence tests double
			// as a differential check of the lazy variant.
			base := xi * n
			prod := ff.ProdSumLazy(sign, rowP[base:base+n], rowS[:n], k)
			totals[xi] = f.Add(totals[xi], prod)
		}
		if iter+1 == 1<<uint(rest) {
			break
		}
		bit := trailingZeros(iter + 1)
		mask := uint64(1) << uint(bit)
		col := half + bit
		if gray&mask == 0 {
			gray |= mask
			ones++
			for i := 0; i < n; i++ {
				rowS[i] = f.Add(rowS[i], am[i*n+col])
			}
		} else {
			gray &^= mask
			ones--
			for i := 0; i < n; i++ {
				rowS[i] = f.Sub(rowS[i], am[i*n+col])
			}
		}
	}
	for xi := range out {
		out[xi] = []uint64{totals[xi]}
	}
	return out, nil
}

// Recover reconstructs per A = Σ_{i=0}^{2^{n/2}-1} P(i) with the signed
// CRT.
func (p *Problem) Recover(proof *core.Proof) (*big.Int, error) {
	residues := make([]uint64, len(proof.Primes))
	for i, q := range proof.Primes {
		residues[i] = proof.SumRange(q, 0, 0, uint64(1)<<uint(p.half))
	}
	v, err := crt.ReconstructSigned(residues, proof.Primes)
	if err != nil {
		return nil, fmt.Errorf("permanent: %w", err)
	}
	return v, nil
}

func trailingZeros(x uint64) int {
	c := 0
	for x&1 == 0 {
		x >>= 1
		c++
	}
	return c
}

// Ryser computes the permanent exactly with Ryser's O(2^n·n) formula and
// Gray-code updates — the sequential baseline.
func Ryser(a [][]int64) *big.Int {
	n := len(a)
	total := new(big.Int)
	rowSums := make([]*big.Int, n)
	for i := range rowSums {
		rowSums[i] = new(big.Int)
	}
	gray := uint64(0)
	ones := 0
	term := new(big.Int)
	for iter := uint64(1); iter < 1<<uint(n); iter++ {
		bit := trailingZeros(iter)
		mask := uint64(1) << uint(bit)
		if gray&mask == 0 {
			gray |= mask
			ones++
			for i := 0; i < n; i++ {
				rowSums[i].Add(rowSums[i], big.NewInt(a[i][bit]))
			}
		} else {
			gray &^= mask
			ones--
			for i := 0; i < n; i++ {
				rowSums[i].Sub(rowSums[i], big.NewInt(a[i][bit]))
			}
		}
		term.SetInt64(1)
		for i := 0; i < n; i++ {
			term.Mul(term, rowSums[i])
			if term.Sign() == 0 {
				break
			}
		}
		if (n-ones)%2 == 1 {
			total.Sub(total, term)
		} else {
			total.Add(total, term)
		}
	}
	return total
}

// Naive computes the permanent by brute-force permutation expansion —
// O(n!), cross-check for tiny matrices.
func Naive(a [][]int64) *big.Int {
	n := len(a)
	total := new(big.Int)
	perm := make([]int, n)
	used := make([]bool, n)
	var rec func(i int, prod *big.Int)
	rec = func(i int, prod *big.Int) {
		if prod.Sign() == 0 {
			// Zero products cannot revive; still must count remaining
			// permutations as zero contribution — just stop.
			return
		}
		if i == n {
			total.Add(total, prod)
			return
		}
		for j := 0; j < n; j++ {
			if used[j] {
				continue
			}
			used[j] = true
			perm[i] = j
			rec(i+1, new(big.Int).Mul(prod, big.NewInt(a[i][j])))
			used[j] = false
		}
	}
	rec(0, big.NewInt(1))
	return total
}
