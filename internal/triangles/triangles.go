// Package triangles implements the paper's sparsity-aware results (§6):
// the Itai–Rodeh trace reduction, the split/sparse parallel triangle
// counter of Theorem 4, the Camelot proof polynomial of Theorem 3 built
// on the §3.3 polynomial extension of Yates's algorithm, and the
// Alon–Yuster–Zwick-bound parallel design of Theorem 5.
package triangles

import (
	"fmt"
	"math"
	"math/big"
	"runtime"
	"sort"
	"sync"

	"camelot/internal/core"
	"camelot/internal/crt"
	"camelot/internal/ff"
	"camelot/internal/graph"
	"camelot/internal/matrix"
	"camelot/internal/plan"
	"camelot/internal/tensor"
	"camelot/internal/yates"
)

// CountNaive counts triangles by enumerating vertex triples u < v < w —
// the O(n³) ground truth.
func CountNaive(g *graph.Graph) uint64 {
	n := g.N()
	count := uint64(0)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !g.HasEdge(u, v) {
				continue
			}
			for w := v + 1; w < n; w++ {
				if g.HasEdge(u, w) && g.HasEdge(v, w) {
					count++
				}
			}
		}
	}
	return count
}

// CountEdgeIterator counts triangles by intersecting neighborhoods along
// each edge with word-parallel bitsets: O(m·n/64).
func CountEdgeIterator(g *graph.Graph) uint64 {
	total := uint64(0)
	for _, e := range g.Edges() {
		nu, nv := g.Neighbors(e[0]), g.Neighbors(e[1])
		words := (g.N() + 63) / 64
		for w := 0; w < words; w++ {
			x := nu.Word(w) & nv.Word(w)
			for x != 0 {
				x &= x - 1
				total++
			}
		}
	}
	return total / 3
}

// CountItaiRodeh counts triangles as trace(A³)/6 with dense matrix
// multiplication over a prime exceeding n³ (§6.1).
func CountItaiRodeh(g *graph.Graph) (uint64, error) {
	n := g.N()
	q := ff.NextPrime(uint64(n)*uint64(n)*uint64(n) + 1)
	f, err := ff.New(q)
	if err != nil {
		return 0, fmt.Errorf("triangles: %w", err)
	}
	a, err := matrix.FromSlice(f, n, n, g.AdjacencyMatrix())
	if err != nil {
		return 0, fmt.Errorf("triangles: %w", err)
	}
	tr := a.Mul(a).Mul(a).Trace()
	return tr / 6, nil
}

// adjacencyEntries returns the sparse Kronecker-indexed entries of the
// adjacency matrix for the given decomposition: one entry per ordered
// edge direction, at the interleaved pair index.
func adjacencyEntries(g *graph.Graph, dc tensor.Decomposition) []yates.Entry {
	entries := make([]yates.Entry, 0, 2*g.M())
	for _, e := range g.Edges() {
		entries = append(entries,
			yates.Entry{Index: dc.PairIndex(e[0], e[1]), Value: 1},
			yates.Entry{Index: dc.PairIndex(e[1], e[0]), Value: 1},
		)
	}
	return entries
}

// sparseTriple bundles the three split/sparse transforms (α, β, γ sides)
// of the trace identity (19) for one modulus.
type sparseTriple struct {
	a, b, c *sparseTransform
}

// sparseTransform wraps a SplitSparse over the R0×n0² transposed base.
type sparseTransform struct {
	ss *yates.SplitSparse
}

func newSparseTriple(f ff.Field, g *graph.Graph, dc tensor.Decomposition, ell int) (*sparseTriple, error) {
	entries := adjacencyEntries(g, dc)
	alphaT, betaT, gammaT := dc.SparseBases(f)
	s := dc.N0 * dc.N0
	mk := func(base []uint64) (*sparseTransform, error) {
		ss, err := yates.NewSplitSparse(f, base, dc.R0, s, dc.T, entries, ell)
		if err != nil {
			return nil, err
		}
		return &sparseTransform{ss: ss}, nil
	}
	a, err := mk(alphaT)
	if err != nil {
		return nil, err
	}
	b, err := mk(betaT)
	if err != nil {
		return nil, err
	}
	c, err := mk(gammaT)
	if err != nil {
		return nil, err
	}
	return &sparseTriple{a: a, b: b, c: c}, nil
}

// CountSplitSparse counts triangles with the Theorem 4 execution: the
// R values A_r, B_r, C_r of identity (19) are produced in O(R/m)
// independent parts of O(m) entries each via the split/sparse Yates
// algorithm, parts distributed over goroutines, and Σ_r A_r B_r C_r
// accumulated. Per-part space is Õ(m).
func CountSplitSparse(g *graph.Graph, base tensor.Decomposition, parallelism int) (uint64, error) {
	n := g.N()
	if n == 0 || g.M() == 0 {
		return 0, nil
	}
	dc, _ := base.ForSize(n)
	q := ff.NextPrime(uint64(n)*uint64(n)*uint64(n) + 1)
	f, err := ff.New(q)
	if err != nil {
		return 0, fmt.Errorf("triangles: %w", err)
	}
	ell := yates.DefaultEll(dc.R0, dc.T, 2*g.M())
	triple, err := newSparseTriple(f, g, dc, ell)
	if err != nil {
		return 0, fmt.Errorf("triangles: %w", err)
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	nParts := triple.a.ss.NumParts()
	if parallelism > nParts {
		parallelism = nParts
	}
	partials := make([]uint64, parallelism)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			acc := uint64(0)
			for outer := w; outer < nParts; outer += parallelism {
				pa := triple.a.ss.Part(outer)
				pb := triple.b.ss.Part(outer)
				pc := triple.c.ss.Part(outer)
				for v := range pa {
					acc = f.Add(acc, f.Mul(pa[v], f.Mul(pb[v], pc[v])))
				}
			}
			partials[w] = acc
		}(w)
	}
	wg.Wait()
	tr := uint64(0)
	for _, v := range partials {
		tr = f.Add(tr, v)
	}
	return tr / 6, nil
}

// Problem is the Camelot triangle-counting problem of Theorem 3: the
// proof polynomial P(z) = Σ_{r'} A_{r'}(z) B_{r'}(z) C_{r'}(z) over the
// §3.3 polynomial extension, with proof size O(R/m) and per-node
// evaluation time Õ(m + R/m).
type Problem struct {
	g      *graph.Graph
	dc     tensor.Decomposition
	ell    int
	nParts int
}

var _ core.Problem = (*Problem)(nil)

// NewProblem builds the Camelot triangle problem over the given base
// decomposition.
func NewProblem(g *graph.Graph, base tensor.Decomposition) (*Problem, error) {
	if g.N() == 0 {
		return nil, fmt.Errorf("triangles: empty graph")
	}
	dc, _ := base.ForSize(g.N())
	ell := yates.DefaultEll(dc.R0, dc.T, 2*g.M())
	nParts := 1
	for i := 0; i < dc.T-ell; i++ {
		nParts *= dc.R0
	}
	return &Problem{g: g, dc: dc, ell: ell, nParts: nParts}, nil
}

// Name implements core.Problem.
func (p *Problem) Name() string {
	return fmt.Sprintf("count-triangles(n=%d,m=%d)", p.g.N(), p.g.M())
}

// Width implements core.Problem.
func (p *Problem) Width() int { return 1 }

// Degree implements core.Problem: each part polynomial has degree at
// most R/m'-1, so P has degree at most 3(R/m'-1).
func (p *Problem) Degree() int { return 3 * (p.nParts - 1) }

// NumParts exposes the proof-size driver R/m' (for experiments).
func (p *Problem) NumParts() int { return p.nParts }

// MinModulus implements core.Problem: big enough for the part-polynomial
// grid, floored at 2^20 so that a single prime usually covers the n³
// trace bound.
func (p *Problem) MinModulus() uint64 {
	min := uint64(3*p.nParts + 2)
	if min < 1<<20 {
		min = 1 << 20
	}
	return min
}

// NumPrimes implements core.Problem: the trace is at most n³.
func (p *Problem) NumPrimes() int {
	n := big.NewInt(int64(p.g.N()))
	bound := new(big.Int).Exp(n, big.NewInt(3), nil)
	bits := bound.BitLen()
	per := new(big.Int).SetUint64(p.MinModulus()).BitLen() - 1
	if per < 1 {
		per = 1
	}
	np := (bits + per - 1) / per
	if np < 1 {
		np = 1
	}
	return np
}

// Evaluate implements core.Problem: P(z0) mod q. It rebuilds the
// per-prime edge reduction per call — the compiled plan is the
// amortized path.
func (p *Problem) Evaluate(q, z0 uint64) ([]uint64, error) {
	f, err := ff.New(q)
	if err != nil {
		return nil, err
	}
	triple, err := newSparseTriple(f, p.g, p.dc, p.ell)
	if err != nil {
		return nil, err
	}
	pa := triple.a.ss.PartsAtPoint(z0)
	pb := triple.b.ss.PartsAtPoint(z0)
	pc := triple.c.ss.PartsAtPoint(z0)
	acc := uint64(0)
	for v := range pa {
		acc = f.Add(acc, f.Mul(pa[v], f.Mul(pb[v], pc[v])))
	}
	return []uint64{acc}, nil
}

var _ core.CompiledProblem = (*Problem)(nil)

// compiled is the triangle Plan for one prime: the sparse triple (edge
// reduction, digit tables) is built once at compile time; the
// scratch-carrying parts evaluators are created per EvaluateBlock call.
type compiled struct {
	f      ff.Field
	triple *sparseTriple
}

// Compile implements plan.Compiler: the per-prime edge reduction
// (sparse adjacency entries, digit tables) compiles once, and each
// block hoists the per-point Lagrange setup (factorial products, fixed
// denominator inverses, the transposed base) into three
// yates.PartsEvaluators instead of paying it per point. Results are
// bit-identical to Evaluate: the amortized and one-shot Lagrange
// kernels produce the same residues, so compiled and per-point protocol
// paths decode to the same proof.
func (p *Problem) Compile(f ff.Field) (plan.Plan, error) {
	triple, err := newSparseTriple(f, p.g, p.dc, p.ell)
	if err != nil {
		return nil, err
	}
	return &compiled{f: f, triple: triple}, nil
}

// EvaluateBlock implements plan.Plan.
func (c *compiled) EvaluateBlock(xs []uint64) ([][]uint64, error) {
	f := c.f
	// Per-call evaluators: they carry scratch, so they cannot be shared
	// between concurrent EvaluateBlock calls; their construction cost is
	// amortized over the block.
	ea := c.triple.a.ss.NewPartsEvaluator()
	eb := c.triple.b.ss.NewPartsEvaluator()
	ec := c.triple.c.ss.NewPartsEvaluator()
	fk := f.Kernel()
	out := make([][]uint64, len(xs))
	for i, z0 := range xs {
		pa := ea.At(z0)
		pb := eb.At(z0)
		pc := ec.At(z0)
		acc := uint64(0)
		for v := range pa {
			acc = f.Add(acc, ff.MulK(pa[v], ff.MulK(pb[v], pc[v], fk), fk))
		}
		out[i] = []uint64{acc}
	}
	return out, nil
}

// Recover extracts the triangle count: Σ_{z0=1}^{R/m'} P(z0) equals
// trace(A³) per modulus (paper eq. (21)), then CRT and division by 6.
func (p *Problem) Recover(proof *core.Proof) (*big.Int, error) {
	residues := make([]uint64, len(proof.Primes))
	for i, q := range proof.Primes {
		residues[i] = proof.SumRange(q, 0, 1, uint64(p.nParts)+1)
	}
	x, err := crt.Reconstruct(residues, proof.Primes)
	if err != nil {
		return nil, fmt.Errorf("triangles: %w", err)
	}
	quo, rem := new(big.Int).QuoRem(x, big.NewInt(6), new(big.Int))
	if rem.Sign() != 0 {
		return nil, fmt.Errorf("triangles: trace %v not divisible by 6 — proof inconsistent", x)
	}
	return quo, nil
}

// --- Theorem 5: the Alon–Yuster–Zwick bound ---------------------------------

// OmegaStrassen is the practical matrix-multiplication exponent of this
// codebase (Strassen), used to place the AYZ degree threshold.
const OmegaStrassen = 2.8073549220576042 // log2 7

// CountAYZ counts triangles with the Theorem 5 design: vertices are
// split at Δ = m^{(ω-1)/(ω+1)}; triangles entirely within the high-degree
// core are counted with the split/sparse dense method on the induced
// subgraph, and triangles touching a low-degree vertex are counted by
// Δ parallel "label nodes", each doing Õ(m) work.
func CountAYZ(g *graph.Graph, base tensor.Decomposition, parallelism int) (uint64, error) {
	m := g.M()
	if m == 0 {
		return 0, nil
	}
	delta := int(math.Ceil(math.Pow(float64(m), (OmegaStrassen-1)/(OmegaStrassen+1))))
	if delta < 1 {
		delta = 1
	}
	n := g.N()
	low := make([]bool, n)
	var high []int
	for v := 0; v < n; v++ {
		if g.Degree(v) <= delta {
			low[v] = true
		} else {
			high = append(high, v)
		}
	}
	// High-core triangles: induced subgraph, dense split/sparse count.
	highCount := uint64(0)
	if len(high) >= 3 {
		idx := make(map[int]int, len(high))
		for i, v := range high {
			idx[v] = i
		}
		hg := graph.New(len(high))
		for _, e := range g.Edges() {
			iu, uok := idx[e[0]]
			iv, vok := idx[e[1]]
			if uok && vok {
				hg.AddEdge(iu, iv)
			}
		}
		var err error
		highCount, err = CountSplitSparse(hg, base, parallelism)
		if err != nil {
			return 0, fmt.Errorf("triangles: AYZ high part: %w", err)
		}
	}
	// Low-touching triangles: for each low vertex x, label its incident
	// edge ends 1..deg(x) <= Δ; label-node u enumerates pairs (u-th
	// neighbor, later neighbors). A triangle is counted at its minimum
	// low-degree vertex only.
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > delta {
		parallelism = delta
	}
	neighbors := make([][]int, n)
	for v := 0; v < n; v++ {
		if low[v] {
			neighbors[v] = g.Neighbors(v).Elements()
			sort.Ints(neighbors[v])
		}
	}
	partials := make([]uint64, parallelism)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			acc := uint64(0)
			for u := w; u < delta; u += parallelism {
				for x := 0; x < n; x++ {
					if !low[x] || u >= len(neighbors[x]) {
						continue
					}
					y := neighbors[x][u]
					for _, z := range neighbors[x][u+1:] {
						if !g.HasEdge(y, z) {
							continue
						}
						// Count at the minimum low-degree vertex of {x,y,z}.
						if (low[y] && y < x) || (low[z] && z < x) {
							continue
						}
						acc++
					}
				}
			}
			partials[w] = acc
		}(w)
	}
	wg.Wait()
	lowCount := uint64(0)
	for _, v := range partials {
		lowCount += v
	}
	return highCount + lowCount, nil
}

// Delta exposes the AYZ degree threshold for a given edge count (used by
// the experiment harness to report the crossover).
func Delta(m int) int {
	return int(math.Ceil(math.Pow(float64(m), (OmegaStrassen-1)/(OmegaStrassen+1))))
}
