package triangles

import (
	"context"
	"math/big"
	"testing"

	"camelot/internal/core"
	"camelot/internal/ff"
	"camelot/internal/graph"
	"camelot/internal/tensor"
)

func TestCountNaiveKnown(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want uint64
	}{
		{"K3", graph.Complete(3), 1},
		{"K5", graph.Complete(5), 10},
		{"K10", graph.Complete(10), 120},
		{"C6", graph.Cycle(6), 0},
		{"petersen", graph.Petersen(), 0},
		{"K33", graph.CompleteBipartite(3, 3), 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := CountNaive(tt.g); got != tt.want {
				t.Fatalf("got %d, want %d", got, tt.want)
			}
		})
	}
}

func TestAllCountersAgree(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"gnp20":   graph.Gnp(20, 0.3, 1),
		"gnp33":   graph.Gnp(33, 0.2, 2),
		"dense16": graph.Gnp(16, 0.7, 3),
		"k12":     graph.Complete(12),
		"sparse":  graph.Gnp(40, 0.05, 4),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			want := CountNaive(g)
			if got := CountEdgeIterator(g); got != want {
				t.Errorf("edge iterator = %d, want %d", got, want)
			}
			got, err := CountItaiRodeh(g)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("itai-rodeh = %d, want %d", got, want)
			}
			for bname, base := range map[string]tensor.Decomposition{
				"strassen": tensor.Strassen(), "trivial2": tensor.Trivial(2),
			} {
				got, err = CountSplitSparse(g, base, 4)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Errorf("split/sparse(%s) = %d, want %d", bname, got, want)
				}
			}
			got, err = CountAYZ(g, tensor.Strassen(), 4)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("AYZ = %d, want %d", got, want)
			}
		})
	}
}

func TestCountSplitSparseEmptyAndTiny(t *testing.T) {
	if got, err := CountSplitSparse(graph.New(5), tensor.Strassen(), 2); err != nil || got != 0 {
		t.Fatalf("empty graph: got %d, %v", got, err)
	}
	if got, err := CountAYZ(graph.New(4), tensor.Strassen(), 2); err != nil || got != 0 {
		t.Fatalf("AYZ empty: got %d, %v", got, err)
	}
	g := graph.Complete(3)
	if got, err := CountSplitSparse(g, tensor.Strassen(), 1); err != nil || got != 1 {
		t.Fatalf("K3: got %d, %v", got, err)
	}
}

func TestCamelotTrianglesEndToEnd(t *testing.T) {
	g := graph.Gnp(24, 0.25, 7)
	want := CountNaive(g)
	p, err := NewProblem(g, tensor.Strassen())
	if err != nil {
		t.Fatal(err)
	}
	proof, rep, err := core.Run(context.Background(), p, core.Options{
		Nodes: 4, FaultTolerance: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified {
		t.Fatal("not verified")
	}
	got, err := p.Recover(proof)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(new(big.Int).SetUint64(want)) != 0 {
		t.Fatalf("recovered %v, want %d", got, want)
	}
}

func TestCamelotTrianglesWithByzantineNode(t *testing.T) {
	g := graph.Gnp(20, 0.3, 9)
	want := CountNaive(g)
	p, err := NewProblem(g, tensor.Strassen())
	if err != nil {
		t.Fatal(err)
	}
	// Geometry: make the fault tolerance cover one full node block.
	d := p.Degree()
	k := 6
	f := 0
	for {
		e := d + 1 + 2*f
		if f >= (e+k-1)/k {
			break
		}
		f++
	}
	proof, rep, err := core.Run(context.Background(), p, core.Options{
		Nodes: k, FaultTolerance: f, Adversary: core.NewEquivocatingNodes(4, 1),
		Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Recover(proof)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(new(big.Int).SetUint64(want)) != 0 {
		t.Fatalf("recovered %v, want %d", got, want)
	}
	for _, s := range rep.SuspectNodes {
		if s != 1 {
			t.Fatalf("honest node %d implicated", s)
		}
	}
}

func TestProblemGeometryScalesWithSparsity(t *testing.T) {
	// Theorem 3: proof size ~ R/m — a denser graph (larger m) must give a
	// smaller or equal proof for the same n.
	sparse := graph.Gnp(32, 0.05, 1)
	dense := graph.Gnp(32, 0.6, 1)
	ps, err := NewProblem(sparse, tensor.Strassen())
	if err != nil {
		t.Fatal(err)
	}
	pd, err := NewProblem(dense, tensor.Strassen())
	if err != nil {
		t.Fatal(err)
	}
	if pd.NumParts() > ps.NumParts() {
		t.Fatalf("dense graph proof (%d parts) larger than sparse (%d parts)", pd.NumParts(), ps.NumParts())
	}
}

func TestDeltaMonotone(t *testing.T) {
	if Delta(10) > Delta(1000) {
		t.Fatal("Δ must grow with m")
	}
	if Delta(1) < 1 {
		t.Fatal("Δ must be at least 1")
	}
}

func TestAYZOnStar(t *testing.T) {
	// Star graph: hub is high-degree for large n, no triangles at all.
	g := graph.CompleteBipartite(1, 50)
	got, err := CountAYZ(g, tensor.Strassen(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("star has %d triangles?", got)
	}
	// Wheel: hub + cycle => n triangles.
	w := graph.Cycle(12)
	wg := graph.New(13)
	for _, e := range w.Edges() {
		wg.AddEdge(e[0], e[1])
	}
	for v := 0; v < 12; v++ {
		wg.AddEdge(v, 12)
	}
	got, err = CountAYZ(wg, tensor.Strassen(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if want := CountNaive(wg); got != want {
		t.Fatalf("wheel: AYZ=%d naive=%d", got, want)
	}
}

func BenchmarkSplitSparse64(b *testing.B) {
	g := graph.Gnp(64, 0.15, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CountSplitSparse(g, tensor.Strassen(), 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkItaiRodeh64(b *testing.B) {
	g := graph.Gnp(64, 0.15, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CountItaiRodeh(g); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEvaluateBlockMatchesEvaluate(t *testing.T) {
	// The compiled plan must be bit-identical to point-wise Evaluate
	// (the verification stage evaluates through Evaluate, so any
	// divergence would fail verification instead of corrupting the
	// proof silently). Cover sparse and dense graphs, on- and off-grid
	// points, and values needing reduction mod q.
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"sparse", graph.Gnp(48, 4.0/48, 3)},
		{"dense", graph.Gnp(20, 0.5, 4)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p, err := NewProblem(tc.g, tensor.Strassen())
			if err != nil {
				t.Fatal(err)
			}
			q, err := core.ChoosePrimes(1, p.MinModulus(), 4)
			if err != nil {
				t.Fatal(err)
			}
			xs := make([]uint64, 0, 40)
			for x := uint64(0); x < 20; x++ {
				xs = append(xs, x)
			}
			xs = append(xs, uint64(p.NumParts()), uint64(p.NumParts())+1, q[0]-1, q[0], q[0]+7)
			f, err := ff.New(q[0])
			if err != nil {
				t.Fatal(err)
			}
			pl, err := p.Compile(f)
			if err != nil {
				t.Fatal(err)
			}
			rows, err := pl.EvaluateBlock(xs)
			if err != nil {
				t.Fatal(err)
			}
			if len(rows) != len(xs) {
				t.Fatalf("EvaluateBlock returned %d rows, want %d", len(rows), len(xs))
			}
			for i, x := range xs {
				want, err := p.Evaluate(q[0], x)
				if err != nil {
					t.Fatal(err)
				}
				if len(rows[i]) != 1 || rows[i][0] != want[0] {
					t.Fatalf("x=%d: block %v != point %v", x, rows[i], want)
				}
			}
		})
	}
}

func TestCamelotTrianglesBatchEndToEnd(t *testing.T) {
	// Full protocol through the batch path (core.Run prefers
	// EvaluateBlock now that Problem implements BatchProblem), checked
	// against the naive count.
	g := graph.Gnp(30, 0.3, 8)
	p, err := NewProblem(g, tensor.Strassen())
	if err != nil {
		t.Fatal(err)
	}
	proof, rep, err := core.Run(context.Background(), p, core.Options{Nodes: 3, Seed: 5, DecodingNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified {
		t.Fatal("not verified")
	}
	count, err := p.Recover(proof)
	if err != nil {
		t.Fatal(err)
	}
	if want := CountNaive(g); count.Cmp(new(big.Int).SetUint64(want)) != 0 {
		t.Fatalf("count %v, want %d", count, want)
	}
}
