package tensor

import (
	"math/rand"
	"testing"

	"camelot/internal/ff"
	"camelot/internal/matrix"
)

var testField = ff.Must(1000003)

func TestTrivialBaseIdentity(t *testing.T) {
	for _, n0 := range []int{1, 2, 3} {
		dc := Trivial(n0)
		if dc.N() != n0 || dc.R() != n0*n0*n0 {
			t.Fatalf("Trivial(%d): N=%d R=%d", n0, dc.N(), dc.R())
		}
		rng := rand.New(rand.NewSource(int64(n0)))
		u := matrix.Rand(testField, n0, n0, rng)
		v := matrix.Rand(testField, n0, n0, rng)
		w := matrix.Rand(testField, n0, n0, rng)
		if err := dc.Verify(testField, u, v, w); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStrassenBaseIdentity(t *testing.T) {
	dc := Strassen()
	if dc.N() != 2 || dc.R() != 7 {
		t.Fatalf("Strassen: N=%d R=%d", dc.N(), dc.R())
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		u := matrix.Rand(testField, 2, 2, rng)
		v := matrix.Rand(testField, 2, 2, rng)
		w := matrix.Rand(testField, 2, 2, rng)
		if err := dc.Verify(testField, u, v, w); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestKroneckerPowers(t *testing.T) {
	tests := []struct {
		name string
		dc   Decomposition
	}{
		{"trivial2^2", Trivial(2).Pow(2)},
		{"strassen^2", Strassen().Pow(2)},
		{"strassen^3", Strassen().Pow(3)},
		{"trivial3^2", Trivial(3).Pow(2)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			n := tt.dc.N()
			rng := rand.New(rand.NewSource(7))
			u := matrix.Rand(testField, n, n, rng)
			v := matrix.Rand(testField, n, n, rng)
			w := matrix.Rand(testField, n, n, rng)
			if err := tt.dc.Verify(testField, u, v, w); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestForSize(t *testing.T) {
	dc, size := Strassen().ForSize(5)
	if size != 8 || dc.T != 3 {
		t.Fatalf("ForSize(5) = (T=%d, size=%d), want (3, 8)", dc.T, size)
	}
	dc, size = Trivial(3).ForSize(3)
	if size != 3 || dc.T != 1 {
		t.Fatalf("ForSize(3) = (T=%d, size=%d)", dc.T, size)
	}
	// n=1 still yields a usable base.
	_, size = Strassen().ForSize(1)
	if size != 2 {
		t.Fatalf("ForSize(1) size = %d", size)
	}
}

func TestCoeffMatrixAtPointMatchesGrid(t *testing.T) {
	// At grid points x0 = r+1, the interpolated coefficient matrices must
	// equal the exact term matrices (paper eq. (14)).
	for _, dc := range []Decomposition{Strassen().Pow(2), Trivial(2).Pow(2)} {
		for r := 0; r < dc.R(); r += 5 {
			x0 := uint64(r + 1)
			if got, want := dc.AlphaMatrixAtPoint(testField, x0), dc.AlphaMatrixAt(testField, r); !got.Equal(want) {
				t.Fatalf("alpha at grid point r=%d differs", r)
			}
			if got, want := dc.BetaMatrixAtPoint(testField, x0), dc.BetaMatrixAt(testField, r); !got.Equal(want) {
				t.Fatalf("beta at grid point r=%d differs", r)
			}
			if got, want := dc.GammaMatrixAtPoint(testField, x0), dc.GammaMatrixAt(testField, r); !got.Equal(want) {
				t.Fatalf("gamma at grid point r=%d differs", r)
			}
		}
	}
}

func TestCoeffPolynomialDegree(t *testing.T) {
	// The interpolated α_de(x) has degree <= R-1, so evaluating at R
	// distinct off-grid points and re-interpolating must reproduce the
	// grid values. Spot-check one (d, e) cell via direct Lagrange logic:
	// Σ_r α_de(r) Λ_r(x0) computed two ways.
	dc := Strassen().Pow(2)
	f := testField
	x0 := uint64(9999)
	got := dc.AlphaMatrixAtPoint(f, x0)
	lam := f.LagrangeAtOneBased(dc.R(), x0)
	for d := 0; d < dc.N(); d++ {
		for e := 0; e < dc.N(); e++ {
			want := uint64(0)
			for r := 0; r < dc.R(); r++ {
				want = f.Add(want, f.Mul(dc.AlphaMatrixAt(f, r).At(d, e), lam[r]))
			}
			if got.At(d, e) != want {
				t.Fatalf("alpha(%d,%d)(x0) = %d, want %d", d, e, got.At(d, e), want)
			}
		}
	}
}

func TestPairIndexRoundTrip(t *testing.T) {
	dc := Strassen().Pow(3)
	seen := make(map[int]bool)
	for row := 0; row < dc.N(); row++ {
		for col := 0; col < dc.N(); col++ {
			idx := dc.PairIndex(row, col)
			if idx < 0 || idx >= dc.N()*dc.N() {
				t.Fatalf("PairIndex(%d,%d) = %d out of range", row, col, idx)
			}
			if seen[idx] {
				t.Fatalf("PairIndex collision at (%d,%d)", row, col)
			}
			seen[idx] = true
		}
	}
}

func TestSparseBasesAreTransposes(t *testing.T) {
	dc := Strassen()
	a, _, _ := dc.SparseBases(testField)
	for r := 0; r < dc.R0; r++ {
		for row := 0; row < dc.N0*dc.N0; row++ {
			if a[r*dc.N0*dc.N0+row] != testField.Reduce(dc.Alpha[row*dc.R0+r]) {
				t.Fatal("alpha sparse base is not the transpose")
			}
		}
	}
}

func TestPowPanicsOnPower(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Strassen().Pow(2).Pow(2)
}

func TestPointEvaluatorMatchesAtPoint(t *testing.T) {
	f := ff.Must(1048583)
	for _, dc := range []Decomposition{Strassen().Pow(2), Trivial(2).Pow(2), Strassen().Pow(3)} {
		pe := dc.NewPointEvaluator(f)
		for _, x0 := range []uint64{0, 1, 5, uint64(dc.R()), uint64(dc.R()) + 3, 987654} {
			alpha, beta, gamma := pe.MatricesAt(x0)
			if !alpha.Equal(dc.AlphaMatrixAtPoint(f, x0)) ||
				!beta.Equal(dc.BetaMatrixAtPoint(f, x0)) ||
				!gamma.Equal(dc.GammaMatrixAtPoint(f, x0)) {
				t.Fatalf("N0=%d R0=%d T=%d x0=%d: PointEvaluator disagrees with per-call path",
					dc.N0, dc.R0, dc.T, x0)
			}
		}
	}
}
