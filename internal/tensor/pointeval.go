package tensor

// Batch point evaluation. AlphaMatrixAtPoint and friends rebuild the
// reduced base matrices, the Lagrange factorial tables, and the digit
// fan-out for every call — and each of the three families recomputes the
// same R-vector (Λ_1(x0), ..., Λ_R(x0)). A PointEvaluator hoists all of
// that per-prime setup so that evaluating the coefficient matrices over
// a whole block of points pays it once.

import (
	"camelot/internal/ff"
	"camelot/internal/matrix"
	"camelot/internal/yates"
)

// PointEvaluator evaluates the interpolated coefficient matrices
// [α(x0)], [β(x0)], [γ(x0)] at many points of one prime, sharing the
// reduced bases, the Lagrange denominator inverses, and the index
// fan-out table across points — and the Lagrange vector itself across
// the three families at each point.
//
// Not safe for concurrent use (shared scratch); build one per goroutine.
type PointEvaluator struct {
	dc                  Decomposition
	f                   ff.Field
	lag                 *ff.LagrangeEvaluator
	baseA, baseB, baseG []uint64
	idx                 []int    // matrix cell (row*N+col) -> Yates output index
	lam                 []uint64 // scratch: per-point Lagrange vector
}

// NewPointEvaluator prepares the per-prime evaluation state.
func (dc Decomposition) NewPointEvaluator(f ff.Field) *PointEvaluator {
	n := dc.N()
	idx := make([]int, n*n)
	rowDigits := make([]int, dc.T)
	colDigits := make([]int, dc.T)
	for row := 0; row < n; row++ {
		digitsOf(row, dc.N0, rowDigits)
		for col := 0; col < n; col++ {
			digitsOf(col, dc.N0, colDigits)
			ix := 0
			for j := 0; j < dc.T; j++ {
				ix = ix*dc.N0*dc.N0 + rowDigits[j]*dc.N0 + colDigits[j]
			}
			idx[row*n+col] = ix
		}
	}
	return &PointEvaluator{
		dc:    dc,
		f:     f,
		lag:   f.NewLagrangeEvaluatorOneBased(dc.R()),
		baseA: dc.baseMod(f, kindAlpha),
		baseB: dc.baseMod(f, kindBeta),
		baseG: dc.baseMod(f, kindGamma),
		idx:   idx,
		lam:   make([]uint64, dc.R()),
	}
}

// MatricesAt evaluates the three coefficient matrices at x0 with one
// Lagrange vector and three Yates pushes.
func (pe *PointEvaluator) MatricesAt(x0 uint64) (alpha, beta, gamma *matrix.Matrix) {
	lam := pe.lag.At(x0, pe.lam)
	return pe.fanOut(pe.baseA, lam), pe.fanOut(pe.baseB, lam), pe.fanOut(pe.baseG, lam)
}

// fanOut pushes the Lagrange vector through one base's Kronecker power
// and scatters the result into matrix layout via the precomputed index
// table.
func (pe *PointEvaluator) fanOut(base, lam []uint64) *matrix.Matrix {
	dc := pe.dc
	y := yates.Transform(pe.f, base, dc.N0*dc.N0, dc.R0, dc.T, lam)
	n := dc.N()
	out := matrix.New(pe.f, n, n)
	for i, ix := range pe.idx {
		out.A[i] = y[ix]
	}
	return out
}
