// Package tensor represents trilinear decompositions of the matrix
// multiplication tensor ⟨n,n,n⟩, i.e. coefficient families
// α_de(r), β_ef(r), γ_df(r) satisfying paper eq. (10):
//
//	Σ_{d,e,f} u_de · v_ef · w_df
//	  = Σ_{r=1}^{R} (Σ_{d,e'} α_{de'}(r) u_{de'})
//	                (Σ_{e,f'} β_{ef'}(r) v_{ef'})
//	                (Σ_{d',f} γ_{d'f}(r) w_{d'f}).
//
// A Decomposition is a base triple of N0²×R0 integer matrices together
// with a Kronecker exponent T, representing the rank-R0^T decomposition
// of ⟨N0^T, N0^T, N0^T⟩ per paper eqs. (17)/(20). Two bases are provided:
// Trivial(n0) with R0 = n0³ (exponent ω = 3) and Strassen() with N0 = 2,
// R0 = 7 (ω = log2 7 ≈ 2.807) — the practical stand-ins for "fast matrix
// multiplication" that every Camelot construction is parametric in.
package tensor

import (
	"fmt"

	"camelot/internal/ff"
	"camelot/internal/matrix"
	"camelot/internal/yates"
)

// Decomposition is a Kronecker power of a base trilinear decomposition.
// Base matrices are N0²×R0 in row-major order with row index d*N0+e for
// Alpha, e*N0+f for Beta, and d*N0+f for Gamma; entries are small signed
// integers.
type Decomposition struct {
	N0, R0 int
	T      int // Kronecker exponent; the decomposition covers N = N0^T
	Alpha  []int64
	Beta   []int64
	Gamma  []int64
}

// Trivial returns the rank-n0³ decomposition of ⟨n0,n0,n0⟩: term
// r = (d̂,ê,f̂) has α_de(r) = [d=d̂][e=ê], β_ef(r) = [e=ê][f=f̂],
// γ_df(r) = [d=d̂][f=f̂].
func Trivial(n0 int) Decomposition {
	r0 := n0 * n0 * n0
	alpha := make([]int64, n0*n0*r0)
	beta := make([]int64, n0*n0*r0)
	gamma := make([]int64, n0*n0*r0)
	for dh := 0; dh < n0; dh++ {
		for eh := 0; eh < n0; eh++ {
			for fh := 0; fh < n0; fh++ {
				r := (dh*n0+eh)*n0 + fh
				alpha[(dh*n0+eh)*r0+r] = 1
				beta[(eh*n0+fh)*r0+r] = 1
				gamma[(dh*n0+fh)*r0+r] = 1
			}
		}
	}
	return Decomposition{N0: n0, R0: r0, T: 1, Alpha: alpha, Beta: beta, Gamma: gamma}
}

// Strassen returns the rank-7 decomposition of ⟨2,2,2⟩ derived from
// Strassen's algorithm: M1..M7 with
//
//	M1=(u11+u22)(v11+v22)  M2=(u21+u22)v11  M3=u11(v12−v22)
//	M4=u22(v21−v11)        M5=(u11+u12)v22  M6=(u21−u11)(v11+v12)
//	M7=(u12−u22)(v21+v22)
//
// and w-side coefficients read off the C-quadrant assembly.
func Strassen() Decomposition {
	// Index helpers: rows are (d*2+e) for alpha, (e*2+f) for beta,
	// (d*2+f) for gamma; 7 columns r = 0..6 for M1..M7.
	alpha := make([]int64, 4*7)
	beta := make([]int64, 4*7)
	gamma := make([]int64, 4*7)
	setA := func(d, e, r int, v int64) { alpha[(d*2+e)*7+r] = v }
	setB := func(e, f, r int, v int64) { beta[(e*2+f)*7+r] = v }
	setG := func(d, f, r int, v int64) { gamma[(d*2+f)*7+r] = v }
	// M1 = (u11+u22)(v11+v22); contributes to C11 and C22.
	setA(0, 0, 0, 1)
	setA(1, 1, 0, 1)
	setB(0, 0, 0, 1)
	setB(1, 1, 0, 1)
	setG(0, 0, 0, 1)
	setG(1, 1, 0, 1)
	// M2 = (u21+u22) v11; C21 += M2, C22 -= M2.
	setA(1, 0, 1, 1)
	setA(1, 1, 1, 1)
	setB(0, 0, 1, 1)
	setG(1, 0, 1, 1)
	setG(1, 1, 1, -1)
	// M3 = u11 (v12−v22); C12 += M3, C22 += M3.
	setA(0, 0, 2, 1)
	setB(0, 1, 2, 1)
	setB(1, 1, 2, -1)
	setG(0, 1, 2, 1)
	setG(1, 1, 2, 1)
	// M4 = u22 (v21−v11); C11 += M4, C21 += M4.
	setA(1, 1, 3, 1)
	setB(1, 0, 3, 1)
	setB(0, 0, 3, -1)
	setG(0, 0, 3, 1)
	setG(1, 0, 3, 1)
	// M5 = (u11+u12) v22; C11 -= M5, C12 += M5.
	setA(0, 0, 4, 1)
	setA(0, 1, 4, 1)
	setB(1, 1, 4, 1)
	setG(0, 0, 4, -1)
	setG(0, 1, 4, 1)
	// M6 = (u21−u11)(v11+v12); C22 += M6.
	setA(1, 0, 5, 1)
	setA(0, 0, 5, -1)
	setB(0, 0, 5, 1)
	setB(0, 1, 5, 1)
	setG(1, 1, 5, 1)
	// M7 = (u12−u22)(v21+v22); C11 += M7.
	setA(0, 1, 6, 1)
	setA(1, 1, 6, -1)
	setB(1, 0, 6, 1)
	setB(1, 1, 6, 1)
	setG(0, 0, 6, 1)
	return Decomposition{N0: 2, R0: 7, T: 1, Alpha: alpha, Beta: beta, Gamma: gamma}
}

// Pow returns the T-fold Kronecker power of the base decomposition,
// which decomposes ⟨N0^T, N0^T, N0^T⟩ with rank R0^T (paper eq. (17)).
// The base matrices are shared, not copied.
func (dc Decomposition) Pow(t int) Decomposition {
	if dc.T != 1 {
		panic("tensor: Pow of a non-base decomposition")
	}
	out := dc
	out.T = t
	return out
}

// ForSize returns the smallest power dc.Pow(t) with N0^t >= n, together
// with the covered size N0^t. Inputs are zero-padded up to it by callers.
func (dc Decomposition) ForSize(n int) (Decomposition, int) {
	t := 0
	size := 1
	for size < n {
		size *= dc.N0
		t++
	}
	if t == 0 {
		t = 1
		size = dc.N0
	}
	return dc.Pow(t), size
}

// N returns the matrix dimension N0^T covered by the decomposition.
func (dc Decomposition) N() int { return ipow(dc.N0, dc.T) }

// R returns the rank R0^T.
func (dc Decomposition) R() int { return ipow(dc.R0, dc.T) }

func ipow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}

// kind selects one of the three coefficient families.
type kind int

const (
	kindAlpha kind = iota + 1
	kindBeta
	kindGamma
)

func (dc Decomposition) base(which kind) []int64 {
	switch which {
	case kindAlpha:
		return dc.Alpha
	case kindBeta:
		return dc.Beta
	default:
		return dc.Gamma
	}
}

// baseMod returns the base matrix reduced into the field.
func (dc Decomposition) baseMod(f ff.Field, which kind) []uint64 {
	b := dc.base(which)
	out := make([]uint64, len(b))
	for i, v := range b {
		out[i] = f.Reduce(v)
	}
	return out
}

// coeffMatrixAt builds the N×N matrix of coefficients for a fixed term r
// (0-based, r in [0, R)): entry (row, col) = Π_j base[(row_j*N0+col_j)][r_j].
func (dc Decomposition) coeffMatrixAt(f ff.Field, which kind, r int) *matrix.Matrix {
	n := dc.N()
	b := dc.baseMod(f, which)
	// Digits of r, most significant first.
	rd := make([]int, dc.T)
	x := r
	for j := dc.T - 1; j >= 0; j-- {
		rd[j] = x % dc.R0
		x /= dc.R0
	}
	out := matrix.New(f, n, n)
	k := f.Kernel()
	rowDigits := make([]int, dc.T)
	colDigits := make([]int, dc.T)
	for row := 0; row < n; row++ {
		digitsOf(row, dc.N0, rowDigits)
		for col := 0; col < n; col++ {
			digitsOf(col, dc.N0, colDigits)
			v := uint64(1)
			for j := 0; j < dc.T; j++ {
				v = ff.MulK(v, b[(rowDigits[j]*dc.N0+colDigits[j])*dc.R0+rd[j]], k)
				if v == 0 {
					break
				}
			}
			out.Set(row, col, v)
		}
	}
	return out
}

// AlphaMatrixAt returns [α_de(r)] as an N×N matrix (rows d, cols e) for a
// 0-based term index r.
func (dc Decomposition) AlphaMatrixAt(f ff.Field, r int) *matrix.Matrix {
	return dc.coeffMatrixAt(f, kindAlpha, r)
}

// BetaMatrixAt returns [β_ef(r)] (rows e, cols f).
func (dc Decomposition) BetaMatrixAt(f ff.Field, r int) *matrix.Matrix {
	return dc.coeffMatrixAt(f, kindBeta, r)
}

// GammaMatrixAt returns [γ_df(r)] (rows d, cols f).
func (dc Decomposition) GammaMatrixAt(f ff.Field, r int) *matrix.Matrix {
	return dc.coeffMatrixAt(f, kindGamma, r)
}

// coeffMatrixAtPoint evaluates the Lagrange-interpolated coefficient
// polynomials (paper eq. (14), interpolation over the 1-based grid
// r = 1..R) at an arbitrary field point x0, for all N² index pairs at
// once: the R-vector (Λ_1(x0),...,Λ_R(x0)) is pushed through the
// Kronecker-power matrix with Yates's algorithm in O(R·T) operations
// (paper §5.3, eq. (18)).
func (dc Decomposition) coeffMatrixAtPoint(f ff.Field, which kind, x0 uint64) *matrix.Matrix {
	lam := f.LagrangeAtOneBased(dc.R(), x0)
	y := yates.Transform(f, dc.baseMod(f, which), dc.N0*dc.N0, dc.R0, dc.T, lam)
	// y is indexed by interleaved pair digits (row_j*N0+col_j); fan out
	// into the N×N matrix.
	n := dc.N()
	out := matrix.New(f, n, n)
	rowDigits := make([]int, dc.T)
	colDigits := make([]int, dc.T)
	for row := 0; row < n; row++ {
		digitsOf(row, dc.N0, rowDigits)
		for col := 0; col < n; col++ {
			digitsOf(col, dc.N0, colDigits)
			idx := 0
			for j := 0; j < dc.T; j++ {
				idx = idx*dc.N0*dc.N0 + rowDigits[j]*dc.N0 + colDigits[j]
			}
			out.Set(row, col, y[idx])
		}
	}
	return out
}

// AlphaMatrixAtPoint evaluates [α_de(x0)] for the interpolated polynomials.
func (dc Decomposition) AlphaMatrixAtPoint(f ff.Field, x0 uint64) *matrix.Matrix {
	return dc.coeffMatrixAtPoint(f, kindAlpha, x0)
}

// BetaMatrixAtPoint evaluates [β_ef(x0)].
func (dc Decomposition) BetaMatrixAtPoint(f ff.Field, x0 uint64) *matrix.Matrix {
	return dc.coeffMatrixAtPoint(f, kindBeta, x0)
}

// GammaMatrixAtPoint evaluates [γ_df(x0)].
func (dc Decomposition) GammaMatrixAtPoint(f ff.Field, x0 uint64) *matrix.Matrix {
	return dc.coeffMatrixAtPoint(f, kindGamma, x0)
}

// SparseBases returns the transposed base matrix of the requested family
// as the R0×N0² Yates base used by the split/sparse triangle algorithms
// (§6.2): there the roles flip, with the R-side as output ("t" rows) and
// the N²-side as sparse input ("s" columns).
func (dc Decomposition) SparseBases(f ff.Field) (alpha, beta, gamma []uint64) {
	tr := func(b []uint64) []uint64 {
		out := make([]uint64, len(b))
		for row := 0; row < dc.N0*dc.N0; row++ {
			for r := 0; r < dc.R0; r++ {
				out[r*dc.N0*dc.N0+row] = b[row*dc.R0+r]
			}
		}
		return out
	}
	return tr(dc.baseMod(f, kindAlpha)), tr(dc.baseMod(f, kindBeta)), tr(dc.baseMod(f, kindGamma))
}

// PairIndex maps a (row, col) pair of [N]×[N] to the interleaved-digit
// index in [N0²^T] used by Kronecker-power vectors (row-major per digit).
func (dc Decomposition) PairIndex(row, col int) int {
	rowDigits := make([]int, dc.T)
	colDigits := make([]int, dc.T)
	digitsOf(row, dc.N0, rowDigits)
	digitsOf(col, dc.N0, colDigits)
	idx := 0
	for j := 0; j < dc.T; j++ {
		idx = idx*dc.N0*dc.N0 + rowDigits[j]*dc.N0 + colDigits[j]
	}
	return idx
}

// digitsOf writes the base-b digits of x into dst, most significant first.
func digitsOf(x, b int, dst []int) {
	for j := len(dst) - 1; j >= 0; j-- {
		dst[j] = x % b
		x /= b
	}
}

// Verify checks identity (10) for the decomposition over the given field
// on a specific triple (u, v, w) of N×N matrices, returning an error with
// both sides on mismatch. Tests use it with random triples; the clique
// and triangle packages use it in their own self-checks.
func (dc Decomposition) Verify(f ff.Field, u, v, w *matrix.Matrix) error {
	n := dc.N()
	if u.R != n || u.C != n || v.R != n || v.C != n || w.R != n || w.C != n {
		return fmt.Errorf("tensor: matrices must be %dx%d", n, n)
	}
	// Left side: Σ u_de v_ef w_df = Σ_{d,f} (U·V)_{df} w_df.
	lhs := u.Mul(v).DotAll(w)
	// Right side: Σ_r ⟨α(r),u⟩⟨β(r),v⟩⟨γ(r),w⟩.
	rhs := uint64(0)
	for r := 0; r < dc.R(); r++ {
		ua := dc.AlphaMatrixAt(f, r).DotAll(u)
		vb := dc.BetaMatrixAt(f, r).DotAll(v)
		wg := dc.GammaMatrixAt(f, r).DotAll(w)
		rhs = f.Add(rhs, f.Mul(f.Mul(ua, vb), wg))
	}
	if lhs != rhs {
		return fmt.Errorf("tensor: identity (10) fails: lhs=%d rhs=%d", lhs, rhs)
	}
	return nil
}
