// Package plan is the shared two-phase evaluation contract of the
// problem zoo: a problem *compiles* against one prime field — hoisting
// every evaluation-point-independent artifact (mask tables, suffix
// plans, Lagrange grids, interpolated columns, zeta/Yates layouts) into
// a Plan — and the framework then *evaluates* the plan at many points.
// The split matters because the Camelot protocol evaluates each proof
// polynomial at e = d+1+2f points per prime: setup paid once per
// (problem, prime) instead of once per point is the difference between
// the per-point fallback and the block fast path.
//
// Plans are shared aggressively — across the chunks of one node's
// range, across nodes, across repair rounds, and (through Cache) across
// runs that name the same workload — so a Plan must be safe for
// concurrent EvaluateBlock calls: all per-call scratch (evaluator
// state, walk vectors, coefficient buffers) lives on the call stack,
// never on the Plan.
package plan

import (
	"sync"
	"sync/atomic"

	"camelot/internal/ff"
)

// Compiler is the compile half of the contract: binding a problem to
// one prime field produces the field's reusable Plan. Compile must be
// deterministic in the field — two compiles against the same prime
// yield plans with identical EvaluateBlock results — and cheap enough
// to pay once per (problem, prime); everything per-point stays in the
// Plan's EvaluateBlock.
type Compiler interface {
	Compile(f ff.Field) (Plan, error)
}

// Plan is a compiled evaluator for one (problem, prime) pair.
type Plan interface {
	// EvaluateBlock computes the proof polynomials at every point of xs,
	// returning one row (P_0(x), ..., P_{Width-1}(x)) per point. Results
	// must be identical to the problem's point-wise Evaluate — the
	// verification stage evaluates through Evaluate, so a divergent plan
	// fails verification rather than silently corrupting the proof. The
	// xs slice is reused between calls and must not be retained.
	// Implementations must be safe for concurrent calls.
	EvaluateBlock(xs []uint64) ([][]uint64, error)
}

// Func adapts a closure to Plan.
type Func func(xs []uint64) ([][]uint64, error)

// EvaluateBlock implements Plan.
func (fn Func) EvaluateBlock(xs []uint64) ([][]uint64, error) { return fn(xs) }

// cacheKey identifies one compiled artifact: the workload's plan digest
// and the prime it was compiled against.
type cacheKey struct {
	key string
	q   uint64
}

// entry is one key's single-flight slot: the first Get compiles under
// the once, every later Get reuses the result (compile errors are
// deterministic in the problem geometry, so they memoize too).
type entry struct {
	once sync.Once
	plan Plan
	err  error
}

// Cache memoizes compiled plans by (key, q). It is the sharing seam
// between layers: the core engine keys a run's chunks into it, ctrl
// workers reuse one across assignment manifests and repair rounds, and
// the serve layer hands every tenant's run the same cluster-wide cache
// so a repeated workload digest never recompiles. Safe for concurrent
// use; compilation is single-flight per key.
type Cache struct {
	mu      sync.Mutex
	entries map[cacheKey]*entry

	hits, misses atomic.Int64
}

// NewCache returns an empty plan cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[cacheKey]*entry)}
}

// Get returns the plan cached under (key, q), compiling it with compile
// on first use. Concurrent Gets for the same key compile exactly once;
// a Get that finds an existing entry counts as a hit (even while the
// compile is still in flight — it reuses that work), a Get that creates
// the entry as a miss.
func (c *Cache) Get(key string, q uint64, compile func() (Plan, error)) (Plan, error) {
	k := cacheKey{key: key, q: q}
	c.mu.Lock()
	e, ok := c.entries[k]
	if !ok {
		e = &entry{}
		c.entries[k] = e
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	e.once.Do(func() { e.plan, e.err = compile() })
	return e.plan, e.err
}

// Stats reports the cache's lifetime hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Len reports how many (key, q) entries the cache holds.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
