package plan

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCacheSingleFlight pins the cache's concurrency contract: many
// goroutines racing Get on one (key, prime) compile exactly once and
// all observe the same plan.
func TestCacheSingleFlight(t *testing.T) {
	c := NewCache()
	var compiles atomic.Int64
	p := Func(func(xs []uint64) ([][]uint64, error) { return nil, nil })

	const workers = 16
	plans := make([]Plan, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := c.Get("w", 97, func() (Plan, error) {
				compiles.Add(1)
				return p, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			plans[i] = got
		}()
	}
	wg.Wait()
	if n := compiles.Load(); n != 1 {
		t.Fatalf("compiled %d times, want 1", n)
	}
	for i, got := range plans {
		if got == nil {
			t.Fatalf("goroutine %d got nil plan", i)
		}
	}
	hits, misses := c.Stats()
	if misses != 1 || hits != workers-1 {
		t.Fatalf("stats = (%d hits, %d misses), want (%d, 1)", hits, misses, workers-1)
	}
}

// TestCacheKeying pins that distinct workload keys and distinct primes
// each compile their own plan.
func TestCacheKeying(t *testing.T) {
	c := NewCache()
	var compiles atomic.Int64
	get := func(key string, q uint64) {
		t.Helper()
		if _, err := c.Get(key, q, func() (Plan, error) {
			compiles.Add(1)
			return Func(func(xs []uint64) ([][]uint64, error) { return nil, nil }), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	get("a", 97)
	get("a", 101) // new prime, same workload
	get("b", 97)  // new workload, same prime
	get("a", 97)  // repeat: hit
	if n := compiles.Load(); n != 3 {
		t.Fatalf("compiled %d times, want 3", n)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 3 {
		t.Fatalf("stats = (%d hits, %d misses), want (1, 3)", hits, misses)
	}
}

// TestCacheMemoizesErrors pins that a failed compile is memoized —
// compile errors are deterministic in the problem geometry, so
// retrying on every lookup would just repay the failure.
func TestCacheMemoizesErrors(t *testing.T) {
	c := NewCache()
	sentinel := errors.New("bad geometry")
	var compiles atomic.Int64
	for i := 0; i < 3; i++ {
		_, err := c.Get("w", 97, func() (Plan, error) {
			compiles.Add(1)
			return nil, sentinel
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("Get error = %v, want %v", err, sentinel)
		}
	}
	if n := compiles.Load(); n != 1 {
		t.Fatalf("compiled %d times, want 1", n)
	}
}
