package ff

// Differential and fuzz tests pinning the 4-wide unrolled lazy-reduction
// sweeps (vec.go) against scalar Field-op reference loops, bit for bit,
// across the diffModuli sweep — including lazy inputs pushed to the top
// of their allowed ranges ([0,4q) first operands, unreduced [0,2q) sums).

import (
	"math/rand"
	"testing"
)

// lazyLift returns a copy of xs with each canonical entry lifted by a
// pseudo-random multiple of q chosen below the given bound (lift<4 means
// values in [0, 4q)), skipping lifts that would overflow uint64.
func lazyLift(xs []uint64, q uint64, lift int, rng *rand.Rand) []uint64 {
	out := make([]uint64, len(xs))
	for i, x := range xs {
		m := uint64(rng.Intn(lift))
		for m > 0 && x+m*q < x {
			m--
		}
		out[i] = x + m*q
	}
	return out
}

func randVec(n int, q uint64, rng *rand.Rand) []uint64 {
	xs := make([]uint64, n)
	for i := range xs {
		xs[i] = rng.Uint64() % q
	}
	return xs
}

func TestMulVecKSMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, q := range diffModuli(t) {
		f := Must(q)
		k := f.Kernel()
		for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 64, 129} {
			a := randVec(n, q, rng)
			b := rng.Uint64() % q
			want := make([]uint64, n)
			for i := range a {
				want[i] = f.Mul(a[i], b)
			}
			lazy := lazyLift(a, q, 4, rng)
			got := make([]uint64, n)
			MulVecKS(got, lazy, k.Shift(b), k)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("q=%d n=%d: MulVecKS[%d] = %d, want %d (lazy a=%d)", q, n, i, got[i], want[i], lazy[i])
				}
			}
			// Aliased dst == a must work too.
			MulVecKS(lazy, lazy, k.Shift(b), k)
			for i := range want {
				if lazy[i] != want[i] {
					t.Fatalf("q=%d n=%d: aliased MulVecKS[%d] = %d, want %d", q, n, i, lazy[i], want[i])
				}
			}
		}
	}
}

func TestMulVecKMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, q := range diffModuli(t) {
		f := Must(q)
		k := f.Kernel()
		for _, n := range []int{0, 1, 3, 4, 6, 8, 100} {
			a := randVec(n, q, rng)
			b := randVec(n, q, rng)
			want := make([]uint64, n)
			for i := range a {
				want[i] = f.Mul(a[i], b[i])
			}
			lazy := lazyLift(a, q, 4, rng)
			got := make([]uint64, n)
			MulVecK(got, lazy, b, k)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("q=%d n=%d: MulVecK[%d] = %d, want %d", q, n, i, got[i], want[i])
				}
			}
		}
	}
}

func TestMulScaleVecKSMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, q := range diffModuli(t) {
		f := Must(q)
		k := f.Kernel()
		for _, n := range []int{0, 1, 3, 4, 5, 8, 77} {
			a := randVec(n, q, rng)
			b := randVec(n, q, rng)
			c := rng.Uint64() % q
			want := make([]uint64, n)
			for i := range a {
				want[i] = f.Mul(f.Mul(a[i], b[i]), c)
			}
			lazy := lazyLift(a, q, 4, rng)
			got := make([]uint64, n)
			MulScaleVecKS(got, lazy, b, k.Shift(c), k)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("q=%d n=%d: MulScaleVecKS[%d] = %d, want %d", q, n, i, got[i], want[i])
				}
			}
		}
	}
}

func TestProdSumLazyMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, q := range diffModuli(t) {
		f := Must(q)
		k := f.Kernel()
		for _, n := range []int{0, 1, 3, 4, 5, 8, 33} {
			for trial := 0; trial < 8; trial++ {
				a := randVec(n, q, rng)
				b := randVec(n, q, rng)
				if trial%3 == 1 && n > 0 {
					// Force a zero factor so the early exit is exercised.
					i := rng.Intn(n)
					a[i] = 0
					b[i] = 0
				}
				acc := rng.Uint64() % q
				want := acc
				for i := 0; i < n && want != 0; i++ {
					want = f.Mul(want, f.Add(a[i], b[i]))
				}
				if got := ProdSumLazy(acc, a, b, k); got != want {
					t.Fatalf("q=%d n=%d: ProdSumLazy = %d, want %d", q, n, got, want)
				}
			}
		}
	}
}

func TestReduceVec4Q(t *testing.T) {
	for _, q := range diffModuli(t) {
		rng := rand.New(rand.NewSource(int64(q)))
		xs := randVec(50, q, rng)
		lazy := lazyLift(xs, q, 4, rng)
		ReduceVec4Q(lazy, q)
		for i := range xs {
			if lazy[i] != xs[i] {
				t.Fatalf("q=%d: ReduceVec4Q[%d] = %d, want %d", q, i, lazy[i], xs[i])
			}
		}
	}
}

func FuzzMulVecKS(f *testing.F) {
	f.Add(uint64(1048583), uint64(3), uint64(5), uint64(2))
	f.Add(^uint64(0), ^uint64(0), ^uint64(0), uint64(3))
	f.Fuzz(func(t *testing.T, q, a, b, lift uint64) {
		q = NextPrime(2 + q%(1<<61))
		fl := Must(q)
		k := fl.Kernel()
		a, b = a%q, b%q
		al := a + (lift%4)*q // lazy first operand, < 4q
		if al < a {
			al = a
		}
		src := []uint64{al, al, al, al, al} // crosses the 4-wide boundary
		dst := make([]uint64, len(src))
		MulVecKS(dst, src, k.Shift(b), k)
		want := fl.mulDiv(a, b)
		for i, got := range dst {
			if got != want {
				t.Fatalf("q=%d: MulVecKS[%d](%d,%d) = %d, reference %d", q, i, al, b, got, want)
			}
		}
	})
}

func FuzzProdSumLazy(f *testing.F) {
	f.Add(uint64(65537), uint64(1), uint64(2), uint64(3))
	f.Add(^uint64(0), uint64(0), ^uint64(0), uint64(1))
	f.Fuzz(func(t *testing.T, q, x, y, acc uint64) {
		q = NextPrime(2 + q%(1<<61))
		fl := Must(q)
		k := fl.Kernel()
		x, y, acc = x%q, y%q, acc%q
		a := []uint64{x, y, x, y, x, y} // crosses the 4-wide boundary
		b := []uint64{y, x, y, x, y, x}
		want := acc
		for i := range a {
			if want == 0 {
				break
			}
			want = fl.mulDiv(want, (a[i]+b[i])%q)
		}
		if got := ProdSumLazy(acc, a, b, k); got != want {
			t.Fatalf("q=%d: ProdSumLazy(%d, %v, %v) = %d, reference %d", q, acc, a, b, got, want)
		}
	})
}
