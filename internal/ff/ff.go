// Package ff implements arithmetic in prime fields Z_q for word-sized
// primes q, together with the primality and prime-search utilities the
// Camelot framework uses to pick proof moduli (paper §1.3, §2.2).
//
// All element values are canonical residues in [0, q). Operations never
// allocate; a Field is a small value type that is cheap to copy.
//
// # Division-free reduction
//
// A Field built by New (or Must) carries a precomputed reciprocal of its
// modulus, so Mul, Exp, ReduceU, and Horner reduce 128-bit intermediates
// with two multiplications and a few shifts — no hardware division
// instruction — via Möller–Granlund 2-by-1 division against the
// normalized modulus (the Barrett idea with a word-sized reciprocal).
// Construct Fields only through New/Must: a Field assembled as a struct
// literal has no reciprocal and Mul/ReduceU panic on it. The old
// division-based reduction survives as an unexported reference
// implementation that differential tests in this package pin the
// reciprocal path against, bit for bit. A repo-level lint test forbids
// ff.Field literals outside this package.
package ff

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"
)

// MaxPrime is the largest modulus the package accepts. Keeping q below
// 2^62 guarantees that a+b never wraps uint64 and that 128-bit product
// reduction cannot overflow its quotient (hi < q always holds for
// canonical operands).
const MaxPrime = 1<<62 - 1

// ErrNotPrime is returned by New when the requested modulus fails the
// primality test.
var ErrNotPrime = errors.New("ff: modulus is not prime")

// Field is the prime field Z_q. The zero value is invalid; construct
// with New (checked) or Must (panics on error, for constants in tests).
type Field struct {
	// Q is the prime modulus. Read-only; treat the whole struct as opaque
	// and construct only through New/Must so the reduction kernel below
	// is populated.
	Q uint64
	// k is the division-free reduction kernel (see Kernel).
	k Kernel
}

// Kernel is the precomputed reduction state of a Field: the
// normalization shift s = bits.LeadingZeros64(Q), the normalized modulus
// d = Q<<s (top bit set), and the Möller–Granlund reciprocal
// v = floor((2^128-1)/d) - 2^64. v is zero iff the Field skipped the
// constructor.
//
// Kernel exists as a separate value type for one reason: a free function
// taking (a, b uint64, k Kernel) fits the compiler's inlining budget,
// while the equivalent Field method does not. Hot loops hoist the kernel
// once — k := f.Kernel() — and call MulK(a, b, k) per element; everything
// else should use the Field methods. The fields are unexported so a
// Kernel cannot be forged or modified outside this package.
type Kernel struct {
	s uint64 // normalization shift
	d uint64 // normalized modulus Q << s
	v uint64 // reciprocal of d
}

// Kernel returns the field's reduction kernel for use with MulK in
// inline-critical loops. It panics on a Field that skipped the
// constructor.
func (f Field) Kernel() Kernel {
	if f.k.v == 0 {
		panic("ff: Field not built by New/Must")
	}
	return f.k
}

// MulK returns a*b mod q for canonical operands a, b < q — exactly
// Field.Mul, written as a free function so it inlines into hot loops.
//
// Reduction is Möller–Granlund 2-by-1 division by the precomputed
// reciprocal: two multiplications, one 128-bit add, and two conditional
// corrections — no div instruction. Pre-shifting one canonical operand
// normalizes the product for free: a·(b·2^s) = (a·b)·2^s < q·d <=
// d·2^64, so (hi, lo) is exactly the normalized dividend with hi < d.
//
// NOTE: the inlining cost of this function sits exactly at the
// compiler's budget. After any edit here, verify that
// `go build -gcflags=-m=2 ./internal/ff` still reports "can inline
// MulK"; TestMulKStaysInlinable guards it.
func MulK(a, b uint64, k Kernel) uint64 {
	hi, lo := bits.Mul64(a, b<<k.s)
	// Estimate the quotient: qh:ql = hi*v + (hi+1)·2^64 + lo.
	qh, ql := bits.Mul64(hi, k.v)
	var carry uint64
	ql, carry = bits.Add64(ql, lo, 0)
	qh, _ = bits.Add64(qh, hi+1, carry)
	// Remainder candidate plus at most two corrections (Möller–Granlund
	// Algorithm 4; the quotient itself is not needed).
	r := lo - qh*k.d
	if r > ql {
		r += k.d
	}
	if r >= k.d {
		r -= k.d
	}
	return r >> k.s
}

// Shift pre-normalizes a canonical operand for MulKS: in a loop that
// multiplies a stream by one fixed value (an NTT twiddle, Horner's x, a
// scalar), the kernel's normalization shift of that value is
// loop-invariant, and the compiler does not hoist it on its own (no
// loop-invariant code motion). Shift once, then call MulKS per element.
func (k Kernel) Shift(b uint64) uint64 { return b << k.s }

// MulKS is MulK with the second operand already normalized by
// Kernel.Shift: returns a*b mod q where bs = Shift(b) for canonical
// a, b < q. One shift cheaper than MulK — the difference matters in the
// tightest loops (NTT butterflies, polynomial division rows), which
// multiply long streams by per-loop constants.
func MulKS(a, bs uint64, k Kernel) uint64 {
	hi, lo := bits.Mul64(a, bs)
	qh, ql := bits.Mul64(hi, k.v)
	var carry uint64
	ql, carry = bits.Add64(ql, lo, 0)
	qh, _ = bits.Add64(qh, hi+1, carry)
	r := lo - qh*k.d
	if r > ql {
		r += k.d
	}
	if r >= k.d {
		r -= k.d
	}
	return r >> k.s
}

// fieldCache memoizes New per modulus: problems construct a Field per
// Evaluate call (the modulus travels as a plain uint64 through the
// Problem interface), so construction must cost a map lookup, not a
// Miller–Rabin run. Only successful constructions are cached; the number
// of distinct moduli per process is bounded by the protocol's prime
// selections.
var fieldCache sync.Map // uint64 -> Field

// New returns the field Z_q, verifying that q is prime and in range and
// precomputing the division-free reduction constants. Results are
// memoized per modulus; New is safe for concurrent use and cheap to call
// in per-evaluation hot paths.
func New(q uint64) (Field, error) {
	if v, ok := fieldCache.Load(q); ok {
		return v.(Field), nil
	}
	if q < 2 || q > MaxPrime {
		return Field{}, fmt.Errorf("ff: modulus %d out of range [2, 2^62): %w", q, ErrNotPrime)
	}
	if !IsPrime(q) {
		return Field{}, fmt.Errorf("ff: modulus %d: %w", q, ErrNotPrime)
	}
	f := newUnchecked(q)
	fieldCache.Store(q, f)
	return f, nil
}

// Must is like New but panics on error. Intended for tests, package
// initialization of known-prime constants, and call sites whose modulus
// comes from the framework's own prime selection (where a non-prime is a
// programming error, not an input error).
func Must(q uint64) Field {
	f, err := New(q)
	if err != nil {
		panic(err)
	}
	return f
}

// newUnchecked builds a Field with reduction constants for an arbitrary
// modulus q >= 2, skipping the primality check. The reduction algebra
// does not require primality, so this also serves the transient
// composite moduli inside IsPrime. The one hardware division below is
// the only one on any constructed Field's lifetime.
func newUnchecked(q uint64) Field {
	s := uint64(bits.LeadingZeros64(q))
	d := q << s
	v, _ := bits.Div64(^d, ^uint64(0), d) // floor((2^128-1)/d) - 2^64
	return Field{Q: q, k: Kernel{s: s, d: d, v: v}}
}

// Add returns a+b mod q for canonical operands. Written as a single
// conditional assignment so the compiler emits a branch-free CMOV — the
// condition is data-random in the hot loops, and a mispredicted branch
// costs more than the whole reduction. (a+b cannot wrap: operands are
// < q <= MaxPrime < 2^62.)
func (f Field) Add(a, b uint64) uint64 {
	s := a + b
	if s >= f.Q {
		s -= f.Q
	}
	return s
}

// Sub returns a-b mod q for canonical operands. Same CMOV-friendly
// single-assignment shape as Add.
func (f Field) Sub(a, b uint64) uint64 {
	d := a - b
	if a < b {
		d += f.Q
	}
	return d
}

// Neg returns -a mod q.
func (f Field) Neg(a uint64) uint64 {
	if a == 0 {
		return 0
	}
	return f.Q - a
}

// Mul returns a*b mod q using a 128-bit intermediate product, with the
// division-free reduction of MulK. Operands must be canonical (< q); the
// result always is. Mul panics on a Field that skipped the constructor —
// loud, instead of the silent garbage an uninitialized reciprocal would
// produce. (The method itself exceeds the inlining budget; loops where
// the per-call overhead matters hoist f.Kernel() and use MulK.)
func (f Field) Mul(a, b uint64) uint64 {
	if f.k.v == 0 {
		panic("ff: Field not built by New/Must")
	}
	return MulK(a, b, f.k)
}

// reduce128Div is the pre-Barrett reduction: one hardware 128/64
// division. Kept as the internal reference implementation — differential
// and fuzz tests pin the reciprocal path against it bit for bit.
func (f Field) reduce128Div(hi, lo uint64) uint64 {
	_, rem := bits.Div64(hi, lo, f.Q)
	return rem
}

// mulDiv is Mul through the division reference path, for differential
// tests and benchmarks.
func (f Field) mulDiv(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return f.reduce128Div(hi, lo)
}

// Reduce maps an arbitrary signed integer into [0, q).
func (f Field) Reduce(x int64) uint64 {
	m := x % int64(f.Q)
	if m < 0 {
		m += int64(f.Q)
	}
	return uint64(m)
}

// ReduceU maps an arbitrary unsigned integer into [0, q). Same
// division-free reduction as Mul, specialized to a one-word dividend.
func (f Field) ReduceU(x uint64) uint64 {
	v := f.k.v
	if v == 0 {
		panic("ff: Field not built by New/Must")
	}
	s := f.k.s
	d := f.k.d
	// x is arbitrary, so the dividend x·2^s is normalized by an explicit
	// 128-bit shift (s <= 62 for constructed fields; Go defines x>>64 as
	// 0 so even shift 0, for the transient moduli inside IsPrime, works).
	u1 := x >> (64 - s)
	u0 := x << s
	qh, ql := bits.Mul64(u1, v)
	var carry uint64
	ql, carry = bits.Add64(ql, u0, 0)
	qh, _ = bits.Add64(qh, u1+1, carry)
	r := u0 - qh*d
	if r > ql {
		r += d
	}
	if r >= d {
		r -= d
	}
	return r >> s
}

// Exp returns a^e mod q by square-and-multiply.
func (f Field) Exp(a, e uint64) uint64 {
	a = f.ReduceU(a)
	k := f.k
	result := uint64(1 % f.Q)
	for e > 0 {
		if e&1 == 1 {
			result = MulK(result, a, k)
		}
		a = MulK(a, a, k)
		e >>= 1
	}
	return result
}

// Inv returns the multiplicative inverse of a mod q. It panics if a == 0;
// callers own the zero check (division by zero is a programming error,
// not an input error, everywhere this package is used).
func (f Field) Inv(a uint64) uint64 {
	if a == 0 {
		panic("ff: inverse of zero")
	}
	// Fermat: a^(q-2). Extended Euclid would be marginally faster but the
	// exponentiation is branch-free and obviously correct.
	return f.Exp(a, f.Q-2)
}

// Div returns a/b mod q. Panics if b == 0.
func (f Field) Div(a, b uint64) uint64 { return f.Mul(a, f.Inv(b)) }

// BatchInv inverts every element of xs in place using Montgomery's trick
// (3(n-1) multiplications plus one inversion). Panics if any element is 0.
func (f Field) BatchInv(xs []uint64) {
	if len(xs) == 0 {
		return
	}
	f.BatchInvScratch(xs, make([]uint64, len(xs)))
}

// BatchInvScratch is BatchInv with a caller-provided prefix buffer of at
// least len(xs) elements, for hot paths that invert repeatedly over the
// same geometry (e.g. LagrangeEvaluator.At) and would otherwise allocate
// per call. The scratch contents are overwritten.
func (f Field) BatchInvScratch(xs, scratch []uint64) {
	if len(xs) == 0 {
		return
	}
	k := f.Kernel()
	prefix := scratch[:len(xs)]
	acc := uint64(1)
	for i, x := range xs {
		if x == 0 {
			panic("ff: batch inverse of zero")
		}
		prefix[i] = acc
		acc = MulK(acc, x, k)
	}
	inv := f.Inv(acc)
	for i := len(xs) - 1; i >= 0; i-- {
		x := xs[i]
		xs[i] = MulK(inv, prefix[i], k)
		inv = MulK(inv, x, k)
	}
}

// IsPrime reports whether n is prime, using a deterministic Miller–Rabin
// witness set valid for all 64-bit integers.
func IsPrime(n uint64) bool {
	switch {
	case n < 2:
		return false
	case n < 4:
		return true
	case n%2 == 0:
		return false
	}
	d := n - 1
	r := 0
	for d%2 == 0 {
		d /= 2
		r++
	}
	// The candidate modulus is composite until proven otherwise, so build
	// the reduction constants directly (they are valid for any n >= 2).
	f := newUnchecked(n)
	// Sinclair's deterministic base set for n < 2^64.
	for _, a := range [...]uint64{2, 325, 9375, 28178, 450775, 9780504, 1795265022} {
		a %= n
		if a == 0 {
			continue
		}
		if !millerRabinWitness(f, a, d, r) {
			return false
		}
	}
	return true
}

// millerRabinWitness reports whether n = f.Q passes one Miller–Rabin
// round with base a, where n-1 = d * 2^r with d odd.
func millerRabinWitness(f Field, a, d uint64, r int) bool {
	n := f.Q
	x := f.Exp(a, d)
	if x == 1 || x == n-1 {
		return true
	}
	for i := 0; i < r-1; i++ {
		x = f.Mul(x, x)
		if x == n-1 {
			return true
		}
	}
	return false
}

// NextPrime returns the smallest prime >= n.
func NextPrime(n uint64) uint64 {
	if n <= 2 {
		return 2
	}
	if n%2 == 0 {
		n++
	}
	for !IsPrime(n) {
		n += 2
	}
	return n
}

// NTTPrime returns the smallest prime q >= min of the form c*2^k + 1 with
// 2^k >= order, together with a primitive 2^k-th root of unity mod q.
// Such primes admit radix-2 NTT convolution of length up to 2^k, which the
// polynomial package uses for quasi-linear encoding/decoding (paper §2.2).
func NTTPrime(min uint64, order int) (q, root uint64, err error) {
	if order < 1 {
		order = 1
	}
	k := 0
	for 1<<k < order {
		k++
	}
	if k > 40 {
		return 0, 0, fmt.Errorf("ff: NTT order 2^%d too large", k)
	}
	step := uint64(1) << k
	// Smallest candidate c*2^k+1 >= max(min, 2^k+1).
	c := (min + step - 1) / step
	if c == 0 {
		c = 1
	}
	for {
		q = c*step + 1
		if q < min {
			c++
			continue
		}
		if q > MaxPrime {
			return 0, 0, fmt.Errorf("ff: no NTT prime of order 2^%d below 2^62 and >= %d", k, min)
		}
		if IsPrime(q) {
			g, err := PrimitiveRoot(q)
			if err != nil {
				return 0, 0, err
			}
			f := newUnchecked(q)
			root = f.Exp(g, (q-1)>>uint(k))
			return q, root, nil
		}
		c++
	}
}

// rootCache memoizes PrimitiveRoot per modulus: the search factorizes
// q-1 and tests candidate generators, which poly.NewRing would otherwise
// repeat on every ring construction (rings are rebuilt per prime per
// run).
var rootCache sync.Map // uint64 -> uint64

// PrimitiveRoot returns a generator of the multiplicative group of Z_q
// for prime q. Results are memoized per modulus; safe for concurrent
// use. For composite q (no generator need exist) an error is returned.
func PrimitiveRoot(q uint64) (uint64, error) {
	if g, ok := rootCache.Load(q); ok {
		return g.(uint64), nil
	}
	if q < 2 {
		return 0, fmt.Errorf("ff: no primitive root mod %d", q)
	}
	phi := q - 1
	factors := factorize(phi)
	f := newUnchecked(q)
	for g := uint64(2); g < q; g++ {
		ok := true
		for _, p := range factors {
			if f.Exp(g, phi/p) == 1 {
				ok = false
				break
			}
		}
		if ok {
			rootCache.Store(q, g)
			return g, nil
		}
	}
	return 0, fmt.Errorf("ff: no primitive root mod %d (modulus not prime?)", q)
}

// factorize returns the distinct prime factors of n by trial division
// (adequate: used once per prime selection, on q-1 which is smooth-ish
// for NTT primes anyway).
func factorize(n uint64) []uint64 {
	var fs []uint64
	for p := uint64(2); p*p <= n; p++ {
		if n%p == 0 {
			fs = append(fs, p)
			for n%p == 0 {
				n /= p
			}
		}
	}
	if n > 1 {
		fs = append(fs, n)
	}
	return fs
}
