// Package ff implements arithmetic in prime fields Z_q for word-sized
// primes q, together with the primality and prime-search utilities the
// Camelot framework uses to pick proof moduli (paper §1.3, §2.2).
//
// All element values are canonical residues in [0, q). Operations never
// allocate; a Field is a small value type that is cheap to copy.
package ff

import (
	"errors"
	"fmt"
	"math/bits"
)

// MaxPrime is the largest modulus the package accepts. Keeping q below
// 2^62 guarantees that a+b never wraps uint64 and that 128-bit product
// reduction via bits.Div64 cannot trap (quotient always fits).
const MaxPrime = 1<<62 - 1

// ErrNotPrime is returned by New when the requested modulus fails the
// primality test.
var ErrNotPrime = errors.New("ff: modulus is not prime")

// Field is the prime field Z_q. The zero value is invalid; construct
// with New (checked) or Must (panics on error, for constants in tests).
type Field struct {
	// Q is the prime modulus.
	Q uint64
}

// New returns the field Z_q, verifying that q is prime and in range.
func New(q uint64) (Field, error) {
	if q < 2 || q > MaxPrime {
		return Field{}, fmt.Errorf("ff: modulus %d out of range [2, 2^62): %w", q, ErrNotPrime)
	}
	if !IsPrime(q) {
		return Field{}, fmt.Errorf("ff: modulus %d: %w", q, ErrNotPrime)
	}
	return Field{Q: q}, nil
}

// Must is like New but panics on error. Intended for tests and package
// initialization of known-prime constants.
func Must(q uint64) Field {
	f, err := New(q)
	if err != nil {
		panic(err)
	}
	return f
}

// Add returns a+b mod q.
func (f Field) Add(a, b uint64) uint64 {
	s := a + b
	if s >= f.Q || s < a { // s < a catches wrap, impossible for q < 2^63 but cheap
		s -= f.Q
	}
	return s
}

// Sub returns a-b mod q.
func (f Field) Sub(a, b uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + f.Q - b
}

// Neg returns -a mod q.
func (f Field) Neg(a uint64) uint64 {
	if a == 0 {
		return 0
	}
	return f.Q - a
}

// Mul returns a*b mod q using a 128-bit intermediate product.
func (f Field) Mul(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi, lo, f.Q)
	return rem
}

// Reduce maps an arbitrary signed integer into [0, q).
func (f Field) Reduce(x int64) uint64 {
	m := x % int64(f.Q)
	if m < 0 {
		m += int64(f.Q)
	}
	return uint64(m)
}

// ReduceU maps an arbitrary unsigned integer into [0, q).
func (f Field) ReduceU(x uint64) uint64 { return x % f.Q }

// Exp returns a^e mod q by square-and-multiply.
func (f Field) Exp(a, e uint64) uint64 {
	a %= f.Q
	result := uint64(1 % f.Q)
	for e > 0 {
		if e&1 == 1 {
			result = f.Mul(result, a)
		}
		a = f.Mul(a, a)
		e >>= 1
	}
	return result
}

// Inv returns the multiplicative inverse of a mod q. It panics if a == 0;
// callers own the zero check (division by zero is a programming error,
// not an input error, everywhere this package is used).
func (f Field) Inv(a uint64) uint64 {
	if a == 0 {
		panic("ff: inverse of zero")
	}
	// Fermat: a^(q-2). Extended Euclid would be marginally faster but the
	// exponentiation is branch-free and obviously correct.
	return f.Exp(a, f.Q-2)
}

// Div returns a/b mod q. Panics if b == 0.
func (f Field) Div(a, b uint64) uint64 { return f.Mul(a, f.Inv(b)) }

// BatchInv inverts every element of xs in place using Montgomery's trick
// (3(n-1) multiplications plus one inversion). Panics if any element is 0.
func (f Field) BatchInv(xs []uint64) {
	if len(xs) == 0 {
		return
	}
	prefix := make([]uint64, len(xs))
	acc := uint64(1)
	for i, x := range xs {
		if x == 0 {
			panic("ff: batch inverse of zero")
		}
		prefix[i] = acc
		acc = f.Mul(acc, x)
	}
	inv := f.Inv(acc)
	for i := len(xs) - 1; i >= 0; i-- {
		x := xs[i]
		xs[i] = f.Mul(inv, prefix[i])
		inv = f.Mul(inv, x)
	}
}

// IsPrime reports whether n is prime, using a deterministic Miller–Rabin
// witness set valid for all 64-bit integers.
func IsPrime(n uint64) bool {
	switch {
	case n < 2:
		return false
	case n < 4:
		return true
	case n%2 == 0:
		return false
	}
	d := n - 1
	r := 0
	for d%2 == 0 {
		d /= 2
		r++
	}
	// Sinclair's deterministic base set for n < 2^64.
	for _, a := range [...]uint64{2, 325, 9375, 28178, 450775, 9780504, 1795265022} {
		a %= n
		if a == 0 {
			continue
		}
		if !millerRabinWitness(n, a, d, r) {
			return false
		}
	}
	return true
}

// millerRabinWitness reports whether n passes one Miller–Rabin round with
// base a, where n-1 = d * 2^r with d odd.
func millerRabinWitness(n, a, d uint64, r int) bool {
	f := Field{Q: n}
	x := f.Exp(a, d)
	if x == 1 || x == n-1 {
		return true
	}
	for i := 0; i < r-1; i++ {
		x = f.Mul(x, x)
		if x == n-1 {
			return true
		}
	}
	return false
}

// NextPrime returns the smallest prime >= n.
func NextPrime(n uint64) uint64 {
	if n <= 2 {
		return 2
	}
	if n%2 == 0 {
		n++
	}
	for !IsPrime(n) {
		n += 2
	}
	return n
}

// NTTPrime returns the smallest prime q >= min of the form c*2^k + 1 with
// 2^k >= order, together with a primitive 2^k-th root of unity mod q.
// Such primes admit radix-2 NTT convolution of length up to 2^k, which the
// polynomial package uses for quasi-linear encoding/decoding (paper §2.2).
func NTTPrime(min uint64, order int) (q, root uint64, err error) {
	if order < 1 {
		order = 1
	}
	k := 0
	for 1<<k < order {
		k++
	}
	if k > 40 {
		return 0, 0, fmt.Errorf("ff: NTT order 2^%d too large", k)
	}
	step := uint64(1) << k
	// Smallest candidate c*2^k+1 >= max(min, 2^k+1).
	c := (min + step - 1) / step
	if c == 0 {
		c = 1
	}
	for {
		q = c*step + 1
		if q < min {
			c++
			continue
		}
		if q > MaxPrime {
			return 0, 0, fmt.Errorf("ff: no NTT prime of order 2^%d below 2^62 and >= %d", k, min)
		}
		if IsPrime(q) {
			g, err := primitiveRoot(q)
			if err != nil {
				return 0, 0, err
			}
			f := Field{Q: q}
			root = f.Exp(g, (q-1)>>uint(k))
			return q, root, nil
		}
		c++
	}
}

// primitiveRoot finds a generator of the multiplicative group of Z_q.
func primitiveRoot(q uint64) (uint64, error) {
	phi := q - 1
	factors := factorize(phi)
	f := Field{Q: q}
	for g := uint64(2); g < q; g++ {
		ok := true
		for _, p := range factors {
			if f.Exp(g, phi/p) == 1 {
				ok = false
				break
			}
		}
		if ok {
			return g, nil
		}
	}
	return 0, fmt.Errorf("ff: no primitive root mod %d (modulus not prime?)", q)
}

// factorize returns the distinct prime factors of n by trial division
// (adequate: used once per prime selection, on q-1 which is smooth-ish
// for NTT primes anyway).
func factorize(n uint64) []uint64 {
	var fs []uint64
	for p := uint64(2); p*p <= n; p++ {
		if n%p == 0 {
			fs = append(fs, p)
			for n%p == 0 {
				n /= p
			}
		}
	}
	if n > 1 {
		fs = append(fs, n)
	}
	return fs
}
