package ff

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRejectsComposites(t *testing.T) {
	tests := []struct {
		name string
		q    uint64
		ok   bool
	}{
		{"two", 2, true},
		{"small prime", 97, true},
		{"mersenne 61", (1 << 61) - 1, true},
		{"one", 1, false},
		{"zero", 0, false},
		{"even composite", 100, false},
		{"carmichael 561", 561, false},
		{"carmichael 1105", 1105, false},
		{"square", 25, false},
		{"too large", 1 << 63, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.q)
			if (err == nil) != tt.ok {
				t.Fatalf("New(%d) error = %v, want ok=%v", tt.q, err, tt.ok)
			}
		})
	}
}

func TestIsPrimeAgainstSieve(t *testing.T) {
	const limit = 10000
	sieve := make([]bool, limit)
	for i := 2; i < limit; i++ {
		if !sieve[i] {
			for j := 2 * i; j < limit; j += i {
				sieve[j] = true
			}
		}
	}
	for n := uint64(0); n < limit; n++ {
		want := n >= 2 && !sieve[n]
		if got := IsPrime(n); got != want {
			t.Fatalf("IsPrime(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestFieldOpsSmall(t *testing.T) {
	f := Must(17)
	if got := f.Add(16, 5); got != 4 {
		t.Errorf("Add(16,5) = %d, want 4", got)
	}
	if got := f.Sub(3, 5); got != 15 {
		t.Errorf("Sub(3,5) = %d, want 15", got)
	}
	if got := f.Mul(6, 6); got != 2 {
		t.Errorf("Mul(6,6) = %d, want 2", got)
	}
	if got := f.Neg(0); got != 0 {
		t.Errorf("Neg(0) = %d, want 0", got)
	}
	if got := f.Exp(3, 16); got != 1 {
		t.Errorf("Fermat: 3^16 mod 17 = %d, want 1", got)
	}
	if got := f.Reduce(-1); got != 16 {
		t.Errorf("Reduce(-1) = %d, want 16", got)
	}
	if got := f.Reduce(-34); got != 0 {
		t.Errorf("Reduce(-34) = %d, want 0", got)
	}
}

func TestMulLargeModulus(t *testing.T) {
	f := Must((1 << 61) - 1)
	a := uint64(1)<<60 + 12345
	b := uint64(1)<<59 + 6789
	// Cross-check against big-int-free double reduction: (a*b) via repeated
	// addition in log steps (binary multiplication using only Add).
	want := uint64(0)
	x, y := a, b
	for y > 0 {
		if y&1 == 1 {
			want = f.Add(want, x)
		}
		x = f.Add(x, x)
		y >>= 1
	}
	if got := f.Mul(a, b); got != want {
		t.Fatalf("Mul = %d, want %d", got, want)
	}
}

func TestInvProperty(t *testing.T) {
	f := Must(1000003)
	cfg := &quick.Config{MaxCount: 200}
	prop := func(a uint64) bool {
		a %= f.Q
		if a == 0 {
			a = 1
		}
		return f.Mul(a, f.Inv(a)) == 1
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFieldAxiomsProperty(t *testing.T) {
	f := Must(2147483647) // 2^31 - 1
	cfg := &quick.Config{MaxCount: 300}
	assoc := func(a, b, c uint64) bool {
		a, b, c = a%f.Q, b%f.Q, c%f.Q
		return f.Mul(f.Mul(a, b), c) == f.Mul(a, f.Mul(b, c))
	}
	distrib := func(a, b, c uint64) bool {
		a, b, c = a%f.Q, b%f.Q, c%f.Q
		return f.Mul(a, f.Add(b, c)) == f.Add(f.Mul(a, b), f.Mul(a, c))
	}
	subInverse := func(a, b uint64) bool {
		a, b = a%f.Q, b%f.Q
		return f.Add(f.Sub(a, b), b) == a
	}
	for name, prop := range map[string]any{
		"assoc": assoc, "distrib": distrib, "sub": subInverse,
	} {
		if err := quick.Check(prop, cfg); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestBatchInv(t *testing.T) {
	f := Must(65537)
	rng := rand.New(rand.NewSource(1))
	xs := make([]uint64, 100)
	orig := make([]uint64, 100)
	for i := range xs {
		xs[i] = uint64(rng.Intn(65536)) + 1
		orig[i] = xs[i]
	}
	f.BatchInv(xs)
	for i := range xs {
		if f.Mul(xs[i], orig[i]) != 1 {
			t.Fatalf("element %d: %d * %d != 1", i, xs[i], orig[i])
		}
	}
}

func TestBatchInvEmpty(t *testing.T) {
	f := Must(17)
	f.BatchInv(nil) // must not panic
}

func TestNextPrime(t *testing.T) {
	tests := []struct{ in, want uint64 }{
		{0, 2}, {2, 2}, {3, 3}, {4, 5}, {90, 97}, {1000000, 1000003},
	}
	for _, tt := range tests {
		if got := NextPrime(tt.in); got != tt.want {
			t.Errorf("NextPrime(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestNTTPrime(t *testing.T) {
	for _, order := range []int{1, 2, 16, 1024, 1 << 15} {
		q, root, err := NTTPrime(1<<20, order)
		if err != nil {
			t.Fatalf("NTTPrime(order=%d): %v", order, err)
		}
		if !IsPrime(q) || q < 1<<20 {
			t.Fatalf("NTTPrime(order=%d) = %d: not a prime >= 2^20", order, q)
		}
		k := 1
		for k < order {
			k <<= 1
		}
		if (q-1)%uint64(k) != 0 {
			t.Fatalf("q-1 = %d not divisible by %d", q-1, k)
		}
		f := Must(q)
		// root must have exact order k.
		if f.Exp(root, uint64(k)) != 1 {
			t.Fatalf("root^k != 1")
		}
		if k > 1 && f.Exp(root, uint64(k/2)) == 1 {
			t.Fatalf("root order divides k/2: not primitive")
		}
	}
}

func TestLagrangeOneBasedIsBasis(t *testing.T) {
	f := Must(10007)
	const R = 20
	// At an interpolation point r0, the vector must be the indicator of r0.
	for r0 := uint64(1); r0 <= R; r0++ {
		v := f.LagrangeAtOneBased(R, r0)
		for r := 0; r < R; r++ {
			want := uint64(0)
			if uint64(r+1) == r0 {
				want = 1
			}
			if v[r] != want {
				t.Fatalf("Λ_%d(%d) = %d, want %d", r+1, r0, v[r], want)
			}
		}
	}
}

func TestLagrangeReproducesInterpolation(t *testing.T) {
	// Interpolate a known polynomial's values over 1..R, then check that
	// Σ_r f(r) Λ_r(x0) = f(x0) for off-grid x0.
	f := Must(10007)
	const R = 12
	poly := []uint64{3, 1, 4, 1, 5, 9, 2, 6} // degree 7 < R
	vals := make([]uint64, R)
	for r := 1; r <= R; r++ {
		vals[r-1] = f.Horner(poly, uint64(r))
	}
	for _, x0 := range []uint64{0, 100, 9999, 4321} {
		lam := f.LagrangeAtOneBased(R, x0)
		got := uint64(0)
		for r := 0; r < R; r++ {
			got = f.Add(got, f.Mul(vals[r], lam[r]))
		}
		if want := f.Horner(poly, x0); got != want {
			t.Fatalf("x0=%d: interpolated %d, want %d", x0, got, want)
		}
	}
}

func TestLagrangeZeroBased(t *testing.T) {
	f := Must(10007)
	const R = 16
	poly := []uint64{7, 0, 2, 0, 0, 1}
	vals := make([]uint64, R)
	for i := 0; i < R; i++ {
		vals[i] = f.Horner(poly, uint64(i))
	}
	// Indicator at grid points.
	phi := f.LagrangeAtZeroBased(R, 5)
	for i := range phi {
		want := uint64(0)
		if i == 5 {
			want = 1
		}
		if phi[i] != want {
			t.Fatalf("Φ_%d(5) = %d, want %d", i, phi[i], want)
		}
	}
	// Off-grid reconstruction.
	for _, x0 := range []uint64{R, 999, 10006} {
		lam := f.LagrangeAtZeroBased(R, x0)
		got := uint64(0)
		for i := 0; i < R; i++ {
			got = f.Add(got, f.Mul(vals[i], lam[i]))
		}
		if want := f.Horner(poly, x0); got != want {
			t.Fatalf("x0=%d: got %d, want %d", x0, got, want)
		}
	}
}

func TestHorner(t *testing.T) {
	f := Must(101)
	// p(x) = 1 + 2x + 3x^2 at x=10: 1 + 20 + 300 = 321 = 321-3*101 = 18.
	if got := f.Horner([]uint64{1, 2, 3}, 10); got != 18 {
		t.Fatalf("Horner = %d, want 18", got)
	}
	if got := f.Horner(nil, 10); got != 0 {
		t.Fatalf("Horner(nil) = %d, want 0", got)
	}
}

func BenchmarkMul(b *testing.B) {
	f := Must((1 << 61) - 1)
	x, y := uint64(123456789012345), uint64(987654321098765)
	for i := 0; i < b.N; i++ {
		x = f.Mul(x, y)
	}
	_ = x
}

func BenchmarkLagrangeVector(b *testing.B) {
	q, _, err := NTTPrime(1<<20, 1<<14)
	if err != nil {
		b.Fatal(err)
	}
	f := Must(q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.LagrangeAtOneBased(1<<14, 1<<19)
	}
}

func TestLagrangeEvaluatorMatchesOneShot(t *testing.T) {
	f := Must(1048583)
	for _, bigR := range []int{1, 2, 7, 64, 343} {
		one := f.NewLagrangeEvaluatorOneBased(bigR)
		zero := f.NewLagrangeEvaluatorZeroBased(bigR)
		out := make([]uint64, bigR)
		for _, x0 := range []uint64{0, 1, uint64(bigR), uint64(bigR) + 1, 54321, f.Q - 1} {
			wantOne := f.LagrangeAtOneBased(bigR, x0)
			gotOne := one.At(x0, out)
			for i := range wantOne {
				if gotOne[i] != wantOne[i] {
					t.Fatalf("R=%d x0=%d one-based pos %d: %d != %d", bigR, x0, i, gotOne[i], wantOne[i])
				}
			}
			wantZero := f.LagrangeAtZeroBased(bigR, x0)
			gotZero := zero.At(x0, out)
			for i := range wantZero {
				if gotZero[i] != wantZero[i] {
					t.Fatalf("R=%d x0=%d zero-based pos %d: %d != %d", bigR, x0, i, gotZero[i], wantZero[i])
				}
			}
		}
	}
}
