package ff

// Differential tests pinning the precomputed-reciprocal (Barrett /
// Möller–Granlund) reduction against the retired division-based
// implementation, bit for bit, across the full supported modulus range —
// plus the inlining guard for MulK and the microbenchmarks quoted in
// BENCH_2.json.

import (
	"math/rand"
	"os/exec"
	"strings"
	"testing"
)

// prevPrime returns the largest prime <= n (n >= 2).
func prevPrime(n uint64) uint64 {
	for !IsPrime(n) {
		n--
	}
	return n
}

// expDiv is Exp through the division reference path.
func (f Field) expDiv(a, e uint64) uint64 {
	a %= f.Q
	result := uint64(1 % f.Q)
	for e > 0 {
		if e&1 == 1 {
			result = f.mulDiv(result, a)
		}
		a = f.mulDiv(a, a)
		e >>= 1
	}
	return result
}

// diffModuli is the modulus sweep every differential test runs over:
// the smallest primes, mid-range primes (including NTT-friendly ones the
// protocol actually selects), and the edge just below 2^62.
func diffModuli(t testing.TB) []uint64 {
	qs := []uint64{2, 3, 5, 7, 65537, 1048583, (1 << 31) - 1, (1 << 61) - 1}
	qs = append(qs, prevPrime(MaxPrime))
	qs = append(qs, prevPrime(MaxPrime-1<<20))
	if q, _, err := NTTPrime(1<<45, 1<<12); err == nil {
		qs = append(qs, q)
	} else {
		t.Fatalf("NTTPrime: %v", err)
	}
	return qs
}

func TestMulMatchesDivisionReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, q := range diffModuli(t) {
		f := Must(q)
		edge := []uint64{0, 1, 2, q / 2, q - 2, q - 1}
		for _, a := range edge {
			for _, b := range edge {
				a, b := a%q, b%q
				if got, want := f.Mul(a, b), f.mulDiv(a, b); got != want {
					t.Fatalf("q=%d: Mul(%d,%d) = %d, reference %d", q, a, b, got, want)
				}
			}
		}
		for i := 0; i < 5000; i++ {
			a, b := rng.Uint64()%q, rng.Uint64()%q
			if got, want := f.Mul(a, b), f.mulDiv(a, b); got != want {
				t.Fatalf("q=%d: Mul(%d,%d) = %d, reference %d", q, a, b, got, want)
			}
		}
	}
}

func TestMulMatchesDivisionReferenceRandomPrimes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 40; i++ {
		q := NextPrime(2 + rng.Uint64()%(1<<61))
		f := Must(q)
		for j := 0; j < 500; j++ {
			a, b := rng.Uint64()%q, rng.Uint64()%q
			if got, want := f.Mul(a, b), f.mulDiv(a, b); got != want {
				t.Fatalf("q=%d: Mul(%d,%d) = %d, reference %d", q, a, b, got, want)
			}
		}
	}
}

func TestReduceUMatchesModulo(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, q := range diffModuli(t) {
		f := Must(q)
		for _, x := range []uint64{0, 1, q - 1, q, q + 1, 2*q - 1, ^uint64(0), ^uint64(0) - 1} {
			if got, want := f.ReduceU(x), x%q; got != want {
				t.Fatalf("q=%d: ReduceU(%d) = %d, want %d", q, x, got, want)
			}
		}
		for i := 0; i < 5000; i++ {
			x := rng.Uint64()
			if got, want := f.ReduceU(x), x%q; got != want {
				t.Fatalf("q=%d: ReduceU(%d) = %d, want %d", q, x, got, want)
			}
		}
	}
}

func TestExpMatchesDivisionReference(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, q := range diffModuli(t) {
		f := Must(q)
		for i := 0; i < 200; i++ {
			a, e := rng.Uint64(), rng.Uint64()
			if got, want := f.Exp(a, e), f.expDiv(a, e); got != want {
				t.Fatalf("q=%d: Exp(%d,%d) = %d, reference %d", q, a, e, got, want)
			}
		}
	}
}

func TestMulExhaustiveTinyFields(t *testing.T) {
	for _, q := range []uint64{2, 3, 5, 7, 11, 13} {
		f := Must(q)
		for a := uint64(0); a < q; a++ {
			for b := uint64(0); b < q; b++ {
				if got, want := f.Mul(a, b), a*b%q; got != want {
					t.Fatalf("q=%d: Mul(%d,%d) = %d, want %d", q, a, b, got, want)
				}
			}
		}
	}
}

func TestMulPanicsOnUnconstructedField(t *testing.T) {
	var f Field
	f.Q = 97 // simulating the old ff.Field{Q: q} literal
	for name, op := range map[string]func(){
		"Mul":     func() { f.Mul(3, 4) },
		"ReduceU": func() { f.ReduceU(1000) },
		"Kernel":  func() { f.Kernel() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s on literal Field did not panic", name)
				}
			}()
			op()
		}()
	}
}

func TestNewIsMemoized(t *testing.T) {
	a := Must(1048583)
	b := Must(1048583)
	if a != b {
		t.Fatalf("Must returned distinct Fields for the same modulus: %+v vs %+v", a, b)
	}
	if _, err := New(1048584); err == nil {
		t.Fatal("New accepted a composite")
	}
}

func TestPrimitiveRootIsGenerator(t *testing.T) {
	for _, q := range []uint64{3, 5, 97, 65537, 1048583} {
		g, err := PrimitiveRoot(q)
		if err != nil {
			t.Fatalf("PrimitiveRoot(%d): %v", q, err)
		}
		f := Must(q)
		for _, p := range factorize(q - 1) {
			if f.Exp(g, (q-1)/p) == 1 {
				t.Fatalf("PrimitiveRoot(%d) = %d has order dividing (q-1)/%d", q, g, p)
			}
		}
		// Memoized second call must agree.
		g2, _ := PrimitiveRoot(q)
		if g2 != g {
			t.Fatalf("PrimitiveRoot(%d) not stable: %d then %d", q, g, g2)
		}
	}
}

func TestBatchInvScratchMatchesBatchInv(t *testing.T) {
	f := Must(1048583)
	rng := rand.New(rand.NewSource(19))
	for _, n := range []int{1, 2, 33, 500} {
		xs := make([]uint64, n)
		ys := make([]uint64, n)
		for i := range xs {
			xs[i] = 1 + rng.Uint64()%(f.Q-1)
			ys[i] = xs[i]
		}
		scratch := make([]uint64, n)
		f.BatchInv(xs)
		f.BatchInvScratch(ys, scratch)
		for i := range xs {
			if xs[i] != ys[i] {
				t.Fatalf("n=%d pos %d: BatchInv %d != BatchInvScratch %d", n, i, xs[i], ys[i])
			}
			if f.Mul(xs[i], ys[i]) != f.Mul(xs[i], xs[i]) {
				t.Fatalf("inconsistent inverses")
			}
		}
	}
}

// TestMulKStaysInlinable rebuilds this package with the inliner's debug
// output and fails if MulK stopped inlining — its cost sits exactly at
// the compiler's budget, so any edit can silently push it over and
// reintroduce a function call in every field multiply of every hot loop.
func TestMulKStaysInlinable(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	out, err := exec.Command("go", "build", "-gcflags=-m=2", ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build -gcflags=-m=2: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "can inline MulK") {
		for _, line := range strings.Split(string(out), "\n") {
			if strings.Contains(line, "MulK") {
				t.Logf("%s", line)
			}
		}
		t.Fatal("MulK is no longer inlinable; trim its cost back under the budget")
	}
}

func FuzzMul(f *testing.F) {
	f.Add(uint64(1048583), uint64(3), uint64(5))
	f.Add(uint64(0), uint64(0), uint64(0))
	f.Add(^uint64(0), ^uint64(0), ^uint64(0))
	f.Fuzz(func(t *testing.T, q, a, b uint64) {
		// Map q onto a supported prime deterministically; the bound keeps
		// NextPrime comfortably below MaxPrime.
		q = NextPrime(2 + q%(1<<61))
		fl := Must(q)
		a, b = a%q, b%q
		if got, want := fl.Mul(a, b), fl.mulDiv(a, b); got != want {
			t.Fatalf("q=%d: Mul(%d,%d) = %d, reference %d", q, a, b, got, want)
		}
		if got, want := fl.ReduceU(a+b), (a+b)%q; got != want {
			t.Fatalf("q=%d: ReduceU(%d) = %d, want %d", q, a+b, got, want)
		}
	})
}

// --- microbenchmarks (recorded in BENCH_2.json by scripts/bench.sh) ----------

func benchOperands(q uint64) []uint64 {
	xs := make([]uint64, 4096)
	s := uint64(12345)
	for i := range xs {
		s = s*6364136223846793005 + 1442695040888963407
		xs[i] = s % q
	}
	return xs
}

// BenchmarkFieldMul measures one multiply-reduce over a 4096-element
// stream: the division-free kernel (MulK), the Field.Mul method (same
// arithmetic behind a non-inlined call), and the retired hardware-
// division reference.
func BenchmarkFieldMul(b *testing.B) {
	f := Must(prevPrime(MaxPrime))
	xs := benchOperands(f.Q)
	c := xs[7] | 1
	b.Run("barrett-kernel", func(b *testing.B) {
		k := f.Kernel()
		for i := 0; i < b.N; i++ {
			for j := range xs {
				xs[j] = MulK(xs[j], c, k)
			}
		}
	})
	// The shape the pipeline's tightest loops actually use: the constant
	// operand's normalization shift hoisted out of the loop (NTT twiddle
	// tables are stored pre-shifted; DivMod/Horner/yates hoist per-row).
	b.Run("barrett-kernel-preshifted", func(b *testing.B) {
		k := f.Kernel()
		cs := k.Shift(c)
		for i := 0; i < b.N; i++ {
			for j := range xs {
				xs[j] = MulKS(xs[j], cs, k)
			}
		}
	})
	b.Run("barrett-method", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := range xs {
				xs[j] = f.Mul(xs[j], c)
			}
		}
	})
	b.Run("div-reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := range xs {
				xs[j] = f.mulDiv(xs[j], c)
			}
		}
	})
}

func BenchmarkFieldExp(b *testing.B) {
	f := Must(prevPrime(MaxPrime))
	x := uint64(0)
	for i := 0; i < b.N; i++ {
		x = f.Exp(x+3, f.Q-2)
	}
	_ = x
}

func BenchmarkBatchInv(b *testing.B) {
	f := Must(1048583)
	xs := benchOperands(f.Q)
	for i := range xs {
		xs[i] |= 1
	}
	b.Run("alloc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f.BatchInv(xs)
		}
	})
	b.Run("scratch", func(b *testing.B) {
		scratch := make([]uint64, len(xs))
		for i := 0; i < b.N; i++ {
			f.BatchInvScratch(xs, scratch)
		}
	})
}

// BenchmarkLagrangeEvaluatorAt times the batch-evaluation workhorse on a
// permanent-sized grid; the satellite claim is that the hoisted grid
// reductions and the scratch-reusing batch inversion made it faster and
// allocation-free.
func BenchmarkLagrangeEvaluatorAt(b *testing.B) {
	q, _, err := NTTPrime(1<<20, 1<<12)
	if err != nil {
		b.Fatal(err)
	}
	f := Must(q)
	le := f.NewLagrangeEvaluatorZeroBased(1 << 10)
	out := make([]uint64, 1<<10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		le.At(uint64(1<<10+i), out)
	}
}
