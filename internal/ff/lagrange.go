package ff

// This file implements the Lagrange evaluation kernels of paper §5.3 and
// §3.3: given a point x0, produce the full vector of Lagrange basis values
// over the consecutive node sets {1..R} or {0..R-1} in O(R) operations,
// via the factorial recurrence
//
//	Λ_r(x0) = Γ(x0) / ((-1)^{R-r} F_{r-1} F_{R-r} (x0-r)),   Γ(x0) = Π_{j=1..R} (x0-j).
//
// These vectors seed Yates's algorithm when evaluating the interpolated
// tensor coefficients α_de(x0), β_ef(x0), γ_df(x0).

// LagrangeAtOneBased returns the vector (Λ_1(x0), ..., Λ_R(x0)) mod q for
// the Lagrange basis over the points 1..R (paper eq. (13)).
//
// The modulus must satisfy q > R so the points are distinct mod q.
func (f Field) LagrangeAtOneBased(bigR int, x0 uint64) []uint64 {
	out := make([]uint64, bigR)
	x0 %= f.Q
	// If x0 is one of the interpolation points the basis is an indicator.
	if x0 >= 1 && x0 <= uint64(bigR) {
		out[x0-1] = 1
		return out
	}
	// F_j = j! for j = 0..R-1.
	fact := make([]uint64, bigR)
	fact[0] = 1
	for j := 1; j < bigR; j++ {
		fact[j] = f.Mul(fact[j-1], uint64(j)%f.Q)
	}
	// Γ(x0) = Π_{j=1..R}(x0 - j), plus per-point denominators.
	gamma := uint64(1)
	denoms := make([]uint64, bigR)
	for r := 1; r <= bigR; r++ {
		diff := f.Sub(x0, uint64(r)%f.Q)
		denoms[r-1] = diff
		gamma = f.Mul(gamma, diff)
	}
	// denom_r = (-1)^{R-r} F_{r-1} F_{R-r} (x0-r); invert all at once.
	for r := 1; r <= bigR; r++ {
		d := f.Mul(fact[r-1], fact[bigR-r])
		d = f.Mul(d, denoms[r-1])
		if (bigR-r)%2 == 1 {
			d = f.Neg(d)
		}
		denoms[r-1] = d
	}
	f.BatchInv(denoms)
	for r := 0; r < bigR; r++ {
		out[r] = f.Mul(gamma, denoms[r])
	}
	return out
}

// LagrangeAtZeroBased returns the vector (Φ_0(x0), ..., Φ_{R-1}(x0)) mod q
// for the Lagrange basis over the points 0..R-1. This variant serves proof
// polynomials whose natural evaluation grid starts at zero (permanent, set
// covers, §3.3 polynomial extension with 1-based ranges shifted).
func (f Field) LagrangeAtZeroBased(bigR int, x0 uint64) []uint64 {
	out := make([]uint64, bigR)
	x0 %= f.Q
	if x0 < uint64(bigR) {
		out[x0] = 1
		return out
	}
	fact := make([]uint64, bigR)
	fact[0] = 1
	for j := 1; j < bigR; j++ {
		fact[j] = f.Mul(fact[j-1], uint64(j)%f.Q)
	}
	gamma := uint64(1)
	denoms := make([]uint64, bigR)
	for i := 0; i < bigR; i++ {
		diff := f.Sub(x0, uint64(i)%f.Q)
		denoms[i] = diff
		gamma = f.Mul(gamma, diff)
	}
	for i := 0; i < bigR; i++ {
		d := f.Mul(fact[i], fact[bigR-1-i])
		d = f.Mul(d, denoms[i])
		if (bigR-1-i)%2 == 1 {
			d = f.Neg(d)
		}
		denoms[i] = d
	}
	f.BatchInv(denoms)
	for i := 0; i < bigR; i++ {
		out[i] = f.Mul(gamma, denoms[i])
	}
	return out
}

// Horner evaluates the polynomial with coefficient slice coeffs
// (coeffs[j] is the coefficient of x^j) at x, mod q. This is the
// verifier's right-hand side of paper eq. (2).
func (f Field) Horner(coeffs []uint64, x uint64) uint64 {
	acc := uint64(0)
	for j := len(coeffs) - 1; j >= 0; j-- {
		acc = f.Add(f.Mul(acc, x), coeffs[j])
	}
	return acc
}
