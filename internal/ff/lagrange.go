package ff

// This file implements the Lagrange evaluation kernels of paper §5.3 and
// §3.3: given a point x0, produce the full vector of Lagrange basis values
// over the consecutive node sets {1..R} or {0..R-1} in O(R) operations,
// via the factorial recurrence
//
//	Λ_r(x0) = Γ(x0) / ((-1)^{R-r} F_{r-1} F_{R-r} (x0-r)),   Γ(x0) = Π_{j=1..R} (x0-j).
//
// These vectors seed Yates's algorithm when evaluating the interpolated
// tensor coefficients α_de(x0), β_ef(x0), γ_df(x0).
//
// Every kernel requires q > R (checked once per call): the grid points
// are then distinct canonical residues, so the inner loops use j and r
// directly without a per-iteration reduction.

// checkGrid panics unless the modulus exceeds the grid size — the
// documented precondition that lets the kernels skip reducing the grid
// points and factorial arguments.
func (f Field) checkGrid(bigR int) {
	if uint64(bigR) >= f.Q {
		panic("ff: Lagrange grid size must be smaller than the modulus")
	}
}

// LagrangeAtOneBased returns the vector (Λ_1(x0), ..., Λ_R(x0)) mod q for
// the Lagrange basis over the points 1..R (paper eq. (13)).
//
// The modulus must satisfy q > R so the points are distinct mod q.
func (f Field) LagrangeAtOneBased(bigR int, x0 uint64) []uint64 {
	f.checkGrid(bigR)
	out := make([]uint64, bigR)
	x0 = f.ReduceU(x0)
	// If x0 is one of the interpolation points the basis is an indicator.
	if x0 >= 1 && x0 <= uint64(bigR) {
		out[x0-1] = 1
		return out
	}
	k := f.Kernel()
	// F_j = j! for j = 0..R-1.
	fact := make([]uint64, bigR)
	fact[0] = 1
	for j := 1; j < bigR; j++ {
		fact[j] = MulK(fact[j-1], uint64(j), k)
	}
	// Γ(x0) = Π_{j=1..R}(x0 - j), plus per-point denominators.
	gamma := uint64(1)
	denoms := make([]uint64, bigR)
	for r := 1; r <= bigR; r++ {
		diff := f.Sub(x0, uint64(r))
		denoms[r-1] = diff
		gamma = MulK(gamma, diff, k)
	}
	// denom_r = (-1)^{R-r} F_{r-1} F_{R-r} (x0-r); invert all at once.
	for r := 1; r <= bigR; r++ {
		d := MulK(fact[r-1], fact[bigR-r], k)
		d = MulK(d, denoms[r-1], k)
		if (bigR-r)%2 == 1 {
			d = f.Neg(d)
		}
		denoms[r-1] = d
	}
	f.BatchInv(denoms)
	for r := 0; r < bigR; r++ {
		out[r] = MulK(gamma, denoms[r], k)
	}
	return out
}

// LagrangeAtZeroBased returns the vector (Φ_0(x0), ..., Φ_{R-1}(x0)) mod q
// for the Lagrange basis over the points 0..R-1. This variant serves proof
// polynomials whose natural evaluation grid starts at zero (permanent, set
// covers, §3.3 polynomial extension with 1-based ranges shifted).
//
// The modulus must satisfy q > R so the points are distinct mod q.
func (f Field) LagrangeAtZeroBased(bigR int, x0 uint64) []uint64 {
	f.checkGrid(bigR)
	out := make([]uint64, bigR)
	x0 = f.ReduceU(x0)
	if x0 < uint64(bigR) {
		out[x0] = 1
		return out
	}
	k := f.Kernel()
	fact := make([]uint64, bigR)
	fact[0] = 1
	for j := 1; j < bigR; j++ {
		fact[j] = MulK(fact[j-1], uint64(j), k)
	}
	gamma := uint64(1)
	denoms := make([]uint64, bigR)
	for i := 0; i < bigR; i++ {
		diff := f.Sub(x0, uint64(i))
		denoms[i] = diff
		gamma = MulK(gamma, diff, k)
	}
	for i := 0; i < bigR; i++ {
		d := MulK(fact[i], fact[bigR-1-i], k)
		d = MulK(d, denoms[i], k)
		if (bigR-1-i)%2 == 1 {
			d = f.Neg(d)
		}
		denoms[i] = d
	}
	f.BatchInv(denoms)
	for i := 0; i < bigR; i++ {
		out[i] = MulK(gamma, denoms[i], k)
	}
	return out
}

// LagrangeEvaluator amortizes repeated Lagrange basis evaluations over a
// fixed consecutive grid (base..base+R-1, base 0 or 1): the
// factorial-derived denominator factors are inverted once at
// construction, so At costs one pass of multiplications plus a single
// field inversion per point and reuses its scratch between calls. This
// is the batch-evaluation workhorse: problems evaluating their proof
// polynomial at a whole block of points build one evaluator per prime.
//
// An evaluator is NOT safe for concurrent use (shared scratch); build
// one per goroutine.
//
// Kept separate from the one-shot LagrangeAt*Based kernels on purpose:
// the one-shot folds the per-point factor into a single batch
// inversion (cheaper for a single evaluation), the evaluator splits
// fixed from per-point factors (cheaper across many), and the two
// derivations cross-check each other in TestLagrangeEvaluatorMatchesOneShot.
type LagrangeEvaluator struct {
	f    Field
	bigR int
	base uint64 // first grid point: 0 or 1
	// invFixed[i] = 1 / ((-1)^{R-1-i} F_i F_{R-1-i}) for grid position i.
	invFixed []uint64
	diffs    []uint64 // scratch: (x0 - point_i), then its inverses
	prefix   []uint64 // scratch for the batch inversion's prefix products
}

// NewLagrangeEvaluatorOneBased prepares an evaluator for the grid 1..R —
// the reusable form of LagrangeAtOneBased. Requires q > R.
func (f Field) NewLagrangeEvaluatorOneBased(bigR int) *LagrangeEvaluator {
	return f.newLagrangeEvaluator(bigR, 1)
}

// NewLagrangeEvaluatorZeroBased prepares an evaluator for the grid
// 0..R-1 — the reusable form of LagrangeAtZeroBased. Requires q > R.
func (f Field) NewLagrangeEvaluatorZeroBased(bigR int) *LagrangeEvaluator {
	return f.newLagrangeEvaluator(bigR, 0)
}

func (f Field) newLagrangeEvaluator(bigR int, base uint64) *LagrangeEvaluator {
	f.checkGrid(bigR)
	k := f.Kernel()
	fact := make([]uint64, bigR)
	fact[0] = 1
	for j := 1; j < bigR; j++ {
		fact[j] = MulK(fact[j-1], uint64(j), k)
	}
	invFixed := make([]uint64, bigR)
	for i := 0; i < bigR; i++ {
		d := MulK(fact[i], fact[bigR-1-i], k)
		if (bigR-1-i)%2 == 1 {
			d = f.Neg(d)
		}
		invFixed[i] = d
	}
	f.BatchInv(invFixed)
	return &LagrangeEvaluator{
		f: f, bigR: bigR, base: base,
		invFixed: invFixed,
		diffs:    make([]uint64, bigR),
		prefix:   make([]uint64, bigR),
	}
}

// At writes the basis vector (Λ_base(x0), ..., Λ_{base+R-1}(x0)) into
// out (which must have length R) and returns it. out may be reused
// across calls.
func (le *LagrangeEvaluator) At(x0 uint64, out []uint64) []uint64 {
	f := le.f
	if len(out) != le.bigR {
		panic("ff: LagrangeEvaluator.At output length mismatch")
	}
	x0 = f.ReduceU(x0)
	if x0 >= le.base && x0 < le.base+uint64(le.bigR) {
		for i := range out {
			out[i] = 0
		}
		out[x0-le.base] = 1
		return out
	}
	k := f.Kernel()
	gamma := uint64(1)
	for i := 0; i < le.bigR; i++ {
		diff := f.Sub(x0, le.base+uint64(i))
		le.diffs[i] = diff
		gamma = MulK(gamma, diff, k)
	}
	f.BatchInvScratch(le.diffs, le.prefix)
	// The grid reduction: out[i] = invFixed[i]·diffs[i]·gamma, via the
	// 4-wide unrolled sweep (vec.go).
	MulScaleVecKS(out, le.invFixed, le.diffs, k.Shift(gamma), k)
	return out
}

// Horner evaluates the polynomial with coefficient slice coeffs
// (coeffs[j] is the coefficient of x^j) at x, mod q. This is the
// verifier's right-hand side of paper eq. (2).
func (f Field) Horner(coeffs []uint64, x uint64) uint64 {
	k := f.Kernel()
	xs := k.Shift(f.ReduceU(x))
	acc := uint64(0)
	for j := len(coeffs) - 1; j >= 0; j-- {
		acc = f.Add(MulKS(acc, xs, k), coeffs[j])
	}
	return acc
}
