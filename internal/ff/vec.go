package ff

// 4-wide unrolled lazy-reduction sweeps over the Möller–Granlund kernel.
//
// MulK computes bits.Mul64(a, b<<k.s): only the SECOND operand is
// shifted, so it must be canonical (< q), while the FIRST operand may be
// a *lazy* residue anywhere below 4q — the division precondition is
// a·b < q·2^64, and 4q·q ≤ q·2^64 for every q ≤ MaxPrime = 2^62-1.
// The sweeps below exploit that one-sided slack: callers feed unreduced
// sums (< 2q) and Harvey-style NTT residues (< 4q) straight into the
// multiplier, skipping the conditional subtractions a canonical
// representation would need. Every function returns fully canonical
// values, so results are bit-identical to the reference loops they
// replace (the arithmetic is exact mod q; only intermediate
// representations differ). Differential and fuzz tests in vec_test.go
// pin each variant against the scalar Field-op reference across the
// diffModuli sweep.
//
// The bodies are unrolled 4-wide by hand: MulK/MulKS inline (guarded by
// TestMulKStaysInlinable), and unrolling lets the four independent
// reduction chains overlap in the out-of-order window instead of
// serializing on the loop counter.

// MulVecKS sets dst[i] = a[i]·b mod q for every i, where bs = k.Shift(b)
// is the pre-shifted canonical multiplier. Entries of a may be lazy
// (< 4q). dst and a may alias; len(dst) must be >= len(a).
func MulVecKS(dst, a []uint64, bs uint64, k Kernel) {
	n := len(a)
	i := 0
	for ; i+4 <= n; i += 4 {
		d0 := MulKS(a[i], bs, k)
		d1 := MulKS(a[i+1], bs, k)
		d2 := MulKS(a[i+2], bs, k)
		d3 := MulKS(a[i+3], bs, k)
		dst[i], dst[i+1], dst[i+2], dst[i+3] = d0, d1, d2, d3
	}
	for ; i < n; i++ {
		dst[i] = MulKS(a[i], bs, k)
	}
}

// MulVecK sets dst[i] = a[i]·b[i] mod q pointwise. Entries of a may be
// lazy (< 4q); entries of b must be canonical. dst may alias a or b.
func MulVecK(dst, a, b []uint64, k Kernel) {
	n := len(a)
	i := 0
	for ; i+4 <= n; i += 4 {
		d0 := MulK(a[i], b[i], k)
		d1 := MulK(a[i+1], b[i+1], k)
		d2 := MulK(a[i+2], b[i+2], k)
		d3 := MulK(a[i+3], b[i+3], k)
		dst[i], dst[i+1], dst[i+2], dst[i+3] = d0, d1, d2, d3
	}
	for ; i < n; i++ {
		dst[i] = MulK(a[i], b[i], k)
	}
}

// MulScaleVecKS sets dst[i] = a[i]·b[i]·c mod q, where cs = k.Shift(c)
// is pre-shifted — the Lagrange grid reduction (LagrangeEvaluator.At
// combines a fixed-weight vector, a per-point difference vector, and one
// scalar). Entries of a may be lazy (< 4q); b and c must be canonical.
func MulScaleVecKS(dst, a, b []uint64, cs uint64, k Kernel) {
	n := len(a)
	i := 0
	for ; i+4 <= n; i += 4 {
		d0 := MulKS(MulK(a[i], b[i], k), cs, k)
		d1 := MulKS(MulK(a[i+1], b[i+1], k), cs, k)
		d2 := MulKS(MulK(a[i+2], b[i+2], k), cs, k)
		d3 := MulKS(MulK(a[i+3], b[i+3], k), cs, k)
		dst[i], dst[i+1], dst[i+2], dst[i+3] = d0, d1, d2, d3
	}
	for ; i < n; i++ {
		dst[i] = MulKS(MulK(a[i], b[i], k), cs, k)
	}
}

// ProdSumLazy returns acc·Π_i (a[i]+b[i]) mod q — the Gray-code
// permanent sweep. The sums a[i]+b[i] are fed to the multiplier
// unreduced (< 2q, within the lazy first-operand budget), skipping the
// canonicalizing subtraction of Field.Add. Entries of a and b must be
// canonical, as must acc. Like the reference sweep it early-exits once
// the product hits zero (zero is absorbing, so checking every fourth
// step leaves the result unchanged).
func ProdSumLazy(acc uint64, a, b []uint64, k Kernel) uint64 {
	n := len(a)
	i := 0
	for ; acc != 0 && i+4 <= n; i += 4 {
		acc = MulK(a[i]+b[i], acc, k)
		acc = MulK(a[i+1]+b[i+1], acc, k)
		acc = MulK(a[i+2]+b[i+2], acc, k)
		acc = MulK(a[i+3]+b[i+3], acc, k)
	}
	for ; acc != 0 && i < n; i++ {
		acc = MulK(a[i]+b[i], acc, k)
	}
	return acc
}

// ReduceVec4Q canonicalizes entries from the Harvey lazy range [0, 4q)
// in place: two conditional subtractions per entry.
func ReduceVec4Q(a []uint64, q uint64) {
	twoQ := 2 * q
	for i, v := range a {
		if v >= twoQ {
			v -= twoQ
		}
		if v >= q {
			v -= q
		}
		a[i] = v
	}
}
