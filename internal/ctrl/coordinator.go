package ctrl

// The coordinator is the paper's compiler node as an actual network
// server: it owns a run's geometry and workload, admits worker daemons
// over the control protocol, ships them point-range manifests, and
// feeds the frames they stream back into the exact quorum-gather loop
// the in-process engine uses (core.GatherShares). To the engine it is
// just another Transport with the RemoteAssigner capability — the
// prepare and repair stages call AssignRanges instead of evaluating
// locally, and everything downstream (collectShares, erasure decode,
// repair policy) is unchanged, which is what keeps a multi-process
// proof bit-identical to the in-process bus run.
//
// Worker slots and logical nodes are distinct populations: a run has K
// logical node ids (what decoders index by) and up to K worker slots;
// with fewer live workers than K, assignments round-robin over the
// live slots, and a frame names both its owner (NodeShares.ID) and the
// slot that computed it (NodeShares.From). Faults map onto the
// engine's existing delivery-fault axis: a worker that dies silent
// leaves its ranges unheard, and the quorum gather's grace timer turns
// that silence into the round's missing set (absorbed as erasures,
// healed by a repair round's re-assignment to a live slot); an
// authentication failure is injected in-band with its ErrAuth type
// intact — a delivery fault in quorum mode, a typed refusal in strict
// mode. A worker that reconnects with its resume token reattaches to
// its slot and replays whatever was assigned but never delivered.

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"camelot/internal/core"
)

// Config parameterizes a Coordinator. The workload (Kind, Instance)
// is fixed per coordinator: a coordinator serves one run.
type Config struct {
	// ListenAddr is the TCP address to accept workers on; ":0" binds an
	// ephemeral loopback-reachable port (see Addr).
	ListenAddr string
	// Secret is the cluster's shared authentication secret; empty
	// disables frame authentication (loopback development mode).
	Secret []byte
	// Kind and Instance describe the workload for Assign manifests;
	// workers rebuild the problem via RegisterProblem's constructors.
	Kind     string
	Instance []byte
	// MinWorkers is how many live workers the initial round waits for
	// before assigning (clamped to the run's K; default 1). Repair
	// rounds need only one.
	MinWorkers int
	// JoinTimeout bounds how long AssignRanges waits for MinWorkers
	// (default 30s).
	JoinTimeout time.Duration
	// MaxFrameBytes caps accepted control frames (default 64 MiB, same
	// as the share transport).
	MaxFrameBytes int
	// Job identifies this run in manifests (default 1).
	Job int
}

func (cfg Config) withDefaults() Config {
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = ":0"
	}
	if cfg.MinWorkers <= 0 {
		cfg.MinWorkers = 1
	}
	if cfg.JoinTimeout <= 0 {
		cfg.JoinTimeout = 30 * time.Second
	}
	if cfg.MaxFrameBytes <= 0 {
		cfg.MaxFrameBytes = 64 << 20
	}
	if cfg.Job <= 0 {
		cfg.Job = 1
	}
	return cfg
}

// workerSlot is one of the K admission slots. conn is nil while no
// worker holds the slot (never used, or its holder died); resume is
// the token that reattaches a reconnecting holder.
type workerSlot struct {
	id        int
	used      bool
	resume    [16]byte
	conn      *wireConn
	name      string
	lastRound int
}

type assignKey struct{ owner, round int }

// assignment tracks one manifest's lifecycle: which slot it is routed
// to and whether its shares (or in-band failure) ever arrived.
// Undelivered assignments are replayed to a worker that (re)attaches
// to the slot.
type assignment struct {
	slot      int
	msg       Assign
	delivered bool
}

// Coordinator implements core.Transport, core.QuorumGatherer, and
// core.RemoteAssigner over the control protocol.
type Coordinator struct {
	k   int
	cfg Config
	ln  net.Listener
	ch  chan core.NodeShares

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
	badFrames atomic.Int64

	mu       sync.Mutex
	slots    []*workerSlot
	assigned map[assignKey]*assignment
	rr       int // round-robin cursor over slots for dispatch
}

var (
	_ core.Transport      = (*Coordinator)(nil)
	_ core.QuorumGatherer = (*Coordinator)(nil)
	_ core.RemoteAssigner = (*Coordinator)(nil)
)

// NewCoordinator binds the listener and starts admitting workers for a
// run of k logical nodes. The caller (or the engine, via its
// end-of-run transport teardown) must Close it.
func NewCoordinator(k int, cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if k < 1 {
		return nil, fmt.Errorf("ctrl: coordinator needs k >= 1, got %d", k)
	}
	if cfg.Kind == "" {
		return nil, fmt.Errorf("ctrl: coordinator needs a workload kind")
	}
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("ctrl: listen %s: %w", cfg.ListenAddr, err)
	}
	c := &Coordinator{
		k:   k,
		cfg: cfg,
		ln:  ln,
		// Headroom beyond one frame per node: duplicates from a
		// reconnect replay race and injected Err frames must not block
		// reader goroutines against a slow gather.
		ch:       make(chan core.NodeShares, 4*k+8),
		done:     make(chan struct{}),
		slots:    make([]*workerSlot, k),
		assigned: map[assignKey]*assignment{},
	}
	for i := range c.slots {
		c.slots[i] = &workerSlot{id: i}
	}
	c.wg.Add(1)
	go c.acceptLoop()
	return c, nil
}

// Addr is the listener's bound address — what workers -join.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// K is the run geometry the coordinator was built for.
func (c *Coordinator) K() int { return c.k }

// BadFrames reports how many malformed or unauthenticated frames the
// coordinator has dropped or converted into delivery faults.
func (c *Coordinator) BadFrames() int64 { return c.badFrames.Load() }

func (c *Coordinator) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		select {
		case <-c.done:
			conn.Close()
			return
		default:
		}
		c.wg.Add(1)
		go c.handleConn(conn)
	}
}

// handshakeTimeout bounds how long a freshly accepted connection may
// take to present a valid hello — half-open sockets must not pin
// goroutines.
const handshakeTimeout = 10 * time.Second

func (c *Coordinator) handleConn(conn net.Conn) {
	defer c.wg.Done()
	defer conn.Close()
	wc := newWireConn(conn, c.cfg.MaxFrameBytes)
	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	_, msg, err := wc.recv()
	if err != nil {
		c.badFrames.Add(1)
		return
	}
	hello, ok := msg.(Hello)
	if !ok {
		c.badFrames.Add(1)
		wc.send(ErrorMsg{Code: CodeBadFrame, Msg: "expected hello"})
		return
	}
	version := ProtocolVersion
	if hello.Version < version {
		version = hello.Version
	}
	if version < 1 {
		wc.send(ErrorMsg{Code: CodeVersion, Msg: fmt.Sprintf("no common protocol version (coordinator %d, worker %d)", ProtocolVersion, hello.Version)})
		return
	}
	slot := c.attach(hello)
	if slot == nil {
		wc.send(ErrorMsg{Code: CodeClusterFul, Msg: fmt.Sprintf("all %d worker slots are live", c.k)})
		return
	}
	var challenge [16]byte
	if _, err := rand.Read(challenge[:]); err != nil {
		wc.send(ErrorMsg{Code: CodeWorker, Msg: "coordinator entropy failure"})
		return
	}
	// The ack travels unauthenticated — the key is derived *from* its
	// challenge — and the key must be in place before the connection is
	// published for senders or reads.
	if err := wc.send(HelloAck{Version: version, Worker: slot.id, K: c.k, Resume: slot.resume, Challenge: challenge}); err != nil {
		c.detach(slot, wc)
		return
	}
	wc.key = deriveKey(c.cfg.Secret, challenge)
	replay := c.publish(slot, wc, hello.Name)
	for _, msg := range replay {
		if err := wc.send(msg); err != nil {
			c.detach(slot, wc)
			return
		}
	}
	conn.SetReadDeadline(time.Time{})
	c.readLoop(slot, wc)
}

// attach resolves which slot a hello gets: its previous slot when the
// resume token matches (reconnect), otherwise the first never-used
// slot, otherwise the first dead slot (a replacement worker inherits
// the dead one's pending assignments). nil means every slot is live —
// cluster full.
func (c *Coordinator) attach(hello Hello) *workerSlot {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(hello.Resume) == 16 {
		for _, s := range c.slots {
			if s.used && [16]byte(hello.Resume) == s.resume {
				return s
			}
		}
	}
	for _, s := range c.slots {
		if !s.used {
			s.used = true
			if _, err := rand.Read(s.resume[:]); err != nil {
				s.used = false
				return nil
			}
			return s
		}
	}
	for _, s := range c.slots {
		if s.conn == nil {
			return s
		}
	}
	return nil
}

// publish installs the connection on its slot (superseding any stale
// one — latest hello wins, because the old TCP connection may be a
// half-open corpse) and returns the undelivered assignments routed to
// the slot, for replay.
func (c *Coordinator) publish(slot *workerSlot, wc *wireConn, name string) []Assign {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old := slot.conn; old != nil && old != wc {
		old.conn.Close()
	}
	slot.conn = wc
	slot.name = name
	var replay []Assign
	for _, a := range c.assigned {
		if a.slot == slot.id && !a.delivered {
			replay = append(replay, a.msg)
		}
	}
	return replay
}

// detach retires a connection from its slot if it still holds it. The
// slot's undelivered assignments stay in the table, deliberately
// silent: a reconnecting (or replacement) worker inherits and replays
// them, and until one does, the quorum gather's grace timer — armed by
// whatever did arrive — is what converts the silence into this round's
// missing set. Injecting loss markers here instead would slam the door
// on reconnect-with-resume: a strict gather would fail the run the
// instant a worker blinked, and a quorum gather would erase ranges a
// rejoin was about to deliver.
func (c *Coordinator) detach(slot *workerSlot, wc *wireConn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if slot.conn == wc {
		slot.conn = nil
	}
}

// inject feeds one frame to the gather side without ever blocking past
// the coordinator's lifetime.
func (c *Coordinator) inject(m core.NodeShares) {
	select {
	case c.ch <- m:
	case <-c.done:
	}
}

// readLoop drains one authenticated worker connection. An
// authentication failure is charged in-band as a delivery fault
// against the slot's earliest undelivered assignment — the work the
// tampered connection was trusted with — so quorum runs absorb it as
// that owner's erasure and strict runs refuse with the ErrAuth type
// intact (the injected frame never crosses the wire, so errors.Is
// works). Any framing violation or connection death detaches the slot.
func (c *Coordinator) readLoop(slot *workerSlot, wc *wireConn) {
	for {
		_, msg, err := wc.recv()
		if err != nil {
			if errors.Is(err, ErrAuth) {
				c.badFrames.Add(1)
				owner, round := c.faultTarget(slot)
				c.inject(core.NodeShares{
					ID: owner, From: slot.id, Round: round,
					Err: fmt.Errorf("%w (worker slot %d)", ErrAuth, slot.id),
				})
			}
			c.detach(slot, wc)
			return
		}
		switch m := msg.(type) {
		case core.NodeShares:
			if !c.claimShares(slot.id, m) {
				// A frame for no assignment of this slot: protocol
				// violation, drop the frame but keep the (authenticated)
				// connection.
				c.badFrames.Add(1)
				continue
			}
			c.inject(m)
		case ErrorMsg:
			// The worker refused its work; free the slot for a
			// replacement to inherit its assignments.
			c.detach(slot, wc)
			return
		default:
			c.badFrames.Add(1)
			c.detach(slot, wc)
			return
		}
	}
}

// faultTarget picks the (owner, round) an in-band fault frame for this
// slot should name: the slot's earliest undelivered assignment — the
// identity collectShares has not seen, so the fault is never shadowed
// by an already-delivered frame's dedup — falling back to the slot id
// at its latest round when nothing is pending.
func (c *Coordinator) faultTarget(slot *workerSlot) (owner, round int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	owner, round = slot.id, slot.lastRound
	best := -1
	for _, a := range c.assigned {
		if a.slot == slot.id && !a.delivered && (best < 0 || a.msg.Owner < best) {
			best = a.msg.Owner
			owner, round = a.msg.Owner, a.msg.Round
		}
	}
	return owner, round
}

// claimShares validates a shares frame against the assignment table:
// it must answer an assignment routed to exactly this slot, carry the
// slot as its physical sender, and be the first delivery. In-band Err
// frames claim the assignment too — a worker-side evaluation failure
// is a delivery outcome, not a hang.
func (c *Coordinator) claimShares(slotID int, m core.NodeShares) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	a := c.assigned[assignKey{owner: m.ID, round: m.Round}]
	if a == nil || a.slot != slotID || m.From != slotID {
		return false
	}
	a.delivered = true
	return true
}

// AssignRanges implements core.RemoteAssigner: wait for enough live
// workers, then round-robin each spec's manifest over them. The
// initial round (Round 0) waits for MinWorkers; repair rounds proceed
// with any single live worker — the point of a repair is that the
// original population shrank.
func (c *Coordinator) AssignRanges(ctx context.Context, specs []core.AssignSpec) error {
	need := 1
	if len(specs) > 0 && specs[0].Round == 0 {
		need = c.cfg.MinWorkers
		if need > c.k {
			need = c.k
		}
	}
	if err := c.waitForWorkers(ctx, need); err != nil {
		return err
	}
	for _, spec := range specs {
		msg := Assign{
			Job: c.cfg.Job, Owner: spec.Owner, Round: spec.Round,
			Lo: spec.Lo, Hi: spec.Hi, Width: spec.Width, Primes: spec.Primes,
			Kind: c.cfg.Kind, Instance: c.cfg.Instance,
		}
		if err := c.dispatch(msg); err != nil {
			return err
		}
	}
	return nil
}

// waitForWorkers polls the slot table until need slots are live, the
// join timeout lapses, or ctx/Close ends the wait.
func (c *Coordinator) waitForWorkers(ctx context.Context, need int) error {
	deadline := time.NewTimer(c.cfg.JoinTimeout)
	defer deadline.Stop()
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		c.mu.Lock()
		live := 0
		for _, s := range c.slots {
			if s.conn != nil {
				live++
			}
		}
		c.mu.Unlock()
		if live >= need {
			return nil
		}
		select {
		case <-tick.C:
		case <-deadline.C:
			return fmt.Errorf("ctrl: %d worker(s) joined within %v, need %d", live, c.cfg.JoinTimeout, need)
		case <-ctx.Done():
			return ctx.Err()
		case <-c.done:
			return fmt.Errorf("ctrl: coordinator closed while waiting for workers")
		}
	}
}

// dispatch routes one manifest to the next live slot (round-robin) and
// sends it, failing over to the next live slot when a send reveals a
// dead connection. It errors only when no slot is live at all.
func (c *Coordinator) dispatch(msg Assign) error {
	for {
		c.mu.Lock()
		var slot *workerSlot
		for i := 0; i < c.k; i++ {
			s := c.slots[(c.rr+i)%c.k]
			if s.conn != nil {
				slot = s
				c.rr = (c.rr + i + 1) % c.k
				break
			}
		}
		if slot == nil {
			c.mu.Unlock()
			return fmt.Errorf("ctrl: no live worker to assign node %d round %d", msg.Owner, msg.Round)
		}
		wc := slot.conn
		key := assignKey{owner: msg.Owner, round: msg.Round}
		if a := c.assigned[key]; a != nil {
			a.slot = slot.id // re-route (send failover)
		} else {
			c.assigned[key] = &assignment{slot: slot.id, msg: msg}
		}
		if msg.Round > slot.lastRound {
			slot.lastRound = msg.Round
		}
		c.mu.Unlock()
		if err := wc.send(msg); err != nil {
			c.detach(slot, wc)
			continue
		}
		return nil
	}
}

// Send implements core.Transport. A coordinator's engine never sends
// locally — evaluation happens on workers — so a call here means it
// was constructed for a run that could not use it (and names why).
func (c *Coordinator) Send(ctx context.Context, m core.NodeShares) error {
	return fmt.Errorf("ctrl: coordinator transport evaluates remotely; local Send is not supported")
}

// Gather implements core.Transport (strict mode): k raw frames,
// counting in-band faults — collectShares then surfaces the first
// fault (an ErrAuth-wrapped one included) as a typed refusal. Like the
// TCP transport's strict mode, a worker that dies silently *with no
// outstanding assignment* cannot be distinguished from a slow one, so
// strict remote runs lean on ctx for total-silence deadlines; quorum
// mode is the fault-tolerant path.
func (c *Coordinator) Gather(ctx context.Context, k int) ([]core.NodeShares, error) {
	out := make([]core.NodeShares, 0, k)
	for len(out) < k {
		select {
		case m := <-c.ch:
			out = append(out, m)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return out, nil
}

// GatherQuorum implements core.QuorumGatherer with exactly the
// engine's shared gather loop. GatherSpec.SendsDone is nil in remote
// mode; injected fault frames count as arrivals, so grace timing still
// converges on a dying cluster.
func (c *Coordinator) GatherQuorum(ctx context.Context, spec core.GatherSpec) ([]core.NodeShares, error) {
	return core.GatherShares(ctx, c.ch, spec)
}

// Close ends the coordinator's world: stop admitting, best-effort Done
// to live workers so daemons exit cleanly, tear down connections, and
// wait for every goroutine. Idempotent; the engine calls it through
// its end-of-run transport teardown.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() {
		close(c.done)
		c.ln.Close()
		c.mu.Lock()
		conns := make([]*wireConn, 0, c.k)
		for _, s := range c.slots {
			if s.conn != nil {
				conns = append(conns, s.conn)
				s.conn = nil
			}
		}
		c.mu.Unlock()
		for _, wc := range conns {
			wc.send(Done{Job: c.cfg.Job}) // best-effort, bounded by sendTimeout
			wc.conn.Close()
		}
		c.wg.Wait()
	})
}

// NewCoordinatorFactory adapts a coordinator to the engine's
// TransportFactory seam. Construction failures degrade to
// core.FailedTransport, which lacks the RemoteAssigner capability —
// the run then fails on first use with the root cause instead of
// hanging a remote gather.
func NewCoordinatorFactory(cfg Config) core.TransportFactory {
	return func(k int) core.Transport {
		c, err := NewCoordinator(k, cfg)
		if err != nil {
			return core.FailedTransport(err)
		}
		return c
	}
}
