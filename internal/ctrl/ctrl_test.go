package ctrl

// End-to-end tests of the control protocol against the real engine:
// in-process goroutine "daemons" (the multi-OS-process variant lives
// in examples/multiproc and CI) driving coordinator transports through
// core.Run, plus hand-rolled fake workers for the protocol edges a
// well-behaved daemon never exercises — reconnect-with-resume and
// authentication tampering.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"camelot/internal/core"
)

// polyProblem is a minimal deterministic workload: one proof
// polynomial P(x) = Σ_{i=0..d} ((salt+i) mod q) x^i. Registered under
// kind "ctrl-poly" with instance encoding "d=N salt=S".
type polyProblem struct {
	d    int
	salt uint64
}

func (p polyProblem) Name() string       { return "ctrl-poly" }
func (p polyProblem) Width() int         { return 1 }
func (p polyProblem) Degree() int        { return p.d }
func (p polyProblem) MinModulus() uint64 { return 1 << 10 }
func (p polyProblem) NumPrimes() int     { return 2 }
func (p polyProblem) Evaluate(q, x uint64) ([]uint64, error) {
	var acc uint64
	for i := p.d; i >= 0; i-- {
		acc = (acc*x + (p.salt+uint64(i))%q) % q
	}
	return []uint64{acc}, nil
}

func parsePolyInstance(instance []byte) (core.Problem, error) {
	var p polyProblem
	if _, err := fmt.Sscanf(string(instance), "d=%d salt=%d", &p.d, &p.salt); err != nil {
		return nil, fmt.Errorf("ctrl-poly instance %q: %w", instance, err)
	}
	if p.d < 0 || p.d > 1<<12 {
		return nil, fmt.Errorf("ctrl-poly instance %q: bad degree", instance)
	}
	return p, nil
}

func init() {
	RegisterProblem("ctrl-poly", parsePolyInstance)
}

func testCtx(t *testing.T) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// runBus is the in-process reference run every remote test compares
// against, bit for bit.
func runBus(t *testing.T, p core.Problem, opts core.Options) []byte {
	t.Helper()
	proof, _, err := core.Run(testCtx(t), p, opts)
	if err != nil {
		t.Fatalf("bus run: %v", err)
	}
	raw, err := proof.MarshalBinary()
	if err != nil {
		t.Fatalf("bus proof marshal: %v", err)
	}
	return raw
}

func marshal(t *testing.T, proof *core.Proof) []byte {
	t.Helper()
	raw, err := proof.MarshalBinary()
	if err != nil {
		t.Fatalf("proof marshal: %v", err)
	}
	return raw
}

// TestRemoteRunBitIdentity: a coordinator with two worker goroutines
// (fewer workers than logical nodes, so each worker serves multiple
// assignments) produces a proof bit-identical to the in-process bus
// run, with frame authentication on.
func TestRemoteRunBitIdentity(t *testing.T) {
	p := polyProblem{d: 6, salt: 11}
	instance := []byte("d=6 salt=11")
	secret := []byte("cluster-secret")
	busRaw := runBus(t, p, core.Options{Nodes: 4, Seed: 42})

	co, err := NewCoordinator(4, Config{
		Kind: "ctrl-poly", Instance: instance, Secret: secret,
		MinWorkers: 2, JoinTimeout: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	var wg sync.WaitGroup
	werrs := make([]error, 2)
	for i := range werrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			werrs[i] = RunWorker(wctx, WorkerConfig{
				Join: co.Addr(), Secret: secret, Name: fmt.Sprintf("w%d", i),
			})
		}(i)
	}
	proof, report, err := core.Run(testCtx(t), p, core.Options{
		Nodes: 4, Seed: 42,
		NewTransport: func(k int) core.Transport { return co },
	})
	if err != nil {
		t.Fatalf("remote run: %v", err)
	}
	wg.Wait()
	for i, werr := range werrs {
		if werr != nil {
			t.Errorf("worker %d: %v", i, werr)
		}
	}
	if !report.Verified {
		t.Error("remote proof did not verify")
	}
	if got := marshal(t, proof); !bytes.Equal(got, busRaw) {
		t.Error("remote proof differs from bus proof")
	}
}

// TestRemoteRepairHealsKilledWorker: three workers, one rigged to die
// the moment round 0 assigns it node 1; the missing range must come
// back through a repair-round re-assignment to a survivor, and the
// healed proof must still be bit-identical.
func TestRemoteRepairHealsKilledWorker(t *testing.T) {
	p := polyProblem{d: 8, salt: 3}
	instance := []byte("d=8 salt=3")
	busRaw := runBus(t, p, core.Options{Nodes: 3, Seed: 7})

	co, err := NewCoordinator(3, Config{
		Kind: "ctrl-poly", Instance: instance,
		MinWorkers: 3, JoinTimeout: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	var wg sync.WaitGroup
	werrs := make([]error, 3)
	for i := range werrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Every worker carries the same kill switch: which slot
			// draws node 1 is a join-order race, and only that one dies.
			werrs[i] = RunWorker(wctx, WorkerConfig{
				Join: co.Addr(), Name: fmt.Sprintf("w%d", i), FailOwner: 1,
			})
		}(i)
	}
	proof, report, err := core.Run(testCtx(t), p, core.Options{
		Nodes: 3, Seed: 7,
		MaxErasures: 1, GatherGrace: 750 * time.Millisecond, MaxRepairRounds: 2,
		NewTransport: func(k int) core.Transport { return co },
	})
	if err != nil {
		t.Fatalf("remote run with churn: %v", err)
	}
	wg.Wait()
	injected := 0
	for i, werr := range werrs {
		if errors.Is(werr, ErrFailInjected) {
			injected++
		} else if werr != nil {
			t.Errorf("worker %d: %v", i, werr)
		}
	}
	if injected != 1 {
		t.Errorf("%d workers died of the injected fault, want exactly 1", injected)
	}
	if report.RepairRounds < 1 {
		t.Errorf("RepairRounds = %d, want >= 1", report.RepairRounds)
	}
	if len(report.RepairedNodes) != 1 || report.RepairedNodes[0] != 1 {
		t.Errorf("RepairedNodes = %v, want [1]", report.RepairedNodes)
	}
	if len(report.MissingNodes) != 0 {
		t.Errorf("MissingNodes = %v after repair, want none", report.MissingNodes)
	}
	if got := marshal(t, proof); !bytes.Equal(got, busRaw) {
		t.Error("healed proof differs from bus proof")
	}
}

// fakeWorker hand-drives the wire protocol, for the edges a real
// daemon hides: partial delivery, abrupt drops, resume handshakes, and
// deliberately bad MACs.
type fakeWorker struct {
	t    *testing.T
	conn net.Conn
	wc   *wireConn
	ack  HelloAck
}

func dialFake(t *testing.T, addr string, secret, resume []byte) *fakeWorker {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatalf("fake worker dial: %v", err)
	}
	wc := newWireConn(conn, 64<<20)
	if err := wc.send(Hello{Version: ProtocolVersion, Resume: resume, Name: "fake"}); err != nil {
		t.Fatalf("fake worker hello: %v", err)
	}
	_, msg, err := wc.recv()
	if err != nil {
		t.Fatalf("fake worker helloAck: %v", err)
	}
	ack, ok := msg.(HelloAck)
	if !ok {
		t.Fatalf("fake worker: expected HelloAck, got %T: %+v", msg, msg)
	}
	wc.key = deriveKey(secret, ack.Challenge)
	return &fakeWorker{t: t, conn: conn, wc: wc, ack: ack}
}

func (f *fakeWorker) recvAssign() Assign {
	f.t.Helper()
	f.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	_, msg, err := f.wc.recv()
	if err != nil {
		f.t.Fatalf("fake worker recv assign: %v", err)
	}
	a, ok := msg.(Assign)
	if !ok {
		f.t.Fatalf("fake worker: expected Assign, got %T: %+v", msg, msg)
	}
	return a
}

func (f *fakeWorker) sendShares(ctx context.Context, p core.Problem, a Assign) {
	f.t.Helper()
	shares, err := core.EvaluateShares(ctx, p, a.Primes, a.Owner, f.ack.Worker, a.Round, a.Lo, a.Hi)
	if err != nil {
		f.t.Fatalf("fake worker evaluate: %v", err)
	}
	if err := f.wc.send(shares); err != nil {
		f.t.Fatalf("fake worker send shares: %v", err)
	}
}

// waitDelivered polls the coordinator's assignment table until the
// round-0 assignment for owner is marked delivered.
func waitDelivered(t *testing.T, co *Coordinator, owner int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		co.mu.Lock()
		a := co.assigned[assignKey{owner: owner, round: 0}]
		done := a != nil && a.delivered
		co.mu.Unlock()
		if done {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("owner %d shares never credited as delivered", owner)
}

// TestRemoteReconnectResume: a worker delivers half its work, drops,
// and rejoins with its resume token; the coordinator must replay
// exactly the undelivered assignment and the strict run must complete
// as if nothing happened.
func TestRemoteReconnectResume(t *testing.T) {
	ctx := testCtx(t)
	p := polyProblem{d: 7, salt: 23}
	instance := []byte("d=7 salt=23")
	secret := []byte("resume-secret")
	busRaw := runBus(t, p, core.Options{Nodes: 2, Seed: 5})

	co, err := NewCoordinator(2, Config{
		Kind: "ctrl-poly", Instance: instance, Secret: secret,
		MinWorkers: 1, JoinTimeout: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		proof *core.Proof
		err   error
	}
	runDone := make(chan result, 1)
	go func() {
		proof, _, err := core.Run(ctx, p, core.Options{
			Nodes: 2, Seed: 5,
			NewTransport: func(k int) core.Transport { return co },
		})
		runDone <- result{proof, err}
	}()

	fw := dialFake(t, co.Addr(), secret, nil)
	a0, a1 := fw.recvAssign(), fw.recvAssign()
	if a0.Owner != 0 || a1.Owner != 1 {
		t.Fatalf("assignments owners (%d, %d), want (0, 1)", a0.Owner, a1.Owner)
	}
	if a0.Kind != "ctrl-poly" || !bytes.Equal(a0.Instance, instance) {
		t.Fatalf("assignment manifest (%q, %q) does not match workload", a0.Kind, a0.Instance)
	}
	fw.sendShares(ctx, p, a0)
	// The drop must happen after the coordinator has credited owner 0's
	// delivery, or the replay set races to include both owners (white-box
	// peek: the test lives in package ctrl).
	waitDelivered(t, co, 0)
	resume := fw.ack.Resume
	fw.conn.Close() // abrupt drop, owner 1 undelivered

	fw2 := dialFake(t, co.Addr(), secret, resume[:])
	if fw2.ack.Worker != fw.ack.Worker {
		t.Fatalf("resume landed on slot %d, want original slot %d", fw2.ack.Worker, fw.ack.Worker)
	}
	replayed := fw2.recvAssign()
	if replayed.Owner != 1 || replayed.Round != 0 {
		t.Fatalf("replayed assignment (owner %d, round %d), want (1, 0)", replayed.Owner, replayed.Round)
	}
	fw2.sendShares(ctx, p, replayed)

	res := <-runDone
	if res.err != nil {
		t.Fatalf("strict run across reconnect: %v", res.err)
	}
	if got := marshal(t, res.proof); !bytes.Equal(got, busRaw) {
		t.Error("resumed proof differs from bus proof")
	}
	fw2.conn.Close()
}

// sendTampered writes a shares-shaped frame whose MAC is garbage,
// bypassing wireConn's honest MAC computation.
func (f *fakeWorker) sendTampered(seq uint64) {
	f.t.Helper()
	body, err := core.EncodeNodeShares(core.NodeShares{ID: 0, From: f.ack.Worker, Round: 0, Lo: 0, Hi: 0})
	if err != nil {
		f.t.Fatal(err)
	}
	payload := EncodeControl(Frame{Tag: TagShares, Seq: seq, MAC: make([]byte, macSize), Body: body})
	if err := core.WriteFrame(f.conn, payload); err != nil {
		f.t.Fatalf("fake worker write tampered frame: %v", err)
	}
}

// TestAuthTamperStrict: in strict mode a tampered frame is a typed
// refusal — the run fails and errors.Is sees ErrAuth.
func TestAuthTamperStrict(t *testing.T) {
	ctx := testCtx(t)
	p := polyProblem{d: 5, salt: 9}
	secret := []byte("tamper-secret")
	co, err := NewCoordinator(2, Config{
		Kind: "ctrl-poly", Instance: []byte("d=5 salt=9"), Secret: secret,
		MinWorkers: 1, JoinTimeout: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	runDone := make(chan error, 1)
	go func() {
		_, _, err := core.Run(ctx, p, core.Options{
			Nodes: 2, Seed: 1,
			NewTransport: func(k int) core.Transport { return co },
		})
		runDone <- err
	}()
	fw := dialFake(t, co.Addr(), secret, nil)
	a0, _ := fw.recvAssign(), fw.recvAssign()
	fw.sendShares(ctx, p, a0) // seq 1: one honest delivery
	fw.sendTampered(2)        // then a forged frame
	err = <-runDone
	if err == nil {
		t.Fatal("strict run accepted a tampered frame")
	}
	if !errors.Is(err, ErrAuth) {
		t.Fatalf("strict refusal not typed ErrAuth: %v", err)
	}
	if co.BadFrames() == 0 {
		t.Error("tampered frame not counted")
	}
}

// TestAuthTamperQuorum: the same tampering under MaxErasures is the
// owner's delivery fault — absorbed as an erasure, run verifies, proof
// bit-identical.
func TestAuthTamperQuorum(t *testing.T) {
	ctx := testCtx(t)
	p := polyProblem{d: 5, salt: 9}
	instance := []byte("d=5 salt=9")
	secret := []byte("tamper-secret")
	// Losing one of two nodes erases half the code length e = d+1+2f, so
	// erasure-only decoding needs 2f >= d+1: f=3 for d=5.
	busRaw := runBus(t, p, core.Options{Nodes: 2, Seed: 1, FaultTolerance: 3})

	co, err := NewCoordinator(2, Config{
		Kind: "ctrl-poly", Instance: instance, Secret: secret,
		MinWorkers: 1, JoinTimeout: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		proof  *core.Proof
		report *core.Report
		err    error
	}
	runDone := make(chan result, 1)
	go func() {
		proof, report, err := core.Run(ctx, p, core.Options{
			Nodes: 2, Seed: 1, FaultTolerance: 3,
			MaxErasures: 1, GatherGrace: 500 * time.Millisecond,
			NewTransport: func(k int) core.Transport { return co },
		})
		runDone <- result{proof, report, err}
	}()
	fw := dialFake(t, co.Addr(), secret, nil)
	a0, _ := fw.recvAssign(), fw.recvAssign()
	fw.sendShares(ctx, p, a0) // owner 0 delivered honestly
	fw.sendTampered(2)        // owner 1's delivery is a forgery
	res := <-runDone
	if res.err != nil {
		t.Fatalf("quorum run should absorb tampering as a delivery fault: %v", res.err)
	}
	if len(res.report.MissingNodes) != 1 || res.report.MissingNodes[0] != 1 {
		t.Errorf("MissingNodes = %v, want [1]", res.report.MissingNodes)
	}
	if got := marshal(t, res.proof); !bytes.Equal(got, busRaw) {
		t.Error("quorum proof differs from bus proof")
	}
}
