package ctrl

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"camelot/internal/core"
)

// sampleMessages is one representative value per control message kind,
// used by the round-trip test and as the fuzz seed corpus.
func sampleMessages() []any {
	return []any{
		Hello{Version: 1, Name: "worker-a", Caps: []string{"batch", "simd"}},
		Hello{Version: 3, Resume: bytes.Repeat([]byte{0xAB}, 16)},
		HelloAck{Version: 1, Worker: 2, K: 5,
			Resume:    [16]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16},
			Challenge: [16]byte{0xFF, 0xEE, 1}},
		Assign{Job: 1, Owner: 3, Round: 2, Lo: 10, Hi: 20, Width: 2,
			Primes: []uint64{97, 193}, Kind: "triangles", Instance: []byte("n=24 p=0.3 seed=7")},
		Assign{Job: 7, Owner: 0, Round: 0, Lo: 0, Hi: 1, Width: 1, Primes: []uint64{17}, Kind: "k"},
		core.NodeShares{ID: 1, From: 2, Round: 1, Lo: 4, Hi: 6, Elapsed: 5 * time.Millisecond,
			Vals: [][][]uint64{{{7, 8}, {9, 10}}}},
		core.NodeShares{ID: 0, From: 0, Round: 0, Lo: 0, Hi: 3,
			Err: &core.RemoteError{Msg: "evaluation exploded"}},
		Done{Job: 1},
		ErrorMsg{Code: CodeClusterFul, Msg: "all 4 worker slots are live"},
	}
}

// TestControlRoundTrip pins decode∘encode identity for every message
// kind, authenticated and not, and that the envelope metadata (tag,
// seq, MAC length) survives.
func TestControlRoundTrip(t *testing.T) {
	keys := [][]byte{nil, deriveKey([]byte("secret"), [16]byte{42})}
	for _, key := range keys {
		for i, msg := range sampleMessages() {
			seq := uint64(i) * 1000003
			payload, err := EncodeMessage(seq, key, msg)
			if err != nil {
				t.Fatalf("key=%v msg %d (%T): encode: %v", key != nil, i, msg, err)
			}
			f, got, err := DecodeControl(payload)
			if err != nil {
				t.Fatalf("key=%v msg %d (%T): decode: %v", key != nil, i, msg, err)
			}
			if f.Seq != seq {
				t.Errorf("msg %d: seq %d, want %d", i, f.Seq, seq)
			}
			if (key != nil) != (len(f.MAC) == macSize) {
				t.Errorf("msg %d: mac length %d under keyed=%v", i, len(f.MAC), key != nil)
			}
			if err := VerifyMAC(key, f); err != nil {
				t.Errorf("msg %d: verify: %v", i, err)
			}
			assertMessageEqual(t, i, msg, got)
			// Canonical: re-encoding the decoded value reproduces the bytes.
			re, err := EncodeMessage(seq, key, got)
			if err != nil {
				t.Fatalf("msg %d: re-encode: %v", i, err)
			}
			if !bytes.Equal(payload, re) {
				t.Errorf("msg %d (%T): re-encoded bytes differ", i, msg)
			}
		}
	}
}

func assertMessageEqual(t *testing.T, i int, want, got any) {
	t.Helper()
	switch w := want.(type) {
	case core.NodeShares:
		g, ok := got.(core.NodeShares)
		if !ok {
			t.Fatalf("msg %d: decoded %T, want NodeShares", i, got)
		}
		// The in-band error comes back as *core.RemoteError; compare text.
		if (w.Err == nil) != (g.Err == nil) || (w.Err != nil && w.Err.Error() != g.Err.Error()) {
			t.Errorf("msg %d: err %v vs %v", i, g.Err, w.Err)
		}
		w.Err, g.Err = nil, nil
		wb, _ := core.EncodeNodeShares(w)
		gb, _ := core.EncodeNodeShares(g)
		if !bytes.Equal(wb, gb) {
			t.Errorf("msg %d: NodeShares mismatch", i)
		}
	default:
		// The remaining kinds are plain comparable-ish structs with
		// slices; canonical re-encode equality (checked by the caller)
		// plus a type check suffices.
		if wt, gt := typeName(want), typeName(got); wt != gt {
			t.Errorf("msg %d: decoded %s, want %s", i, gt, wt)
		}
	}
}

func typeName(v any) string {
	switch v.(type) {
	case Hello:
		return "Hello"
	case HelloAck:
		return "HelloAck"
	case Assign:
		return "Assign"
	case Done:
		return "Done"
	case ErrorMsg:
		return "ErrorMsg"
	case core.NodeShares:
		return "NodeShares"
	default:
		return "?"
	}
}

// FuzzDecodeControl mirrors FuzzDecodeNodeShares for the control
// envelope: any input either decodes canonically (re-encoding the
// decoded frame and message reproduces the input byte for byte) or is
// rejected with the typed frame errors — never a panic, never an
// allocation-driven blowup.
func FuzzDecodeControl(f *testing.F) {
	for i, msg := range sampleMessages() {
		for _, key := range [][]byte{nil, deriveKey([]byte("s"), [16]byte{byte(i)})} {
			if payload, err := EncodeMessage(uint64(i), key, msg); err == nil {
				f.Add(payload)
			}
		}
	}
	f.Add([]byte{'C', 'M', 'C', 1})
	f.Add([]byte{'C', 'M', 'S', 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, msg, err := DecodeControl(data)
		if err != nil {
			if !errors.Is(err, ErrBadFrame) && !errors.Is(err, core.ErrBadFrame) {
				t.Fatalf("rejection not typed: %v", err)
			}
			return
		}
		body, err := reencodeBody(msg)
		if err != nil {
			t.Fatalf("decoded message does not re-encode: %v", err)
		}
		re := EncodeControl(Frame{Tag: fr.Tag, Seq: fr.Seq, MAC: fr.MAC, Body: body})
		if !bytes.Equal(re, data) {
			t.Fatalf("decode not canonical:\n in %x\nout %x", data, re)
		}
	})
}

func reencodeBody(msg any) ([]byte, error) {
	_, body, err := encodeBody(msg)
	return body, err
}

// TestHMACTamper flips every byte of a valid authenticated shares
// frame and asserts each mutation is caught as a typed failure —
// ErrAuth from verification or a typed decode rejection — and never a
// panic. This is the delivery-fault guarantee the coordinator's read
// loop builds on.
func TestHMACTamper(t *testing.T) {
	key := deriveKey([]byte("cluster secret"), [16]byte{9, 9, 9})
	shares := core.NodeShares{ID: 1, From: 1, Round: 0, Lo: 0, Hi: 2,
		Vals: [][][]uint64{{{11, 22}}}}
	payload, err := EncodeMessage(7, key, shares)
	if err != nil {
		t.Fatal(err)
	}
	if f, _, err := DecodeControl(payload); err != nil || VerifyMAC(key, f) != nil {
		t.Fatalf("pristine frame must pass: decode=%v", err)
	}
	for i := range payload {
		mut := append([]byte(nil), payload...)
		mut[i] ^= 0xFF
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("byte %d: decode panicked: %v", i, r)
				}
			}()
			f, _, err := DecodeControl(mut)
			if err != nil {
				if !errors.Is(err, ErrBadFrame) && !errors.Is(err, core.ErrBadFrame) {
					t.Errorf("byte %d: rejection not typed: %v", i, err)
				}
				return
			}
			if err := VerifyMAC(key, f); err == nil {
				t.Errorf("byte %d: tampered frame passed authentication", i)
			} else if !errors.Is(err, ErrAuth) {
				t.Errorf("byte %d: auth rejection not typed: %v", i, err)
			}
		}()
	}
}

// TestVerifyMACModes pins the two authentication modes: nil key admits
// anything (loopback mode), a key demands a present, correct MAC.
func TestVerifyMACModes(t *testing.T) {
	body := []byte("body")
	f := Frame{Tag: TagDone, Seq: 3, Body: body}
	if err := VerifyMAC(nil, f); err != nil {
		t.Fatalf("nil key must admit unauthenticated frames: %v", err)
	}
	key := deriveKey([]byte("k"), [16]byte{1})
	if err := VerifyMAC(key, f); !errors.Is(err, ErrAuth) {
		t.Fatalf("missing MAC under a key must be ErrAuth, got %v", err)
	}
	f.MAC = computeMAC(key, f.Tag, f.Seq, body)
	if err := VerifyMAC(key, f); err != nil {
		t.Fatalf("correct MAC rejected: %v", err)
	}
	// A frame MAC'd for seq 3 replayed as seq 4 must fail: seq is bound
	// into the MAC.
	f.Seq = 4
	if err := VerifyMAC(key, f); !errors.Is(err, ErrAuth) {
		t.Fatalf("replayed seq must be ErrAuth, got %v", err)
	}
}
