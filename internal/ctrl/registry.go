package ctrl

// The problem registry maps an Assign's (kind, instance) pair to a
// runnable core.Problem. A worker process has no closure over the
// coordinator's problem value — it must rebuild one from the wire
// encoding, and the rebuild must be deterministic so its evaluations
// are bit-identical to the coordinator's in-process run. The facade
// package registers constructors for every workload it can describe
// textually (seeded random instances included); tests register their
// own kinds.

import (
	"fmt"
	"sync"

	"camelot/internal/core"
)

var (
	regMu    sync.RWMutex
	registry = map[string]func(instance []byte) (core.Problem, error){}
)

// RegisterProblem installs the constructor for one problem kind.
// Registering the same kind twice panics — two constructors for one
// wire name is a programming error that would silently desynchronize
// coordinator and worker.
func RegisterProblem(kind string, build func(instance []byte) (core.Problem, error)) {
	if kind == "" || build == nil {
		panic("ctrl: RegisterProblem with empty kind or nil constructor")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[kind]; dup {
		panic(fmt.Sprintf("ctrl: RegisterProblem called twice for kind %q", kind))
	}
	registry[kind] = build
}

// buildProblem resolves an assignment's problem. Unknown kinds are a
// deployment skew (worker binary missing a registration), reported as
// such.
func buildProblem(kind string, instance []byte) (core.Problem, error) {
	regMu.RLock()
	build := registry[kind]
	regMu.RUnlock()
	if build == nil {
		return nil, fmt.Errorf("ctrl: unknown problem kind %q (worker build missing its registration?)", kind)
	}
	return build(instance)
}
