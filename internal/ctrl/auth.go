package ctrl

// Per-connection frame authentication. The deployment model is the
// paper's: workers are untrusted for *content* (a corrupted share
// costs its owner a suspect mark or an erasure, never soundness), but
// a real cluster still needs *identity* — without it, anyone who can
// reach the coordinator's port can occupy worker slots or spray frames
// into a run. A shared secret does that much: the coordinator sends a
// random 16-byte challenge in helloAck, both sides derive
//
//	sessionKey = HMAC-SHA256(secret, challenge)
//
// and every subsequent frame carries HMAC-SHA256(sessionKey,
// magic‖tag‖seq‖body). Binding the sequence number into the MAC makes
// replay a verification failure, and deriving a per-connection key
// keeps MACs from one connection meaningless on another (a reconnect
// gets a fresh challenge). hello and helloAck necessarily travel
// unauthenticated — the key does not exist yet — so a
// man-in-the-middle can corrupt the handshake; that only denies
// service, which raw TCP already allows, and never forges an
// authenticated frame. An empty secret disables authentication
// entirely (loopback development mode): keys are nil, frames carry no
// MAC, and verification accepts them.

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrAuth is the typed authentication failure: a missing, truncated,
// or wrong MAC on a connection that negotiated a key. In quorum mode
// the coordinator surfaces it as the slot's delivery fault; in strict
// mode it fails the run as a typed refusal (errors.Is(err, ErrAuth)).
var ErrAuth = errors.New("ctrl: frame authentication failed")

// deriveKey turns the shared secret and a connection's challenge into
// its session key; nil secret (or empty) means authentication is off
// and the key is nil.
func deriveKey(secret []byte, challenge [16]byte) []byte {
	if len(secret) == 0 {
		return nil
	}
	mac := hmac.New(sha256.New, secret)
	mac.Write(challenge[:])
	return mac.Sum(nil)
}

// computeMAC authenticates one frame's identity-bearing bytes. A nil
// key returns nil — the unauthenticated mode's empty MAC.
func computeMAC(key []byte, tag byte, seq uint64, body []byte) []byte {
	if len(key) == 0 {
		return nil
	}
	mac := hmac.New(sha256.New, key)
	mac.Write(ctrlMagic[:])
	mac.Write([]byte{tag})
	var seqLE [8]byte
	binary.LittleEndian.PutUint64(seqLE[:], seq)
	mac.Write(seqLE[:])
	mac.Write(body)
	return mac.Sum(nil)
}

// VerifyMAC checks a decoded frame's authentication tag against key in
// constant time. With a nil key every frame passes (authentication
// off); with a key, a frame must carry a valid 32-byte MAC or the
// result wraps ErrAuth. Exported so the tamper tests exercise exactly
// the verification the connections run.
func VerifyMAC(key []byte, f Frame) error {
	if len(key) == 0 {
		return nil
	}
	if len(f.MAC) != macSize {
		return fmt.Errorf("%w: frame carries no mac on an authenticated connection", ErrAuth)
	}
	if !hmac.Equal(f.MAC, computeMAC(key, f.Tag, f.Seq, f.Body)) {
		return fmt.Errorf("%w: bad mac on tag %d seq %d", ErrAuth, f.Tag, f.Seq)
	}
	return nil
}
