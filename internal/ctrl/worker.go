package ctrl

// The worker daemon: dial the coordinator, handshake into a slot,
// evaluate whatever ranges arrive, stream the frames back, repeat
// until told Done. A worker holds no run state beyond its problem
// cache and its resume token — everything it needs to produce
// bit-identical shares travels in the Assign manifest, and evaluation
// goes through core.EvaluateShares, the same range evaluator the
// in-process engine uses. A dropped connection is retried with
// exponential backoff; presenting the resume token reattaches the same
// slot, and the coordinator replays any assignment whose shares never
// landed, so a mid-run blip costs latency, not the run.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"camelot/internal/core"
)

// ErrFailInjected is returned by a worker whose WorkerConfig.FailOwner
// fault was triggered — the churn tests' and examples' way of killing
// a worker at a deterministic point in the protocol.
var ErrFailInjected = errors.New("ctrl: injected worker failure")

// WorkerConfig parameterizes RunWorker.
type WorkerConfig struct {
	// Join is the coordinator's TCP address (required).
	Join string
	// Secret must match the coordinator's; empty means the cluster runs
	// unauthenticated.
	Secret []byte
	// Name is a display name carried in hello (defaults to the local
	// address).
	Name string
	// MaxFrameBytes caps accepted control frames (default 64 MiB).
	MaxFrameBytes int
	// DialTimeout bounds each dial attempt (default 2s); RetryBackoff
	// is the initial reconnect delay, doubling to 2s (default 100ms).
	DialTimeout  time.Duration
	RetryBackoff time.Duration
	// MaxAttempts bounds *consecutive failed* connection attempts
	// before the daemon gives up (default 5); any successful handshake
	// resets the count.
	MaxAttempts int
	// FailOwner > 0 makes the worker die (ErrFailInjected) the moment a
	// round-0 assignment names that logical node — a deterministic
	// fault-injection knob for churn tests and the multiproc example.
	// Restricting it to round 0 means every worker in a cluster can
	// carry the same knob (which worker draws the fated owner is a join
	// race) and the repair round's re-assignment still succeeds on a
	// survivor. Node 0 is not injectable: 0 is the disabled value.
	FailOwner int
}

func (cfg WorkerConfig) withDefaults() WorkerConfig {
	if cfg.MaxFrameBytes <= 0 {
		cfg.MaxFrameBytes = 64 << 20
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 100 * time.Millisecond
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 5
	}
	return cfg
}

// RunWorker runs the daemon until the coordinator says Done (nil), the
// context ends, a terminal refusal arrives, or reconnection is
// exhausted.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	cfg = cfg.withDefaults()
	if cfg.Join == "" {
		return fmt.Errorf("ctrl: worker needs a coordinator address")
	}
	// planners persist across assignments, reconnects, and repair
	// rounds: each caches its problem's compiled per-prime plans, so a
	// re-assigned range re-enters evaluation without recompiling.
	planners := map[string]*core.Planner{}
	var resume []byte
	backoff := cfg.RetryBackoff
	failures := 0
	for {
		joined, terminal, err := serveWorker(ctx, cfg, &resume, planners)
		if terminal {
			return err
		}
		if joined {
			// The session worked until the connection died: fresh
			// patience for the reconnect.
			failures = 0
			backoff = cfg.RetryBackoff
		} else {
			failures++
			if failures >= cfg.MaxAttempts {
				return fmt.Errorf("ctrl: giving up on %s after %d failed attempts: %w", cfg.Join, failures, err)
			}
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return ctx.Err()
		}
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

// serveWorker runs one connection's lifetime. joined reports whether
// the handshake completed (resets the retry budget); terminal means
// RunWorker must return err instead of reconnecting.
func serveWorker(ctx context.Context, cfg WorkerConfig, resume *[]byte, planners map[string]*core.Planner) (joined, terminal bool, err error) {
	conn, err := net.DialTimeout("tcp", cfg.Join, cfg.DialTimeout)
	if err != nil {
		return false, false, err
	}
	defer conn.Close()
	// The context must be able to interrupt blocking reads.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-stop:
		}
	}()
	wc := newWireConn(conn, cfg.MaxFrameBytes)
	name := cfg.Name
	if name == "" {
		name = conn.LocalAddr().String()
	}
	if err := wc.send(Hello{Version: ProtocolVersion, Resume: *resume, Name: name}); err != nil {
		return false, false, err
	}
	_, msg, err := wc.recv()
	if err != nil {
		return false, false, err
	}
	ack, ok := msg.(HelloAck)
	if !ok {
		if em, isErr := msg.(ErrorMsg); isErr {
			return false, true, fmt.Errorf("ctrl: coordinator refused join: %s (code %d)", em.Msg, em.Code)
		}
		return false, false, fmt.Errorf("%w: expected helloAck, got tag for %T", ErrBadFrame, msg)
	}
	if ack.Version < 1 || ack.Version > ProtocolVersion {
		return false, true, fmt.Errorf("ctrl: coordinator negotiated unsupported protocol version %d", ack.Version)
	}
	*resume = append((*resume)[:0], ack.Resume[:]...)
	wc.key = deriveKey(cfg.Secret, ack.Challenge)
	joined = true
	for {
		_, msg, err := wc.recv()
		if err != nil {
			if ctx.Err() != nil {
				return joined, true, ctx.Err()
			}
			return joined, false, err
		}
		switch m := msg.(type) {
		case Assign:
			if cfg.FailOwner > 0 && m.Owner == cfg.FailOwner && m.Round == 0 {
				return joined, true, fmt.Errorf("%w: assigned node %d", ErrFailInjected, m.Owner)
			}
			if err := runAssign(ctx, wc, ack.Worker, m, planners); err != nil {
				if ctx.Err() != nil {
					return joined, true, ctx.Err()
				}
				return joined, false, err
			}
		case Done:
			return joined, true, nil
		case ErrorMsg:
			return joined, true, fmt.Errorf("ctrl: coordinator error: %s (code %d)", m.Msg, m.Code)
		default:
			return joined, false, fmt.Errorf("%w: unexpected %T mid-session", ErrBadFrame, msg)
		}
	}
}

// runAssign evaluates one manifest and streams the result back. An
// evaluation-side failure — unknown kind, geometry skew, a problem
// error — travels as an in-band Err frame: a delivery outcome the
// coordinator's fault accounting understands, not a silent hang.
func runAssign(ctx context.Context, wc *wireConn, slot int, m Assign, planners map[string]*core.Planner) error {
	shares, err := evaluateAssign(ctx, slot, m, planners)
	if err != nil {
		if ctx.Err() != nil {
			return err
		}
		msg := err.Error()
		if len(msg) > maxErrMsgLen {
			msg = msg[:maxErrMsgLen]
		}
		shares = core.NodeShares{
			ID: m.Owner, From: slot, Round: m.Round, Lo: m.Lo, Hi: m.Hi,
			Err: &core.RemoteError{Msg: msg},
		}
	}
	return wc.send(shares)
}

func evaluateAssign(ctx context.Context, slot int, m Assign, planners map[string]*core.Planner) (core.NodeShares, error) {
	cacheKey := m.Kind + "\x00" + string(m.Instance)
	pl, ok := planners[cacheKey]
	if !ok {
		p, err := buildProblem(m.Kind, m.Instance)
		if err != nil {
			return core.NodeShares{}, err
		}
		pl = core.NewPlanner(p)
		planners[cacheKey] = pl
	}
	if w := pl.Problem().Width(); w != m.Width {
		return core.NodeShares{}, fmt.Errorf("ctrl: assign width %d but problem %q has width %d (build skew?)", m.Width, m.Kind, w)
	}
	return pl.EvaluateShares(ctx, m.Primes, m.Owner, slot, m.Round, m.Lo, m.Hi)
}
