package ctrl

// wireConn is one control connection's framing discipline, shared by
// both ends: length-prefixed control envelopes (core.WriteFrame /
// ReadFrame), strictly sequential per-direction sequence numbers, and
// MAC enforcement once a session key exists. The sequence rule is
// deliberately rigid — the n-th frame a side sends carries seq n, and
// the receiver requires exact equality — because TCP already gives
// ordered delivery, so any gap or repeat means a broken or hostile
// peer, and binding seq into the MAC turns replayed frames into
// authentication failures instead of duplicate deliveries.

import (
	"fmt"
	"net"
	"sync"
	"time"

	"camelot/internal/core"
)

// sendTimeout bounds how long one control frame write may block on a
// peer that stopped reading; a worker that slow is indistinguishable
// from a dead one and is treated as such by the caller.
const sendTimeout = 5 * time.Second

type wireConn struct {
	conn     net.Conn
	maxFrame int

	// sendMu serializes writers (the coordinator assigns from multiple
	// goroutines) and guards sendSeq; key is written once at handshake
	// completion before any concurrent use, then read-only.
	sendMu  sync.Mutex
	sendSeq uint64
	recvSeq uint64
	key     []byte
}

func newWireConn(conn net.Conn, maxFrame int) *wireConn {
	return &wireConn{conn: conn, maxFrame: maxFrame}
}

// send encodes msg at this connection's next send sequence number,
// authenticated when a key has been negotiated, and writes it under a
// bounded deadline.
func (w *wireConn) send(msg any) error {
	w.sendMu.Lock()
	defer w.sendMu.Unlock()
	payload, err := EncodeMessage(w.sendSeq, w.key, msg)
	if err != nil {
		return err
	}
	w.conn.SetWriteDeadline(time.Now().Add(sendTimeout))
	if err := core.WriteFrame(w.conn, payload); err != nil {
		return err
	}
	w.sendSeq++
	return nil
}

// recv reads, decodes, and authenticates one control frame. Sequence
// violations and malformed frames wrap ErrBadFrame (or the shares
// codec's core.ErrBadFrame); MAC failures wrap ErrAuth. Past any of
// these the stream is unusable and the caller must drop the
// connection.
func (w *wireConn) recv() (Frame, any, error) {
	payload, err := core.ReadFrame(w.conn, w.maxFrame)
	if err != nil {
		return Frame{}, nil, err
	}
	f, msg, err := DecodeControl(payload)
	if err != nil {
		return f, nil, err
	}
	if err := VerifyMAC(w.key, f); err != nil {
		return f, nil, err
	}
	if f.Seq != w.recvSeq {
		return f, nil, fmt.Errorf("%w: frame seq %d, expected %d", ErrBadFrame, f.Seq, w.recvSeq)
	}
	w.recvSeq++
	return f, msg, nil
}
