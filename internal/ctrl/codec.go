// Package ctrl is the control protocol that turns the share transport
// into a multi-process deployment: a coordinator that owns a run's
// geometry and only gathers/decodes/verifies, and worker daemons that
// join it over TCP, receive point-range assignments, evaluate locally,
// and stream NodeShares frames back. The protocol is deliberately
// small — hello/helloAck negotiate a version and a worker slot, assign
// carries a range manifest, shares reuses the 'CMS'2 codec verbatim,
// and done/error end things — layered over the same length-prefixed
// framing (core.WriteFrame/ReadFrame) the share transport speaks.
//
// Every control payload travels in one envelope:
//
//	magic 'C' 'M' 'C' 1
//	tag (1 byte) | seq (uint64 LE) | macLen (1 byte: 0 or 32)
//	macLen bytes of HMAC-SHA256 | body
//
// The MAC covers magic‖tag‖seq‖body under a per-connection session key
// derived from the shared secret and the coordinator's hello challenge
// (see auth.go); hello and helloAck travel before the key exists and
// are the only messages allowed unauthenticated on a keyed connection.
// Like the share codec, decoding is canonical — DecodeControl accepts
// exactly the bytes EncodeControl produces, every claimed length is
// checked against the bytes present before allocating, and any
// violation is a typed ErrBadFrame, never a panic.
package ctrl

import (
	"encoding/binary"
	"errors"
	"fmt"

	"camelot/internal/core"
)

// ProtocolVersion is this build's control-protocol version. The
// handshake negotiates min(coordinator, worker); version 0 is refused.
const ProtocolVersion = 1

// ctrlMagic guards control frames against unrelated bytes (including
// 'CMS' share frames arriving on the wrong port); the trailing byte is
// the format version.
var ctrlMagic = [4]byte{'C', 'M', 'C', 1}

// Control message tags, one per message kind in the envelope's tag
// byte. The zero value is deliberately invalid.
const (
	TagHello    byte = 1 // worker → coordinator: join request
	TagHelloAck byte = 2 // coordinator → worker: slot grant + challenge
	TagAssign   byte = 3 // coordinator → worker: one range manifest
	TagShares   byte = 4 // worker → coordinator: 'CMS'2 payload verbatim
	TagDone     byte = 5 // coordinator → worker: run over, disconnect
	TagError    byte = 6 // either direction: typed refusal, then close
)

// ErrBadFrame is the typed rejection of a malformed control frame. It
// deliberately mirrors core.ErrBadFrame: past either, the stream
// cannot be trusted to be in sync and the connection must drop.
var ErrBadFrame = errors.New("ctrl: malformed control frame")

// Codec sanity bounds: a frame claiming more is rejected before any
// allocation. Instances are textual workload specs, so 1 MiB is
// generous; everything else is protocol-metadata sized.
const (
	maxNameLen     = 256
	maxCaps        = 64
	maxCapLen      = 128
	maxKindLen     = 256
	maxInstanceLen = 1 << 20
	maxPrimes      = 64
	maxErrMsgLen   = 1 << 16
	maxCtrlInt     = 1 << 31 // ids, rounds, geometry words stay int-exact everywhere
)

// macSize is the only authenticated-MAC length the envelope admits
// (HMAC-SHA256).
const macSize = 32

// Frame is one decoded control envelope: the tag, the connection
// sequence number, the authentication tag (nil when unauthenticated,
// exactly 32 bytes otherwise), and the still-encoded message body.
type Frame struct {
	Tag  byte
	Seq  uint64
	MAC  []byte
	Body []byte
}

// Hello is the worker's join request: its protocol version, an
// optional resume token from a previous session on this coordinator
// (empty for a fresh join, exactly 16 bytes to reattach), a display
// name, and free-form capability strings for future negotiation.
type Hello struct {
	Version int
	Resume  []byte
	Name    string
	Caps    []string
}

// HelloAck is the coordinator's grant: the negotiated version, the
// worker slot in [0, K), the run's node count K, the resume token that
// reattaches this slot after a reconnect, and the random challenge the
// session key is derived from.
type HelloAck struct {
	Version   int
	Worker    int
	K         int
	Resume    [16]byte
	Challenge [16]byte
}

// Assign is one range manifest: evaluate the proof polynomial for
// logical node Owner over points [Lo, Hi) for every prime, in a run
// identified by Job, and send the result back tagged with Round. Kind
// and Instance name the problem so a worker can rebuild it
// deterministically (see RegisterProblem) — Evaluate is deterministic
// in (q, x0), so the frames that come back are bit-identical to what
// an in-process run would have produced.
type Assign struct {
	Job      int
	Owner    int
	Round    int
	Lo, Hi   int
	Width    int
	Primes   []uint64
	Kind     string
	Instance []byte
}

// Done tells a worker the run is over and the connection is closing.
type Done struct {
	Job int
}

// ErrorMsg is a typed refusal: a stable machine code and a
// human-readable message. Either side sends it just before closing.
type ErrorMsg struct {
	Code int
	Msg  string
}

// Error codes carried by ErrorMsg.
const (
	CodeVersion    = 1 // no mutually supported protocol version
	CodeClusterFul = 2 // every worker slot is taken and live
	CodeAuth       = 3 // authentication failure
	CodeBadFrame   = 4 // peer sent a malformed frame
	CodeWorker     = 5 // worker-side evaluation failure
)

func appendUint(buf []byte, v int) []byte {
	return binary.LittleEndian.AppendUint64(buf, uint64(int64(v)))
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(b)))
	return append(buf, b...)
}

// encodeBody serializes one typed message into its body bytes,
// validating the same bounds decodeBody enforces so an encoded frame
// is always decodable (the canonical-roundtrip property the fuzzer
// pins).
func encodeBody(msg any) (tag byte, body []byte, err error) {
	switch m := msg.(type) {
	case Hello:
		if m.Version < 0 || m.Version >= maxCtrlInt {
			return 0, nil, fmt.Errorf("ctrl: encode hello: bad version %d", m.Version)
		}
		if len(m.Resume) != 0 && len(m.Resume) != 16 {
			return 0, nil, fmt.Errorf("ctrl: encode hello: resume token must be empty or 16 bytes, got %d", len(m.Resume))
		}
		if len(m.Name) > maxNameLen {
			return 0, nil, fmt.Errorf("ctrl: encode hello: name %d bytes exceeds %d", len(m.Name), maxNameLen)
		}
		if len(m.Caps) > maxCaps {
			return 0, nil, fmt.Errorf("ctrl: encode hello: %d caps exceeds %d", len(m.Caps), maxCaps)
		}
		body = appendUint(body, m.Version)
		body = appendBytes(body, m.Resume)
		body = appendBytes(body, []byte(m.Name))
		body = appendUint(body, len(m.Caps))
		for _, c := range m.Caps {
			if len(c) > maxCapLen {
				return 0, nil, fmt.Errorf("ctrl: encode hello: cap %d bytes exceeds %d", len(c), maxCapLen)
			}
			body = appendBytes(body, []byte(c))
		}
		return TagHello, body, nil
	case HelloAck:
		if m.Version < 0 || m.Version >= maxCtrlInt || m.Worker < 0 || m.Worker >= maxCtrlInt ||
			m.K < 0 || m.K >= maxCtrlInt {
			return 0, nil, fmt.Errorf("ctrl: encode helloAck: bad version=%d worker=%d k=%d", m.Version, m.Worker, m.K)
		}
		body = appendUint(body, m.Version)
		body = appendUint(body, m.Worker)
		body = appendUint(body, m.K)
		body = append(body, m.Resume[:]...)
		body = append(body, m.Challenge[:]...)
		return TagHelloAck, body, nil
	case Assign:
		if m.Job < 0 || m.Job >= maxCtrlInt || m.Owner < 0 || m.Owner >= maxCtrlInt ||
			m.Round < 0 || m.Round >= maxCtrlInt || m.Lo < 0 || m.Hi < m.Lo || m.Hi >= maxCtrlInt ||
			m.Width <= 0 || m.Width >= maxCtrlInt {
			return 0, nil, fmt.Errorf("ctrl: encode assign: bad geometry job=%d owner=%d round=%d range=[%d,%d) width=%d",
				m.Job, m.Owner, m.Round, m.Lo, m.Hi, m.Width)
		}
		if len(m.Primes) == 0 || len(m.Primes) > maxPrimes {
			return 0, nil, fmt.Errorf("ctrl: encode assign: %d primes (want 1..%d)", len(m.Primes), maxPrimes)
		}
		if len(m.Kind) == 0 || len(m.Kind) > maxKindLen {
			return 0, nil, fmt.Errorf("ctrl: encode assign: kind %d bytes (want 1..%d)", len(m.Kind), maxKindLen)
		}
		if len(m.Instance) > maxInstanceLen {
			return 0, nil, fmt.Errorf("ctrl: encode assign: instance %d bytes exceeds %d", len(m.Instance), maxInstanceLen)
		}
		body = appendUint(body, m.Job)
		body = appendUint(body, m.Owner)
		body = appendUint(body, m.Round)
		body = appendUint(body, m.Lo)
		body = appendUint(body, m.Hi)
		body = appendUint(body, m.Width)
		body = appendUint(body, len(m.Primes))
		for _, q := range m.Primes {
			body = binary.LittleEndian.AppendUint64(body, q)
		}
		body = appendBytes(body, []byte(m.Kind))
		body = appendBytes(body, m.Instance)
		return TagAssign, body, nil
	case core.NodeShares:
		payload, err := core.EncodeNodeShares(m)
		if err != nil {
			return 0, nil, err
		}
		return TagShares, payload, nil
	case Done:
		if m.Job < 0 || m.Job >= maxCtrlInt {
			return 0, nil, fmt.Errorf("ctrl: encode done: bad job %d", m.Job)
		}
		return TagDone, appendUint(nil, m.Job), nil
	case ErrorMsg:
		if m.Code < 0 || m.Code >= maxCtrlInt {
			return 0, nil, fmt.Errorf("ctrl: encode error: bad code %d", m.Code)
		}
		if len(m.Msg) > maxErrMsgLen {
			return 0, nil, fmt.Errorf("ctrl: encode error: message %d bytes exceeds %d", len(m.Msg), maxErrMsgLen)
		}
		body = appendUint(body, m.Code)
		body = appendBytes(body, []byte(m.Msg))
		return TagError, body, nil
	default:
		return 0, nil, fmt.Errorf("ctrl: encode: unsupported message type %T", msg)
	}
}

// EncodeMessage builds one complete control payload (without the
// stream length prefix; core.WriteFrame adds it): the envelope for
// msg's tag at sequence seq, authenticated under key when key is
// non-nil. msg must be one of Hello, HelloAck, Assign,
// core.NodeShares, Done, or ErrorMsg.
func EncodeMessage(seq uint64, key []byte, msg any) ([]byte, error) {
	tag, body, err := encodeBody(msg)
	if err != nil {
		return nil, err
	}
	return EncodeControl(Frame{Tag: tag, Seq: seq, MAC: computeMAC(key, tag, seq, body), Body: body}), nil
}

// EncodeControl assembles a frame's envelope bytes. The frame is
// trusted (built by EncodeMessage or a test); DecodeControl is where
// validation lives.
func EncodeControl(f Frame) []byte {
	buf := make([]byte, 0, len(ctrlMagic)+1+8+1+len(f.MAC)+len(f.Body))
	buf = append(buf, ctrlMagic[:]...)
	buf = append(buf, f.Tag)
	buf = binary.LittleEndian.AppendUint64(buf, f.Seq)
	buf = append(buf, byte(len(f.MAC)))
	buf = append(buf, f.MAC...)
	buf = append(buf, f.Body...)
	return buf
}

// DecodeControl parses one control payload into its envelope and typed
// message. Every failure wraps ErrBadFrame (a TagShares body failure
// wraps core.ErrBadFrame, which callers treat identically), no claimed
// length allocates past the bytes present, and a successful decode
// re-encodes byte-identically (pinned by FuzzDecodeControl). MAC
// verification is the caller's job — the envelope only constrains the
// length to 0 or 32.
func DecodeControl(payload []byte) (Frame, any, error) {
	var f Frame
	rest, ok := core.ConsumeMagic(payload, ctrlMagic)
	if !ok {
		return f, nil, fmt.Errorf("%w: bad magic/version", ErrBadFrame)
	}
	if len(rest) < 1+8+1 {
		return f, nil, fmt.Errorf("%w: truncated envelope", ErrBadFrame)
	}
	f.Tag = rest[0]
	f.Seq = binary.LittleEndian.Uint64(rest[1:9])
	macLen := int(rest[9])
	rest = rest[10:]
	if macLen != 0 && macLen != macSize {
		return f, nil, fmt.Errorf("%w: mac length %d (want 0 or %d)", ErrBadFrame, macLen, macSize)
	}
	if len(rest) < macLen {
		return f, nil, fmt.Errorf("%w: truncated mac", ErrBadFrame)
	}
	if macLen > 0 {
		f.MAC = rest[:macLen:macLen]
		rest = rest[macLen:]
	}
	f.Body = rest
	msg, err := decodeBody(f.Tag, rest)
	if err != nil {
		return f, nil, err
	}
	return f, msg, nil
}

// bodyReader cursors over a message body with bounds-checked reads;
// any overrun poisons it and the final done() check reports both
// overruns and trailing garbage (which would break canonical
// re-encoding).
type bodyReader struct {
	rest []byte
	bad  bool
}

func (r *bodyReader) word() uint64 {
	if r.bad || len(r.rest) < 8 {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(r.rest)
	r.rest = r.rest[8:]
	return v
}

// intWord reads a word that must fit the int range every id, round,
// and geometry value lives in.
func (r *bodyReader) intWord() int {
	v := r.word()
	if v >= maxCtrlInt {
		r.bad = true
		return 0
	}
	return int(v)
}

// bytes reads a length-prefixed byte string of at most max bytes.
func (r *bodyReader) bytes(max int) []byte {
	n := r.word()
	if r.bad || n > uint64(max) || n > uint64(len(r.rest)) {
		r.bad = true
		return nil
	}
	b := r.rest[:n:n]
	r.rest = r.rest[n:]
	return b
}

// raw reads exactly n unprefixed bytes.
func (r *bodyReader) raw(n int) []byte {
	if r.bad || len(r.rest) < n {
		r.bad = true
		return nil
	}
	b := r.rest[:n:n]
	r.rest = r.rest[n:]
	return b
}

func (r *bodyReader) done() bool { return !r.bad && len(r.rest) == 0 }

func decodeBody(tag byte, body []byte) (any, error) {
	r := &bodyReader{rest: body}
	switch tag {
	case TagHello:
		var m Hello
		m.Version = r.intWord()
		resume := r.bytes(16)
		if len(resume) != 0 && len(resume) != 16 {
			return nil, fmt.Errorf("%w: hello resume token %d bytes", ErrBadFrame, len(resume))
		}
		if len(resume) > 0 {
			m.Resume = append([]byte(nil), resume...)
		}
		m.Name = string(r.bytes(maxNameLen))
		nCaps := r.intWord()
		if r.bad || nCaps > maxCaps {
			return nil, fmt.Errorf("%w: malformed hello", ErrBadFrame)
		}
		for i := 0; i < nCaps; i++ {
			m.Caps = append(m.Caps, string(r.bytes(maxCapLen)))
		}
		if !r.done() {
			return nil, fmt.Errorf("%w: malformed hello", ErrBadFrame)
		}
		return m, nil
	case TagHelloAck:
		var m HelloAck
		m.Version = r.intWord()
		m.Worker = r.intWord()
		m.K = r.intWord()
		copy(m.Resume[:], r.raw(16))
		copy(m.Challenge[:], r.raw(16))
		if !r.done() {
			return nil, fmt.Errorf("%w: malformed helloAck", ErrBadFrame)
		}
		return m, nil
	case TagAssign:
		var m Assign
		m.Job = r.intWord()
		m.Owner = r.intWord()
		m.Round = r.intWord()
		m.Lo = r.intWord()
		m.Hi = r.intWord()
		m.Width = r.intWord()
		nPrimes := r.intWord()
		if r.bad || nPrimes == 0 || nPrimes > maxPrimes || m.Hi < m.Lo || m.Width <= 0 {
			return nil, fmt.Errorf("%w: malformed assign", ErrBadFrame)
		}
		m.Primes = make([]uint64, nPrimes)
		for i := range m.Primes {
			m.Primes[i] = r.word()
		}
		kind := r.bytes(maxKindLen)
		if len(kind) == 0 {
			return nil, fmt.Errorf("%w: assign without problem kind", ErrBadFrame)
		}
		m.Kind = string(kind)
		m.Instance = append([]byte(nil), r.bytes(maxInstanceLen)...)
		if len(m.Instance) == 0 {
			m.Instance = nil
		}
		if !r.done() {
			return nil, fmt.Errorf("%w: malformed assign", ErrBadFrame)
		}
		return m, nil
	case TagShares:
		m, err := core.DecodeNodeShares(body)
		if err != nil {
			return nil, err // wraps core.ErrBadFrame
		}
		return m, nil
	case TagDone:
		m := Done{Job: r.intWord()}
		if !r.done() {
			return nil, fmt.Errorf("%w: malformed done", ErrBadFrame)
		}
		return m, nil
	case TagError:
		var m ErrorMsg
		m.Code = r.intWord()
		m.Msg = string(r.bytes(maxErrMsgLen))
		if !r.done() {
			return nil, fmt.Errorf("%w: malformed error", ErrBadFrame)
		}
		return m, nil
	default:
		return nil, fmt.Errorf("%w: unknown tag %d", ErrBadFrame, tag)
	}
}
