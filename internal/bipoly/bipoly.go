// Package bipoly implements truncated bivariate polynomials in the
// weight-tracking indeterminates w_E, w_B of the paper's §7 proof
// template. Degrees are capped at (degE, degB) because the template only
// ever reads the coefficient of w_E^{|E|} w_B^{|B|}; higher monomials are
// discarded eagerly, keeping every node's algebra O(|E|·|B|) per value.
package bipoly

import (
	"fmt"

	"camelot/internal/ff"
)

// Ring fixes the coefficient field and the truncation degrees.
type Ring struct {
	F ff.Field
	// DegE and DegB are the maximum retained exponents of w_E and w_B.
	DegE, DegB int
}

// NewRing returns a truncated bivariate ring.
func NewRing(f ff.Field, degE, degB int) Ring {
	if degE < 0 || degB < 0 {
		panic(fmt.Sprintf("bipoly: negative truncation degrees (%d, %d)", degE, degB))
	}
	return Ring{F: f, DegE: degE, DegB: degB}
}

// Poly is a truncated polynomial; C[i*(DegB+1)+j] is the coefficient of
// w_E^i w_B^j. A nil C represents zero.
type Poly struct {
	C []uint64
}

// Zero returns the zero polynomial.
func (r Ring) Zero() Poly { return Poly{} }

// One returns the constant 1.
func (r Ring) One() Poly { return r.Monomial(0, 0, 1) }

// Monomial returns c·w_E^i w_B^j (zero if the monomial exceeds the
// truncation).
func (r Ring) Monomial(i, j int, c uint64) Poly {
	if i > r.DegE || j > r.DegB || c%r.F.Q == 0 {
		return Poly{}
	}
	p := r.alloc()
	p.C[i*(r.DegB+1)+j] = c % r.F.Q
	return p
}

func (r Ring) alloc() Poly {
	return Poly{C: make([]uint64, (r.DegE+1)*(r.DegB+1))}
}

// IsZero reports whether p is (representationally) zero.
func (p Poly) IsZero() bool {
	for _, c := range p.C {
		if c != 0 {
			return false
		}
	}
	return true
}

// Coeff returns the coefficient of w_E^i w_B^j.
func (r Ring) Coeff(p Poly, i, j int) uint64 {
	if p.C == nil || i > r.DegE || j > r.DegB {
		return 0
	}
	return p.C[i*(r.DegB+1)+j]
}

// Clone returns an independent copy.
func (r Ring) Clone(p Poly) Poly {
	if p.C == nil {
		return Poly{}
	}
	out := r.alloc()
	copy(out.C, p.C)
	return out
}

// Add returns a+b.
func (r Ring) Add(a, b Poly) Poly {
	if a.C == nil {
		return r.Clone(b)
	}
	if b.C == nil {
		return r.Clone(a)
	}
	out := r.alloc()
	for i := range out.C {
		out.C[i] = r.F.Add(a.C[i], b.C[i])
	}
	return out
}

// AddInPlace sets a += b, reusing a's storage when possible, and returns
// the result (a fresh allocation only when a was zero).
func (r Ring) AddInPlace(a, b Poly) Poly {
	if b.C == nil {
		return a
	}
	if a.C == nil {
		return r.Clone(b)
	}
	for i := range a.C {
		a.C[i] = r.F.Add(a.C[i], b.C[i])
	}
	return a
}

// Sub returns a-b.
func (r Ring) Sub(a, b Poly) Poly {
	if b.C == nil {
		return r.Clone(a)
	}
	out := r.alloc()
	if a.C != nil {
		copy(out.C, a.C)
	}
	for i := range out.C {
		out.C[i] = r.F.Sub(out.C[i], b.C[i])
	}
	return out
}

// Scale returns c·p.
func (r Ring) Scale(p Poly, c uint64) Poly {
	c %= r.F.Q
	if p.C == nil || c == 0 {
		return Poly{}
	}
	out := r.alloc()
	for i := range out.C {
		out.C[i] = r.F.Mul(p.C[i], c)
	}
	return out
}

// Mul returns a·b with truncation.
func (r Ring) Mul(a, b Poly) Poly {
	if a.C == nil || b.C == nil {
		return Poly{}
	}
	out := r.alloc()
	w := r.DegB + 1
	for i := 0; i <= r.DegE; i++ {
		for j := 0; j <= r.DegB; j++ {
			c := a.C[i*w+j]
			if c == 0 {
				continue
			}
			maxI := r.DegE - i
			maxJ := r.DegB - j
			for bi := 0; bi <= maxI; bi++ {
				bRow := b.C[bi*w:]
				oRow := out.C[(i+bi)*w+j:]
				for bj := 0; bj <= maxJ; bj++ {
					if bRow[bj] == 0 {
						continue
					}
					oRow[bj] = r.F.Add(oRow[bj], r.F.Mul(c, bRow[bj]))
				}
			}
		}
	}
	return out
}

// MulMonomial returns p · c·w_E^i w_B^j — the common template operation
// of attaching a set's weight, cheaper than a general Mul.
func (r Ring) MulMonomial(p Poly, i, j int, c uint64) Poly {
	c %= r.F.Q
	if p.C == nil || c == 0 || i > r.DegE || j > r.DegB {
		return Poly{}
	}
	out := r.alloc()
	w := r.DegB + 1
	for ai := 0; ai+i <= r.DegE; ai++ {
		for aj := 0; aj+j <= r.DegB; aj++ {
			v := p.C[ai*w+aj]
			if v != 0 {
				out.C[(ai+i)*w+aj+j] = r.F.Mul(v, c)
			}
		}
	}
	return out
}

// Equal reports coefficient-wise equality.
func (r Ring) Equal(a, b Poly) bool {
	for i := 0; i <= r.DegE; i++ {
		for j := 0; j <= r.DegB; j++ {
			if r.Coeff(a, i, j) != r.Coeff(b, i, j) {
				return false
			}
		}
	}
	return true
}
