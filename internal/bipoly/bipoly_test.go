package bipoly

import (
	"math/rand"
	"testing"

	"camelot/internal/ff"
)

var testField = ff.Must(1000003)

func TestMonomialAndCoeff(t *testing.T) {
	r := NewRing(testField, 3, 2)
	p := r.Monomial(2, 1, 7)
	if got := r.Coeff(p, 2, 1); got != 7 {
		t.Fatalf("coeff = %d", got)
	}
	if got := r.Coeff(p, 1, 1); got != 0 {
		t.Fatalf("spurious coeff %d", got)
	}
	// Monomials beyond the truncation vanish.
	if p := r.Monomial(4, 0, 5); !p.IsZero() {
		t.Fatal("over-degree monomial must be zero")
	}
	// Out-of-range Coeff reads are zero, not panics.
	if got := r.Coeff(p, 9, 9); got != 0 {
		t.Fatal("out-of-range coeff must read 0")
	}
}

func TestAddSub(t *testing.T) {
	r := NewRing(testField, 2, 2)
	a := r.Monomial(1, 1, 10)
	b := r.Monomial(1, 1, 5)
	if got := r.Coeff(r.Add(a, b), 1, 1); got != 15 {
		t.Fatalf("add = %d", got)
	}
	if got := r.Coeff(r.Sub(a, b), 1, 1); got != 5 {
		t.Fatalf("sub = %d", got)
	}
	if got := r.Sub(b, a); r.Coeff(got, 1, 1) != testField.Q-5 {
		t.Fatalf("negative sub = %d", r.Coeff(got, 1, 1))
	}
	// Zero identities.
	if !r.Equal(r.Add(a, r.Zero()), a) {
		t.Fatal("a + 0 != a")
	}
	if !r.Equal(r.Sub(r.Zero(), r.Zero()), r.Zero()) {
		t.Fatal("0 - 0 != 0")
	}
}

func TestMulTruncates(t *testing.T) {
	r := NewRing(testField, 2, 1)
	// (wE + wB)^2 = wE^2 + 2 wE wB + wB^2; wB^2 truncated away.
	p := r.Add(r.Monomial(1, 0, 1), r.Monomial(0, 1, 1))
	sq := r.Mul(p, p)
	if r.Coeff(sq, 2, 0) != 1 || r.Coeff(sq, 1, 1) != 2 {
		t.Fatalf("square wrong: %v", sq.C)
	}
	if r.Coeff(sq, 0, 1) != 0 {
		t.Fatal("wB^2 must truncate to nothing, not alias")
	}
}

func TestMulMatchesReference(t *testing.T) {
	r := NewRing(testField, 4, 3)
	rng := rand.New(rand.NewSource(1))
	randPoly := func() Poly {
		p := r.alloc()
		for i := range p.C {
			p.C[i] = rng.Uint64() % testField.Q
		}
		return p
	}
	for trial := 0; trial < 20; trial++ {
		a, b := randPoly(), randPoly()
		got := r.Mul(a, b)
		// Reference: quadruple loop with truncation.
		want := r.alloc()
		for i := 0; i <= 4; i++ {
			for j := 0; j <= 3; j++ {
				for k := 0; i+k <= 4; k++ {
					for l := 0; j+l <= 3; l++ {
						c := testField.Mul(r.Coeff(a, i, j), r.Coeff(b, k, l))
						idx := (i+k)*4 + j + l
						want.C[idx] = testField.Add(want.C[idx], c)
					}
				}
			}
		}
		if !r.Equal(got, want) {
			t.Fatalf("trial %d: product mismatch", trial)
		}
	}
}

func TestMulCommutesAndDistributes(t *testing.T) {
	r := NewRing(testField, 3, 3)
	rng := rand.New(rand.NewSource(2))
	randPoly := func() Poly {
		p := r.alloc()
		for i := range p.C {
			p.C[i] = rng.Uint64() % testField.Q
		}
		return p
	}
	for trial := 0; trial < 10; trial++ {
		a, b, c := randPoly(), randPoly(), randPoly()
		if !r.Equal(r.Mul(a, b), r.Mul(b, a)) {
			t.Fatal("not commutative")
		}
		lhs := r.Mul(a, r.Add(b, c))
		rhs := r.Add(r.Mul(a, b), r.Mul(a, c))
		if !r.Equal(lhs, rhs) {
			t.Fatal("not distributive")
		}
	}
}

func TestMulMonomialAgainstMul(t *testing.T) {
	r := NewRing(testField, 3, 3)
	rng := rand.New(rand.NewSource(3))
	p := r.alloc()
	for i := range p.C {
		p.C[i] = rng.Uint64() % testField.Q
	}
	for i := 0; i <= 3; i++ {
		for j := 0; j <= 3; j++ {
			want := r.Mul(p, r.Monomial(i, j, 42))
			got := r.MulMonomial(p, i, j, 42)
			if !r.Equal(got, want) {
				t.Fatalf("MulMonomial(%d,%d) differs", i, j)
			}
		}
	}
}

func TestAddInPlace(t *testing.T) {
	r := NewRing(testField, 1, 1)
	a := r.Zero()
	a = r.AddInPlace(a, r.Monomial(1, 0, 3))
	a = r.AddInPlace(a, r.Monomial(1, 0, 4))
	if got := r.Coeff(a, 1, 0); got != 7 {
		t.Fatalf("AddInPlace = %d", got)
	}
	// Adding zero leaves the receiver untouched.
	b := r.AddInPlace(a, r.Zero())
	if !r.Equal(a, b) {
		t.Fatal("a + 0 != a")
	}
}

func TestScale(t *testing.T) {
	r := NewRing(testField, 1, 1)
	p := r.Monomial(1, 1, 3)
	if got := r.Coeff(r.Scale(p, 5), 1, 1); got != 15 {
		t.Fatalf("scale = %d", got)
	}
	if !r.Scale(p, 0).IsZero() {
		t.Fatal("0·p must be zero")
	}
}
