package csp

import (
	"context"
	"math/big"
	"testing"

	"camelot/internal/core"
	"camelot/internal/tensor"
)

func TestPairIndexBijective(t *testing.T) {
	seen := make(map[int]bool)
	for s := 0; s < 6; s++ {
		for tt := s + 1; tt < 6; tt++ {
			idx := pairIndex(s, tt)
			if idx < 0 || idx >= 15 || seen[idx] {
				t.Fatalf("pairIndex(%d,%d) = %d invalid/duplicate", s, tt, idx)
			}
			seen[idx] = true
		}
	}
}

func TestConstraintType(t *testing.T) {
	tests := []struct{ b1, b2, s, tt int }{
		{0, 0, 0, 1}, {1, 1, 0, 1}, {2, 2, 0, 2}, {5, 5, 0, 5},
		{0, 3, 0, 3}, {3, 0, 0, 3}, {2, 4, 2, 4},
	}
	for _, tc := range tests {
		s, tt := constraintType(tc.b1, tc.b2)
		if s != tc.s || tt != tc.tt {
			t.Fatalf("type(%d,%d) = (%d,%d), want (%d,%d)", tc.b1, tc.b2, s, tt, tc.s, tc.tt)
		}
	}
}

func TestDistributionBruteSanity(t *testing.T) {
	// n=6, σ=2, one constraint allowing all pairs: all 64 assignments
	// satisfy exactly 1 constraint.
	all := make([]bool, 4)
	for i := range all {
		all[i] = true
	}
	sys := &System{N: 6, Sigma: 2, Constraints: []Constraint{{U: 0, V: 3, Allowed: all}}}
	dist := DistributionBrute(sys)
	if dist[0].Sign() != 0 || dist[1].Cmp(big.NewInt(64)) != 0 {
		t.Fatalf("dist = %v", dist)
	}
}

func TestCamelotMatchesBrute(t *testing.T) {
	cases := []struct {
		name  string
		sys   *System
		base  tensor.Decomposition
		nodes int
	}{
		{"binary-n6", RandomSystem(6, 2, 5, 0.5, 1), tensor.Strassen(), 3},
		{"binary-n6-dense", RandomSystem(6, 2, 8, 0.7, 2), tensor.Trivial(2), 2},
		{"ternary-n6", RandomSystem(6, 3, 4, 0.4, 3), tensor.Strassen(), 3},
		{"binary-n12", RandomSystem(12, 2, 6, 0.5, 4), tensor.Strassen(), 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := DistributionBrute(tc.sys)
			p, err := NewProblem(tc.sys, tc.base)
			if err != nil {
				t.Fatal(err)
			}
			proof, rep, err := core.Run(context.Background(), p, core.Options{Nodes: tc.nodes, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Verified {
				t.Fatal("not verified")
			}
			got, err := p.Distribution(proof)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("distribution length %d, want %d", len(got), len(want))
			}
			for k := range want {
				if got[k].Cmp(want[k]) != 0 {
					t.Fatalf("N_%d = %v, want %v", k, got[k], want[k])
				}
			}
		})
	}
}

func TestDistributionSumsToSigmaN(t *testing.T) {
	sys := RandomSystem(6, 2, 4, 0.5, 7)
	p, err := NewProblem(sys, tensor.Strassen())
	if err != nil {
		t.Fatal(err)
	}
	proof, _, err := core.Run(context.Background(), p, core.Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := p.Distribution(proof)
	if err != nil {
		t.Fatal(err)
	}
	total := new(big.Int)
	for _, v := range dist {
		total.Add(total, v)
	}
	if total.Cmp(big.NewInt(64)) != 0 {
		t.Fatalf("distribution sums to %v, want 2^6 = 64", total)
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewProblem(&System{N: 5, Sigma: 2}, tensor.Strassen()); err == nil {
		t.Fatal("n not divisible by 6 must be rejected")
	}
	if _, err := NewProblem(&System{N: 6, Sigma: 1}, tensor.Strassen()); err == nil {
		t.Fatal("σ=1 must be rejected")
	}
	bad := &System{N: 6, Sigma: 2, Constraints: []Constraint{{U: 0, V: 0, Allowed: make([]bool, 4)}}}
	if _, err := NewProblem(bad, tensor.Strassen()); err == nil {
		t.Fatal("u == v must be rejected")
	}
	short := &System{N: 6, Sigma: 2, Constraints: []Constraint{{U: 0, V: 1, Allowed: make([]bool, 3)}}}
	if _, err := NewProblem(short, tensor.Strassen()); err == nil {
		t.Fatal("short table must be rejected")
	}
}

func TestNoConstraints(t *testing.T) {
	sys := &System{N: 6, Sigma: 2}
	p, err := NewProblem(sys, tensor.Strassen())
	if err != nil {
		t.Fatal(err)
	}
	proof, _, err := core.Run(context.Background(), p, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := p.Distribution(proof)
	if err != nil {
		t.Fatal(err)
	}
	if dist[0].Cmp(big.NewInt(64)) != 0 {
		t.Fatalf("N_0 = %v, want 64", dist[0])
	}
}

func TestWeightedCSPMatchesBrute(t *testing.T) {
	// The Remark after Theorem 12: nonnegative integer weights multiply
	// the proof width/size by W. Build a weighted system and compare the
	// weight-indexed distribution with brute force.
	sys := RandomSystem(6, 2, 4, 0.5, 13)
	weights := []int{1, 3, 2, 1}
	for i := range sys.Constraints {
		sys.Constraints[i].Weight = weights[i]
	}
	if got := sys.TotalWeight(); got != 7 {
		t.Fatalf("TotalWeight = %d, want 7", got)
	}
	want := DistributionBrute(sys)
	p, err := NewProblem(sys, tensor.Strassen())
	if err != nil {
		t.Fatal(err)
	}
	if p.Width() != 8 {
		t.Fatalf("Width = %d, want W+1 = 8", p.Width())
	}
	proof, rep, err := core.Run(context.Background(), p, core.Options{Nodes: 2, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified {
		t.Fatal("not verified")
	}
	got, err := p.Distribution(proof)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("distribution length %d, want %d", len(got), len(want))
	}
	total := new(big.Int)
	for k := range want {
		if got[k].Cmp(want[k]) != 0 {
			t.Fatalf("N_%d = %v, want %v", k, got[k], want[k])
		}
		total.Add(total, got[k])
	}
	if total.Cmp(big.NewInt(64)) != 0 {
		t.Fatalf("distribution sums to %v, want 2^6", total)
	}
}

func TestWeightedCSPRejectsNegativeWeight(t *testing.T) {
	sys := RandomSystem(6, 2, 2, 0.5, 15)
	sys.Constraints[0].Weight = -1
	if _, err := NewProblem(sys, tensor.Strassen()); err == nil {
		t.Fatal("negative weight must be rejected")
	}
}
